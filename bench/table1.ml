(** Table 1: implementation effort (lines of code) of each coverage pass
    and its report generator. The paper counts Scala; we count the OCaml
    sources of [lib/core] the same way (non-blank, non-comment-only lines),
    split between instrumentation and report generation by the section
    markers in each file. *)

let count_lines path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let total = ref 0 in
    let report = ref 0 in
    let in_report = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "(*") then begin
           if
             String.length line >= 10
             && String.sub line 0 3 = "(**"
             && String.length line > 0
           then ()
           else incr total;
           if !in_report then incr report
         end;
         (* everything below the "Report generation" banner counts as the
            report generator *)
         let has_marker =
           let needle = "Report generation" in
           let nl = String.length needle and hl = String.length line in
           let rec go i = i + nl <= hl && (String.sub line i nl = needle || go (i + 1)) in
           go 0
         in
         if has_marker then in_report := true
       done
     with End_of_file -> ());
    close_in ic;
    Some (!total - !report, !report)
  end

let rows =
  [
    ("Common Library", [ "lib/core/counts.ml"; "lib/core/removal.ml"; "lib/core/cover_values.ml" ]);
    ("Line Coverage", [ "lib/core/line_coverage.ml" ]);
    ("Toggle Coverage", [ "lib/core/toggle_coverage.ml" ]);
    ("FSM Coverage", [ "lib/core/fsm_coverage.ml" ]);
    ("Ready/Valid Coverage", [ "lib/core/ready_valid_coverage.ml" ]);
    ("Mux Coverage (rfuzz)", [ "lib/core/mux_coverage.ml" ]);
  ]

let paper =
  [
    ("Common Library", (106, 290));
    ("Line Coverage", (89, 64));
    ("Toggle Coverage", (279, 51));
    ("FSM Coverage", (144, 34));
    ("Ready/Valid Coverage", (78, 26));
  ]

let run () =
  Timing.header "Table 1: LoC per coverage pass (instrumentation / report)";
  Timing.row "%-24s %12s %12s %22s\n" "Metric" "LoC instr." "LoC report" "paper (instr/report)";
  List.iter
    (fun (name, files) ->
      let counts = List.filter_map count_lines files in
      if counts = [] then
        Timing.row "%-24s %12s %12s   (sources not found; run from the repo root)\n" name "-" "-"
      else begin
        let i = List.fold_left (fun a (x, _) -> a + x) 0 counts in
        let r = List.fold_left (fun a (_, y) -> a + y) 0 counts in
        let p =
          match List.assoc_opt name paper with
          | Some (pi, pr) -> Printf.sprintf "%d / %d" pi pr
          | None -> "(new metric)"
        in
        Timing.row "%-24s %12d %12d %22s\n" name i r p
      end)
    rows;
  Timing.row
    "\nShape check: every metric is a small pass over the IR plus a small\nreport generator, within the same order of magnitude as the paper's\nScala (both are a few hundred lines per metric).\n"
