(** Ablation benches for the design choices DESIGN.md calls out:

    1. toggle coverage with vs without the global alias analysis — the
       paper states the analysis "is necessary to make toggle coverage
       perform well" (§4.2); this measures both the extra cover points
       and the extra run time when it is disabled;
    2. ESSENT-style conditional evaluation on vs off, on a low-activity
       workload (the bit-serial core) vs a high-activity one;
    3. constant propagation + DCE on vs off, as simulation-speed
       enablers for the compiled backend. *)

open Sic_sim

let replay_cost low trace =
  let b = Compiled.create low in
  Timing.ns_per_run "replay" ~quota:0.4 (fun () -> Replay.replay b trace)

let toggle_alias_ablation () =
  Timing.row "--- toggle coverage: global alias analysis on/off (riscv-mini)\n";
  let c, trace = Workloads.riscv_mini ~cycles:2_000 in
  let low = Sic_passes.Compile.lower c in
  let with_alias, db_with = Sic_coverage.Toggle_coverage.instrument low in
  let without_alias, db_without =
    Sic_coverage.Toggle_coverage.instrument ~use_alias:false low
  in
  let t_with = replay_cost with_alias trace in
  let t_without = replay_cost without_alias trace in
  Timing.row "    %-18s %6d cover points  %12.0f ns/replay\n" "with alias"
    (List.length db_with.Sic_coverage.Toggle_coverage.points)
    t_with;
  Timing.row "    %-18s %6d cover points  %12.0f ns/replay (+%.0f%%)\n" "without alias"
    (List.length db_without.Sic_coverage.Toggle_coverage.points)
    t_without
    (100.0 *. (t_without -. t_with) /. t_with)

let activity_ablation () =
  Timing.row "--- conditional evaluation (ESSENT) on/off\n";
  List.iter
    (fun (name, cycles, build) ->
      let c, trace = build ~cycles in
      let low = Sic_passes.Compile.lower c in
      let plain =
        let b = Compiled.create low in
        Timing.ns_per_run "plain" ~quota:0.4 (fun () -> Replay.replay b trace)
      in
      let activity =
        let b = Essent.create low in
        Timing.ns_per_run "activity" ~quota:0.4 (fun () -> Replay.replay b trace)
      in
      Timing.row "    %-14s compiled %12.0f ns   essent %12.0f ns   (%+.0f%%)\n" name plain
        activity
        (100.0 *. (activity -. plain) /. plain))
    [
      ("serv (low act.)", 3_000, Workloads.serv);
      ("riscv-mini", 3_000, Workloads.riscv_mini);
    ]

let optimization_ablation () =
  Timing.row "--- const-prop + DCE on/off (compiled backend, riscv-mini)\n";
  let c, trace = Workloads.riscv_mini ~cycles:2_000 in
  let optimized = Sic_passes.Compile.lower c in
  let plain =
    Sic_passes.Pass.run_pipeline
      [ Sic_passes.Check.pass; Sic_passes.Lower_whens.pass; Sic_passes.Inline.pass ]
      c
  in
  let t_opt = replay_cost optimized trace in
  let t_plain = replay_cost plain trace in
  Timing.row "    %-18s %12.0f ns/replay\n" "optimized" t_opt;
  Timing.row "    %-18s %12.0f ns/replay (+%.0f%%)\n" "unoptimized" t_plain
    (100.0 *. (t_plain -. t_opt) /. t_opt)

let run () =
  Timing.header "Ablations: alias analysis, conditional evaluation, optimization";
  toggle_alias_ablation ();
  activity_ablation ();
  optimization_ablation ();
  Timing.row
    "\nShape check (paper, §4.2): disabling the alias analysis inflates the\ntoggle instrumentation (duplicate covers on always-equal signals) and\nits run-time cost — the analysis is what makes toggle coverage\nperform well.\n"
