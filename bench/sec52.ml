(** §5.2: FPGA-accelerated coverage collection — simulate the scan-chain
    circuit, run the SoC workload, scan the counts out, and report the
    scan-out cost at the paper's target frequencies (RocketChip 65 MHz,
    BOOM 40 MHz). The paper boots Linux for 3.3 B / 1.7 B cycles; we run a
    scaled workload and report the modelled wall-clock for the paper's
    cycle counts at the modelled F_max alongside. *)

module Scan = Sic_firesim.Scan_chain
module Driver = Sic_firesim.Driver
module Counts = Sic_coverage.Counts
open Sic_sim

let run_soc (cfg : Sic_designs.Soc.config) ~base_mhz ~paper_cycles ~paper_points
    ~paper_scan_ms =
  let c = Sic_designs.Soc.circuit cfg in
  let c, _ = Sic_coverage.Line_coverage.instrument c in
  let low = Sic_passes.Compile.lower c in
  let chained, chain = Scan.insert ~width:16 low in
  let n = List.length chain.Scan.order in
  let b = Compiled.create chained in
  let run_cycles = 5_000 in
  let result, seconds =
    Timing.wall (fun () ->
        Driver.run_and_scan b chain ~workload:(fun b ->
            Workloads.soc_drive b ~cores:cfg.Sic_designs.Soc.cores ~run_cycles))
  in
  let covered = Counts.covered_points result.Driver.counts in
  let modelled_ms = Driver.scan_millis ~scan_cycles:result.Driver.scan_cycles ~mhz:base_mhz in
  Timing.row "--- %s (16-bit counters)\n" cfg.Sic_designs.Soc.soc_name;
  Timing.row "    cover counters          : %d (paper: %d)\n" n paper_points;
  Timing.row "    workload                : %d cycles, %.2fs on the software 'FPGA'\n"
    (run_cycles + 200) seconds;
  Timing.row "    covered at least once   : %d/%d\n" covered n;
  Timing.row "    scan-out                : %d cycles = %.1f ms at %.0f MHz (paper: %.0f ms)\n"
    result.Driver.scan_cycles modelled_ms base_mhz paper_scan_ms;
  Timing.row "    paper workload modelled : %.1f s for %.1f B cycles at %.0f MHz\n"
    (float_of_int paper_cycles /. (base_mhz *. 1e6))
    (float_of_int paper_cycles /. 1e9)
    base_mhz

let run () =
  Timing.header "Section 5.2: scan-chain coverage collection on the FPGA analogue";
  (* end-to-end runs use the simulation-scale SoCs; the paper-scale scan
     cost is modelled below from the paper-scale instrumented designs *)
  run_soc Sic_designs.Soc.rocket_sim_config ~base_mhz:65.0 ~paper_cycles:3_300_000_000
    ~paper_points:8060 ~paper_scan_ms:12.0;
  run_soc Sic_designs.Soc.boom_sim_config ~base_mhz:40.0 ~paper_cycles:1_700_000_000
    ~paper_points:12059 ~paper_scan_ms:17.0;
  Timing.row "--- paper-scale scan-out model (16-bit counters)\n";
  List.iter
    (fun (cfg, mhz, paper_points, paper_ms) ->
      let c = Sic_designs.Soc.circuit cfg in
      let c, _ = Sic_coverage.Line_coverage.instrument c in
      let low = Sic_passes.Compile.lower c in
      let n = List.length (Sic_ir.Circuit.covers_of (Sic_ir.Circuit.main low)) in
      let cycles = n * 16 in
      Timing.row
        "    %-10s %6d counters -> %7d scan cycles = %5.1f ms at %3.0f MHz (paper: %d counters, %.0f ms)\n"
        cfg.Sic_designs.Soc.soc_name n cycles
        (Driver.scan_millis ~scan_cycles:cycles ~mhz)
        mhz paper_points paper_ms)
    [
      (Sic_designs.Soc.rocket_config, 65.0, 8060, 12.0);
      (Sic_designs.Soc.boom_config, 40.0, 12059, 17.0);
    ];
  Timing.row
    "\nShape check (paper): scanning out N 16-bit counters costs N x 16\ncycles - milliseconds at target frequency, negligible next to the\nworkload; the BOOM-class SoC has ~1.5x the counters of Rocket-class.\n"
