(** Verilog frontend throughput: parse-only and parse+lower rates on the
    vendored RISC-V core (examples/verilog/rv.v), reported as lines/s and
    ns/line and written to BENCH_verilog.json in the same layout as the
    other bench artifacts. SIC_BENCH_SMOKE=1 shrinks the measurement
    quota so CI can afford the smoke run. *)

module Verilog = Sic_verilog.Verilog

let src_path = "examples/verilog/rv.v"
let src_dir = Filename.dirname src_path

let run () =
  let smoke = Sys.getenv_opt "SIC_BENCH_SMOKE" <> None in
  let quota = if smoke then 0.05 else 0.5 in
  Timing.header
    (Printf.sprintf "verilog: frontend throughput on %s%s" src_path
       (if smoke then " (smoke)" else ""));
  let src = In_channel.with_open_bin src_path In_channel.input_all in
  let lines = List.length (String.split_on_char '\n' src) in
  (* sanity: both stages still work before we time them *)
  ignore (Verilog.parse_string ~file:src_path src);
  ignore (Verilog.load_string ~file:src_path ~dir:src_dir src);
  let measure name fn =
    let ns = Timing.ns_per_run ~quota name fn in
    let ns_line = ns /. float_of_int lines in
    let lines_s = 1e9 /. ns_line in
    Timing.row "%-14s %10.0f lines/s %10.1f ns/line\n" name lines_s ns_line;
    (name, lines_s, ns_line)
  in
  let results =
    [
      measure "parse" (fun () -> ignore (Verilog.parse_string ~file:src_path src));
      measure "parse+lower" (fun () ->
          ignore (Verilog.load_string ~file:src_path ~dir:src_dir src));
    ]
  in
  let oc = open_out "BENCH_verilog.json" in
  Printf.fprintf oc "{\n  \"source\": %S,\n  \"lines\": %d,\n  \"smoke\": %b,\n  \"results\": [\n"
    src_path lines smoke;
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun (name, lines_s, ns_line) ->
            Printf.sprintf "    { \"stage\": %S, \"lines_per_s\": %.0f, \"ns_per_line\": %.2f }"
              name lines_s ns_line)
          results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Timing.row "wrote BENCH_verilog.json\n"
