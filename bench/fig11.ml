(** Figure 11: cumulative line coverage of inputs discovered through
    fuzzing the I2C peripheral with different feedback metrics, averaged
    over five runs. The circuit is instrumented with *both* line and
    mux-toggle covers; switching the feedback metric is just switching a
    name filter on the same counts map — the paper's "mix and match"
    claim. Reported coverage is always line coverage. *)

module F = Sic_fuzz.Fuzzer
module Counts = Sic_coverage.Counts
module Line = Sic_coverage.Line_coverage

let seeds = [ 1; 2; 3; 4; 5 ]
let execs = 400
let snapshot_every = 40

let is_line name =
  (* line covers are named l_<Module>_<n> *)
  String.length name >= 2 && String.sub name 0 2 = "l_"

let is_mux name = String.length name >= 4 && String.sub name 0 4 = "mux_"

let line_covered counts =
  List.length (List.filter (fun (n, v) -> is_line n && v > 0) (Counts.to_sorted_list counts))

let run_metric ~name ~feedback harness total_line =
  let series = Array.make (execs / snapshot_every) 0.0 in
  List.iter
    (fun seed ->
      let r = F.run ~seed ~execs ~snapshot_every ~max_cycles:128 ~seed_cycles:48 ~feedback harness in
      List.iteri
        (fun i (_, counts) ->
          if i < Array.length series then
            series.(i) <- series.(i) +. float_of_int (line_covered counts))
        r.F.history)
    seeds;
  Timing.row "%-22s" name;
  Array.iter
    (fun total ->
      Timing.row " %5.1f%%"
        (100.0 *. total /. float_of_int (List.length seeds) /. float_of_int total_line))
    series;
  Timing.row "\n%!"

let run () =
  Timing.header "Figure 11: fuzzing feedback comparison on the I2C peripheral";
  let c = Sic_designs.I2c.circuit () in
  let c, line_db = Line.instrument c in
  let low = Sic_passes.Compile.lower c in
  let low, _mux_db = Sic_coverage.Mux_coverage.instrument low in
  let harness = F.make_harness low in
  let total_line = List.length line_db in
  Timing.row "cumulative line coverage after N executions (avg of %d runs)\n"
    (List.length seeds);
  Timing.row "%-22s" "feedback \\ execs";
  for i = 1 to execs / snapshot_every do
    Timing.row " %6d" (i * snapshot_every)
  done;
  Timing.row "\n";
  run_metric ~name:"line coverage" ~feedback:is_line harness total_line;
  run_metric ~name:"mux toggle (rfuzz)" ~feedback:is_mux harness total_line;
  run_metric ~name:"none (random)" ~feedback:(fun _ -> false) harness total_line;
  Timing.row
    "\nShape check (paper): coverage-guided runs dominate the no-feedback\nbaseline; line and mux-toggle feedback reach similar cumulative line\ncoverage, with coverage climbing in steps as new branches unlock.\n"
