(** [bench serve]: throughput and tail latency of the coverage service,
    written to BENCH_serve.json for CI tracking.

    Three paths matter operationally, and the ETag cache is the whole
    point of the design (DESIGN.md "The coverage service"):

    - [POST /runs] ingest rate — the distributed-campaign write path
      (every request re-reads the manifest under the advisory lock and
      rewrites the aggregate);
    - cached [GET /report] — the hot read path: manifest stat + memory;
      also its [If-None-Match]/304 variant, which skips the body;
    - uncached [GET /report] — cache flushed before every request, so
      each one re-reads every counts file and re-renders.

    All requests ride one keep-alive connection from the in-module
    client against an in-process server on an ephemeral port. Latencies
    are per-request wall times into an {!Sic_obs.Obs.Histogram}; we
    report req/s, p50 and p99. SIC_BENCH_SMOKE=1 shrinks request counts
    so CI runs in seconds; the JSON layout is identical. *)

module Counts = Sic_coverage.Counts
module Db = Sic_db.Db
module Obs = Sic_obs.Obs
module Serve = Sic_serve.Serve
module Client = Serve.Client

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* a synthetic counts map big enough that rendering costs something *)
let synthetic_counts n =
  Counts.of_list (List.init n (fun i -> (Printf.sprintf "cover_%04d" i, (i * 7) mod 50)))

type result = { rname : string; requests : int; req_per_s : float; p50_us : float; p99_us : float }

let bench_requests name n (f : int -> unit) : result =
  let h = Obs.Histogram.create () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let r0 = Unix.gettimeofday () in
    f i;
    Obs.Histogram.add h ((Unix.gettimeofday () -. r0) *. 1e6)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let r =
    {
      rname = name;
      requests = n;
      req_per_s = (if dt > 0. then float_of_int n /. dt else nan);
      p50_us = Obs.Histogram.percentile h 50.;
      p99_us = Obs.Histogram.percentile h 99.;
    }
  in
  Timing.row "%-24s %8d reqs %10.0f req/s %9.0f us p50 %9.0f us p99\n" r.rname r.requests
    r.req_per_s r.p50_us r.p99_us;
  r

let expect status (resp : Client.response) =
  if resp.Client.status <> status then
    failwith
      (Printf.sprintf "serve bench: expected %d, got %d: %s" status resp.Client.status
         resp.Client.body)

let run () =
  let smoke = Sys.getenv_opt "SIC_BENCH_SMOKE" <> None in
  let points = if smoke then 50 else 500 in
  let n_post = if smoke then 10 else 200 in
  let n_cached = if smoke then 50 else 2000 in
  let n_uncached = if smoke then 10 else 100 in
  Timing.header
    (Printf.sprintf "serve: HTTP coverage service (%d-point runs%s)" points
       (if smoke then ", smoke" else ""));
  let db_dir = Printf.sprintf "serve_bench_db_%d" (Unix.getpid ()) in
  rm_rf db_dir;
  ignore (Db.init db_dir);
  let t = Serve.start ~port:0 ~threads:4 ~db_dir () in
  let results =
    Fun.protect
      ~finally:(fun () ->
        Serve.stop t;
        rm_rf db_dir)
      (fun () ->
        let counts = synthetic_counts points in
        let body = Counts.to_string counts in
        let c = Client.connect ~host:"127.0.0.1" ~port:(Serve.port t) in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let ingest =
              bench_requests "POST /runs" n_post (fun i ->
                  expect 201
                    (Client.request c ~body ~meth:"POST"
                       ~target:
                         (Printf.sprintf
                            "/runs?design=bench&backend=bench&workload=bench&seed=%d&cycles=1"
                            i)
                       ()))
            in
            let get ?headers target = Client.request c ?headers ~meth:"GET" ~target () in
            (* warm the cache, and keep the etag for the 304 variant *)
            let warm = get "/report" in
            expect 200 warm;
            let etag = Option.get (Client.header warm "etag") in
            let cached =
              bench_requests "GET /report (cached)" n_cached (fun _ ->
                  expect 200 (get "/report"))
            in
            let conditional =
              bench_requests "GET /report (304)" n_cached (fun _ ->
                  expect 304 (get ~headers:[ ("if-none-match", etag) ] "/report"))
            in
            let uncached =
              bench_requests "GET /report (uncached)" n_uncached (fun _ ->
                  Serve.flush_cache t;
                  expect 200 (get "/report"))
            in
            [ ingest; cached; conditional; uncached ]))
  in
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc "{\n  \"smoke\": %b,\n  \"points\": %d,\n  \"runs_ingested\": %d,\n  \"results\": [\n"
    smoke points n_post;
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    { \"name\": %S, \"requests\": %d, \"req_per_s\": %.1f, \"p50_us\": %.1f, \
               \"p99_us\": %.1f }"
              r.rname r.requests r.req_per_s r.p50_us r.p99_us)
          results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Timing.row "wrote BENCH_serve.json\n"
