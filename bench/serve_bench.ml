(** [bench serve]: throughput and tail latency of the coverage service,
    written to BENCH_serve.json for CI tracking.

    Three paths matter operationally, and the ETag cache is the whole
    point of the design (DESIGN.md "The coverage service"):

    - [POST /runs] ingest rate — the distributed-campaign write path
      (every request re-reads the manifest under the advisory lock and
      rewrites the aggregate);
    - cached [GET /report] — the hot read path: manifest stat + memory;
      also its [If-None-Match]/304 variant, which skips the body;
    - uncached [GET /report] — cache flushed before every request, so
      each one re-reads every counts file and re-renders.

    All requests ride one keep-alive connection from the in-module
    client against an in-process server on an ephemeral port. Latencies
    are per-request wall times into an {!Sic_obs.Obs.Histogram}; we
    report req/s, p50 and p99. SIC_BENCH_SMOKE=1 shrinks request counts
    so CI runs in seconds; the JSON layout is identical. *)

module Counts = Sic_coverage.Counts
module Db = Sic_db.Db
module Obs = Sic_obs.Obs
module Serve = Sic_serve.Serve
module Client = Serve.Client

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* a synthetic counts map big enough that rendering costs something *)
let synthetic_counts n =
  Counts.of_list (List.init n (fun i -> (Printf.sprintf "cover_%04d" i, (i * 7) mod 50)))

type result = { rname : string; requests : int; req_per_s : float; p50_us : float; p99_us : float }

let bench_requests name n (f : int -> unit) : result =
  let h = Obs.Histogram.create () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let r0 = Unix.gettimeofday () in
    f i;
    Obs.Histogram.add h ((Unix.gettimeofday () -. r0) *. 1e6)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let r =
    {
      rname = name;
      requests = n;
      req_per_s = (if dt > 0. then float_of_int n /. dt else nan);
      p50_us = Obs.Histogram.percentile h 50.;
      p99_us = Obs.Histogram.percentile h 99.;
    }
  in
  Timing.row "%-24s %8d reqs %10.0f req/s %9.0f us p50 %9.0f us p99\n" r.rname r.requests
    r.req_per_s r.p50_us r.p99_us;
  r

let expect status (resp : Client.response) =
  if resp.Client.status <> status then
    failwith
      (Printf.sprintf "serve bench: expected %d, got %d: %s" status resp.Client.status
         resp.Client.body)

(* /watch fan-out: [n_subs] SSE subscribers attached while [n_events]
   runs are pushed on [c]; the latency sample is ingest-to-arrival per
   (event, subscriber) pair — the hub's broadcast cost as a consumer
   sees it. Subscribers match deltas to pushes by order (one /watch
   stream delivers in publish order). *)
let bench_watch_fanout url c ~seed0 ~body ~n_subs ~n_events : result =
  let h = Obs.Histogram.create () in
  let hm = Mutex.create () in
  let sent = Array.make n_events 0. in
  let ready = ref 0 in
  let subs =
    List.init n_subs (fun _ ->
        Thread.create
          (fun () ->
            let deltas = ref 0 in
            Client.watch
              ~on_event:(fun ~event ~data:_ ->
                (match event with
                | "hello" -> Mutex.protect hm (fun () -> incr ready)
                | "delta" ->
                    let now = Unix.gettimeofday () in
                    if !deltas < n_events then
                      Mutex.protect hm (fun () ->
                          Obs.Histogram.add h ((now -. sent.(!deltas)) *. 1e6));
                    incr deltas
                | _ -> ());
                !deltas < n_events)
              url)
          ())
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while Mutex.protect hm (fun () -> !ready) < n_subs && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  if Mutex.protect hm (fun () -> !ready) < n_subs then
    failwith "serve bench: /watch subscribers never got their hello";
  let t0 = Unix.gettimeofday () in
  for i = 0 to n_events - 1 do
    sent.(i) <- Unix.gettimeofday ();
    expect 201
      (Client.request c ~body ~meth:"POST"
         ~target:
           (Printf.sprintf "/runs?design=bench&backend=bench&workload=bench&seed=%d&cycles=1"
              (seed0 + i))
         ())
  done;
  List.iter Thread.join subs;
  let dt = Unix.gettimeofday () -. t0 in
  let delivered = Obs.Histogram.count h in
  let r =
    {
      rname = Printf.sprintf "GET /watch fan-out (%d subs)" n_subs;
      requests = delivered;
      req_per_s = (if dt > 0. then float_of_int delivered /. dt else nan);
      p50_us = Obs.Histogram.percentile h 50.;
      p99_us = Obs.Histogram.percentile h 99.;
    }
  in
  Timing.row "%-24s %8d evts %10.0f evt/s %9.0f us p50 %9.0f us p99\n" r.rname r.requests
    r.req_per_s r.p50_us r.p99_us;
  r

let run () =
  let smoke = Sys.getenv_opt "SIC_BENCH_SMOKE" <> None in
  let points = if smoke then 50 else 500 in
  let n_post = if smoke then 10 else 200 in
  let n_cached = if smoke then 50 else 2000 in
  let n_uncached = if smoke then 10 else 100 in
  Timing.header
    (Printf.sprintf "serve: HTTP coverage service (%d-point runs%s)" points
       (if smoke then ", smoke" else ""));
  let db_dir = Printf.sprintf "serve_bench_db_%d" (Unix.getpid ()) in
  rm_rf db_dir;
  ignore (Db.init db_dir);
  let t = Serve.start ~port:0 ~threads:4 ~db_dir () in
  let results =
    Fun.protect
      ~finally:(fun () ->
        Serve.stop t;
        rm_rf db_dir)
      (fun () ->
        let counts = synthetic_counts points in
        let body = Counts.to_string counts in
        let c = Client.connect ~host:"127.0.0.1" ~port:(Serve.port t) in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let ingest =
              bench_requests "POST /runs" n_post (fun i ->
                  expect 201
                    (Client.request c ~body ~meth:"POST"
                       ~target:
                         (Printf.sprintf
                            "/runs?design=bench&backend=bench&workload=bench&seed=%d&cycles=1"
                            i)
                       ()))
            in
            let get ?headers target = Client.request c ?headers ~meth:"GET" ~target () in
            (* warm the cache, and keep the etag for the 304 variant *)
            let warm = get "/report" in
            expect 200 warm;
            let etag = Option.get (Client.header warm "etag") in
            let cached =
              bench_requests "GET /report (cached)" n_cached (fun _ ->
                  expect 200 (get "/report"))
            in
            let conditional =
              bench_requests "GET /report (304)" n_cached (fun _ ->
                  expect 304 (get ~headers:[ ("if-none-match", etag) ] "/report"))
            in
            let uncached =
              bench_requests "GET /report (uncached)" n_uncached (fun _ ->
                  Serve.flush_cache t;
                  expect 200 (get "/report"))
            in
            let fanout =
              bench_watch_fanout
                (Printf.sprintf "http://127.0.0.1:%d" (Serve.port t))
                c ~seed0:100000 ~body
                ~n_subs:(if smoke then 4 else 16)
                ~n_events:(if smoke then 10 else 100)
            in
            [ ingest; cached; conditional; uncached; fanout ]))
  in
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc "{\n  \"smoke\": %b,\n  \"points\": %d,\n  \"runs_ingested\": %d,\n  \"results\": [\n"
    smoke points n_post;
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    { \"name\": %S, \"requests\": %d, \"req_per_s\": %.1f, \"p50_us\": %.1f, \
               \"p99_us\": %.1f }"
              r.rname r.requests r.req_per_s r.p50_us r.p99_us)
          results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Timing.row "wrote BENCH_serve.json\n"
