(** §5.3: coverage merging and removal. Run a suite of software tests,
    merge their counts (trivially — same format from every backend), then
    remove cover points hit at least 10 times before "building the FPGA
    image". The paper reports 42 % of counters removed and the 32-bit LUT
    overhead dropping from 2.8x to 2.0x. *)

module Counts = Sic_coverage.Counts
module Rm = Sic_firesim.Resource_model
open Sic_sim

(* the "RISC-V test suite": several programs over the riscv-mini SoC core
   plus directed peripheral traffic, each run on a different backend to
   demonstrate cross-backend merging *)
let software_runs low =
  let run_with create ~cycles ~seed =
    let b = create low in
    Backend.reset_sequence b;
    let rng = Sic_fuzz.Rng.create seed in
    let inputs = Backend.data_inputs b in
    for _ = 1 to cycles do
      List.iter
        (fun (n, ty) ->
          b.Backend.poke n
            (Sic_bv.Bv.random ~width:(Sic_ir.Ty.width ty) (Sic_fuzz.Rng.bits30 rng)))
        inputs;
      b.Backend.step 1
    done;
    b.Backend.counts ()
  in
  [
    ("program-suite (compiled)",
     let b = Compiled.create low in
     Workloads.soc_drive b ~cores:4 ~run_cycles:4_000;
     b.Backend.counts ());
    ("random-io (interp)", run_with Interp.create ~cycles:60 ~seed:1);
    ("random-io (essent)", run_with Essent.create ~cycles:400 ~seed:2);
  ]

let run () =
  Timing.header "Section 5.3: coverage merging and counter removal";
  let c = Sic_designs.Soc.circuit Sic_designs.Soc.rocket_config in
  let c, _ = Sic_coverage.Line_coverage.instrument c in
  let low = Sic_passes.Compile.lower c in
  let total = List.length (Sic_ir.Circuit.covers_of (Sic_ir.Circuit.main low)) in
  let runs = software_runs low in
  List.iter
    (fun (name, counts) ->
      Timing.row "  %-28s covered %5d/%d\n" name (Counts.covered_points counts) total)
    runs;
  let merged = Counts.merge (List.map snd runs) in
  Timing.row "  %-28s covered %5d/%d\n" "merged (all backends)" (Counts.covered_points merged)
    total;
  (* removal keys on the test-suite run, as in the paper ("coverage
     results from running a RISC-V test suite") *)
  let suite = List.assoc "program-suite (compiled)" runs in
  let r = Sic_coverage.Removal.remove_covered ~threshold:10 suite low in
  let removed = List.length r.Sic_coverage.Removal.removed in
  Timing.row "\n  removal threshold 10: %d/%d counters removed (%.0f%%; paper: 42%%)\n" removed
    total
    (100.0 *. float_of_int removed /. float_of_int total);
  let base = Rm.baseline low in
  let before = Rm.with_coverage base ~n_covers:total ~width:32 in
  let after = Rm.with_coverage base ~n_covers:(total - removed) ~width:32 in
  Timing.row "  32-bit LUT ratio vs baseline: %.1fx -> %.1fx (paper: 2.8x -> 2.0x)\n"
    (float_of_int before.Rm.luts /. float_of_int base.Rm.luts)
    (float_of_int after.Rm.luts /. float_of_int base.Rm.luts);
  (* sanity: the stripped circuit still simulates and reports fewer counters *)
  let b = Compiled.create r.Sic_coverage.Removal.circuit in
  b.Backend.step 10;
  Timing.row "  stripped circuit reports %d counters\n"
    (Counts.total_points (b.Backend.counts ()))
