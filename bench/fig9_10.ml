(** Figures 9 and 10: FPGA resource usage and F_max versus coverage
    counter width, for the Rocket-class and BOOM-class SoCs, from the
    analytical resource model (see DESIGN.md for the substitution note).
    Figure 9 additionally includes the "after removal" series of §5.3. *)

module Rm = Sic_firesim.Resource_model
module Counts = Sic_coverage.Counts
open Sic_sim

let widths = [ 0; 1; 2; 4; 8; 16; 24; 32; 48 ]

type soc_info = {
  name : string;
  base_mhz : float;
  low : Sic_ir.Circuit.t;
  n_covers : int;
  baseline : Rm.utilization;
}

let prepare (cfg : Sic_designs.Soc.config) ~base_mhz : soc_info =
  let c = Sic_designs.Soc.circuit cfg in
  let c, _ = Sic_coverage.Line_coverage.instrument c in
  let low = Sic_passes.Compile.lower c in
  let n_covers = List.length (Sic_ir.Circuit.covers_of (Sic_ir.Circuit.main low)) in
  {
    name = cfg.Sic_designs.Soc.soc_name;
    base_mhz;
    low;
    n_covers;
    baseline = Rm.baseline low;
  }

let socs () =
  [
    prepare Sic_designs.Soc.rocket_config ~base_mhz:65.0;
    prepare Sic_designs.Soc.boom_config ~base_mhz:40.0;
  ]

(* §5.3 removal: run the riscv "test suite" in software, drop covers hit
   >= 10 times *)
let removal_survivors (s : soc_info) ~cores =
  let b = Compiled.create s.low in
  Workloads.soc_drive b ~cores ~run_cycles:3_000;
  let counts = b.Backend.counts () in
  let r = Sic_coverage.Removal.remove_covered ~threshold:10 counts s.low in
  List.length r.Sic_coverage.Removal.kept

let run () =
  let socs = socs () in
  Timing.header "Figure 9: FPGA resources vs coverage counter width";
  List.iter
    (fun s ->
      Timing.row "--- %s: %d line cover points (paper: RocketChip 8060, BOOM 12059)\n"
        s.name s.n_covers;
      Timing.row "%6s %10s %10s %10s %10s\n" "width" "LUTs" "FFs" "cov LUTs" "cov FFs";
      List.iter
        (fun w ->
          let u = Rm.with_coverage s.baseline ~n_covers:s.n_covers ~width:w in
          Timing.row "%6d %10d %10d %10d %10d\n" w u.Rm.luts u.Rm.ffs u.Rm.counter_luts
            u.Rm.counter_ffs)
        widths)
    socs;
  (* removal series for the rocket-class SoC at 32 bit, §5.3 *)
  let rocket = List.hd socs in
  let kept = removal_survivors rocket ~cores:Sic_designs.Soc.rocket_config.Sic_designs.Soc.cores in
  let before = Rm.with_coverage rocket.baseline ~n_covers:rocket.n_covers ~width:32 in
  let after = Rm.with_coverage rocket.baseline ~n_covers:kept ~width:32 in
  let ratio_before = float_of_int before.Rm.luts /. float_of_int rocket.baseline.Rm.luts in
  let ratio_after = float_of_int after.Rm.luts /. float_of_int rocket.baseline.Rm.luts in
  Timing.row
    "--- removal (32-bit counters, threshold 10): %d -> %d counters (-%.0f%%)\n"
    rocket.n_covers kept
    (100.0 *. float_of_int (rocket.n_covers - kept) /. float_of_int rocket.n_covers);
  Timing.row "    LUT ratio vs baseline: %.1fx -> %.1fx   (paper: 2.8x -> 2.0x, -42%%)\n"
    ratio_before ratio_after;
  Timing.header "Figure 10: F_max vs coverage counter width";
  List.iter
    (fun s ->
      Timing.row "--- %s (base %.0f MHz)\n" s.name s.base_mhz;
      Timing.row "%6s %10s\n" "width" "F_max MHz";
      List.iter
        (fun w ->
          let u = Rm.with_coverage s.baseline ~n_covers:s.n_covers ~width:w in
          Timing.row "%6d %10.1f\n" w (Rm.fmax ~base_mhz:s.base_mhz ~u ~seed:3 ~width:w))
        widths)
    socs;
  Timing.row
    "\nShape check (paper): LUTs grow linearly with counter width and\ndominate at large widths; F_max stays within placement noise for small\nwidths (<=8 bit Rocket-class, <=2 bit BOOM-class) and degrades beyond;\nremoval recovers a large fraction of the 32-bit overhead.\n"
