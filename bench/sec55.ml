(** §5.5: formal cover-trace generation on riscv-mini with bounded model
    checking. The paper's findings, reproduced:

    - the instruction and data caches share RTL, but the I-side is
      read-only, so the cache-write code blocks are unreachable on the
      instruction cache (and its FSM's WriteThrough state is dead);
    - FSM coverage's conservative next-state analysis can over-report
      transitions; formal proves which of them can never fire;
    - every reachable cover comes with an input trace that replays on any
      software backend. *)

module Bmc = Sic_formal.Bmc
module Fsm = Sic_coverage.Fsm_coverage
module Counts = Sic_coverage.Counts
open Sic_sim

let bound = 12

let run () =
  Timing.header
    (Printf.sprintf "Section 5.5: formal trace generation on riscv-mini (bound %d)" bound);
  let c = Sic_designs.Riscv_mini.circuit ~params:Sic_designs.Riscv_mini.formal_params () in
  let low = Sic_passes.Compile.lower c in
  let low, fsm_db = Fsm.instrument low in
  (* target all cache FSM covers of both cache instances *)
  let covers =
    List.concat_map
      (fun (f : Fsm.fsm) ->
        if
          String.length f.Fsm.reg_name >= 6
          && (String.sub f.Fsm.reg_name 0 6 = "icache" || String.sub f.Fsm.reg_name 0 6 = "dcache")
        then List.map snd f.Fsm.state_covers @ List.map snd f.Fsm.transition_covers
        else [])
      fsm_db
  in
  let (report, seconds) =
    Timing.wall (fun () -> Bmc.check_covers ~bound ~covers low)
  in
  Timing.row "%s" (Bmc.render report);
  Timing.row "solved %d cover targets in %.1fs\n\n" (List.length covers) seconds;
  let dead = Bmc.unreachable report in
  let icache_dead = List.filter (fun n -> String.length n > 4 && String.sub n 4 6 = "icache") dead in
  Timing.row "unreachable on the icache (read-only instruction cache): %d points\n"
    (List.length icache_dead);
  List.iter (fun n -> Timing.row "  %s\n" n) icache_dead;
  (* verify one reachable trace end-to-end on a software backend *)
  (match Bmc.reachable report with
  | (name, trace) :: _ ->
      let b = Interp.create low in
      Replay.replay b trace;
      Timing.row "\nwitness check: trace for %s replays on the interpreter -> count %d\n" name
        (Counts.get (b.Backend.counts ()) name)
  | [] -> ());
  (* extension: k-induction upgrades "unreachable within the bound" to
     "dead at every cycle" for the icache write path *)
  let ind, ind_secs =
    Timing.wall (fun () ->
        Bmc.prove_unreachable ~k:1
          ~covers:[ "fsm_icache.state_state_WriteThrough"; "fsm_icache.state_WriteThrough_to_Respond" ]
          low)
  in
  Timing.row "\n%s" (Bmc.render_induction ind);
  Timing.row "k-induction closed the icache write path in %.1fs\n" ind_secs;
  Timing.row
    "\nShape check (paper): the shared-cache write path (WriteThrough state\nand its transitions) is unreachable on the instruction cache but\nreachable on the data cache; conservative FSM transitions that can\nnever fire are exposed by the formal backend.\n"
