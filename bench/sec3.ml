(** §3: the simulator-independent interface itself. One instrumented
    design, one recorded stimulus, five very different backends — a
    tree-walking interpreter (Treadle), a compiled tape (Verilator), an
    activity-driven simulator (ESSENT), the scan-chain "FPGA" path
    (FireSim), and a BMC-generated trace (SymbiYosys) — and one identical
    counts map from all of them. *)

module Counts = Sic_coverage.Counts
module Scan = Sic_firesim.Scan_chain
module Driver = Sic_firesim.Driver
module Bmc = Sic_formal.Bmc
open Sic_sim

let run () =
  Timing.header "Section 3: one cover primitive, five backends, identical counts";
  let c = Sic_designs.Gcd.circuit () in
  let c, _ = Sic_coverage.Line_coverage.instrument c in
  let low = Sic_passes.Compile.lower c in
  (* record one stimulus: compute gcd(270, 192), then gcd(17, 5) *)
  let scratch = Compiled.create low in
  let trace =
    Replay.record scratch ~cycles:80 (fun b cycle ->
        b.Backend.poke "reset" (Sic_bv.Bv.of_bool (cycle < 1));
        b.Backend.poke "io_out_ready" (Sic_bv.Bv.one 1);
        let feed v on =
          b.Backend.poke "io_in_valid" (Sic_bv.Bv.of_bool on);
          b.Backend.poke "io_in_bits" (Sic_bv.Bv.of_int ~width:32 v)
        in
        if cycle = 1 then feed ((270 lsl 16) lor 192) true
        else if cycle = 40 then feed ((17 lsl 16) lor 5) true
        else feed 0 false)
  in
  let results = ref [] in
  let note name counts = results := (name, counts) :: !results in
  (* 1-3: software backends *)
  List.iter
    (fun (name, create) ->
      let b : Backend.t = create low in
      Replay.replay b trace;
      note name (b.Backend.counts ()))
    [
      ("interp (Treadle)", Interp.create);
      ("compiled (Verilator)", (fun c -> Compiled.create c));
      ("essent (ESSENT)", Essent.create);
    ]
  ;
  (* 4: scan-chain FPGA path *)
  let chained, chain = Scan.insert ~width:32 low in
  let fb = Compiled.create chained in
  let scan = Driver.run_and_scan fb chain ~workload:(fun b -> Replay.replay b trace) in
  note "scan-chain (FireSim)" scan.Driver.counts;
  (* print *)
  let reference = List.assoc "interp (Treadle)" !results in
  Timing.row "%-24s %10s %8s\n" "backend" "covered" "equal?";
  List.iter
    (fun (name, counts) ->
      Timing.row "%-24s %7d/%d %8s\n" name (Counts.covered_points counts)
        (Counts.total_points counts)
        (if Counts.equal counts reference then "yes" else "NO"))
    (List.rev !results);
  (* 5: the formal backend generates its own traces; show it reaching an
     arbitrary cover and agreeing with a software replay *)
  let report = Bmc.check_covers ~bound:8 low in
  (match Bmc.reachable report with
  | (name, witness) :: _ ->
      let b = Interp.create low in
      Replay.replay b witness;
      Timing.row "%-24s %s -> hit (replayed trace, count %d)\n" "bmc (SymbiYosys)" name
        (Counts.get (b.Backend.counts ()) name)
  | [] -> Timing.row "%-24s (no reachable covers?)\n" "bmc (SymbiYosys)");
  (* per-backend implementation effort, the §3.x narrative (Treadle: ~200
     lines; ESSENT: ~60 lines in 5 hours) *)
  let loc path =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           if String.trim (input_line ic) <> "" then incr n
         done
       with End_of_file -> ());
      close_in ic;
      Some !n
    end
    else None
  in
  Timing.row "\nper-backend cover support (lines of code; paper: Treadle ~200, ESSENT ~60):\n";
  List.iter
    (fun (name, files) ->
      match List.filter_map loc files with
      | [] -> ()
      | ls -> Timing.row "  %-28s %4d lines\n" name (List.fold_left ( + ) 0 ls))
    [
      ("interp (Treadle)", [ "lib/sim/interp.ml" ]);
      ("compiled (Verilator glue)", [ "lib/sim/compiled.ml" ]);
      ("essent (ESSENT)", [ "lib/sim/essent.ml" ]);
      ("scan chain + driver (FireSim)", [ "lib/firesim/scan_chain.ml"; "lib/firesim/driver.ml" ]);
      ("bmc (SymbiYosys)", [ "lib/formal/bmc.ml"; "lib/formal/unroll.ml" ]);
    ];
  Timing.row
    "\nShape check (paper): every backend reports the same map from cover\nname to count; merging across backends is therefore trivial.\n"
