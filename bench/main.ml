(** The benchmark harness: one experiment per table and figure of the
    paper's evaluation. Run with no argument to regenerate everything, or
    pass experiment ids (table1, table2, fig8, fig9, fig10, fig11, fig12,
    sec3, sec52, sec53, sec55, ablation, campaign, close, timeline, sim,
    serve, verilog) to run a subset. *)

let experiments =
  [
    ("sec3", Sec3.run);
    ("table1", Table1.run);
    ("table2", Table2.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9_10.run);
    ("fig10", Fig9_10.run);
    ("sec52", Sec52.run);
    ("sec53", Sec53.run);
    ("fig11", Fig11.run);
    ("sec55", Sec55.run);
    ("fig12", Fig12.run);
    ("ablation", Ablation.run);
    ("campaign", Campaign.run);
    ("close", Close_bench.run);
    ("timeline", Timeline_bench.run);
    ("sim", Sim_bench.run);
    ("serve", Serve_bench.run);
    ("verilog", Verilog_bench.run);
  ]

(* fig9 and fig10 share one runner; avoid running it twice in "all" mode *)
let all_order =
  [ "sec3"; "table1"; "table2"; "fig8"; "fig9"; "sec52"; "sec53"; "fig11"; "sec55"; "fig12"; "ablation"; "campaign"; "close"; "timeline"; "sim"; "serve"; "verilog" ]

(* SIC_PROFILE=FILE records telemetry for the whole bench run and writes
   NDJSON there at exit (FILE.trace gets the Chrome trace) — the bench
   trajectories README.md describes. *)
let setup_telemetry () =
  match Sys.getenv_opt "SIC_PROFILE" with
  | None | Some "" -> ()
  | Some path ->
      Timing.use_monotonic_clock ();
      Sic_obs.Obs.enable ();
      at_exit (fun () ->
          let oc = open_out path in
          Sic_obs.Obs.output_ndjson oc;
          close_out oc;
          let oc = open_out (path ^ ".trace") in
          Sic_obs.Obs.output_chrome_trace oc;
          close_out oc)

let () =
  setup_telemetry ();
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = if args = [] then all_order else args in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    selected
