(** Workload stimulus for the evaluation designs, recorded once as replay
    traces (the §5.1 methodology: measure raw simulation, not stimulus
    generation). Each function returns a deterministic input trace of the
    requested length for its design. *)

module Bv = Sic_bv.Bv
module Rng = Sic_fuzz.Rng
open Sic_sim

(* record a trace by driving a scratch backend *)
let record_trace (low : Sic_ir.Circuit.t) ~cycles drive : Replay.trace =
  let b = Compiled.create low in
  Replay.record b ~cycles (fun b cycle ->
      b.Backend.poke "reset" (Bv.of_bool (cycle < 1));
      drive b cycle)

(* --- riscv-mini: run a benchmark program in a loop -------------------- *)

(* A program touching most of the ISA: arithmetic, logic, branches, memory
   traffic, jumps. Computes Fibonacci-ish values in a loop, stores and
   reloads them. *)
let riscv_program =
  let open Sic_designs.Riscv_mini in
  [
    addi 1 0 1;            (* x1 = 1 *)
    addi 2 0 1;            (* x2 = 1 *)
    addi 5 0 0;            (* x5 = i = 0 *)
    addi 6 0 10;           (* x6 = limit *)
    (* loop: *)
    add 3 1 2;             (* x3 = x1 + x2 *)
    add 1 0 2;             (* x1 = x2 — note add x1, x0, x2 *)
    add 2 0 3;             (* x2 = x3 *)
    and_ 7 3 1;            (* exercise logic ops *)
    or_ 8 3 1;
    xor_ 9 3 1;
    sw 3 0 32;             (* dmem[8] = x3 *)
    lw 4 0 32;             (* x4 = dmem[8] *)
    addi 5 5 1;            (* i++ *)
    blt 5 6 (-36);         (* loop while i < limit *)
    lui 10 0xfff;          (* touch lui *)
    beq 0 0 8;             (* skip next *)
    addi 11 0 99;          (* (skipped) *)
    jal 0 (-68);           (* restart everything *)
  ]

let riscv_mini ~cycles : Sic_ir.Circuit.t * Replay.trace =
  let c = Sic_designs.Riscv_mini.circuit () in
  let low = Sic_passes.Compile.lower c in
  let trace =
    record_trace low ~cycles (fun b cycle ->
        (* loader is active during the first |program| cycles, then run *)
        let n = List.length riscv_program in
        if cycle < n then begin
          b.Backend.poke "iload_en" (Bv.one 1);
          b.Backend.poke "iload_addr" (Bv.of_int ~width:6 cycle);
          b.Backend.poke "iload_data" (Bv.of_int ~width:32 (List.nth riscv_program cycle));
          b.Backend.poke "run" (Bv.zero 1)
        end
        else begin
          b.Backend.poke "iload_en" (Bv.zero 1);
          b.Backend.poke "run" (Bv.one 1)
        end)
  in
  (c, trace)

(* --- TLRAM: random get/put traffic ------------------------------------ *)

let tlram ~cycles : Sic_ir.Circuit.t * Replay.trace =
  let c = Sic_designs.Tlram.circuit ~addr_bits:8 () in
  let low = Sic_passes.Compile.lower c in
  let rng = Rng.create 11 in
  let trace =
    record_trace low ~cycles (fun b _ ->
        b.Backend.poke "io_d_ready" (Bv.one 1);
        b.Backend.poke "io_a_valid" (Bv.of_bool (Rng.int rng 4 > 0));
        let put = Rng.bool rng in
        let addr = Rng.int rng 256 and data = Rng.int rng 0xFFFF in
        b.Backend.poke "io_a_bits"
          (Bv.of_int ~width:41 ((data lsl 9) lor (addr lsl 1) lor if put then 1 else 0)))
  in
  (c, trace)

(* --- serv: a stream of serial ALU operations --------------------------- *)

let serv ~cycles : Sic_ir.Circuit.t * Replay.trace =
  let c = Sic_designs.Serv.circuit () in
  let low = Sic_passes.Compile.lower c in
  let rng = Rng.create 17 in
  let trace =
    record_trace low ~cycles (fun b _ ->
        b.Backend.poke "io_resp_ready" (Bv.one 1);
        b.Backend.poke "io_req_valid" (Bv.one 1);
        let op = Rng.int rng 5 in
        let a = Rng.int rng 0x3FFFFFFF and v = Rng.int rng 0x3FFFFFFF in
        b.Backend.poke "io_req_bits"
          (Bv.logor ~width:67
             (Bv.shift_left ~width:67 (Bv.of_int ~width:67 v) 35)
             (Bv.logor ~width:67
                (Bv.shift_left ~width:67 (Bv.of_int ~width:67 a) 3)
                (Bv.of_int ~width:67 op))))
  in
  (c, trace)

(* --- neuroproc: sparse spike trains ------------------------------------ *)

let neuroproc_neurons = 128

let neuroproc ~cycles : Sic_ir.Circuit.t * Replay.trace =
  let c = Sic_designs.Neuroproc.circuit ~neurons:neuroproc_neurons () in
  let low = Sic_passes.Compile.lower c in
  let rng = Rng.create 23 in
  let trace =
    record_trace low ~cycles (fun b _ ->
        b.Backend.poke "enable" (Bv.one 1);
        (* sparse activity: a couple of random neurons stimulated *)
        let spikes =
          Bv.logor ~width:neuroproc_neurons
            (Bv.shift_left ~width:neuroproc_neurons (Bv.one neuroproc_neurons)
               (Rng.int rng neuroproc_neurons))
            (if Rng.int rng 4 = 0 then
               Bv.shift_left ~width:neuroproc_neurons (Bv.one neuroproc_neurons)
                 (Rng.int rng neuroproc_neurons)
             else Bv.zero neuroproc_neurons)
        in
        b.Backend.poke "in_spikes" spikes)
  in
  (c, trace)

(* --- I2C: decoupled command stream (for the fuzzing comparison) ------- *)

let i2c ~cycles : Sic_ir.Circuit.t * Replay.trace =
  let c = Sic_designs.I2c.circuit () in
  let low = Sic_passes.Compile.lower c in
  let rng = Rng.create 31 in
  let trace =
    record_trace low ~cycles (fun b _ ->
        b.Backend.poke "io_resp_ready" (Bv.one 1);
        b.Backend.poke "sda_in" (Bv.of_bool (Rng.bool rng));
        b.Backend.poke "io_cmd_valid" (Bv.of_bool (Rng.int rng 4 = 0));
        b.Backend.poke "io_cmd_bits" (Bv.of_int ~width:16 (Rng.int rng 65536)))
  in
  (c, trace)

(** The Table 2 benchmark set: name, paper cycle count, our (scaled) cycle
    count, and the builder. NeuroProc's 53 M cycles are scaled down; the
    scale factor is printed with the table. *)
let table2_set =
  [
    ("riscv-mini", 126_550, 126_550, riscv_mini);
    ("TLRAM", 816_473, 200_000, tlram);
    ("serv-chisel", 828_931, 200_000, serv);
    ("NeuroProc", 53_455_204, 50_000, neuroproc);
  ]

(* --- SoC workload: load a program into every core and run -------------- *)

let soc_drive ?(spikes = 0) (b : Backend.t) ~(cores : int) ~(run_cycles : int) =
  Backend.reset_sequence b;
  b.Backend.poke "run" (Bv.zero 1);
  let n = List.length riscv_program in
  for core = 0 to cores - 1 do
    List.iteri
      (fun i inst ->
        b.Backend.poke "load_en" (Bv.one 1);
        b.Backend.poke "load_core" (Bv.of_int ~width:4 core);
        b.Backend.poke "load_side" (Bv.zero 1);
        b.Backend.poke "load_addr" (Bv.of_int ~width:7 i);
        b.Backend.poke "load_data" (Bv.of_int ~width:32 inst);
        b.Backend.step 1)
      riscv_program;
    ignore n
  done;
  b.Backend.poke "load_en" (Bv.zero 1);
  b.Backend.poke "run" (Bv.one 1);
  b.Backend.poke "spike_in" (Bv.of_int ~width:8 spikes);
  b.Backend.step run_cycles
