(** Campaign scaling: the same multi-design, multi-backend coverage
    campaign at -j 1, 2 and 4. Reports wall time and speedup per worker
    count (bounded by the machine's core count — a single-core box shows
    ~1x throughout), and checks the promise the orchestrator makes: the
    resulting database aggregate is identical no matter how the jobs were
    sharded. *)

module Counts = Sic_coverage.Counts
module Db = Sic_db.Db
module Fleet = Sic_fleet.Fleet
module Line = Sic_coverage.Line_coverage

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let spec ~jobs =
  let instrumented name c =
    let ic, _ = Line.instrument c in
    (name, Sic_passes.Compile.lower ic)
  in
  {
    Fleet.designs =
      [
        instrumented "gcd" (Sic_designs.Gcd.circuit ());
        instrumented "fifo" (Sic_designs.Fifo.circuit ());
        instrumented "uart" (Sic_designs.Uart.circuit ());
        instrumented "counter" (Sic_designs.Counter.circuit ());
      ];
    waves = [ [ Fleet.Compiled; Fleet.Interp ]; [ Fleet.Fuzz ] ];
    seeds = 2;
    lanes = 1;
    cycles = 20_000;
    execs = 1_000;
    bound = 10;
    scan_width = 16;
    master_seed = 7;
    jobs;
    timeout_s = None;
    retries = 1;
    threshold = 1;
    timeline_every = 0;
    profile = false;
  }

let run () =
  Timing.header "Campaign scaling: forked workers, -j 1 / 2 / 4";
  let results =
    List.map
      (fun jobs ->
        let dir = Printf.sprintf "bench_campaign_j%d.db" jobs in
        if Sys.file_exists dir then rm_rf dir;
        let db = Db.init dir in
        let (summary : Fleet.summary), dt =
          Timing.wall (fun () -> Fleet.run_campaign ~db (spec ~jobs))
        in
        Timing.row "  -j %d: %2d jobs in %6.2fs  (%d/%d points covered)\n" jobs
          summary.Fleet.total_jobs dt summary.Fleet.points_covered summary.Fleet.points_total;
        (jobs, dir, db, dt))
      [ 1; 2; 4 ]
  in
  let _, _, db1, t1 = List.hd results in
  List.iter
    (fun (jobs, _, db, dt) ->
      if jobs <> 1 then begin
        if not (Counts.equal (Db.aggregate db1) (Db.aggregate db)) then
          failwith (Printf.sprintf "campaign aggregate differs at -j %d" jobs);
        Timing.row "  speedup -j %d over -j 1: %.2fx (aggregate identical)\n" jobs (t1 /. dt)
      end)
    results;
  List.iter (fun (_, dir, _, _) -> rm_rf dir) results
