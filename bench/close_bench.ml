(** Coverage-closure throughput: [sic close] on the closure fixture at
    -j 1 and -j 2, reporting waves-to-fixpoint, points resolved (covered
    or excluded) per second and wall time, written to BENCH_close.json
    for CI tracking. Also re-checks the loop's determinism promise: the
    final database (manifest, counts, exclusion artifact) is
    byte-identical across -j. SIC_BENCH_SMOKE=1 shrinks the fuzz budget
    so CI can afford the run. *)

module Close = Sic_close.Close
module Db = Sic_db.Db
module Line = Sic_coverage.Line_coverage

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run () =
  let smoke = Sys.getenv_opt "SIC_BENCH_SMOKE" <> None in
  Timing.header
    (Printf.sprintf "close: formal <-> fuzz closure loop on closefix%s"
       (if smoke then " (smoke)" else ""));
  let low = Sic_passes.Compile.lower (fst (Line.instrument (Sic_designs.Closefix.circuit ()))) in
  let results =
    List.map
      (fun jobs ->
        let dir = Printf.sprintf "bench_close_j%d.db" jobs in
        if Sys.file_exists dir then rm_rf dir;
        let db = Db.init dir in
        let config =
          {
            (Close.default_config ~design:"closefix" ~circuit:low) with
            bound = 8;
            execs = (if smoke then 100 else 300);
            jobs;
          }
        in
        let (o : Close.outcome), dt = Timing.wall (fun () -> Close.close ~db config) in
        if o.Close.points_open > 0 then
          failwith (Printf.sprintf "close left %d points open" o.Close.points_open);
        let resolved = o.Close.points_covered + o.Close.points_excluded in
        Timing.row
          "  -j %d: %d waves to fixpoint, %d covered + %d excluded in %6.2fs  (%5.1f points/s)\n"
          jobs (List.length o.Close.waves) o.Close.points_covered o.Close.points_excluded dt
          (float_of_int resolved /. dt);
        (jobs, dir, o, dt))
      [ 1; 2 ]
  in
  (* determinism: every database file byte-identical across -j *)
  let _, dir1, _, _ = List.hd results in
  let files dir =
    List.sort compare
      (List.filter (fun f -> f <> "lock") (Array.to_list (Sys.readdir dir)))
  in
  List.iter
    (fun (jobs, dir, _, _) ->
      if jobs <> 1 then begin
        if files dir <> files dir1 then
          failwith (Printf.sprintf "close db layout differs at -j %d" jobs);
        List.iter
          (fun f ->
            if read_file (Filename.concat dir f) <> read_file (Filename.concat dir1 f) then
              failwith (Printf.sprintf "close db file %s differs at -j %d" f jobs))
          (files dir);
        Timing.row "  -j %d database byte-identical to -j 1 (incl. exclusions.ndjson)\n" jobs
      end)
    results;
  let oc = open_out "BENCH_close.json" in
  Printf.fprintf oc "{\n  \"design\": \"closefix\",\n  \"smoke\": %b,\n  \"results\": [\n" smoke;
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun (jobs, _, (o : Close.outcome), dt) ->
            let resolved = o.Close.points_covered + o.Close.points_excluded in
            Printf.sprintf
              "    { \"jobs\": %d, \"waves\": %d, \"covered\": %d, \"excluded\": %d, \
               \"wall_s\": %.3f, \"points_per_s\": %.1f }"
              jobs (List.length o.Close.waves) o.Close.points_covered o.Close.points_excluded
              dt
              (float_of_int resolved /. dt))
          results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Timing.row "wrote BENCH_close.json\n";
  List.iter (fun (_, dir, _, _) -> rm_rf dir) results
