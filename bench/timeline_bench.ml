(** Timeline sampling overhead: what the coverage-convergence sampler
    costs a compiled-backend run at sampling periods 0 (disabled), 100 and
    1000 cycles. The contract under test: [Backend.with_sampler ~every:0]
    returns the backend {e unchanged} — the disabled path is free by
    construction — and the default period (100) should stay within noise
    of the unsampled run, since a sample is two closure calls per period. *)

module Counts = Sic_coverage.Counts
module Tl = Sic_coverage.Timeline
open Sic_sim

let cycles = 200_000

let run () =
  Timing.header "Timeline sampling overhead: compiled gcd, 200k cycles";
  let c, _ = Sic_coverage.Line_coverage.instrument (Sic_designs.Gcd.circuit ()) in
  let low = Sic_passes.Compile.lower c in
  let measure every =
    let b = Compiled.create low in
    let tlb = Tl.builder () in
    let wrapped =
      Backend.with_sampler ~every
        (fun ~cycles ~covered -> Tl.record tlb ~at:cycles ~covered)
        b
    in
    if every <= 0 && not (wrapped == b) then failwith "disabled sampler is not free";
    Backend.reset_sequence wrapped;
    let rng = Sic_fuzz.Rng.create 7 in
    let (), dt =
      Timing.wall (fun () ->
          Backend.random_stimulus ~bits:(Sic_fuzz.Rng.bits30 rng) ~cycles wrapped)
    in
    (dt, List.length (Tl.build tlb).Tl.samples)
  in
  ignore (measure 0) (* warm up the compiled backend's code paths *);
  let base, _ = measure 0 in
  Timing.row "  sampling off : %6.3f s  (%6.0f kcyc/s) — with_sampler returned the backend unchanged\n"
    base
    (float_of_int cycles /. base /. 1e3);
  List.iter
    (fun every ->
      let dt, samples = measure every in
      Timing.row "  every %6d : %6.3f s  (%6.0f kcyc/s, %4d samples, %+5.1f%% vs off)\n" every
        dt
        (float_of_int cycles /. dt /. 1e3)
        samples
        ((dt -. base) /. base *. 100.))
    [ 100; 1000 ]
