(** Measurement helpers for the benchmark harness: Bechamel for
    micro-benchmarks (per-cycle simulation costs) and a plain wall clock
    for single-shot workload runs. *)

open Bechamel

(** [ns_per_run name fn] estimates the execution time of [fn ()] in
    nanoseconds with Bechamel's OLS analysis over a monotonic clock. *)
let ns_per_run ?(quota = 0.5) name (fn : unit -> unit) : float =
  let test = Test.make ~name (Staged.stage fn) in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:None () in
  let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with Some (e :: _) -> e | Some [] | None -> acc)
    analyzed nan

module Obs = Sic_obs.Obs

(** Plug Bechamel's monotonic clock (nanoseconds) into the telemetry layer
    so bench telemetry is immune to wall-clock steps; see DESIGN.md. *)
let use_monotonic_clock () =
  (* Toolkit.Monotonic_clock reads CLOCK_MONOTONIC in nanoseconds *)
  Obs.set_clock (fun () -> Toolkit.Monotonic_clock.get () /. 1e9)

(** Wall-clock seconds of a single run (for long workloads). Recorded as a
    [bench.wall] telemetry span when recording is on (SIC_PROFILE=FILE). *)
let wall (fn : unit -> 'a) : 'a * float =
  let ctx = Obs.span_open () in
  let t0 = Unix.gettimeofday () in
  let r = fn () in
  let dt = Unix.gettimeofday () -. t0 in
  Obs.span_close ctx ~name:"bench.wall" [ ("seconds", Obs.Float dt) ];
  (r, dt)

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let row fmt = Printf.printf fmt
