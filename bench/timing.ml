(** Measurement helpers for the benchmark harness: Bechamel for
    micro-benchmarks (per-cycle simulation costs) and a plain wall clock
    for single-shot workload runs. *)

open Bechamel

(** [ns_per_run name fn] estimates the execution time of [fn ()] in
    nanoseconds with Bechamel's OLS analysis over a monotonic clock. *)
let ns_per_run ?(quota = 0.5) name (fn : unit -> unit) : float =
  let test = Test.make ~name (Staged.stage fn) in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:None () in
  let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with Some (e :: _) -> e | Some [] | None -> acc)
    analyzed nan

(** Wall-clock seconds of a single run (for long workloads). *)
let wall (fn : unit -> 'a) : 'a * float =
  let t0 = Unix.gettimeofday () in
  let r = fn () in
  (r, Unix.gettimeofday () -. t0)

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let row fmt = Printf.printf fmt
