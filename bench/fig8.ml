(** Figure 8: run-time overhead of coverage instrumentation on the
    compiled (Verilator-analogue) backend, relative to the uninstrumented
    baseline.

    Variants per design:
    - baseline          : no coverage
    - built-in line     : the simulator's own hard-coded line coverage
                          (Verilator's native mode)
    - line (pass)       : our simulator-independent line coverage
    - toggle (pass)     : our toggle coverage
    - fsm (pass)        : our FSM coverage (designs with enums)
    - ready/valid (pass): our decoupled-transfer coverage

    The paper's claim: the pass-based metrics cost about the same as the
    built-in implementation ("Verilator appears to internally follow an
    approach similar to ours"). *)

open Sic_sim

let bench_cycles = 4_000

let replay_time low trace =
  let b = Compiled.create low in
  Timing.ns_per_run "replay" (fun () -> Replay.replay b trace)

let replay_time_builtin c trace =
  let b = Compiled.create ~builtin_line:true c in
  Timing.ns_per_run "replay-builtin" (fun () -> Replay.replay b trace)

let variants (c : Sic_ir.Circuit.t) =
  let lower = Sic_passes.Compile.lower in
  let line () =
    let c', _ = Sic_coverage.Line_coverage.instrument c in
    lower c'
  in
  let toggle () =
    let low = lower c in
    fst (Sic_coverage.Toggle_coverage.instrument low)
  in
  let fsm () =
    let low = lower c in
    fst (Sic_coverage.Fsm_coverage.instrument low)
  in
  let rv () =
    let low = lower c in
    fst (Sic_coverage.Ready_valid_coverage.instrument low)
  in
  let mux () =
    let low = lower c in
    fst (Sic_coverage.Mux_coverage.instrument low)
  in
  [
    ("line (pass)", line); ("toggle (pass)", toggle); ("fsm (pass)", fsm);
    ("ready/valid", rv); ("mux (rfuzz)", mux);
  ]

let run () =
  Timing.header "Figure 8: coverage overhead on the compiled backend (vs baseline)";
  Timing.row "%-14s %-16s %12s %10s\n" "Design" "Instrumentation" "ns/replay" "overhead";
  List.iter
    (fun (name, _paper_cycles, _cycles, build) ->
      let c, trace = build ~cycles:bench_cycles in
      let low = Sic_passes.Compile.lower c in
      let base = replay_time low trace in
      Timing.row "%-14s %-16s %12.0f %10s\n" name "baseline" base "-";
      let builtin = replay_time_builtin c trace in
      Timing.row "%-14s %-16s %12.0f %+9.1f%%\n" name "built-in line" builtin
        (100.0 *. (builtin -. base) /. base);
      List.iter
        (fun (vname, make) ->
          match make () with
          | instrumented ->
              let t = replay_time instrumented trace in
              Timing.row "%-14s %-16s %12.0f %+9.1f%%\n" name vname t
                (100.0 *. (t -. base) /. base)
          | exception _ -> Timing.row "%-14s %-16s %12s %10s\n" name vname "n/a" "-")
        (variants c);
      Timing.row "\n")
    Workloads.table2_set;
  Timing.row
    "Shape check (paper): pass-based line coverage costs about the same as\nthe simulator's built-in line coverage; TLRAM's line overhead is near\nzero (8 cover points); toggle coverage is the most expensive metric.\n"
