(** Figure 12 (§6): the cover-values extension. Covering every value of a
    w-bit signal with plain cover statements needs 2^w of them; the
    cover-values primitive is a single statement lowered to an array of
    counters. This bench sweeps w and compares statement counts and
    per-cycle simulation cost of the two implementations (their counts are
    equal — checked in the test suite). *)

module Bv = Sic_bv.Bv
open Sic_sim

let circuit w =
  let cb = Sic_ir.Dsl.create_circuit "CV" in
  Sic_ir.Dsl.module_ cb "CV" (fun m ->
      let open Sic_ir.Dsl in
      let x = input m "x" (Sic_ir.Ty.UInt w) in
      let out = output m "out" (Sic_ir.Ty.UInt w) in
      connect m out (x +: lit w 1);
      cover_values m "vals" x);
  Sic_passes.Compile.lower (Sic_ir.Dsl.finalize cb)

let cycle_cost low =
  let b = Compiled.create low in
  let rng = Sic_fuzz.Rng.create 9 in
  let inputs = Backend.data_inputs b in
  Timing.ns_per_run "cycles" ~quota:0.25 (fun () ->
      List.iter
        (fun (n, ty) ->
          b.Backend.poke n
            (Bv.random ~width:(Sic_ir.Ty.width ty) (Sic_fuzz.Rng.bits30 rng)))
        inputs;
      b.Backend.step 1)

let run () =
  Timing.header "Figure 12: cover-values vs exponential cover expansion";
  Timing.row "%6s %16s %14s %18s %16s\n" "width" "# cover stmts" "ns/cycle" "# native stmts"
    "ns/cycle native";
  List.iter
    (fun w ->
      let low = circuit w in
      let native_cost = cycle_cost low in
      let expanded = Sic_coverage.Cover_values.expand low in
      let n_expanded =
        List.length (Sic_ir.Circuit.covers_of (Sic_ir.Circuit.main expanded))
      in
      let expanded_cost = cycle_cost expanded in
      Timing.row "%6d %16d %14.0f %18d %16.0f\n" w n_expanded expanded_cost 1 native_cost)
    [ 2; 4; 6; 8; 10; 12 ];
  Timing.row
    "\nShape check (paper): the expansion doubles the statement count per\nextra bit (exponential blowup) and its simulation cost follows, while\nthe native cover-values implementation is a single array update whose\ncost stays flat.\n"
