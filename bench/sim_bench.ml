(** [bench sim]: per-cycle simulation throughput of every software backend
    on the Table 2 workloads, written to BENCH_sim.json for CI tracking.

    For each design we record one replay trace (so stimulus generation is
    excluded, the §5.1 methodology), then measure ns/cycle for each backend
    replaying that same trace: the interpreter, the retired closure/Bv
    reference tape (plain and activity-driven), and the word-level engine
    (plain as "compiled", activity-driven as "essent"). Coverage counts are
    cross-checked across all backends before timing — a backend that
    disagrees with the interpreter is a correctness bug, not a data point.

    SIC_BENCH_SMOKE=1 shrinks the trace lengths and measurement quota so CI
    can run the whole thing in seconds; the JSON layout is identical. *)

module Counts = Sic_coverage.Counts
open Sic_sim

let backends : (string * (Sic_ir.Circuit.t -> Backend.t)) list =
  [
    ("interp", Interp.create);
    ("ref-tape", fun c -> Ref_tape.create c);
    ("ref-tape-activity", fun c -> Ref_tape.create ~activity:true c);
    ("compiled", fun c -> Compiled.create c);
    ("essent", Essent.create);
    (* the bit-parallel engine driven in lockstep: all 62 lanes replay the
       same trace, so its counts join the interp cross-check; its ns/cycle
       row is the cost of one full-width pass (the number the dedicated
       lane section divides by 62) *)
    ("lanes-lockstep", fun c -> Lanes.create c);
  ]

(* fresh backend, one full replay: the counts all backends must agree on *)
let counts_of create low trace =
  let b = create low in
  Replay.replay b trace;
  b.Backend.counts ()

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | s ->
      let n = List.length s in
      let a = List.nth s ((n - 1) / 2) and b = List.nth s (n / 2) in
      (a +. b) /. 2.0

let run () =
  let smoke = Sys.getenv_opt "SIC_BENCH_SMOKE" <> None in
  let cycles = if smoke then 100 else 2_000 in
  let quota = if smoke then 0.05 else 0.5 in
  Timing.header
    (Printf.sprintf "sim: per-cycle backend throughput (%d-cycle traces%s)" cycles
       (if smoke then ", smoke" else ""));
  Timing.row "%-14s %-18s %12s\n" "Design" "Backend" "ns/cycle";
  let results = ref [] in
  let speedups = ref [] in
  List.iter
    (fun (name, _, _, build) ->
      let c, trace = build ~cycles in
      let low = Sic_passes.Compile.lower c in
      Timing.row "%-14s tape: %s\n" name (Compiled.stats (Compiled.build low));
      (* correctness gate: identical coverage counts on every backend *)
      let reference = counts_of Interp.create low trace in
      List.iter
        (fun (bname, create) ->
          if not (Counts.equal reference (counts_of create low trace)) then
            failwith (Printf.sprintf "sim bench: %s disagrees with interp on %s" bname name))
        backends;
      let per_backend =
        List.map
          (fun (bname, create) ->
            let b = create low in
            Replay.replay b trace (* warm-up *);
            let ns =
              Timing.ns_per_run ~quota
                (Printf.sprintf "%s/%s" name bname)
                (fun () -> Replay.replay b trace)
            in
            let ns_cycle = ns /. float_of_int (Replay.cycles trace) in
            Timing.row "%-14s %-18s %12.1f\n" name bname ns_cycle;
            (bname, ns_cycle))
          backends
      in
      results := (name, per_backend) :: !results;
      (match (List.assoc_opt "ref-tape" per_backend, List.assoc_opt "compiled" per_backend) with
      | Some old_ns, Some new_ns when new_ns > 0.0 ->
          let s = old_ns /. new_ns in
          speedups := s :: !speedups;
          Timing.row "%-14s %-18s %11.2fx\n" name "word-level speedup" s
      | _ -> ()))
    Workloads.table2_set;
  let med = median !speedups in
  Timing.row "\nmedian word-level speedup over the Bv reference tape: %.2fx\n" med;
  (* --- the lane engine: 62 independent seeds per tape pass ------------- *)
  (* Replay can't exercise independent lanes (a trace is one stimulus
     stream), so this section measures the real workload both ways: random
     stimulus on the sequential compiled engine vs 62 split-derived
     streams advanced bit-parallel. Before any timing, a per-lane
     differential gate: every lane's counts must equal a solo compiled
     run over the same stream — a lane that disagrees is a correctness
     bug, not a data point. *)
  let lanes_k = 62 in
  let lanes_rows =
    let gate_cycles = if smoke then 20 else 100 in
    let stream seed l = Sic_fuzz.Rng.bits30 (Sic_fuzz.Rng.split (Sic_fuzz.Rng.create seed) l) in
    Timing.row "\nlane engine: %d seeds per pass (aggregate lane-cycles vs sequential compiled):\n"
      lanes_k;
    List.map
      (fun (name, _, _, build) ->
        let c, _ = build ~cycles in
        let low = Sic_passes.Compile.lower c in
        (* correctness gate *)
        let lt = Lanes.build ~lanes:lanes_k low in
        Backend.reset_sequence (Lanes.to_backend ~name:"lanes" lt);
        Lanes.run_random lt
          ~streams:(Array.init lanes_k (stream 1234))
          ~cycles:gate_cycles;
        for l = 0 to lanes_k - 1 do
          let b = Compiled.create low in
          Backend.reset_sequence b;
          Backend.random_stimulus ~bits:(stream 1234 l) ~cycles:gate_cycles b;
          if not (Counts.equal (b.Backend.counts ()) (Lanes.lane_counts lt l)) then
            failwith
              (Printf.sprintf "sim bench: lane %d disagrees with solo compiled on %s" l name)
        done;
        (* aggregate throughput: both sides draw their stimulus live, one
           stream per simulated run, fresh seeds per measured iteration *)
        let seedr = ref 0 in
        let lt = Lanes.build ~lanes:lanes_k low in
        Backend.reset_sequence (Lanes.to_backend ~name:"lanes" lt);
        Lanes.run_random lt ~streams:(Array.init lanes_k (stream 0)) ~cycles:1 (* warm-up *);
        let ns_lanes =
          Timing.ns_per_run ~quota
            (Printf.sprintf "%s/lanes%d" name lanes_k)
            (fun () ->
              incr seedr;
              Lanes.run_random lt ~streams:(Array.init lanes_k (stream !seedr)) ~cycles)
        in
        let ns_lane_cycle = ns_lanes /. float_of_int (cycles * lanes_k) in
        let bc = Compiled.create low in
        Backend.reset_sequence bc;
        Backend.random_stimulus ~bits:(stream 0 0) ~cycles:1 bc (* warm-up *);
        let ns_comp =
          Timing.ns_per_run ~quota
            (Printf.sprintf "%s/compiled-random" name)
            (fun () ->
              incr seedr;
              Backend.random_stimulus ~bits:(stream !seedr 0) ~cycles bc)
        in
        let ns_comp_cycle = ns_comp /. float_of_int cycles in
        let speedup = if ns_lane_cycle > 0.0 then ns_comp_cycle /. ns_lane_cycle else nan in
        let vf = Lanes.vectorized_fraction lt in
        Timing.row "%-14s %5.1f ns/lane-cycle vs %7.1f sequential: %5.2fx (%.0f%% vectorized)\n"
          name ns_lane_cycle ns_comp_cycle speedup (100. *. vf);
        (name, ns_lane_cycle, ns_comp_cycle, speedup, vf))
      Workloads.table2_set
  in
  (* acceptance gate: the 1-bit-dominated serv core is where lane packing
     must pay — anything below this is a regression in the engine *)
  (match List.find_opt (fun (n, _, _, _, _) -> n = "serv-chisel") lanes_rows with
  | Some (_, _, _, speedup, _) ->
      let floor_ = if smoke then 4.0 else 8.0 in
      if speedup < floor_ then
        failwith
          (Printf.sprintf
             "sim bench: lanes aggregate speedup %.2fx on serv-chisel is below the %.0fx gate"
             speedup floor_)
  | None -> ());
  (* profiler overhead: the word-level engine on the largest workload with
     the hotspot profiler off / counts-only / sampled. "off" must match the
     plain engine within measurement noise — the profiler's entire off-path
     cost is one branch per [run_tape] — and the sampled path is budgeted
     at 10%. The profiled modes run the activity schedule, so their
     reference is the activity engine measured back to back; each mode is
     measured in several interleaved rounds and we keep the per-mode
     minimum, because CPU frequency drifts far more across a long bench
     run than any of these deltas. *)
  let prof_results =
    match Workloads.table2_set with
    | [] -> []
    | (name, _, _, build) :: _ ->
        Timing.row "\nprofiler overhead (%s):\n" name;
        let c, trace = build ~cycles in
        let low = Sic_passes.Compile.lower c in
        Timing.row "%-14s profiled tape: %s\n" name
          (Compiled.stats (Compiled.build ~profile:Compiled.Counts_only low));
        let modes =
          [
            ("profile-baseline", fun () -> Compiled.build ~activity:true low);
            ("profile-off", fun () -> Compiled.build ~activity:true low);
            ("profile-counts", fun () -> Compiled.build ~profile:Compiled.Counts_only low);
            ( "profile-sampled",
              fun () -> Compiled.build ~profile:(Compiled.Sampled 512) low );
          ]
        in
        let built =
          List.map
            (fun (mname, mk) ->
              let b = Compiled.to_backend ~name:mname (mk ()) in
              Replay.replay b trace (* warm-up *);
              (mname, b))
            modes
        in
        let rounds = 6 in
        let best = Hashtbl.create 8 in
        for _ = 1 to rounds do
          List.iter
            (fun (mname, b) ->
              let ns =
                Timing.ns_per_run ~quota:(quota /. float_of_int rounds)
                  (Printf.sprintf "%s/%s" name mname)
                  (fun () -> Replay.replay b trace)
              in
              let ns_cycle = ns /. float_of_int (Replay.cycles trace) in
              match Hashtbl.find_opt best mname with
              | Some prev when prev <= ns_cycle -> ()
              | _ -> Hashtbl.replace best mname ns_cycle)
            built
        done;
        List.map
          (fun (mname, _) ->
            let ns_cycle = Hashtbl.find best mname in
            Timing.row "%-14s %-18s %12.1f\n" name mname ns_cycle;
            (mname, ns_cycle))
          built
  in
  let prof_ratio m =
    match (List.assoc_opt "profile-off" prof_results, List.assoc_opt m prof_results) with
    | Some off, Some v when off > 0.0 -> v /. off
    | _ -> nan
  in
  (match prof_results with
  | [] -> ()
  | _ ->
      let off_vs_baseline =
        match
          ( List.assoc_opt "profile-off" prof_results,
            List.assoc_opt "profile-baseline" prof_results )
        with
        | Some off, Some base when base > 0.0 -> off /. base
        | _ -> nan
      in
      Timing.row
        "profiler ratios: off-vs-baseline %.3fx, counts %.3fx, sampled %.3fx\n"
        off_vs_baseline (prof_ratio "profile-counts") (prof_ratio "profile-sampled");
      (* hard gates, generous to bechamel noise in smoke runs *)
      let tol_off = if smoke then 1.50 else 1.05 in
      let tol_sampled = if smoke then 3.0 else 1.10 in
      if off_vs_baseline > tol_off then
        failwith
          (Printf.sprintf "sim bench: profiler-off overhead %.3fx exceeds baseline gate"
             off_vs_baseline);
      if prof_ratio "profile-sampled" > tol_sampled then
        failwith
          (Printf.sprintf "sim bench: sampled profiler overhead %.3fx exceeds gate"
             (prof_ratio "profile-sampled")));
  (* BENCH_sim.json: flat record list plus the headline median *)
  let oc = open_out "BENCH_sim.json" in
  Printf.fprintf oc "{\n  \"cycles\": %d,\n  \"smoke\": %b,\n  \"results\": [\n" cycles smoke;
  let rows =
    List.concat_map
      (fun (design, per_backend) ->
        List.map
          (fun (bname, ns) ->
            Printf.sprintf "    { \"design\": %S, \"backend\": %S, \"ns_per_cycle\": %.3f }"
              design bname ns)
          per_backend)
      (List.rev !results)
  in
  output_string oc (String.concat ",\n" rows);
  Printf.fprintf oc "\n  ],\n  \"median_speedup_vs_ref_tape\": %.3f" med;
  (match prof_results with
  | [] -> ()
  | _ ->
      Printf.fprintf oc ",\n  \"profiler\": {\n";
      let prof_rows =
        List.map
          (fun (mname, ns) -> Printf.sprintf "    %S: %.3f" mname ns)
          prof_results
      in
      output_string oc (String.concat ",\n" prof_rows);
      Printf.fprintf oc ",\n    \"counts_overhead\": %.3f,\n    \"sampled_overhead\": %.3f\n  }"
        (prof_ratio "profile-counts") (prof_ratio "profile-sampled"));
  Printf.fprintf oc ",\n  \"lanes\": {\n    \"lanes\": %d,\n    \"results\": [\n" lanes_k;
  let lane_rows =
    List.map
      (fun (design, ns_lane, ns_comp, speedup, vf) ->
        Printf.sprintf
          "      { \"design\": %S, \"ns_per_lane_cycle\": %.3f, \"ns_per_cycle_compiled\": \
           %.3f, \"speedup_vs_compiled\": %.3f, \"vectorized_fraction\": %.3f }"
          design ns_lane ns_comp speedup vf)
      lanes_rows
  in
  output_string oc (String.concat ",\n" lane_rows);
  (match List.find_opt (fun (n, _, _, _, _) -> n = "serv-chisel") lanes_rows with
  | Some (_, _, _, speedup, _) ->
      Printf.fprintf oc "\n    ],\n    \"serv_speedup_vs_compiled\": %.3f\n  }" speedup
  | None -> Printf.fprintf oc "\n    ]\n  }");
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Timing.row "wrote BENCH_sim.json\n"
