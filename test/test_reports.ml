(** Tests for the report generators and counts utilities: per-module
    rollups, HTML emission, printf formatting, counter saturation. *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Line = Sic_coverage.Line_coverage
open Helpers
open Sic_sim

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* two instances of a leaf with a branch, one exercised, one not *)
let two_instance_run () =
  let cb = Sic_ir.Dsl.create_circuit "Duo" in
  Sic_ir.Dsl.module_ cb "Leaf" (fun m ->
      let open Sic_ir.Dsl in
      let x = input ~loc:__POS__ m "x" (Sic_ir.Ty.UInt 1) in
      let y = output ~loc:__POS__ m "y" (Sic_ir.Ty.UInt 1) in
      connect m y false_;
      when_ ~loc:__POS__ m x (fun () -> connect m y true_));
  Sic_ir.Dsl.module_ cb "Duo" (fun m ->
      let open Sic_ir.Dsl in
      let p = input ~loc:__POS__ m "p" (Sic_ir.Ty.UInt 1) in
      let out = output ~loc:__POS__ m "out" (Sic_ir.Ty.UInt 2) in
      connect m (instance m "hot" "Leaf" "x") p;
      connect m (instance m "cold" "Leaf" "x") false_;
      connect m out
        (cat_s (instance m "hot" "Leaf" "y") (instance m "cold" "Leaf" "y")));
  let c, db = Line.instrument (Sic_ir.Dsl.finalize cb) in
  let low = lower c in
  let b = Compiled.create low in
  b.Backend.poke "p" (Bv.one 1);
  b.Backend.step 4;
  (db, b.Backend.counts ())

let test_module_summary () =
  let db, counts = two_instance_run () in
  let summaries = Line.module_summaries db counts in
  let leaf = List.find (fun s -> s.Line.summary_module = "Leaf") summaries in
  Alcotest.(check int) "two leaf instances" 2 (List.length leaf.Line.instances);
  let find inst =
    let _, c, t = List.find (fun (i, _, _) -> i = inst) leaf.Line.instances in
    (c, t)
  in
  let hot_c, hot_t = find "hot" and cold_c, cold_t = find "cold" in
  Alcotest.(check int) "same branch count per instance" hot_t cold_t;
  Alcotest.(check bool) "hot instance fully covered" true (hot_c = hot_t);
  Alcotest.(check bool) "cold instance not fully covered" true (cold_c < cold_t);
  let text = Line.render_module_summary db counts in
  Alcotest.(check bool) "summary mentions instances" true
    (contains ~needle:"hot" text && contains ~needle:"cold" text)

let test_html_report () =
  let db, counts = two_instance_run () in
  let html = Sic_coverage.Html_report.render ~line:db counts in
  Alcotest.(check bool) "is html" true (contains ~needle:"<!doctype html>" html);
  Alcotest.(check bool) "has summary tile" true (contains ~needle:"branches" html);
  Alcotest.(check bool) "escapes source" false (contains ~needle:"<fun" html);
  Alcotest.(check bool) "mentions this file" true (contains ~needle:"test_reports.ml" html)

let test_html_report_source_root () =
  (* a circuit whose cover location points at a fabricated relative path:
     the listing only shows its text when source_root points at the right
     directory *)
  let cb = Sic_ir.Dsl.create_circuit "Src" in
  Sic_ir.Dsl.module_ cb "Src" (fun m ->
      let open Sic_ir.Dsl in
      let x = input ~loc:__POS__ m "x" (Sic_ir.Ty.UInt 1) in
      let y = output ~loc:__POS__ m "y" (Sic_ir.Ty.UInt 1) in
      connect m y false_;
      when_ ~loc:("fake_src.ml", 2, 0, 0) m x (fun () -> connect m y true_));
  let c, db = Line.instrument (Sic_ir.Dsl.finalize cb) in
  let b = Compiled.create (lower c) in
  b.Backend.poke "x" (Bv.one 1);
  b.Backend.step 2;
  let counts = b.Backend.counts () in
  let root = Printf.sprintf "srcroot_%d" (Unix.getpid ()) in
  if not (Sys.file_exists root) then Unix.mkdir root 0o755;
  let oc = open_out (Filename.concat root "fake_src.ml") in
  output_string oc "line one\nTHE_MARKER_LINE\nline three\n";
  close_out oc;
  let with_root = Sic_coverage.Html_report.render ~source_root:root ~line:db counts in
  Alcotest.(check bool) "right root shows the source line" true
    (contains ~needle:"THE_MARKER_LINE" with_root);
  let without = Sic_coverage.Html_report.render ~line:db counts in
  Alcotest.(check bool) "file name still listed under default root" true
    (contains ~needle:"fake_src.ml" without);
  Alcotest.(check bool) "default root cannot find the source" false
    (contains ~needle:"THE_MARKER_LINE" without);
  (* save plumbs the argument through *)
  let out = Filename.concat root "report.html" in
  Sic_coverage.Html_report.save out ~source_root:root ~line:db counts;
  let ic = open_in out in
  let n = in_channel_length ic in
  let saved = really_input_string ic n in
  close_in ic;
  Alcotest.(check bool) "saved report shows the source line" true
    (contains ~needle:"THE_MARKER_LINE" saved)

let test_format_print () =
  let f = Sic_sim.Backend.Prep.format_print in
  Alcotest.(check string) "decimal" "v=42!" (f "v=%d!" [ Bv.of_int ~width:8 42 ]);
  Alcotest.(check string) "hex and binary" "ff 101"
    (f "%x %b" [ Bv.of_int ~width:8 255; Bv.of_int ~width:3 5 ]);
  Alcotest.(check string) "literal percent" "100%" (f "100%%" []);
  Alcotest.(check string) "missing arg keeps placeholder" "x=%d" (f "x=%d" []);
  Alcotest.(check string) "unknown directive passes through" "%q" (f "%q" [])

let test_counts_diff () =
  let before = Counts.of_list [ ("a", 0); ("b", 3); ("c", 1); ("gone", 2) ] in
  let after = Counts.of_list [ ("a", 5); ("b", 9); ("c", 0); ("new", 1) ] in
  let d = Counts.diff ~before ~after in
  Alcotest.(check (list string)) "newly covered" [ "a"; "new" ] d.Counts.newly_covered;
  Alcotest.(check (list string)) "lost" [ "c" ] d.Counts.lost;
  Alcotest.(check (list string)) "only before" [ "gone" ] d.Counts.only_before;
  Alcotest.(check (list string)) "only after" [ "new" ] d.Counts.only_after;
  let text = Counts.render_diff d in
  Alcotest.(check bool) "renders" true (contains ~needle:"newly covered (2)" text);
  Alcotest.(check string) "no changes message" "no coverage changes\n"
    (Counts.render_diff (Counts.diff ~before ~after:before))

let test_counts_saturation () =
  Alcotest.(check int) "sat_add caps" max_int (Counts.sat_add max_int 5);
  Alcotest.(check int) "sat_add normal" 7 (Counts.sat_add 3 4);
  let t = Counts.create () in
  Counts.set t "x" (max_int - 1);
  Counts.incr t "x";
  Counts.incr t "x";
  Alcotest.(check int) "incr saturates" max_int (Counts.get t "x")

let test_fsm_report_missing () =
  let c, _ = fsm_circuit () in
  let low = lower c in
  let low, db = Sic_coverage.Fsm_coverage.instrument low in
  let b = Compiled.create low in
  Backend.reset_sequence b;
  (* stay in A forever: only A-state and A->A are covered *)
  b.Backend.poke "in" (Bv.one 1);
  b.Backend.step 5;
  let r = Sic_coverage.Fsm_coverage.report db (b.Backend.counts ()) in
  Alcotest.(check int) "one state covered" 1 r.Sic_coverage.Fsm_coverage.states_covered;
  Alcotest.(check bool) "missing list populated" true
    (List.length r.Sic_coverage.Fsm_coverage.missing >= 6)

let test_scan_chain_width_one () =
  (* 1-bit counters: the count is a saw of covered/not; scan still works *)
  let c, _db = Line.instrument (gcd_circuit ()) in
  let low = lower c in
  let chained, chain = Sic_firesim.Scan_chain.insert ~width:1 low in
  let b = Compiled.create chained in
  let r =
    Sic_firesim.Driver.run_and_scan b chain ~workload:(fun b -> ignore (run_gcd b 9 6))
  in
  Alcotest.(check int) "scan cost = n points" (List.length chain.Sic_firesim.Scan_chain.order)
    r.Sic_firesim.Driver.scan_cycles;
  List.iter
    (fun name ->
      Alcotest.(check bool) "1-bit counts are 0/1" true
        (Counts.get r.Sic_firesim.Driver.counts name <= 1))
    chain.Sic_firesim.Scan_chain.order

let tests =
  [
    Alcotest.test_case "per-module summary" `Quick test_module_summary;
    Alcotest.test_case "html report" `Quick test_html_report;
    Alcotest.test_case "html report source_root" `Quick test_html_report_source_root;
    Alcotest.test_case "printf formatting" `Quick test_format_print;
    Alcotest.test_case "counts saturation" `Quick test_counts_saturation;
    Alcotest.test_case "counts diff" `Quick test_counts_diff;
    Alcotest.test_case "fsm report missing list" `Quick test_fsm_report_missing;
    Alcotest.test_case "scan chain width 1" `Quick test_scan_chain_width_one;
  ]
