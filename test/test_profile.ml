(** Engine profiler tests: the artifact format round-trips byte-exactly,
    merge is a positional pointwise sum that rejects shape mismatches, the
    word-level profiler's per-statement hit counts agree with the closure
    reference tape (both schedules), and the artifact bytes are
    deterministic — independent of the [~activity] flag and of whether
    timing sampling is on. *)

module Bv = Sic_bv.Bv
open Helpers
open Sic_sim

(* drive a backend with deterministic pseudo-random inputs; the exact
   poke/step sequence is what both engines must see to be comparable *)
let drive (b : Backend.t) ~seed ~cycles =
  let rng = Sic_fuzz.Rng.create seed in
  let inputs = Backend.data_inputs b in
  Backend.reset_sequence b;
  for _ = 1 to cycles do
    List.iter
      (fun (n, ty) ->
        let w = Sic_ir.Ty.width ty in
        b.Backend.poke n (Bv.random ~width:w (Sic_fuzz.Rng.bits30 rng)))
      inputs;
    b.Backend.step 1
  done

let lower c = Sic_passes.Compile.lower c

let profiled_run ?(activity = false) ?(mode = Compiled.Counts_only) c ~seed ~cycles =
  let sim = Compiled.build ~activity ~profile:mode (lower c) in
  drive (Compiled.to_backend ~name:"compiled" sim) ~seed ~cycles;
  match Compiled.profile sim with
  | Some dp -> dp
  | None -> Alcotest.fail "profiled build returned no profile"

(* --- artifact format --------------------------------------------------- *)

let test_format_roundtrip () =
  let dp = profiled_run (gcd_circuit ()) ~mode:(Compiled.Sampled 3) ~seed:7 ~cycles:50 in
  let p = [ dp ] in
  let s = Profile.to_string p in
  let p' = Profile.of_string s in
  Alcotest.(check string) "to_string . of_string is the identity" s (Profile.to_string p');
  Alcotest.(check bool) "rows survived" true
    (match p' with [ d ] -> Array.length d.Profile.rows = Array.length dp.Profile.rows | _ -> false);
  Alcotest.(check bool) "some instruction was hit" true
    (Array.exists (fun (r : Profile.row) -> r.Profile.hits > 0) dp.Profile.rows);
  Alcotest.(check bool) "sampling recorded time" true (Profile.sampled dp);
  (* render and folded never fail on a real profile *)
  Alcotest.(check bool) "render is non-empty" true (String.length (Profile.render p) > 0);
  Alcotest.(check bool) "folded is non-empty" true (String.length (Profile.folded p) > 0)

let test_bad_format () =
  (match Profile.of_string "# sic profile v99\n" with
  | _ -> Alcotest.fail "unknown version must raise"
  | exception Profile.Bad_format _ -> ());
  match Profile.of_string "# sic profile v1\nd g 1 1\nnot a row\n" with
  | _ -> Alcotest.fail "malformed row must raise"
  | exception Profile.Bad_format _ -> ()

let test_merge () =
  let dp = profiled_run (gcd_circuit ()) ~seed:3 ~cycles:40 in
  let doubled =
    match Profile.merge [ [ dp ]; [ dp ] ] with
    | [ d ] -> d
    | _ -> Alcotest.fail "merge of one design yields one design"
  in
  Array.iteri
    (fun i (r : Profile.row) ->
      Alcotest.(check int)
        (Printf.sprintf "row %d hits doubled" i)
        (2 * r.Profile.hits) doubled.Profile.rows.(i).Profile.hits)
    dp.Profile.rows;
  Alcotest.(check int) "runs summed" (2 * dp.Profile.runs) doubled.Profile.runs;
  (* mismatched tape shapes for the same design are corruption, not data *)
  let truncated =
    { dp with Profile.rows = Array.sub dp.Profile.rows 0 (Array.length dp.Profile.rows - 1) }
  in
  match Profile.merge [ [ dp ]; [ truncated ] ] with
  | _ -> Alcotest.fail "shape mismatch must raise"
  | exception Profile.Bad_format _ -> ()

(* --- differential: hit counts vs the reference tape -------------------- *)

(* Both engines count value-changing evaluations per named statement, so
   wherever a statement has a row in both (the word-level engine eliminates
   pure copies; the ref tape has no register rows) the counts must be
   identical — under either ref-tape schedule. *)
let check_against_ref ~activity name c =
  let seed = 11 and cycles = 60 in
  let dp = profiled_run c ~seed ~cycles in
  let compiled_hits = Hashtbl.create 64 in
  Array.iter
    (fun (r : Profile.row) ->
      if r.Profile.is_root then Hashtbl.replace compiled_hits r.Profile.root r.Profile.hits)
    dp.Profile.rows;
  let rt = Ref_tape.build ~activity ~profile:true (lower c) in
  drive (Ref_tape.to_backend ~name:"ref" rt) ~seed ~cycles;
  let compared = ref 0 in
  List.iter
    (fun (stmt, ref_count) ->
      match Hashtbl.find_opt compiled_hits stmt with
      | None -> ()
      | Some cc ->
          incr compared;
          Alcotest.(check int) (Printf.sprintf "%s: hits of %s" name stmt) ref_count cc)
    (Ref_tape.hit_counts rt);
  Alcotest.(check bool)
    (Printf.sprintf "%s: compared a real set of statements (%d)" name !compared)
    true (!compared >= 3)

let test_hits_match_ref_tape () =
  List.iter
    (fun (name, c) ->
      check_against_ref ~activity:false name c;
      check_against_ref ~activity:true name c)
    [
      ("gcd", gcd_circuit ());
      ("fifo", Sic_designs.Fifo.circuit ());
      ("arbiter", Sic_designs.Arbiter.circuit ());
    ]

(* --- determinism ------------------------------------------------------- *)

(* Same design, seed and cycle count must produce byte-identical artifacts
   whatever the engine configuration: the [~activity] flag (profiled builds
   always run the change-driven schedule) and — for the hit columns —
   whether timing sampling is on. *)
let artifact_deterministic =
  let designs =
    [|
      ("gcd", fun () -> gcd_circuit ());
      ("fifo", fun () -> Sic_designs.Fifo.circuit ());
      ("counter", fun () -> Sic_designs.Counter.circuit ());
    |]
  in
  QCheck.Test.make ~count:20 ~name:"profile artifact bytes are schedule-independent"
    QCheck.(triple (int_bound 2) (int_bound 1000) (int_range 1 60))
    (fun (di, seed, cycles) ->
      let _, build = designs.(di) in
      let run ~activity ~mode = profiled_run ~activity ~mode (build ()) ~seed ~cycles in
      let plain = run ~activity:false ~mode:Compiled.Counts_only in
      let act = run ~activity:true ~mode:Compiled.Counts_only in
      let sampled = run ~activity:false ~mode:(Compiled.Sampled 2) in
      Profile.to_string [ plain ] = Profile.to_string [ act ]
      && Array.for_all2
           (fun (a : Profile.row) (b : Profile.row) -> a.Profile.hits = b.Profile.hits)
           plain.Profile.rows sampled.Profile.rows)

let tests =
  [
    Alcotest.test_case "artifact round-trips byte-exactly" `Quick test_format_roundtrip;
    Alcotest.test_case "malformed artifacts raise Bad_format" `Quick test_bad_format;
    Alcotest.test_case "merge sums pointwise, rejects shape mismatch" `Quick test_merge;
    Alcotest.test_case "hit counts agree with the reference tape" `Quick
      test_hits_match_ref_tape;
    QCheck_alcotest.to_alcotest artifact_deterministic;
  ]
