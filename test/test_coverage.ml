(** Tests for the coverage instrumentation passes, report generators, and
    the §3 contract: every backend reports the *same* counts map for the
    same stimulus. *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Line = Sic_coverage.Line_coverage
module Toggle = Sic_coverage.Toggle_coverage
module Fsm = Sic_coverage.Fsm_coverage
module Rv = Sic_coverage.Ready_valid_coverage
module Mux = Sic_coverage.Mux_coverage
open Helpers
open Sic_sim

(* instrument with line coverage, then lower *)
let line_instrumented c =
  let c, db = Line.instrument c in
  (Sic_passes.Compile.lower c, db)

let test_line_gcd () =
  let low, db = line_instrumented (gcd_circuit ()) in
  let b = Compiled.create low in
  let result = run_gcd b 12 8 in
  Alcotest.(check int) "gcd still correct" 4 result;
  let counts = b.Backend.counts () in
  let r = Line.report db counts in
  (* every branch of the GCD is exercised by gcd(12,8): load, iterate with
     x>y and x<=y, and output fire *)
  Alcotest.(check int) "all branches covered" r.Line.branches_total r.Line.branches_covered;
  Alcotest.(check bool) "has branches" true (r.Line.branches_total > 5)

let test_line_partial () =
  (* gcd(8, 8): x > y never holds, so that branch stays uncovered *)
  let low, db = line_instrumented (gcd_circuit ()) in
  let b = Compiled.create low in
  ignore (run_gcd b 8 8);
  let r = Line.report db (b.Backend.counts ()) in
  Alcotest.(check bool) "some branch uncovered" true
    (r.Line.branches_covered < r.Line.branches_total);
  Alcotest.(check bool) "uncovered branches reported" true (r.Line.never_covered <> [])

let test_line_report_renders () =
  let low, db = line_instrumented (gcd_circuit ()) in
  let b = Compiled.create low in
  ignore (run_gcd b 270 192);
  let text = Line.render db (b.Backend.counts ()) in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the source file" true (contains ~needle:"helpers.ml" text);
  Alcotest.(check bool) "has a branches summary" true (contains ~needle:"branches:" text)

let test_line_counts_identical_across_backends () =
  let low, _db = line_instrumented (gcd_circuit ()) in
  let runs =
    List.map
      (fun (_, create) ->
        let b = create low in
        ignore (run_gcd b 270 192);
        b.Backend.counts ())
      backends
  in
  match runs with
  | first :: rest ->
      List.iteri
        (fun i c ->
          Alcotest.(check bool)
            (Printf.sprintf "backend %d equals backend 0" (i + 1))
            true (Counts.equal first c))
        rest
  | [] -> Alcotest.fail "no backends"

let test_toggle () =
  let c = Sic_passes.Compile.lower (gcd_circuit ()) in
  let c, db = Toggle.instrument c in
  let b = Compiled.create c in
  ignore (run_gcd b 270 192);
  let r = Toggle.report db (b.Backend.counts ()) in
  Alcotest.(check bool) "bits instrumented" true (r.Toggle.bits_total > 50);
  Alcotest.(check bool) "some toggled" true (r.Toggle.bits_toggled > 10);
  Alcotest.(check bool) "some stuck (upper result bits)" true (r.Toggle.stuck <> [])

let test_toggle_alias_dedup () =
  (* a wire chain a -> b -> c must be instrumented once, not three times *)
  let cb = Sic_ir.Dsl.create_circuit "Chain" in
  Sic_ir.Dsl.module_ cb "Chain" (fun m ->
      let open Sic_ir.Dsl in
      let x = input m "x" (Sic_ir.Ty.UInt 4) in
      let a = wire m "a" (Sic_ir.Ty.UInt 4) in
      let b = wire m "b" (Sic_ir.Ty.UInt 4) in
      let out = output m "out" (Sic_ir.Ty.UInt 4) in
      connect m a x;
      connect m b a;
      connect m out b);
  let c = Sic_ir.Dsl.finalize cb in
  let low = Sic_passes.Compile.lower c in
  let _, db = Toggle.instrument low in
  (* x, a, b, out always carry the same value: one alias group, 4 bits,
     plus the (1-bit) reset input — 5 points instead of 13 *)
  Alcotest.(check int) "5 cover points only" 5 (List.length db.Toggle.points);
  let aliased =
    List.filter (fun p -> List.length p.Toggle.aliases >= 1) db.Toggle.points
  in
  (* the x/a/b/out group is covered by one representative with 3 aliases *)
  Alcotest.(check int) "4 aliased points (one per bit)" 4 (List.length aliased);
  List.iter
    (fun (p : Toggle.point) ->
      Alcotest.(check int) "3 aliases" 3 (List.length p.Toggle.aliases))
    aliased

let test_toggle_first_cycle_disabled () =
  (* an input toggling at cycle boundary 0 must not count: the previous
     value register is not yet valid *)
  let c = Sic_passes.Compile.lower (Sic_designs.Counter.circuit ~width:4 ~limit:15 ()) in
  let c, db = Toggle.instrument c in
  let b = Compiled.create c in
  (* do nothing but step: only the enable-tracking bits may move *)
  b.Backend.step 1;
  let counts = b.Backend.counts () in
  List.iter
    (fun (p : Toggle.point) ->
      Alcotest.(check int) ("no first-cycle toggle for " ^ p.Toggle.cover_name) 0
        (Counts.get counts p.Toggle.cover_name))
    db.Toggle.points

let test_fsm_analysis () =
  let c, _ = fsm_circuit () in
  let low = Sic_passes.Compile.lower c in
  let low, db = Fsm.instrument low in
  (match db with
  | [ f ] ->
      Alcotest.(check int) "three states" 3 (List.length f.Fsm.state_covers);
      let ts =
        List.map (fun (t, _) -> (t.Fsm.from_state, t.Fsm.to_state)) f.Fsm.transition_covers
      in
      let expect = [ ("A", "A"); ("A", "B"); ("B", "B"); ("B", "C"); ("C", "C") ] in
      List.iter
        (fun e -> Alcotest.(check bool) "expected transition found" true (List.mem e ts))
        expect;
      Alcotest.(check int) "exactly the five real transitions" 5 (List.length ts);
      Alcotest.(check bool) "not over-approximated" false f.Fsm.over_approximated
  | _ -> Alcotest.fail "expected exactly one fsm");
  (* drive it: A->A, A->B, B->B, B->C, C->C *)
  let b = Compiled.create low in
  Backend.reset_sequence b;
  let poke v = b.Backend.poke "in" (Bv.of_int ~width:1 v) in
  poke 1;
  b.Backend.step 1;
  poke 0;
  b.Backend.step 1;
  (* now in B *)
  poke 1;
  b.Backend.step 1;
  poke 0;
  b.Backend.step 2;
  let counts = b.Backend.counts () in
  let r = Fsm.report db counts in
  Alcotest.(check int) "all 3 states covered" 3 r.Fsm.states_covered;
  Alcotest.(check int) "all 5 transitions covered" 5 r.Fsm.transitions_covered

let test_fsm_over_approximation () =
  (* a state register whose next value comes through an opaque arithmetic
     op must be conservatively over-approximated *)
  let cb = Sic_ir.Dsl.create_circuit "Opaque" in
  let s = Sic_ir.Dsl.enum cb "OpaqueS" [ "X"; "Y" ] in
  Sic_ir.Dsl.module_ cb "Opaque" (fun m ->
      let open Sic_ir.Dsl in
      let in_ = input m "in" (Sic_ir.Ty.UInt 1) in
      let out = output m "out" (Sic_ir.Ty.UInt 1) in
      let st = reg_enum m "st" s "X" in
      connect m st (bits_s (st +: resize in_ 1) ~hi:0 ~lo:0);
      connect m out st);
  let c = Sic_ir.Dsl.finalize cb in
  let low = Sic_passes.Compile.lower c in
  let _, db = Fsm.instrument low in
  match db with
  | [ f ] ->
      Alcotest.(check bool) "over-approximated" true f.Fsm.over_approximated;
      Alcotest.(check int) "all 2x2 transitions assumed" 4
        (List.length f.Fsm.transition_covers)
  | _ -> Alcotest.fail "expected one fsm"

let test_ready_valid () =
  let low = Sic_passes.Compile.lower (gcd_circuit ()) in
  let low, db = Rv.instrument low in
  Alcotest.(check int) "two decoupled bundles" 2 (List.length db);
  let b = Compiled.create low in
  ignore (run_gcd b 12 8);
  let counts = b.Backend.counts () in
  List.iter
    (fun (p : Rv.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s fired" p.Rv.prefix)
        true
        (Counts.get counts p.Rv.cover_name > 0))
    db

let test_mux_coverage () =
  let low = Sic_passes.Compile.lower (gcd_circuit ()) in
  let low, db = Mux.instrument low in
  Alcotest.(check bool) "found mux selects" true (List.length db > 3);
  let b = Compiled.create low in
  ignore (run_gcd b 270 192);
  let counts = b.Backend.counts () in
  let both =
    List.filter
      (fun (p : Mux.point) ->
        Counts.get counts p.Mux.cover_true > 0 && Counts.get counts p.Mux.cover_false > 0)
      db
  in
  Alcotest.(check bool) "some selects toggled both ways" true (List.length both > 0)

let test_merge_and_removal () =
  let low, _db = line_instrumented (gcd_circuit ()) in
  (* run 1 covers only the x>y path, run 2 only the y>x path *)
  let b1 = Compiled.create low in
  ignore (run_gcd b1 64 4);
  let b2 = Compiled.create low in
  ignore (run_gcd b2 4 64);
  let c1 = b1.Backend.counts () and c2 = b2.Backend.counts () in
  let merged = Counts.merge [ c1; c2 ] in
  Alcotest.(check bool) "merged covers more than either" true
    (Counts.covered_points merged >= max (Counts.covered_points c1) (Counts.covered_points c2));
  List.iter
    (fun name ->
      Alcotest.(check int) "merge adds counts" (Counts.get c1 name + Counts.get c2 name)
        (Counts.get merged name))
    (Counts.names merged);
  (* removal: drop everything covered >= 1, rerun, check fewer counters *)
  let { Sic_coverage.Removal.circuit = stripped; removed; kept } =
    Sic_coverage.Removal.remove_covered ~threshold:1 merged low
  in
  Alcotest.(check int) "removed + kept = total" (Counts.total_points merged)
    (List.length removed + List.length kept);
  let b3 = Compiled.create stripped in
  ignore (run_gcd b3 12 8);
  Alcotest.(check int) "stripped circuit reports only kept covers"
    (List.length kept)
    (Counts.total_points (b3.Backend.counts ()))

let test_line_on_parsed_circuit () =
  (* a circuit parsed from text without info tokens still gets branch
     coverage; the line report just has no source lines *)
  let src =
    "circuit P :\n\
    \  module P :\n\
    \    input clock : Clock\n\
    \    input reset : UInt<1>\n\
    \    input x : UInt<2>\n\
    \    output y : UInt<2>\n\n\
    \    connect y, UInt<2>(0)\n\
    \    when eq(x, UInt<2>(3)) :\n\
    \      connect y, UInt<2>(1)\n\
    \    else :\n\
    \      connect y, UInt<2>(2)\n"
  in
  let c = Sic_ir.Parser.parse_circuit src in
  let c, db = Line.instrument c in
  let low = Sic_passes.Compile.lower c in
  let b = Compiled.create low in
  Backend.reset_sequence b;
  b.Backend.poke "x" (Bv.of_int ~width:2 3);
  b.Backend.step 1;
  b.Backend.poke "x" (Bv.of_int ~width:2 1);
  b.Backend.step 1;
  let r = Line.report db (b.Backend.counts ()) in
  Alcotest.(check int) "3 branches (when, else, root)" 3 r.Line.branches_total;
  Alcotest.(check int) "all covered" 3 r.Line.branches_covered;
  Alcotest.(check int) "no source lines available" 0 r.Line.lines_total;
  (* render must not crash without locators *)
  Alcotest.(check bool) "renders" true (String.length (Line.render db (b.Backend.counts ())) > 0)

let test_counts_io () =
  let c = Counts.of_list [ ("a.b.cov_1", 42); ("z", 0); ("m", 7) ] in
  let round = Counts.of_string (Counts.to_string c) in
  Alcotest.(check bool) "counts round-trip" true (Counts.equal c round)

(* toggle counts must equal the number of adjacent differing value pairs
   (after the first cycle) for each bit of a driven input *)
let toggle_count_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"toggle counts = adjacent-pair differences"
       QCheck.(list_of_size (QCheck.Gen.int_range 2 30) (int_bound 15))
       (fun values ->
         let cb = Sic_ir.Dsl.create_circuit "T" in
         Sic_ir.Dsl.module_ cb "T" (fun m ->
             let open Sic_ir.Dsl in
             let x = input m "x" (Sic_ir.Ty.UInt 4) in
             let out = output m "out" (Sic_ir.Ty.UInt 4) in
             connect m out x);
         let low = Sic_passes.Compile.lower (Sic_ir.Dsl.finalize cb) in
         let low, db = Toggle.instrument low in
         let b = Compiled.create low in
         List.iter
           (fun v ->
             b.Backend.poke "x" (Bv.of_int ~width:4 v);
             b.Backend.step 1)
           values;
         let counts = b.Backend.counts () in
         (* expected toggles per bit of x: x is sampled per cycle; the
            first comparison (cycle 1 vs power-on 0) is disabled *)
         let expected bit =
           let rec go prev rest acc =
             match rest with
             | [] -> acc
             | v :: tl ->
                 let b0 = (prev lsr bit) land 1 and b1 = (v lsr bit) land 1 in
                 go v tl (if b0 <> b1 then acc + 1 else acc)
           in
           match values with [] -> 0 | first :: tl -> go first tl 0
         in
         List.for_all
           (fun (p : Toggle.point) ->
             if p.Toggle.signal = "x" then
               Counts.get counts p.Toggle.cover_name = expected p.Toggle.bit
             else true)
           db.Toggle.points))

let test_fsm_exact_transition_counts () =
  let c, _ = fsm_circuit () in
  let low = Sic_passes.Compile.lower c in
  let low, db = Fsm.instrument low in
  let b = Compiled.create low in
  Backend.reset_sequence b;
  (* scripted walk: A -A-> A (in=1), A->B (0), B->B (1), B->B (1),
     B->C (0), C->C x2 (any) *)
  List.iter
    (fun v ->
      b.Backend.poke "in" (Bv.of_int ~width:1 v);
      b.Backend.step 1)
    [ 1; 0; 1; 1; 0; 1; 0 ];
  let counts = b.Backend.counts () in
  let f = List.hd db in
  let count from_ to_ =
    let _, cover =
      List.find
        (fun (t, _) -> t.Fsm.from_state = from_ && t.Fsm.to_state = to_)
        f.Fsm.transition_covers
    in
    Counts.get counts cover
  in
  Alcotest.(check int) "A->A once" 1 (count "A" "A");
  Alcotest.(check int) "A->B once" 1 (count "A" "B");
  Alcotest.(check int) "B->B twice" 2 (count "B" "B");
  Alcotest.(check int) "B->C once" 1 (count "B" "C");
  Alcotest.(check int) "C->C twice" 2 (count "C" "C")

let test_cover_values_equivalence () =
  (* native cover-values vs expansion into 2^w covers: same totals *)
  let build () =
    let cb = Sic_ir.Dsl.create_circuit "Cv" in
    Sic_ir.Dsl.module_ cb "Cv" (fun m ->
        let open Sic_ir.Dsl in
        let x = input m "x" (Sic_ir.Ty.UInt 3) in
        let out = output m "out" (Sic_ir.Ty.UInt 3) in
        connect m out x;
        cover_values m "vals" x);
    Sic_ir.Dsl.finalize cb
  in
  let low = Sic_passes.Compile.lower (build ()) in
  let expanded = Sic_coverage.Cover_values.expand low in
  let drive b =
    Backend.reset_sequence b;
    List.iter
      (fun v ->
        b.Backend.poke "x" (Bv.of_int ~width:3 v);
        b.Backend.step 1)
      [ 0; 1; 1; 2; 5; 5; 5; 7 ]
  in
  let bn = Compiled.create low in
  drive bn;
  let be = Compiled.create expanded in
  drive be;
  Alcotest.(check bool) "native = expanded counts" true
    (Counts.equal (bn.Backend.counts ()) (be.Backend.counts ()))

let test_fsm_reset_cover () =
  let c, _ = fsm_circuit () in
  let low = Sic_passes.Compile.lower c in
  let low, db = Fsm.instrument low in
  let f = List.hd db in
  match f.Fsm.reset_cover with
  | None -> Alcotest.fail "reset cover expected"
  | Some (init, cover) ->
      Alcotest.(check string) "resets into A" "A" init;
      let b = Compiled.create low in
      Backend.reset_sequence b;
      b.Backend.step 5;
      Alcotest.(check int) "reset entry counted once" 1 (Counts.get (b.Backend.counts ()) cover);
      Backend.reset_sequence b;
      Alcotest.(check int) "second reset counted" 2 (Counts.get (b.Backend.counts ()) cover)

let test_switch_default () =
  let cb = Sic_ir.Dsl.create_circuit "Sw" in
  Sic_ir.Dsl.module_ cb "Sw" (fun m ->
      let open Sic_ir.Dsl in
      let x = input m "x" (Sic_ir.Ty.UInt 2) in
      let out = output m "out" (Sic_ir.Ty.UInt 4) in
      connect m out (lit 4 0);
      switch m x
        ~default:(fun () -> connect m out (lit 4 15))
        [
          (lit 2 0, fun () -> connect m out (lit 4 5));
          (lit 2 1, fun () -> connect m out (lit 4 6));
        ]);
  let b = Compiled.create (lower (Sic_ir.Dsl.finalize cb)) in
  let expect x v =
    b.Backend.poke "x" (Bv.of_int ~width:2 x);
    Alcotest.(check int) (Printf.sprintf "x=%d" x) v (Bv.to_int_trunc (b.Backend.peek "out"))
  in
  expect 0 5;
  expect 1 6;
  expect 2 15;
  expect 3 15

let test_waivers () =
  let open Sic_coverage.Removal in
  (* glob semantics *)
  Alcotest.(check bool) "literal" true (matches ~pattern:"a.b" "a.b");
  Alcotest.(check bool) "star middle" true (matches ~pattern:"core*.l_Alu_0" "core0.alu.l_Alu_0");
  Alcotest.(check bool) "star all" true (matches ~pattern:"*" "anything");
  Alcotest.(check bool) "no match" false (matches ~pattern:"icache.*" "dcache.state");
  Alcotest.(check bool) "multi star" true (matches ~pattern:"*fsm*WriteThrough*" "fsm_icache.state_state_WriteThrough");
  (* ? matches exactly one character *)
  Alcotest.(check bool) "qmark one char" true (matches ~pattern:"core?.alu" "core0.alu");
  Alcotest.(check bool) "qmark not empty" false (matches ~pattern:"core?.alu" "core.alu");
  Alcotest.(check bool) "qmark not two chars" false (matches ~pattern:"core?.alu" "core10.alu");
  Alcotest.(check bool) "qmark matches dot" true (matches ~pattern:"a?b" "a.b");
  Alcotest.(check bool) "qmark with star" true (matches ~pattern:"l_???_*" "l_GCD_12");
  Alcotest.(check bool) "qmark with star, wrong width" false (matches ~pattern:"l_???_*" "l_IO_12");
  Alcotest.(check bool) "trailing qmark" true (matches ~pattern:"l_Alu_?" "l_Alu_7");
  Alcotest.(check bool) "trailing qmark needs a char" false (matches ~pattern:"l_Alu_?" "l_Alu_");
  (* parse waiver text *)
  Alcotest.(check (list string)) "parse" [ "a*"; "b.c" ]
    (parse_waivers "# comment\na*\n\n  b.c  \n");
  (* apply to an instrumented circuit *)
  let c, _ = Line.instrument (gcd_circuit ()) in
  let low = Sic_passes.Compile.lower c in
  let total = List.length (Sic_ir.Circuit.covers_of (Sic_ir.Circuit.main low)) in
  let r = remove_matching ~patterns:[ "l_GCD_1"; "l_GCD_2" ] low in
  Alcotest.(check int) "two waived" 2 (List.length r.removed);
  Alcotest.(check int) "rest kept" (total - 2) (List.length r.kept);
  let b = Compiled.create r.circuit in
  ignore (run_gcd b 12 8);
  Alcotest.(check int) "waived covers gone from counts" (total - 2)
    (Counts.total_points (b.Backend.counts ()))

let counts_merge_props =
  let gen_counts =
    QCheck.Gen.(
      map Counts.of_list
        (small_list (pair (map (Printf.sprintf "c%d") (int_bound 10)) (int_bound 1000))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"counts merge: commutative, associative, identity"
       (QCheck.make QCheck.Gen.(triple gen_counts gen_counts gen_counts))
       (fun (a, b, c) ->
         Counts.equal (Counts.merge [ a; b ]) (Counts.merge [ b; a ])
         && Counts.equal
              (Counts.merge [ Counts.merge [ a; b ]; c ])
              (Counts.merge [ a; Counts.merge [ b; c ] ])
         && Counts.equal (Counts.merge [ a; Counts.create () ]) (Counts.merge [ a ])))

let counts_union_props =
  let gen_counts =
    QCheck.Gen.(
      map Counts.of_list
        (small_list (pair (map (Printf.sprintf "c%d") (int_bound 10)) (int_bound 1000))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"counts union_max: commutative, associative, idempotent; merge is not"
       (QCheck.make QCheck.Gen.(triple gen_counts gen_counts gen_counts))
       (fun (a, b, c) ->
         Counts.equal (Counts.union_max [ a; b ]) (Counts.union_max [ b; a ])
         && Counts.equal
              (Counts.union_max [ Counts.union_max [ a; b ]; c ])
              (Counts.union_max [ a; Counts.union_max [ b; c ] ])
         (* idempotent: re-delivering the same run is a no-op *)
         && Counts.equal (Counts.union_max [ a; a ]) (Counts.union_max [ a ])
         && Counts.equal (Counts.union_max [ a; Counts.create () ]) (Counts.union_max [ a ])
         (* merge, by contrast, is only idempotent on all-zero maps *)
         && Counts.equal (Counts.merge [ a; a ]) a
            = List.for_all (fun (_, v) -> v = 0) (Counts.to_sorted_list a)
         (* union_max never exceeds merge pointwise *)
         && List.for_all
              (fun (n, v) -> v <= Counts.get (Counts.merge [ a; b ]) n)
              (Counts.to_sorted_list (Counts.union_max [ a; b ]))))

let test_union_max_zeros () =
  let a = Counts.of_list [ ("p", 0); ("q", 2) ] in
  let b = Counts.of_list [ ("q", 1); ("r", 0) ] in
  let u = Counts.union_max [ a; b ] in
  Alcotest.(check int) "zero-count keys preserved" 3 (Counts.total_points u);
  Alcotest.(check int) "max wins" 2 (Counts.get u "q");
  Alcotest.(check (list string)) "covered set is the union of covered sets" [ "q" ]
    (Counts.covered u)

let test_counts_format () =
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let c = Counts.of_list [ ("a", 1); ("b", 0) ] in
  let s = Counts.to_string c in
  (* the first line is the versioned header, and it round-trips *)
  (match String.split_on_char '\n' s with
  | first :: _ -> Alcotest.(check string) "versioned header" "# sic coverage counts v1" first
  | [] -> Alcotest.fail "empty counts text");
  Alcotest.(check bool) "round-trips" true (Counts.equal c (Counts.of_string s));
  (* an incompatible future header is rejected, naming its line *)
  (try
     ignore (Counts.of_string "# sic coverage counts v2\n1 a\n");
     Alcotest.fail "v2 header accepted"
   with Counts.Bad_format m ->
     Alcotest.(check bool) "v2 error has line number" true (contains ~needle:"line 1" m));
  (try
     ignore (Counts.of_string "# a comment\n1 a\n# sic coverage counts v9\n");
     Alcotest.fail "late v9 header accepted"
   with Counts.Bad_format m ->
     Alcotest.(check bool) "late header error has line number" true
       (contains ~needle:"line 3" m));
  (* malformed data lines carry their line number too *)
  (try
     ignore (Counts.of_string "# sic coverage counts v1\n1 a\nnope b\n");
     Alcotest.fail "bad count accepted"
   with Counts.Bad_format m ->
     Alcotest.(check bool) "bad count names line 3" true (contains ~needle:"line 3" m));
  (* ordinary comments and blank lines are still skipped *)
  let c' = Counts.of_string "# sic coverage counts v1\n\n# note\n3 x\n" in
  Alcotest.(check int) "data parsed around comments" 3 (Counts.get c' "x")

let tests =
  [
    Alcotest.test_case "fsm: reset entry cover" `Quick test_fsm_reset_cover;
    Alcotest.test_case "dsl: switch default" `Quick test_switch_default;
    Alcotest.test_case "waivers" `Quick test_waivers;
    counts_merge_props;
    counts_union_props;
    Alcotest.test_case "union_max keeps zero-count keys" `Quick test_union_max_zeros;
    Alcotest.test_case "counts format: header, versions, line numbers" `Quick
      test_counts_format;
    Alcotest.test_case "line: full coverage on gcd" `Quick test_line_gcd;
    Alcotest.test_case "line: partial coverage detected" `Quick test_line_partial;
    Alcotest.test_case "line: report renders" `Quick test_line_report_renders;
    Alcotest.test_case "identical counts across backends" `Quick
      test_line_counts_identical_across_backends;
    Alcotest.test_case "toggle: gcd" `Quick test_toggle;
    Alcotest.test_case "toggle: alias dedup" `Quick test_toggle_alias_dedup;
    Alcotest.test_case "toggle: first cycle disabled" `Quick test_toggle_first_cycle_disabled;
    Alcotest.test_case "fsm: figure 7 analysis" `Quick test_fsm_analysis;
    Alcotest.test_case "fsm: over-approximation" `Quick test_fsm_over_approximation;
    Alcotest.test_case "ready/valid: gcd" `Quick test_ready_valid;
    Alcotest.test_case "mux toggle: gcd" `Quick test_mux_coverage;
    Alcotest.test_case "merge and removal" `Quick test_merge_and_removal;
    Alcotest.test_case "counts file round-trip" `Quick test_counts_io;
    Alcotest.test_case "line coverage on parsed circuits" `Quick test_line_on_parsed_circuit;
    Alcotest.test_case "cover-values: native = expanded" `Quick test_cover_values_equivalence;
    toggle_count_semantics;
    Alcotest.test_case "fsm: exact transition counts" `Quick test_fsm_exact_transition_counts;
  ]
