let () =
  Alcotest.run "sic"
    [ ("smoke", Test_smoke.tests); ("designs", Test_designs.tests); ("coverage", Test_coverage.tests); ("formal", Test_formal.tests); ("firesim", Test_firesim.tests); ("fuzz", Test_fuzz.tests); ("bv", Test_bv.tests); ("ir", Test_ir.tests); ("sim", Test_sim.tests); ("passes", Test_passes.tests); ("riscv", Test_riscv.tests); ("qprops", Test_qprops.tests); ("reports", Test_reports.tests); ("timeline", Test_timeline.tests); ("obs", Test_obs.tests); ("db", Test_db.tests); ("fleet", Test_fleet.tests); ("serve", Test_serve.tests); ("verilog", Test_verilog.tests) ]
