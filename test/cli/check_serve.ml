(* CLI smoke for [sic serve]: start the real binary on an ephemeral port,
   push a run with the in-module client, read the merged report back, and
   shut the server down gracefully with SIGTERM (exit code 0, final
   summary printed).

   Usage: check_serve.exe SIC.exe *)

module Counts = Sic_coverage.Counts
module Serve = Sic_serve.Serve
module Client = Serve.Client

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_serve: " ^ m); exit 1) fmt

let () =
  let sic = match Sys.argv with [| _; exe |] -> exe | _ -> fail "usage: check_serve.exe SIC.exe" in
  let db_dir = Printf.sprintf "serve_smoke_db_%d" (Unix.getpid ()) in
  (* --port 0 binds an ephemeral port; the banner tells us which *)
  let out_rd, out_wr = Unix.pipe () in
  let pid =
    Unix.create_process sic
      [| sic; "serve"; "--db"; db_dir; "--port"; "0"; "--threads"; "2" |]
      Unix.stdin out_wr Unix.stderr
  in
  Unix.close out_wr;
  let banner =
    let buf = Buffer.create 128 in
    let b = Bytes.create 1 in
    let rec go () =
      match Unix.read out_rd b 0 1 with
      | 0 -> fail "server exited before printing its banner"
      | _ -> if Bytes.get b 0 = '\n' then Buffer.contents buf else (Buffer.add_char buf (Bytes.get b 0); go ())
    in
    go ()
  in
  let port =
    (* "sic serve: listening on http://127.0.0.1:PORT/ (db ..., N threads)" *)
    match String.index_opt banner ':' with
    | None -> fail "unparseable banner: %s" banner
    | Some _ -> (
        let after_scheme =
          match String.split_on_char '/' banner with
          | _ :: _ :: hostport :: _ -> hostport
          | _ -> fail "unparseable banner: %s" banner
        in
        match String.split_on_char ':' after_scheme with
        | [ _; p ] -> (
            match int_of_string_opt p with
            | Some p -> p
            | None -> fail "bad port in banner: %s" banner)
        | _ -> fail "unparseable host:port in banner: %s" banner)
  in
  let url = Printf.sprintf "http://127.0.0.1:%d" port in
  let cleanup_kill () = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> () in
  (try
     let h = Client.get (url ^ "/healthz") in
     if h.Client.status <> 200 then fail "healthz answered %d" h.Client.status;
     let r =
       Client.push_run ~url ~design:"smoke" ~backend:"cli" ~workload:"smoke" ~seed:1
         ~cycles:10
         (Counts.of_list [ ("x", 2); ("y", 0) ])
     in
     if r.Client.status <> 201 then fail "push answered %d: %s" r.Client.status r.Client.body;
     let rep = Client.get (url ^ "/report") in
     if rep.Client.status <> 200 then fail "report answered %d" rep.Client.status;
     let contains needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     if not (contains "\"x\":2" rep.Client.body) then
       fail "report missing pushed counts: %s" rep.Client.body
   with e ->
     cleanup_kill ();
     fail "client round trip failed: %s" (Printexc.to_string e));
  (* graceful shutdown: SIGTERM drains and exits 0 *)
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n ->
      fail "server exited %d after SIGTERM" n
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
      fail "server killed/stopped by signal %d instead of draining" s);
  Unix.close out_rd;
  print_endline "check_serve: ok"
