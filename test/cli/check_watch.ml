(* CLI smoke for the live observability plane: start the real [sic serve]
   binary on an ephemeral port, attach a /watch subscriber, push a run and
   assert one [delta] SSE event arrives; fetch /dashboard (written to the
   path in argv for CI artifact upload) and /metrics.prom; then SIGTERM
   the server with the subscriber still attached and require a graceful
   exit 0 — the drain must hang live streams up, not hang on them.

   Usage: check_watch.exe SIC.exe [DASHBOARD_OUT.html] *)

module Counts = Sic_coverage.Counts
module Serve = Sic_serve.Serve
module Client = Serve.Client

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_watch: " ^ m); exit 1) fmt

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let () =
  (* a stuck drain must fail the test, not wedge CI *)
  ignore (Unix.alarm 60);
  let sic, dash_out =
    match Sys.argv with
    | [| _; exe |] -> (exe, None)
    | [| _; exe; out |] -> (exe, Some out)
    | _ -> fail "usage: check_watch.exe SIC.exe [DASHBOARD_OUT.html]"
  in
  let db_dir = Printf.sprintf "watch_smoke_db_%d" (Unix.getpid ()) in
  let out_rd, out_wr = Unix.pipe () in
  let pid =
    Unix.create_process sic
      [| sic; "serve"; "--db"; db_dir; "--port"; "0"; "--threads"; "2" |]
      Unix.stdin out_wr Unix.stderr
  in
  Unix.close out_wr;
  let banner =
    let buf = Buffer.create 128 in
    let b = Bytes.create 1 in
    let rec go () =
      match Unix.read out_rd b 0 1 with
      | 0 -> fail "server exited before printing its banner"
      | _ ->
          if Bytes.get b 0 = '\n' then Buffer.contents buf
          else (Buffer.add_char buf (Bytes.get b 0); go ())
    in
    go ()
  in
  let port =
    match String.split_on_char '/' banner with
    | _ :: _ :: hostport :: _ -> (
        match String.split_on_char ':' hostport with
        | [ _; p ] -> (
            match int_of_string_opt p with
            | Some p -> p
            | None -> fail "bad port in banner: %s" banner)
        | _ -> fail "unparseable host:port in banner: %s" banner)
    | _ -> fail "unparseable banner: %s" banner
  in
  let url = Printf.sprintf "http://127.0.0.1:%d" port in
  let cleanup_kill () = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> () in
  let m = Mutex.create () in
  let events = ref [] in
  let watcher =
    Thread.create
      (fun () ->
        try
          Client.watch
            ~on_event:(fun ~event ~data ->
              Mutex.protect m (fun () -> events := (event, data) :: !events);
              true)
            url
        with e ->
          cleanup_kill ();
          fail "watch stream failed: %s" (Printexc.to_string e))
      ()
  in
  let wait_for what pred =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let seen () = Mutex.protect m (fun () -> List.exists pred !events) in
    while (not (seen ())) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.02
    done;
    if not (seen ()) then begin
      cleanup_kill ();
      fail "timed out waiting for %s" what
    end
  in
  (try
     wait_for "the hello snapshot" (fun (ev, _) -> ev = "hello");
     let r =
       Client.push_run ~worker:"ci" ~url ~design:"smoke" ~backend:"cli" ~workload:"smoke"
         ~seed:1 ~cycles:25
         (Counts.of_list [ ("x", 2); ("y", 0) ])
     in
     if r.Client.status <> 201 then fail "push answered %d: %s" r.Client.status r.Client.body;
     wait_for "a delta event" (fun (ev, data) ->
         ev = "delta" && contains data "\"newly_covered\":1" && contains data "\"worker\":\"ci\"");
     (* the dashboard: self-contained HTML, saved for artifact upload *)
     let d = Client.get (url ^ "/dashboard") in
     if d.Client.status <> 200 then fail "dashboard answered %d" d.Client.status;
     if not (contains d.Client.body "EventSource") then fail "dashboard has no EventSource";
     if not (contains d.Client.body "<!doctype") then fail "dashboard is not html";
     (match dash_out with
     | None -> ()
     | Some path ->
         let oc = open_out path in
         output_string oc d.Client.body;
         close_out oc);
     (* Prometheus exposition, both by path and by content negotiation *)
     let check_prom (p : Client.response) whence =
       if p.Client.status <> 200 then fail "%s answered %d" whence p.Client.status;
       if not (contains p.Client.body "sic_requests_total") then
         fail "%s is missing sic_requests_total" whence;
       String.split_on_char '\n' p.Client.body
       |> List.iter (fun l ->
              if not (l = "" || l.[0] = '#' || (String.contains l ' ' && contains l "sic_"))
              then fail "%s has a malformed line: %s" whence l)
     in
     check_prom (Client.get (url ^ "/metrics.prom")) "/metrics.prom";
     check_prom
       (Client.get ~headers:[ ("accept", "text/plain") ] (url ^ "/metrics"))
       "/metrics under Accept: text/plain"
   with
  | Failure _ as e -> raise e
  | e ->
      cleanup_kill ();
      fail "client round trip failed: %s" (Printexc.to_string e));
  (* SIGTERM with a live /watch subscriber: the drain must close the
     stream (the watcher thread returns) and the server must exit 0 *)
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "server exited %d after SIGTERM" n
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
      fail "server killed/stopped by signal %d instead of draining" s);
  Thread.join watcher;
  Unix.close out_rd;
  print_endline "check_watch: ok"
