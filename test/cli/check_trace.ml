(* Validates a merged campaign Chrome trace: it must parse as JSON, carry
   a traceEvents list with at least [min_tids] distinct thread lanes (the
   orchestrator plus one per worker that shipped telemetry home), and
   contain complete "X" spans — including the per-job "fleet.job" spans
   recorded inside the workers.

   Usage: check_trace.exe TRACE.json [MIN_TIDS] *)

module Json = Sic_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_trace: " ^ m); exit 1) fmt

let () =
  let path, min_tids =
    match Sys.argv with
    | [| _; path |] -> (path, 2)
    | [| _; path; n |] -> (path, int_of_string n)
    | _ -> fail "usage: check_trace.exe TRACE.json [MIN_TIDS]"
  in
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let trace =
    match Json.parse src with
    | j -> j
    | exception Json.Parse_error m -> fail "%s is not valid JSON: %s" path m
  in
  let events =
    match Json.member "traceEvents" trace with
    | Some (Json.List es) -> es
    | _ -> fail "%s has no traceEvents list" path
  in
  let phase e = match Json.member "ph" e with Some (Json.String p) -> p | _ -> "?" in
  let name e = match Json.member "name" e with Some (Json.String n) -> n | _ -> "?" in
  let tids =
    List.sort_uniq compare
      (List.filter_map
         (fun e -> match Json.member "tid" e with Some (Json.Int t) -> Some t | _ -> None)
         events)
  in
  if List.length tids < min_tids then
    fail "%s spans %d thread lanes, wanted >= %d — worker telemetry was not merged" path
      (List.length tids) min_tids;
  let spans = List.filter (fun e -> phase e = "X") events in
  if spans = [] then fail "%s contains no complete spans" path;
  if not (List.exists (fun e -> name e = "fleet.job") spans) then
    fail "%s lacks the per-job fleet.job spans from the workers" path;
  (* every lane is named for the trace viewer's track list *)
  if not (List.exists (fun e -> phase e = "M" && name e = "thread_name") events) then
    fail "%s lacks thread_name metadata" path;
  Printf.printf "check_trace: ok (%d events, %d lanes)\n" (List.length events)
    (List.length tids)
