(* Regression check for [sic profile]: given the NDJSON profile and the
   Chrome trace that "sic profile --design gcd" wrote, assert that

   - every pass of the default pipeline appears as exactly one span,
     carrying the before/after IR-delta attributes,
   - the pipeline and both profile phases are present,
   - the simulator emitted at least one cycles_per_sec gauge,
   - the trace file is valid JSON with a non-empty traceEvents list.

   Usage: check_profile.exe PROFILE.ndjson TRACE.json *)

module Json = Sic_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_profile: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let default_passes = [ "check"; "lower-whens"; "inline"; "const-prop"; "dce" ]

let () =
  let profile_path, trace_path =
    match Sys.argv with
    | [| _; p; t |] -> (p, t)
    | _ -> fail "usage: check_profile.exe PROFILE.ndjson TRACE.json"
  in
  let lines =
    read_file profile_path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  let parsed =
    List.map (fun l -> try Json.parse l with Json.Parse_error m -> fail "bad NDJSON line (%s): %s" m l) lines
  in
  let str_field k j = match Json.member k j with Some (Json.String s) -> Some s | _ -> None in
  (match parsed with
  | meta :: _ when str_field "type" meta = Some "meta" -> ()
  | _ -> fail "first line of %s is not a meta record" profile_path);
  let spans =
    List.filter_map
      (fun j ->
        if str_field "type" j = Some "span" then
          match str_field "name" j with Some n -> Some (n, j) | None -> None
        else None)
      parsed
  in
  (* each default-pipeline pass: exactly one span, with IR-delta args *)
  List.iter
    (fun pass ->
      let name = "pass:" ^ pass in
      match List.filter (fun (n, _) -> n = name) spans with
      | [ (_, j) ] -> (
          match Json.member "args" j with
          | Some args -> (
              match (Json.member "nodes_before" args, Json.member "nodes_after" args) with
              | Some (Json.Int _), Some (Json.Int _) -> ()
              | _ -> fail "span %s lacks nodes_before/nodes_after args" name)
          | None -> fail "span %s has no args" name)
      | [] -> fail "span %s missing from %s" name profile_path
      | l -> fail "span %s appears %d times (want exactly 1)" name (List.length l))
    default_passes;
  List.iter
    (fun name ->
      if not (List.exists (fun (n, _) -> n = name) spans) then
        fail "span %s missing from %s" name profile_path)
    [ "pipeline"; "phase:compile"; "phase:simulate" ];
  (* the simulator must have sampled throughput at least once *)
  let gauges =
    List.filter_map
      (fun j -> if str_field "type" j = Some "gauge" then str_field "name" j else None)
      parsed
  in
  if not (List.exists (fun n -> n = "sim.compiled.cycles_per_sec") gauges) then
    fail "no sim.compiled.cycles_per_sec gauge in %s" profile_path;
  (* the Chrome trace must load: one JSON object, non-empty traceEvents *)
  let trace =
    try Json.parse (read_file trace_path)
    with Json.Parse_error m -> fail "trace %s is not valid JSON: %s" trace_path m
  in
  (match Json.member "traceEvents" trace with
  | Some (Json.List (_ :: _)) -> ()
  | Some (Json.List []) -> fail "trace %s has an empty traceEvents list" trace_path
  | _ -> fail "trace %s has no traceEvents list" trace_path);
  print_endline "check_profile: ok"
