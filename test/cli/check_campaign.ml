(* CLI regression for [sic campaign] / [sic db]: the coverage database a
   campaign produces must be byte-for-byte independent of -j, a crashed
   worker must be recorded as a failed run without killing the campaign,
   and [sic db rank] must pick a run subset whose merged coverage equals
   the full aggregate.

   Usage: check_campaign.exe SIC.exe *)

module Counts = Sic_coverage.Counts
module Db = Sic_db.Db

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_campaign: " ^ m); exit 1) fmt

let sic = ref "sic"

let run_expect expected fmt =
  Printf.ksprintf
    (fun args ->
      let cmd = Printf.sprintf "%s %s >> check_campaign.log 2>&1" (Filename.quote !sic) args in
      let rc = Sys.command cmd in
      if rc <> expected then fail "command exited %d (wanted %d): sic %s" rc expected args)
    fmt

let run fmt = run_expect 0 fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let campaign_args =
  "--design gcd --design fifo --design counter --backend compiled --backend interp \
   --seeds 1 --cycles 300 --seed 7"

let () =
  (match Sys.argv with [| _; exe |] -> sic := exe | _ -> fail "usage: check_campaign.exe SIC.exe");
  (* the same campaign at -j 1 and -j 4: 3 designs x 2 backends *)
  run "campaign --db db_j1 -j 1 %s" campaign_args;
  run "campaign --db db_j4 -j 4 %s" campaign_args;
  (* every counts file — per-run and the cached aggregate — byte-identical *)
  let cnt_files dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".cnt" || Filename.check_suffix f ".tl")
    |> List.sort compare
  in
  let f1 = cnt_files "db_j1" and f4 = cnt_files "db_j4" in
  if f1 <> f4 then fail "different counts files: [%s] vs [%s]" (String.concat " " f1) (String.concat " " f4);
  if not (List.mem "aggregate.cnt" f1) then fail "no aggregate.cnt in db_j1";
  if not (List.exists (fun f -> Filename.check_suffix f ".tl") f1) then
    fail "no convergence timelines persisted in db_j1";
  List.iter
    (fun f ->
      let a = read_file (Filename.concat "db_j1" f) and b = read_file (Filename.concat "db_j4" f) in
      if a <> b then fail "%s differs between -j 1 and -j 4" f)
    f1;
  (* manifests agree on everything but wall time *)
  let view db = List.map (fun r -> { r with Db.wall_us = 0. }) (Db.runs db) in
  let db1 = Db.load "db_j1" and db4 = Db.load "db_j4" in
  if view db1 <> view db4 then fail "manifests differ between -j 1 and -j 4";
  if List.length (Db.runs db1) <> 6 then
    fail "expected 6 runs (3 designs x 2 backends), got %d" (List.length (Db.runs db1));
  (* an injected worker crash: recorded as a failed run, campaign completes
     — and the exhausted retries surface as a nonzero exit for CI *)
  run_expect 1
    "campaign --db db_crash -j 2 --inject-crash 0 --retries 1 --design gcd --design counter \
     --backend compiled --seeds 1 --cycles 200";
  let dbc = Db.load "db_crash" in
  let failed =
    List.filter (fun r -> match r.Db.status with Db.Run_failed _ -> true | _ -> false) (Db.runs dbc)
  in
  if List.length failed <> 1 then fail "expected 1 failed run, got %d" (List.length failed);
  if List.length (Db.ok_runs dbc) <> 1 then
    fail "expected the surviving job to be recorded ok";
  (* the db subcommands run over the result *)
  run "db list db_j4";
  run "db report db_j4 --save-counts db_j4_aggregate.cnt";
  run "db report db_j4 --timeline --html db_j4_report.html";
  if not (Sys.file_exists "db_j4_report.html") then fail "db report --html wrote nothing";
  let html = read_file "db_j4_report.html" in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  if not (contains html "coverage convergence") then
    fail "HTML report lacks the convergence-curve section";
  run "db rank db_j4";
  run "db diff db_j4 r0001 r0002";
  if not (Counts.equal (Counts.load "db_j4_aggregate.cnt") (Db.aggregate db4)) then
    fail "exported aggregate differs from the library view";
  (* rank: the picked subset's merged coverage equals the aggregate's *)
  let picked = Db.rank db4 in
  if picked = [] then fail "rank picked nothing";
  let subset = Counts.merge (List.map (Db.load_counts db4) picked) in
  if Counts.covered subset <> Counts.covered (Db.aggregate db4) then
    fail "rank subset does not cover the aggregate";
  if List.length picked > List.length (Db.ok_runs db4) then fail "rank picked too many runs";
  (* scan --db: §5.3 removal against the database before instrumentation *)
  run "scan --design gcd -m line --width 8 --db db_j4 --threshold 1";
  print_endline "check_campaign: ok"
