(** Tests for the coverage-closure loop (lib/close) and its supporting
    plumbing: replay-trace text round-trips, witness-to-fuzz-seed
    re-encoding, the witness differential (a BMC trace replays to the
    same counts on every backend and actually fires its target), corpus
    persistence, the exclusion artifact, and the headline acceptance
    property — closing the fixture design to a fixpoint with database
    bytes independent of -j. *)

module Counts = Sic_coverage.Counts
module Line = Sic_coverage.Line_coverage
module Db = Sic_db.Db
module Close = Sic_close.Close
module Fuzzer = Sic_fuzz.Fuzzer
module Bmc = Sic_formal.Bmc
module Replay = Sic_sim.Replay
open Helpers

let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !n

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* the closure fixture, line-instrumented and lowered — 8 points: 6
   reachable (one only at BMC depth 4), 2 provably dead *)
let closefix () = lower (fst (Line.instrument (Sic_designs.Closefix.circuit ())))

let trace_equal (a : Replay.trace) (b : Replay.trace) =
  a.Replay.input_names = b.Replay.input_names
  && Array.length a.Replay.frames = Array.length b.Replay.frames
  && Array.for_all2 (fun fa fb -> Array.for_all2 Sic_bv.Bv.equal fa fb) a.Replay.frames
       b.Replay.frames

let deep_witness () =
  let low = closefix () in
  match Bmc.check_covers ~bound:8 ~covers:[ "deep" ] low with
  | { Bmc.results = [ (_, Bmc.Reachable tr) ]; _ } -> (low, tr)
  | _ -> Alcotest.fail "BMC found no witness for the deep point"

let test_trace_text_round_trip () =
  let _, tr = deep_witness () in
  let tr' = Replay.of_string (Replay.to_string tr) in
  Alcotest.(check bool) "trace survives to_string/of_string" true (trace_equal tr tr');
  (* malformed inputs are rejected with a parse error, not a crash *)
  List.iter
    (fun bad ->
      match Replay.of_string bad with
      | exception Replay.Bad_format _ -> ()
      | _ -> Alcotest.fail "malformed trace accepted")
    [ ""; "# wrong header\ninputs a\nframes 0"; Replay.format_header ^ "\ninputs a\nframes 2\n1" ]

let test_witness_differential () =
  (* the witness must fire its target and harvest identically on both
     reference backends — the replay-confirm step close relies on *)
  let low, tr = deep_witness () in
  let harvest create =
    let b = create low in
    Replay.replay b tr;
    b.Sic_sim.Backend.counts ()
  in
  let compiled = harvest (fun c -> Sic_sim.Compiled.create c) in
  let interp = harvest Sic_sim.Interp.create in
  Alcotest.(check bool) "compiled = interp under witness replay" true
    (Counts.equal compiled interp);
  Alcotest.(check bool) "witness fires its target" true (Counts.get compiled "deep" > 0)

let test_witness_as_fuzz_seed () =
  (* input_of_trace must re-encode the witness so the fuzzer harness's
     own unpacking reaches the same state: random fuzzing essentially
     never finds deep (p ~ 2^-24 per window), the seed must *)
  let low, tr = deep_witness () in
  let h = Fuzzer.make_harness low in
  let seed = Fuzzer.input_of_trace h tr in
  let counts = Fuzzer.execute h seed in
  Alcotest.(check bool) "witness seed covers the deep point" true
    (Counts.get counts "deep" > 0)

let test_corpus_round_trip () =
  let dir = fresh_dir "close_corpus" in
  let seeds = [ Bytes.of_string "\x00\xa5\x5a"; Bytes.of_string "\xc3"; Bytes.create 0 ] in
  Fuzzer.save_corpus dir seeds;
  Alcotest.(check (list string)) "corpus round-trips in order"
    (List.map Bytes.to_string seeds)
    (List.map Bytes.to_string (Fuzzer.load_corpus dir));
  (* saving again mirrors the new list exactly (stale files removed) *)
  Fuzzer.save_corpus dir [ Bytes.of_string "x" ];
  Alcotest.(check int) "resave replaces" 1 (List.length (Fuzzer.load_corpus dir));
  Alcotest.(check (list string)) "missing dir is empty" []
    (List.map Bytes.to_string (Fuzzer.load_corpus (fresh_dir "close_nodir")))

let close_fixture ~jobs dir =
  let low = closefix () in
  let db = Db.init dir in
  let config = { (Close.default_config ~design:"closefix" ~circuit:low) with bound = 8; jobs } in
  (Close.close ~db config, db)

let test_close_reaches_fixpoint () =
  let dir = fresh_dir "close_fix" in
  let o, db = close_fixture ~jobs:1 dir in
  Alcotest.(check bool) "fixpoint reached" true o.Close.fixpoint;
  Alcotest.(check int) "no open points" 0 o.Close.points_open;
  Alcotest.(check int) "both dead points excluded" 2 o.Close.points_excluded;
  Alcotest.(check int) "the rest covered" 6 o.Close.points_covered;
  Alcotest.(check bool) "witness seeds harvested" true (o.Close.corpus <> []);
  (* the closed database reports 100% of the non-excluded points *)
  let report = Db.render_report db in
  Alcotest.(check bool) "report shows full coverage" true
    (contains ~needle:"(100.0%)" report);
  Alcotest.(check bool) "report lists exclusions" true
    (contains ~needle:"proven unreachable" report);
  (* rank's target honors the exclusions: the pick covers everything *)
  Alcotest.(check bool) "rank converges on the closed db" true
    (contains ~needle:"\"uncovered\":[]" (Sic_obs.Json.to_string (Db.rank_json db)))

let test_close_db_bytes_j_independent () =
  let dir1 = fresh_dir "close_j1" and dir4 = fresh_dir "close_j4" in
  let _ = close_fixture ~jobs:1 dir1 and _ = close_fixture ~jobs:4 dir4 in
  let listing dir = List.sort compare (Array.to_list (Sys.readdir dir)) in
  let files1 = List.filter (fun f -> f <> "lock") (listing dir1) in
  Alcotest.(check (list string)) "same files at -j1 and -j4" files1
    (List.filter (fun f -> f <> "lock") (listing dir4));
  Alcotest.(check bool) "exclusion artifact present" true
    (List.mem "exclusions.ndjson" files1);
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Printf.sprintf "%s byte-identical across -j" f)
        (read_file (Filename.concat dir1 f))
        (read_file (Filename.concat dir4 f)))
    files1

let test_exclusions_idempotent () =
  let dir = fresh_dir "close_excl" in
  let db = Db.init dir in
  let ex name = { Db.ex_name = name; ex_reason = "test"; ex_design = "d"; ex_wave = 0 } in
  Db.add_exclusions db [ ex "a"; ex "b"; ex "a" ];
  Db.add_exclusions db [ ex "b"; ex "c" ];
  Alcotest.(check (list string)) "dedup within and across batches" [ "a"; "b"; "c" ]
    (Db.excluded_names db);
  (* and the artifact reloads to the same view *)
  Alcotest.(check (list string)) "artifact reloads" [ "a"; "b"; "c" ]
    (Db.excluded_names (Db.load dir));
  (* rank drops excluded points from its target *)
  ignore
    (Db.add db ~design:"d" ~backend:"compiled" ~workload:"random" ~seed:0 ~cycles:1
       (Ok (Counts.of_list [ ("a", 0); ("covered", 3) ])));
  let j = Sic_obs.Json.to_string (Db.rank_json db) in
  Alcotest.(check bool) "excluded point not counted uncovered" false
    (contains ~needle:"\"uncovered\":[\"a\"]" j);
  Alcotest.(check bool) "excluded list serialized" true
    (contains ~needle:"\"excluded\":[\"a\",\"b\",\"c\"]" j)

let tests =
  [
    Alcotest.test_case "trace text round-trip" `Quick test_trace_text_round_trip;
    Alcotest.test_case "witness differential" `Quick test_witness_differential;
    Alcotest.test_case "witness as fuzz seed" `Quick test_witness_as_fuzz_seed;
    Alcotest.test_case "corpus round-trip" `Quick test_corpus_round_trip;
    Alcotest.test_case "close reaches fixpoint" `Quick test_close_reaches_fixpoint;
    Alcotest.test_case "close db bytes -j independent" `Quick
      test_close_db_bytes_j_independent;
    Alcotest.test_case "exclusions idempotent" `Quick test_exclusions_idempotent;
  ]
