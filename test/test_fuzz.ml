(** Tests for the coverage-directed fuzzer (§5.4). *)

module Counts = Sic_coverage.Counts
module F = Sic_fuzz.Fuzzer

let i2c_line_harness () =
  let c, db = Sic_coverage.Line_coverage.instrument (Sic_designs.I2c.circuit ()) in
  (F.make_harness (Sic_passes.Compile.lower c), db)

let test_deterministic () =
  let h, _ = i2c_line_harness () in
  let r1 = F.run ~seed:42 ~execs:60 h in
  let r2 = F.run ~seed:42 ~execs:60 h in
  Alcotest.(check int) "same corpus size" r1.F.final.F.corpus_size r2.F.final.F.corpus_size;
  Alcotest.(check bool) "same cumulative counts" true
    (Counts.equal r1.F.final.F.cumulative r2.F.final.F.cumulative)

let test_coverage_grows () =
  let h, db = i2c_line_harness () in
  let r = F.run ~seed:7 ~execs:150 h in
  (* coverage history is monotone (cumulative merge) *)
  let covered c = Counts.covered_points c in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> covered a <= covered b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "history monotone" true (monotone r.F.history);
  (* fuzzing must beat the all-zeros seed input *)
  let zero_counts =
    F.execute h (Bytes.make (h.F.bytes_per_cycle * 4) '\000')
  in
  Alcotest.(check bool) "beats the zero seed" true
    (covered r.F.final.F.cumulative > covered zero_counts);
  Alcotest.(check bool) "corpus grew" true (r.F.final.F.corpus_size > 1);
  (* the report generator still understands fuzzer-produced counts *)
  let report = Sic_coverage.Line_coverage.report db r.F.final.F.cumulative in
  Alcotest.(check bool) "line report works on fuzz counts" true
    (report.Sic_coverage.Line_coverage.branches_covered > 0)

let test_feedback_is_pluggable () =
  (* the same loop runs with mux-toggle feedback instead of line coverage:
     the paper's "mix and match metrics" claim *)
  let low = Sic_passes.Compile.lower (Sic_designs.I2c.circuit ()) in
  let mux_instr, _db = Sic_coverage.Mux_coverage.instrument low in
  let h = F.make_harness mux_instr in
  let r = F.run ~seed:3 ~execs:60 h in
  Alcotest.(check bool) "mux-feedback fuzzing runs and finds pairs" true
    (r.F.final.F.seen_pairs > 0)

let test_mutator_bounds =
  QCheck.Test.make ~count:200 ~name:"mutator output stays non-empty"
    QCheck.(pair small_int (string_of_size (QCheck.Gen.int_range 1 64)))
    (fun (seed, s) ->
      let rng = Sic_fuzz.Rng.create seed in
      let out = F.mutate rng [| Bytes.of_string s |] (Bytes.of_string s) in
      Bytes.length out > 0)

let test_rng_deterministic () =
  let a = Sic_fuzz.Rng.create 99 and b = Sic_fuzz.Rng.create 99 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Sic_fuzz.Rng.int a 1000) (Sic_fuzz.Rng.int b 1000)
  done

let test_trim () =
  let h, _ = i2c_line_harness () in
  (* a long input whose useful part is a single command early on *)
  let rng = Sic_fuzz.Rng.create 4 in
  let long = Bytes.init (h.F.bytes_per_cycle * 80) (fun _ -> Char.chr (Sic_fuzz.Rng.byte rng)) in
  let trimmed = F.trim h long in
  Alcotest.(check bool) "trim shrinks" true (Bytes.length trimmed <= Bytes.length long);
  Alcotest.(check bool) "multiple of cycle size" true
    (Bytes.length trimmed mod h.F.bytes_per_cycle = 0);
  (* signature preserved: every pair of the original is still covered *)
  let original_sig = F.signature (F.execute h long) in
  let trimmed_sig = F.signature (F.execute h trimmed) in
  List.iter
    (fun pair ->
      Alcotest.(check bool) "signature pair preserved" true (List.mem pair trimmed_sig))
    original_sig;
  (* idempotence: trimming again changes nothing further *)
  Alcotest.(check int) "idempotent" (Bytes.length trimmed)
    (Bytes.length (F.trim h trimmed))

let tests =
  [
    Alcotest.test_case "corpus trimming" `Quick test_trim;
    Alcotest.test_case "deterministic from seed" `Quick test_deterministic;
    Alcotest.test_case "coverage grows" `Quick test_coverage_grows;
    Alcotest.test_case "feedback metric pluggable" `Quick test_feedback_is_pluggable;
    QCheck_alcotest.to_alcotest test_mutator_bounds;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
  ]
