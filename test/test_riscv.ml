(** An ISA test suite for the riscv-mini core: each test loads a small
    program through the cache backdoor, runs it, and checks an
    architectural result written to data memory (observed through the
    debug read port). *)

module Bv = Sic_bv.Bv
open Sic_sim
open Sic_designs.Riscv_mini

let low = lazy (Sic_passes.Compile.lower (circuit ()))

(* run [program], returning dmem[result_addr] *)
let run_program ?(cycles = 600) ?(result_addr = 1) program =
  let b = Compiled.create (Lazy.force low) in
  Backend.reset_sequence b;
  b.Backend.poke "run" (Bv.zero 1);
  List.iteri
    (fun i inst ->
      b.Backend.poke "iload_en" (Bv.one 1);
      b.Backend.poke "iload_addr" (Bv.of_int ~width:6 i);
      b.Backend.poke "iload_data" (Bv.of_int ~width:32 inst);
      b.Backend.step 1)
    program;
  b.Backend.poke "iload_en" (Bv.zero 1);
  b.Backend.poke "run" (Bv.one 1);
  b.Backend.step cycles;
  b.Backend.poke "dbg_addr" (Bv.of_int ~width:6 result_addr);
  Bv.to_int_trunc (b.Backend.peek "dbg_data")

(* store x[rs] to dmem[1] and spin *)
let finish rs = [ sw rs 0 4; jal 0 0 ]

let check name expected program =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check int) name expected (run_program program))

let mask32 = 0xFFFFFFFF

let sll rd rs1 rs2 = (rs2 lsl 20) lor (rs1 lsl 15) lor (1 lsl 12) lor (rd lsl 7) lor 0x33
let srl rd rs1 rs2 = (rs2 lsl 20) lor (rs1 lsl 15) lor (5 lsl 12) lor (rd lsl 7) lor 0x33
let sra rd rs1 rs2 =
  (0x20 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (5 lsl 12) lor (rd lsl 7) lor 0x33
let slt rd rs1 rs2 = (rs2 lsl 20) lor (rs1 lsl 15) lor (2 lsl 12) lor (rd lsl 7) lor 0x33
let sltu rd rs1 rs2 = (rs2 lsl 20) lor (rs1 lsl 15) lor (3 lsl 12) lor (rd lsl 7) lor 0x33
let bge rs1 rs2 imm = branch 5 rs1 rs2 imm
let jalr rd rs1 imm = (imm land 0xfff) lsl 20 lor (rs1 lsl 15) lor (rd lsl 7) lor 0x67

let tests =
  [
    check "addi" 5 ([ addi 1 0 5 ] @ finish 1);
    check "addi negative" ((-5) land mask32) ([ addi 1 0 (-5) ] @ finish 1);
    check "add" 30 ([ addi 1 0 12; addi 2 0 18; add 3 1 2 ] @ finish 3);
    check "sub" 6 ([ addi 1 0 20; addi 2 0 14; sub 3 1 2 ] @ finish 3);
    check "sub negative" ((-6) land mask32) ([ addi 1 0 14; addi 2 0 20; sub 3 1 2 ] @ finish 3);
    check "and" 0b1000 ([ addi 1 0 0b1100; addi 2 0 0b1010; and_ 3 1 2 ] @ finish 3);
    check "or" 0b1110 ([ addi 1 0 0b1100; addi 2 0 0b1010; or_ 3 1 2 ] @ finish 3);
    check "xor" 0b0110 ([ addi 1 0 0b1100; addi 2 0 0b1010; xor_ 3 1 2 ] @ finish 3);
    check "sll" 40 ([ addi 1 0 5; addi 2 0 3; sll 3 1 2 ] @ finish 3);
    check "srl" 5 ([ addi 1 0 40; addi 2 0 3; srl 3 1 2 ] @ finish 3);
    check "sra keeps sign" ((-2) land mask32)
      ([ addi 1 0 (-8); addi 2 0 2; sra 3 1 2 ] @ finish 3);
    check "slt signed" 1 ([ addi 1 0 (-1); addi 2 0 1; slt 3 1 2 ] @ finish 3);
    check "sltu unsigned" 0
      (* -1 unsigned is huge, so (-1) <u 1 is false *)
      ([ addi 1 0 (-1); addi 2 0 1; sltu 3 1 2 ] @ finish 3);
    check "lui" (0xABCDE lsl 12) ([ lui 1 0xABCDE ] @ finish 1);
    check "x0 is hardwired zero" 0 ([ addi 0 0 77; add 1 0 0 ] @ finish 1);
    check "sw/lw round-trip" 1234
      ([ addi 1 0 1234; sw 1 0 32; lw 2 0 32 ] @ finish 2);
    check "beq taken" 1
      (* 2: beq +8 -> pc 16 (inst 4), skipping 'addi 3,0,0' *)
      ([ addi 1 0 7; addi 2 0 7; beq 1 2 8; addi 3 0 0; addi 3 0 1 ] @ finish 3);
    check "beq not taken" 0
      ([ addi 1 0 7; addi 2 0 8; beq 1 2 8; addi 3 0 0; addi 3 0 1; addi 3 3 (-1) ]
       @ finish 3);
    check "bne taken" 1 ([ addi 1 0 7; addi 2 0 8; bne 1 2 8; addi 3 0 9; addi 3 0 1 ] @ finish 3);
    check "blt signed taken" 1
      ([ addi 1 0 (-3); addi 2 0 2; blt 1 2 8; addi 3 0 9; addi 3 0 1 ] @ finish 3);
    check "bge taken on equal" 1
      ([ addi 1 0 4; addi 2 0 4; bge 1 2 8; addi 3 0 9; addi 3 0 1 ] @ finish 3);
    check "jal links pc+4" 12
      (* jal x1 at pc 8 -> x1 = 12 *)
      ([ addi 5 0 0; nop; jal 1 8; nop; add 3 0 1 ] @ finish 3);
    check "jalr jumps and links" 1
      (* 0: addi x1 = 20 (target); 1: jalr x2, x1, 0 -> pc 20, x2 = 8;
         2,3,4: skipped; 5 (pc 20): addi x3 = 1 *)
      ([ addi 1 0 20; jalr 2 1 0; addi 3 0 9; addi 3 0 9; addi 3 0 9; addi 3 0 1 ]
       @ finish 3);
    check "loop sums 1..10" 55
      ([
         addi 1 0 10;
         addi 2 0 0;
         addi 3 0 0;
         (* loop at pc 12: x3 += x1; x1 -= 1; bne x1, x2 -> loop *)
         add 3 3 1;
         addi 1 1 (-1);
         bne 1 2 (-8);
       ]
       @ finish 3);
    Alcotest.test_case "icache write path silent in simulation" `Quick (fun () ->
        (* the dynamic complement of the §5.5 formal result: a full program
           run (with stores) covers the dcache WriteThrough state but never
           the icache's *)
        let low = Sic_passes.Compile.lower (circuit ()) in
        let low, _db = Sic_coverage.Fsm_coverage.instrument low in
        let b = Compiled.create low in
        Backend.reset_sequence b;
        b.Backend.poke "run" (Bv.zero 1);
        List.iteri
          (fun i inst ->
            b.Backend.poke "iload_en" (Bv.one 1);
            b.Backend.poke "iload_addr" (Bv.of_int ~width:6 i);
            b.Backend.poke "iload_data" (Bv.of_int ~width:32 inst);
            b.Backend.step 1)
          [ addi 1 0 7; sw 1 0 4; lw 2 0 4; jal 0 0 ];
        b.Backend.poke "iload_en" (Bv.zero 1);
        b.Backend.poke "run" (Bv.one 1);
        b.Backend.step 300;
        let counts = b.Backend.counts () in
        let get n = Sic_coverage.Counts.get counts n in
        Alcotest.(check bool) "dcache write path exercised" true
          (get "fsm_dcache.state_state_WriteThrough" > 0);
        Alcotest.(check int) "icache write path silent" 0
          (get "fsm_icache.state_state_WriteThrough");
        Alcotest.(check bool) "icache serves fetches" true
          (get "fsm_icache.state_state_Respond" > 0));
    Alcotest.test_case "soc: every core runs its program" `Quick (fun () ->
        let cfg = Sic_designs.Soc.rocket_sim_config in
        let low = Sic_passes.Compile.lower (Sic_designs.Soc.circuit cfg) in
        let b = Compiled.create low in
        Backend.reset_sequence b;
        b.Backend.poke "run" (Bv.zero 1);
        (* load "addi x1,x0,3; sw x1,4(x0); spin" into every core *)
        let program = [ addi 1 0 3; sw 1 0 4; jal 0 0 ] in
        for core = 0 to cfg.Sic_designs.Soc.cores - 1 do
          List.iteri
            (fun i inst ->
              b.Backend.poke "load_en" (Bv.one 1);
              b.Backend.poke "load_core" (Bv.of_int ~width:4 core);
              b.Backend.poke "load_side" (Bv.zero 1);
              b.Backend.poke "load_addr" (Bv.of_int ~width:6 i);
              b.Backend.poke "load_data" (Bv.of_int ~width:32 inst);
              b.Backend.step 1)
            program
        done;
        b.Backend.poke "load_en" (Bv.zero 1);
        b.Backend.poke "run" (Bv.one 1);
        b.Backend.step 300;
        (* every core executed through to the spin jal at pc 8 *)
        for core = 0 to cfg.Sic_designs.Soc.cores - 1 do
          Alcotest.(check int)
            (Printf.sprintf "core %d spinning at its jal" core)
            8
            (Bv.to_int_trunc (b.Backend.peek (Printf.sprintf "core%d.pc_out" core)))
        done);
    Alcotest.test_case "retired pulses" `Quick (fun () ->
        let b = Compiled.create (Lazy.force low) in
        Backend.reset_sequence b;
        b.Backend.poke "run" (Bv.zero 1);
        List.iteri
          (fun i inst ->
            b.Backend.poke "iload_en" (Bv.one 1);
            b.Backend.poke "iload_addr" (Bv.of_int ~width:6 i);
            b.Backend.poke "iload_data" (Bv.of_int ~width:32 inst);
            b.Backend.step 1)
          [ addi 1 0 1; addi 2 0 2; add 3 1 2; jal 0 0 ];
        b.Backend.poke "iload_en" (Bv.zero 1);
        b.Backend.poke "run" (Bv.one 1);
        let retired = ref 0 in
        for _ = 1 to 100 do
          if Bv.to_bool (b.Backend.peek "retired") then incr retired;
          b.Backend.step 1
        done;
        Alcotest.(check bool) "instructions retire" true (!retired > 5));
  ]
