(** Dedicated tests for the compiler passes: when-lowering semantics,
    inlining (names, covers, annotations), constant propagation, dead code
    elimination, and the alias analysis. *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
open Sic_ir
open Sic_sim
open Helpers

(* --- lower-whens semantics ------------------------------------------- *)

(* last-connect with nested whens:
     out = 0
     when a: out = 1; when b: out = 2
     when c: out = 3
   expected: c ? 3 : (a ? (b ? 2 : 1) : 0) *)
let nested_when_circuit () =
  let cb = Dsl.create_circuit "Nest" in
  Dsl.module_ cb "Nest" (fun m ->
      let open Dsl in
      let a = input m "a" (Ty.UInt 1) in
      let b = input m "b" (Ty.UInt 1) in
      let c = input m "c" (Ty.UInt 1) in
      let out = output m "out" (Ty.UInt 4) in
      connect m out (lit 4 0);
      when_ m a (fun () ->
          connect m out (lit 4 1);
          when_ m b (fun () -> connect m out (lit 4 2)));
      when_ m c (fun () -> connect m out (lit 4 3)));
  Dsl.finalize cb

let test_lower_whens_semantics () =
  let b = Compiled.create (lower (nested_when_circuit ())) in
  let expect a bv c result =
    b.Backend.poke "a" (Bv.of_int ~width:1 a);
    b.Backend.poke "b" (Bv.of_int ~width:1 bv);
    b.Backend.poke "c" (Bv.of_int ~width:1 c);
    Alcotest.(check int)
      (Printf.sprintf "a=%d b=%d c=%d" a bv c)
      result
      (Bv.to_int_trunc (b.Backend.peek "out"))
  in
  expect 0 0 0 0;
  expect 1 0 0 1;
  expect 1 1 0 2;
  expect 0 1 0 0;
  (* b alone does nothing *)
  expect 0 0 1 3;
  expect 1 1 1 3 (* later when wins *)

let test_lower_whens_cover_predicates () =
  (* a cover in a nested branch fires only when the whole path holds *)
  let cb = Dsl.create_circuit "CovPath" in
  Dsl.module_ cb "CovPath" (fun m ->
      let open Dsl in
      let a = input m "a" (Ty.UInt 1) in
      let b = input m "b" (Ty.UInt 1) in
      let out = output m "out" (Ty.UInt 1) in
      connect m out (a &: b);
      when_ m a (fun () -> when_ m b (fun () -> cover m "deep" true_)));
  let low = lower (Dsl.finalize cb) in
  let bk = Compiled.create low in
  let step a bv =
    bk.Backend.poke "a" (Bv.of_int ~width:1 a);
    bk.Backend.poke "b" (Bv.of_int ~width:1 bv);
    bk.Backend.step 1
  in
  step 0 0;
  step 1 0;
  step 0 1;
  Alcotest.(check int) "not fired yet" 0 (Counts.get (bk.Backend.counts ()) "deep");
  step 1 1;
  step 1 1;
  Alcotest.(check int) "fires only on the full path" 2
    (Counts.get (bk.Backend.counts ()) "deep")

let test_lower_whens_requires_default () =
  let cb = Dsl.create_circuit "NoDef" in
  Dsl.module_ cb "NoDef" (fun m ->
      let open Dsl in
      let a = input m "a" (Ty.UInt 1) in
      let out = output m "out" (Ty.UInt 1) in
      when_ m a (fun () -> connect m out true_));
  match lower (Dsl.finalize cb) with
  | exception Sic_passes.Pass.Pass_error { pass = "lower-whens"; _ } -> ()
  | _ -> Alcotest.fail "conditionally driven output without default must be rejected"

let test_registers_hold () =
  (* a register assigned only under a condition holds its value otherwise *)
  let cb = Dsl.create_circuit "Hold" in
  Dsl.module_ cb "Hold" (fun m ->
      let open Dsl in
      let en = input m "en" (Ty.UInt 1) in
      let d = input m "d" (Ty.UInt 8) in
      let q = output m "q" (Ty.UInt 8) in
      let r = reg_ m "r" (Ty.UInt 8) in
      connect m q r;
      when_ m en (fun () -> connect m r d));
  let b = Compiled.create (lower (Dsl.finalize cb)) in
  b.Backend.poke "en" (Bv.one 1);
  b.Backend.poke "d" (Bv.of_int ~width:8 42);
  b.Backend.step 1;
  b.Backend.poke "en" (Bv.zero 1);
  b.Backend.poke "d" (Bv.of_int ~width:8 99);
  b.Backend.step 5;
  Alcotest.(check int) "held across disabled cycles" 42 (Bv.to_int_trunc (b.Backend.peek "q"))

(* --- inlining ---------------------------------------------------------- *)

let test_inline_cover_paths () =
  (* two instances of a module with a cover produce two path-prefixed
     covers that count independently *)
  let cb = Dsl.create_circuit "Twice" in
  Dsl.module_ cb "Leaf" (fun m ->
      let open Dsl in
      let x = input m "x" (Ty.UInt 1) in
      let y = output m "y" (Ty.UInt 1) in
      connect m y x;
      cover m "seen" x);
  Dsl.module_ cb "Twice" (fun m ->
      let open Dsl in
      let p = input m "p" (Ty.UInt 1) in
      let q = input m "q" (Ty.UInt 1) in
      let out = output m "out" (Ty.UInt 1) in
      connect m (instance m "left" "Leaf" "x") p;
      connect m (instance m "right" "Leaf" "x") q;
      connect m out (instance m "left" "Leaf" "y" &: instance m "right" "Leaf" "y"));
  let low = lower (Dsl.finalize cb) in
  let covers = Circuit.covers_of (Circuit.main low) in
  Alcotest.(check (list string)) "hierarchical cover names" [ "left.seen"; "right.seen" ]
    (List.sort String.compare covers);
  let b = Compiled.create low in
  b.Backend.poke "p" (Bv.one 1);
  b.Backend.poke "q" (Bv.zero 1);
  b.Backend.step 3;
  let counts = b.Backend.counts () in
  Alcotest.(check int) "left instance counted" 3 (Counts.get counts "left.seen");
  Alcotest.(check int) "right instance at zero" 0 (Counts.get counts "right.seen")

let test_inline_annotations_per_instance () =
  (* an FSM module instantiated twice yields two Enum_reg annotations with
     prefixed register names *)
  let cb = Dsl.create_circuit "TwoFsms" in
  let s = Dsl.enum cb "TS" [ "P"; "Q" ] in
  Dsl.module_ cb "Flipper" (fun m ->
      let open Dsl in
      let t = input m "t" (Ty.UInt 1) in
      let o = output m "o" (Ty.UInt 1) in
      let st = reg_enum m "st" s "P" in
      connect m o st;
      when_ m t (fun () ->
          connect m st (mux_s (is s "P" st) (enum_value s "Q") (enum_value s "P"))));
  Dsl.module_ cb "TwoFsms" (fun m ->
      let open Dsl in
      let t = input m "t" (Ty.UInt 1) in
      let o = output m "o" (Ty.UInt 2) in
      connect m (instance m "f0" "Flipper" "t") t;
      connect m (instance m "f1" "Flipper" "t") (not_s t);
      connect m o (cat_s (instance m "f0" "Flipper" "o") (instance m "f1" "Flipper" "o")));
  let low = lower (Dsl.finalize cb) in
  let low, db = Sic_coverage.Fsm_coverage.instrument low in
  Alcotest.(check int) "two fsm instances found" 2 (List.length db);
  Alcotest.(check (list string)) "per-instance register names" [ "f0.st"; "f1.st" ]
    (List.sort String.compare
       (List.map (fun f -> f.Sic_coverage.Fsm_coverage.reg_name) db));
  ignore low

(* --- constant propagation ---------------------------------------------- *)

let count_ops (c : Circuit.t) =
  let n = ref 0 in
  let rec walk (e : Expr.t) =
    match e with
    | Expr.Ref _ | Expr.UIntLit _ | Expr.SIntLit _ -> ()
    | Expr.Mux (a, b, c) ->
        incr n;
        walk a;
        walk b;
        walk c
    | Expr.Unop (_, a) | Expr.Intop (_, _, a) | Expr.Bits (a, _, _) ->
        incr n;
        walk a
    | Expr.Binop (_, a, b) ->
        incr n;
        walk a;
        walk b
  in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Node { expr; _ } | Stmt.Connect { expr; _ } -> walk expr
      | _ -> ())
    (Circuit.main c).Circuit.body;
  !n

let test_const_prop_folds () =
  let cb = Dsl.create_circuit "Fold" in
  Dsl.module_ cb "Fold" (fun m ->
      let open Dsl in
      let x = input m "x" (Ty.UInt 8) in
      let out = output m "out" (Ty.UInt 8) in
      (* (x & 0) | (1 + 2) * 1 ... all foldable around x *)
      let zero = node m "z" (lit 8 3 -: lit 8 3) in
      let k = node m "k" (lit 4 1 +: lit 4 2) in
      connect m out ((x &: zero) |: resize (pad_s k 8) 8));
  let c = Dsl.finalize cb in
  let low = lower c in
  (* after folding, out is driven by the constant 3 *)
  let driver = ref None in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Connect { loc = "out"; expr; _ } -> driver := Some expr
      | _ -> ())
    (Circuit.main low).Circuit.body;
  (match !driver with
  | Some (Expr.UIntLit v) -> Alcotest.(check int) "folded to 3" 3 (Bv.to_int_trunc v)
  | Some e -> Alcotest.fail ("not folded: " ^ Printer.expr_to_string e)
  | None -> Alcotest.fail "no driver for out")

let test_const_prop_preserves_behaviour () =
  (* pipeline without const-prop/dce vs the full pipeline: same outputs *)
  let c = gcd_circuit () in
  let plain =
    Sic_passes.Pass.run_pipeline
      [ Sic_passes.Check.pass; Sic_passes.Lower_whens.pass; Sic_passes.Inline.pass ]
      c
  in
  let optimized = lower c in
  Alcotest.(check bool) "optimization shrinks the circuit" true
    (count_ops optimized <= count_ops plain);
  let r1 = run_gcd (Compiled.create plain) 1071 462 in
  let r2 = run_gcd (Compiled.create optimized) 1071 462 in
  Alcotest.(check int) "same result" r1 r2;
  Alcotest.(check int) "gcd(1071,462)=21" 21 r2

(* --- dead code elimination --------------------------------------------- *)

let test_dce_removes_unused () =
  let cb = Dsl.create_circuit "Dead" in
  Dsl.module_ cb "Dead" (fun m ->
      let open Dsl in
      let x = input m "x" (Ty.UInt 8) in
      let out = output m "out" (Ty.UInt 8) in
      let _unused = node m "unused" (x *: x) in
      let dead_reg = reg_ m "dead_reg" (Ty.UInt 8) in
      connect m dead_reg (x +: lit 8 1);
      connect m out x);
  let low = lower (Dsl.finalize cb) in
  let names = Stmt.declared_names (Circuit.main low).Circuit.body in
  Alcotest.(check bool) "unused node removed" false (List.mem "unused" names);
  Alcotest.(check bool) "dead register removed" false (List.mem "dead_reg" names)

let test_dce_respects_dont_touch () =
  let cb = Dsl.create_circuit "Kept" in
  Dsl.module_ cb "Kept" (fun m ->
      let open Dsl in
      let x = input m "x" (Ty.UInt 8) in
      let out = output m "out" (Ty.UInt 8) in
      let _probe = node m "probe" (x *: lit 8 2) in
      connect m out x);
  let c = Dsl.finalize cb in
  let c =
    {
      c with
      Circuit.annotations =
        Annotation.Dont_touch { module_name = "Kept"; name = "probe" } :: c.Circuit.annotations;
    }
  in
  let low = lower c in
  let names = Stmt.declared_names (Circuit.main low).Circuit.body in
  Alcotest.(check bool) "dont_touch signal survives DCE" true (List.mem "probe" names)

(* --- alias analysis through the hierarchy ------------------------------ *)

let test_alias_through_hierarchy () =
  (* parent wire -> child input -> child output -> parent wire: all one
     group after inlining *)
  let cb = Dsl.create_circuit "Thru" in
  Dsl.module_ cb "Pass" (fun m ->
      let open Dsl in
      let i = input m "i" (Ty.UInt 4) in
      let o = output m "o" (Ty.UInt 4) in
      connect m o i);
  Dsl.module_ cb "Thru" (fun m ->
      let open Dsl in
      let x = input m "x" (Ty.UInt 4) in
      let out = output m "out" (Ty.UInt 4) in
      connect m (instance m "p" "Pass" "i") x;
      connect m out (instance m "p" "Pass" "o"));
  let low = lower (Dsl.finalize cb) in
  let groups = Sic_passes.Alias.analyze low in
  let rep = Sic_passes.Alias.representative groups in
  Alcotest.(check string) "x and out alias" (rep "x") (rep "out")

let test_inline_renames_memories () =
  (* after flattening riscv-mini, the regfile memory lives at
     core.rf.regs with fully dotted port names *)
  let low = lower (Sic_designs.Riscv_mini.circuit ()) in
  let names = Stmt.declared_names (Circuit.main low).Circuit.body in
  Alcotest.(check bool) "regfile memory renamed" true (List.mem "core.rf.regs" names);
  Alcotest.(check bool) "mem port field renamed" true
    (List.mem "core.rf.regs.w.en" names);
  Alcotest.(check bool) "cache memories renamed" true
    (List.mem "icache.data" names && List.mem "dcache.data" names)

let test_info_preserved_through_pipeline () =
  (* the source locator on a when survives printing, parsing, and shows up
     in the line-coverage metadata *)
  let c = gcd_circuit () in
  let printed = Printer.circuit_to_string c in
  let reparsed = Parser.parse_circuit printed in
  let count_infos circuit =
    let n = ref 0 in
    Stmt.iter
      (fun s ->
        match s with
        | Stmt.When { info = Info.Pos _; _ } -> incr n
        | _ -> ())
      (Circuit.main circuit).Circuit.body;
    !n
  in
  Alcotest.(check bool) "whens carry locators" true (count_infos c >= 4);
  Alcotest.(check int) "locators survive the text format" (count_infos c)
    (count_infos reparsed);
  let _, db = Sic_coverage.Line_coverage.instrument c in
  Alcotest.(check bool) "metadata references helpers.ml" true
    (List.exists
       (fun (b : Sic_coverage.Line_coverage.branch) ->
         match Info.file b.Sic_coverage.Line_coverage.branch_info with
         | Some f -> Filename.basename f = "helpers.ml"
         | None -> false)
       db)

let test_stats () =
  let c = gcd_circuit () in
  let s = Sic_passes.Stats.of_circuit c in
  let open Sic_passes.Stats in
  Alcotest.(check int) "one module" 1 s.modules;
  Alcotest.(check int) "3 registers" 3 s.regs;
  Alcotest.(check int) "x + y + busy = 33 bits" 33 s.reg_bits;
  Alcotest.(check bool) "whens counted" true (s.whens >= 4);
  (* flattening riscv-mini multiplies component stats by instance count *)
  let high = Sic_passes.Stats.of_circuit (Sic_designs.Riscv_mini.circuit ()) in
  let low = Sic_passes.Stats.of_circuit (lower (Sic_designs.Riscv_mini.circuit ())) in
  Alcotest.(check int) "two caches in the flat design: 2 x 2048 + 1024 mem bits" 5120
    low.mem_bits;
  Alcotest.(check bool) "flattening duplicates the shared cache regs" true
    (low.reg_bits > high.reg_bits);
  Alcotest.(check int) "low form has no whens" 0 low.whens

let tests =
  [
    Alcotest.test_case "circuit statistics" `Quick test_stats;
    Alcotest.test_case "inline: memories renamed" `Quick test_inline_renames_memories;
    Alcotest.test_case "info survives printing/parsing" `Quick
      test_info_preserved_through_pipeline;
    Alcotest.test_case "lower-whens: nested last-connect" `Quick test_lower_whens_semantics;
    Alcotest.test_case "lower-whens: cover path predicates" `Quick
      test_lower_whens_cover_predicates;
    Alcotest.test_case "lower-whens: missing default rejected" `Quick
      test_lower_whens_requires_default;
    Alcotest.test_case "lower-whens: registers hold" `Quick test_registers_hold;
    Alcotest.test_case "inline: per-instance covers" `Quick test_inline_cover_paths;
    Alcotest.test_case "inline: per-instance annotations" `Quick
      test_inline_annotations_per_instance;
    Alcotest.test_case "const-prop: folds constants" `Quick test_const_prop_folds;
    Alcotest.test_case "const-prop: preserves behaviour" `Quick
      test_const_prop_preserves_behaviour;
    Alcotest.test_case "dce: removes unused logic" `Quick test_dce_removes_unused;
    Alcotest.test_case "dce: respects dont_touch" `Quick test_dce_respects_dont_touch;
    Alcotest.test_case "alias: through hierarchy" `Quick test_alias_through_hierarchy;
  ]
