(** Unit tests for coverage-convergence timelines: the builder's
    monotonicity contract, the versioned text format, saturation detection
    and the sparkline renderer. *)

module Timeline = Sic_coverage.Timeline

let mk samples total =
  let b = Timeline.builder () in
  List.iter (fun (at, covered) -> Timeline.record b ~at ~covered) samples;
  Timeline.build ~total b

let test_builder () =
  let tl = mk [ (100, 2); (200, 5); (300, 5) ] 10 in
  Alcotest.(check (list (pair int int)))
    "samples in order"
    [ (100, 2); (200, 5); (300, 5) ]
    tl.Timeline.samples;
  Alcotest.(check int) "final covered" 5 (Timeline.final_covered tl);
  Alcotest.(check int) "last at" 300 (Timeline.last_at tl);
  (* a repeated [at] replaces: the final partial-chunk sample may land
     exactly on a sampling boundary *)
  let tl = mk [ (100, 2); (200, 4); (200, 6) ] 10 in
  Alcotest.(check (list (pair int int))) "repeat replaces" [ (100, 2); (200, 6) ]
    tl.Timeline.samples;
  (* going backwards in work is a programming error *)
  let b = Timeline.builder () in
  Timeline.record b ~at:200 ~covered:1;
  (match Timeline.record b ~at:100 ~covered:2 with
  | () -> Alcotest.fail "decreasing at accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "empty timeline is all zeros" 0
    (Timeline.final_covered Timeline.empty)

let test_text_round_trip () =
  let tl = mk [ (50, 1); (100, 3); (250, 7) ] 9 in
  let round = Timeline.of_string (Timeline.to_string tl) in
  Alcotest.(check bool) "survives print/parse" true (tl = round);
  (* comments and blank lines are ignored; stray whitespace is trimmed *)
  let parsed =
    Timeline.of_string
      "# sic coverage timeline v1\n\n# a comment\ntotal 4\n  10 1  \n20 3\n"
  in
  Alcotest.(check int) "total parsed" 4 parsed.Timeline.total;
  Alcotest.(check (list (pair int int))) "samples parsed" [ (10, 1); (20, 3) ]
    parsed.Timeline.samples

let check_bad name input =
  match Timeline.of_string input with
  | _ -> Alcotest.fail (name ^ ": accepted")
  | exception Timeline.Bad_format msg ->
      Alcotest.(check bool) (name ^ ": error locates the line") true
        (String.length msg > 0)

let test_bad_format () =
  check_bad "missing header" "total 3\n10 1\n";
  check_bad "future version" "# sic coverage timeline v9\ntotal 3\n";
  check_bad "malformed sample" "# sic coverage timeline v1\nten 1\n";
  check_bad "negative covered" "# sic coverage timeline v1\n10 -1\n";
  check_bad "non-increasing at" "# sic coverage timeline v1\n10 1\n10 2\n";
  (* the error message carries a line number *)
  match Timeline.of_string "# sic coverage timeline v1\ntotal 3\nbad line here\n" with
  | _ -> Alcotest.fail "malformed line accepted"
  | exception Timeline.Bad_format msg ->
      Alcotest.(check bool) "line number in message" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 3:")

let test_saturation () =
  Alcotest.(check (option int)) "empty has no saturation" None
    (Timeline.saturation_at Timeline.empty);
  Alcotest.(check (option int)) "all-zero has no saturation" None
    (Timeline.saturation_at (mk [ (10, 0); (20, 0) ] 5));
  (* final = 10; 99% needs >= 10, first reached at 300 *)
  let tl = mk [ (100, 5); (200, 9); (300, 10); (400, 10) ] 10 in
  Alcotest.(check (option int)) "p99 saturation" (Some 300) (Timeline.saturation_at tl);
  Alcotest.(check (option int)) "p50 saturation" (Some 100)
    (Timeline.saturation_at ~frac:0.5 tl)

let test_sparkline () =
  let line = Timeline.sparkline ~width:8 (mk [ (40, 5); (80, 10) ] 10) in
  Alcotest.(check int) "fixed width" 8 (String.length line);
  Alcotest.(check char) "fully covered ends at the top" '@' line.[7];
  Alcotest.(check string) "deterministic" line
    (Timeline.sparkline ~width:8 (mk [ (40, 5); (80, 10) ] 10));
  Alcotest.(check string) "empty timeline renders blank" (String.make 4 ' ')
    (Timeline.sparkline ~width:4 Timeline.empty)

let test_file_round_trip () =
  let path = Printf.sprintf "timeline_%d.tl" (Unix.getpid ()) in
  let tl = mk [ (10, 1); (20, 2) ] 3 in
  Timeline.save path tl;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () -> Alcotest.(check bool) "save/load round-trip" true (Timeline.load path = tl))

let tests =
  [
    Alcotest.test_case "builder monotonicity" `Quick test_builder;
    Alcotest.test_case "text format round-trip" `Quick test_text_round_trip;
    Alcotest.test_case "bad formats rejected with line numbers" `Quick test_bad_format;
    Alcotest.test_case "saturation detection" `Quick test_saturation;
    Alcotest.test_case "sparkline rendering" `Quick test_sparkline;
    Alcotest.test_case "file round-trip" `Quick test_file_round_trip;
  ]
