// vendor hard macro: not part of the synthesizable subset
module bad_primitive (
  output y
);
  wire int_osc;
  SB_HFOSC u_osc(.CLKHFPU(1'b1), .CLKHFEN(1'b1), .CLKHF(int_osc));  // line 6
  assign y = int_osc;
endmodule
