// the block comment below never closes
module bad_comment (
  input  clk,
  output y
);
  /* this comment runs off the end of the file
  assign y = 1'b0;
endmodule
