// the same net driven by two continuous assigns
module bad_multidriver (
  input  clk,
  input  a,
  input  b,
  output y
);
  assign y = a;
  assign y = b;         // line 9: second driver
endmodule
