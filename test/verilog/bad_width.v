// a 12-bit expression squeezed into a 4-bit net
module bad_width (
  input        clk,
  output [3:0] y
);
  wire [11:0] wide;
  assign wide = 12'hfff;
  assign y = wide;      // line 8: 12 bits into 4
endmodule
