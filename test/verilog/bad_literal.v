// '2' is not a binary digit
module bad_literal (
  input        clk,
  output [2:0] y
);
  assign y = 3'b102;    // line 6: bad sized literal
endmodule
