// references a wire that was never declared
module bad_undeclared (
  input  clk,
  output y
);
  assign y = mystery;   // line 6: 'mystery' is undeclared
endmodule
