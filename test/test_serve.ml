(** Tests for the coverage service (lib/serve): the HTTP parser's edge
    cases on string-backed readers, and end-to-end server/client round
    trips on an ephemeral port — ingest via POST /runs, the union-max
    /report contract, ETag/If-None-Match revalidation, error mapping, and
    surviving a client that vanishes mid-request (the SIGPIPE case). *)

module Counts = Sic_coverage.Counts
module Db = Sic_db.Db
module Json = Sic_obs.Json
module Serve = Sic_serve.Serve
module Http = Serve.Http
module Client = Serve.Client

let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !n

let parse_str s = Http.parse_request (Http.Reader.of_string s)

let parse_ok s =
  match parse_str s with
  | Some req -> req
  | None -> Alcotest.fail "expected a parsed request, got EOF"

(* ---------------- parser units ---------------- *)

let test_parse_simple () =
  let req =
    parse_ok "GET /diff?a=r%200001&b=&flag HTTP/1.1\r\nHost: h:1\r\nX-Thing:  v \r\n\r\n"
  in
  Alcotest.(check string) "method" "GET" req.Http.meth;
  Alcotest.(check string) "path" "/diff" req.Http.path;
  Alcotest.(check string) "raw target kept" "/diff?a=r%200001&b=&flag" req.Http.target;
  Alcotest.(check (list (pair string string)))
    "query decoded"
    [ ("a", "r 0001"); ("b", ""); ("flag", "") ]
    req.Http.query;
  Alcotest.(check (option string)) "header lookup is case-insensitive" (Some "v")
    (Http.header req "X-THING");
  Alcotest.(check string) "no body" "" req.Http.body

let test_parse_body_and_keepalive () =
  let req =
    parse_ok "POST /runs HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nab cd"
  in
  Alcotest.(check string) "body" "ab cd" req.Http.body;
  Alcotest.(check (option string)) "connection header" (Some "close")
    (Http.header req "connection");
  (* two requests back to back on one reader: keep-alive framing works *)
  let r = Http.Reader.of_string "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n" in
  let first = Option.get (Http.parse_request r) in
  let second = Option.get (Http.parse_request r) in
  Alcotest.(check string) "first" "/a" first.Http.path;
  Alcotest.(check string) "second" "/b" second.Http.path;
  Alcotest.(check bool) "then EOF" true (Http.parse_request r = None)

let test_parse_eof () =
  Alcotest.(check bool) "empty input is a clean EOF" true (parse_str "" = None)

let expect_bad_request s =
  match parse_str s with
  | exception Http.Bad_request _ -> ()
  | exception e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)
  | _ -> Alcotest.fail ("parser accepted: " ^ String.escaped s)

let test_bad_request_line () =
  expect_bad_request "FOO\r\n\r\n";
  expect_bad_request "GET /x HTTP/2.0\r\n\r\n";
  expect_bad_request "GET  /two-spaces HTTP/1.1\r\n\r\n";
  expect_bad_request "G=T /x HTTP/1.1\r\n\r\n";
  (* EOF mid-line and mid-headers are malformed, not clean closes *)
  expect_bad_request "GET /x HTT";
  expect_bad_request "GET /x HTTP/1.1\r\nHost: h\r\n";
  (* a header line without a colon *)
  expect_bad_request "GET /x HTTP/1.1\r\nnocolon\r\n\r\n"

let test_oversized_header () =
  let big = String.make (Http.max_header_line + 10) 'a' in
  (match parse_str ("GET /x HTTP/1.1\r\nh: " ^ big ^ "\r\n\r\n") with
  | exception Http.Too_large _ -> ()
  | _ -> Alcotest.fail "oversized header accepted");
  let many =
    String.concat ""
      (List.init (Http.max_headers + 10) (fun i -> Printf.sprintf "h%d: v\r\n" i))
  in
  match parse_str ("GET /x HTTP/1.1\r\n" ^ many ^ "\r\n") with
  | exception Http.Too_large _ -> ()
  | _ -> Alcotest.fail "header flood accepted"

let test_truncated_body () =
  expect_bad_request "POST /runs HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort";
  expect_bad_request "POST /runs HTTP/1.1\r\ncontent-length: nan\r\n\r\n";
  expect_bad_request "POST /runs HTTP/1.1\r\ncontent-length: -4\r\n\r\n";
  (* an over-limit claim is rejected before any body is read *)
  match
    parse_str
      (Printf.sprintf "POST /runs HTTP/1.1\r\ncontent-length: %d\r\n\r\n" (Http.max_body + 1))
  with
  | exception Http.Payload_too_large _ -> ()
  | _ -> Alcotest.fail "oversized body claim accepted"

let test_percent_round_trip () =
  let s = "a b/c?d&e=f%g\x00h" in
  Alcotest.(check string) "decode inverts encode" s
    (Http.percent_decode (Http.percent_encode s));
  Alcotest.(check string) "plus decodes to space" "a b" (Http.percent_decode "a+b")

(* ---------------- end-to-end ---------------- *)

let with_server f =
  let dir = fresh_dir "serve_db" in
  ignore (Db.init dir);
  let t = Serve.start ~port:0 ~threads:2 ~db_dir:dir () in
  Fun.protect ~finally:(fun () -> Serve.stop t) (fun () -> f dir t)

let url t path = Printf.sprintf "http://127.0.0.1:%d%s" (Serve.port t) path

let push t ~seed counts =
  let r =
    Client.push_run ~url:(url t "") ~design:"d" ~backend:"test" ~workload:"unit" ~seed
      ~cycles:10 counts
  in
  Alcotest.(check int) "push answered 201" 201 r.Client.status;
  r

let test_e2e_report_is_union_max () =
  with_server @@ fun _dir t ->
  let c1 = Counts.of_list [ ("a", 3); ("b", 0) ] in
  let c2 = Counts.of_list [ ("a", 1); ("b", 2); ("c", 5) ] in
  ignore (push t ~seed:0 c1);
  ignore (push t ~seed:1 c2);
  let r = Client.get (url t "/report") in
  Alcotest.(check int) "report 200" 200 r.Client.status;
  let j = Json.parse r.Client.body in
  Alcotest.(check (option int)) "runs" (Some 2) (Json.int_member "runs" j);
  let got =
    match Json.member "counts" j with
    | Some (Json.Obj kvs) ->
        Counts.of_list
          (List.map
             (function name, Json.Int c -> (name, c) | _ -> Alcotest.fail "non-int count")
             kvs)
    | _ -> Alcotest.fail "no counts object in /report"
  in
  Alcotest.(check bool) "/report equals Counts.union_max" true
    (Counts.equal got (Counts.union_max [ c1; c2 ]));
  (* conditional revalidation: the second GET is answered 304, no body *)
  let etag = Option.get (Client.header r "etag") in
  let r2 = Client.get ~headers:[ ("if-none-match", etag) ] (url t "/report") in
  Alcotest.(check int) "revalidation is 304" 304 r2.Client.status;
  Alcotest.(check string) "304 has no body" "" r2.Client.body;
  (* a new push changes the stamp: the same If-None-Match now misses *)
  ignore (push t ~seed:2 (Counts.of_list [ ("d", 1) ]));
  let r3 = Client.get ~headers:[ ("if-none-match", etag) ] (url t "/report") in
  Alcotest.(check int) "stale etag re-fetches" 200 r3.Client.status;
  Alcotest.(check bool) "etag moved" true (Client.header r3 "etag" <> Some etag)

let test_e2e_endpoints () =
  with_server @@ fun _dir t ->
  ignore (push t ~seed:0 (Counts.of_list [ ("a", 1); ("b", 0) ]));
  ignore (push t ~seed:1 (Counts.of_list [ ("a", 2); ("b", 3) ]));
  let ok path =
    let r = Client.get (url t path) in
    Alcotest.(check int) (path ^ " 200") 200 r.Client.status;
    r.Client.body
  in
  Alcotest.(check string) "healthz" "ok\n" (ok "/healthz");
  ignore (ok "/");
  ignore (ok "/rank");
  ignore (ok "/timelines");
  ignore (ok "/metrics");
  (match Json.parse (ok "/runs") with
  | Json.List rows -> Alcotest.(check int) "/runs rows" 2 (List.length rows)
  | _ -> Alcotest.fail "/runs is not a JSON list");
  let d = Json.parse (ok "/diff?a=r0001&b=r0002") in
  Alcotest.(check (option string)) "diff before" (Some "r0001") (Json.string_member "before" d);
  (match Json.member "newly_covered" d with
  | Some (Json.List [ Json.String "b" ]) -> ()
  | _ -> Alcotest.fail "diff newly_covered wrong");
  let html = ok "/report.html" in
  Alcotest.(check bool) "html page" true
    (String.length html > 100 && String.sub html 0 9 = "<!doctype");
  (* error mapping *)
  Alcotest.(check int) "unknown path is 404" 404 (Client.get (url t "/nope")).Client.status;
  Alcotest.(check int) "unknown run is 404" 404
    (Client.get (url t "/diff?a=r0001&b=r9999")).Client.status;
  Alcotest.(check int) "missing diff params is 400" 400
    (Client.get (url t "/diff")).Client.status;
  Alcotest.(check int) "bad counts body is 400" 400
    (Client.post ~body:"not a counts file" (url t "/runs")).Client.status;
  Alcotest.(check int) "bad method is 405" 405
    (Client.call ~meth:"PUT" (url t "/report")).Client.status

let test_e2e_keep_alive () =
  with_server @@ fun _dir t ->
  let c = Client.connect ~host:"127.0.0.1" ~port:(Serve.port t) in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let r1 = Client.request c ~meth:"GET" ~target:"/healthz" () in
      let r2 = Client.request c ~meth:"GET" ~target:"/healthz" () in
      Alcotest.(check (pair int int)) "two requests, one connection" (200, 200)
        (r1.Client.status, r2.Client.status))

(* A client that vanishes mid-request must cost the server nothing but a
   connection: the worker writes into a dead socket (EPIPE — fatal
   process-wide if SIGPIPE were not ignored) and moves on. *)
let test_e2e_client_vanishes () =
  with_server @@ fun _dir t ->
  let abrupt payload =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Serve.port t));
    let b = Bytes.of_string payload in
    ignore (Unix.write fd b 0 (Bytes.length b));
    (* kill the connection without reading the response *)
    Unix.close fd
  in
  (* half a request: the server's 400 goes to a closed socket *)
  abrupt "POST /runs HTTP/1.1\r\ncontent-length: 10000\r\n\r\ntruncated";
  (* a complete request whose response has nowhere to go *)
  abrupt "GET /report HTTP/1.1\r\n\r\n";
  (* give the workers a beat to hit the dead sockets *)
  Unix.sleepf 0.05;
  let r = Client.get (url t "/healthz") in
  Alcotest.(check int) "server survives dead clients" 200 r.Client.status

let test_e2e_push_is_idempotent_for_report () =
  with_server @@ fun _dir t ->
  let c = Counts.of_list [ ("a", 2); ("b", 1) ] in
  ignore (push t ~seed:0 c);
  let once = (Client.get (url t "/report")).Client.body in
  (* an at-least-once delivery retry: same counts land as a second run *)
  ignore (push t ~seed:0 c);
  let twice = Client.get (url t "/report") in
  let strip j = List.remove_assoc "runs" j |> List.remove_assoc "ok" in
  match (Json.parse once, Json.parse twice.Client.body) with
  | Json.Obj a, Json.Obj b ->
      Alcotest.(check bool) "union-max merge unchanged by the duplicate" true
        (Json.equal (Json.Obj (strip a)) (Json.Obj (strip b)))
  | _ -> Alcotest.fail "/report is not a JSON object"

(* ---------------- SSE units ---------------- *)

let test_sse_frame () =
  Alcotest.(check string) "plain data frame" "data: hi\n\n" (Serve.Sse.frame "hi");
  Alcotest.(check string) "named event"
    "event: delta\ndata: {\"x\":1}\n\n"
    (Serve.Sse.frame ~event:"delta" "{\"x\":1}");
  Alcotest.(check string) "multiline data splits into data: lines"
    "data: a\ndata: b\n\n"
    (Serve.Sse.frame "a\nb");
  Alcotest.(check string) "CRs are dropped" "data: ab\n\n" (Serve.Sse.frame "a\rb");
  Alcotest.(check string) "newline in event name flattened"
    "event: a b\ndata: x\n\n"
    (Serve.Sse.frame ~event:"a\nb" "x");
  Alcotest.(check string) "comment" ": keep alive\n\n" (Serve.Sse.comment "keep alive");
  Alcotest.(check string) "heartbeat" ": hb 3\n\n" (Serve.Sse.heartbeat 3)

let test_sse_decoder () =
  let d = Serve.Sse.Decoder.create () in
  let feed = Serve.Sse.Decoder.line d in
  (* comments and empty frames dispatch nothing *)
  Alcotest.(check (option (pair string string))) "comment" None (feed ": hb 0");
  Alcotest.(check (option (pair string string))) "separator alone" None (feed "");
  (* a default-named event *)
  Alcotest.(check (option (pair string string))) "accumulating" None (feed "data: hi");
  Alcotest.(check (option (pair string string)))
    "default event name" (Some ("message", "hi")) (feed "");
  (* named, multi-line data joins with \n; unknown fields ignored *)
  ignore (feed "event: delta");
  ignore (feed "id: 42");
  ignore (feed "data: a");
  ignore (feed "data: b");
  Alcotest.(check (option (pair string string))) "named event" (Some ("delta", "a\nb")) (feed "");
  (* event: without data: is dropped per spec *)
  ignore (feed "event: empty");
  Alcotest.(check (option (pair string string))) "no data, no dispatch" None (feed "");
  (* trailing CR (CRLF streams) is stripped *)
  ignore (feed "data: x\r");
  Alcotest.(check (option (pair string string))) "CRLF tolerated" (Some ("message", "x")) (feed "")

let test_sse_roundtrip () =
  let frames =
    [ ("hello", "{\"runs\":0}"); ("delta", "line1\nline2"); ("message", "plain") ]
  in
  let wire =
    String.concat ""
      (List.map
         (fun (ev, data) ->
           let f =
             if ev = "message" then Serve.Sse.frame data else Serve.Sse.frame ~event:ev data
           in
           f ^ Serve.Sse.heartbeat 1)
         frames)
  in
  let d = Serve.Sse.Decoder.create () in
  let got = ref [] in
  String.split_on_char '\n' wire
  |> List.iter (fun l ->
         match Serve.Sse.Decoder.line d l with
         | Some e -> got := e :: !got
         | None -> ());
  Alcotest.(check (list (pair string string))) "encode/decode round trip" frames (List.rev !got)

(* ---------------- live plane e2e ---------------- *)

(* One push while a /watch subscriber is connected: the subscriber gets a
   [hello] snapshot then exactly one [delta], and a graceful [stop] with
   the subscriber still attached hangs up cleanly (the drain test — the
   watcher thread must come back on its own). *)
let test_e2e_watch_one_delta () =
  let dir = fresh_dir "serve_db" in
  ignore (Db.init dir);
  let t = Serve.start ~port:0 ~threads:2 ~db_dir:dir () in
  let m = Mutex.create () in
  let events = ref [] in
  let record ~event ~data =
    Mutex.protect m (fun () -> events := (event, data) :: !events);
    true
  in
  let watcher = Thread.create (fun () -> Client.watch ~on_event:record (url t "")) () in
  let wait_for what pred =
    let deadline = Unix.gettimeofday () +. 5.0 in
    while
      (not (Mutex.protect m (fun () -> List.exists pred !events)))
      && Unix.gettimeofday () < deadline
    do
      Thread.yield ();
      Unix.sleepf 0.01
    done;
    if not (Mutex.protect m (fun () -> List.exists pred !events)) then
      Alcotest.fail ("timed out waiting for " ^ what)
  in
  wait_for "hello" (fun (ev, _) -> ev = "hello");
  let accepted = push t ~seed:0 (Counts.of_list [ ("a", 2); ("b", 0) ]) in
  wait_for "delta" (fun (ev, _) -> ev = "delta");
  let deltas =
    Mutex.protect m (fun () -> List.filter (fun (ev, _) -> ev = "delta") !events)
  in
  Alcotest.(check int) "exactly one delta for one push" 1 (List.length deltas);
  let d = Json.parse (snd (List.hd deltas)) in
  let run_id = Json.string_member "id" (Json.parse accepted.Client.body) in
  Alcotest.(check (option string)) "delta names the accepted run" run_id
    (Json.string_member "run" d);
  Alcotest.(check (option int)) "one point newly covered" (Some 1)
    (Json.int_member "newly_covered" d);
  Alcotest.(check (option int)) "covered" (Some 1) (Json.int_member "covered" d);
  Alcotest.(check (option int)) "total" (Some 2) (Json.int_member "total" d);
  Alcotest.(check (option int)) "runs" (Some 1) (Json.int_member "runs" d);
  (* graceful drain with a live subscriber: stop must hang the stream up
     and the watcher thread must terminate *)
  Serve.stop t;
  Thread.join watcher

(* A /watch subscriber that vanishes costs the server nothing: the next
   broadcasts hit EPIPE, the subscriber is dropped, and ingest goes on. *)
let test_e2e_dead_subscriber () =
  with_server @@ fun _dir t ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Serve.port t));
  let req = Bytes.of_string "GET /watch HTTP/1.1\r\nhost: h\r\n\r\n" in
  ignore (Unix.write fd req 0 (Bytes.length req));
  (* read a little of the stream so we know the subscriber is attached *)
  ignore (Unix.read fd (Bytes.create 64) 0 64);
  Unix.close fd;
  (* two pushes: the first broadcast may land in the dead socket's kernel
     buffer; the second must surface EPIPE and reap the subscriber *)
  ignore (push t ~seed:0 (Counts.of_list [ ("a", 1) ]));
  ignore (push t ~seed:1 (Counts.of_list [ ("b", 1) ]));
  let deadline = Unix.gettimeofday () +. 5.0 in
  let gone = ref false in
  while (not !gone) && Unix.gettimeofday () < deadline do
    let j = Json.parse (Client.get (url t "/metrics")).Client.body in
    (match Json.member "sse" j with
    | Some sse ->
        if
          Json.int_member "subscribers" sse = Some 0
          && (match Json.int_member "dropped" sse with Some n -> n >= 1 | None -> false)
        then gone := true
    | None -> Alcotest.fail "/metrics has no sse section");
    if not !gone then Unix.sleepf 0.02
  done;
  Alcotest.(check bool) "dead subscriber reaped (dropped>=1, subscribers=0)" true !gone;
  Alcotest.(check int) "server still healthy" 200 (Client.get (url t "/healthz")).Client.status

let test_e2e_observability_endpoints () =
  with_server @@ fun _dir t ->
  ignore (push t ~seed:0 (Counts.of_list [ ("a", 1) ]));
  (* /dashboard: one self-contained HTML page that subscribes to /watch *)
  let r = Client.get (url t "/dashboard") in
  Alcotest.(check int) "/dashboard 200" 200 r.Client.status;
  let html = r.Client.body in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "dashboard is html" true (String.sub html 0 9 = "<!doctype");
  Alcotest.(check bool) "dashboard subscribes to /watch" true (contains html "EventSource");
  Alcotest.(check bool) "dashboard is self-contained" false
    (contains html "http://" || contains html "https://");
  (* /metrics.prom: Prometheus text exposition *)
  let p = Client.get (url t "/metrics.prom") in
  Alcotest.(check int) "/metrics.prom 200" 200 p.Client.status;
  Alcotest.(check bool) "prom content type" true
    (match Client.header p "content-type" with
    | Some ct -> contains ct "text/plain"
    | None -> false);
  Alcotest.(check bool) "starts with # HELP" true (String.sub p.Client.body 0 6 = "# HELP");
  Alcotest.(check bool) "requests counter present" true
    (contains p.Client.body "sic_requests_total");
  Alcotest.(check bool) "every line is comment or sample" true
    (String.split_on_char '\n' p.Client.body
    |> List.for_all (fun l ->
           l = "" || l.[0] = '#'
           || String.contains l ' ' && String.sub l 0 4 = "sic_"));
  (* content negotiation: Accept: text/plain flips /metrics to Prometheus *)
  let neg = Client.get ~headers:[ ("accept", "text/plain") ] (url t "/metrics") in
  Alcotest.(check bool) "Accept: text/plain negotiates prom" true
    (String.sub neg.Client.body 0 6 = "# HELP");
  let j = Json.parse (Client.get (url t "/metrics")).Client.body in
  (* unknown paths land in the bounded "other" bucket, not as fresh keys *)
  ignore (Client.get (url t "/nope-cardinality-bomb"));
  let j2 = Json.parse (Client.get (url t "/metrics")).Client.body in
  (match Json.member "requests" j2 with
  | Some (Json.Obj kvs) ->
      Alcotest.(check bool) "other bucket exists" true (List.mem_assoc "other" kvs);
      Alcotest.(check bool) "unknown path is not its own key" false
        (List.exists (fun (k, _) -> contains k "nope") kvs)
  | _ -> Alcotest.fail "/metrics requests is not an object");
  (* per-endpoint latency: a summary keyed by route label *)
  match Json.member "latency" j with
  | Some (Json.Obj kvs) ->
      Alcotest.(check bool) "latency keyed per route" true
        (List.exists (fun (k, _) -> contains k "POST /runs") kvs);
      let _, sample = List.hd kvs in
      Alcotest.(check bool) "summary has count" true (Json.member "count" sample <> None)
  | _ -> Alcotest.fail "/metrics latency is not an object"

let tests =
  [
    Alcotest.test_case "http: simple request" `Quick test_parse_simple;
    Alcotest.test_case "http: body + keep-alive framing" `Quick test_parse_body_and_keepalive;
    Alcotest.test_case "http: clean EOF" `Quick test_parse_eof;
    Alcotest.test_case "http: bad request lines" `Quick test_bad_request_line;
    Alcotest.test_case "http: oversized headers" `Quick test_oversized_header;
    Alcotest.test_case "http: truncated/oversized bodies" `Quick test_truncated_body;
    Alcotest.test_case "http: percent coding" `Quick test_percent_round_trip;
    Alcotest.test_case "e2e: /report = union_max, etag/304" `Quick test_e2e_report_is_union_max;
    Alcotest.test_case "e2e: every endpoint + error mapping" `Quick test_e2e_endpoints;
    Alcotest.test_case "e2e: keep-alive connection reuse" `Quick test_e2e_keep_alive;
    Alcotest.test_case "e2e: client vanishing mid-request" `Quick test_e2e_client_vanishes;
    Alcotest.test_case "e2e: duplicate push is idempotent" `Quick
      test_e2e_push_is_idempotent_for_report;
    Alcotest.test_case "sse: frame encoder" `Quick test_sse_frame;
    Alcotest.test_case "sse: decoder" `Quick test_sse_decoder;
    Alcotest.test_case "sse: encode/decode round trip" `Quick test_sse_roundtrip;
    Alcotest.test_case "e2e: /watch one push, one delta, clean drain" `Quick
      test_e2e_watch_one_delta;
    Alcotest.test_case "e2e: dead /watch subscriber is reaped" `Quick test_e2e_dead_subscriber;
    Alcotest.test_case "e2e: dashboard, prometheus, route buckets" `Quick
      test_e2e_observability_endpoints;
  ]
