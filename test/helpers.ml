(** Shared helpers for the test suite. *)

module Bv = Sic_bv.Bv
open Sic_ir

let bv = Alcotest.testable Bv.pp Bv.equal

let check_bv = Alcotest.check bv

(* A GCD unit with a decoupled input pair and a decoupled output — the
   canonical Chisel example, exercising whens, decoupled annotations and an
   FSM-free control register. *)
let gcd_circuit () =
  let cb = Dsl.create_circuit "GCD" in
  Dsl.module_ cb "GCD" (fun m ->
      let open Dsl in
      let in_ = decoupled_input ~loc:__POS__ m "io_in" (Ty.UInt 32) in
      let out = decoupled_output ~loc:__POS__ m "io_out" (Ty.UInt 16) in
      let x = reg_ ~loc:__POS__ m "x" (Ty.UInt 16) in
      let y = reg_ ~loc:__POS__ m "y" (Ty.UInt 16) in
      let busy = reg_init ~loc:__POS__ m "busy" false_ in
      connect m in_.ready (not_s busy);
      connect m out.valid (busy &: (y ==: lit 16 0));
      connect m out.bits x;
      when_ ~loc:__POS__ m (fire in_)
        (fun () ->
          connect m x (bits_s in_.bits ~hi:31 ~lo:16);
          connect m y (bits_s in_.bits ~hi:15 ~lo:0);
          connect m busy true_);
      when_ ~loc:__POS__ m (busy &: (y <>: lit 16 0))
        (fun () ->
          when_else ~loc:__POS__ m (x >: y)
            (fun () -> connect m x (x -: y))
            (fun () -> connect m y (y -: x)));
      when_ ~loc:__POS__ m (fire out) (fun () -> connect m busy false_));
  Dsl.finalize cb

(* Drive the GCD circuit to compute gcd(a, b) on a backend. *)
let run_gcd (b : Sic_sim.Backend.t) a bb =
  let open Sic_sim in
  Backend.reset_sequence b;
  b.Backend.poke "io_in_valid" (Bv.one 1);
  b.Backend.poke "io_in_bits" (Bv.of_int ~width:32 ((a lsl 16) lor bb));
  b.Backend.poke "io_out_ready" (Bv.one 1);
  b.Backend.step 1;
  b.Backend.poke "io_in_valid" (Bv.zero 1);
  let rec wait n =
    if n = 0 then Alcotest.fail "gcd did not finish"
    else if Bv.to_bool (b.Backend.peek "io_out_valid") then begin
      let result = Bv.to_int_trunc (b.Backend.peek "io_out_bits") in
      (* step once more so the output-fire cycle is sampled by covers *)
      b.Backend.step 1;
      result
    end
    else begin
      b.Backend.step 1;
      wait (n - 1)
    end
  in
  wait 1000

(* A two-level hierarchy: an adder child instantiated twice. *)
let hierarchy_circuit () =
  let cb = Dsl.create_circuit "Top" in
  Dsl.module_ cb "Adder" (fun m ->
      let open Dsl in
      let a = input m "a" (Ty.UInt 8) in
      let b = input m "b" (Ty.UInt 8) in
      let sum = output m "sum" (Ty.UInt 8) in
      connect m sum (a +: b));
  Dsl.module_ cb "Top" (fun m ->
      let open Dsl in
      let a = input m "in_a" (Ty.UInt 8) in
      let b = input m "in_b" (Ty.UInt 8) in
      let c = input m "in_c" (Ty.UInt 8) in
      let out = output m "out" (Ty.UInt 8) in
      connect m (instance m "add0" "Adder" "a") a;
      connect m (instance m "add0" "Adder" "b") b;
      connect m (instance m "add1" "Adder" "a") (instance m "add0" "Adder" "sum");
      connect m (instance m "add1" "Adder" "b") c;
      connect m out (instance m "add1" "Adder" "sum"));
  Dsl.finalize cb

(* A 3-state FSM matching the paper's Figure 7 example:
   A --in--> A, A --!in--> B; B --in--> B, B --!in--> C; C --> C. *)
let fsm_circuit () =
  let cb = Dsl.create_circuit "Fsm" in
  let s = Dsl.enum cb "S" [ "A"; "B"; "C" ] in
  Dsl.module_ cb "Fsm" (fun m ->
      let open Dsl in
      let in_ = input ~loc:__POS__ m "in" (Ty.UInt 1) in
      let out = output ~loc:__POS__ m "out" (Ty.UInt 2) in
      let state = reg_enum ~loc:__POS__ m "state" s "A" in
      switch ~loc:__POS__ m state
        [
          (enum_value s "A", fun () -> connect m state (mux_s in_ (enum_value s "A") (enum_value s "B")));
          ( enum_value s "B",
            fun () ->
              when_else ~loc:__POS__ m in_
                (fun () -> connect m state (enum_value s "B"))
                (fun () -> connect m state (enum_value s "C")) );
        ];
      connect m out state);
  (Dsl.finalize cb, s)

let lower = Sic_passes.Compile.lower

(* ------------------------------------------------------------------ *)
(* Random typed expression generator (for differential tests between    *)
(* the evaluator, the constant folder and the bit-blaster).             *)
(* ------------------------------------------------------------------ *)

let gen_expr ~(vars : (string * Ty.t) list) : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let lit_of_kind signed st =
    let w = 1 + int_bound 7 st in
    if signed then Expr.SIntLit (Bv.random ~width:w (fun () -> int_bound (1 lsl 30 - 1) st))
    else Expr.UIntLit (Bv.random ~width:w (fun () -> int_bound (1 lsl 30 - 1) st))
  in
  let var_of_kind signed st =
    match List.filter (fun (_, t) -> Ty.is_signed t = signed) vars with
    | [] -> lit_of_kind signed st
    | cands ->
        let n, _ = List.nth cands (int_bound (List.length cands - 1) st) in
        Expr.Ref n
  in
  let ty_of_lookup n = List.assoc n vars in
  (* generators indexed by (depth, want_signed) *)
  let rec gen depth signed st =
    if depth = 0 then
      if QCheck.Gen.bool st then var_of_kind signed st else lit_of_kind signed st
    else
      let sub s = gen (depth - 1) s st in
      let unsigned_ops () =
        match int_bound 10 st with
        | 0 -> Expr.Unop (Expr.Not, sub signed)
        | 1 -> Expr.Unop (Expr.Orr, sub (QCheck.Gen.bool st))
        | 2 -> Expr.Binop (Expr.Cat, sub (QCheck.Gen.bool st), sub (QCheck.Gen.bool st))
        | 3 ->
            let a = sub signed and b = sub signed in
            Expr.Binop (Expr.Eq, a, b)
        | 4 ->
            let a = sub false in
            let w = Ty.width (Expr.type_of ty_of_lookup a) in
            let hi = int_bound (w - 1) st in
            let lo = int_bound hi st in
            Expr.Bits (a, hi, lo)
        | 5 -> Expr.Binop (Expr.And, sub false, sub false)
        | 6 -> Expr.Binop (Expr.Or, sub false, sub false)
        | 7 -> Expr.Binop (Expr.Xor, sub false, sub false)
        | 8 -> Expr.Binop (Expr.Lt, sub false, sub false)
        | 9 -> Expr.Unop (Expr.AsUInt, sub true)
        | _ -> Expr.Binop (Expr.Geq, sub true, sub true)
      in
      let signed_ops () =
        match int_bound 4 st with
        | 0 -> Expr.Unop (Expr.Neg, sub (QCheck.Gen.bool st))
        | 1 -> Expr.Unop (Expr.Cvt, sub (QCheck.Gen.bool st))
        | 2 -> Expr.Binop (Expr.Add, sub true, sub true)
        | 3 -> Expr.Binop (Expr.Sub, sub true, sub true)
        | _ -> Expr.Unop (Expr.AsSInt, sub false)
      in
      match int_bound 5 st with
      | 0 ->
          (* mux: arms padded to a common type *)
          let sel = Expr.Unop (Expr.Orr, sub false) in
          let a = sub signed and b = sub signed in
          let ta = Expr.type_of ty_of_lookup a and tb = Expr.type_of ty_of_lookup b in
          let w = max (Ty.width ta) (Ty.width tb) in
          Expr.Mux (sel, Expr.Intop (Expr.Pad, w, a), Expr.Intop (Expr.Pad, w, b))
      | 1 ->
          let a = sub signed in
          let n = int_bound 4 st in
          Expr.Intop ((if QCheck.Gen.bool st then Expr.Shl else Expr.Shr), n, a)
      | 2 ->
          let a = sub signed in
          Expr.Intop (Expr.Pad, 1 + int_bound 12 st, a)
      | 3 | 4 -> if signed then signed_ops () else unsigned_ops ()
      | _ ->
          if signed then Expr.Binop (Expr.Mul, sub true, sub true)
          else Expr.Binop (Expr.Add, sub false, sub false)
  in
  fun st -> gen (1 + int_bound 3 st) false st

(* random input valuation for [vars] *)
let gen_inputs ~(vars : (string * Ty.t) list) : (string * Bv.t) list QCheck.Gen.t =
  let open QCheck.Gen in
  fun st ->
    List.map
      (fun (n, t) ->
        (n, Bv.random ~width:(Ty.width t) (fun () -> int_bound ((1 lsl 30) - 1) st)))
      vars

let standard_vars : (string * Ty.t) list =
  [
    ("u1", Ty.UInt 1);
    ("u3", Ty.UInt 3);
    ("u8", Ty.UInt 8);
    ("u17", Ty.UInt 17);
    ("u40", Ty.UInt 40);
    ("s4", Ty.SInt 4);
    ("s9", Ty.SInt 9);
    ("s33", Ty.SInt 33);
  ]

(* Every software backend: the interpreter, the word-level engine (plain
   and activity-driven via Essent), the retired closure/Bv reference
   tape (plain and activity-driven) kept as the differential oracle, and
   the bit-parallel lane engine's lockstep facade (3 lanes keeps the
   packed-plane, strided and wide storage classes all honest without
   slowing the suite). *)
let backends : (string * (Circuit.t -> Sic_sim.Backend.t)) list =
  [
    ("interp", Sic_sim.Interp.create);
    ("compiled", fun c -> Sic_sim.Compiled.create c);
    ("essent", Sic_sim.Essent.create);
    ("ref-tape", fun c -> Sic_sim.Ref_tape.create c);
    ("ref-tape-activity", fun c -> Sic_sim.Ref_tape.create ~activity:true c);
    ("lanes", fun c -> Sic_sim.Lanes.create ~lanes:3 c);
  ]
