(** Property tests for the arbitrary-width bitvector substrate. Checked
    against OCaml's native integer arithmetic on widths <= 62 and against
    algebraic identities on large widths. *)

module Bv = Sic_bv.Bv

let gen_width = QCheck.Gen.int_range 1 130

let gen_bv =
  QCheck.Gen.(
    let* w = gen_width in
    let+ bits = list_size (return (((w + 29) / 30) + 1)) (int_bound ((1 lsl 30) - 1)) in
    let arr = Array.of_list bits in
    let i = ref (-1) in
    Bv.random ~width:w (fun () ->
        incr i;
        arr.(!i mod Array.length arr)))

let arb_bv = QCheck.make ~print:(fun v -> Format.asprintf "%a" Bv.pp v) gen_bv

let gen_small =
  QCheck.Gen.(
    let* w = int_range 1 60 in
    let+ n = int_bound ((1 lsl min w 59) - 1) in
    (w, n))

let arb_small = QCheck.make ~print:(fun (w, n) -> Printf.sprintf "%d'd%d" w n) gen_small

let t name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let mask w n = n land ((1 lsl w) - 1)

let tests =
  [
    t "of_int/to_int round-trip" 500 arb_small (fun (w, n) ->
        Bv.to_int (Bv.of_int ~width:w n) = Some n);
    t "decimal string round-trip" 500 arb_bv (fun v ->
        Bv.equal_value v (Bv.of_decimal_string ~width:(Bv.width v) (Bv.to_decimal_string v)));
    t "binary string round-trip" 500 arb_bv (fun v ->
        Bv.equal v (Bv.of_binary_string (Bv.to_binary_string v)) || Bv.width v = 0);
    t "hex string round-trip" 500 arb_bv (fun v ->
        Bv.equal_value v (Bv.of_hex_string ~width:(Bv.width v) (Bv.to_hex_string v)));
    t "add matches int" 500 (QCheck.pair arb_small arb_small) (fun ((w1, a), (w2, b)) ->
        let w = max w1 w2 + 1 in
        if w > 60 then QCheck.assume_fail ()
        else
          Bv.to_int (Bv.add ~width:w (Bv.of_int ~width:w1 a) (Bv.of_int ~width:w2 b))
          = Some (mask w (a + b)));
    t "sub matches int" 500 (QCheck.pair arb_small arb_small) (fun ((w1, a), (w2, b)) ->
        let w = max w1 w2 + 1 in
        if w > 60 then QCheck.assume_fail ()
        else
          Bv.to_int (Bv.sub ~width:w (Bv.of_int ~width:w1 a) (Bv.of_int ~width:w2 b))
          = Some (mask w (a - b)));
    t "mul matches int" 500 (QCheck.pair arb_small arb_small) (fun ((w1, a), (w2, b)) ->
        if w1 + w2 > 60 then QCheck.assume_fail ()
        else
          Bv.to_int (Bv.mul ~width:(w1 + w2) (Bv.of_int ~width:w1 a) (Bv.of_int ~width:w2 b))
          = Some (a * b));
    t "divmod matches int" 500 (QCheck.pair arb_small arb_small) (fun ((w1, a), (w2, b)) ->
        let w = max w1 w2 in
        let bb = Bv.of_int ~width:w2 b in
        let aa = Bv.of_int ~width:w1 a in
        if b = 0 then
          Bv.to_int (Bv.div_u ~width:w aa bb) = Some 0
          && Bv.to_int (Bv.rem_u ~width:w aa bb) = Some a
        else
          Bv.to_int (Bv.div_u ~width:w aa bb) = Some (a / b)
          && Bv.to_int (Bv.rem_u ~width:w aa bb) = Some (a mod b));
    t "wide divmod reconstructs" 300 (QCheck.pair arb_bv arb_bv) (fun (a, b) ->
        if Bv.is_zero b then true
        else begin
          let w = max (Bv.width a) (Bv.width b) in
          let q = Bv.div_u ~width:w a b and r = Bv.rem_u ~width:w a b in
          (* a = q*b + r and r < b *)
          let qb = Bv.mul ~width:(2 * w) q (Bv.extend_u b (2 * w)) in
          let sum = Bv.add ~width:(2 * w) qb (Bv.extend_u r (2 * w)) in
          Bv.equal_value sum (Bv.extend_u a (2 * w)) && Bv.compare_u r b < 0
        end);
    t "signed div truncates toward zero" 500 (QCheck.pair arb_small arb_small)
      (fun ((w1, a), (w2, b)) ->
        if w1 > 30 || w2 > 30 || b = 0 then QCheck.assume_fail ()
        else begin
          (* interpret the patterns as signed at their widths *)
          let sa = if a lsr (w1 - 1) land 1 = 1 then a - (1 lsl w1) else a in
          let sb = if b lsr (w2 - 1) land 1 = 1 then b - (1 lsl w2) else b in
          if sb = 0 then true
          else
            let w = max w1 w2 + 1 in
            let q =
              Bv.div_s ~width:w (Bv.of_int ~width:w1 a) (Bv.of_int ~width:w2 b)
            in
            Bv.to_signed_int q = Some (sa / sb)
        end);
    t "concat then extract" 500 (QCheck.pair arb_bv arb_bv) (fun (hi, lo) ->
        let c = Bv.concat hi lo in
        Bv.width c = Bv.width hi + Bv.width lo
        && (Bv.width lo = 0 || Bv.equal (Bv.extract ~hi:(Bv.width lo - 1) ~lo:0 c) lo)
        && (Bv.width hi = 0
           || Bv.equal (Bv.extract ~hi:(Bv.width c - 1) ~lo:(Bv.width lo) c) hi));
    t "lognot involutive" 500 arb_bv (fun v ->
        Bv.equal v (Bv.lognot ~width:(Bv.width v) (Bv.lognot ~width:(Bv.width v) v)));
    t "xor self is zero" 500 arb_bv (fun v ->
        Bv.is_zero (Bv.logxor ~width:(Bv.width v) v v));
    t "shift left then right" 300 arb_bv (fun v ->
        let w = Bv.width v in
        let n = w / 3 in
        let back = Bv.extend_u (Bv.shift_right_logical (Bv.shift_left ~width:(w + n) v n) n) w in
        Bv.equal back v);
    t "arith shift keeps sign" 300 arb_bv (fun v ->
        let w = Bv.width v in
        if w < 2 then true
        else
          let r = Bv.shift_right_arith v (w / 2) in
          Bv.msb r = Bv.msb v);
    t "popcount consistent with bits" 300 arb_bv (fun v ->
        let n = ref 0 in
        for i = 0 to Bv.width v - 1 do
          if Bv.bit v i then incr n
        done;
        !n = Bv.popcount v);
    (* SWAR popcount: fixed cases at limb boundaries (31-bit limbs) *)
    Alcotest.test_case "popcount limb-boundary units" `Quick (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check int)
              (Printf.sprintf "ones %d" w)
              w
              (Bv.popcount (Bv.ones w));
            Alcotest.(check int) (Printf.sprintf "zero %d" w) 0 (Bv.popcount (Bv.zero w));
            Alcotest.(check int) (Printf.sprintf "one %d" w) 1 (Bv.popcount (Bv.one w)))
          [ 1; 30; 31; 32; 61; 62; 63; 64; 93; 124 ];
        Alcotest.(check int) "0xff00ff" 16
          (Bv.popcount (Bv.of_int ~width:24 0xff00ff));
        Alcotest.(check int) "alternating 62" 31
          (Bv.popcount (Bv.of_int ~width:62 0x1555555555555555)));
    Alcotest.test_case "popcount_int units" `Quick (fun () ->
        Alcotest.(check int) "0" 0 (Bv.popcount_int 0);
        Alcotest.(check int) "1" 1 (Bv.popcount_int 1);
        Alcotest.(check int) "max_int" 62 (Bv.popcount_int max_int);
        Alcotest.(check int) "2^61" 1 (Bv.popcount_int (1 lsl 61));
        Alcotest.(check int) "0xdeadbeef" 24 (Bv.popcount_int 0xdeadbeef);
        match Bv.popcount_int (-1) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "popcount_int must reject negatives");
    t "popcount_int matches popcount" 300 arb_small (fun (w, n) ->
        Bv.popcount_int n = Bv.popcount (Bv.of_int ~width:w n));
    t "of_int62 inverts to_int_trunc" 300 arb_bv (fun v ->
        let w = Bv.width v in
        if w > 62 then QCheck.assume_fail ()
        else Bv.equal v (Bv.of_int62 ~width:w (Bv.to_int_trunc v)));
    Alcotest.test_case "of_int62 boundary widths" `Quick (fun () ->
        List.iter
          (fun w ->
            let v = Bv.ones w in
            Alcotest.(check bool)
              (Printf.sprintf "ones %d round-trips" w)
              true
              (Bv.equal v (Bv.of_int62 ~width:w (Bv.to_int_trunc v))))
          [ 1; 31; 32; 61; 62 ];
        match Bv.of_int62 ~width:63 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "of_int62 must reject width > 62");
    t "compare_u total order vs decimal" 300 (QCheck.pair arb_bv arb_bv) (fun (a, b) ->
        let cmp_dec =
          let da = Bv.to_decimal_string a and db = Bv.to_decimal_string b in
          compare (String.length da, da) (String.length db, db)
        in
        compare (Bv.compare_u a b) 0 = compare cmp_dec 0);
    t "extend_s then to_signed round-trips" 300 arb_small (fun (w, n) ->
        if w > 40 then QCheck.assume_fail ()
        else begin
          let sn = if n lsr (w - 1) land 1 = 1 then n - (1 lsl w) else n in
          let v = Bv.of_int ~width:w n in
          Bv.to_signed_int (Bv.extend_s v (w + 13)) = Some sn
        end);
    t "succ_saturating holds at ones" 300 arb_bv (fun v ->
        let s = Bv.succ_saturating v in
        if Bv.is_ones v then Bv.equal s v else Bv.compare_u s v > 0);
    t "signed compare matches int" 500 (QCheck.pair arb_small arb_small)
      (fun ((w1, a), (w2, b)) ->
        if w1 > 30 || w2 > 30 then QCheck.assume_fail ()
        else begin
          let sa = if (a lsr (w1 - 1)) land 1 = 1 then a - (1 lsl w1) else a in
          let sb = if (b lsr (w2 - 1)) land 1 = 1 then b - (1 lsl w2) else b in
          let va = Bv.of_int ~width:w1 a and vb = Bv.of_int ~width:w2 b in
          compare (Bv.compare_s va vb) 0 = compare (compare sa sb) 0
        end);
    t "arith shift matches int asr" 500 arb_small (fun (w, n) ->
        if w > 40 then QCheck.assume_fail ()
        else begin
          let sn = if (n lsr (w - 1)) land 1 = 1 then n - (1 lsl w) else n in
          let v = Bv.of_int ~width:w n in
          List.for_all
            (fun sh ->
              Bv.to_signed_int (Bv.shift_right_arith v sh) = Some (sn asr sh))
            [ 0; 1; w / 2; w - 1 ]
        end);
    t "dshl matches int shift" 300 arb_small (fun (w, n) ->
        if w > 40 then QCheck.assume_fail ()
        else begin
          let v = Bv.of_int ~width:w n in
          List.for_all
            (fun sh ->
              let r = Bv.dshl ~width:(w + 8) v (Bv.of_int ~width:4 sh) in
              Bv.to_int r = Some ((n lsl sh) land ((1 lsl (w + 8)) - 1)))
            [ 0; 1; 3; 7 ]
        end);
    t "dshr matches int shift" 300 arb_small (fun (w, n) ->
        let v = Bv.of_int ~width:w n in
        List.for_all
          (fun sh ->
            let r = Bv.dshr v (Bv.of_int ~width:8 sh) in
            Bv.to_int r = Some (if sh >= w then 0 else n lsr sh))
          [ 0; 1; w - 1; w; w + 5 ]);
    t "head/tail partition" 300 arb_bv (fun v ->
        let w = Bv.width v in
        if w < 2 then true
        else begin
          let n = w / 2 in
          Bv.equal (Bv.concat (Bv.head v n) (Bv.tail v n)) v
        end);
    t "mux selects" 300 (QCheck.pair arb_bv arb_bv) (fun (a, b) ->
        let w = max (Bv.width a) (Bv.width b) in
        let a = Bv.extend_u a w and b = Bv.extend_u b w in
        Bv.equal (Bv.mux (Bv.one 1) a b) a && Bv.equal (Bv.mux (Bv.zero 1) a b) b);
  ]
