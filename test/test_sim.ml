(** Cross-backend differential tests: every software simulator (interpreter,
    word-level engine plain and activity-driven, reference Bv tape plain and
    activity-driven) must agree on every peeked output, every cover count
    and every stop cycle under randomized stimulus, for several designs.
    Plus VCD and replay round-trips, the builtin-line audit and the
    word-level engine's zero-allocation guarantee. *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
open Helpers
open Sic_sim

(* drive a circuit with deterministic pseudo-random inputs for n cycles,
   observing all outputs every cycle; returns observations + counts *)
let random_drive (b : Backend.t) ~seed ~cycles =
  let rng = Sic_fuzz.Rng.create seed in
  let inputs = Backend.data_inputs b in
  let outputs = Backend.outputs b in
  Backend.reset_sequence b;
  let observations = Buffer.create 256 in
  for _ = 1 to cycles do
    List.iter
      (fun (n, ty) ->
        let w = Sic_ir.Ty.width ty in
        b.Backend.poke n (Bv.random ~width:w (Sic_fuzz.Rng.bits30 rng)))
      inputs;
    List.iter
      (fun (n, _) ->
        Buffer.add_string observations (Bv.to_hex_string (b.Backend.peek n));
        Buffer.add_char observations ' ';
        ignore n)
      outputs;
    (* stop behaviour is part of the observation: the first cycle at which
       [finished] flips must match across backends *)
    Buffer.add_char observations (if b.Backend.finished () then '!' else '.');
    b.Backend.step 1
  done;
  Alcotest.(check int) "cycles () counts the steps taken" (cycles + 1) (b.Backend.cycles ());
  (Buffer.contents observations, b.Backend.counts ())

let designs_for_diff () =
  [
    ("gcd", gcd_circuit ());
    ("fsm", fst (fsm_circuit ()));
    ("fifo", Sic_designs.Fifo.circuit ());
    ("i2c", Sic_designs.I2c.circuit ());
    ("serv", Sic_designs.Serv.circuit ());
    ("tlram", Sic_designs.Tlram.circuit ~addr_bits:4 ());
    ("neuroproc", Sic_designs.Neuroproc.circuit ~neurons:4 ());
    ("uart", Sic_designs.Uart.circuit ());
    ("arbiter", Sic_designs.Arbiter.circuit ());
    ("matmul", Sic_designs.Matmul.circuit ~n:2 ());
    ("memsys", Sic_designs.Memsys.circuit ());
  ]

let test_cross_backend_equivalence () =
  List.iter
    (fun (name, c) ->
      (* instrument with line coverage so counts are also compared *)
      let c, _ = Sic_coverage.Line_coverage.instrument c in
      let low = lower c in
      let runs =
        List.map
          (fun (bname, create) ->
            let b = create low in
            let obs, counts = random_drive b ~seed:17 ~cycles:200 in
            (bname, obs, counts))
          backends
      in
      match runs with
      | (_, obs0, counts0) :: rest ->
          List.iter
            (fun (bname, obs, counts) ->
              Alcotest.(check string)
                (Printf.sprintf "%s: %s outputs == interp outputs" name bname)
                obs0 obs;
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s counts == interp counts" name bname)
                true (Counts.equal counts0 counts))
            rest
      | [] -> ())
    (designs_for_diff ())

let test_vcd_roundtrip () =
  let wave_signals = [ ("a", 1); ("b", 8); ("wide", 40) ] in
  let rng = Sic_fuzz.Rng.create 5 in
  let frames =
    List.init 20 (fun _ ->
        List.map
          (fun (n, w) -> (n, Bv.random ~width:w (Sic_fuzz.Rng.bits30 rng)))
          wave_signals)
  in
  let buf = Buffer.create 256 in
  let oc_path = Filename.temp_file "sic_test" ".vcd" in
  let oc = open_out oc_path in
  let w = Vcd.create_writer oc ~scope:"t" wave_signals in
  List.iter (fun f -> Vcd.sample w f) frames;
  close_out oc;
  ignore buf;
  let wave = Vcd.read_file oc_path in
  Sys.remove oc_path;
  Alcotest.(check int) "frame count" (List.length frames) (Array.length wave.Vcd.frames);
  List.iteri
    (fun i frame ->
      List.iter
        (fun (n, v) ->
          let got = List.assoc n wave.Vcd.frames.(i) in
          Alcotest.(check bool)
            (Printf.sprintf "frame %d signal %s" i n)
            true (Bv.equal_value v got))
        frame)
    frames

let test_record_replay () =
  let c, _ = Sic_coverage.Line_coverage.instrument (gcd_circuit ()) in
  let low = lower c in
  let b = Compiled.create low in
  (* record a run *)
  let rng = Sic_fuzz.Rng.create 23 in
  let trace =
    Replay.record b ~cycles:100 (fun b _cycle ->
        b.Backend.poke "reset" (Bv.zero 1);
        List.iter
          (fun (n, ty) ->
            b.Backend.poke n (Bv.random ~width:(Sic_ir.Ty.width ty) (Sic_fuzz.Rng.bits30 rng)))
          (Backend.data_inputs b))
  in
  let reference = b.Backend.counts () in
  (* replay into a fresh instance of another backend: identical counts *)
  let b2 = Interp.create low in
  Replay.replay b2 trace;
  Alcotest.(check bool) "replayed counts equal recorded" true
    (Counts.equal reference (b2.Backend.counts ()));
  (* through a VCD file *)
  let path = Filename.temp_file "sic_replay" ".vcd" in
  Replay.save_vcd path b trace;
  let trace2 = Replay.load_vcd path in
  Sys.remove path;
  let b3 = Essent.create low in
  Replay.replay b3 trace2;
  Alcotest.(check bool) "vcd-replayed counts equal recorded" true
    (Counts.equal reference (b3.Backend.counts ()))

let test_tracer () =
  let low = lower (Sic_designs.Counter.circuit ~width:4 ~limit:15 ()) in
  let path = Filename.temp_file "sic_trace" ".vcd" in
  let b, close = Tracer.attach ~regs:true ~path (Compiled.create low) in
  Backend.reset_sequence b;
  b.Backend.poke "en" (Bv.one 1);
  b.Backend.step 10;
  close ();
  let wave = Vcd.read_file path in
  Sys.remove path;
  Alcotest.(check int) "12 samples (reset + 10 + final at close)" 12
    (Array.length wave.Vcd.frames);
  Alcotest.(check bool) "value signal present" true
    (List.mem_assoc "value" wave.Vcd.signals);
  Alcotest.(check bool) "register traced" true (List.mem_assoc "count" wave.Vcd.signals);
  (* the counter waveform counts up from the post-reset sample *)
  let v i = Bv.to_int_trunc (List.assoc "value" wave.Vcd.frames.(i)) in
  Alcotest.(check int) "cycle 2 value" 1 (v 2);
  Alcotest.(check int) "cycle 9 value" 8 (v 9);
  (* the close-time sample is the only one that sees the last step *)
  Alcotest.(check int) "final sample shows the post-run state" 10 (v 11)

let test_poke_errors () =
  let b = Compiled.create (lower (gcd_circuit ())) in
  (match b.Backend.poke "io_out_bits" (Bv.zero 16) with
  | exception Backend.Sim_error _ -> ()
  | _ -> Alcotest.fail "poking an output must fail");
  match b.Backend.peek "nonexistent" with
  | exception Backend.Sim_error _ -> ()
  | _ -> Alcotest.fail "peeking a ghost must fail"

let test_combinational_loop_detected () =
  let cb = Sic_ir.Dsl.create_circuit "Loop" in
  Sic_ir.Dsl.module_ cb "Loop" (fun m ->
      let open Sic_ir.Dsl in
      let a = wire m "a" (Sic_ir.Ty.UInt 1) in
      let b = wire m "b" (Sic_ir.Ty.UInt 1) in
      let out = output m "out" (Sic_ir.Ty.UInt 1) in
      connect m a (not_s b);
      connect m b (not_s a);
      connect m out a);
  let low = lower (Sic_ir.Dsl.finalize cb) in
  (match Compiled.create low with
  | exception Backend.Sim_error _ -> ()
  | _ -> Alcotest.fail "compiled: loop must be detected");
  let b = Interp.create low in
  match b.Backend.peek "out" with
  | exception Backend.Sim_error _ -> ()
  | _ -> Alcotest.fail "interp: loop must be detected"

let test_multi_writer_memory () =
  (* two write ports hitting the same address in the same cycle: the later
     port in declaration order wins, identically on every backend *)
  let cb = Sic_ir.Dsl.create_circuit "TwoW" in
  Sic_ir.Dsl.module_ cb "TwoW" (fun m ->
      let open Sic_ir.Dsl in
      let addr = input m "addr" (Sic_ir.Ty.UInt 3) in
      let d0 = input m "d0" (Sic_ir.Ty.UInt 8) in
      let d1 = input m "d1" (Sic_ir.Ty.UInt 8) in
      let we1 = input m "we1" (Sic_ir.Ty.UInt 1) in
      let out = output m "out" (Sic_ir.Ty.UInt 8) in
      let mem =
        mem m "m" (Sic_ir.Ty.UInt 8) ~depth:8 ~readers:[ "r" ] ~writers:[ "w0"; "w1" ]
      in
      mem_write mem "w0" ~addr ~data:d0;
      when_ m we1 (fun () -> mem_write mem "w1" ~addr ~data:d1);
      connect m out (mem_read mem "r" addr));
  let low = lower (Sic_ir.Dsl.finalize cb) in
  List.iter
    (fun (name, create) ->
      let b = create low in
      b.Backend.poke "addr" (Bv.of_int ~width:3 5);
      b.Backend.poke "d0" (Bv.of_int ~width:8 11);
      b.Backend.poke "d1" (Bv.of_int ~width:8 22);
      b.Backend.poke "we1" (Bv.one 1);
      b.Backend.step 1;
      Alcotest.(check int) (name ^ ": later port wins") 22
        (Bv.to_int_trunc (b.Backend.peek "out"));
      b.Backend.poke "we1" (Bv.zero 1);
      b.Backend.step 1;
      Alcotest.(check int) (name ^ ": single writer") 11
        (Bv.to_int_trunc (b.Backend.peek "out")))
    backends

let test_stop_statement () =
  let cb = Sic_ir.Dsl.create_circuit "Stopper" in
  Sic_ir.Dsl.module_ cb "Stopper" (fun m ->
      let open Sic_ir.Dsl in
      let x = input m "x" (Sic_ir.Ty.UInt 4) in
      let out = output m "out" (Sic_ir.Ty.UInt 4) in
      connect m out x;
      stop m "halt" (x ==: lit 4 9) 1);
  let low = lower (Sic_ir.Dsl.finalize cb) in
  List.iter
    (fun (name, create) ->
      let b = create low in
      b.Backend.poke "x" (Bv.of_int ~width:4 3);
      b.Backend.step 2;
      Alcotest.(check bool) (name ^ ": not stopped") false (b.Backend.finished ());
      b.Backend.poke "x" (Bv.of_int ~width:4 9);
      b.Backend.step 1;
      Alcotest.(check bool) (name ^ ": stopped") true (b.Backend.finished ()))
    backends

let test_printf_statement () =
  let cb = Sic_ir.Dsl.create_circuit "Printer" in
  Sic_ir.Dsl.module_ cb "Printer" (fun m ->
      let open Sic_ir.Dsl in
      let x = input m "x" (Sic_ir.Ty.UInt 8) in
      let out = output m "out" (Sic_ir.Ty.UInt 8) in
      connect m out x;
      when_ m (x >: lit 8 10) (fun () ->
          printf_ m true_ "x=%d hex=%x pct=%% " [ x; x ]));
  let low = lower (Sic_ir.Dsl.finalize cb) in
  List.iter
    (fun (name, create) ->
      let buf = Buffer.create 64 in
      let saved = !Backend.print_sink in
      Backend.print_sink := Buffer.add_string buf;
      Fun.protect
        ~finally:(fun () -> Backend.print_sink := saved)
        (fun () ->
          let b = create low in
          b.Backend.poke "x" (Bv.of_int ~width:8 5);
          b.Backend.step 1;
          Alcotest.(check string) (name ^ ": silent below threshold") "" (Buffer.contents buf);
          b.Backend.poke "x" (Bv.of_int ~width:8 200);
          b.Backend.step 2;
          Alcotest.(check string)
            (name ^ ": formatted output")
            "x=200 hex=c8 pct=% x=200 hex=c8 pct=% " (Buffer.contents buf)))
    backends

let test_builtin_line_coverage () =
  (* the built-in mode must behave exactly like running the line-coverage
     pass externally (the §6/Fig. 8 story): same [l_*] counter names, same
     counts — and the internal instrumentation db is exposed, not dropped *)
  let sim = Compiled.build ~builtin_line:true (gcd_circuit ()) in
  let db =
    match Compiled.line_db sim with
    | Some db -> db
    | None -> Alcotest.fail "builtin_line must expose its instrumentation db"
  in
  Alcotest.(check bool) "db has branches" true (List.length db > 0);
  let b = Compiled.to_backend ~name:"compiled-builtin" sim in
  let obs_b, counts_builtin = random_drive b ~seed:99 ~cycles:150 in
  let c2, _ = Sic_coverage.Line_coverage.instrument (gcd_circuit ()) in
  let b2 = Compiled.create (lower c2) in
  let obs_p, counts_pass = random_drive b2 ~seed:99 ~cycles:150 in
  Alcotest.(check string) "builtin outputs == pass-based outputs" obs_p obs_b;
  Alcotest.(check bool) "builtin counts == pass-based counts" true
    (Counts.equal counts_builtin counts_pass);
  (* counters keep the [l_] prefix — there is no separate [bl_] namespace *)
  List.iter
    (fun (n, _) ->
      Alcotest.(check bool) (n ^ " has l_ prefix") true
        (String.length n > 2 && String.sub n 0 2 = "l_"))
    (Counts.to_sorted_list counts_builtin);
  (* without the flag there is no db *)
  Alcotest.(check bool) "no db without builtin_line" true
    (Compiled.line_db (Compiled.build (lower (gcd_circuit ()))) = None)

let test_zero_allocation_per_cycle () =
  (* the word-level engine's headline property: on a design whose signals
     all fit a machine word, steady-state stepping performs no heap
     allocation. The small slack absorbs Gc.minor_words' own float boxing
     and any one-off lazy initialization — a single word leaked per cycle
     would cost 10_000. *)
  List.iter
    (fun (name, create) ->
      List.iter
        (fun (dname, c) ->
          let b = create (lower c) in
          Backend.reset_sequence b;
          if List.mem_assoc "en" (Backend.data_inputs b) then
            b.Backend.poke "en" (Bv.one 1);
          b.Backend.step 100 (* warm-up: first full tape run *);
          let before = Gc.minor_words () in
          b.Backend.step 10_000;
          let words = Gc.minor_words () -. before in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: %.0f minor words over 10k cycles" name dname words)
            true (words < 256.))
        [
          ("counter", Sic_designs.Counter.circuit ~width:4 ~limit:15 ());
          ("gcd", gcd_circuit ());
        ])
    [ ("compiled", fun c -> Compiled.create c); ("essent", Essent.create) ]

let tests =
  [
    Alcotest.test_case "printf statement" `Quick test_printf_statement;
    Alcotest.test_case "cross-backend differential (11 designs)" `Quick
      test_cross_backend_equivalence;
    Alcotest.test_case "vcd write/read round-trip" `Quick test_vcd_roundtrip;
    Alcotest.test_case "vcd tracer wrapper" `Quick test_tracer;
    Alcotest.test_case "record/replay identical counts" `Quick test_record_replay;
    Alcotest.test_case "poke/peek errors" `Quick test_poke_errors;
    Alcotest.test_case "combinational loop detection" `Quick test_combinational_loop_detected;
    Alcotest.test_case "stop statement" `Quick test_stop_statement;
    Alcotest.test_case "multi-writer memory semantics" `Quick test_multi_writer_memory;
    Alcotest.test_case "builtin line coverage audit" `Quick test_builtin_line_coverage;
    Alcotest.test_case "zero allocation per cycle (word-level path)" `Quick
      test_zero_allocation_per_cycle;
  ]
