(** Unit tests for the telemetry layer: span nesting with a deterministic
    clock, histogram percentiles, counter accumulation, the runtime text
    sink, and a JSON / trace-event round-trip through the parser. *)

module Obs = Sic_obs.Obs
module Json = Sic_obs.Json

(* A deterministic clock: every reading advances by [tick] seconds, so
   every span lasts an exact, known number of microseconds. *)
let with_fake_clock ?(tick = 0.001) f =
  let t = ref 0. in
  Obs.set_clock (fun () ->
      let v = !t in
      t := v +. tick;
      v);
  Fun.protect
    ~finally:(fun () ->
      Obs.set_clock Unix.gettimeofday;
      Obs.disable ();
      Obs.reset ())
    f

let spans () =
  List.filter_map
    (fun (e : Obs.event) -> match e with Obs.Span _ -> Some e | _ -> None)
    (Obs.events ())

let test_disabled_is_transparent () =
  Obs.reset ();
  Obs.disable ();
  let r = Obs.span "ghost" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 r;
  Obs.gauge "ghost" 1.;
  Obs.instant "ghost";
  Obs.count "ghost";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.events ()));
  Alcotest.(check int) "no counter" 0 (Obs.counter_value "ghost")

let test_span_nesting () =
  with_fake_clock (fun () ->
      Obs.enable ();
      let r =
        Obs.span "outer" (fun () ->
            Obs.span "inner_a" (fun () -> ());
            Obs.span "inner_b" (fun () -> 17))
      in
      Alcotest.(check int) "result" 17 r;
      match spans () with
      | [ Obs.Span a; Obs.Span b; Obs.Span outer ] ->
          Alcotest.(check string) "inner_a closes first" "inner_a" a.name;
          Alcotest.(check string) "inner_b closes second" "inner_b" b.name;
          Alcotest.(check string) "outer closes last" "outer" outer.name;
          Alcotest.(check int) "outer at depth 0" 0 outer.depth;
          Alcotest.(check int) "inner_a nested" 1 a.depth;
          Alcotest.(check int) "inner_b nested" 1 b.depth;
          Alcotest.(check bool) "inner_a within outer" true
            (a.start_us >= outer.start_us
            && a.start_us +. a.dur_us <= outer.start_us +. outer.dur_us);
          Alcotest.(check bool) "inners are ordered" true
            (b.start_us >= a.start_us +. a.dur_us)
      | es -> Alcotest.failf "expected 3 spans, got %d" (List.length es))

let test_span_exception () =
  with_fake_clock (fun () ->
      Obs.enable ();
      (try Obs.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
      Obs.span "after" (fun () -> ());
      match spans () with
      | [ Obs.Span boom; Obs.Span after ] ->
          Alcotest.(check bool) "error attribute set" true
            (List.mem_assoc "error" boom.args);
          Alcotest.(check int) "depth restored after raise" 0 after.depth
      | es -> Alcotest.failf "expected 2 spans, got %d" (List.length es))

let test_histogram_percentiles () =
  let h = Obs.Histogram.create () in
  for i = 1 to 100 do
    Obs.Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 1. (Obs.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100. (Obs.Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "p0" 1. (Obs.Histogram.percentile h 0.);
  Alcotest.(check (float 1e-9)) "p50" 50. (Obs.Histogram.percentile h 50.);
  Alcotest.(check (float 1e-9)) "p90" 90. (Obs.Histogram.percentile h 90.);
  Alcotest.(check (float 1e-9)) "p99" 99. (Obs.Histogram.percentile h 99.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Obs.Histogram.percentile h 100.);
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Obs.Histogram.percentile (Obs.Histogram.create ()) 50.));
  (* a single sample answers every percentile *)
  let one = Obs.Histogram.create () in
  Obs.Histogram.add one 7.;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "single sample p%g" q) 7.
        (Obs.Histogram.percentile one q))
    [ 0.; 50.; 100. ];
  (* nearest-rank boundaries on a small population *)
  let four = Obs.Histogram.create () in
  List.iter (fun v -> Obs.Histogram.add four v) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check (float 1e-9)) "4 samples p0" 1. (Obs.Histogram.percentile four 0.);
  Alcotest.(check (float 1e-9)) "4 samples p25" 1. (Obs.Histogram.percentile four 25.);
  Alcotest.(check (float 1e-9)) "4 samples p26" 2. (Obs.Histogram.percentile four 26.);
  Alcotest.(check (float 1e-9)) "4 samples p75" 3. (Obs.Histogram.percentile four 75.);
  Alcotest.(check (float 1e-9)) "4 samples p76" 4. (Obs.Histogram.percentile four 76.);
  Alcotest.(check (float 1e-9)) "4 samples p100" 4. (Obs.Histogram.percentile four 100.)

let test_counters () =
  with_fake_clock (fun () ->
      Obs.enable ();
      Obs.count "execs";
      Obs.count ~by:9 "execs";
      Alcotest.(check int) "accumulated" 10 (Obs.counter_value "execs"))

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "pass:dce \"quoted\"\n");
        ("count", Json.Int 42);
        ("neg", Json.Int (-7));
        ("ratio", Json.Float 0.25);
        ("whole", Json.Float 3.0);
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("list", Json.List [ Json.Int 1; Json.String "two"; Json.Obj [] ]);
      ]
  in
  let round = Json.parse (Json.to_string v) in
  Alcotest.(check bool) "value survives print/parse" true (Json.equal v round);
  (* ints and floats stay distinct through the round-trip *)
  (match Json.member "whole" round with
  | Some (Json.Float 3.0) -> ()
  | _ -> Alcotest.fail "whole floats must stay floats");
  match Json.parse "  [1, 2.5e2, \"a\\u0041b\", {\"k\": null}] " with
  | Json.List [ Json.Int 1; Json.Float 250.; Json.String "aAb"; Json.Obj [ ("k", Json.Null) ] ]
    -> ()
  | _ -> Alcotest.fail "hand-written JSON parses structurally"

let test_ndjson_export_round_trip () =
  with_fake_clock (fun () ->
      Obs.enable ();
      Obs.span "compile"
        ~args:[ ("nodes", Obs.Int 7); ("label", Obs.Str "x") ]
        (fun () -> ());
      Obs.gauge "cycles_per_sec" 123456.789;
      Obs.instant "new_coverage" ~args:[ ("execs", Obs.Int 3) ];
      Obs.count "execs";
      Obs.Histogram.add (Obs.histogram "exec_us") 10.;
      Obs.Histogram.add (Obs.histogram "exec_us") 20.;
      let lines =
        Obs.ndjson_string () |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      let parsed = List.map Json.parse lines in
      let kind j =
        match Json.member "type" j with Some (Json.String s) -> s | _ -> "?"
      in
      Alcotest.(check string) "first line is meta" "meta" (kind (List.hd parsed));
      let find k = List.filter (fun j -> kind j = k) parsed in
      Alcotest.(check int) "one span line" 1 (List.length (find "span"));
      Alcotest.(check int) "one gauge line" 1 (List.length (find "gauge"));
      Alcotest.(check int) "one instant line" 1 (List.length (find "instant"));
      Alcotest.(check int) "one counter line" 1 (List.length (find "counter"));
      Alcotest.(check int) "one histogram line" 1 (List.length (find "histogram"));
      (match find "span" with
      | [ span ] -> (
          match Json.member "args" span with
          | Some args -> (
              match (Json.member "nodes" args, Json.member "label" args) with
              | Some (Json.Int 7), Some (Json.String "x") -> ()
              | _ -> Alcotest.fail "span args survive the round-trip")
          | None -> Alcotest.fail "span has args")
      | _ -> assert false);
      match find "histogram" with
      | [ h ] -> (
          match (Json.member "count" h, Json.member "mean" h) with
          | Some (Json.Int 2), Some (Json.Float 15.) -> ()
          | _ -> Alcotest.fail "histogram summary fields")
      | _ -> assert false)

let test_export_import_round_trip () =
  with_fake_clock (fun () ->
      (* worker session: record, export *)
      Obs.enable ();
      Obs.span "work" ~args:[ ("job", Obs.Int 3) ] (fun () -> ());
      Obs.count ~by:5 "execs";
      let start_a =
        match spans () with
        | [ Obs.Span s ] -> s.start_us
        | _ -> Alcotest.fail "one span recorded"
      in
      let payload = Obs.export_events () in
      (* orchestrator session: enabled later, so its t0 is larger and the
         imported timestamps must shift backwards to line up *)
      Obs.reset ();
      Obs.enable ();
      Obs.import_events ~label:"w1" payload;
      (match Obs.lanes () with
      | [ l ] -> (
          Alcotest.(check string) "lane label" "w1" l.Obs.lane_label;
          Alcotest.(check int) "lane pid" (Unix.getpid ()) l.Obs.lane_pid;
          match l.Obs.lane_events with
          | [ Obs.Span s ] ->
              Alcotest.(check string) "span survives" "work" s.name;
              Alcotest.(check bool) "span args survive" true (List.mem_assoc "job" s.args);
              Alcotest.(check bool) "start rebased onto the later t0" true
                (s.start_us < start_a)
          | _ -> Alcotest.fail "lane holds exactly the exported span")
      | ls -> Alcotest.failf "expected 1 lane, got %d" (List.length ls));
      Alcotest.(check int) "exporter's counters absorbed" 5 (Obs.counter_value "execs");
      (* a payload from a foreign pid lands as its own lane *)
      Obs.import_events
        "{\"type\":\"meta\",\"version\":1,\"unit\":\"us\",\"pid\":4242,\"t0_us\":0.0}\n\
         {\"type\":\"span\",\"name\":\"alien\",\"start_us\":10.0,\"dur_us\":5.0,\"depth\":1,\"args\":{\"k\":\"v\"}}\n\
         {\"type\":\"counter\",\"name\":\"alien_hits\",\"value\":3}\n";
      (match Obs.lanes () with
      | [ _w1; alien ] -> (
          Alcotest.(check int) "foreign pid kept" 4242 alien.Obs.lane_pid;
          Alcotest.(check string) "default label" "pid 4242" alien.Obs.lane_label;
          match alien.Obs.lane_events with
          | [ Obs.Span s ] ->
              Alcotest.(check (float 1e-9)) "duration unchanged" 5.0 s.dur_us;
              Alcotest.(check int) "depth kept" 1 s.depth
          | _ -> Alcotest.fail "alien lane holds one span")
      | ls -> Alcotest.failf "expected 2 lanes, got %d" (List.length ls));
      Alcotest.(check int) "foreign counters absorbed" 3 (Obs.counter_value "alien_hits");
      (* the merged chrome trace shows one lane per process *)
      let trace = Json.parse (Obs.chrome_trace_string ~pid:1 ~tid:1 ()) in
      (match Json.member "traceEvents" trace with
      | Some (Json.List events) ->
          let pids =
            List.sort_uniq compare
              (List.filter_map
                 (fun e ->
                   match Json.member "pid" e with Some (Json.Int p) -> Some p | _ -> None)
                 events)
          in
          Alcotest.(check (list int)) "one lane per process"
            (List.sort_uniq compare [ 1; 4242; Unix.getpid () ])
            pids
      | _ -> Alcotest.fail "traceEvents present");
      (* payloads from an unknown export version are rejected, not guessed at *)
      match
        Obs.import_events
          "{\"type\":\"meta\",\"version\":99,\"unit\":\"us\",\"pid\":1,\"t0_us\":0.0}\n"
      with
      | () -> Alcotest.fail "unknown export version accepted"
      | exception Json.Parse_error _ -> ())

let test_chrome_trace_export () =
  with_fake_clock (fun () ->
      Obs.enable ();
      Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> ()));
      Obs.gauge "speed" 10.;
      Obs.instant "hit";
      let trace = Json.parse (Obs.chrome_trace_string ~pid:77 ~tid:77 ()) in
      match Json.member "traceEvents" trace with
      | Some (Json.List events) ->
          Alcotest.(check int) "lane name + 2 spans + 1 gauge + 1 instant" 5
            (List.length events);
          let phases =
            List.map
              (fun e ->
                match Json.member "ph" e with Some (Json.String p) -> p | _ -> "?")
              events
          in
          Alcotest.(check (list string)) "phases" [ "M"; "X"; "X"; "C"; "i" ] phases;
          List.iter
            (fun e ->
              match Json.member "pid" e with
              | Some (Json.Int 77) -> ()
              | _ -> Alcotest.fail "every event carries the requested pid")
            events;
          List.iter
            (fun e ->
              match (Json.member "ts" e, Json.member "pid" e) with
              | Some (Json.Float _), Some (Json.Int _) -> ()
              | _ -> Alcotest.fail "every event carries ts and pid")
            (List.tl events)
      | _ -> Alcotest.fail "traceEvents list present")

let test_sink_captures_simulator_prints () =
  (* Backend.print_sink is Obs.sink: swapping the one ref captures both
     simulator printf output and anything else routed through the sink *)
  Alcotest.(check bool) "print_sink is Obs.sink" true
    (Sic_sim.Backend.print_sink == Obs.sink);
  let buf = Buffer.create 16 in
  Obs.with_sink (Buffer.add_string buf) (fun () -> !Sic_sim.Backend.print_sink "hello");
  Alcotest.(check string) "captured" "hello" (Buffer.contents buf);
  Obs.with_sink (Buffer.add_string buf) (fun () -> !Obs.sink " world");
  Alcotest.(check string) "same sink" "hello world" (Buffer.contents buf)

let test_span_stats () =
  with_fake_clock (fun () ->
      Obs.enable ();
      Obs.span "a" (fun () -> ());
      Obs.span "b" (fun () -> ());
      Obs.span "a" (fun () -> ());
      let stats = Obs.span_stats () in
      Alcotest.(check (list string)) "grouped in first-seen order" [ "a"; "b" ]
        (List.map (fun (s : Obs.span_stat) -> s.Obs.stat_name) stats);
      let a = List.hd stats in
      Alcotest.(check int) "a called twice" 2 a.Obs.calls;
      Alcotest.(check bool) "total is sum" true (a.Obs.total_us >= a.Obs.max_us))

let tests =
  [
    Alcotest.test_case "disabled telemetry is free and silent" `Quick
      test_disabled_is_transparent;
    Alcotest.test_case "span nesting and depths" `Quick test_span_nesting;
    Alcotest.test_case "spans survive exceptions" `Quick test_span_exception;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "counters accumulate" `Quick test_counters;
    Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "ndjson export round-trips" `Quick test_ndjson_export_round_trip;
    Alcotest.test_case "export/import round-trip" `Quick test_export_import_round_trip;
    Alcotest.test_case "chrome trace export" `Quick test_chrome_trace_export;
    Alcotest.test_case "one sink for all runtime output" `Quick
      test_sink_captures_simulator_prints;
    Alcotest.test_case "span stats grouping" `Quick test_span_stats;
  ]
