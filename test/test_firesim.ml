(** Tests for the FPGA-accelerated coverage path: scan-chain insertion must
    preserve circuit behaviour and the scanned-out counts must equal a
    software backend's counts exactly (§3.3: "the exact same coverage
    information as provided by the software simulators"). *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Scan = Sic_firesim.Scan_chain
module Driver = Sic_firesim.Driver
module Rm = Sic_firesim.Resource_model
open Helpers
open Sic_sim

let instrumented_gcd () =
  let c, _db = Sic_coverage.Line_coverage.instrument (gcd_circuit ()) in
  Sic_passes.Compile.lower c

let test_scan_chain_counts_match () =
  let low = instrumented_gcd () in
  (* reference: native software counts *)
  let ref_b = Compiled.create low in
  ignore (run_gcd ref_b 270 192);
  let expected = ref_b.Backend.counts () in
  (* scan-chain version of the same circuit, wide-enough counters *)
  let chained, chain = Scan.insert ~width:16 low in
  let b = Compiled.create chained in
  let { Driver.counts; scan_cycles } =
    Driver.run_and_scan b chain ~workload:(fun b -> ignore (run_gcd b 270 192))
  in
  Alcotest.(check int) "scan cost = points x width"
    (16 * List.length chain.Scan.order)
    scan_cycles;
  Alcotest.(check bool) "scanned counts equal software counts" true
    (Counts.equal counts expected)

let test_scan_chain_saturates () =
  let low = instrumented_gcd () in
  let chained, chain = Scan.insert ~width:2 low in
  let b = Compiled.create chained in
  let { Driver.counts; _ } =
    Driver.run_and_scan b chain ~workload:(fun b ->
        ignore (run_gcd b 270 192);
        ignore (run_gcd b 270 192))
  in
  (* 2-bit counters cap at 3 *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s <= 3" name)
        true
        (Counts.get counts name <= 3))
    chain.Scan.order;
  Alcotest.(check bool) "something saturated" true
    (List.exists (fun n -> Counts.get counts n = 3) chain.Scan.order)

let test_scan_chain_preserves_behaviour () =
  let low = instrumented_gcd () in
  let chained, _ = Scan.insert ~width:8 low in
  let b = Compiled.create chained in
  b.Backend.poke Scan.scan_en_port (Bv.zero 1);
  b.Backend.poke Scan.scan_in_port (Bv.zero 1);
  Alcotest.(check int) "gcd still computes through the chain pass" 6 (run_gcd b 270 192)

let test_scan_mixed_metrics () =
  (* scan-chain counters work the same for any metric's covers: instrument
     with line + fsm + ready/valid together and compare against software *)
  let c, _ = Sic_coverage.Line_coverage.instrument (Sic_designs.Uart.circuit ()) in
  let low = Sic_passes.Compile.lower c in
  let low, _ = Sic_coverage.Fsm_coverage.instrument low in
  let low, _ = Sic_coverage.Ready_valid_coverage.instrument low in
  let drive (b : Backend.t) =
    Backend.reset_sequence b;
    b.Backend.poke "loopback" (Bv.one 1);
    b.Backend.poke "rxd" (Bv.one 1);
    b.Backend.poke "io_out_ready" (Bv.one 1);
    b.Backend.poke "io_in_valid" (Bv.one 1);
    b.Backend.poke "io_in_bits" (Bv.of_int ~width:8 0x3C);
    b.Backend.step 300
  in
  let ref_b = Compiled.create low in
  drive ref_b;
  let chained, chain = Scan.insert ~width:12 low in
  let fb = Compiled.create chained in
  let r = Driver.run_and_scan fb chain ~workload:drive in
  Alcotest.(check bool) "mixed-metric scan equals software" true
    (Counts.equal r.Driver.counts (ref_b.Backend.counts ()))

let test_resource_model_shape () =
  let low = lower (Sic_designs.Soc.circuit Sic_designs.Soc.rocket_config) in
  let base = Rm.baseline low in
  Alcotest.(check bool) "baseline nonzero" true (base.Rm.luts > 0 && base.Rm.ffs > 0);
  let n_covers = 5000 in
  let prev_luts = ref 0 in
  (* LUTs grow monotonically (and linearly) with counter width *)
  List.iter
    (fun w ->
      let u = Rm.with_coverage base ~n_covers ~width:w in
      Alcotest.(check bool) (Printf.sprintf "monotone at width %d" w) true (u.Rm.luts > !prev_luts);
      prev_luts := u.Rm.luts;
      if w > 0 then
        Alcotest.(check int)
          (Printf.sprintf "counter FFs at width %d" w)
          (n_covers * w) u.Rm.counter_ffs)
    [ 1; 2; 4; 8; 16; 32; 48 ];
  (* fmax degrades (beyond noise) for very wide counters *)
  let f_small = Rm.fmax ~base_mhz:65.0 ~u:(Rm.with_coverage base ~n_covers ~width:1) ~seed:1 ~width:1 in
  let f_large = Rm.fmax ~base_mhz:65.0 ~u:(Rm.with_coverage base ~n_covers:12000 ~width:48) ~seed:1 ~width:48 in
  Alcotest.(check bool) "wide counters cost frequency" true (f_large < f_small)

let test_scan_pause_freezes_target () =
  (* while scan_en is high the target must be frozen: registers hold *)
  let c, _db = Sic_coverage.Line_coverage.instrument (Sic_designs.Counter.circuit ()) in
  let low = Sic_passes.Compile.lower c in
  let chained, _chain = Scan.insert ~width:8 low in
  let b = Compiled.create chained in
  Backend.reset_sequence b;
  b.Backend.poke Scan.scan_en_port (Bv.zero 1);
  b.Backend.poke "en" (Bv.one 1);
  b.Backend.step 5;
  let v = Bv.to_int_trunc (b.Backend.peek "value") in
  b.Backend.poke Scan.scan_en_port (Bv.one 1);
  b.Backend.step 20;
  Alcotest.(check int) "counter frozen during scan" v (Bv.to_int_trunc (b.Backend.peek "value"));
  b.Backend.poke Scan.scan_en_port (Bv.zero 1);
  b.Backend.step 1;
  Alcotest.(check int) "resumes after scan" (v + 1) (Bv.to_int_trunc (b.Backend.peek "value"))

let test_periodic_scan_accumulates () =
  (* 3-bit counters scanned every 6 cycles accumulate exact totals that a
     direct run with wide counters would produce *)
  let low = instrumented_gcd () in
  let ref_b = Compiled.create low in
  let drive (b : Backend.t) cycle =
    b.Backend.poke "reset" (Bv.of_bool (cycle = 0));
    b.Backend.poke "io_out_ready" (Bv.one 1);
    if cycle mod 17 = 1 then begin
      b.Backend.poke "io_in_valid" (Bv.one 1);
      b.Backend.poke "io_in_bits" (Bv.of_int ~width:32 ((24 lsl 16) lor 36))
    end
    else b.Backend.poke "io_in_valid" (Bv.zero 1)
  in
  let total_cycles = 60 in
  for c = 0 to total_cycles - 1 do
    drive ref_b c;
    ref_b.Backend.step 1
  done;
  let expected = ref_b.Backend.counts () in
  let chained, chain = Scan.insert ~width:3 low in
  let b = Compiled.create chained in
  b.Backend.poke Scan.scan_en_port (Bv.zero 1);
  b.Backend.poke Scan.scan_in_port (Bv.zero 1);
  let r = Driver.run_with_periodic_scan b chain ~period:6 ~total_cycles ~drive in
  Alcotest.(check bool) "periodic small-counter scan equals wide counters" true
    (Counts.equal r.Driver.counts expected)

let test_toggle_edges () =
  (* a signal driven 0,1,1,0 has exactly one rising and one falling edge *)
  let cb = Sic_ir.Dsl.create_circuit "Edge" in
  Sic_ir.Dsl.module_ cb "Edge" (fun m ->
      let open Sic_ir.Dsl in
      let x = input m "x" (Sic_ir.Ty.UInt 1) in
      let out = output m "out" (Sic_ir.Ty.UInt 1) in
      connect m out x);
  let low = Sic_passes.Compile.lower (Sic_ir.Dsl.finalize cb) in
  let low, db = Sic_coverage.Toggle_coverage.instrument ~edges:true low in
  let b = Compiled.create low in
  List.iter
    (fun v ->
      b.Backend.poke "x" (Bv.of_int ~width:1 v);
      b.Backend.step 1)
    [ 0; 1; 1; 0; 0 ];
  let counts = b.Backend.counts () in
  let find edge =
    List.find
      (fun (p : Sic_coverage.Toggle_coverage.point) ->
        p.Sic_coverage.Toggle_coverage.edge = edge
        && p.Sic_coverage.Toggle_coverage.signal = "x")
      db.Sic_coverage.Toggle_coverage.points
  in
  let rise = find Sic_coverage.Toggle_coverage.Rising in
  let fall = find Sic_coverage.Toggle_coverage.Falling in
  Alcotest.(check int) "one rising edge" 1
    (Counts.get counts rise.Sic_coverage.Toggle_coverage.cover_name);
  Alcotest.(check int) "one falling edge" 1
    (Counts.get counts fall.Sic_coverage.Toggle_coverage.cover_name)

let tests =
  [
    Alcotest.test_case "scan-out equals software counts" `Quick test_scan_chain_counts_match;
    Alcotest.test_case "scan pause freezes target" `Quick test_scan_pause_freezes_target;
    Alcotest.test_case "periodic small-counter scan" `Quick test_periodic_scan_accumulates;
    Alcotest.test_case "toggle rising/falling edges" `Quick test_toggle_edges;
    Alcotest.test_case "mixed-metric scan chain" `Quick test_scan_mixed_metrics;
    Alcotest.test_case "narrow counters saturate" `Quick test_scan_chain_saturates;
    Alcotest.test_case "chain preserves behaviour" `Quick test_scan_chain_preserves_behaviour;
    Alcotest.test_case "resource model shape" `Quick test_resource_model_shape;
  ]
