(** End-to-end pipeline smoke tests: DSL -> passes -> backends. *)

module Bv = Sic_bv.Bv
open Helpers

let test_gcd_backend (name, create) () =
  let c = gcd_circuit () in
  let low = lower c in
  Alcotest.(check bool) "low form" true (Sic_passes.Compile.is_low_form low);
  let b = create low in
  Alcotest.(check int) (name ^ " gcd(12,8)") 4 (run_gcd b 12 8);
  let b = create low in
  Alcotest.(check int) (name ^ " gcd(270,192)") 6 (run_gcd b 270 192);
  let b = create low in
  Alcotest.(check int) (name ^ " gcd(7,13)") 1 (run_gcd b 7 13)

let test_hierarchy (name, create) () =
  let c = hierarchy_circuit () in
  let low = lower c in
  let b = create low in
  let open Sic_sim in
  b.Backend.poke "in_a" (Bv.of_int ~width:8 10);
  b.Backend.poke "in_b" (Bv.of_int ~width:8 20);
  b.Backend.poke "in_c" (Bv.of_int ~width:8 5);
  Alcotest.(check int) (name ^ " 10+20+5") 35 (Bv.to_int_trunc (b.Backend.peek "out"))

let test_fsm_sim (_name, create) () =
  let c, _ = fsm_circuit () in
  let b = create (lower c) in
  let open Sic_sim in
  Backend.reset_sequence b;
  Alcotest.(check int) "reset to A" 0 (Bv.to_int_trunc (b.Backend.peek "out"));
  b.Backend.poke "in" (Bv.one 1);
  b.Backend.step 1;
  Alcotest.(check int) "stay A" 0 (Bv.to_int_trunc (b.Backend.peek "out"));
  b.Backend.poke "in" (Bv.zero 1);
  b.Backend.step 1;
  Alcotest.(check int) "A->B" 1 (Bv.to_int_trunc (b.Backend.peek "out"));
  b.Backend.poke "in" (Bv.one 1);
  b.Backend.step 1;
  Alcotest.(check int) "stay B" 1 (Bv.to_int_trunc (b.Backend.peek "out"));
  b.Backend.poke "in" (Bv.zero 1);
  b.Backend.step 1;
  Alcotest.(check int) "B->C" 2 (Bv.to_int_trunc (b.Backend.peek "out"));
  b.Backend.step 5;
  Alcotest.(check int) "stuck C" 2 (Bv.to_int_trunc (b.Backend.peek "out"))

let tests =
  List.concat_map
    (fun bk ->
      let name = fst bk in
      [
        Alcotest.test_case (name ^ ": gcd") `Quick (test_gcd_backend bk);
        Alcotest.test_case (name ^ ": hierarchy") `Quick (test_hierarchy bk);
        Alcotest.test_case (name ^ ": fsm") `Quick (test_fsm_sim bk);
      ])
    backends
