(** Verilog frontend tests: lexer/parser units, located diagnostics on the
    negative fixtures, a hand-translated DSL twin of the counter fixture
    compared differentially across every backend, printer round-trips of
    every lowered fixture, [$readmemh] simulation, an end-to-end coverage
    run of the vendored RISC-V core, and qcheck properties that malformed
    input only ever raises the typed frontend error. *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Verilog = Sic_verilog.Verilog
open Sic_ir
open Sic_sim
open Helpers

let fixtures_dir = "../examples/verilog"
let fixture name = Filename.concat fixtures_dir name
let bad name = Filename.concat "verilog" name

(* --- lexer ------------------------------------------------------------ *)

let test_lexer_literals () =
  let toks = Sic_verilog.Lexer.tokenize ~file:"t" "3'b111 12'h0f0 8'd255 // x\nfoo" in
  let numbers =
    Array.to_list toks
    |> List.filter_map (fun (t : Sic_verilog.Lexer.t) ->
           match t.Sic_verilog.Lexer.tok with
           | Sic_verilog.Lexer.Number { width; value } -> Some (width, value)
           | _ -> None)
  in
  (match numbers with
  | [ (Some 3, a); (Some 12, b); (Some 8, c) ] ->
      check_bv "3'b111" (Bv.of_int ~width:3 7) a;
      check_bv "12'h0f0" (Bv.of_int ~width:12 0xf0) b;
      check_bv "8'd255" (Bv.of_int ~width:8 255) c
  | _ -> Alcotest.fail "unexpected token stream");
  (* the comment swallows the rest of its line; foo is on line 2 *)
  let foo =
    Array.to_list toks
    |> List.find (fun (t : Sic_verilog.Lexer.t) -> t.Sic_verilog.Lexer.tok = Sic_verilog.Lexer.Id "foo")
  in
  Alcotest.(check int) "foo line" 2 foo.Sic_verilog.Lexer.pos.line;
  (* a sized literal without its size is a typed error, not a width-1 guess *)
  match Sic_verilog.Lexer.tokenize ~file:"t" "'h1f" with
  | _ -> Alcotest.fail "'h1f without a size should be a lex error"
  | exception Verilog.Error _ -> ()

let test_lexer_positions () =
  let toks = Sic_verilog.Lexer.tokenize ~file:"t" "a\n  bb\n    ccc" in
  let at i = toks.(i).Sic_verilog.Lexer.pos in
  Alcotest.(check (pair int int)) "a" (1, 1) ((at 0).line, (at 0).col);
  Alcotest.(check (pair int int)) "bb" (2, 3) ((at 1).line, (at 1).col);
  Alcotest.(check (pair int int)) "ccc" (3, 5) ((at 2).line, (at 2).col)

let test_lexer_block_comment () =
  let toks = Sic_verilog.Lexer.tokenize ~file:"t" "x /* one\ntwo */ y" in
  match Array.to_list toks with
  | [ a; b; _eof ] ->
      Alcotest.(check bool) "x" true (a.Sic_verilog.Lexer.tok = Sic_verilog.Lexer.Id "x");
      Alcotest.(check bool) "y" true (b.Sic_verilog.Lexer.tok = Sic_verilog.Lexer.Id "y");
      Alcotest.(check int) "y line" 2 b.Sic_verilog.Lexer.pos.line
  | _ -> Alcotest.fail "expected exactly x y eof"

(* --- parser ----------------------------------------------------------- *)

let test_parse_counter_ast () =
  let d = Verilog.parse_string ~file:"counter.v" (In_channel.with_open_bin (fixture "counter.v") In_channel.input_all) in
  match d.Sic_verilog.Ast.modules with
  | [ m ] ->
      Alcotest.(check string) "name" "counter" m.Sic_verilog.Ast.mod_name;
      Alcotest.(check (list string)) "header ports" [ "clk"; "reset"; "en"; "count" ]
        m.Sic_verilog.Ast.mod_ports
  | ms -> Alcotest.failf "expected one module, got %d" (List.length ms)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_parse_rejects_blocking_assign () =
  let src = "module m(input clk, output reg q);\nalways @(posedge clk) begin q = 1'b1; end\nendmodule\n" in
  match Verilog.parse_string ~file:"m.v" src with
  | exception Verilog.Error { pos; message } ->
      Alcotest.(check int) "line" 2 pos.line;
      Alcotest.(check bool) "mentions blocking" true (contains ~needle:"blocking" message)
  | _ -> Alcotest.fail "blocking assignment must be rejected"

(* --- negative fixtures: every one dies with a located diagnostic ------ *)

let negative_fixtures =
  [
    ("bad_undeclared.v", 6, "undeclared");
    ("bad_width.v", 8, "width mismatch");
    ("bad_multidriver.v", 9, "multiple drivers");
    ("bad_primitive.v", 6, "unsupported primitive");
    ("bad_comment.v", 6, "unterminated block comment");
    ("bad_literal.v", 6, "bad sized literal");
  ]

let test_negative_fixtures () =
  List.iter
    (fun (name, line, needle) ->
      match Verilog.load_file (bad name) with
      | _ -> Alcotest.failf "%s: expected a frontend error" name
      | exception Verilog.Error { pos; message } ->
          Alcotest.(check int) (name ^ " line") line pos.line;
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S mentions %S" name message needle)
            true (contains ~needle message)
      | exception e ->
          Alcotest.failf "%s: escaped with %s" name (Printexc.to_string e))
    negative_fixtures

(* --- differential: counter.v vs its hand translation into the DSL ----- *)

(* counter.v, translated statement for statement so that line-coverage
   instrumentation produces the same cover points in the same order *)
let counter_dsl () =
  let cb = Dsl.create_circuit "counter" in
  Dsl.module_ cb "counter" (fun m ->
      let open Dsl in
      let en = input ~loc:__POS__ m "en" (Ty.UInt 1) in
      let count = output ~loc:__POS__ m "count" (Ty.UInt 8) in
      let cnt = reg_init ~loc:__POS__ m "cnt" (lit 8 0) in
      when_ ~loc:__POS__ m en (fun () ->
          when_else ~loc:__POS__ m (cnt ==: lit 8 200)
            (fun () -> connect m cnt (lit 8 0))
            (fun () -> connect m cnt (bits_s (cnt +: lit 8 1) ~hi:7 ~lo:0)));
      connect m count cnt);
  Dsl.finalize cb

let random_drive_pair b =
  let rng = Sic_fuzz.Rng.create 42 in
  let inputs = Backend.data_inputs b in
  let outputs = Backend.outputs b in
  Backend.reset_sequence b;
  let obs = Buffer.create 256 in
  for _ = 1 to 300 do
    List.iter
      (fun (n, ty) ->
        b.Backend.poke n (Bv.random ~width:(Ty.width ty) (Sic_fuzz.Rng.bits30 rng)))
      inputs;
    List.iter
      (fun (n, _) ->
        Buffer.add_string obs (Bv.to_hex_string (b.Backend.peek n));
        Buffer.add_char obs ' ')
      outputs;
    b.Backend.step 1
  done;
  (Buffer.contents obs, b.Backend.counts ())

let test_counter_differential () =
  let from_v = Verilog.load_file (fixture "counter.v") in
  let from_dsl = counter_dsl () in
  let prep c =
    let c, _ = Sic_coverage.Line_coverage.instrument c in
    lower c
  in
  let low_v = prep from_v and low_dsl = prep from_dsl in
  List.iter
    (fun (bname, create) ->
      let obs_v, counts_v = random_drive_pair (create low_v) in
      let obs_d, counts_d = random_drive_pair (create low_dsl) in
      Alcotest.(check string) (bname ^ ": outputs agree") obs_d obs_v;
      Alcotest.(check bool)
        (bname ^ ": coverage counts agree")
        true (Counts.equal counts_d counts_v))
    backends

(* --- printer round-trip ------------------------------------------------ *)

let test_printer_roundtrip () =
  List.iter
    (fun name ->
      let c = Verilog.load_file (fixture name) in
      let printed = Printer.circuit_to_string c in
      let reparsed = Parser.parse_circuit printed in
      let printed2 = Printer.circuit_to_string reparsed in
      Alcotest.(check string) (name ^ " round-trips") printed printed2)
    [ "counter.v"; "fsm.v"; "mem.v"; "rv.v" ]

(* --- $readmemh --------------------------------------------------------- *)

let test_readmemh_sim () =
  let c = Verilog.load_file (fixture "mem.v") in
  let low = lower c in
  let b = Compiled.create low in
  Backend.reset_sequence b;
  b.Backend.poke "we" (Bv.zero 1);
  (* registered read: poke the address, step, observe *)
  let read addr =
    b.Backend.poke "raddr" (Bv.of_int ~width:4 addr);
    b.Backend.step 1;
    Bv.to_int_trunc (b.Backend.peek "rdata")
  in
  Alcotest.(check int) "store[3] preloaded" 0x33 (read 3);
  Alcotest.(check int) "store[8] after @8" 0x88 (read 8);
  Alcotest.(check int) "store[15] preloaded" 0xff (read 15);
  (* a write lands and reads back *)
  b.Backend.poke "we" (Bv.one 1);
  b.Backend.poke "waddr" (Bv.of_int ~width:4 2);
  b.Backend.poke "wdata" (Bv.of_int ~width:8 0xab);
  b.Backend.step 1;
  b.Backend.poke "we" (Bv.zero 1);
  Alcotest.(check int) "written word reads back" 0xab (read 2)

(* --- end to end: the vendored core runs its program -------------------- *)

let test_rv_end_to_end () =
  let c = Verilog.load_file (fixture "rv.v") in
  let c, line_db = Sic_coverage.Line_coverage.instrument c in
  let low = lower c in
  let low, toggle_db = Sic_coverage.Toggle_coverage.instrument low in
  let low, fsm_db = Sic_coverage.Fsm_coverage.instrument low in
  Alcotest.(check bool) "line cover points exist" true (line_db <> []);
  Alcotest.(check bool) "an FSM was inferred" true (fsm_db <> []);
  let b = Compiled.create low in
  Backend.reset_sequence b;
  b.Backend.step 1000;
  let counts = b.Backend.counts () in
  let nonzero prefix =
    List.exists
      (fun name -> contains ~needle:prefix name && Counts.get counts name > 0)
      (Counts.names counts)
  in
  Alcotest.(check bool) "line coverage is non-zero" true (nonzero "l_");
  Alcotest.(check bool) "toggle coverage is non-zero" true (nonzero "t_");
  Alcotest.(check bool) "fsm coverage is non-zero" true (nonzero "fsm_");
  ignore toggle_db;
  (* the program counts on the LED window; the LEDs pass through zero, so
     poll for a nonzero reading rather than sampling one instant *)
  let rec lit n =
    if n = 0 then false
    else if Bv.to_int_trunc (b.Backend.peek "leds") <> 0 then true
    else begin
      b.Backend.step 10;
      lit (n - 1)
    end
  in
  Alcotest.(check bool) "leds lit up" true (lit 50)

(* --- provenance: lowering keeps source locations ----------------------- *)

(* The hotspot profiler attributes tape instructions to statements via
   [Stmt.def_name] + [Stmt.info]; if the frontend or a lowering pass drops
   positions, hotspot reports degrade to "-". Guard the whole pipeline:
   at least 90% of the named statements in lowered rv.v must carry a real
   position. *)
let test_rv_lowered_provenance () =
  let c = Verilog.load_file (fixture "rv.v") in
  let low = lower c in
  let named = ref 0 and located = ref 0 in
  List.iter
    (fun m ->
      Stmt.iter
        (fun s ->
          match Stmt.def_name s with
          | None -> ()
          | Some _ ->
              incr named;
              if not (Info.equal (Stmt.info s) Info.unknown) then incr located)
        m.Circuit.body)
    low.Circuit.modules;
  Alcotest.(check bool) "named statements exist" true (!named > 0);
  let frac = float_of_int !located /. float_of_int !named in
  if frac < 0.9 then
    Alcotest.failf "only %d/%d (%.0f%%) of named lowered statements carry a position"
      !located !named (100. *. frac)

(* --- qcheck: malformed input never escapes the typed error ------------- *)

let only_typed_errors src =
  match Verilog.load_string ~file:"fuzz.v" ~dir:"." src with
  | _ -> true
  | exception Verilog.Error _ -> true
  | exception Stack_overflow -> false
  | exception _ -> false

let soup_char =
  QCheck.Gen.frequency
    [
      (8, QCheck.Gen.oneofl [ 'a'; 'b'; 'm'; 'o'; 'd'; 'u'; 'l'; 'e'; 'w'; 'i'; 'r'; 'g'; 'n' ]);
      (4, QCheck.Gen.oneofl [ ' '; '\n'; ';'; '('; ')'; '['; ']'; '{'; '}' ]);
      (3, QCheck.Gen.oneofl [ '\''; '0'; '1'; '9'; 'h'; '='; '<'; '@'; '/'; '*'; '"' ]);
      (1, QCheck.Gen.char);
    ]

let byte_soup_never_crashes =
  QCheck.Test.make ~count:500 ~name:"byte soup only raises the typed frontend error"
    (QCheck.make
       QCheck.Gen.(string_size ~gen:soup_char (int_bound 400))
       ~print:(fun s -> String.escaped s))
    only_typed_errors

let mutate rng src =
  let b = Bytes.of_string src in
  let n = Bytes.length b in
  let mutations = 1 + (Sic_fuzz.Rng.bits30 rng () mod 8) in
  for _ = 1 to mutations do
    if n > 0 then begin
      let i = Sic_fuzz.Rng.bits30 rng () mod n in
      let c = Char.chr (32 + (Sic_fuzz.Rng.bits30 rng () mod 95)) in
      Bytes.set b i c
    end
  done;
  Bytes.to_string b

let mutated_fixture_never_crashes =
  let sources =
    lazy
      (List.map
         (fun name -> In_channel.with_open_bin (fixture name) In_channel.input_all)
         [ "counter.v"; "fsm.v"; "mem.v" ])
  in
  QCheck.Test.make ~count:300 ~name:"mutated fixtures only raise the typed frontend error"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sic_fuzz.Rng.create seed in
      List.for_all (fun src -> only_typed_errors (mutate rng src)) (Lazy.force sources))

let tests =
  [
    Alcotest.test_case "lexer: sized literals" `Quick test_lexer_literals;
    Alcotest.test_case "lexer: line/col positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer: block comments" `Quick test_lexer_block_comment;
    Alcotest.test_case "parser: counter AST" `Quick test_parse_counter_ast;
    Alcotest.test_case "parser: blocking assign rejected" `Quick
      test_parse_rejects_blocking_assign;
    Alcotest.test_case "negative fixtures are located" `Quick test_negative_fixtures;
    Alcotest.test_case "counter.v == DSL twin on all backends" `Quick
      test_counter_differential;
    Alcotest.test_case "printer round-trip of lowered fixtures" `Quick
      test_printer_roundtrip;
    Alcotest.test_case "$readmemh image is simulated" `Quick test_readmemh_sim;
    Alcotest.test_case "rv.v end-to-end coverage" `Quick test_rv_end_to_end;
    Alcotest.test_case "rv.v lowered statements keep positions" `Quick
      test_rv_lowered_provenance;
    QCheck_alcotest.to_alcotest byte_soup_never_crashes;
    QCheck_alcotest.to_alcotest mutated_fixture_never_crashes;
  ]
