(** Tests for the persistent coverage database (lib/db): manifest
    round-trips, incremental aggregate maintenance, format versioning,
    run diffs and greedy set-cover ranking. *)

module Counts = Sic_coverage.Counts
module Db = Sic_db.Db

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Each test gets its own directory under the sandbox cwd. *)
let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !n

let add_ok db ~design ~backend ?(seed = 0) points =
  Db.add db ~design ~backend ~workload:"random" ~seed ~cycles:100
    (Ok (Counts.of_list points))

let test_round_trip () =
  let dir = fresh_dir "db_rt" in
  let db = Db.init dir in
  let r1 = add_ok db ~design:"gcd" ~backend:"compiled" [ ("p1", 3); ("p2", 0) ] in
  let r2 = add_ok db ~design:"fifo" ~backend:"interp" ~seed:7 [ ("p1", 1); ("p3", 2) ] in
  let rf =
    Db.add db ~design:"gcd" ~backend:"fuzz" ~workload:"fuzz" ~seed:9 ~cycles:50
      (Error "worker killed by signal SIGKILL")
  in
  Alcotest.(check (list string)) "ids in arrival order" [ "r0001"; "r0002"; "r0003" ]
    (List.map (fun r -> r.Db.id) (Db.runs db));
  (* reload from disk and compare the manifest view *)
  let db' = Db.load dir in
  Alcotest.(check int) "reload sees all runs" 3 (List.length (Db.runs db'));
  Alcotest.(check int) "reload sees ok runs" 2 (List.length (Db.ok_runs db'));
  (match Db.find db' rf.Db.id with
  | Some r -> (
      match r.Db.status with
      | Db.Run_failed why ->
          Alcotest.(check bool) "failure reason kept" true (contains ~needle:"SIGKILL" why)
      | Db.Run_ok -> Alcotest.fail "failed run reloaded as ok")
  | None -> Alcotest.fail "failed run missing after reload");
  (* counts files round-trip, including zero-count points *)
  let c1 = Db.load_counts db' (Option.get (Db.find db' r1.Db.id)) in
  Alcotest.(check bool) "r1 counts round-trip" true
    (Counts.equal c1 (Counts.of_list [ ("p1", 3); ("p2", 0) ]));
  let r2' = Option.get (Db.find db' r2.Db.id) in
  Alcotest.(check string) "metadata survives" "fifo" r2'.Db.design;
  Alcotest.(check int) "seed survives" 7 r2'.Db.seed;
  Alcotest.(check int) "points_covered recorded" 2 r2'.Db.points_covered

let test_aggregate_incremental () =
  let dir = fresh_dir "db_agg" in
  let db = Db.init dir in
  let batches =
    [ [ ("a", 1); ("b", 0) ]; [ ("a", 2); ("c", 5) ]; [ ("b", 1); ("c", 1); ("d", 0) ] ]
  in
  List.iteri
    (fun i pts ->
      ignore (add_ok db ~design:"gcd" ~backend:"compiled" ~seed:i pts);
      (* the incrementally maintained cache must equal a full re-merge *)
      Alcotest.(check bool)
        (Printf.sprintf "cache = recompute after run %d" (i + 1))
        true
        (Counts.equal (Db.aggregate db) (Db.recompute_aggregate db)))
    batches;
  let expect = Counts.merge (List.map Counts.of_list batches) in
  Alcotest.(check bool) "aggregate = merge of all runs" true
    (Counts.equal (Db.aggregate db) expect);
  (* failed runs leave the aggregate untouched *)
  ignore
    (Db.add db ~design:"gcd" ~backend:"bmc" ~workload:"bmc" ~seed:0 ~cycles:10
       (Error "timeout"));
  Alcotest.(check bool) "failed run does not change aggregate" true
    (Counts.equal (Db.aggregate db) expect);
  (* deleting the cache forces an identical recompute on load *)
  Sys.remove (Filename.concat dir "aggregate.cnt");
  let db' = Db.load dir in
  Alcotest.(check bool) "aggregate recomputed after cache delete" true
    (Counts.equal (Db.aggregate db') expect);
  Alcotest.(check bool) "removal export is the aggregate" true
    (Counts.equal (Db.removal_counts db') expect)

let test_versioning () =
  (* load of a missing database fails loudly *)
  (try
     ignore (Db.load (fresh_dir "db_missing"));
     Alcotest.fail "load of missing db succeeded"
   with Db.Db_error _ -> ());
  (* init refuses to clobber an existing database *)
  let dir = fresh_dir "db_clobber" in
  ignore (Db.init dir);
  (try
     ignore (Db.init dir);
     Alcotest.fail "double init succeeded"
   with Db.Db_error _ -> ());
  (* a manifest from an incompatible future version is rejected *)
  let dir2 = fresh_dir "db_future" in
  ignore (Db.init dir2);
  let manifest = Filename.concat dir2 "manifest.ndjson" in
  let oc = open_out manifest in
  output_string oc "{\"type\":\"meta\",\"format\":\"sic-db\",\"version\":99}\n";
  close_out oc;
  try
    ignore (Db.load dir2);
    Alcotest.fail "future version accepted"
  with Db.Db_error m ->
    Alcotest.(check bool) "error names the version" true (contains ~needle:"99" m)

let test_diff () =
  let dir = fresh_dir "db_diff" in
  let db = Db.init dir in
  let r1 = add_ok db ~design:"gcd" ~backend:"compiled" [ ("a", 0); ("b", 2) ] in
  let r2 = add_ok db ~design:"gcd" ~backend:"fuzz" [ ("a", 4); ("b", 0) ] in
  let d = Db.diff db ~before:r1.Db.id ~after:r2.Db.id in
  Alcotest.(check (list string)) "newly covered" [ "a" ] d.Counts.newly_covered;
  Alcotest.(check (list string)) "lost" [ "b" ] d.Counts.lost;
  try
    ignore (Db.diff db ~before:"nope" ~after:r1.Db.id);
    Alcotest.fail "diff with unknown id succeeded"
  with Db.Db_error _ -> ()

let test_rank () =
  let dir = fresh_dir "db_rank" in
  let db = Db.init dir in
  (* crafted fixture with a known greedy solution:
     rA = {p1 p2 p3}  gain 3  -> picked first
     rB = {p3 p4 p5}  gain 2  -> picked second
     rC = {p5 p6}     gain 1  -> picked third
     rD = {p1}        gain 0  -> never picked *)
  let ra = add_ok db ~design:"d" ~backend:"compiled" [ ("p1", 1); ("p2", 1); ("p3", 1) ] in
  let rb = add_ok db ~design:"d" ~backend:"compiled" [ ("p3", 1); ("p4", 1); ("p5", 1) ] in
  let rc = add_ok db ~design:"d" ~backend:"compiled" [ ("p5", 1); ("p6", 1) ] in
  let _rd = add_ok db ~design:"d" ~backend:"compiled" [ ("p1", 9) ] in
  let picked = Db.rank db in
  Alcotest.(check (list string)) "greedy pick order"
    [ ra.Db.id; rb.Db.id; rc.Db.id ]
    (List.map (fun r -> r.Db.id) picked);
  (* the ranked subset's merged coverage equals the whole database's *)
  let subset = Counts.merge (List.map (Db.load_counts db) picked) in
  Alcotest.(check (list string)) "subset covers everything"
    (Counts.covered (Db.aggregate db))
    (Counts.covered subset);
  (* at a higher threshold the cheap runs stop sufficing *)
  let picked5 = Db.rank ~threshold:5 db in
  Alcotest.(check bool) "threshold changes the answer" true
    (List.length picked5 <= List.length (Db.ok_runs db));
  let sub5 = Counts.merge (List.map (Db.load_counts db) picked5) in
  Alcotest.(check (list string)) "threshold-5 subset matches aggregate"
    (Counts.covered ~threshold:5 (Db.aggregate db))
    (Counts.covered ~threshold:5 sub5);
  (* renderers stay in sync with the data *)
  Alcotest.(check bool) "list renders every run" true
    (contains ~needle:ra.Db.id (Db.render_list db));
  Alcotest.(check bool) "rank render names the winner" true
    (contains ~needle:ra.Db.id (Db.render_rank db));
  Alcotest.(check bool) "report renders" true
    (contains ~needle:"compiled" (Db.render_report db))

let tests =
  [
    Alcotest.test_case "manifest round-trip" `Quick test_round_trip;
    Alcotest.test_case "incremental aggregate" `Quick test_aggregate_incremental;
    Alcotest.test_case "format versioning" `Quick test_versioning;
    Alcotest.test_case "run diff" `Quick test_diff;
    Alcotest.test_case "greedy rank" `Quick test_rank;
  ]
