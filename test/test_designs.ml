(** Functional tests for every benchmark design, run on the compiled
    backend (the interpreter is covered by cross-backend equivalence
    tests). *)

module Bv = Sic_bv.Bv
open Sic_sim

let compiled c = Compiled.create (Sic_passes.Compile.lower c)

let poke_int b name ~width v = b.Backend.poke name (Bv.of_int ~width v)
let peek_int b name = Bv.to_int_trunc (b.Backend.peek name)

let test_counter () =
  let b = compiled (Sic_designs.Counter.circuit ~width:8 ~limit:3 ()) in
  Backend.reset_sequence b;
  poke_int b "en" ~width:1 1;
  Alcotest.(check int) "starts at 0" 0 (peek_int b "value");
  b.Backend.step 3;
  Alcotest.(check int) "counts to 3" 3 (peek_int b "value");
  Alcotest.(check int) "tick on limit" 1 (peek_int b "tick");
  b.Backend.step 1;
  Alcotest.(check int) "wraps" 0 (peek_int b "value");
  poke_int b "en" ~width:1 0;
  b.Backend.step 5;
  Alcotest.(check int) "holds when disabled" 0 (peek_int b "value")

let test_fifo () =
  let b = compiled (Sic_designs.Fifo.circuit ~width:8 ~depth:4 ()) in
  Backend.reset_sequence b;
  (* fill completely *)
  poke_int b "io_enq_valid" ~width:1 1;
  poke_int b "io_deq_ready" ~width:1 0;
  List.iteri
    (fun i v ->
      poke_int b "io_enq_bits" ~width:8 v;
      Alcotest.(check int) (Printf.sprintf "ready while filling %d" i) 1 (peek_int b "io_enq_ready");
      b.Backend.step 1)
    [ 11; 22; 33; 44 ];
  Alcotest.(check int) "full: not ready" 0 (peek_int b "io_enq_ready");
  Alcotest.(check int) "count 4" 4 (peek_int b "io_count");
  (* drain in order *)
  poke_int b "io_enq_valid" ~width:1 0;
  poke_int b "io_deq_ready" ~width:1 1;
  List.iter
    (fun v ->
      Alcotest.(check int) "valid while draining" 1 (peek_int b "io_deq_valid");
      Alcotest.(check int) "fifo order" v (peek_int b "io_deq_bits");
      b.Backend.step 1)
    [ 11; 22; 33; 44 ];
  Alcotest.(check int) "empty: not valid" 0 (peek_int b "io_deq_valid");
  Alcotest.(check int) "count 0" 0 (peek_int b "io_count")

let test_tlram () =
  let b = compiled (Sic_designs.Tlram.circuit ~addr_bits:4 ()) in
  Backend.reset_sequence b;
  let request ~put ~addr ~data =
    poke_int b "io_a_valid" ~width:1 1;
    poke_int b "io_a_bits" ~width:37 ((data lsl 5) lor (addr lsl 1) lor if put then 1 else 0);
    poke_int b "io_d_ready" ~width:1 1;
    b.Backend.step 1;
    poke_int b "io_a_valid" ~width:1 0;
    let rec wait n =
      if n = 0 then Alcotest.fail "no response"
      else if peek_int b "io_d_valid" = 1 then begin
        let bits = peek_int b "io_d_bits" in
        b.Backend.step 1;
        bits
      end
      else begin
        b.Backend.step 1;
        wait (n - 1)
      end
    in
    wait 10
  in
  let resp = request ~put:true ~addr:3 ~data:0xBEEF in
  Alcotest.(check int) "put response opcode" 1 (resp lsr 32);
  let resp = request ~put:false ~addr:3 ~data:0 in
  Alcotest.(check int) "get returns written data" 0xBEEF (resp land 0xFFFFFFFF);
  let resp = request ~put:false ~addr:5 ~data:0 in
  Alcotest.(check int) "unwritten word is zero" 0 (resp land 0xFFFFFFFF)

let test_serv () =
  let b = compiled (Sic_designs.Serv.circuit ()) in
  Backend.reset_sequence b;
  let execute op a bb =
    poke_int b "io_req_valid" ~width:1 1;
    b.Backend.poke "io_req_bits"
      (Bv.logor ~width:67
         (Bv.shift_left ~width:67 (Bv.of_int ~width:67 bb) 35)
         (Bv.logor ~width:67
            (Bv.shift_left ~width:67 (Bv.of_int ~width:67 a) 3)
            (Bv.of_int ~width:67 op)));
    poke_int b "io_resp_ready" ~width:1 1;
    b.Backend.step 1;
    poke_int b "io_req_valid" ~width:1 0;
    let rec wait n =
      if n = 0 then Alcotest.fail "serv did not finish"
      else if peek_int b "io_resp_valid" = 1 then begin
        let v = peek_int b "io_resp_bits" in
        b.Backend.step 1;
        v
      end
      else begin
        b.Backend.step 1;
        wait (n - 1)
      end
    in
    wait 100
  in
  Alcotest.(check int) "serial add" ((0xDEAD + 0xBEEF) land 0xFFFFFFFF) (execute 0 0xDEAD 0xBEEF);
  Alcotest.(check int) "serial sub" 0x1111 (execute 1 0x2345 0x1234);
  Alcotest.(check int) "serial and" (0xFF00 land 0x0FF0) (execute 2 0xFF00 0x0FF0);
  Alcotest.(check int) "serial or" (0xFF00 lor 0x0FF0) (execute 3 0xFF00 0x0FF0);
  Alcotest.(check int) "serial xor" (0xFF00 lxor 0x0FF0) (execute 4 0xFF00 0x0FF0)

let test_neuroproc () =
  let b = compiled (Sic_designs.Neuroproc.circuit ~neurons:8 ~threshold:40 ~leak:1 ~weight:24 ()) in
  Backend.reset_sequence b;
  poke_int b "enable" ~width:1 1;
  poke_int b "in_spikes" ~width:8 0b00000001;
  (* neuron 0 gains 24 - 1 per cycle; it must cross 40 and fire within a
     few cycles, and only neuron 0 may ever fire *)
  let fired = ref 0 in
  for _ = 1 to 16 do
    b.Backend.step 1;
    fired := !fired lor peek_int b "out_spikes"
  done;
  Alcotest.(check int) "exactly neuron 0 fired" 1 !fired;
  (* without input the potential leaks away and firing stops for good *)
  poke_int b "in_spikes" ~width:8 0;
  b.Backend.step 64;
  let still = ref 0 in
  for _ = 1 to 16 do
    b.Backend.step 1;
    still := !still lor peek_int b "out_spikes"
  done;
  Alcotest.(check int) "firing stops after decay" 0 !still

let test_uart_loopback () =
  let b = compiled (Sic_designs.Uart.circuit ~div:4 ()) in
  Backend.reset_sequence b;
  poke_int b "loopback" ~width:1 1;
  poke_int b "rxd" ~width:1 1;
  poke_int b "io_out_ready" ~width:1 1;
  poke_int b "io_in_valid" ~width:1 1;
  poke_int b "io_in_bits" ~width:8 0xA5;
  b.Backend.step 1;
  poke_int b "io_in_valid" ~width:1 0;
  let rec wait n =
    if n = 0 then Alcotest.fail "uart: no byte received"
    else if peek_int b "io_out_valid" = 1 then peek_int b "io_out_bits"
    else begin
      b.Backend.step 1;
      wait (n - 1)
    end
  in
  Alcotest.(check int) "loopback byte" 0xA5 (wait 500)

let test_i2c () =
  let b = compiled (Sic_designs.I2c.circuit ~div:2 ()) in
  Backend.reset_sequence b;
  poke_int b "sda_in" ~width:1 0;
  (* slave acks *)
  poke_int b "io_resp_ready" ~width:1 1;
  poke_int b "io_cmd_valid" ~width:1 1;
  (* write to address 0x42, data 0x55 *)
  poke_int b "io_cmd_bits" ~width:16 ((0x42 lsl 9) lor 0x55);
  b.Backend.step 1;
  poke_int b "io_cmd_valid" ~width:1 0;
  Alcotest.(check int) "busy during transaction" 1 (peek_int b "busy");
  let rec wait n =
    if n = 0 then Alcotest.fail "i2c: transaction never completed"
    else if peek_int b "busy" = 0 then ()
    else begin
      b.Backend.step 1;
      wait (n - 1)
    end
  in
  wait 500;
  Alcotest.(check int) "acked write: no nack" 0 (peek_int b "nack_seen")

(* run a small program: sum 1..5 into x3, store to dmem[2], load back into
   x4, then loop forever *)
let riscv_program =
  let open Sic_designs.Riscv_mini in
  [
    addi 1 0 5;
    (* x1 = 5 *)
    addi 2 0 0;
    (* x2 = 0 (counter) *)
    addi 3 0 0;
    (* x3 = 0 (sum) *)
    (* loop: *)
    add 3 3 2;
    (* x3 += x2 *)
    addi 2 2 1;
    (* x2 += 1 *)
    bne 2 1 (-8);
    (* while x2 != x1 : adds 0+1+2+3+4 = 10... *)
    add 3 3 1;
    (* x3 += 5 -> 15 *)
    sw 3 0 8;
    (* dmem[2] = x3 *)
    lw 4 0 8;
    (* x4 = dmem[2] *)
    jal 0 0;
    (* spin *)
  ]

let load_program b program =
  List.iteri
    (fun i inst ->
      poke_int b "iload_en" ~width:1 1;
      poke_int b "iload_addr" ~width:6 i;
      b.Backend.poke "iload_data" (Bv.of_int ~width:32 inst);
      b.Backend.step 1)
    program;
  poke_int b "iload_en" ~width:1 0

let test_riscv_mini () =
  let low = Sic_passes.Compile.lower (Sic_designs.Riscv_mini.circuit ()) in
  let b = Compiled.create low in
  Backend.reset_sequence b;
  poke_int b "run" ~width:1 0;
  load_program b riscv_program;
  poke_int b "run" ~width:1 1;
  b.Backend.step 400;
  (* the program stored 1+2+3+4+5 = 15 to dmem word 2 and spins *)
  poke_int b "dbg_addr" ~width:6 2;
  Alcotest.(check int) "dmem[2] = sum 1..5" 15 (peek_int b "dbg_data");
  (* the final jal spins at pc = 9*4 = 36 *)
  Alcotest.(check int) "pc spinning on jal" 36 (peek_int b "pc_out")

let test_arbiter () =
  let b = compiled (Sic_designs.Arbiter.circuit ~ports:4 ~width:8 ()) in
  Backend.reset_sequence b;
  poke_int b "io_out_ready" ~width:1 1;
  (* all four request with distinct payloads *)
  for i = 0 to 3 do
    poke_int b (Printf.sprintf "io_in%d_valid" i) ~width:1 1;
    poke_int b (Printf.sprintf "io_in%d_bits" i) ~width:8 (10 * (i + 1))
  done;
  (* round-robin: last resets to 3, so the order is 0, 1, 2, 3, 0, ... *)
  let grants = ref [] in
  for _ = 1 to 8 do
    Alcotest.(check int) "output valid under full load" 1 (peek_int b "io_out_valid");
    grants := peek_int b "io_chosen" :: !grants;
    Alcotest.(check int) "payload follows winner"
      (10 * (peek_int b "io_chosen" + 1))
      (peek_int b "io_out_bits");
    b.Backend.step 1
  done;
  Alcotest.(check (list int)) "fair rotation" [ 0; 1; 2; 3; 0; 1; 2; 3 ] (List.rev !grants);
  (* only requester 2 valid: it gets served regardless of rotation *)
  for i = 0 to 3 do
    poke_int b (Printf.sprintf "io_in%d_valid" i) ~width:1 (if i = 2 then 1 else 0)
  done;
  b.Backend.step 1;
  Alcotest.(check int) "solo requester wins" 2 (peek_int b "io_chosen");
  Alcotest.(check int) "solo requester ready" 1 (peek_int b "io_in2_ready");
  Alcotest.(check int) "others not ready" 0 (peek_int b "io_in0_ready");
  (* nobody valid: output idles *)
  for i = 0 to 3 do
    poke_int b (Printf.sprintf "io_in%d_valid" i) ~width:1 0
  done;
  b.Backend.step 1;
  Alcotest.(check int) "idle when no requests" 0 (peek_int b "io_out_valid")

let test_matmul () =
  let n = 3 in
  let b = compiled (Sic_designs.Matmul.circuit ~n ~width:8 ()) in
  Backend.reset_sequence b;
  let a_mat = [| [| 1; 2; 3 |]; [| 4; 5; 6 |]; [| 7; 8; 9 |] |] in
  let b_mat = [| [| 9; 8; 7 |]; [| 6; 5; 4 |]; [| 3; 2; 1 |] |] in
  (* stream A then B *)
  poke_int b "io_result_ready" ~width:1 0;
  let feed v =
    poke_int b "io_load_valid" ~width:1 1;
    poke_int b "io_load_bits" ~width:8 v;
    let rec wait k =
      if k = 0 then Alcotest.fail "load never accepted"
      else if peek_int b "io_load_ready" = 1 then b.Backend.step 1
      else begin
        b.Backend.step 1;
        wait (k - 1)
      end
    in
    wait 50
  in
  Array.iter (fun row -> Array.iter feed row) a_mat;
  Array.iter (fun row -> Array.iter feed row) b_mat;
  poke_int b "io_load_valid" ~width:1 0;
  (* wait for drain, then read n*n results *)
  poke_int b "io_result_ready" ~width:1 1;
  let read () =
    let rec wait k =
      if k = 0 then Alcotest.fail "no result"
      else if peek_int b "io_result_valid" = 1 then begin
        let v = peek_int b "io_result_bits" in
        b.Backend.step 1;
        v
      end
      else begin
        b.Backend.step 1;
        wait (k - 1)
      end
    in
    wait 100
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let expected = ref 0 in
      for k = 0 to n - 1 do
        expected := !expected + (a_mat.(i).(k) * b_mat.(k).(j))
      done;
      Alcotest.(check int) (Printf.sprintf "C[%d][%d]" i j) !expected (read ())
    done
  done;
  Alcotest.(check int) "back to idle" 0 (peek_int b "busy")

let test_memsys () =
  let p = Sic_designs.Memsys.default_params in
  let aw = p.Sic_designs.Memsys.index_bits + p.Sic_designs.Memsys.tag_bits in
  let b = compiled (Sic_designs.Memsys.circuit ()) in
  Backend.reset_sequence b;
  poke_int b "io_resp_ready" ~width:1 1;
  let transact ~rw ~addr ~data =
    poke_int b "io_req_valid" ~width:1 1;
    b.Backend.poke "io_req_bits"
      (Bv.of_int ~width:(1 + aw + 32) ((data lsl (aw + 1)) lor (rw lsl aw) lor addr));
    let rec accept k =
      if k = 0 then Alcotest.fail "request never accepted"
      else if peek_int b "io_req_ready" = 1 then b.Backend.step 1
      else begin
        b.Backend.step 1;
        accept (k - 1)
      end
    in
    accept 100;
    poke_int b "io_req_valid" ~width:1 0;
    let start = b.Backend.cycles () in
    let rec wait k =
      if k = 0 then Alcotest.fail "no response"
      else if peek_int b "io_resp_valid" = 1 then begin
        let v = peek_int b "io_resp_bits" in
        b.Backend.step 1;
        (v, b.Backend.cycles () - start)
      end
      else begin
        b.Backend.step 1;
        wait (k - 1)
      end
    in
    wait 100
  in
  (* write 0xCAFE to address 9 (write-through: a miss-path DRAM access) *)
  let _, _ = transact ~rw:1 ~addr:9 ~data:0xCAFE in
  (* first read: miss, slow (DRAM latency) *)
  let v1, t_miss = transact ~rw:0 ~addr:9 ~data:0 in
  Alcotest.(check int) "read returns written value" 0xCAFE v1;
  (* second read: hit, fast *)
  let v2, t_hit = transact ~rw:0 ~addr:9 ~data:0 in
  Alcotest.(check int) "hit returns same value" 0xCAFE v2;
  Alcotest.(check bool)
    (Printf.sprintf "hit (%d cyc) much faster than miss (%d cyc)" t_hit t_miss)
    true
    (t_hit + 4 <= t_miss);
  Alcotest.(check int) "one hit counted" 1 (peek_int b "hit_count");
  (* conflicting index with a different tag evicts: read addr 9 + 2^index_bits *)
  let conflict = 9 + (1 lsl p.Sic_designs.Memsys.index_bits) in
  let v3, _ = transact ~rw:0 ~addr:conflict ~data:0 in
  Alcotest.(check int) "unwritten dram word is zero" 0 v3;
  let v4, t4 = transact ~rw:0 ~addr:9 ~data:0 in
  Alcotest.(check int) "evicted line refetches correct data" 0xCAFE v4;
  Alcotest.(check bool) "refetch is a miss again" true (t4 >= t_miss - 2)

let tests =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "arbiter round-robin" `Quick test_arbiter;
    Alcotest.test_case "matmul accelerator" `Quick test_matmul;
    Alcotest.test_case "memsys: cache + dram" `Quick test_memsys;
    Alcotest.test_case "fifo" `Quick test_fifo;
    Alcotest.test_case "tlram" `Quick test_tlram;
    Alcotest.test_case "serv" `Quick test_serv;
    Alcotest.test_case "neuroproc" `Quick test_neuroproc;
    Alcotest.test_case "uart loopback" `Quick test_uart_loopback;
    Alcotest.test_case "i2c transaction" `Quick test_i2c;
    Alcotest.test_case "riscv-mini program" `Quick test_riscv_mini;
  ]
