(** Model-based and differential property tests:

    - the FIFO against an OCaml [Queue] model under random enq/deq traffic;
    - the bit-serial SERV core against native integer arithmetic;
    - randomly generated circuits run on all three software backends with
      random stimulus, checking outputs and cover counts agree. *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
open Sic_ir
open Sic_sim
open Helpers

(* --- FIFO vs Queue model ---------------------------------------------- *)

let fifo_low = lazy (lower (Sic_designs.Fifo.circuit ~width:8 ~depth:4 ()))

let fifo_model_test =
  QCheck.Test.make ~count:60 ~name:"fifo agrees with a Queue model"
    QCheck.(pair small_int (list (pair bool (int_bound 255))))
    (fun (seed, ops) ->
      ignore seed;
      let b = Compiled.create (Lazy.force fifo_low) in
      Backend.reset_sequence b;
      let model = Queue.create () in
      let ok = ref true in
      List.iter
        (fun (do_deq, v) ->
          (* drive: always try to enqueue v, dequeue when do_deq *)
          b.Backend.poke "io_enq_valid" (Bv.one 1);
          b.Backend.poke "io_enq_bits" (Bv.of_int ~width:8 v);
          b.Backend.poke "io_deq_ready" (Bv.of_bool do_deq);
          (* sample the handshakes before the clock edge *)
          let enq_fire = Bv.to_bool (b.Backend.peek "io_enq_ready") in
          let deq_fire = do_deq && Bv.to_bool (b.Backend.peek "io_deq_valid") in
          let deq_bits = Bv.to_int_trunc (b.Backend.peek "io_deq_bits") in
          let count = Bv.to_int_trunc (b.Backend.peek "io_count") in
          if count <> Queue.length model then ok := false;
          if deq_fire then begin
            let expected = Queue.pop model in
            if deq_bits <> expected then ok := false
          end;
          if enq_fire then Queue.push v model;
          b.Backend.step 1)
        ops;
      !ok)

(* --- SERV vs native arithmetic ----------------------------------------- *)

let serv_low = lazy (lower (Sic_designs.Serv.circuit ()))

let serv_reference op a b =
  match op with
  | 0 -> (a + b) land 0xFFFFFFFF
  | 1 -> (a - b) land 0xFFFFFFFF
  | 2 -> a land b
  | 3 -> a lor b
  | _ -> a lxor b

let serv_model_test =
  QCheck.Test.make ~count:40 ~name:"serv agrees with native arithmetic"
    QCheck.(triple (int_bound 4) (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))
    (fun (op, a, v) ->
      let b = Compiled.create (Lazy.force serv_low) in
      Backend.reset_sequence b;
      b.Backend.poke "io_resp_ready" (Bv.one 1);
      b.Backend.poke "io_req_valid" (Bv.one 1);
      b.Backend.poke "io_req_bits"
        (Bv.logor ~width:67
           (Bv.shift_left ~width:67 (Bv.of_int ~width:67 v) 35)
           (Bv.logor ~width:67
              (Bv.shift_left ~width:67 (Bv.of_int ~width:67 a) 3)
              (Bv.of_int ~width:67 op)));
      b.Backend.step 1;
      b.Backend.poke "io_req_valid" (Bv.zero 1);
      let rec wait n =
        if n = 0 then false
        else if Bv.to_bool (b.Backend.peek "io_resp_valid") then
          Bv.to_int_trunc (b.Backend.peek "io_resp_bits") = serv_reference op a v
        else begin
          b.Backend.step 1;
          wait (n - 1)
        end
      in
      wait 100)

(* --- memory system vs a flat reference model ---------------------------- *)

let memsys_low = lazy (lower (Sic_designs.Memsys.circuit ()))

let memsys_model_test =
  let p = Sic_designs.Memsys.default_params in
  let aw = p.Sic_designs.Memsys.index_bits + p.Sic_designs.Memsys.tag_bits in
  QCheck.Test.make ~count:25 ~name:"memsys agrees with a flat memory model"
    QCheck.(small_list (triple bool (int_bound ((1 lsl 8) - 1)) (int_bound 0xFFFF)))
    (fun ops ->
      let b = Compiled.create (Lazy.force memsys_low) in
      Backend.reset_sequence b;
      b.Backend.poke "io_resp_ready" (Bv.one 1);
      let model = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun (write, addr, data) ->
          let addr = addr land ((1 lsl aw) - 1) in
          b.Backend.poke "io_req_valid" (Bv.one 1);
          b.Backend.poke "io_req_bits"
            (Bv.of_int ~width:(1 + aw + 32)
               ((data lsl (aw + 1)) lor ((if write then 1 else 0) lsl aw) lor addr));
          let rec accept k =
            if k = 0 then ok := false
            else if Bv.to_bool (b.Backend.peek "io_req_ready") then b.Backend.step 1
            else begin
              b.Backend.step 1;
              accept (k - 1)
            end
          in
          accept 100;
          b.Backend.poke "io_req_valid" (Bv.zero 1);
          let rec wait k =
            if k = 0 then ok := false
            else if Bv.to_bool (b.Backend.peek "io_resp_valid") then begin
              let v = Bv.to_int_trunc (b.Backend.peek "io_resp_bits") in
              if not write then begin
                let expected = Option.value ~default:0 (Hashtbl.find_opt model addr) in
                if v <> expected then ok := false
              end;
              b.Backend.step 1
            end
            else begin
              b.Backend.step 1;
              wait (k - 1)
            end
          in
          wait 100;
          if write then Hashtbl.replace model addr data)
        ops;
      !ok)

(* --- word-level (native-int) op semantics vs the Bv reference ----------- *)

(* Boundary widths around the int path's 62-bit applicability limit: 63/64
   force the wide fallback, so these cases pin the [Eval.Int.fits]
   classification itself; everything below exercises the masked-pattern
   arithmetic including both limb boundaries of the Bv representation. *)
let boundary_widths = [| 1; 4; 8; 31; 32; 62; 63; 64 |]

let gen_boundary_case =
  QCheck.Gen.(
    let* wa = oneofa boundary_widths in
    let* wb = oneofa boundary_widths in
    let* signed = bool in
    let* seeds = list_size (return 12) (int_bound ((1 lsl 30) - 1)) in
    return (wa, wb, signed, seeds))

let arb_boundary_case =
  QCheck.make
    ~print:(fun (wa, wb, signed, _) -> Printf.sprintf "wa=%d wb=%d signed=%b" wa wb signed)
    gen_boundary_case

let bv_of_seeds seeds w =
  let arr = Array.of_list seeds in
  let i = ref (-1) in
  Bv.random ~width:w (fun () ->
      incr i;
      arr.(!i mod Array.length arr))

let int_binop_matches_bv =
  QCheck.Test.make ~count:400 ~name:"Eval.Int.binop matches Eval.binop at boundary widths"
    arb_boundary_case
    (fun (wa, wb, signed, seeds) ->
      let a = bv_of_seeds seeds wa in
      let b = bv_of_seeds (List.rev seeds) wb in
      let ta = if signed then Ty.SInt wa else Ty.UInt wa in
      let tb = if signed then Ty.SInt wb else Ty.UInt wb in
      let agree op ta tb a b =
        let wr = Ty.width (Expr.binop_ty op ta tb) in
        (not (Eval.Int.fits (Ty.width ta) && Eval.Int.fits (Ty.width tb) && Eval.Int.fits wr))
        || Bv.to_int_trunc (Eval.binop op ~ta ~tb a b)
           = Eval.Int.binop op ~ta ~tb (Bv.to_int_trunc a) (Bv.to_int_trunc b)
      in
      let shifted op =
        (* dynamic shift amounts are unsigned and small *)
        let wbs = min wb 4 in
        agree op ta (Ty.UInt wbs) a (Bv.extend_u b wbs)
      in
      List.for_all
        (fun op -> agree op ta tb a b)
        [
          Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Rem; Expr.Lt; Expr.Leq; Expr.Gt;
          Expr.Geq; Expr.Eq; Expr.Neq; Expr.And; Expr.Or; Expr.Xor; Expr.Cat;
        ]
      && shifted Expr.Dshl && shifted Expr.Dshr)

let int_unop_matches_bv =
  QCheck.Test.make ~count:400 ~name:"Eval.Int unop/intop/bits match Eval at boundary widths"
    arb_boundary_case
    (fun (wa, _wb, signed, seeds) ->
      let a = bv_of_seeds seeds wa in
      let ta = if signed then Ty.SInt wa else Ty.UInt wa in
      let pat = Bv.to_int_trunc a in
      let wr_un op =
        match op with
        | Expr.Not | Expr.AsUInt | Expr.AsSInt -> wa
        | Expr.Andr | Expr.Orr | Expr.Xorr -> 1
        | Expr.Neg -> wa + 1
        | Expr.Cvt -> if signed then wa else wa + 1
      in
      let agree_un op =
        (not (Eval.Int.fits wa && Eval.Int.fits (wr_un op)))
        || Bv.to_int_trunc (Eval.unop op ~ta a) = Eval.Int.unop op ~ta pat
      in
      let wr_int op n =
        match op with
        | Expr.Pad -> max wa n
        | Expr.Shl -> wa + n
        | Expr.Shr -> max 1 (wa - n)
        | Expr.Head -> n
        | Expr.Tail -> wa - n
      in
      let agree_int op n =
        (not (Eval.Int.fits wa && Eval.Int.fits (wr_int op n)))
        || Bv.to_int_trunc (Eval.intop op n ~ta a) = Eval.Int.intop op n ~ta pat
      in
      let n_small = List.hd seeds mod 5 in
      let n_ht = 1 + (List.hd seeds mod max 1 (wa - 1)) in
      List.for_all agree_un
        [
          Expr.Not; Expr.Andr; Expr.Orr; Expr.Xorr; Expr.Neg; Expr.Cvt; Expr.AsUInt;
          Expr.AsSInt;
        ]
      && agree_int Expr.Pad (1 + (n_small * 16))
      && agree_int Expr.Shl n_small
      && agree_int Expr.Shr n_small
      && agree_int Expr.Shr (wa + 3)
      && agree_int Expr.Head n_ht
      && agree_int Expr.Tail n_ht
      &&
      let lo = List.hd seeds mod wa in
      let hi = lo + (List.nth seeds 1 mod (wa - lo)) in
      (not (Eval.Int.fits wa))
      || Bv.to_int_trunc (Eval.bits ~hi ~lo a) = Eval.Int.bits ~hi ~lo pat)

(* --- random circuits, differential across backends ---------------------- *)

(* Build a random low-form-ish circuit from random expressions over a few
   inputs and registers; Check validates it, backends must then agree. *)
let gen_random_circuit : Circuit.t QCheck.Gen.t =
  let open QCheck.Gen in
  let vars =
    [ ("in_a", Ty.UInt 8); ("in_b", Ty.UInt 4); ("in_c", Ty.UInt 1); ("r0", Ty.UInt 8); ("r1", Ty.UInt 3) ]
  in
  let* exprs = list_size (int_range 3 8) (gen_expr ~vars) in
  let* reg_drive0 = gen_expr ~vars in
  let* reg_drive1 = gen_expr ~vars in
  return
    (let cb = Dsl.create_circuit "Rand" in
     Dsl.module_ cb "Rand" (fun m ->
         let open Dsl in
         let _ = input m "in_a" (Ty.UInt 8) in
         let _ = input m "in_b" (Ty.UInt 4) in
         let _ = input m "in_c" (Ty.UInt 1) in
         let r0 = reg_init m "r0" (lit 8 0) in
         let r1 = reg_init m "r1" (lit 3 0) in
         (* registers fold random expressions back into state *)
         let ty_of n = List.assoc n vars in
         let drive reg e w =
           match Expr.type_of ty_of e with
           | exception Expr.Type_error _ -> ()
           | ty ->
               ignore ty;
               connect m reg (resize (as_uint { expr = e; ty = Expr.type_of ty_of e }) w)
         in
         drive r0 reg_drive0 8;
         drive r1 reg_drive1 3;
         (* outputs observe every expression (xor-folded to 16 bits) *)
         let out = output m "out" (Ty.UInt 16) in
         let folded =
           List.fold_left
             (fun acc e ->
               match Expr.type_of ty_of e with
               | exception Expr.Type_error _ -> acc
               | ty -> acc ^: resize (as_uint { expr = e; ty }) 16)
             (lit 16 0) exprs
         in
         connect m out folded;
         (* and a cover watching a random condition *)
         (match exprs with
         | e :: _ -> (
             match Expr.type_of ty_of e with
             | exception Expr.Type_error _ -> ()
             | ty -> cover m "watch" (orr_s { expr = e; ty }))
         | [] -> ()));
     Dsl.finalize cb)

let random_circuit_differential =
  QCheck.Test.make ~count:60 ~name:"random circuits: three backends agree"
    (QCheck.make ~print:(fun c -> Printer.circuit_to_string c) gen_random_circuit)
    (fun c ->
      match lower c with
      | exception _ -> QCheck.assume_fail ()
      | low ->
          let run create =
            let b = create low in
            let rng = Sic_fuzz.Rng.create 7 in
            Backend.reset_sequence b;
            let obs = Buffer.create 128 in
            for _ = 1 to 30 do
              List.iter
                (fun (n, ty) ->
                  b.Backend.poke n (Bv.random ~width:(Ty.width ty) (Sic_fuzz.Rng.bits30 rng)))
                (Backend.data_inputs b);
              Buffer.add_string obs (Bv.to_hex_string (b.Backend.peek "out"));
              b.Backend.step 1
            done;
            (Buffer.contents obs, b.Backend.counts ())
          in
          let o1, c1 = run Interp.create in
          let o2, c2 = run (fun c -> Compiled.create c) in
          let o3, c3 = run Essent.create in
          String.equal o1 o2 && String.equal o2 o3 && Counts.equal c1 c2 && Counts.equal c2 c3)

(* --- lane engine: per-lane counts vs solo scalar runs ------------------- *)

(* A width-parametrized design exercising every lane storage class at the
   boundary widths: packed planes (w = 1 signals and covers), strided
   narrow slots (w <= 62) and per-lane Bv rows (w > 62). *)
let lane_width_circuit w =
  let cb = Dsl.create_circuit "LaneW" in
  Dsl.module_ cb "LaneW" (fun m ->
      let open Dsl in
      let a = input m "in_a" (Ty.UInt w) in
      let b = input m "in_b" (Ty.UInt w) in
      let c = input m "in_c" (Ty.UInt 1) in
      let r = reg_init m "acc" (lit w 0) in
      connect m r (resize (mux_s c (a +: b) (a ^: r)) w);
      let out = output m "out" (Ty.UInt w) in
      connect m out r;
      cover m "gt" (a >: b);
      cover m "eq" (a ==: b);
      cover m "bit" c;
      cover m "parity" (xorr_s r));
  Dsl.finalize cb

(* The exactness oracle of the bit-parallel engine: counts are a property
   of the value stream, so lane [l] driven by stream [l] must be
   [Counts.equal] to a solo scalar run over the very same stream — checked
   against both scheduler modes (compiled = plain, essent = activity). *)
let lanes_per_lane_differential =
  QCheck.Test.make ~count:25 ~name:"lanes: per-lane counts equal solo runs"
    QCheck.(pair (oneofa [| 1; 31; 62; 63; 64 |]) small_int)
    (fun (w, seed) ->
      let low = lower (lane_width_circuit w) in
      let k = 5 and cycles = 30 in
      let stream l = Sic_fuzz.Rng.bits30 (Sic_fuzz.Rng.split (Sic_fuzz.Rng.create seed) l) in
      let lt = Sic_sim.Lanes.build ~lanes:k low in
      Backend.reset_sequence (Sic_sim.Lanes.to_backend ~name:"lanes" lt);
      Sic_sim.Lanes.run_random lt ~streams:(Array.init k stream) ~cycles;
      let solo create l =
        let b = create low in
        Backend.reset_sequence b;
        Backend.random_stimulus ~bits:(stream l) ~cycles b;
        b.Backend.counts ()
      in
      let ok = ref true in
      for l = 0 to k - 1 do
        let lc = Sic_sim.Lanes.lane_counts lt l in
        if not (Counts.equal lc (solo (fun c -> Compiled.create c) l)) then
          ok := false;
        if not (Counts.equal lc (solo Essent.create l)) then ok := false
      done;
      !ok)

(* the parser also round-trips random circuits *)
let random_circuit_roundtrip =
  QCheck.Test.make ~count:60 ~name:"random circuits: print/parse round-trip"
    (QCheck.make ~print:(fun c -> Printer.circuit_to_string c) gen_random_circuit)
    (fun c ->
      let s1 = Printer.circuit_to_string c in
      let c2 = Parser.parse_circuit s1 in
      String.equal s1 (Printer.circuit_to_string c2))

(* --- when-lowering vs a direct reference executor ----------------------- *)

(* A tiny oracle that executes HIGH-FORM semantics directly: statements in
   order, last connect under a true path-condition wins, registers update
   at the edge. Independent of lower_whens — so agreement is real
   evidence. Supports the subset the generator below emits. *)
module Oracle = struct
  open Sic_ir

  type t = {
    body : Stmt.t list;
    ty_of : string -> Ty.t;
    values : (string, Bv.t) Hashtbl.t;  (* inputs + current regs *)
    regs : (string * (Expr.t * Expr.t) option) list;
  }

  let create (c : Circuit.t) =
    let m = Circuit.main c in
    let env = Circuit.build_env m in
    let regs = ref [] in
    Stmt.iter
      (fun s ->
        match s with
        | Stmt.Reg { name; reset; _ } -> regs := (name, reset) :: !regs
        | _ -> ())
      m.Circuit.body;
    let t =
      {
        body = m.Circuit.body;
        ty_of = Circuit.lookup_of env;
        values = Hashtbl.create 32;
        regs = !regs;
      }
    in
    List.iter
      (fun (r, _) -> Hashtbl.replace t.values r (Bv.zero (Ty.width (t.ty_of r))))
      t.regs;
    t

  (* one settling pass: evaluate the statement list sequentially into a
     sink table; nodes are bound as seen; references to sinks read the
     FINAL sink value, so we iterate to a fixpoint (bounded) *)
  let settle t =
    let sinks : (string, Bv.t) Hashtbl.t = Hashtbl.create 32 in
    let nodes : (string, Bv.t) Hashtbl.t = Hashtbl.create 32 in
    let is_reg n = List.mem_assoc n t.regs in
    let lookup n =
      match Hashtbl.find_opt nodes n with
      | Some v -> v
      | None ->
          (* a connect to a register sets its NEXT value; reads see the
             current state — wires read their final connected value *)
          if is_reg n then Hashtbl.find t.values n
          else (
            match Hashtbl.find_opt sinks n with
            | Some v -> v
            | None -> (
                match Hashtbl.find_opt t.values n with
                | Some v -> v
                | None -> Bv.zero (Ty.width (t.ty_of n))))
    in
    let eval e = Eval.eval ~ty_of:t.ty_of ~value_of:lookup e in
    let rec exec stmts =
      List.iter
        (fun (s : Stmt.t) ->
          match s with
          | Stmt.Node { name; expr; _ } -> Hashtbl.replace nodes name (eval expr)
          | Stmt.Connect { loc; expr; _ } -> Hashtbl.replace sinks loc (eval expr)
          | Stmt.When { cond; then_; else_; _ } ->
              if Bv.to_bool (eval cond) then exec then_ else exec else_
          | _ -> ())
        stmts
    in
    (* iterate: wires read through sinks may depend on later connects *)
    for _ = 1 to 4 do
      Hashtbl.reset nodes;
      exec t.body
    done;
    (sinks, lookup)

  let peek t name =
    let _, lookup = settle t in
    lookup name

  let step t =
    let sinks, lookup = settle t in
    let next =
      List.map
        (fun (r, reset) ->
          let base = match Hashtbl.find_opt sinks r with Some v -> v | None -> lookup r in
          let v =
            match reset with
            | Some (rst, init) ->
                if Bv.to_bool (Eval.eval ~ty_of:t.ty_of ~value_of:lookup rst) then
                  Eval.eval ~ty_of:t.ty_of ~value_of:lookup init
                else base
            | None -> base
          in
          (r, v))
        t.regs
    in
    List.iter (fun (r, v) -> Hashtbl.replace t.values r v) next

  let poke t n v = Hashtbl.replace t.values n v
end

(* random when-trees over a few inputs, one register, one output *)
let gen_when_circuit : Sic_ir.Circuit.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Sic_ir in
  let rec gen_block depth m (sigs : Dsl.signal list) (sinks : Dsl.signal list) st =
    let n_stmts = 1 + int_bound 3 st in
    for _ = 1 to n_stmts do
      match if depth = 0 then 0 else int_bound 3 st with
      | 0 | 1 ->
          (* connect a random sink to a random small expression *)
          let sink = List.nth sinks (int_bound (List.length sinks - 1) st) in
          let a = List.nth sigs (int_bound (List.length sigs - 1) st) in
          let b = List.nth sigs (int_bound (List.length sigs - 1) st) in
          let open Dsl in
          let e =
            match int_bound 3 st with
            | 0 -> resize (a +: b) 4
            | 1 -> resize (a ^: b) 4
            | 2 -> resize (mux_s (orr_s a) a b) 4
            | _ -> resize a 4
          in
          Dsl.connect m sink e
      | 2 ->
          (* nested when *)
          let c = List.nth sigs (int_bound (List.length sigs - 1) st) in
          Dsl.when_else m (Dsl.orr_s c)
            (fun () -> gen_block (depth - 1) m sigs sinks st)
            (fun () -> gen_block (depth - 1) m sigs sinks st)
      | _ ->
          (* a new node joins the signal pool for later statements *)
          let a = List.nth sigs (int_bound (List.length sigs - 1) st) in
          ignore (Dsl.node m "n" (Dsl.resize (Dsl.not_s a) 4))
    done
  in
  fun st ->
    let cb = Dsl.create_circuit "WhenRand" in
    Dsl.module_ cb "WhenRand" (fun m ->
        let open Dsl in
        let i0 = input m "i0" (Ty.UInt 4) in
        let i1 = input m "i1" (Ty.UInt 4) in
        let r = reg_init m "r" (lit 4 0) in
        let w = wire m "w" (Ty.UInt 4) in
        let out = output m "out" (Ty.UInt 4) in
        connect m w (i0 ^: resize i1 4);
        connect m out r;
        (* the expression pool excludes sinks, so no combinational cycles *)
        gen_block 2 m [ i0; i1; r ] [ r; w; out ] st;
        (* out must also observe w so nothing is trivially dead *)
        when_ m (orr_s w) (fun () -> connect m out (resize (w +: r) 4)));
    Dsl.finalize cb

let lower_whens_vs_oracle =
  QCheck.Test.make ~count:120 ~name:"lower-whens agrees with a direct executor"
    (QCheck.make ~print:(fun c -> Sic_ir.Printer.circuit_to_string c) gen_when_circuit)
    (fun c ->
      let low = lower c in
      let b = Compiled.create low in
      let oracle = Oracle.create c in
      let rng = Sic_fuzz.Rng.create 13 in
      let ok = ref true in
      for _ = 1 to 25 do
        let v0 = Bv.of_int ~width:4 (Sic_fuzz.Rng.int rng 16) in
        let v1 = Bv.of_int ~width:4 (Sic_fuzz.Rng.int rng 16) in
        b.Backend.poke "i0" v0;
        b.Backend.poke "i1" v1;
        Oracle.poke oracle "i0" v0;
        Oracle.poke oracle "i1" v1;
        b.Backend.poke "reset" (Bv.zero 1);
        Oracle.poke oracle "reset" (Bv.zero 1);
        if not (Bv.equal_value (b.Backend.peek "out") (Oracle.peek oracle "out")) then
          ok := false;
        b.Backend.step 1;
        Oracle.step oracle
      done;
      !ok)

let tests =
  [
    QCheck_alcotest.to_alcotest lower_whens_vs_oracle;
    QCheck_alcotest.to_alcotest int_binop_matches_bv;
    QCheck_alcotest.to_alcotest int_unop_matches_bv;
    QCheck_alcotest.to_alcotest fifo_model_test;
    QCheck_alcotest.to_alcotest serv_model_test;
    QCheck_alcotest.to_alcotest memsys_model_test;
    QCheck_alcotest.to_alcotest random_circuit_differential;
    QCheck_alcotest.to_alcotest lanes_per_lane_differential;
    QCheck_alcotest.to_alcotest random_circuit_roundtrip;
  ]
