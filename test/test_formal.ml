(** Tests for the formal backend: the CDCL SAT solver (against brute
    force), the bit-blaster (against the reference evaluator), and BMC
    cover-trace generation including the §5.5 riscv-mini experiment. *)

module Bv = Sic_bv.Bv
module Sat = Sic_formal.Sat
module Gate = Sic_formal.Gate
module Bmc = Sic_formal.Bmc
open Helpers
open Sic_ir

(* --- SAT solver ----------------------------------------------------- *)

let test_sat_basics () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Sat.add_clause s [ -a; b ];
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "b true in model" true (Sat.value s b);
  Sat.add_clause s [ -b ];
  Alcotest.(check bool) "now unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_pigeonhole () =
  (* 4 pigeons in 3 holes: classic small UNSAT instance *)
  let s = Sat.create () in
  let v = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
  Array.iter (fun row -> Sat.add_clause s (Array.to_list row)) v;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        Sat.add_clause s [ -v.(p1).(h); -v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_assumptions () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ -a; b ];
  Alcotest.(check bool) "sat under a" true (Sat.solve ~assumptions:[ a ] s = Sat.Sat);
  Alcotest.(check bool) "model has b" true (Sat.value s b);
  Sat.add_clause s [ -b ];
  Alcotest.(check bool) "unsat under a" true (Sat.solve ~assumptions:[ a ] s = Sat.Unsat);
  Alcotest.(check bool) "still sat without assumption" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "a false in model" false (Sat.value s a)

let test_sat_incremental () =
  (* solving repeatedly under different assumptions must match fresh
     solves: learned clauses stay sound across calls *)
  let nvars = 8 in
  let rng = Sic_fuzz.Rng.create 77 in
  let clauses =
    List.init 25 (fun _ ->
        List.init
          (1 + Sic_fuzz.Rng.int rng 3)
          (fun _ ->
            let v = 1 + Sic_fuzz.Rng.int rng nvars in
            if Sic_fuzz.Rng.bool rng then v else -v))
  in
  let incremental = Sat.create () in
  for _ = 1 to nvars do
    ignore (Sat.new_var incremental)
  done;
  List.iter (Sat.add_clause incremental) clauses;
  for trial = 1 to 30 do
    let assumptions =
      List.init
        (Sic_fuzz.Rng.int rng 4)
        (fun _ ->
          let v = 1 + Sic_fuzz.Rng.int rng nvars in
          if Sic_fuzz.Rng.bool rng then v else -v)
    in
    let fresh = Sat.create () in
    for _ = 1 to nvars do
      ignore (Sat.new_var fresh)
    done;
    List.iter (Sat.add_clause fresh) clauses;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d matches a fresh solver" trial)
      true
      (Sat.solve ~assumptions incremental = Sat.solve ~assumptions fresh)
  done

(* random 3-CNF, checked against brute force *)
let gen_cnf =
  QCheck.Gen.(
    let* nvars = int_range 3 10 in
    let* nclauses = int_range 1 45 in
    let lit = map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (nvars - 1)) bool in
    let* clauses = list_size (return nclauses) (list_size (int_range 1 3) lit) in
    return (nvars, clauses))

let brute_force_sat nvars clauses =
  let rec go assignment v =
    if v > nvars then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let value = List.nth assignment (abs l - 1) in
              if l > 0 then value else not value)
            clause)
        clauses
    else go (assignment @ [ true ]) (v + 1) || go (assignment @ [ false ]) (v + 1)
  in
  go [] 1

let test_sat_random =
  QCheck.Test.make ~count:200 ~name:"cdcl agrees with brute force"
    (QCheck.make gen_cnf) (fun (nvars, clauses) ->
      let s = Sat.create () in
      for _ = 1 to nvars do
        ignore (Sat.new_var s)
      done;
      List.iter (Sat.add_clause s) clauses;
      let result = Sat.solve s in
      let expected = brute_force_sat nvars clauses in
      match result with
      | Sat.Sat ->
          (* verify the model actually satisfies all clauses *)
          expected
          && List.for_all
               (fun clause ->
                 List.exists
                   (fun l -> if l > 0 then Sat.value s l else not (Sat.value s (-l)))
                   clause)
               clauses
      | Sat.Unsat -> not expected)

(* --- bit-blaster vs evaluator ---------------------------------------- *)

let test_gate_vs_eval =
  let gen =
    QCheck.Gen.(
      let* e = gen_expr ~vars:standard_vars in
      let* inputs = gen_inputs ~vars:standard_vars in
      return (e, inputs))
  in
  QCheck.Test.make ~count:300 ~name:"bit-blast equals reference eval"
    (QCheck.make ~print:(fun (e, _) -> Printer.expr_to_string e) gen)
    (fun (e, inputs) ->
      let ty_of n = List.assoc n standard_vars in
      let value_of n = List.assoc n inputs in
      match Eval.eval ~ty_of ~value_of e with
      | exception Expr.Type_error _ -> QCheck.assume_fail ()
      | expected ->
          let solver = Sat.create () in
          let ctx = Gate.create solver in
          let env = List.map (fun (n, v) -> (n, Gate.const_bits ctx v)) inputs in
          let rec blast (e : Expr.t) : Gate.bits =
            match e with
            | Expr.Ref n -> List.assoc n env
            | Expr.UIntLit v | Expr.SIntLit v -> Gate.const_bits ctx v
            | Expr.Mux (s, a, b) ->
                let sb = blast s in
                Gate.mux_bits ctx sb.(0) (blast a) (blast b)
            | Expr.Unop (op, a) -> Gate.unop ctx op ~ta:(Expr.type_of ty_of a) (blast a)
            | Expr.Binop (op, a, b) ->
                Gate.binop ctx op ~ta:(Expr.type_of ty_of a) ~tb:(Expr.type_of ty_of b)
                  (blast a) (blast b)
            | Expr.Intop (op, n, a) ->
                Gate.intop ctx op n ~ta:(Expr.type_of ty_of a) (blast a)
            | Expr.Bits (a, hi, lo) -> Gate.bits_op (blast a) ~hi ~lo
          in
          let out = blast e in
          (match Sat.solve solver with Sat.Sat -> () | Sat.Unsat -> ());
          let got = Gate.model_value ctx out in
          Bv.equal got expected)

let test_dimacs_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"dimacs export/import preserves satisfiability"
       (QCheck.make gen_cnf) (fun (nvars, clauses) ->
         let s1 = Sat.create () in
         for _ = 1 to nvars do
           ignore (Sat.new_var s1)
         done;
         List.iter (Sat.add_clause s1) clauses;
         let s2 = Sat.of_dimacs (Sat.to_dimacs s1) in
         Sat.solve s1 = Sat.solve s2))

(* exhaustive gate checks at small widths: adder and comparators over all
   4-bit operand pairs, solved as constants (no search needed) *)
let test_gate_exhaustive () =
  let solver = Sat.create () in
  let ctx = Gate.create solver in
  (match Sat.solve solver with Sat.Sat -> () | Sat.Unsat -> Alcotest.fail "trivial sat");
  for a = 0 to 15 do
    for b = 0 to 15 do
      let ba = Gate.const_bits ctx (Bv.of_int ~width:4 a) in
      let bb = Gate.const_bits ctx (Bv.of_int ~width:4 b) in
      let sum = Gate.adder ctx ba bb 5 in
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" a b)
        (a + b)
        (Bv.to_int_trunc (Gate.model_value ctx sum));
      let lt = Gate.lt_u ctx ba bb in
      Alcotest.(check bool)
        (Printf.sprintf "%d<%d" a b)
        (a < b)
        (Bv.to_bool (Gate.model_value ctx [| lt |]));
      let eq = Gate.eq_bits ctx ba bb in
      Alcotest.(check bool)
        (Printf.sprintf "%d=%d" a b)
        (a = b)
        (Bv.to_bool (Gate.model_value ctx [| eq |]))
    done
  done

(* --- BMC -------------------------------------------------------------- *)

let test_bmc_fsm () =
  (* cover state C of the Figure 7 FSM: reachable in >= 3 cycles; an
     impossible state encoding (3) is unreachable *)
  let c, _ = fsm_circuit () in
  let low = lower c in
  let low, _db = Sic_coverage.Fsm_coverage.instrument low in
  let report = Bmc.check_covers ~bound:8 low in
  let get name = List.assoc name report.Bmc.results in
  (match get "fsm_state_state_C" with
  | Bmc.Reachable trace ->
      Alcotest.(check bool) "at least 3 cycles to reach C" true
        (Sic_sim.Replay.cycles trace >= 3);
      (* replay on the interpreter and confirm the cover fires *)
      let b = Sic_sim.Interp.create low in
      Sic_sim.Replay.replay b trace;
      Alcotest.(check bool) "trace replays to cover" true
        (Sic_coverage.Counts.get (b.Sic_sim.Backend.counts ()) "fsm_state_state_C" > 0)
  | Bmc.Unreachable_within_bound -> Alcotest.fail "state C must be reachable");
  (* all legal transitions of this FSM are reachable; none is dead *)
  Alcotest.(check bool) "no unreachable points in this FSM" true
    (Bmc.unreachable report = [])

let test_bmc_unreachable () =
  (* a cover with a contradictory predicate is unreachable *)
  let cb = Dsl.create_circuit "Dead" in
  Dsl.module_ cb "Dead" (fun m ->
      let open Dsl in
      let x = input m "x" (Ty.UInt 4) in
      let out = output m "out" (Ty.UInt 4) in
      connect m out x;
      cover m "live" (x ==: lit 4 7);
      cover m "dead" ((x ==: lit 4 1) &: (x ==: lit 4 2)));
  let low = lower (Dsl.finalize cb) in
  let report = Bmc.check_covers ~bound:4 low in
  Alcotest.(check (list string)) "only the contradiction is dead" [ "dead" ]
    (Bmc.unreachable report);
  match List.assoc "live" report.Bmc.results with
  | Bmc.Reachable trace ->
      let b = Sic_sim.Interp.create low in
      Sic_sim.Replay.replay b trace;
      Alcotest.(check bool) "live trace hits cover" true
        (Sic_coverage.Counts.get (b.Sic_sim.Backend.counts ()) "live" > 0)
  | Bmc.Unreachable_within_bound -> Alcotest.fail "live must be reachable"

let test_bmc_sync_mem () =
  (* TLRAM has a synchronous-read memory: BMC must model the latched read
     address. Target: a get request returning nonzero data — needs a put
     then a get to the same address, at least ~4 cycles. *)
  let c = Sic_designs.Tlram.circuit ~addr_bits:2 () in
  let low = lower c in
  let low =
    Circuit.map_main low (fun m ->
        {
          m with
          Circuit.body =
            m.Circuit.body
            @ [
                Stmt.Cover
                  {
                    name = "nonzero_read";
                    pred =
                      Expr.and_
                        (Expr.and_ (Expr.Ref "io_d_valid") (Expr.Ref "io_d_ready"))
                        (Expr.and_
                           (Expr.Unop (Expr.Not, Expr.Bits (Expr.Ref "io_d_bits", 32, 32)))
                           (Expr.Unop (Expr.Orr, Expr.Bits (Expr.Ref "io_d_bits", 31, 0))));
                    info = Info.unknown;
                  };
              ];
        })
  in
  let report = Bmc.check_covers ~bound:8 ~covers:[ "nonzero_read" ] low in
  match List.assoc "nonzero_read" report.Bmc.results with
  | Bmc.Reachable trace ->
      (* the witness must replay identically on a software backend *)
      let b = Sic_sim.Compiled.create low in
      Sic_sim.Replay.replay b trace;
      Alcotest.(check int) "witness replays through the sync memory" 1
        (Sic_coverage.Counts.get (b.Sic_sim.Backend.counts ()) "nonzero_read")
  | Bmc.Unreachable_within_bound ->
      Alcotest.fail "a put-then-get sequence exists within 8 cycles"

(* the §5.5 experiment: the shared Cache RTL's write path is unreachable
   on the instruction cache but reachable on the data cache *)
let test_bmc_riscv_mini_icache () =
  let c = Sic_designs.Riscv_mini.circuit ~params:Sic_designs.Riscv_mini.formal_params () in
  let low = lower c in
  let low, _db = Sic_coverage.Fsm_coverage.instrument low in
  let covers =
    [
      "fsm_icache.state_state_WriteThrough";
      "fsm_dcache.state_state_Idle";
    ]
  in
  let report = Bmc.check_covers ~bound:6 ~covers low in
  Alcotest.(check (list string))
    "icache write path is dead (read-only instruction cache)"
    [ "fsm_icache.state_state_WriteThrough" ]
    (Bmc.unreachable report)

let test_induction () =
  (* the Figure-7 FSM has a 2-bit state register with only 3 legal states;
     the illegal encoding 3 holds itself, so induction proves the cover
     eq(state, 3) dead forever at k = 1 *)
  let c, _ = fsm_circuit () in
  let c =
    Circuit.map_main c (fun m ->
        {
          m with
          Circuit.body =
            m.Circuit.body
            @ [
                Stmt.Cover
                  {
                    name = "illegal_state";
                    pred = Expr.eq_ (Expr.Ref "state") (Expr.u_lit ~width:2 3);
                    info = Info.unknown;
                  };
              ];
        })
  in
  let low = lower c in
  let results = Bmc.prove_unreachable ~k:1 ~covers:[ "illegal_state" ] low in
  (match List.assoc "illegal_state" results with
  | Bmc.Dead_forever -> ()
  | Bmc.Cex_within_bound _ -> Alcotest.fail "illegal state must not be reachable"
  | Bmc.Unknown -> Alcotest.fail "k=1 induction should prove the illegal state dead");
  (* a reachable cover is reported as a counterexample by the base case *)
  let c2, _ = fsm_circuit () in
  let low2, _ = Sic_coverage.Fsm_coverage.instrument (lower c2) in
  let results2 = Bmc.prove_unreachable ~k:4 ~covers:[ "fsm_state_state_C" ] low2 in
  match List.assoc "fsm_state_state_C" results2 with
  | Bmc.Cex_within_bound t ->
      Alcotest.(check bool) "cex is a real trace" true (Sic_sim.Replay.cycles t >= 3)
  | Bmc.Dead_forever | Bmc.Unknown -> Alcotest.fail "state C is reachable"

let test_induction_icache () =
  (* induction upgrades the §5.5 result: the icache write path is dead at
     EVERY cycle, not merely within the BMC bound *)
  let c = Sic_designs.Riscv_mini.circuit ~params:Sic_designs.Riscv_mini.formal_params () in
  let low = lower c in
  let low, _ = Sic_coverage.Fsm_coverage.instrument low in
  let results =
    Bmc.prove_unreachable ~k:1 ~covers:[ "fsm_icache.state_state_WriteThrough" ] low
  in
  match List.assoc "fsm_icache.state_state_WriteThrough" results with
  | Bmc.Dead_forever -> ()
  | Bmc.Cex_within_bound _ -> Alcotest.fail "icache write path must be dead"
  | Bmc.Unknown -> Alcotest.fail "k=1 induction should close the icache write path"

let tests =
  [
    Alcotest.test_case "sat: basics" `Quick test_sat_basics;
    Alcotest.test_case "k-induction: dead forever vs reachable" `Quick test_induction;
    Alcotest.test_case "k-induction: icache write path" `Slow test_induction_icache;
    Alcotest.test_case "sat: pigeonhole unsat" `Quick test_sat_pigeonhole;
    Alcotest.test_case "sat: assumptions" `Quick test_sat_assumptions;
    Alcotest.test_case "sat: incremental solving" `Quick test_sat_incremental;
    QCheck_alcotest.to_alcotest test_sat_random;
    QCheck_alcotest.to_alcotest test_gate_vs_eval;
    Alcotest.test_case "gates: exhaustive 4-bit adder/compare" `Quick test_gate_exhaustive;
    test_dimacs_roundtrip;
    Alcotest.test_case "bmc: fsm reachability" `Quick test_bmc_fsm;
    Alcotest.test_case "bmc: dead cover detection" `Quick test_bmc_unreachable;
    Alcotest.test_case "bmc: synchronous memory modelling" `Quick test_bmc_sync_mem;
    Alcotest.test_case "bmc: riscv-mini icache write unreachable" `Slow
      test_bmc_riscv_mini_icache;
  ]
