(** IR-level tests: printer/parser round-trips, the width rules, the
    evaluator against the constant folder, namespaces, and DSL error
    behaviour. *)

module Bv = Sic_bv.Bv
open Sic_ir
open Helpers

let ty_of n = List.assoc n standard_vars

(* --- printer/parser round-trips -------------------------------------- *)

let test_expr_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"expr print/parse round-trip"
       (QCheck.make ~print:Printer.expr_to_string (gen_expr ~vars:standard_vars))
       (fun e ->
         let s = Printer.expr_to_string e in
         let toks = (s, 1) in
         ignore toks;
         match
           Parser.parse_circuit
             (Printf.sprintf
                "circuit T :\n  module T :\n    input u1 : UInt<1>\n\n    node probe = %s\n" s)
         with
         | c -> (
             let m = Circuit.main c in
             let found = ref None in
             Stmt.iter
               (fun st ->
                 match st with
                 | Stmt.Node { name = "probe"; expr; _ } -> found := Some expr
                 | _ -> ())
               m.Circuit.body;
             match !found with Some e' -> Expr.equal e e' | None -> false)))

let test_circuit_roundtrip () =
  List.iter
    (fun c ->
      let s1 = Printer.circuit_to_string c in
      let c2 = Parser.parse_circuit s1 in
      let s2 = Printer.circuit_to_string c2 in
      Alcotest.(check string) ("round-trip " ^ c.Circuit.circuit_name) s1 s2)
    [
      gcd_circuit ();
      hierarchy_circuit ();
      fst (fsm_circuit ());
      Sic_designs.Riscv_mini.circuit ();
      Sic_designs.Uart.circuit ();
      Sic_designs.Fifo.circuit ();
      Sic_designs.Tlram.circuit ();
    ]

let test_lowered_roundtrip () =
  (* lowered circuits (with covers) round-trip too *)
  let c, _ = Sic_coverage.Line_coverage.instrument (gcd_circuit ()) in
  let low = lower c in
  let s1 = Printer.circuit_to_string low in
  let c2 = Parser.parse_circuit s1 in
  Alcotest.(check string) "lowered round-trip" s1 (Printer.circuit_to_string c2)

(* fuzz the parser: random mutations of a valid source must either parse
   or raise Parse_error — never escape with another exception *)
let parser_robustness =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"parser total on mutated input"
       QCheck.(pair small_int (small_list (pair small_int (int_bound 255))))
       (fun (_, mutations) ->
         let base = Printer.circuit_to_string (gcd_circuit ()) in
         let b = Bytes.of_string base in
         List.iter
           (fun (pos, byte) ->
             if Bytes.length b > 0 then
               Bytes.set b (pos mod Bytes.length b) (Char.chr byte))
           mutations;
         match Parser.parse_circuit (Bytes.to_string b) with
         | _ -> true
         | exception Parser.Parse_error _ -> true
         | exception _ -> false))

let test_parse_errors () =
  let bad = [ "nonsense"; "circuit X"; "circuit X :\n  module Y :\n    bogus stmt" ] in
  List.iter
    (fun src ->
      match Parser.parse_circuit src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ src))
    bad

(* --- width rules ------------------------------------------------------ *)

let test_width_rules () =
  let u w = Ty.UInt w and s w = Ty.SInt w in
  let check name expect got = Alcotest.(check string) name (Ty.to_string expect) (Ty.to_string got) in
  check "add" (u 9) (Expr.binop_ty Expr.Add (u 8) (u 5));
  check "sub signed" (s 9) (Expr.binop_ty Expr.Sub (s 8) (s 3));
  check "mul" (u 13) (Expr.binop_ty Expr.Mul (u 8) (u 5));
  check "div unsigned" (u 8) (Expr.binop_ty Expr.Div (u 8) (u 5));
  check "div signed grows" (s 9) (Expr.binop_ty Expr.Div (s 8) (s 5));
  check "rem" (u 5) (Expr.binop_ty Expr.Rem (u 8) (u 5));
  check "cat" (u 13) (Expr.binop_ty Expr.Cat (u 8) (s 5));
  check "cmp" (u 1) (Expr.binop_ty Expr.Lt (u 8) (u 5));
  check "bitwise" (u 8) (Expr.binop_ty Expr.And (u 8) (u 5));
  check "dshl" (u 8 |> fun _ -> u (8 + 7)) (Expr.binop_ty Expr.Dshl (u 8) (u 3));
  check "neg" (s 9) (Expr.unop_ty Expr.Neg (u 8));
  check "cvt uint" (s 9) (Expr.unop_ty Expr.Cvt (u 8));
  check "shr floor" (u 1) (Expr.intop_ty Expr.Shr 20 (u 8));
  check "pad keeps kind" (s 12) (Expr.intop_ty Expr.Pad 12 (s 8));
  check "tail" (u 5) (Expr.intop_ty Expr.Tail 3 (u 8));
  (match Expr.binop_ty Expr.Add (u 8) (s 8) with
  | exception Expr.Type_error _ -> ()
  | _ -> Alcotest.fail "mixed-sign add must be rejected");
  match Expr.bits_ty 8 0 (u 8) with
  | exception Expr.Type_error _ -> ()
  | _ -> Alcotest.fail "out-of-range bits must be rejected"

(* --- evaluator invariants --------------------------------------------- *)

let test_eval_width_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"eval result width = type_of width"
       (QCheck.make ~print:(fun (e, _) -> Printer.expr_to_string e)
          QCheck.Gen.(
            let* e = gen_expr ~vars:standard_vars in
            let* i = gen_inputs ~vars:standard_vars in
            return (e, i)))
       (fun (e, inputs) ->
         let value_of n = List.assoc n inputs in
         match Expr.type_of ty_of e with
         | exception Expr.Type_error _ -> QCheck.assume_fail ()
         | ty -> Bv.width (Eval.eval ~ty_of ~value_of e) = Ty.width ty))

let test_simplify_preserves_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"const-prop simplify preserves eval"
       (QCheck.make ~print:(fun (e, _) -> Printer.expr_to_string e)
          QCheck.Gen.(
            let* e = gen_expr ~vars:standard_vars in
            let* i = gen_inputs ~vars:standard_vars in
            return (e, i)))
       (fun (e, inputs) ->
         let value_of n = List.assoc n inputs in
         match Eval.eval ~ty_of ~value_of e with
         | exception Expr.Type_error _ -> QCheck.assume_fail ()
         | expected ->
             let simplified = Sic_passes.Const_prop.simplify ty_of e in
             Bv.equal (Eval.eval ~ty_of ~value_of simplified) expected))

(* --- namespace -------------------------------------------------------- *)

let test_namespace () =
  let ns = Namespace.create () in
  Namespace.reserve ns "x";
  Alcotest.(check string) "fresh avoids taken" "x_0" (Namespace.fresh ns "x");
  Alcotest.(check string) "fresh increments" "x_1" (Namespace.fresh ns "x");
  Alcotest.(check string) "free name stays" "y" (Namespace.fresh ns "y");
  Alcotest.(check string) "now taken" "y_0" (Namespace.fresh ns "y")

(* --- DSL error behaviour ---------------------------------------------- *)

let test_dsl_errors () =
  let expect_error f =
    match f () with
    | exception Dsl.Dsl_error _ -> ()
    | _ -> Alcotest.fail "expected Dsl_error"
  in
  expect_error (fun () ->
      let cb = Dsl.create_circuit "Dup" in
      Dsl.module_ cb "Dup" (fun m ->
          ignore (Dsl.wire m "w" (Ty.UInt 1));
          ignore (Dsl.wire m "w" (Ty.UInt 1))));
  expect_error (fun () ->
      let cb = Dsl.create_circuit "BadConnect" in
      Dsl.module_ cb "BadConnect" (fun m ->
          let open Dsl in
          connect m (lit 4 2) (lit 4 1)));
  expect_error (fun () ->
      let cb = Dsl.create_circuit "NoChild" in
      Dsl.module_ cb "NoChild" (fun m -> ignore (Dsl.instance m "i" "Missing" "p")));
  match
    let cb = Dsl.create_circuit "Main" in
    Dsl.module_ cb "NotMain" (fun _ -> ());
    Dsl.finalize cb
  with
  | exception Circuit.Elaboration_error _ -> ()
  | _ -> Alcotest.fail "missing top module must be rejected"

let test_check_rejects_bad_circuits () =
  let expect_reject body =
    let c =
      {
        Circuit.circuit_name = "X";
        modules =
          [
            {
              Circuit.module_name = "X";
              ports =
                [
                  { Circuit.port_name = "clock"; dir = Circuit.Input; port_ty = Ty.Clock; port_info = Info.unknown };
                  { Circuit.port_name = "in"; dir = Circuit.Input; port_ty = Ty.UInt 4; port_info = Info.unknown };
                  { Circuit.port_name = "out"; dir = Circuit.Output; port_ty = Ty.UInt 4; port_info = Info.unknown };
                ];
              body;
            };
          ];
        annotations = [];
      }
    in
    match Sic_passes.Check.run c with
    | exception Sic_passes.Pass.Pass_error _ -> ()
    | _ -> Alcotest.fail "check must reject"
  in
  (* unresolved reference *)
  expect_reject [ Stmt.Connect { loc = "out"; expr = Expr.Ref "ghost"; info = Info.unknown } ];
  (* connecting an input *)
  expect_reject [ Stmt.Connect { loc = "in"; expr = Expr.u_lit ~width:4 1; info = Info.unknown } ];
  (* width mismatch *)
  expect_reject [ Stmt.Connect { loc = "out"; expr = Expr.u_lit ~width:5 1; info = Info.unknown } ];
  (* duplicate cover names *)
  expect_reject
    [
      Stmt.Connect { loc = "out"; expr = Expr.Ref "in"; info = Info.unknown };
      Stmt.Cover { name = "c"; pred = Expr.true_; info = Info.unknown };
      Stmt.Cover { name = "c"; pred = Expr.true_; info = Info.unknown };
    ];
  (* non-boolean cover predicate *)
  expect_reject
    [
      Stmt.Connect { loc = "out"; expr = Expr.Ref "in"; info = Info.unknown };
      Stmt.Cover { name = "c"; pred = Expr.Ref "in"; info = Info.unknown };
    ]

let test_info_roundtrip () =
  let i = Info.pos ~file:"foo.ml" ~line:42 ~col:7 in
  Alcotest.(check string) "to_string" "@[foo.ml 42:7]" (Info.to_string i);
  Alcotest.(check bool) "equal" true (Info.equal i (Info.of_pos ("foo.ml", 42, 7, 99)))

let tests =
  [
    test_expr_roundtrip;
    Alcotest.test_case "circuit print/parse round-trip" `Quick test_circuit_roundtrip;
    Alcotest.test_case "lowered circuit round-trip" `Quick test_lowered_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    parser_robustness;
    Alcotest.test_case "FIRRTL width rules" `Quick test_width_rules;
    test_eval_width_invariant;
    test_simplify_preserves_semantics;
    Alcotest.test_case "namespace freshness" `Quick test_namespace;
    Alcotest.test_case "dsl error behaviour" `Quick test_dsl_errors;
    Alcotest.test_case "check pass rejects bad circuits" `Quick test_check_rejects_bad_circuits;
    Alcotest.test_case "info round-trip" `Quick test_info_roundtrip;
  ]
