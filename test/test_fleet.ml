(** Tests for the campaign orchestrator (lib/fleet): forked job execution,
    -j independence of the resulting database, crash isolation and the
    rank-subset acceptance property. *)

module Counts = Sic_coverage.Counts
module Line = Sic_coverage.Line_coverage
module Db = Sic_db.Db
module Fleet = Sic_fleet.Fleet
module Profile = Sic_sim.Profile
open Helpers

let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !n

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let instrumented name c =
  let ic, _ = Line.instrument c in
  (name, lower ic)

let mk_jobs ?(backend = Fleet.Compiled) ?(budget = 200) ?(sample_every = 0) seeds =
  let _, low = instrumented "gcd" (gcd_circuit ()) in
  List.mapi
    (fun i seed ->
      {
        Fleet.index = i;
        design = "gcd";
        circuit = low;
        circuit_hash = "-";
        backend;
        seed;
        lane_seeds = [||];
        budget;
        wave = 1;
        scan_width = 8;
        sample_every;
        profile = false;
        covers = [];
        corpus = [];
      })
    seeds

let test_run_jobs_parallel_equals_serial () =
  let job_list = mk_jobs [ 11; 22; 33; 44 ] in
  let counts_of results =
    List.map
      (fun (j, r) ->
        match r with
        | Ok res -> (j.Fleet.index, res.Fleet.counts)
        | Error why -> Alcotest.fail ("job failed: " ^ why))
      results
  in
  let serial = counts_of (Fleet.run_jobs ~jobs:1 job_list) in
  let parallel = counts_of (Fleet.run_jobs ~jobs:3 job_list) in
  Alcotest.(check (list int)) "results in input order" [ 0; 1; 2; 3 ]
    (List.map fst parallel);
  List.iter2
    (fun (i, a) (_, b) ->
      Alcotest.(check bool) (Printf.sprintf "job %d counts identical" i) true
        (Counts.equal a b))
    serial parallel;
  (* and both match an in-process execution: determinism in the seed *)
  List.iter2
    (fun job (i, c) ->
      Alcotest.(check bool) (Printf.sprintf "job %d = in-process run" i) true
        (Counts.equal (Fleet.run_job job).Fleet.counts c))
    job_list serial

let test_run_jobs_crash_isolated () =
  let job_list = mk_jobs [ 1; 2; 3 ] in
  let results =
    Fleet.run_jobs ~jobs:2 ~retries:0
      ~inject_crash:(fun j -> j.Fleet.index = 1)
      job_list
  in
  List.iter
    (fun (j, r) ->
      match (j.Fleet.index, r) with
      | 1, Error why ->
          Alcotest.(check bool) "crash reported as signal" true
            (String.length why > 0)
      | 1, Ok _ -> Alcotest.fail "crashed job reported ok"
      | i, Error why -> Alcotest.fail (Printf.sprintf "job %d failed: %s" i why)
      | _, Ok _ -> ())
    results;
  (* a crash that stops being injected is healed by the retry *)
  let first = ref true in
  let healed =
    Fleet.run_jobs ~jobs:1 ~retries:1
      ~inject_crash:(fun _ ->
        if !first then (
          first := false;
          true)
        else false)
      (mk_jobs [ 5 ])
  in
  match healed with
  | [ (_, Ok _) ] -> ()
  | [ (_, Error why) ] -> Alcotest.fail ("retry did not heal transient crash: " ^ why)
  | _ -> Alcotest.fail "unexpected result shape"

let test_run_job_timeline () =
  let module Timeline = Sic_coverage.Timeline in
  (match mk_jobs ~sample_every:50 [ 7 ] with
  | [ job ] -> (
      let res = Fleet.run_job job in
      match res.Fleet.timeline with
      | None -> Alcotest.fail "no timeline recorded with sample_every > 0"
      | Some tl ->
          Alcotest.(check bool) "last sample covers the whole budget" true
            (Timeline.last_at tl >= job.Fleet.budget);
          Alcotest.(check int) "final sample matches the counts"
            (Counts.covered_points res.Fleet.counts)
            (Timeline.final_covered tl);
          let rec monotone = function
            | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
            | _ -> true
          in
          Alcotest.(check bool) "covered never decreases" true
            (monotone tl.Timeline.samples))
  | _ -> assert false);
  (* sample_every = 0 is the untouched hot path: no timeline at all *)
  match (Fleet.run_job (List.hd (mk_jobs [ 7 ]))).Fleet.timeline with
  | None -> ()
  | Some _ -> Alcotest.fail "timeline recorded with sample_every = 0"

let test_bmc_job () =
  let _, low = instrumented "fsm" (fst (fsm_circuit ())) in
  let job =
    {
      Fleet.index = 0;
      design = "fsm";
      circuit = low;
      circuit_hash = "-";
      backend = Fleet.Bmc;
      seed = 0;
      lane_seeds = [||];
      budget = 4;
      wave = 1;
      scan_width = 8;
      sample_every = 0;
      profile = false;
      covers = [];
      corpus = [];
    }
  in
  let res = Fleet.run_job job in
  let pts = Counts.to_sorted_list res.Fleet.counts in
  Alcotest.(check bool) "bmc reports every point" true (pts <> []);
  List.iter
    (fun (n, v) ->
      Alcotest.(check bool) (n ^ " is 0/1") true (v = 0 || v = 1))
    pts;
  Alcotest.(check bool) "some point reachable" true (List.exists (fun (_, v) -> v = 1) pts)

let small_spec ~jobs =
  {
    Fleet.designs =
      [ instrumented "gcd" (gcd_circuit ()); instrumented "fsm" (fst (fsm_circuit ())) ];
    waves = [ [ Fleet.Compiled ]; [ Fleet.Fuzz ] ];
    seeds = 2;
    lanes = 1;
    cycles = 150;
    execs = 40;
    bound = 5;
    scan_width = 8;
    master_seed = 42;
    jobs;
    timeout_s = None;
    retries = 1;
    threshold = 1;
    timeline_every = 50;
    profile = false;
  }

let manifest_view db =
  List.map
    (fun r ->
      ( r.Db.id,
        r.Db.design,
        r.Db.backend,
        r.Db.seed,
        r.Db.wave,
        (match r.Db.status with Db.Run_ok -> "ok" | Db.Run_failed _ -> "failed") ))
    (Db.runs db)

let test_campaign_j_independent () =
  let dir1 = fresh_dir "fleet_j1" and dir4 = fresh_dir "fleet_j4" in
  let db1 = Db.init dir1 and db4 = Db.init dir4 in
  let s1 = Fleet.run_campaign ~db:db1 (small_spec ~jobs:1) in
  let s4 = Fleet.run_campaign ~db:db4 (small_spec ~jobs:4) in
  Alcotest.(check int) "same job count" s1.Fleet.total_jobs s4.Fleet.total_jobs;
  Alcotest.(check int) "all ok (j1)" s1.Fleet.total_jobs s1.Fleet.ok;
  Alcotest.(check int) "all ok (j4)" s4.Fleet.total_jobs s4.Fleet.ok;
  Alcotest.(check int) "both waves ran" 2 s4.Fleet.waves_run;
  Alcotest.(check bool) "wave 2 instrumented fewer points" true (s4.Fleet.removed_points > 0);
  (* the database contents are independent of -j: same manifest modulo
     wall time, byte-identical aggregate cache *)
  Alcotest.(check bool) "same runs recorded" true (manifest_view db1 = manifest_view db4);
  Alcotest.(check bool) "aggregates equal" true
    (Counts.equal (Db.aggregate db1) (Db.aggregate db4));
  Alcotest.(check string) "aggregate.cnt byte-identical"
    (read_file (Filename.concat dir1 "aggregate.cnt"))
    (read_file (Filename.concat dir4 "aggregate.cnt"));
  (* ... and so are the persisted convergence timelines *)
  let tl_files dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tl")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "timelines were persisted" true (tl_files dir1 <> []);
  Alcotest.(check (list string)) "same timeline files" (tl_files dir1) (tl_files dir4);
  List.iter
    (fun f ->
      Alcotest.(check string) (f ^ " byte-identical")
        (read_file (Filename.concat dir1 f))
        (read_file (Filename.concat dir4 f)))
    (tl_files dir1);
  (* acceptance: the ranked subset's merged coverage equals the aggregate's *)
  let picked = Db.rank db4 in
  Alcotest.(check bool) "rank returns a subset" true
    (List.length picked <= List.length (Db.ok_runs db4));
  let subset = Counts.merge (List.map (Db.load_counts db4) picked) in
  Alcotest.(check (list string)) "rank subset covers the aggregate"
    (Counts.covered (Db.aggregate db4))
    (Counts.covered subset)

let test_campaign_crash_survival () =
  let dir = fresh_dir "fleet_crash" in
  let db = Db.init dir in
  let spec = { (small_spec ~jobs:2) with Fleet.waves = [ [ Fleet.Compiled ] ]; retries = 1 } in
  let s = Fleet.run_campaign ~inject_crash:(fun i -> i = 0) ~db spec in
  Alcotest.(check int) "campaign completed every job" s.Fleet.total_jobs
    (s.Fleet.ok + s.Fleet.failed);
  Alcotest.(check int) "exactly one failed run" 1 s.Fleet.failed;
  let failed =
    List.filter (fun r -> match r.Db.status with Db.Run_failed _ -> true | _ -> false) (Db.runs db)
  in
  Alcotest.(check int) "failed run recorded in the manifest" 1 (List.length failed);
  (* the crashed job is the first one enumerated *)
  (match failed with
  | [ r ] -> Alcotest.(check string) "first job crashed" "r0001" r.Db.id
  | _ -> ());
  Alcotest.(check bool) "surviving runs still aggregated" true
    (Counts.covered (Db.aggregate db) <> [])

(* a profiled job ships its engine profile through the byte-framed result
   pipe without disturbing the coverage counts *)
let test_profile_over_pipe () =
  let job = { (List.hd (mk_jobs [ 5 ])) with Fleet.profile = true } in
  let r = Fleet.run_job job in
  let dp =
    match r.Fleet.prof with
    | Some d -> d
    | None -> Alcotest.fail "profiled job returned no profile"
  in
  Alcotest.(check bool) "profile saw the run" true
    (Array.exists (fun (row : Profile.row) -> row.Profile.hits > 0) dp.Profile.rows);
  (match Fleet.decode (Fleet.encode_ok r) with
  | Ok { Fleet.outcome = Ok r'; _ } -> (
      match r'.Fleet.prof with
      | Some d ->
          Alcotest.(check string) "profile survives the pipe byte-exactly"
            (Profile.to_string [ dp ])
            (Profile.to_string [ d ])
      | None -> Alcotest.fail "profile section lost in decode")
  | Ok { Fleet.outcome = Error e; _ } | Error e -> Alcotest.fail e);
  let plain = Fleet.run_job (List.hd (mk_jobs [ 5 ])) in
  Alcotest.(check bool) "counts unaffected by profiling" true
    (Counts.equal r.Fleet.counts plain.Fleet.counts)

(* the campaign's merged profile is as -j independent as its database *)
let test_campaign_profile_j_independent () =
  let dir1 = fresh_dir "fleet_prof_j1" and dir3 = fresh_dir "fleet_prof_j3" in
  let spec ~jobs =
    {
      (small_spec ~jobs) with
      Fleet.waves = [ [ Fleet.Compiled; Fleet.Essent ] ];
      profile = true;
    }
  in
  let s1 = Fleet.run_campaign ~db:(Db.init dir1) (spec ~jobs:1) in
  let s3 = Fleet.run_campaign ~db:(Db.init dir3) (spec ~jobs:3) in
  Alcotest.(check bool) "campaign produced a profile" true (s1.Fleet.profile <> []);
  Alcotest.(check string) "merged profile bytes independent of -j"
    (Profile.to_string s1.Fleet.profile)
    (Profile.to_string s3.Fleet.profile);
  (* 2 designs x 2 backends x 2 seeds of the same instrumented circuit
     fold together: each design's section accumulates all four runs *)
  List.iter
    (fun (d : Profile.design_profile) ->
      Alcotest.(check bool)
        (d.Profile.design ^ " folded several runs") true
        (d.Profile.cycles >= 4 * (small_spec ~jobs:1).Fleet.cycles))
    s1.Fleet.profile

(* a lane job is k solo runs advanced bit-parallel: each lane's counts
   equal the solo compiled run's over the same seed, and the extra lanes
   survive the byte-framed result pipe *)
let test_lanes_job_over_pipe () =
  let seeds = [ 11; 22; 33 ] in
  let lane_job =
    match mk_jobs ~backend:Fleet.Lanes [ List.hd seeds ] with
    | [ j ] -> { j with Fleet.lane_seeds = Array.of_list (List.tl seeds) }
    | _ -> assert false
  in
  let r = Fleet.run_job lane_job in
  Alcotest.(check int) "one extra counts map per extra lane" 2
    (List.length r.Fleet.lane_extra);
  Alcotest.(check int) "sim_cycles = budget x lanes" (3 * lane_job.Fleet.budget)
    r.Fleet.sim_cycles;
  List.iteri
    (fun l (seed, lane_counts) ->
      let solo = Fleet.run_job (List.hd (mk_jobs [ seed ])) in
      Alcotest.(check bool) (Printf.sprintf "lane %d equals the solo compiled run" l) true
        (Counts.equal solo.Fleet.counts lane_counts))
    (List.combine seeds (r.Fleet.counts :: r.Fleet.lane_extra));
  match Fleet.decode (Fleet.encode_ok r) with
  | Ok { Fleet.outcome = Ok r'; _ } ->
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "lane section survives the pipe" true (Counts.equal a b))
        (r.Fleet.counts :: r.Fleet.lane_extra)
        (r'.Fleet.counts :: r'.Fleet.lane_extra)
  | Ok { Fleet.outcome = Error e; _ } | Error e -> Alcotest.fail e

(* the database is a function of (designs, seeds, master seed) only:
   packing runs into lane jobs — at any -j — moves no byte of it, and the
   lane runs are byte-identical to a solo compiled campaign's *)
let test_campaign_lanes_independent () =
  let spec ~jobs ~lanes ~waves = { (small_spec ~jobs) with Fleet.waves; seeds = 5; lanes } in
  let dir_l1 = fresh_dir "fleet_lanes1" and dir_l3 = fresh_dir "fleet_lanes3" in
  let dir_solo = fresh_dir "fleet_lanes_solo" in
  let db_l1 = Db.init dir_l1 and db_l3 = Db.init dir_l3 and db_solo = Db.init dir_solo in
  let s1 = Fleet.run_campaign ~db:db_l1 (spec ~jobs:1 ~lanes:1 ~waves:[ [ Fleet.Lanes ] ]) in
  let s3 = Fleet.run_campaign ~db:db_l3 (spec ~jobs:3 ~lanes:3 ~waves:[ [ Fleet.Lanes ] ]) in
  let _ =
    Fleet.run_campaign ~db:db_solo (spec ~jobs:2 ~lanes:1 ~waves:[ [ Fleet.Compiled ] ])
  in
  (* 5 runs per design pack into ceil(5/3) = 2 jobs at 3 lanes, 5 at 1 *)
  Alcotest.(check int) "lane packing shrinks the job list" (2 * 2) s3.Fleet.total_jobs;
  Alcotest.(check int) "one job per run unpacked" (2 * 5) s1.Fleet.total_jobs;
  Alcotest.(check int) "aggregate simulated cycles independent of packing"
    s1.Fleet.sim_cycles s3.Fleet.sim_cycles;
  Alcotest.(check bool) "same runs recorded" true (manifest_view db_l1 = manifest_view db_l3);
  Alcotest.(check string) "aggregate.cnt byte-identical"
    (read_file (Filename.concat dir_l1 "aggregate.cnt"))
    (read_file (Filename.concat dir_l3 "aggregate.cnt"));
  List.iter
    (fun (r : Db.run) ->
      Alcotest.(check string) (r.Db.id ^ ".cnt byte-identical")
        (read_file (Filename.concat dir_l1 (r.Db.id ^ ".cnt")))
        (read_file (Filename.concat dir_l3 (r.Db.id ^ ".cnt"))))
    (Db.ok_runs db_l1);
  List.iter2
    (fun (a : Db.run) (b : Db.run) ->
      Alcotest.(check int) "same seed enumerated" b.Db.seed a.Db.seed;
      Alcotest.(check string) (a.Db.id ^ " equals the solo compiled run")
        (read_file (Filename.concat dir_solo (b.Db.id ^ ".cnt")))
        (read_file (Filename.concat dir_l3 (a.Db.id ^ ".cnt"))))
    (Db.ok_runs db_l3) (Db.ok_runs db_solo)

let tests =
  [
    Alcotest.test_case "run_jobs: parallel = serial" `Quick test_run_jobs_parallel_equals_serial;
    Alcotest.test_case "run_jobs: crash isolation + retry" `Quick test_run_jobs_crash_isolated;
    Alcotest.test_case "run_job: bmc 0/1 semantics" `Quick test_bmc_job;
    Alcotest.test_case "run_job: timeline sampling" `Quick test_run_job_timeline;
    Alcotest.test_case "run_job: profile over the result pipe" `Quick test_profile_over_pipe;
    Alcotest.test_case "run_job: lane job = k solo runs, over the pipe" `Quick
      test_lanes_job_over_pipe;
    Alcotest.test_case "campaign: db independent of -j" `Quick test_campaign_j_independent;
    Alcotest.test_case "campaign: db independent of --lanes" `Quick
      test_campaign_lanes_independent;
    Alcotest.test_case "campaign: profile independent of -j" `Quick
      test_campaign_profile_j_independent;
    Alcotest.test_case "campaign: survives worker crash" `Quick test_campaign_crash_survival;
  ]
