#!/bin/sh
# Tier-1 gate: formatting of dune files, full build, full test suite.
set -eu
cd "$(dirname "$0")"

dune build @fmt
dune build
dune runtest

# CLI regression, explicitly: campaign -j independence, crash survival,
# db rank coverage preservation (test/cli/check_campaign.ml)
dune build @test/cli/runtest
