#!/bin/sh
# Tier-1 gate: formatting of dune files, full build, full test suite.
set -eu
cd "$(dirname "$0")"

dune build @fmt
dune build
dune runtest

# CLI regression, explicitly: campaign -j independence, crash survival,
# db rank coverage preservation (test/cli/check_campaign.ml)
dune build @test/cli/runtest

# Observability smoke: a tiny parallel campaign with live progress and a
# merged Chrome trace; the trace must parse and span the orchestrator plus
# both worker lanes (test/cli/check_trace.ml). The trace is kept at the
# repo root so CI can upload it as an artifact.
rm -rf ci_campaign.db ci_trace.json
dune exec --no-build bin/sic.exe -- campaign --db ci_campaign.db -j 2 \
  --progress --trace ci_trace.json \
  --design counter --design gcd --backend compiled --seeds 1 --cycles 300
dune exec --no-build test/cli/check_trace.exe -- ci_trace.json 3
rm -rf ci_campaign.db

# Coverage-closure smoke: the formal <-> fuzz loop on the closure fixture
# must reach a fixpoint with every point covered or formally excluded
# (exit 0 = nothing open), the closed database's report must carry the
# exclusion section, and rank --json must see an empty uncovered list.
# The bench (BENCH_close.json, uploaded as a CI artifact) re-runs the
# loop at -j 1 / -j 2 and fails if the database bytes differ.
rm -rf ci_close.db
dune exec --no-build bin/sic.exe -- close --db ci_close.db --design closefix \
  --bound 8 -j 2
dune exec --no-build bin/sic.exe -- db report ci_close.db | grep -q 'proven unreachable'
dune exec --no-build bin/sic.exe -- db rank ci_close.db --json | grep -q '"uncovered":\[\]'
SIC_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- close
rm -rf ci_close.db

# Simulation throughput smoke: tiny traces and measurement quota, but the
# full pipeline — every backend replays every Table 2 workload and must
# produce identical coverage counts before timing. Writes BENCH_sim.json
# (uploaded as a CI artifact) in the same layout as a full run.
SIC_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- sim

# Lane-engine smoke: at --lanes 1 the bit-parallel engine runs lockstep,
# so its saved counts must be byte-identical to compiled's under the same
# seed; then a full-width 62-seed pass on the same design must complete.
# (The per-lane exactness differential — lane k vs a solo compiled run on
# stream k — gates every design inside the sim bench above.)
rm -f ci_lanes_lockstep.bin ci_lanes_compiled.bin
dune exec --no-build bin/sic.exe -- cover --design serv --backend lanes \
  --cycles 2000 --save-counts ci_lanes_lockstep.bin > /dev/null
dune exec --no-build bin/sic.exe -- cover --design serv --backend compiled \
  --cycles 2000 --save-counts ci_lanes_compiled.bin > /dev/null
cmp ci_lanes_lockstep.bin ci_lanes_compiled.bin
dune exec --no-build bin/sic.exe -- cover --design serv --backend lanes \
  --lanes 62 --cycles 2000 > /dev/null
rm -f ci_lanes_lockstep.bin ci_lanes_compiled.bin

# Verilog frontend smoke, end to end on RTL this repo never generated:
# lower the vendored RISC-V core, insert the scan chain, simulate its
# t2a.hex program and preview line/toggle/FSM coverage; then render the
# HTML coverage report (kept at the repo root so CI can upload it as an
# artifact) and time the frontend (BENCH_verilog.json, also uploaded).
rm -f ci_verilog.html
dune exec --no-build bin/sic.exe -- scan examples/verilog/rv.v --line --toggle --fsm
dune exec --no-build bin/sic.exe -- cover examples/verilog/rv.v \
  --line --toggle --fsm --cycles 2000 --html ci_verilog.html
SIC_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- verilog

# Engine-profiler smoke on the same core: ranked hotspot tables with real
# source attribution, plus the collapsed-stack artifact (kept at the repo
# root so CI can upload it for flamegraph tooling). The ranked output
# must name actual rv.v lines, proving the tape -> statement -> source
# provenance chain survived lowering.
rm -f ci_hotspots.folded
dune exec --no-build bin/sic.exe -- hotspots examples/verilog/rv.v \
  --cycles 5000 --folded ci_hotspots.folded | tee /tmp/ci_hotspots.out
grep -q 'rv\.v:[0-9]' /tmp/ci_hotspots.out
grep -q 'rv\.v:[0-9]' ci_hotspots.folded

# Coverage-service smoke: in-process server on an ephemeral port — ingest
# rate plus cached / 304 / uncached GET /report latency and /watch SSE
# fan-out broadcast latency. Writes BENCH_serve.json (uploaded as a CI
# artifact) in the same layout as a full run. (The sic serve CLI itself
# is smoked by test/cli/check_serve.)
SIC_BENCH_SMOKE=1 dune exec --no-build bench/main.exe -- serve

# Live-plane smoke against the real binary: attach a /watch subscriber,
# push a run, require one SSE delta within the timeout, validate the
# Prometheus exposition, and SIGTERM with the stream attached (must
# drain to exit 0). The rendered dashboard is kept at the repo root so
# CI can upload it as an artifact.
rm -f ci_dashboard.html
dune exec --no-build test/cli/check_watch.exe -- _build/default/bin/sic.exe ci_dashboard.html
rm -rf watch_smoke_db_*
