(** [sic_repl] — an interactive circuit debugger on the tree-walking
    interpreter (the Treadle-style workflow: instant spin-up, poke around,
    watch covers count).

    Usage: [sic_repl <design-name | FILE.fir>]; then:

    {v
    poke <signal> <value>     drive an input (decimal or 0x... hex)
    peek <signal>             read any signal
    step [n]                  advance n clock edges (default 1)
    reset [n]                 pulse reset for n cycles (default 1)
    counts                    show nonzero cover counters
    counts all                show every cover counter
    inputs / outputs          list ports
    line / fsm / rv           instrument+reload with a coverage metric
    help                      this text
    quit                      leave
    v}
*)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
open Sic_sim

let designs : (string * (unit -> Sic_ir.Circuit.t)) list =
  [
    ("counter", fun () -> Sic_designs.Counter.circuit ());
    ("gcd", fun () -> Sic_designs.Gcd.circuit ());
    ("fifo", fun () -> Sic_designs.Fifo.circuit ());
    ("uart", fun () -> Sic_designs.Uart.circuit ());
    ("i2c", fun () -> Sic_designs.I2c.circuit ());
    ("tlram", fun () -> Sic_designs.Tlram.circuit ());
    ("serv", fun () -> Sic_designs.Serv.circuit ());
    ("arbiter", fun () -> Sic_designs.Arbiter.circuit ());
    ("matmul", fun () -> Sic_designs.Matmul.circuit ());
    ("riscv-mini", fun () -> Sic_designs.Riscv_mini.circuit ());
  ]

let load name =
  match List.assoc_opt name designs with
  | Some f -> f ()
  | None ->
      if Sys.file_exists name then begin
        let ic = open_in name in
        let src =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        Sic_ir.Parser.parse_circuit src
      end
      else begin
        Printf.eprintf "unknown design or file %s; designs: %s\n" name
          (String.concat ", " (List.map fst designs));
        exit 2
      end

let parse_value s =
  if String.length s > 2 && String.sub s 0 2 = "0x" then
    Bv.of_hex_string ~width:(4 * (String.length s - 2)) (String.sub s 2 (String.length s - 2))
  else Bv.of_decimal_string ~width:62 s

let help () =
  print_string
    "commands: poke <sig> <val> | peek <sig> | step [n] | reset [n] | counts [all]\n\
    \          inputs | outputs | line | fsm | rv | help | quit\n"

let () =
  (match Array.to_list Sys.argv with
  | [ _; _name ] -> ()
  | _ ->
      prerr_endline "usage: sic_repl <design-name | FILE.fir>";
      exit 2);
  let original = load Sys.argv.(1) in
  let backend = ref (Interp.create original) in
  let reload low = backend := Interp.create low in
  Printf.printf "loaded %s on the interpreter; 'help' for commands\n"
    Sys.argv.(1);
  let continue_ = ref true in
  while !continue_ do
    print_string "sic> ";
    match input_line stdin with
    | exception End_of_file -> continue_ := false
    | line -> (
        let b = !backend in
        let words =
          String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
        in
        try
          match words with
          | [] -> ()
          | [ "quit" ] | [ "q" ] | [ "exit" ] -> continue_ := false
          | [ "help" ] -> help ()
          | [ "poke"; name; value ] -> b.Backend.poke name (parse_value value)
          | [ "peek"; name ] ->
              let v = b.Backend.peek name in
              Printf.printf "%s = %s (0x%s)\n" name (Bv.to_decimal_string v) (Bv.to_hex_string v)
          | [ "step" ] -> b.Backend.step 1
          | [ "step"; n ] -> b.Backend.step (int_of_string n)
          | [ "reset" ] -> Backend.reset_sequence b
          | [ "reset"; n ] -> Backend.reset_sequence ~cycles:(int_of_string n) b
          | [ "counts" ] ->
              List.iter
                (fun (k, v) -> if v > 0 then Printf.printf "%8d %s\n" v k)
                (Counts.to_sorted_list (b.Backend.counts ()))
          | [ "counts"; "all" ] ->
              List.iter
                (fun (k, v) -> Printf.printf "%8d %s\n" v k)
                (Counts.to_sorted_list (b.Backend.counts ()))
          | [ "inputs" ] ->
              List.iter
                (fun (n, ty) -> Printf.printf "  %s : %s\n" n (Sic_ir.Ty.to_string ty))
                (Backend.data_inputs b)
          | [ "outputs" ] ->
              List.iter
                (fun (n, ty) -> Printf.printf "  %s : %s\n" n (Sic_ir.Ty.to_string ty))
                (Backend.outputs b)
          | [ "line" ] ->
              let c, db = Sic_coverage.Line_coverage.instrument original in
              reload (Sic_passes.Compile.lower c);
              Printf.printf "reloaded with %d line cover points\n" (List.length db)
          | [ "fsm" ] ->
              let low = Sic_passes.Compile.lower original in
              let low, db = Sic_coverage.Fsm_coverage.instrument low in
              reload low;
              Printf.printf "reloaded with %d FSMs instrumented\n" (List.length db)
          | [ "rv" ] ->
              let low = Sic_passes.Compile.lower original in
              let low, db = Sic_coverage.Ready_valid_coverage.instrument low in
              reload low;
              Printf.printf "reloaded with %d ready/valid bundles\n" (List.length db)
          | _ ->
              print_endline "unrecognized command";
              help ()
        with
        | Backend.Sim_error m -> Printf.printf "error: %s\n" m
        | Failure m -> Printf.printf "error: %s\n" m)
  done
