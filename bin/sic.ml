(** [sic] — simulator-independent coverage for RTL, as a command-line tool.

    Circuits come from a [.fir] file (the FIRRTL-style concrete syntax) or
    from a built-in design by name. Subcommands:

    - [emit]    parse, check, and pretty-print a circuit (or a design)
    - [lower]   run the standard pass pipeline to the flat low form
    - [cover]   instrument with selected metrics, run a workload on a
                backend, print reports, optionally save the counts map
    - [merge]   merge counts files (trivially, §5.3)
    - [bmc]     formal cover-trace generation (reachability per cover)
    - [fuzz]    coverage-directed fuzzing with a selectable feedback metric
    - [scan]    insert the FPGA scan chain and report modelled resources
                (with [--db], only for points the database has not covered)
    - [profile] compile + simulate a design and print per-pass/per-phase
                timings (the §5 overhead study as a subcommand)
    - [hotspots] profile the word-level engine itself: per-instruction
                hit counts and sampled self-times attributed back to IR
                statements and RTL source lines, with collapsed-stack
                ([--folded]) output for flamegraph tooling
    - [db]      the persistent coverage database: init, add, list, diff,
                rank (greedy test-suite minimization), report
    - [campaign] run designs x backends x seeds in [-j N] forked workers
                into a database, wave by wave with §5.3 removal between
                ([--progress] renders a live status line; exits nonzero if
                any job exhausts its retries; [--push URL] forwards every
                recorded run to a running coverage server)
    - [serve]   the coverage service: an HTTP server over a database that
                ingests runs ([POST /runs]) and serves merged reports, a
                live SSE stream ([GET /watch]), an HTML dashboard and
                Prometheus metrics
    - [watch]   subscribe to a server's [/watch] stream and render a live
                terminal status line (runs, covered points, workers)
    - [tail]    pretty-print a telemetry NDJSON file, optionally following
                it live ([-f]) while a campaign runs

    The compile-and-simulate subcommands also take [--profile[=FILE]] and
    [--trace FILE] to export structured telemetry (newline-delimited JSON
    and the Chrome trace-event format, respectively). For [campaign], the
    merged trace carries one lane per worker process — workers ship their
    events back over the result pipe and the parent rebases them onto its
    own clock. *)

open Cmdliner
module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Obs = Sic_obs.Obs
module Db = Sic_db.Db
module Fleet = Sic_fleet.Fleet
module Serve = Sic_serve.Serve
open Sic_sim

(* ------------------------------------------------------------------ *)
(* Inputs                                                               *)
(* ------------------------------------------------------------------ *)

let designs : (string * (unit -> Sic_ir.Circuit.t)) list =
  [
    ("counter", fun () -> Sic_designs.Counter.circuit ());
    ("gcd", fun () -> Sic_designs.Gcd.circuit ());
    ("fifo", fun () -> Sic_designs.Fifo.circuit ());
    ("uart", fun () -> Sic_designs.Uart.circuit ());
    ("i2c", fun () -> Sic_designs.I2c.circuit ());
    ("tlram", fun () -> Sic_designs.Tlram.circuit ());
    ("arbiter", fun () -> Sic_designs.Arbiter.circuit ());
    ("matmul", fun () -> Sic_designs.Matmul.circuit ());
    ("closefix", fun () -> Sic_designs.Closefix.circuit ());
    ("memsys", fun () -> Sic_designs.Memsys.circuit ());
    ("serv", fun () -> Sic_designs.Serv.circuit ());
    ("neuroproc", fun () -> Sic_designs.Neuroproc.circuit ());
    ("riscv-mini", fun () -> Sic_designs.Riscv_mini.circuit ());
    ("riscv-mini-formal",
     fun () -> Sic_designs.Riscv_mini.circuit ~params:Sic_designs.Riscv_mini.formal_params ());
    ("rocket-soc", fun () -> Sic_designs.Soc.circuit Sic_designs.Soc.rocket_sim_config);
    ("boom-soc", fun () -> Sic_designs.Soc.circuit Sic_designs.Soc.boom_sim_config);
  ]

(* a circuit file: Verilog by suffix, FIRRTL-style text otherwise *)
let load_circuit_file path =
  if Sic_verilog.Verilog.is_verilog_path path then Sic_verilog.Verilog.load_file path
  else begin
    let ic = open_in path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Sic_ir.Parser.parse_circuit src
  end

let load_circuit ~file ~design =
  match (file, design) with
  | Some path, None -> load_circuit_file path
  | None, Some name -> (
      match List.assoc_opt name designs with
      | Some build -> build ()
      | None ->
          (* names double as paths: [--design foo.v] (and campaign design
             lists) accept any circuit file on disk *)
          if Sys.file_exists name then load_circuit_file name
          else begin
            Printf.eprintf "unknown design %s; available: %s\n" name
              (String.concat ", " (List.map fst designs));
            exit 2
          end)
  | Some _, Some _ ->
      prerr_endline "pass either a file or --design, not both";
      exit 2
  | None, None ->
      prerr_endline "pass a .fir file or --design NAME";
      exit 2

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.fir" ~doc:"Input circuit file.")

let design_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "design" ] ~docv:"NAME" ~doc:"Use a built-in design instead of a file.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Write output here instead of stdout.")

let write_out ~output text =
  match output with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                            *)
(* ------------------------------------------------------------------ *)

let profile_flag =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Record telemetry and write it as newline-delimited JSON to $(docv) when the \
           command finishes ('-', the default when no file is given, writes to stderr).")

let trace_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record telemetry and write a Chrome trace-event file to $(docv), loadable in \
           about://tracing or Perfetto.")

let write_to_channel path emit =
  match path with
  | "-" -> emit stderr
  | path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit oc)

(** Enable recording when either export flag is set, run [f], then export.
    Exports run from a finalizer so a failing run still leaves its partial
    telemetry behind. *)
let with_telemetry ~profile ~trace f =
  if profile <> None || trace <> None then Obs.enable ();
  let finish () =
    (match profile with
    | None -> ()
    | Some path -> write_to_channel path Obs.output_ndjson);
    match trace with
    | None -> ()
    | Some path -> write_to_channel path Obs.output_chrome_trace
  in
  Fun.protect ~finally:finish f

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

type dbs = {
  mutable line : Sic_coverage.Line_coverage.db;
  mutable toggle : Sic_coverage.Toggle_coverage.db option;
  mutable fsm : Sic_coverage.Fsm_coverage.db;
  mutable rv : Sic_coverage.Ready_valid_coverage.db;
  mutable mux : Sic_coverage.Mux_coverage.db;
}

let metric_conv =
  Arg.enum
    [ ("line", `Line); ("toggle", `Toggle); ("fsm", `Fsm); ("ready-valid", `Rv); ("mux", `Mux) ]

let metrics_arg =
  let base =
    Arg.(
      value
      & opt_all metric_conv []
      & info [ "m"; "metric" ] ~docv:"METRIC"
          ~doc:"Coverage metric (repeatable): line, toggle, fsm, ready-valid, mux.")
  in
  let flag name doc = Arg.(value & flag & info [ name ] ~doc) in
  let combine ms line toggle fsm rv mux =
    let add cond m acc = if cond && not (List.mem m acc) then acc @ [ m ] else acc in
    let ms =
      List.fold_left
        (fun acc m -> if List.mem m acc then acc else acc @ [ m ])
        [] ms
      |> add line `Line |> add toggle `Toggle |> add fsm `Fsm |> add rv `Rv |> add mux `Mux
    in
    if ms = [] then [ `Line ] else ms
  in
  Term.(
    const combine $ base
    $ flag "line" "Shorthand for $(b,-m line) (the default metric)."
    $ flag "toggle" "Shorthand for $(b,-m toggle)."
    $ flag "fsm" "Shorthand for $(b,-m fsm)."
    $ flag "ready-valid" "Shorthand for $(b,-m ready-valid)."
    $ flag "mux" "Shorthand for $(b,-m mux).")

(* instrument per metric at the right pipeline stage (§4) *)
let instrument metrics circuit =
  let dbs = { line = []; toggle = None; fsm = []; rv = []; mux = [] } in
  let c = ref circuit in
  if List.mem `Line metrics then begin
    let c', db = Sic_coverage.Line_coverage.instrument !c in
    c := c';
    dbs.line <- db
  end;
  c := Sic_passes.Compile.lower !c;
  if List.mem `Toggle metrics then begin
    let c', db = Sic_coverage.Toggle_coverage.instrument !c in
    c := c';
    dbs.toggle <- Some db
  end;
  if List.mem `Fsm metrics then begin
    let c', db = Sic_coverage.Fsm_coverage.instrument !c in
    c := c';
    dbs.fsm <- db
  end;
  if List.mem `Rv metrics then begin
    let c', db = Sic_coverage.Ready_valid_coverage.instrument !c in
    c := c';
    dbs.rv <- db
  end;
  if List.mem `Mux metrics then begin
    let c', db = Sic_coverage.Mux_coverage.instrument !c in
    c := c';
    dbs.mux <- db
  end;
  (!c, dbs)

let reports metrics dbs counts =
  let buf = Buffer.create 1024 in
  if List.mem `Line metrics then
    Buffer.add_string buf (Sic_coverage.Line_coverage.render ~with_sources:true dbs.line counts);
  (match (List.mem `Toggle metrics, dbs.toggle) with
  | true, Some db -> Buffer.add_string buf (Sic_coverage.Toggle_coverage.render db counts)
  | _ -> ());
  if List.mem `Fsm metrics then
    Buffer.add_string buf (Sic_coverage.Fsm_coverage.render dbs.fsm counts);
  if List.mem `Rv metrics then
    Buffer.add_string buf (Sic_coverage.Ready_valid_coverage.render dbs.rv counts);
  if List.mem `Mux metrics then
    Buffer.add_string buf (Sic_coverage.Mux_coverage.render dbs.mux counts);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Backends                                                             *)
(* ------------------------------------------------------------------ *)

let backend_conv =
  Arg.enum
    [ ("interp", `Interp); ("compiled", `Compiled); ("essent", `Essent); ("lanes", `Lanes) ]

let backend_arg =
  Arg.(
    value
    & opt backend_conv `Compiled
    & info [ "backend" ] ~docv:"NAME"
        ~doc:"Simulator backend: interp, compiled, essent, lanes.")

let create_backend = function
  | `Interp -> Interp.create
  | `Compiled -> fun c -> Compiled.create c
  | `Essent -> Essent.create
  | `Lanes -> fun c -> Lanes.create c

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)
(* ------------------------------------------------------------------ *)

let handle_errors f =
  try f () with
  | Sic_ir.Parser.Parse_error { line; message } ->
      Printf.eprintf "parse error at line %d: %s\n" line message;
      exit 1
  | Sic_verilog.Verilog.Error { pos; message } ->
      Printf.eprintf "%s:%d:%d: %s\n" pos.file pos.line pos.col message;
      exit 1
  | Sic_passes.Pass.Pass_error { pass; message } ->
      Printf.eprintf "pass %s failed: %s\n" pass message;
      exit 1
  | Sic_ir.Circuit.Elaboration_error m | Backend.Sim_error m ->
      Printf.eprintf "error: %s\n" m;
      exit 1
  | Db.Db_error m | Sic_coverage.Counts.Bad_format m | Profile.Bad_format m ->
      Printf.eprintf "error: %s\n" m;
      exit 1

let emit_cmd =
  let run file design output =
    handle_errors (fun () ->
        let c = Sic_passes.Check.run (load_circuit ~file ~design) in
        write_out ~output (Sic_ir.Printer.circuit_to_string c))
  in
  Cmd.v (Cmd.info "emit" ~doc:"Parse, check and pretty-print a circuit.")
    Term.(const run $ file_arg $ design_arg $ output_arg)

let lower_cmd =
  let run file design output profile trace =
    handle_errors (fun () ->
        with_telemetry ~profile ~trace (fun () ->
            let c = Sic_passes.Compile.lower (load_circuit ~file ~design) in
            write_out ~output (Sic_ir.Printer.circuit_to_string c)))
  in
  Cmd.v (Cmd.info "lower" ~doc:"Lower a circuit to the flat low form.")
    Term.(const run $ file_arg $ design_arg $ output_arg $ profile_flag $ trace_flag)

let cycles_arg =
  Arg.(value & opt int 1000 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to simulate.")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Stimulus seed.")

let counts_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-counts" ] ~docv:"PATH" ~doc:"Save the raw counts map here.")

let replay_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"TRACE.vcd" ~doc:"Replay a recorded input trace instead of random stimulus.")

let html_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "html" ] ~docv:"PATH" ~doc:"Also write a self-contained HTML report here.")

let vcd_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"PATH" ~doc:"Dump a waveform of the run to this VCD file.")

let heat_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "heat" ] ~docv:"PROFILE"
        ~doc:
          "Tint the HTML report's annotated sources with per-line engine heat from this \
           profile artifact (as written by $(b,sic hotspots --save) or $(b,sic campaign \
           --profile-out)).")

(* a profile artifact as per-line heat for the HTML report: the report
   library takes plain data, so the [file:line] keys are split here *)
let heat_of_profile (p : Profile.t) : Sic_coverage.Html_report.line_heat list =
  List.concat_map
    (fun dp ->
      List.filter_map
        (fun (l : Profile.line_agg) ->
          match String.rindex_opt l.Profile.l_loc ':' with
          | None -> None
          | Some i -> (
              let file = String.sub l.Profile.l_loc 0 i in
              let rest =
                String.sub l.Profile.l_loc (i + 1) (String.length l.Profile.l_loc - i - 1)
              in
              match int_of_string_opt rest with
              | None -> None
              | Some line ->
                  Some
                    {
                      Sic_coverage.Html_report.heat_file = file;
                      heat_line = line;
                      heat_hits = l.Profile.l_hits;
                      heat_time_ns = l.Profile.l_time_ns;
                    }))
        (Profile.by_line dp))
    p

let waivers_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "waivers" ] ~docv:"FILE"
        ~doc:"Coverage exclusion file: one name pattern per line, * wildcards, # comments.")

let lanes_arg =
  Arg.(
    value
    & opt int 1
    & info [ "lanes" ] ~docv:"K"
        ~doc:
          "With --backend lanes: simulate $(docv) independent stimulus seeds bit-parallel \
           in one engine pass (1-62). Lane k's stream derives from --seed by \
           deterministic splitting; the report merges all $(docv) runs' counts. With K=1 \
           (the default) the lanes backend runs as an ordinary lockstep backend whose \
           counts are byte-identical to compiled's.")

let cover_cmd =
  let run file design metrics backend cycles seed lanes_k counts_out replay html vcd
      waivers heat profile trace =
    handle_errors (fun () ->
        with_telemetry ~profile ~trace @@ fun () ->
        let c = load_circuit ~file ~design in
        let low, dbs = instrument metrics c in
        let low =
          match waivers with
          | None -> low
          | Some path ->
              let patterns = Sic_coverage.Removal.load_waivers path in
              let r = Sic_coverage.Removal.remove_matching ~patterns low in
              Printf.printf "# %d cover points waived by %s\n" (List.length r.Sic_coverage.Removal.removed) path;
              r.Sic_coverage.Removal.circuit
        in
        let counts =
          match backend with
          | `Lanes when lanes_k > 1 ->
              (* the bit-parallel path: k seeds advance per tape pass; the
                 counts below are the merge of k solo-run-exact per-lane
                 maps. Replay and waveforms are single-stream concepts *)
              if replay <> None || vcd <> None then begin
                Printf.eprintf "cover: --lanes > 1 is incompatible with --replay/--vcd\n";
                exit 2
              end;
              let k = max 1 (min 62 lanes_k) in
              let lt = Lanes.build ~lanes:k low in
              Backend.reset_sequence (Lanes.to_backend ~name:"lanes" lt);
              let master = Sic_fuzz.Rng.create seed in
              let streams =
                Array.init k (fun l -> Sic_fuzz.Rng.bits30 (Sic_fuzz.Rng.split master l))
              in
              Lanes.run_random lt ~streams ~cycles;
              Printf.printf "# lanes: %d seeds x %d cycles per pass, %.0f%% of tape vectorized\n"
                k cycles
                (100. *. Lanes.vectorized_fraction lt);
              Counts.merge (List.init k (Lanes.lane_counts lt))
          | _ ->
              let b, close_trace =
                let b = create_backend backend low in
                match vcd with
                | None -> (b, fun () -> ())
                | Some path -> Tracer.attach ~regs:true ~path b
              in
              (match replay with
              | Some path -> Replay.replay b (Replay.load_vcd path)
              | None ->
                  Backend.reset_sequence b;
                  let rng = Sic_fuzz.Rng.create seed in
                  Backend.random_stimulus ~bits:(Sic_fuzz.Rng.bits30 rng) ~cycles b);
              close_trace ();
              b.Backend.counts ()
        in
        print_string (reports metrics dbs counts);
        (match counts_out with None -> () | Some path -> Counts.save path counts);
        match html with
        | None -> ()
        | Some path ->
            Sic_coverage.Html_report.save path
              ?line:(if List.mem `Line metrics then Some dbs.line else None)
              ?toggle:dbs.toggle
              ?fsm:(if List.mem `Fsm metrics then Some dbs.fsm else None)
              ?rv:(if List.mem `Rv metrics then Some dbs.rv else None)
              ?profile:(Option.map (fun p -> heat_of_profile (Profile.load p)) heat)
              counts)
  in
  Cmd.v
    (Cmd.info "cover"
       ~doc:"Instrument, simulate, and print coverage reports (random stimulus or a VCD replay).")
    Term.(
      const run $ file_arg $ design_arg $ metrics_arg $ backend_arg $ cycles_arg $ seed_arg
      $ lanes_arg $ counts_out_arg $ replay_arg $ html_arg $ vcd_arg $ waivers_arg
      $ heat_arg $ profile_flag $ trace_flag)

let merge_cmd =
  let inputs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"COUNTS..." ~doc:"Counts files.")
  in
  let run inputs output =
    handle_errors (fun () ->
        let merged = Counts.merge (List.map Counts.load inputs) in
        match output with
        | None -> print_string (Counts.to_string merged)
        | Some path -> Counts.save path merged)
  in
  Cmd.v (Cmd.info "merge" ~doc:"Merge coverage counts files (pointwise saturating sum).")
    Term.(const run $ inputs $ output_arg)

let bound_arg =
  Arg.(value & opt int 20 & info [ "bound" ] ~docv:"K" ~doc:"BMC unrolling bound.")

let bmc_cmd =
  let run file design metrics bound profile trace =
    handle_errors (fun () ->
        with_telemetry ~profile ~trace @@ fun () ->
        let c = load_circuit ~file ~design in
        let low, _dbs = instrument metrics c in
        let report = Sic_formal.Bmc.check_covers ~bound low in
        print_string (Sic_formal.Bmc.render report))
  in
  Cmd.v
    (Cmd.info "bmc"
       ~doc:"Formal cover-trace generation: find reaching inputs or prove unreachability within the bound.")
    Term.(const run $ file_arg $ design_arg $ metrics_arg $ bound_arg $ profile_flag $ trace_flag)

let execs_arg =
  Arg.(value & opt int 500 & info [ "execs" ] ~docv:"N" ~doc:"Fuzzer executions.")

let corpus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Corpus directory: existing $(docv)/*.bin seeds are loaded as extra initial \
           inputs (e.g. sic close's witness seeds), and the final corpus is saved back \
           when the run ends.")

let fuzz_cmd =
  let run file design metrics execs seed backend corpus profile trace =
    handle_errors (fun () ->
        with_telemetry ~profile ~trace @@ fun () ->
        let c = load_circuit ~file ~design in
        let low, dbs = instrument metrics c in
        let h = Sic_fuzz.Fuzzer.make_harness ~create:(create_backend backend) low in
        let seeds =
          match corpus with None -> [] | Some dir -> Sic_fuzz.Fuzzer.load_corpus dir
        in
        if seeds <> [] then
          Printf.printf "# corpus: %d seed(s) loaded from %s\n" (List.length seeds)
            (Option.get corpus);
        let r =
          Sic_fuzz.Fuzzer.run ~seed ~execs ~seed_cycles:32 ~max_cycles:128 ~corpus:seeds h
        in
        (match corpus with
        | None -> ()
        | Some dir ->
            Sic_fuzz.Fuzzer.save_corpus dir r.Sic_fuzz.Fuzzer.corpus;
            Printf.printf "# corpus: %d testcase(s) saved to %s\n"
              (List.length r.Sic_fuzz.Fuzzer.corpus) dir);
        Printf.printf "execs %d, corpus %d, feedback pairs %d\n" r.Sic_fuzz.Fuzzer.final.execs
          r.Sic_fuzz.Fuzzer.final.corpus_size r.Sic_fuzz.Fuzzer.final.seen_pairs;
        print_string (reports metrics dbs r.Sic_fuzz.Fuzzer.final.cumulative))
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Coverage-directed fuzzing; prints cumulative coverage reports.")
    Term.(
      const run $ file_arg $ design_arg $ metrics_arg $ execs_arg $ seed_arg $ backend_arg
      $ corpus_arg $ profile_flag $ trace_flag)

let width_arg =
  Arg.(value & opt int 16 & info [ "width" ] ~docv:"W" ~doc:"Coverage counter width in bits.")

let scan_cmd =
  let db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"DIR"
          ~doc:
            "Apply §5.3 removal against this coverage database first: cover points the \
             database already covers (at --threshold) are stripped before the scan chain \
             is built, so the FPGA image only carries still-uncovered points.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt int 10
      & info [ "threshold" ] ~docv:"N"
          ~doc:"Removal threshold: drop covers the database saw at least $(docv) times.")
  in
  let run file design metrics width db threshold cycles seed =
    handle_errors (fun () ->
        let c = load_circuit ~file ~design in
        let low, dbs = instrument metrics c in
        let low =
          match db with
          | None -> low
          | Some dir ->
              let covered = Db.removal_counts (Db.load dir) in
              let r = Sic_coverage.Removal.remove_covered ~threshold covered low in
              Printf.printf "removal        : %d covered points dropped, %d kept (db %s)\n"
                (List.length r.Sic_coverage.Removal.removed)
                (List.length r.Sic_coverage.Removal.kept)
                dir;
              r.Sic_coverage.Removal.circuit
        in
        let chained, chain = Sic_firesim.Scan_chain.insert ~width low in
        let n = List.length chain.Sic_firesim.Scan_chain.order in
        let base = Sic_firesim.Resource_model.baseline low in
        let u = Sic_firesim.Resource_model.with_coverage base ~n_covers:n ~width in
        Printf.printf "cover counters : %d x %d bits\n" n width;
        Printf.printf "scan-out cost  : %d cycles\n" (n * width);
        Format.printf "resources      : %a@."
          Sic_firesim.Resource_model.pp_utilization u;
        ignore chained;
        (* dry-run the instrumented design so the scan report also shows
           what the workload would actually cover *)
        if cycles > 0 then begin
          let b = Compiled.create low in
          Backend.reset_sequence b;
          let rng = Sic_fuzz.Rng.create seed in
          Backend.random_stimulus ~bits:(Sic_fuzz.Rng.bits30 rng) ~cycles b;
          print_string (reports metrics dbs (b.Backend.counts ()))
        end)
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:
         "Insert the FPGA coverage scan chain, report modelled resources (optionally only \
          for points a coverage database has not yet covered), and simulate the workload \
          to preview coverage.")
    Term.(
      const run $ file_arg $ design_arg $ metrics_arg $ width_arg $ db_arg $ threshold_arg
      $ cycles_arg $ seed_arg)

let diff_cmd =
  let before = Arg.(required & pos 0 (some file) None & info [] ~docv:"BEFORE.cnt") in
  let after = Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER.cnt") in
  let run before after =
    handle_errors (fun () ->
        print_string
          (Counts.render_diff
             (Counts.diff ~before:(Counts.load before) ~after:(Counts.load after))))
  in
  Cmd.v (Cmd.info "diff" ~doc:"Compare two coverage counts files.")
    Term.(const run $ before $ after)

let stats_cmd =
  let lowered =
    Arg.(value & flag & info [ "lowered" ] ~doc:"Show statistics of the lowered circuit.")
  in
  let run file design lowered =
    handle_errors (fun () ->
        let c = load_circuit ~file ~design in
        let c = if lowered then Sic_passes.Compile.lower c else Sic_passes.Check.run c in
        print_string (Sic_passes.Stats.render c))
  in
  Cmd.v (Cmd.info "stats" ~doc:"Circuit statistics per module.")
    Term.(const run $ file_arg $ design_arg $ lowered)

let profile_cmd =
  let cycles_arg =
    Arg.(value & opt int 5000 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to simulate.")
  in
  let run file design metrics backend cycles seed profile trace =
    handle_errors (fun () ->
        (* always record: this subcommand *is* the telemetry report *)
        Obs.enable ();
        with_telemetry ~profile ~trace @@ fun () ->
        let c = load_circuit ~file ~design in
        let low, _dbs =
          Obs.span "phase:compile" (fun () -> instrument metrics c)
        in
        let b = create_backend backend low in
        Obs.span "phase:simulate"
          ~args:[ ("cycles", Obs.Int cycles) ]
          (fun () ->
            Backend.reset_sequence b;
            let rng = Sic_fuzz.Rng.create seed in
            Backend.random_stimulus ~bits:(Sic_fuzz.Rng.bits30 rng) ~cycles b);
        let counts = b.Backend.counts () in
        Printf.printf "design   : %s\n" low.Sic_ir.Circuit.circuit_name;
        Printf.printf "backend  : %s\n" b.Backend.backend_name;
        Printf.printf "cycles   : %d\n" (b.Backend.cycles ());
        Printf.printf "covers   : %d/%d hit\n" (Counts.covered_points counts)
          (Counts.total_points counts);
        let simulate_us =
          List.fold_left
            (fun acc (s : Obs.span_stat) ->
              if s.Obs.stat_name = "phase:simulate" then acc +. s.Obs.total_us else acc)
            0. (Obs.span_stats ())
        in
        if simulate_us > 0. then
          Printf.printf "speed    : %.0f cycles/sec\n"
            (float_of_int (b.Backend.cycles ()) /. (simulate_us /. 1e6));
        print_newline ();
        print_string (Obs.render_span_table ()))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile and simulate a design with telemetry on; print a per-pass/per-phase \
          timing table (combine with --profile/--trace to export the raw events).")
    Term.(
      const run $ file_arg $ design_arg $ metrics_arg $ backend_arg $ cycles_arg $ seed_arg
      $ profile_flag $ trace_flag)

let hotspots_cmd =
  let cycles_arg =
    Arg.(value & opt int 10_000 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to simulate.")
  in
  let top_arg =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"K" ~doc:"Rows per ranked table (source lines, statements).")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"PATH"
          ~doc:
            "Also write collapsed-stack lines here (one $(b,design;file:line;statement;op \
             count) per tape instruction), ready for flamegraph tooling.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"PATH"
          ~doc:"Also save the raw profile artifact here (mergeable with campaign profiles).")
  in
  let sample_arg =
    Arg.(
      value & opt int 64
      & info [ "sample-every" ] ~docv:"N"
          ~doc:
            "Clock every instruction on every $(docv)th tape evaluation (0: hit counts \
             only, no timing).")
  in
  let run file design cycles seed top folded save sample =
    handle_errors (fun () ->
        let c = load_circuit ~file ~design in
        let low = Sic_passes.Compile.lower c in
        let mode =
          if sample <= 0 then Compiled.Counts_only else Compiled.Sampled sample
        in
        let sim = Compiled.build ~profile:mode low in
        let b = Compiled.to_backend ~name:"compiled" sim in
        Backend.reset_sequence b;
        let rng = Sic_fuzz.Rng.create seed in
        Backend.random_stimulus ~bits:(Sic_fuzz.Rng.bits30 rng) ~cycles b;
        match Compiled.profile sim with
        | None -> assert false
        | Some dp ->
            let p = [ dp ] in
            Printf.printf "design   : %s\n" dp.Profile.design;
            Printf.printf "cycles   : %d\n" dp.Profile.cycles;
            Printf.printf "tape     : %s\n" (Compiled.stats sim);
            (* how much of the tape the change-driven schedule actually
               re-evaluates, on average *)
            let execs = Compiled.exec_counts sim in
            let n = Array.length execs in
            if n > 0 && dp.Profile.runs > 0 then
              Printf.printf "activity : %.1f%% of %d instructions per evaluation (%d runs)\n"
                (100.0
                *. float_of_int (Array.fold_left ( + ) 0 execs)
                /. float_of_int (n * dp.Profile.runs))
                n dp.Profile.runs;
            print_newline ();
            print_string (Profile.render ~top p);
            (match folded with
            | None -> ()
            | Some path -> write_out ~output:(Some path) (Profile.folded p));
            match save with
            | None -> ()
            | Some path -> Profile.save path p)
  in
  Cmd.v
    (Cmd.info "hotspots"
       ~doc:
         "Profile the word-level engine on a design: per-instruction hit counts and \
          sampled self-times, ranked per source line and per IR statement, with \
          collapsed-stack output for flamegraphs.")
    Term.(
      const run $ file_arg $ design_arg $ cycles_arg $ seed_arg $ top_arg $ folded_arg
      $ save_arg $ sample_arg)

(* ------------------------------------------------------------------ *)
(* The coverage database                                                *)
(* ------------------------------------------------------------------ *)

let db_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Coverage database directory.")

let db_init_cmd =
  let run dir = handle_errors (fun () -> ignore (Db.init dir)) in
  Cmd.v
    (Cmd.info "init" ~doc:"Create an empty coverage database (a directory with a manifest).")
    Term.(const run $ db_dir_arg)

let db_add_cmd =
  let counts_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"COUNTS.cnt" ~doc:"Counts file.")
  in
  let design =
    Arg.(
      value & opt string "unknown" & info [ "design" ] ~docv:"NAME" ~doc:"Design the run covered.")
  in
  let backend =
    Arg.(
      value
      & opt string "external"
      & info [ "backend" ] ~docv:"NAME" ~doc:"Backend that produced the counts.")
  in
  let workload =
    Arg.(value & opt string "external" & info [ "workload" ] ~docv:"NAME" ~doc:"Workload name.")
  in
  let run dir counts design backend workload seed cycles =
    handle_errors (fun () ->
        (* outer lock makes the load-add read-modify-write atomic against
           concurrent adders (id assignment reads the manifest) *)
        let r =
          Db.Lock.with_lock dir (fun () ->
              let db = Db.load dir in
              Db.add db ~design ~backend ~workload ~seed ~cycles (Ok (Counts.load counts)))
        in
        print_endline (Db.render_run_line r))
  in
  Cmd.v
    (Cmd.info "add"
       ~doc:
         "Register an externally produced counts file (any simulator, any format-v1 \
          producer) as a run.")
    Term.(const run $ db_dir_arg $ counts_arg $ design $ backend $ workload $ seed_arg $ cycles_arg)

let db_list_cmd =
  let run dir = handle_errors (fun () -> print_string (Db.render_list (Db.load dir))) in
  Cmd.v (Cmd.info "list" ~doc:"List every recorded run.") Term.(const run $ db_dir_arg)

let db_report_cmd =
  let timeline_flag =
    Arg.(
      value
      & flag
      & info [ "timeline" ]
          ~doc:
            "Also print per-run coverage-convergence sparklines and, with several backends \
             recorded, which backend saturated earliest.")
  in
  let html_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:
            "Write a self-contained HTML report for the database: aggregate summary plus \
             one convergence curve per run that recorded a timeline.")
  in
  let run dir counts_out timeline html =
    handle_errors (fun () ->
        let db = Db.load dir in
        print_string (Db.render_report db);
        if timeline then print_string (Db.render_timelines db);
        (match html with
        | None -> ()
        | Some path ->
            let timelines =
              List.filter_map
                (fun (r : Db.run) ->
                  Option.map
                    (fun tl ->
                      (Printf.sprintf "%s %s/%s" r.Db.id r.Db.design r.Db.backend, tl))
                    (Db.load_timeline db r))
                (Db.ok_runs db)
            in
            Sic_coverage.Html_report.save path
              ~title:("coverage database " ^ dir)
              ~timelines
              ~excluded:(Db.excluded_names db)
              (Db.aggregate db));
        match counts_out with
        | None -> ()
        | Some path -> Counts.save path (Db.removal_counts db))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Merged coverage summary across all runs; --timeline adds convergence sparklines, \
          --html writes a report page, --save-counts exports the aggregate for §5.3 \
          removal (sic scan --db does this in one step).")
    Term.(const run $ db_dir_arg $ counts_out_arg $ timeline_flag $ html_arg)

let db_diff_cmd =
  let before = Arg.(required & pos 1 (some string) None & info [] ~docv:"RUN1") in
  let after = Arg.(required & pos 2 (some string) None & info [] ~docv:"RUN2") in
  let run dir before after =
    handle_errors (fun () ->
        print_string (Counts.render_diff (Db.diff (Db.load dir) ~before ~after)))
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Compare two runs' coverage by run id.")
    Term.(const run $ db_dir_arg $ before $ after)

let db_rank_cmd =
  let threshold =
    Arg.(
      value
      & opt int 1
      & info [ "threshold" ] ~docv:"N" ~doc:"A point counts as covered at $(docv) hits.")
  in
  let json_flag =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: threshold, non-excluded points total/covered, the \
             uncovered and excluded point lists, and the pick with per-run marginal gain.")
  in
  let run dir threshold json =
    handle_errors (fun () ->
        let db = Db.load dir in
        if json then print_endline (Sic_obs.Json.to_string (Db.rank_json ~threshold db))
        else print_string (Db.render_rank ~threshold db))
  in
  Cmd.v
    (Cmd.info "rank"
       ~doc:
         "Greedy set cover over the runs: the (approximately) minimal subset whose merged \
          coverage equals the whole database's — test-suite minimization.")
    Term.(const run $ db_dir_arg $ threshold $ json_flag)

let db_cmd =
  Cmd.group
    (Cmd.info "db" ~doc:"The persistent coverage database (one directory, many runs).")
    [ db_init_cmd; db_add_cmd; db_list_cmd; db_report_cmd; db_diff_cmd; db_rank_cmd ]

(* ------------------------------------------------------------------ *)
(* Campaigns                                                            *)
(* ------------------------------------------------------------------ *)

(* Forward every run the campaign just recorded (manifest index >=
   [already]) to a running coverage server — the distributed §5.3 loop:
   many local producers, one merged remote report. The push wire format
   is the counts v1 text itself, so this is just re-uploading the files
   the campaign wrote. *)
let push_campaign_runs ~url ~worker ~db_dir ~already =
  let db = Db.load db_dir in
  let fresh = List.filteri (fun i _ -> i >= already) (Db.runs db) in
  let pushed = ref 0 in
  (try
     List.iter
       (fun (r : Db.run) ->
         match r.Db.status with
         | Db.Run_failed _ -> ()
         | Db.Run_ok ->
             let resp =
               Serve.Client.push_run ~worker ~url ~design:r.Db.design ~backend:r.Db.backend
                 ~workload:r.Db.workload ~seed:r.Db.seed ~cycles:r.Db.cycles
                 (Db.load_counts db r)
             in
             if resp.Serve.Client.status <> 201 then begin
               Printf.eprintf "push: %s/runs answered %d %s\n%s" url
                 resp.Serve.Client.status resp.Serve.Client.reason resp.Serve.Client.body;
               exit 1
             end;
             incr pushed)
       fresh
   with
  | Unix.Unix_error (e, _, _) ->
      Printf.eprintf "push: cannot reach %s: %s\n" url (Unix.error_message e);
      exit 1
  | Serve.Client.Error m ->
      Printf.eprintf "push: %s\n" m;
      exit 1);
  Printf.printf "pushed %d of %d new runs to %s\n" !pushed (List.length fresh) url

(* The worker id campaign telemetry travels under: one campaign process
   = one producer on the server's dashboard. *)
let campaign_worker_id () =
  Printf.sprintf "%s-%d" (try Unix.gethostname () with _ -> "local") (Unix.getpid ())

(* Forward the orchestrator's protocol-v2 worker heartbeats to a running
   coverage server (POST /heartbeat) so its /watch subscribers see live
   per-worker health while the campaign runs. Strictly best-effort and
   wall-clock throttled: the first failure prints one warning and
   disables forwarding — telemetry must never sink a campaign. *)
let heartbeat_forwarder ~url ~worker : Fleet.job_event -> unit =
  let host, port, _ = Serve.Client.parse_url url in
  let conn = ref None in
  let dead = ref false in
  let last = ref 0. in
  fun ev ->
    match ev with
    | Fleet.Job_heartbeat { job; hb_cycles; hb_covered } when not !dead ->
        let now = Unix.gettimeofday () in
        if now -. !last >= 0.5 then begin
          last := now;
          try
            let c =
              match !conn with
              | Some c -> c
              | None ->
                  let c = Serve.Client.connect ~host ~port in
                  conn := Some c;
                  c
            in
            let target =
              Printf.sprintf "/heartbeat?worker=%s&job=%d&design=%s&backend=%s&cycles=%d&covered=%d"
                (Serve.Http.percent_encode worker)
                job.Fleet.index
                (Serve.Http.percent_encode job.Fleet.design)
                (Fleet.backend_name job.Fleet.backend)
                hb_cycles hb_covered
            in
            ignore (Serve.Client.request c ~meth:"POST" ~target ())
          with _ ->
            dead := true;
            (match !conn with Some c -> Serve.Client.close c | None -> ());
            conn := None;
            Printf.eprintf "\npush: heartbeat forwarding to %s disabled (server unreachable)\n%!"
              url
        end
    | _ -> ()

let campaign_cmd =
  let db_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "db" ] ~docv:"DIR" ~doc:"Coverage database to run into (created if missing).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Parallel worker processes.")
  in
  let designs_arg =
    Arg.(
      non_empty
      & opt_all string []
      & info [ "design" ] ~docv:"NAME" ~doc:"Built-in design (repeatable).")
  in
  let backends_arg =
    Arg.(
      value
      & opt_all string [ "compiled" ]
      & info [ "backend" ] ~docv:"NAME"
          ~doc:
            "Backend for the single default wave (repeatable): interp, compiled, essent, \
             fpga, fuzz, bmc. Ignored when --waves is given.")
  in
  let waves_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "waves" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated waves, each a +-separated backend group, cheap to expensive \
             — e.g. 'interp+compiled,fuzz,bmc'. After each wave, covered points are \
             removed from the next wave's instrumentation (§5.3).")
  in
  let seeds_arg =
    Arg.(
      value
      & opt int 1
      & info [ "seeds" ] ~docv:"K" ~doc:"Runs per (design, backend) within a wave.")
  in
  let execs_arg =
    Arg.(value & opt int 300 & info [ "execs" ] ~docv:"N" ~doc:"Fuzz executions per fuzz job.")
  in
  let bound_arg =
    Arg.(value & opt int 10 & info [ "bound" ] ~docv:"K" ~doc:"BMC bound per bmc job.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt int 1
      & info [ "threshold" ] ~docv:"N"
          ~doc:"Inter-wave removal threshold: strip points covered at least $(docv) times.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC" ~doc:"Kill any job running longer than $(docv) seconds.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 1
      & info [ "retries" ] ~docv:"R"
          ~doc:"Extra attempts for a crashed, timed-out or failing job before recording it \
                as a failed run.")
  in
  let scan_width_arg =
    Arg.(
      value & opt int 16 & info [ "scan-width" ] ~docv:"W" ~doc:"FPGA coverage counter width.")
  in
  let inject_crash_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-crash" ] ~docv:"IDX"
          ~doc:
            "Testing aid: the worker of the job with this global index kills itself \
             (SIGKILL) on every attempt, exercising failure isolation.")
  in
  let lanes_arg =
    Arg.(
      value
      & opt int 1
      & info [ "lanes" ] ~docv:"K"
          ~doc:
            "Runs packed bit-parallel into each lanes-backend job (1-62): every worker \
             process advances $(docv) independent stimulus streams per tape pass, so \
             -j N --lanes K multiplies process by lane parallelism. Pure scheduling: \
             the recorded runs, seeds and database bytes are identical at any $(docv).")
  in
  let timeline_every_arg =
    Arg.(
      value
      & opt int 100
      & info [ "timeline-every" ] ~docv:"N"
          ~doc:
            "Sample each run's coverage-convergence timeline every $(docv) budget units \
             (cycles or execs); persisted per run in the database. 0 disables sampling.")
  in
  let progress_flag =
    Arg.(
      value
      & flag
      & info [ "progress" ]
          ~doc:
            "Render a live single-line campaign status to stderr: jobs done/failed/running, \
             covered points (union-max estimate from worker heartbeats), throughput, ETA.")
  in
  let push_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "push" ] ~docv:"URL"
          ~doc:
            "After the campaign, POST every run it recorded to a running coverage server \
             (sic serve) at $(docv), e.g. http://127.0.0.1:8080. The server's merge is \
             idempotent (union-max), so re-pushing is safe.")
  in
  let profile_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Engine hotspot profiling: compiled-engine workers count value-changing \
             evaluations per tape instruction and ship the profile back with their \
             result; the merged (deterministic, -j independent) artifact is written to \
             $(docv). Feed it to sic cover --heat for per-line heat in the HTML report.")
  in
  let run db_dir jobs designs metrics backends waves seeds lanes cycles execs bound seed
      threshold timeout retries scan_width inject_crash timeline_every progress push
      profile_out profile trace =
    handle_errors (fun () ->
        let summary, already, worker =
          with_telemetry ~profile ~trace @@ fun () ->
        let parse_backend s =
          match Fleet.backend_of_string s with
          | Some b -> b
          | None ->
              Printf.eprintf "unknown backend %s; available: interp, compiled, essent, \
                              lanes, fpga, fuzz, bmc\n"
                s;
              exit 2
        in
        let waves =
          match waves with
          | None -> [ List.map parse_backend backends ]
          | Some spec ->
              String.split_on_char ',' spec
              |> List.filter (fun s -> String.trim s <> "")
              |> List.map (fun group ->
                     String.split_on_char '+' group |> List.map String.trim
                     |> List.map parse_backend)
        in
        let designs =
          List.map
            (fun name ->
              let c = load_circuit ~file:None ~design:(Some name) in
              (name, fst (instrument metrics c)))
            designs
        in
        let db = Db.open_or_init db_dir in
        let already = List.length (Db.runs db) in
        let spec =
          {
            Fleet.designs;
            waves;
            seeds;
            lanes;
            cycles;
            execs;
            bound;
            scan_width;
            master_seed = seed;
            jobs;
            timeout_s = timeout;
            retries;
            threshold;
            timeline_every;
            profile = profile_out <> None;
          }
        in
        let inject_crash =
          match inject_crash with None -> fun _ -> false | Some i -> fun idx -> idx = i
        in
        let prog =
          if progress then Some (Fleet.Progress.create ~total:(Fleet.spec_total_jobs spec) ())
          else None
        in
        let worker = campaign_worker_id () in
        let forward =
          match push with Some url -> Some (heartbeat_forwarder ~url ~worker) | None -> None
        in
        let consumers =
          List.filter_map Fun.id
            [ Option.map (fun p ev -> Fleet.Progress.on_event p ev) prog; forward ]
        in
        let on_event =
          match consumers with [] -> None | cs -> Some (fun ev -> List.iter (fun f -> f ev) cs)
        in
        let summary = Fleet.run_campaign ~inject_crash ?on_event ~db spec in
        (match prog with Some p -> Fleet.Progress.finish p | None -> ());
        (summary, already, worker)
        in
        print_string (Fleet.render_summary summary);
        (match profile_out with
        | None -> ()
        | Some path ->
            Profile.save path summary.Fleet.profile;
            Printf.printf "engine profile: %s (%d tape section%s)\n" path
              (List.length summary.Fleet.profile)
              (if List.length summary.Fleet.profile = 1 then "" else "s"));
        (match push with
        | None -> ()
        | Some url -> push_campaign_runs ~url ~worker ~db_dir ~already);
        (* nonzero exit so CI notices jobs that exhausted their retries;
           deferred past the telemetry finalizer, which exit would skip *)
        if summary.Fleet.failed > 0 then begin
          Printf.eprintf "campaign: %d of %d jobs failed after retries (sic db list %s)\n"
            summary.Fleet.failed summary.Fleet.total_jobs db_dir;
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run designs x backends x seeds in parallel forked workers into a coverage \
          database, wave by wave with §5.3 removal between waves. The database contents \
          are byte-for-byte independent of -j. Exits nonzero if any job exhausted its \
          retries.")
    Term.(
      const run $ db_arg $ jobs_arg $ designs_arg $ metrics_arg $ backends_arg $ waves_arg
      $ seeds_arg $ lanes_arg $ cycles_arg $ execs_arg $ bound_arg $ seed_arg
      $ threshold_arg $ timeout_arg $ retries_arg $ scan_width_arg $ inject_crash_arg
      $ timeline_every_arg $ progress_flag $ push_arg $ profile_out_arg $ profile_flag
      $ trace_flag)

(* ------------------------------------------------------------------ *)
(* Coverage closure                                                     *)
(* ------------------------------------------------------------------ *)

let close_cmd =
  let db_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "db" ] ~docv:"DIR" ~doc:"Coverage database to close into (created if missing).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Parallel worker processes.")
  in
  let bound_arg =
    Arg.(
      value
      & opt int 10
      & info [ "bound" ] ~docv:"K"
          ~doc:
            "BMC unrolling depth per point; a point unreachable within $(docv) cycles is \
             excluded as formally dead.")
  in
  let execs_arg =
    Arg.(
      value
      & opt int 300
      & info [ "execs" ] ~docv:"N"
          ~doc:"Budget of each witness-seeded fuzz wave; 0 disables the fuzz phase.")
  in
  let max_waves_arg =
    Arg.(
      value
      & opt int 8
      & info [ "max-waves" ] ~docv:"W"
          ~doc:"Stop after $(docv) waves even without a fixpoint (safety valve).")
  in
  let threshold_arg =
    Arg.(
      value
      & opt int 1
      & info [ "threshold" ] ~docv:"N"
          ~doc:"A point whose aggregate count is below $(docv) is still open.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC" ~doc:"Kill any job running longer than $(docv) seconds.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 1
      & info [ "retries" ] ~docv:"R"
          ~doc:
            "Extra attempts for a crashed or timed-out job; a point whose BMC job \
             exhausts them stays open and is retried next wave.")
  in
  let corpus_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Save every witness-derived fuzz seed here when the loop stops — sic fuzz \
             --corpus $(docv) resumes mutation from the hard-to-reach states.")
  in
  let push_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "push" ] ~docv:"URL"
          ~doc:
            "After closure, POST every run the loop recorded to a running coverage server \
             (sic serve) at $(docv).")
  in
  let run db_dir jobs file design metrics bound execs max_waves seed threshold timeout
      retries corpus_out push profile trace =
    handle_errors (fun () ->
        let outcome, already, worker =
          with_telemetry ~profile ~trace @@ fun () ->
          let c = load_circuit ~file ~design in
          let low, _dbs = instrument metrics c in
          let design_name =
            match (design, file) with
            | Some d, _ -> d
            | None, Some f -> Filename.remove_extension (Filename.basename f)
            | None, None -> low.Sic_ir.Circuit.circuit_name
          in
          let db = Db.open_or_init db_dir in
          let already = List.length (Db.runs db) in
          let config =
            {
              Sic_close.Close.design = design_name;
              circuit = low;
              bound;
              execs;
              jobs;
              timeout_s = timeout;
              retries;
              max_waves;
              master_seed = seed;
              threshold;
            }
          in
          let worker = campaign_worker_id () in
          let on_event =
            match push with Some url -> Some (heartbeat_forwarder ~url ~worker) | None -> None
          in
          let outcome =
            Sic_close.Close.close ~log:(fun line -> Printf.printf "%s\n%!" line) ?on_event
              ~db config
          in
          (outcome, already, worker)
        in
        print_string (Sic_close.Close.render_outcome outcome);
        (match corpus_out with
        | None -> ()
        | Some dir ->
            Sic_fuzz.Fuzzer.save_corpus dir outcome.Sic_close.Close.corpus;
            Printf.printf "corpus : saved to %s\n" dir);
        (match push with
        | None -> ()
        | Some url -> push_campaign_runs ~url ~worker ~db_dir ~already);
        (* nonzero exit when points stay open: closure did not close *)
        if outcome.Sic_close.Close.points_open > 0 then begin
          Printf.eprintf "close: %d point(s) still open (sic db report %s)\n"
            outcome.Sic_close.Close.points_open db_dir;
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "close"
       ~doc:
         "Automatic coverage closure: per wave, BMC every uncovered point in parallel, \
          harvest the witnesses into the database, recycle them as fuzzer corpus seeds, \
          and exclude points proven unreachable within the bound — iterating to a \
          fixpoint. Database bytes are independent of -j. Exits nonzero if points remain \
          neither covered nor excluded.")
    Term.(
      const run $ db_arg $ jobs_arg $ file_arg $ design_arg $ metrics_arg $ bound_arg
      $ execs_arg $ max_waves_arg $ seed_arg $ threshold_arg $ timeout_arg $ retries_arg
      $ corpus_out_arg $ push_arg $ profile_flag $ trace_flag)

(* ------------------------------------------------------------------ *)
(* The coverage server                                                  *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let db_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "db" ] ~docv:"DIR"
          ~doc:"Coverage database directory to serve (created if missing).")
  in
  let host_arg =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind (0.0.0.0 for all interfaces).")
  in
  let port_arg =
    Arg.(
      value
      & opt int 8080
      & info [ "port" ] ~docv:"P" ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let threads_arg =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let run db_dir host port threads profile trace =
    handle_errors (fun () ->
        with_telemetry ~profile ~trace @@ fun () ->
        ignore (Db.open_or_init db_dir);
        Serve.run ~host ~port ~threads ~db_dir ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a coverage database over HTTP: POST /runs ingests counts files from any \
          producer on any host, GET /report[.html] serves the merged (union-max) coverage, \
          plus /runs, /rank, /diff, /timelines, /watch (live SSE), /dashboard, /metrics \
          (JSON or Prometheus), /healthz. Stops gracefully on SIGINT/SIGTERM.")
    Term.(const run $ db_arg $ host_arg $ port_arg $ threads_arg $ profile_flag $ trace_flag)

(* ------------------------------------------------------------------ *)
(* Watching a live campaign                                             *)
(* ------------------------------------------------------------------ *)

let watch_cmd =
  let url_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"URL" ~doc:"Coverage server root, e.g. http://127.0.0.1:8080.")
  in
  let runs_arg =
    Arg.(
      value
      & opt int 0
      & info [ "runs" ] ~docv:"N"
          ~doc:"Exit after observing $(docv) accepted runs (0 = watch until the server drains).")
  in
  let run url max_runs =
    handle_errors (fun () ->
        let module Json = Sic_obs.Json in
        let prog = Fleet.Progress.create ~label:"watch" ~total:0 () in
        let runs = ref 0 and failed = ref 0 and workers = ref 0 in
        let covered = ref 0 and total = ref 0 and units = ref 0 in
        let repaint () =
          Fleet.Progress.update prog ~done_:!runs ~failed:!failed ~running:!workers
            ~covered:!covered ~points:!total ~units:!units
        in
        let intn k j d = match Json.int_member k j with Some n -> n | None -> d in
        let absorb j =
          runs := intn "runs" j !runs;
          failed := intn "failed" j !failed;
          workers := intn "workers" j !workers;
          covered := intn "covered" j !covered;
          total := intn "total" j !total;
          units := intn "units" j !units
        in
        let seen = ref 0 in
        let on_event ~event ~data =
          (match try Some (Json.parse data) with Json.Parse_error _ -> None with
          | None -> ()
          | Some j -> (
              match event with
              | "hello" | "delta" ->
                  absorb j;
                  if event = "delta" then begin
                    incr seen;
                    (* newer servers ship the cumulative units figure in
                       every delta (absorbed above); older ones only carry
                       the run's own cycle count, so accumulate it *)
                    if Json.int_member "units" j = None then
                      units := !units + intn "cycles" j 0
                  end;
                  repaint ()
              | "heartbeat" ->
                  workers := intn "workers" j !workers;
                  repaint ()
              | _ -> ()));
          not (max_runs > 0 && !seen >= max_runs)
        in
        (try Serve.Client.watch ~on_event url with
        | Serve.Client.Error m ->
            Fleet.Progress.finish prog;
            Printf.eprintf "watch: %s\n" m;
            exit 1
        | Unix.Unix_error (e, _, _) ->
            Fleet.Progress.finish prog;
            Printf.eprintf "watch: cannot reach %s: %s\n" url (Unix.error_message e);
            exit 1);
        Fleet.Progress.finish prog)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Subscribe to a coverage server's GET /watch SSE stream and render a live status \
          line: accepted runs, covered points, active workers, throughput. Exits when the \
          server drains, or after --runs N accepted runs.")
    Term.(const run $ url_arg $ runs_arg)

(* ------------------------------------------------------------------ *)
(* Telemetry tailing                                                    *)
(* ------------------------------------------------------------------ *)

let tail_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Telemetry NDJSON file (a --profile export).")
  in
  let follow_flag =
    Arg.(
      value
      & flag
      & info [ "f"; "follow" ]
          ~doc:"Keep the file open and pretty-print new events as they are appended.")
  in
  let run path follow =
    handle_errors (fun () ->
        let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let pending = Buffer.create 4096 in
            let chunk = Bytes.create 65536 in
            let rec print_complete_lines () =
              let s = Buffer.contents pending in
              match String.index_opt s '\n' with
              | None -> ()
              | Some i ->
                  let line = String.sub s 0 i in
                  Buffer.clear pending;
                  Buffer.add_substring pending s (i + 1) (String.length s - i - 1);
                  if String.trim line <> "" then print_endline (Obs.pp_ndjson_line line);
                  print_complete_lines ()
            in
            let stop = ref false in
            while not !stop do
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  if follow then Unix.sleepf 0.2
                  else begin
                    (* a writer may not have terminated its last line yet *)
                    if String.trim (Buffer.contents pending) <> "" then
                      print_endline (Obs.pp_ndjson_line (Buffer.contents pending));
                    stop := true
                  end
              | n ->
                  Buffer.add_subbytes pending chunk 0 n;
                  print_complete_lines ();
                  flush stdout
            done))
  in
  Cmd.v
    (Cmd.info "tail"
       ~doc:
         "Pretty-print a telemetry NDJSON file (spans indented by depth, gauges, instants, \
          worker heartbeats); with -f, follow it live like tail -f.")
    Term.(const run $ file_arg $ follow_flag)

let main =
  Cmd.group
    (Cmd.info "sic" ~version:"1.0.0"
       ~doc:"Simulator-independent coverage for RTL hardware languages.")
    [
      emit_cmd; lower_cmd; cover_cmd; merge_cmd; diff_cmd; bmc_cmd; fuzz_cmd; scan_cmd;
      stats_cmd; profile_cmd; hotspots_cmd; db_cmd; campaign_cmd; close_cmd; serve_cmd;
      watch_cmd;
      tail_cmd;
    ]

let () =
  (* process-wide: a vanished peer (fleet result pipe, serve/push socket)
     must surface as EPIPE on the write, never as SIGPIPE death *)
  Serve.ignore_sigpipe ();
  exit (Cmd.eval main)
