(** The full FPGA coverage flow of §5.2/§5.3 on a small SoC:

    1. instrument the SoC with line coverage;
    2. run a cheap software simulation of a test program;
    3. remove the cover points it already hit (>= 10 times);
    4. insert the coverage scan chain into what remains;
    5. run the "FPGA" (a software backend standing in for FireSim),
       pause, scan the counts out;
    6. merge FPGA counts with the software counts into one report.

    Run with: [dune exec examples/soc_coverage_flow.exe] *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Scan = Sic_firesim.Scan_chain
module Driver = Sic_firesim.Driver
module Rm = Sic_firesim.Resource_model
open Sic_sim

let cores = Sic_designs.Soc.rocket_sim_config.Sic_designs.Soc.cores

(* the boot program: every core runs a small arithmetic loop *)
let software_test (b : Backend.t) =
  Backend.reset_sequence b;
  b.Backend.poke "run" (Bv.zero 1);
  let program = [ 0x00100093; 0x00108133; 0x002081b3; 0x0000006f ] in
  (* addi x1,x0,1; add x2,x1,x1; add x3,x1,x2; spin *)
  for core = 0 to cores - 1 do
    List.iteri
      (fun i inst ->
        b.Backend.poke "load_en" (Bv.one 1);
        b.Backend.poke "load_core" (Bv.of_int ~width:4 core);
        b.Backend.poke "load_side" (Bv.zero 1);
        b.Backend.poke "load_addr" (Bv.of_int ~width:6 i);
        b.Backend.poke "load_data" (Bv.of_int ~width:32 inst);
        b.Backend.step 1)
      program
  done;
  b.Backend.poke "load_en" (Bv.zero 1);
  b.Backend.poke "run" (Bv.one 1);
  b.Backend.step 2_000

let () =
  (* 1. instrument *)
  let soc = Sic_designs.Soc.circuit Sic_designs.Soc.rocket_sim_config in
  let soc, _db = Sic_coverage.Line_coverage.instrument soc in
  let low = Sic_passes.Compile.lower soc in
  let total = List.length (Sic_ir.Circuit.covers_of (Sic_ir.Circuit.main low)) in
  Printf.printf "instrumented SoC: %d cover points\n" total;

  (* 2. software simulation *)
  let sw = Compiled.create low in
  software_test sw;
  let sw_counts = sw.Backend.counts () in
  Printf.printf "software run covered %d points\n" (Counts.covered_points sw_counts);

  (* 3. removal before the (expensive) FPGA build *)
  let { Sic_coverage.Removal.circuit = stripped; removed; kept } =
    Sic_coverage.Removal.remove_covered ~threshold:10 sw_counts low
  in
  Printf.printf "removed %d already-covered counters, %d remain\n" (List.length removed)
    (List.length kept);
  let base = Rm.baseline low in
  let before = Rm.with_coverage base ~n_covers:total ~width:32 in
  let after = Rm.with_coverage base ~n_covers:(List.length kept) ~width:32 in
  Printf.printf "modelled 32-bit coverage LUTs: %d -> %d\n" before.Rm.counter_luts
    after.Rm.counter_luts;

  (* 4.-5. scan chain + FPGA-style run *)
  let chained, chain = Scan.insert ~width:16 stripped in
  let fpga = Compiled.create chained in
  let result =
    Driver.run_and_scan fpga chain ~workload:(fun b ->
        software_test b;
        (* also feed the accelerators, something the sw test didn't do *)
        b.Backend.poke "spike_in" (Bv.of_int ~width:8 0xFF);
        b.Backend.step 2_000)
  in
  Printf.printf "scanned %d counters out in %d cycles (%.2f ms at 65 MHz)\n"
    (List.length chain.Scan.order) result.Driver.scan_cycles
    (Driver.scan_millis ~scan_cycles:result.Driver.scan_cycles ~mhz:65.0);

  (* 6. merge software + FPGA counts: same format, trivial merge *)
  let merged = Counts.merge [ sw_counts; result.Driver.counts ] in
  Printf.printf "merged coverage: %d/%d points covered (sw %d + fpga %d)\n"
    (Counts.covered_points merged) total
    (Counts.covered_points sw_counts)
    (Counts.covered_points result.Driver.counts)
