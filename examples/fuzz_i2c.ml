(** Coverage-directed fuzzing of the I2C peripheral (§5.4): instrument
    with two metrics, fuzz with each as feedback, and compare the line
    coverage the discovered inputs reach.

    Run with: [dune exec examples/fuzz_i2c.exe] *)

module F = Sic_fuzz.Fuzzer
module Counts = Sic_coverage.Counts

let prefix p name = String.length name >= String.length p && String.sub name 0 (String.length p) = p

let () =
  (* instrument with BOTH metrics; feedback choice is just a name filter *)
  let c, line_db = Sic_coverage.Line_coverage.instrument (Sic_designs.I2c.circuit ()) in
  let low = Sic_passes.Compile.lower c in
  let low, _ = Sic_coverage.Mux_coverage.instrument low in
  let harness = F.make_harness low in
  let fuzz name feedback =
    let r = F.run ~seed:1 ~execs:300 ~seed_cycles:48 ~max_cycles:128 ~feedback harness in
    let report = Sic_coverage.Line_coverage.report line_db r.F.final.F.cumulative in
    Printf.printf "%-24s corpus %3d  line coverage %d/%d branches\n" name
      r.F.final.F.corpus_size
      report.Sic_coverage.Line_coverage.branches_covered
      report.Sic_coverage.Line_coverage.branches_total
  in
  print_endline "fuzzing the I2C peripheral, 300 executions each:";
  fuzz "feedback: line" (prefix "l_");
  fuzz "feedback: mux-toggle" (prefix "mux_");
  fuzz "feedback: none" (fun _ -> false)
