// Scratchpad with a registered read port and a $readmemh power-on image.
module mem (
  input        clk,
  input        reset,
  input        we,
  input  [3:0] waddr,
  input  [7:0] wdata,
  input  [3:0] raddr,
  output [7:0] rdata
);

  reg [7:0] store [0:15];
  reg [7:0] rbuf = 0;

  always @(posedge clk) begin
    rbuf <= store[raddr];
    if (we)
      store[waddr] <= wdata;
  end

  initial $readmemh("mem_init.hex", store);

  assign rdata = rbuf;

endmodule
