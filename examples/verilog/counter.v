// Saturating-wrap counter with enable: the smallest interesting fixture.
// Its hand translation into the IR DSL lives in test/test_verilog.ml;
// the differential test checks that both produce identical coverage
// counts on every backend.
module counter (
  input        clk,
  input        reset,
  input        en,
  output [7:0] count
);

  reg [7:0] cnt = 0;

  always @(posedge clk) begin
    if (en) begin
      if (cnt == 8'd200)
        cnt <= 0;
      else
        cnt <= cnt + 1;
    end
  end

  assign count = cnt;

endmodule
