// Traffic-light controller: a localparam-encoded state machine in the
// idiomatic Verilog style, picked up by FSM coverage inference.
module fsm (
  input        clk,
  input        reset,
  input        go,
  output [1:0] light
);

  localparam GREEN  = 2'd0;
  localparam YELLOW = 2'd1;
  localparam RED    = 2'd2;

  reg [1:0] state = GREEN;
  reg [3:0] timer = 0;

  always @(posedge clk) begin
    if (reset) begin
      state <= GREEN;
      timer <= 0;
    end else begin
      case (state)
        GREEN:
          if (go) begin
            state <= YELLOW;
            timer <= 4'd3;
          end
        YELLOW:
          if (timer == 0)
            state <= RED;
          else
            timer <= timer - 1;
        RED:
          if (timer == 4'd15)
            state <= GREEN;
          else
            timer <= timer + 1;
        default: state <= GREEN;
      endcase
    end
  end

  assign light = state;

endmodule
