// Small multi-cycle RV32I subset SoC, cleaned to the synthesizable
// subset the sic frontend accepts (after the verve core):
//   - the vendor oscillator (SB_HFOSC) and the derived clock are gone;
//     the top module takes a real clock input instead,
//   - the internal power-on reset counter is kept but renamed to `rst`
//     (`reset` is reserved for the harness reset port),
//   - instruction and data memory live in the top module; imem is
//     preloaded from t2a.hex via $readmemh.
//
// The core executes one instruction every 3-5 cycles: FETCH drives
// iaddr, WAIT covers the registered imem read, EXEC decodes and
// retires (loads take two more cycles for the registered dmem read).
// A store with address bit 12 set lands on the LED register.

module rv (
  input            clk,
  output reg [2:0] leds
);

  // power-on reset: hold the core in reset for 31 cycles
  reg [4:0] int_rst_cnt = 0;
  wire rst = int_rst_cnt != 5'b11111;

  always @(posedge clk) begin
    if (int_rst_cnt != 5'b11111)
      int_rst_cnt <= int_rst_cnt + 1;
  end

  wire [31:0] daddr;
  wire [31:0] dout;
  reg  [31:0] din;
  wire        drw;

  reg  [31:0] iin;
  wire [31:0] iaddr;

  reg [31:0] imem [0:1023];
  reg [31:0] dmem [0:1023];

  rv_core cpu(clk, rst, daddr, dout, din, drw, iaddr, iin);

  always @(posedge clk) begin
    iin <= imem[iaddr[11:2]];
  end

  always @(posedge clk) begin
    din <= dmem[daddr[11:2]];

    if (drw) begin
      dmem[daddr[11:2]] <= dout;
      if (daddr[12] == 1'b1)
        leds[2:0] <= dout[2:0];
    end
  end

  initial begin
    $readmemh("t2a.hex", imem);
  end

endmodule

module rv_core (
  input             clk,
  input             reset,

  output reg [31:0] daddr,
  output reg [31:0] dout,
  input      [31:0] din,
  output reg        drw,

  output reg [31:0] iaddr,
  input      [31:0] iin
);

  // instruction state machine
  localparam S_FETCH = 3'd0;
  localparam S_WAIT  = 3'd1;
  localparam S_EXEC  = 3'd2;
  localparam S_MEM   = 3'd3;
  localparam S_LOAD  = 3'd4;
  localparam S_HALT  = 3'd5;

  reg [2:0]  state = S_FETCH;

  reg [31:0] pc = 0;
  reg [31:0] regs [0:31];
  reg [4:0]  ld_rd = 0;

  // decode (valid during S_EXEC, when iin holds the fetched word)
  wire [6:0] op     = iin[6:0];
  wire [2:0] funct3 = iin[14:12];
  wire [6:0] funct7 = iin[31:25];
  wire [4:0] rd     = iin[11:7];
  wire [4:0] rs1    = iin[19:15];
  wire [4:0] rs2    = iin[24:20];

  wire [31:0] u_imm = { iin[31:12], 12'b0 };
  wire [31:0] i_imm = { {21{iin[31]}}, iin[30:20] };
  wire [31:0] s_imm = { {21{iin[31]}}, iin[30:25], iin[11:7] };
  wire [31:0] b_imm = { {20{iin[31]}}, iin[7], iin[30:25], iin[11:8], 1'b0 };
  wire [31:0] j_imm = { {12{iin[31]}}, iin[19:12], iin[20], iin[30:21], 1'b0 };

  wire [31:0] rs1val = (rs1 == 5'd0) ? 32'd0 : regs[rs1];
  wire [31:0] rs2val = (rs2 == 5'd0) ? 32'd0 : regs[rs2];

  // ALU shared by OP and OP-IMM (comparisons and shifts are unsigned)
  wire is_imm = op == 7'b0010011;
  wire [31:0] opb   = is_imm ? i_imm : rs2val;
  wire [4:0]  shamt = is_imm ? iin[24:20] : rs2val[4:0];
  wire is_sub = !is_imm && (funct7 == 7'b0100000);

  wire [31:0] alures =
      (funct3 == 3'b000) ? (is_sub ? rs1val - opb : rs1val + opb)
    : (funct3 == 3'b100) ? (rs1val ^ opb)
    : (funct3 == 3'b110) ? (rs1val | opb)
    : (funct3 == 3'b111) ? (rs1val & opb)
    : (funct3 == 3'b001) ? (rs1val << shamt)
    : (funct3 == 3'b101) ? (rs1val >> shamt)
    : (funct3 == 3'b011) ? ((rs1val < opb) ? 32'd1 : 32'd0)
    : 32'd0;

  wire brtaken =
      (funct3 == 3'b000) ? (rs1val == rs2val)
    : (funct3 == 3'b001) ? (rs1val != rs2val)
    : (funct3 == 3'b110) ? (rs1val < rs2val)
    : (funct3 == 3'b111) ? !(rs1val < rs2val)
    : 1'b0;

  always @(posedge clk) begin
    if (reset) begin
      state <= S_FETCH;
      pc    <= 0;
      drw   <= 0;
      iaddr <= 0;
      daddr <= 0;
      dout  <= 0;
      ld_rd <= 0;
    end else begin
      case (state)
        S_FETCH: begin
          drw   <= 0;
          iaddr <= pc;
          state <= S_WAIT;
        end

        S_WAIT: state <= S_EXEC;

        S_EXEC: begin
          state <= S_FETCH;
          pc    <= pc + 4;
          case (op)
            7'b0110111:                          // LUI
              if (rd != 0) regs[rd] <= u_imm;
            7'b0010111:                          // AUIPC
              if (rd != 0) regs[rd] <= pc + u_imm;
            7'b1101111: begin                    // JAL
              if (rd != 0) regs[rd] <= pc + 4;
              pc <= pc + j_imm;
            end
            7'b1100111: begin                    // JALR
              if (rd != 0) regs[rd] <= pc + 4;
              pc <= rs1val + i_imm;
            end
            7'b1100011:                          // BEQ/BNE/BLTU/BGEU
              if (brtaken) pc <= pc + b_imm;
            7'b0000011: begin                    // LW
              daddr <= rs1val + i_imm;
              ld_rd <= rd;
              state <= S_MEM;
            end
            7'b0100011: begin                    // SW
              daddr <= rs1val + s_imm;
              dout  <= rs2val;
              drw   <= 1;
            end
            7'b0010011:                          // OP-IMM
              if (rd != 0) regs[rd] <= alures;
            7'b0110011:                          // OP
              if (rd != 0) regs[rd] <= alures;
            default: state <= S_HALT;            // unimplemented opcode
          endcase
        end

        S_MEM: state <= S_LOAD;                  // registered dmem read

        S_LOAD: begin
          if (ld_rd != 0) regs[ld_rd] <= din;
          state <= S_FETCH;
        end

        default: state <= S_HALT;
      endcase
    end
  end

endmodule
