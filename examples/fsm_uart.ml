(** FSM coverage on the UART (§4.3): the pass finds the enum-typed state
    registers through annotations, infers the possible transitions by
    constant-propagating each state through the next-state logic, and
    instruments every state and transition. A loopback run then covers
    them, and the report shows the transition matrix.

    Run with: [dune exec examples/fsm_uart.exe] *)

module Bv = Sic_bv.Bv
open Sic_sim

let () =
  let c = Sic_designs.Uart.circuit ~div:4 () in
  let low = Sic_passes.Compile.lower c in
  let low, db = Sic_coverage.Fsm_coverage.instrument low in
  List.iter
    (fun (f : Sic_coverage.Fsm_coverage.fsm) ->
      Printf.printf "found FSM %s : enum %s, %d states, %d inferred transitions%s\n"
        f.Sic_coverage.Fsm_coverage.reg_name
        f.Sic_coverage.Fsm_coverage.enum.Sic_ir.Annotation.enum_name
        (List.length f.Sic_coverage.Fsm_coverage.state_covers)
        (List.length f.Sic_coverage.Fsm_coverage.transition_covers)
        (if f.Sic_coverage.Fsm_coverage.over_approximated then " (over-approximated)" else ""))
    db;
  (* transmit two bytes through the loopback and watch the FSMs walk *)
  let b = Compiled.create low in
  Backend.reset_sequence b;
  b.Backend.poke "loopback" (Bv.one 1);
  b.Backend.poke "rxd" (Bv.one 1);
  b.Backend.poke "io_out_ready" (Bv.one 1);
  List.iter
    (fun byte ->
      b.Backend.poke "io_in_valid" (Bv.one 1);
      b.Backend.poke "io_in_bits" (Bv.of_int ~width:8 byte);
      b.Backend.step 1;
      b.Backend.poke "io_in_valid" (Bv.zero 1);
      b.Backend.step 250)
    [ 0x5A; 0xC3 ];
  print_newline ();
  print_string (Sic_coverage.Fsm_coverage.render db (b.Backend.counts ()))
