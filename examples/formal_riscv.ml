(** Formal cover-trace generation on riscv-mini (§5.5): find the cover
    points that bounded model checking proves unreachable — among them the
    write path of the (read-only) instruction cache — and replay a
    generated witness trace on a software simulator.

    Run with: [dune exec examples/formal_riscv.exe] *)

module Bmc = Sic_formal.Bmc
module Fsm = Sic_coverage.Fsm_coverage
module Counts = Sic_coverage.Counts
open Sic_sim

let () =
  let c = Sic_designs.Riscv_mini.circuit ~params:Sic_designs.Riscv_mini.formal_params () in
  let low = Sic_passes.Compile.lower c in
  let low, db = Fsm.instrument low in
  (* every state of both cache FSMs *)
  let covers =
    List.concat_map
      (fun (f : Fsm.fsm) ->
        if String.length f.Fsm.reg_name > 5 && String.sub f.Fsm.reg_name 1 5 = "cache" then
          List.map snd f.Fsm.state_covers
        else [])
      db
  in
  let report = Bmc.check_covers ~bound:10 ~covers low in
  print_string (Bmc.render report);
  print_newline ();
  (match Bmc.unreachable report with
  | [] -> print_endline "no dead cover points (unexpected!)"
  | dead ->
      print_endline "dead cover points found by the formal backend:";
      List.iter (fun n -> Printf.printf "  %s\n" n) dead;
      print_endline
        "-> the instruction cache shares its RTL with the data cache but is\n   read-only, so its write path can never execute (the paper's finding).");
  (* replay one witness end-to-end *)
  match Bmc.reachable report with
  | (name, trace) :: _ ->
      let b = Interp.create low in
      Replay.replay b trace;
      Printf.printf "\nwitness for %s replayed on the interpreter: count = %d\n" name
        (Counts.get (b.Backend.counts ()) name)
  | [] -> ()
