(** Quickstart: build a small circuit with the DSL, instrument it with
    line coverage, simulate it on two different backends, and show that
    both report the same counts — the core of the paper in ~60 lines.

    Run with: [dune exec examples/quickstart.exe] *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
open Sic_ir
open Sic_sim

(* 1. Describe a circuit (a saturating accumulator with a clear). *)
let my_circuit () =
  let cb = Dsl.create_circuit "Accu" in
  Dsl.module_ cb "Accu" (fun m ->
      let open Dsl in
      let add = input ~loc:__POS__ m "add" (Ty.UInt 8) in
      let clear = input ~loc:__POS__ m "clear" (Ty.UInt 1) in
      let total = output ~loc:__POS__ m "total" (Ty.UInt 16) in
      let acc = reg_init ~loc:__POS__ m "acc" (lit 16 0) in
      connect m total acc;
      when_else ~loc:__POS__ m clear
        (fun () -> connect m acc (lit 16 0))
        (fun () ->
          let next = node m "next" (acc +: resize add 16) in
          when_else ~loc:__POS__ m (bits_s next ~hi:16 ~lo:16 ==: lit 1 1)
            (fun () -> connect m acc (lit 16 0xFFFF)) (* saturate *)
            (fun () -> connect m acc (resize next 16))));
  Dsl.finalize cb

let () =
  (* 2. Instrument with line coverage (a compiler pass), then lower. *)
  let circuit, line_db = Sic_coverage.Line_coverage.instrument (my_circuit ()) in
  let low = Sic_passes.Compile.lower circuit in

  (* 3. Simulate on a backend; the cover primitive does the counting. *)
  let drive (b : Backend.t) =
    Backend.reset_sequence b;
    b.Backend.poke "add" (Bv.of_int ~width:8 200);
    b.Backend.step 400;
    (* 400 * 200 = 80000 > 65535: saturation branch gets exercised *)
    Printf.printf "total on %s: %s\n" b.Backend.backend_name
      (Bv.to_decimal_string (b.Backend.peek "total"));
    b.Backend.counts ()
  in
  let counts_interp = drive (Interp.create low) in
  let counts_compiled = drive (Compiled.create low) in

  (* 4. Same counts from both backends — by construction. *)
  assert (Counts.equal counts_interp counts_compiled);
  print_endline "interp and compiled report identical counts\n";

  (* 5. A simulator-independent report generator maps counts back to the
        source lines of this very file. *)
  print_string (Sic_coverage.Line_coverage.render ~with_sources:true line_db counts_interp);

  (* 6. The clear branch was never taken — the report says so. Cover it
        and regenerate. *)
  let b = Compiled.create low in
  Backend.reset_sequence b;
  b.Backend.poke "add" (Bv.of_int ~width:8 7);
  b.Backend.step 3;
  b.Backend.poke "clear" (Bv.one 1);
  b.Backend.step 1;
  print_endline "\nafter also covering the clear branch (merged across runs):";
  let merged = Counts.merge [ counts_interp; b.Backend.counts () ] in
  let r = Sic_coverage.Line_coverage.report line_db merged in
  Printf.printf "branches covered: %d/%d\n" r.Sic_coverage.Line_coverage.branches_covered
    r.Sic_coverage.Line_coverage.branches_total
