(** Source locators. The DSL fills these from [__POS__]; the parser from
    [@[file line:col]] suffixes, mirroring FIRRTL file info tokens. *)

type t =
  | Unknown
  | Pos of { file : string; line : int; col : int }

let unknown = Unknown

let pos ~file ~line ~col = Pos { file; line; col }

(* [__POS__] is (file, lnum, cnum, enum). *)
let of_pos ((file, line, col, _) : string * int * int * int) = Pos { file; line; col }

let file = function Unknown -> None | Pos { file; _ } -> Some file
let line = function Unknown -> None | Pos { line; _ } -> Some line

let to_string = function
  | Unknown -> ""
  | Pos { file; line; col } -> Printf.sprintf "@[%s %d:%d]" file line col

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal a b =
  match (a, b) with
  | Unknown, Unknown -> true
  | Pos a, Pos b -> a.file = b.file && a.line = b.line && a.col = b.col
  | Unknown, Pos _ | Pos _, Unknown -> false

let compare a b =
  match (a, b) with
  | Unknown, Unknown -> 0
  | Unknown, Pos _ -> -1
  | Pos _, Unknown -> 1
  | Pos a, Pos b -> compare (a.file, a.line, a.col) (b.file, b.line, b.col)
