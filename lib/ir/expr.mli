(** Expressions: a faithful subset of FIRRTL's expression language after
    LowerTypes (flat dotted references, explicit widths). *)

type unop =
  | Not
  | Andr
  | Orr
  | Xorr
  | Neg
  | Cvt
  | AsUInt
  | AsSInt

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Lt
  | Leq
  | Gt
  | Geq
  | Eq
  | Neq
  | And
  | Or
  | Xor
  | Cat
  | Dshl
  | Dshr

(** Unary operators taking a static integer parameter. *)
type intop = Pad | Shl | Shr | Head | Tail

type t =
  | Ref of string
  | UIntLit of Sic_bv.Bv.t
  | SIntLit of Sic_bv.Bv.t
  | Mux of t * t * t
  | Unop of unop * t
  | Binop of binop * t * t
  | Intop of intop * int * t
  | Bits of t * int * int

exception Type_error of string

(** {1 The FIRRTL width rules} *)

val unop_ty : unop -> Ty.t -> Ty.t
val binop_ty : binop -> Ty.t -> Ty.t -> Ty.t
val intop_ty : intop -> int -> Ty.t -> Ty.t
val bits_ty : int -> int -> Ty.t -> Ty.t
val mux_ty : Ty.t -> Ty.t -> Ty.t -> Ty.t

val type_of : (string -> Ty.t) -> t -> Ty.t
(** [type_of lookup e]; [lookup] resolves reference names. Raises
    {!Type_error} on ill-formed expressions. *)

(** {1 Traversal} *)

val references : t -> string list
(** All reference names, in evaluation order, duplicates kept. *)

val subst : (string -> t option) -> t -> t
val equal : t -> t -> bool

(** {1 Convenience constructors} *)

val u_lit : width:int -> int -> t
val s_lit : width:int -> int -> t
val true_ : t
val false_ : t

val and_ : t -> t -> t
(** Simplifies conjunction with literal true. *)

val or_ : t -> t -> t
val not_ : t -> t
val eq_ : t -> t -> t

(** {1 Names (for printing)} *)

val unop_name : unop -> string
val binop_name : binop -> string
val intop_name : intop -> string
