(** Expressions. A faithful subset of FIRRTL's expression language after
    LowerTypes: references are flat (dotted) names; widths are explicit and
    computed by the FIRRTL width rules in {!type_of}. *)

type unop =
  | Not  (** bitwise complement, UInt result *)
  | Andr
  | Orr
  | Xorr  (** reductions, UInt<1> *)
  | Neg  (** arithmetic negation, SInt<w+1> *)
  | Cvt  (** interpret as signed: UInt<w> -> SInt<w+1>, SInt -> SInt *)
  | AsUInt
  | AsSInt  (** reinterpret bits *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Lt
  | Leq
  | Gt
  | Geq
  | Eq
  | Neq
  | And
  | Or
  | Xor
  | Cat
  | Dshl
  | Dshr

(** Unary operators taking a static integer parameter. *)
type intop =
  | Pad  (** widen to at least [n] bits *)
  | Shl  (** static shift left: width grows by [n] *)
  | Shr  (** static shift right: width shrinks to [max 1 (w - n)] *)
  | Head  (** [n] most significant bits, UInt *)
  | Tail  (** drop [n] most significant bits, UInt *)

type t =
  | Ref of string
  | UIntLit of Sic_bv.Bv.t
  | SIntLit of Sic_bv.Bv.t
  | Mux of t * t * t  (** [Mux (sel, tru, fls)]; arms have equal types *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Intop of intop * int * t
  | Bits of t * int * int  (** [Bits (e, hi, lo)] *)

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

(** Result type of a unary primop applied to an operand of type [ta]. *)
let unop_ty (op : unop) (ta : Ty.t) : Ty.t =
  let w = Ty.width ta in
  match op with
  | Not -> Ty.UInt w
  | Andr | Orr | Xorr -> Ty.UInt 1
  | Neg -> Ty.SInt (w + 1)
  | Cvt -> (
      match ta with
      | Ty.UInt w -> Ty.SInt (w + 1)
      | Ty.SInt w -> Ty.SInt w
      | Ty.Clock -> type_error "cvt on Clock")
  | AsUInt -> Ty.UInt w
  | AsSInt -> Ty.SInt w

(** Result type of a binary primop; enforces the same-signedness rules. *)
let binop_ty (op : binop) (ta : Ty.t) (tb : Ty.t) : Ty.t =
  let wa = Ty.width ta and wb = Ty.width tb in
  let same_sign ctx =
    if not (Ty.same_kind ta tb) then
      type_error "%s operands must have the same signedness: %s vs %s" ctx
        (Ty.to_string ta) (Ty.to_string tb)
  in
  match op with
  | Add | Sub ->
      same_sign "add/sub";
      Ty.with_width ta (max wa wb + 1)
  | Mul ->
      same_sign "mul";
      Ty.with_width ta (wa + wb)
  | Div ->
      same_sign "div";
      if Ty.is_signed ta then Ty.SInt (wa + 1) else Ty.UInt wa
  | Rem ->
      same_sign "rem";
      Ty.with_width ta (min wa wb)
  | Lt | Leq | Gt | Geq | Eq | Neq ->
      same_sign "cmp";
      Ty.UInt 1
  | And | Or | Xor ->
      same_sign "bitwise";
      Ty.UInt (max wa wb)
  | Cat -> Ty.UInt (wa + wb)
  | Dshl ->
      if wb > 20 then type_error "dshl shift operand too wide (%d bits)" wb;
      Ty.with_width ta (wa + (1 lsl wb) - 1)
  | Dshr -> ta

(** Result type of an int-parameterised primop. *)
let intop_ty (op : intop) (n : int) (ta : Ty.t) : Ty.t =
  let w = Ty.width ta in
  match op with
  | Pad -> Ty.with_width ta (max w n)
  | Shl -> Ty.with_width ta (w + n)
  | Shr -> Ty.with_width ta (max 1 (w - n))
  | Head ->
      if n > w then type_error "head %d of width %d" n w;
      Ty.UInt n
  | Tail ->
      if n > w then type_error "tail %d of width %d" n w;
      Ty.UInt (w - n)

let bits_ty (hi : int) (lo : int) (ta : Ty.t) : Ty.t =
  let w = Ty.width ta in
  if hi < lo || hi >= w || lo < 0 then type_error "bits(%d, %d) of width %d" hi lo w;
  Ty.UInt (hi - lo + 1)

let mux_ty (ts : Ty.t) (ta : Ty.t) (tb : Ty.t) : Ty.t =
  (match ts with
  | Ty.UInt 1 -> ()
  | t -> type_error "mux selector must be UInt<1>, got %s" (Ty.to_string t));
  if Ty.equal ta tb then ta
  else type_error "mux arms disagree: %s vs %s" (Ty.to_string ta) (Ty.to_string tb)

(** [type_of lookup e] computes the type of [e]; [lookup] resolves reference
    names. Implements the FIRRTL width-inference rules for primops. *)
let rec type_of (lookup : string -> Ty.t) (e : t) : Ty.t =
  match e with
  | Ref n -> lookup n
  | UIntLit v -> Ty.UInt (Sic_bv.Bv.width v)
  | SIntLit v -> Ty.SInt (Sic_bv.Bv.width v)
  | Mux (sel, a, b) ->
      mux_ty (type_of lookup sel) (type_of lookup a) (type_of lookup b)
  | Unop (op, a) -> unop_ty op (type_of lookup a)
  | Binop (op, a, b) -> binop_ty op (type_of lookup a) (type_of lookup b)
  | Intop (op, n, a) -> intop_ty op n (type_of lookup a)
  | Bits (a, hi, lo) -> bits_ty hi lo (type_of lookup a)

(** All reference names appearing in [e], in evaluation order (duplicates
    kept). *)
let rec refs e acc =
  match e with
  | Ref n -> n :: acc
  | UIntLit _ | SIntLit _ -> acc
  | Mux (s, a, b) -> refs s (refs a (refs b acc))
  | Unop (_, a) | Intop (_, _, a) | Bits (a, _, _) -> refs a acc
  | Binop (_, a, b) -> refs a (refs b acc)

let references e = refs e []

(** Structural substitution of references. *)
let rec subst (f : string -> t option) e =
  match e with
  | Ref n -> ( match f n with Some e' -> e' | None -> e)
  | UIntLit _ | SIntLit _ -> e
  | Mux (s, a, b) -> Mux (subst f s, subst f a, subst f b)
  | Unop (op, a) -> Unop (op, subst f a)
  | Binop (op, a, b) -> Binop (op, subst f a, subst f b)
  | Intop (op, n, a) -> Intop (op, n, subst f a)
  | Bits (a, hi, lo) -> Bits (subst f a, hi, lo)

let rec equal a b =
  match (a, b) with
  | Ref x, Ref y -> String.equal x y
  | UIntLit x, UIntLit y | SIntLit x, SIntLit y -> Sic_bv.Bv.equal x y
  | Mux (s1, a1, b1), Mux (s2, a2, b2) -> equal s1 s2 && equal a1 a2 && equal b1 b2
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && equal a1 a2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Intop (o1, n1, a1), Intop (o2, n2, a2) -> o1 = o2 && n1 = n2 && equal a1 a2
  | Bits (a1, h1, l1), Bits (a2, h2, l2) -> h1 = h2 && l1 = l2 && equal a1 a2
  | (Ref _ | UIntLit _ | SIntLit _ | Mux _ | Unop _ | Binop _ | Intop _ | Bits _), _ ->
      false

(* Convenience constructors used throughout passes and the DSL. *)

let u_lit ~width n = UIntLit (Sic_bv.Bv.of_int ~width n)
let s_lit ~width n = SIntLit (Sic_bv.Bv.of_signed_int ~width n)
let true_ = u_lit ~width:1 1
let false_ = u_lit ~width:1 0

let and_ a b =
  match (a, b) with
  | UIntLit v, x when Sic_bv.Bv.is_ones v && Sic_bv.Bv.width v = 1 -> x
  | x, UIntLit v when Sic_bv.Bv.is_ones v && Sic_bv.Bv.width v = 1 -> x
  | _ -> Binop (And, a, b)

let or_ a b = Binop (Or, a, b)
let not_ a = Unop (Not, a)
let eq_ a b = Binop (Eq, a, b)

let unop_name = function
  | Not -> "not"
  | Andr -> "andr"
  | Orr -> "orr"
  | Xorr -> "xorr"
  | Neg -> "neg"
  | Cvt -> "cvt"
  | AsUInt -> "asUInt"
  | AsSInt -> "asSInt"

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Lt -> "lt"
  | Leq -> "leq"
  | Gt -> "gt"
  | Geq -> "geq"
  | Eq -> "eq"
  | Neq -> "neq"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Cat -> "cat"
  | Dshl -> "dshl"
  | Dshr -> "dshr"

let intop_name = function
  | Pad -> "pad"
  | Shl -> "shl"
  | Shr -> "shr"
  | Head -> "head"
  | Tail -> "tail"
