(** Ground types of the IR. Aggregates are already lowered: the DSL and the
    parser only produce ground-typed signals (bundles become dotted names,
    as after FIRRTL's LowerTypes). *)

type t =
  | UInt of int  (** unsigned, [width >= 0] *)
  | SInt of int  (** two's-complement signed, [width >= 1] *)
  | Clock

let width = function UInt w | SInt w -> w | Clock -> 1

let is_signed = function SInt _ -> true | UInt _ | Clock -> false

let same_kind a b =
  match (a, b) with
  | UInt _, UInt _ | SInt _, SInt _ | Clock, Clock -> true
  | (UInt _ | SInt _ | Clock), _ -> false

let with_width t w =
  match t with UInt _ -> UInt w | SInt _ -> SInt w | Clock -> Clock

let equal a b =
  match (a, b) with
  | UInt x, UInt y | SInt x, SInt y -> x = y
  | Clock, Clock -> true
  | (UInt _ | SInt _ | Clock), _ -> false

let to_string = function
  | UInt w -> Printf.sprintf "UInt<%d>" w
  | SInt w -> Printf.sprintf "SInt<%d>" w
  | Clock -> "Clock"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Bits needed to represent values [0 .. n-1]; at least 1. *)
let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  if n <= 1 then 1 else go 0 1
