(** FIRRTL-style concrete syntax emission. {!Parser} reads the same
    syntax; [parse ∘ print] is the identity on well-formed circuits
    (property-tested). *)

val pp_expr : Format.formatter -> Expr.t -> unit
val expr_to_string : Expr.t -> string
val pp_stmt : int -> Format.formatter -> Stmt.t -> unit
(** The [int] is the indentation depth in spaces. *)

val pp_port : Format.formatter -> Circuit.port -> unit
val pp_module : Format.formatter -> Circuit.modul -> unit
val pp_circuit : Format.formatter -> Circuit.t -> unit
val circuit_to_string : Circuit.t -> string
