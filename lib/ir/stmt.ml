(** Statements. The IR keeps FIRRTL's high-level [when] blocks (needed by
    the line-coverage pass) which the {!Sic_passes.Lower_whens} pass removes
    before simulation. Memories and instances use dotted port names
    ([mem.r0.addr], [inst.io_out]) as left after FIRRTL's LowerTypes. *)

type mem_read_port = { rp_name : string }
type mem_write_port = { wp_name : string }

type mem = {
  mem_name : string;
  mem_data : Ty.t;  (** element type *)
  mem_depth : int;
  mem_readers : mem_read_port list;
  mem_writers : mem_write_port list;
  mem_read_latency : int;  (** 0 = combinational, 1 = synchronous *)
  mem_init : Sic_bv.Bv.t array option;
      (** power-on contents ([$readmemh]); [None] means all zero *)
}

type t =
  | Node of { name : string; expr : Expr.t; info : Info.t }
      (** [node name = expr] — an immutable named expression *)
  | Wire of { name : string; ty : Ty.t; info : Info.t }
  | Reg of {
      name : string;
      ty : Ty.t;
      reset : (Expr.t * Expr.t) option;
          (** [(reset_signal, init_value)]: synchronous reset *)
      info : Info.t;
    }
  | Mem of { mem : mem; info : Info.t }
  | Inst of { name : string; module_name : string; info : Info.t }
  | Connect of { loc : string; expr : Expr.t; info : Info.t }
      (** last-connect semantics inside [when] blocks *)
  | When of { cond : Expr.t; then_ : t list; else_ : t list; info : Info.t }
  | Cover of { name : string; pred : Expr.t; info : Info.t }
      (** The paper's one new primitive: sample [pred] at the rising clock
          edge, increment the (saturating) counter when true. *)
  | CoverValues of { name : string; signal : Expr.t; en : Expr.t; info : Info.t }
      (** §6 extension: one counter per possible value of [signal],
          incremented only when [en] holds. *)
  | Stop of { name : string; cond : Expr.t; exit_code : int; info : Info.t }
  | Print of { cond : Expr.t; message : string; args : Expr.t list; info : Info.t }

let info = function
  | Node { info; _ }
  | Wire { info; _ }
  | Reg { info; _ }
  | Mem { info; _ }
  | Inst { info; _ }
  | Connect { info; _ }
  | When { info; _ }
  | Cover { info; _ }
  | CoverValues { info; _ }
  | Stop { info; _ }
  | Print { info; _ } -> info

(** The name a statement defines or drives — the stable statement id that
    ties a simulator tape position back to its originating statement. In the
    flat low form every [Node]/[Connect] target is unique, so the defined
    name identifies the statement. [None] for statements that define nothing
    nameable ([When], [Print]) or a whole family of names ([Mem]). *)
let def_name = function
  | Node { name; _ } | Wire { name; _ } | Reg { name; _ } | Inst { name; _ }
  | Cover { name; _ }
  | CoverValues { name; _ }
  | Stop { name; _ } -> Some name
  | Connect { loc; _ } -> Some loc
  | Mem _ | When _ | Print _ -> None

(** Iterate over all statements, descending into [when] blocks. *)
let rec iter f stmts =
  List.iter
    (fun s ->
      f s;
      match s with
      | When { then_; else_; _ } ->
          iter f then_;
          iter f else_
      | Node _ | Wire _ | Reg _ | Mem _ | Inst _ | Connect _ | Cover _
      | CoverValues _ | Stop _ | Print _ -> ())
    stmts

(** Rebuild a statement list bottom-up. [f] receives each statement with
    already-transformed children and returns its replacement list. *)
let rec map_concat (f : t -> t list) stmts =
  List.concat_map
    (fun s ->
      match s with
      | When { cond; then_; else_; info } ->
          f (When { cond; then_ = map_concat f then_; else_ = map_concat f else_; info })
      | Node _ | Wire _ | Reg _ | Mem _ | Inst _ | Connect _ | Cover _
      | CoverValues _ | Stop _ | Print _ -> f s)
    stmts

(** All declared names (nodes, wires, regs, mems incl. port names, insts). *)
let declared_names stmts =
  let out = ref [] in
  let add n = out := n :: !out in
  iter
    (fun s ->
      match s with
      | Node { name; _ } | Wire { name; _ } | Reg { name; _ } -> add name
      | Inst { name; _ } -> add name
      | Mem { mem; _ } ->
          add mem.mem_name;
          List.iter (fun { rp_name } ->
              add (mem.mem_name ^ "." ^ rp_name ^ ".addr");
              add (mem.mem_name ^ "." ^ rp_name ^ ".data"))
            mem.mem_readers;
          List.iter (fun { wp_name } ->
              add (mem.mem_name ^ "." ^ wp_name ^ ".addr");
              add (mem.mem_name ^ "." ^ wp_name ^ ".data");
              add (mem.mem_name ^ "." ^ wp_name ^ ".en"))
            mem.mem_writers
      | Connect _ | When _ | Cover _ | CoverValues _ | Stop _ | Print _ -> ())
    stmts;
  List.rev !out
