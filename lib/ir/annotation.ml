(** Annotations attach frontend knowledge to circuit elements, mirroring
    FIRRTL's annotation system. The FSM pass keys on {!Enum_reg}; the
    ready/valid pass on {!Decoupled}. Annotations survive passes that keep
    the referenced names and are dropped (never silently retargeted) when a
    pass deletes their target. *)

type enum_def = {
  enum_name : string;
  variants : (string * int) list;  (** variant name, encoding *)
}

type t =
  | Enum_def of enum_def
  | Enum_reg of { module_name : string; reg : string; enum : string }
      (** register [reg] in [module_name] holds values of enum [enum] *)
  | Decoupled of {
      module_name : string;
      prefix : string;  (** ports [<prefix>_ready], [<prefix>_valid] *)
      sink : bool;  (** true when the bundle is consumed by this module *)
    }
  | Dont_touch of { module_name : string; name : string }
      (** protect a signal from DCE / constant propagation *)

let enum_defs annos =
  List.filter_map (function Enum_def d -> Some d | Enum_reg _ | Decoupled _ | Dont_touch _ -> None) annos

let enum_regs_of ~module_name annos =
  List.filter_map
    (function
      | Enum_reg { module_name = m; reg; enum } when String.equal m module_name -> Some (reg, enum)
      | Enum_reg _ | Enum_def _ | Decoupled _ | Dont_touch _ -> None)
    annos

let decoupled_of ~module_name annos =
  List.filter_map
    (function
      | Decoupled { module_name = m; prefix; sink } when String.equal m module_name ->
          Some (prefix, sink)
      | Decoupled _ | Enum_def _ | Enum_reg _ | Dont_touch _ -> None)
    annos

let dont_touch_of ~module_name annos =
  List.filter_map
    (function
      | Dont_touch { module_name = m; name } when String.equal m module_name -> Some name
      | Dont_touch _ | Enum_def _ | Enum_reg _ | Decoupled _ -> None)
    annos

let find_enum annos name =
  List.find_opt (fun d -> String.equal d.enum_name name) (enum_defs annos)

(** Rename targets when a pass renames module-local signals (used by the
    inliner, which prefixes names with the instance path). *)
let rename ~module_name ~f anno =
  match anno with
  | Enum_reg a when String.equal a.module_name module_name ->
      Enum_reg { a with reg = f a.reg }
  | Decoupled a when String.equal a.module_name module_name ->
      Decoupled { a with prefix = f a.prefix }
  | Dont_touch a when String.equal a.module_name module_name ->
      Dont_touch { a with name = f a.name }
  | Enum_def _ | Enum_reg _ | Decoupled _ | Dont_touch _ -> anno

(** Move an annotation to another module (inlining child into parent). *)
let retarget ~from_module ~to_module anno =
  match anno with
  | Enum_reg a when String.equal a.module_name from_module ->
      Enum_reg { a with module_name = to_module }
  | Decoupled a when String.equal a.module_name from_module ->
      Decoupled { a with module_name = to_module }
  | Dont_touch a when String.equal a.module_name from_module ->
      Dont_touch { a with module_name = to_module }
  | Enum_def _ | Enum_reg _ | Decoupled _ | Dont_touch _ -> anno
