(** Reference evaluation semantics for expressions.

    Every backend (interpreter, compiled simulator, activity-driven
    simulator, constant propagation, FSM next-state analysis, formal
    bit-blasting) defines or checks its behaviour against these functions,
    which implement FIRRTL's primop semantics on {!Sic_bv.Bv} values. Each
    function returns a value whose width is exactly the width given by
    {!Expr.type_of}. *)

module Bv = Sic_bv.Bv

(** Read a value at its type's signedness, extended to [w] bits. *)
let extend (ty : Ty.t) (v : Bv.t) (w : int) =
  if Ty.is_signed ty then Bv.extend_s v w else Bv.extend_u v w

let unop (op : Expr.unop) ~(ta : Ty.t) (a : Bv.t) : Bv.t =
  let w = Ty.width ta in
  match op with
  | Expr.Not -> Bv.lognot ~width:w a
  | Expr.Andr -> Bv.of_bool (Bv.andr a)
  | Expr.Orr -> Bv.of_bool (Bv.orr a)
  | Expr.Xorr -> Bv.of_bool (Bv.xorr a)
  | Expr.Neg -> Bv.neg ~width:(w + 1) (extend ta a (w + 1))
  | Expr.Cvt -> ( match ta with Ty.UInt _ -> Bv.extend_u a (w + 1) | Ty.SInt _ | Ty.Clock -> a)
  | Expr.AsUInt | Expr.AsSInt -> a

let binop (op : Expr.binop) ~(ta : Ty.t) ~(tb : Ty.t) (a : Bv.t) (b : Bv.t) : Bv.t =
  let wr = Ty.width (Expr.binop_ty op ta tb) in
  match op with
  | Expr.Add -> Bv.add ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Sub -> Bv.sub ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Mul -> Bv.mul ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Div ->
      if Ty.is_signed ta then Bv.div_s ~width:wr a b else Bv.div_u ~width:wr a b
  | Expr.Rem ->
      if Ty.is_signed ta then Bv.rem_s ~width:wr a b else Bv.rem_u ~width:wr a b
  | Expr.Lt -> if Ty.is_signed ta then Bv.lt_s a b else Bv.lt_u a b
  | Expr.Leq -> if Ty.is_signed ta then Bv.leq_s a b else Bv.leq_u a b
  | Expr.Gt -> if Ty.is_signed ta then Bv.gt_s a b else Bv.gt_u a b
  | Expr.Geq -> if Ty.is_signed ta then Bv.geq_s a b else Bv.geq_u a b
  | Expr.Eq ->
      let w = max (Bv.width a) (Bv.width b) + 1 in
      Bv.eq (extend ta a w) (extend tb b w)
  | Expr.Neq ->
      let w = max (Bv.width a) (Bv.width b) + 1 in
      Bv.neq (extend ta a w) (extend tb b w)
  | Expr.And -> Bv.logand ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Or -> Bv.logor ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Xor -> Bv.logxor ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Cat -> Bv.concat a b
  | Expr.Dshl -> Bv.dshl ~width:wr (extend ta a wr) b
  | Expr.Dshr ->
      if Ty.is_signed ta then
        match Bv.to_int b with
        | Some n -> Bv.shift_right_arith a n
        | None -> Bv.shift_right_arith a (Bv.width a)
      else Bv.dshr a b

let intop (op : Expr.intop) (n : int) ~(ta : Ty.t) (a : Bv.t) : Bv.t =
  let w = Ty.width ta in
  match op with
  | Expr.Pad -> extend ta a (max w n)
  | Expr.Shl -> Bv.shift_left ~width:(w + n) a n
  | Expr.Shr ->
      (* SInt shr keeps the sign bit even when n >= w *)
      let n = if Ty.is_signed ta then min n (w - 1) else n in
      Bv.shift_right_logical a n
  | Expr.Head -> Bv.head a n
  | Expr.Tail -> Bv.tail a n

let bits ~hi ~lo (a : Bv.t) = Bv.extract ~hi ~lo a

(** Word-level (native-int) primop semantics, mirroring the {!Bv} functions
    above for the widths that fit a machine word. A value is the bit
    pattern of the signal, masked to its type's width and stored in a
    non-negative OCaml int; signed operands are re-read by sign extension.
    Applicable whenever every operand width and the result width are at
    most {!Int.max_width} — the word-level simulation engine's fast path.
    None of these functions allocate. *)
module Int = struct
  (** Widest pattern representable on the int path: to_int_trunc/of_int62
      round-trip exactly up to 62 bits. *)
  let max_width = 62

  let fits w = w <= max_width

  let mask w = if w >= max_width then max_int else (1 lsl w) - 1

  (** Signed reinterpretation of a masked [w]-bit pattern ([w <= 62]). *)
  let sext w v = if w = 0 then 0 else (v lsl (63 - w)) asr (63 - w)

  (** Read a pattern at its type's signedness. *)
  let read (ty : Ty.t) v = if Ty.is_signed ty then sext (Ty.width ty) v else v

  let of_bool b = if b then 1 else 0

  let unop (op : Expr.unop) ~(ta : Ty.t) (a : int) : int =
    let w = Ty.width ta in
    match op with
    | Expr.Not -> lnot a land mask w
    | Expr.Andr -> of_bool (w > 0 && a = mask w)
    | Expr.Orr -> of_bool (a <> 0)
    | Expr.Xorr -> Bv.popcount_int a land 1
    | Expr.Neg -> -read ta a land mask (w + 1)
    | Expr.Cvt | Expr.AsUInt | Expr.AsSInt -> a

  (* The result widths below restate Expr.binop_ty arithmetically so the
     hot loop never allocates a Ty.t; the qcheck suite pins them to the Bv
     path (which goes through binop_ty). *)
  let binop (op : Expr.binop) ~(ta : Ty.t) ~(tb : Ty.t) (a : int) (b : int) :
      int =
    let wa = Ty.width ta and wb = Ty.width tb in
    match op with
    | Expr.Add -> (read ta a + read tb b) land mask (max wa wb + 1)
    | Expr.Sub -> (read ta a - read tb b) land mask (max wa wb + 1)
    | Expr.Mul -> read ta a * read tb b land mask (wa + wb)
    | Expr.Div ->
        if b = 0 then 0
        else if Ty.is_signed ta then
          read ta a / read tb b land mask (wa + 1)
        else a / b
    | Expr.Rem ->
        let wr = min wa wb in
        if b = 0 then a land mask wr
        else if Ty.is_signed ta then read ta a mod read tb b land mask wr
        else a mod b land mask wr
    | Expr.Lt ->
        of_bool (if Ty.is_signed ta then read ta a < read tb b else a < b)
    | Expr.Leq ->
        of_bool (if Ty.is_signed ta then read ta a <= read tb b else a <= b)
    | Expr.Gt ->
        of_bool (if Ty.is_signed ta then read ta a > read tb b else a > b)
    | Expr.Geq ->
        of_bool (if Ty.is_signed ta then read ta a >= read tb b else a >= b)
    | Expr.Eq -> of_bool (read ta a = read tb b)
    | Expr.Neq -> of_bool (read ta a <> read tb b)
    | Expr.And -> read ta a land read tb b land mask (max wa wb)
    | Expr.Or -> (read ta a lor read tb b) land mask (max wa wb)
    | Expr.Xor -> (read ta a lxor read tb b) land mask (max wa wb)
    | Expr.Cat -> (a lsl wb) lor b
    | Expr.Dshl ->
        let wr = wa + (1 lsl wb) - 1 in
        if b >= wr then 0 else (read ta a lsl b) land mask wr
    | Expr.Dshr ->
        if Ty.is_signed ta then (sext wa a asr min b 62) land mask wa
        else if b >= wa then 0
        else a lsr b

  let intop (op : Expr.intop) (n : int) ~(ta : Ty.t) (a : int) : int =
    let w = Ty.width ta in
    match op with
    | Expr.Pad -> if Ty.is_signed ta && n > w then sext w a land mask n else a
    | Expr.Shl -> a lsl n
    | Expr.Shr ->
        if Ty.is_signed ta then a lsr min n (w - 1)
        else if n >= w then 0
        else a lsr n
    | Expr.Head -> a lsr (w - n)
    | Expr.Tail -> a land mask (w - n)

  let bits ~hi ~lo (a : int) = (a lsr lo) land mask (hi - lo + 1)
end

(** Full evaluation of an expression. [ty_of] resolves reference types (for
    signedness decisions); [value_of] resolves reference values. *)
let rec eval ~(ty_of : string -> Ty.t) ~(value_of : string -> Bv.t) (e : Expr.t) : Bv.t =
  match e with
  | Expr.Ref n -> value_of n
  | Expr.UIntLit v | Expr.SIntLit v -> v
  | Expr.Mux (s, a, b) ->
      if Bv.to_bool (eval ~ty_of ~value_of s) then eval ~ty_of ~value_of a
      else eval ~ty_of ~value_of b
  | Expr.Unop (op, a) ->
      unop op ~ta:(Expr.type_of ty_of a) (eval ~ty_of ~value_of a)
  | Expr.Binop (op, a, b) ->
      binop op ~ta:(Expr.type_of ty_of a) ~tb:(Expr.type_of ty_of b)
        (eval ~ty_of ~value_of a) (eval ~ty_of ~value_of b)
  | Expr.Intop (op, n, a) ->
      intop op n ~ta:(Expr.type_of ty_of a) (eval ~ty_of ~value_of a)
  | Expr.Bits (a, hi, lo) -> bits ~hi ~lo (eval ~ty_of ~value_of a)
