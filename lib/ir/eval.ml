(** Reference evaluation semantics for expressions.

    Every backend (interpreter, compiled simulator, activity-driven
    simulator, constant propagation, FSM next-state analysis, formal
    bit-blasting) defines or checks its behaviour against these functions,
    which implement FIRRTL's primop semantics on {!Sic_bv.Bv} values. Each
    function returns a value whose width is exactly the width given by
    {!Expr.type_of}. *)

module Bv = Sic_bv.Bv

(** Read a value at its type's signedness, extended to [w] bits. *)
let extend (ty : Ty.t) (v : Bv.t) (w : int) =
  if Ty.is_signed ty then Bv.extend_s v w else Bv.extend_u v w

let unop (op : Expr.unop) ~(ta : Ty.t) (a : Bv.t) : Bv.t =
  let w = Ty.width ta in
  match op with
  | Expr.Not -> Bv.lognot ~width:w a
  | Expr.Andr -> Bv.of_bool (Bv.andr a)
  | Expr.Orr -> Bv.of_bool (Bv.orr a)
  | Expr.Xorr -> Bv.of_bool (Bv.xorr a)
  | Expr.Neg -> Bv.neg ~width:(w + 1) (extend ta a (w + 1))
  | Expr.Cvt -> ( match ta with Ty.UInt _ -> Bv.extend_u a (w + 1) | Ty.SInt _ | Ty.Clock -> a)
  | Expr.AsUInt | Expr.AsSInt -> a

let binop (op : Expr.binop) ~(ta : Ty.t) ~(tb : Ty.t) (a : Bv.t) (b : Bv.t) : Bv.t =
  let wr = Ty.width (Expr.binop_ty op ta tb) in
  match op with
  | Expr.Add -> Bv.add ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Sub -> Bv.sub ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Mul -> Bv.mul ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Div ->
      if Ty.is_signed ta then Bv.div_s ~width:wr a b else Bv.div_u ~width:wr a b
  | Expr.Rem ->
      if Ty.is_signed ta then Bv.rem_s ~width:wr a b else Bv.rem_u ~width:wr a b
  | Expr.Lt -> if Ty.is_signed ta then Bv.lt_s a b else Bv.lt_u a b
  | Expr.Leq -> if Ty.is_signed ta then Bv.leq_s a b else Bv.leq_u a b
  | Expr.Gt -> if Ty.is_signed ta then Bv.gt_s a b else Bv.gt_u a b
  | Expr.Geq -> if Ty.is_signed ta then Bv.geq_s a b else Bv.geq_u a b
  | Expr.Eq ->
      let w = max (Bv.width a) (Bv.width b) + 1 in
      Bv.eq (extend ta a w) (extend tb b w)
  | Expr.Neq ->
      let w = max (Bv.width a) (Bv.width b) + 1 in
      Bv.neq (extend ta a w) (extend tb b w)
  | Expr.And -> Bv.logand ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Or -> Bv.logor ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Xor -> Bv.logxor ~width:wr (extend ta a wr) (extend tb b wr)
  | Expr.Cat -> Bv.concat a b
  | Expr.Dshl -> Bv.dshl ~width:wr (extend ta a wr) b
  | Expr.Dshr ->
      if Ty.is_signed ta then
        match Bv.to_int b with
        | Some n -> Bv.shift_right_arith a n
        | None -> Bv.shift_right_arith a (Bv.width a)
      else Bv.dshr a b

let intop (op : Expr.intop) (n : int) ~(ta : Ty.t) (a : Bv.t) : Bv.t =
  let w = Ty.width ta in
  match op with
  | Expr.Pad -> extend ta a (max w n)
  | Expr.Shl -> Bv.shift_left ~width:(w + n) a n
  | Expr.Shr ->
      (* SInt shr keeps the sign bit even when n >= w *)
      let n = if Ty.is_signed ta then min n (w - 1) else n in
      Bv.shift_right_logical a n
  | Expr.Head -> Bv.head a n
  | Expr.Tail -> Bv.tail a n

let bits ~hi ~lo (a : Bv.t) = Bv.extract ~hi ~lo a

(** Full evaluation of an expression. [ty_of] resolves reference types (for
    signedness decisions); [value_of] resolves reference values. *)
let rec eval ~(ty_of : string -> Ty.t) ~(value_of : string -> Bv.t) (e : Expr.t) : Bv.t =
  match e with
  | Expr.Ref n -> value_of n
  | Expr.UIntLit v | Expr.SIntLit v -> v
  | Expr.Mux (s, a, b) ->
      if Bv.to_bool (eval ~ty_of ~value_of s) then eval ~ty_of ~value_of a
      else eval ~ty_of ~value_of b
  | Expr.Unop (op, a) ->
      unop op ~ta:(Expr.type_of ty_of a) (eval ~ty_of ~value_of a)
  | Expr.Binop (op, a, b) ->
      binop op ~ta:(Expr.type_of ty_of a) ~tb:(Expr.type_of ty_of b)
        (eval ~ty_of ~value_of a) (eval ~ty_of ~value_of b)
  | Expr.Intop (op, n, a) ->
      intop op n ~ta:(Expr.type_of ty_of a) (eval ~ty_of ~value_of a)
  | Expr.Bits (a, hi, lo) -> bits ~hi ~lo (eval ~ty_of ~value_of a)
