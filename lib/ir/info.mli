(** Source locators. The DSL fills these from [__POS__]; the parser from
    [@[file line:col]] suffixes, mirroring FIRRTL's file info tokens. The
    line-coverage report resolves them back to design sources. *)

type t =
  | Unknown
  | Pos of { file : string; line : int; col : int }

val unknown : t
val pos : file:string -> line:int -> col:int -> t

val of_pos : string * int * int * int -> t
(** From [__POS__]. *)

val file : t -> string option
val line : t -> int option
val to_string : t -> string
(** ["@[file line:col]"], or [""] for {!Unknown}. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
