(** Recursive-descent parser for the FIRRTL-style concrete syntax emitted by
    {!Printer}. Indentation-sensitive like real FIRRTL: block structure is
    given by leading spaces; [;] starts a line comment. *)

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Line splitting                                                      *)
(* ------------------------------------------------------------------ *)

type line = { num : int; indent : int; text : string }

let split_lines src =
  let raw = String.split_on_char '\n' src in
  List.filteri (fun _ _ -> true) raw
  |> List.mapi (fun i s -> (i + 1, s))
  |> List.filter_map (fun (num, s) ->
         (* strip comments, but not inside string literals *)
         let buf = Buffer.create (String.length s) in
         let in_str = ref false in
         (try
            String.iter
              (fun c ->
                if c = '"' then in_str := not !in_str;
                if c = ';' && not !in_str then raise Exit;
                Buffer.add_char buf c)
              s
          with Exit -> ());
         let s = Buffer.contents buf in
         let trimmed = String.trim s in
         if trimmed = "" then None
         else
           let indent =
             let rec go i = if i < String.length s && s.[i] = ' ' then go (i + 1) else i in
             go 0
           in
           Some { num; indent; text = trimmed })

(* ------------------------------------------------------------------ *)
(* Expression tokenizer                                                 *)
(* ------------------------------------------------------------------ *)

type token =
  | Tid of string
  | Tint of int
  | Tstring of string
  | Tlparen
  | Trparen
  | Tcomma
  | Tlangle
  | Trangle
  | Teq
  | Tcolon
  | Tarrow

(* '-' appears in keywords like "data-type"; a leading '-' followed by a
   digit instead starts a negative integer literal *)
let is_id_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$' || c = '-'

let tokenize lnum s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '(' then (toks := Tlparen :: !toks; incr i)
    else if c = ')' then (toks := Trparen :: !toks; incr i)
    else if c = ',' then (toks := Tcomma :: !toks; incr i)
    else if c = '<' then (toks := Tlangle :: !toks; incr i)
    else if c = '>' then (toks := Trangle :: !toks; incr i)
    else if c = ':' then (toks := Tcolon :: !toks; incr i)
    else if c = '=' && !i + 1 < n && s.[!i + 1] = '>' then (toks := Tarrow :: !toks; i := !i + 2)
    else if c = '=' then (toks := Teq :: !toks; incr i)
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let buf = Buffer.create 16 in
      while !j < n && s.[!j] <> '"' do
        if s.[!j] = '\\' && !j + 1 < n then begin
          (match s.[!j + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c -> Buffer.add_char buf c);
          j := !j + 2
        end
        else begin
          Buffer.add_char buf s.[!j];
          incr j
        end
      done;
      if !j >= n then fail lnum "unterminated string";
      toks := Tstring (Buffer.contents buf) :: !toks;
      i := !j + 1
    end
    else if
      (c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
      || (c >= '0' && c <= '9')
    then begin
      let j = ref !i in
      if s.[!j] = '-' then incr j;
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      (match int_of_string_opt (String.sub s !i (!j - !i)) with
      | Some v -> toks := Tint v :: !toks
      | None -> fail lnum "integer literal out of range");
      i := !j
    end
    else if is_id_char c then begin
      let j = ref !i in
      while !j < n && is_id_char s.[!j] do incr j done;
      toks := Tid (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else if c = '@' && !i + 1 < n && s.[!i + 1] = '[' then begin
      (* info token: @[file line:col] — consume to closing bracket *)
      let j = ref (!i + 2) in
      while !j < n && s.[!j] <> ']' do incr j done;
      let inner = String.sub s (!i + 2) (!j - !i - 2) in
      toks := Tstring ("@" ^ inner) :: !toks;
      i := !j + 1
    end
    else fail lnum "unexpected character %c" c
  done;
  List.rev !toks

(* Token stream with one-symbol lookahead. *)
type stream = { mutable toks : token list; lnum : int }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let next st =
  match st.toks with
  | [] -> fail st.lnum "unexpected end of line"
  | t :: rest ->
      st.toks <- rest;
      t

let expect st tok what =
  let t = next st in
  if t <> tok then fail st.lnum "expected %s" what

let ident st =
  match next st with Tid s -> s | _ -> fail st.lnum "expected identifier"

let integer st =
  match next st with Tint n -> n | _ -> fail st.lnum "expected integer"

(* ------------------------------------------------------------------ *)
(* Types and expressions                                               *)
(* ------------------------------------------------------------------ *)

let parse_ty st =
  match ident st with
  | "Clock" -> Ty.Clock
  | ("UInt" | "SInt") as kind ->
      expect st Tlangle "<";
      let w = integer st in
      expect st Trangle ">";
      if kind = "UInt" then Ty.UInt w else Ty.SInt w
  | other -> fail st.lnum "unknown type %s" other

let unops =
  [ ("not", Expr.Not); ("andr", Expr.Andr); ("orr", Expr.Orr); ("xorr", Expr.Xorr);
    ("neg", Expr.Neg); ("cvt", Expr.Cvt); ("asUInt", Expr.AsUInt); ("asSInt", Expr.AsSInt) ]

let binops =
  [ ("add", Expr.Add); ("sub", Expr.Sub); ("mul", Expr.Mul); ("div", Expr.Div);
    ("rem", Expr.Rem); ("lt", Expr.Lt); ("leq", Expr.Leq); ("gt", Expr.Gt);
    ("geq", Expr.Geq); ("eq", Expr.Eq); ("neq", Expr.Neq); ("and", Expr.And);
    ("or", Expr.Or); ("xor", Expr.Xor); ("cat", Expr.Cat); ("dshl", Expr.Dshl);
    ("dshr", Expr.Dshr) ]

let intops =
  [ ("pad", Expr.Pad); ("shl", Expr.Shl); ("shr", Expr.Shr); ("head", Expr.Head);
    ("tail", Expr.Tail) ]

let rec parse_expr st : Expr.t =
  match next st with
  | Tid ("UInt" | "SInt" as kind) ->
      expect st Tlangle "<";
      let w = integer st in
      expect st Trangle ">";
      expect st Tlparen "(";
      let v =
        match next st with
        | Tint n ->
            if kind = "UInt" then Sic_bv.Bv.of_int ~width:w n
            else Sic_bv.Bv.of_signed_int ~width:w n
        | Tstring s when String.length s > 1 && s.[0] = 'h' ->
            Sic_bv.Bv.of_hex_string ~width:w (String.sub s 1 (String.length s - 1))
        | Tstring s when String.length s > 1 && s.[0] = 'b' ->
            Sic_bv.Bv.extend_u (Sic_bv.Bv.of_binary_string (String.sub s 1 (String.length s - 1))) w
        | _ -> fail st.lnum "bad literal"
      in
      expect st Trparen ")";
      if kind = "UInt" then Expr.UIntLit v else Expr.SIntLit v
  | Tid "mux" ->
      expect st Tlparen "(";
      let s = parse_expr st in
      expect st Tcomma ",";
      let a = parse_expr st in
      expect st Tcomma ",";
      let b = parse_expr st in
      expect st Trparen ")";
      Expr.Mux (s, a, b)
  | Tid "bits" ->
      expect st Tlparen "(";
      let e = parse_expr st in
      expect st Tcomma ",";
      let hi = integer st in
      expect st Tcomma ",";
      let lo = integer st in
      expect st Trparen ")";
      Expr.Bits (e, hi, lo)
  | Tid name when List.mem_assoc name unops && peek st = Some Tlparen ->
      expect st Tlparen "(";
      let e = parse_expr st in
      expect st Trparen ")";
      Expr.Unop (List.assoc name unops, e)
  | Tid name when List.mem_assoc name binops && peek st = Some Tlparen ->
      expect st Tlparen "(";
      let a = parse_expr st in
      expect st Tcomma ",";
      let b = parse_expr st in
      expect st Trparen ")";
      Expr.Binop (List.assoc name binops, a, b)
  | Tid name when List.mem_assoc name intops && peek st = Some Tlparen ->
      expect st Tlparen "(";
      let e = parse_expr st in
      expect st Tcomma ",";
      let n = integer st in
      expect st Trparen ")";
      Expr.Intop (List.assoc name intops, n, e)
  | Tid name -> Expr.Ref name
  | _ -> fail st.lnum "expected expression"

(* Trailing info token: a Tstring starting with '@'. *)
let parse_info st =
  match peek st with
  | Some (Tstring s) when String.length s > 0 && s.[0] = '@' -> (
      ignore (next st);
      (* format: "@file line:col" *)
      match String.split_on_char ' ' (String.sub s 1 (String.length s - 1)) with
      | [ file; lc ] -> (
          match String.split_on_char ':' lc with
          | [ l; c ] -> (
              match (int_of_string_opt l, int_of_string_opt c) with
              | Some line, Some col -> Info.pos ~file ~line ~col
              | _ -> Info.unknown)
          | _ -> Info.unknown)
      | _ -> Info.unknown)
  | _ -> Info.unknown

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* [parse_block lines indent] consumes statements whose indent is
   >= [indent] (block members all share the first member's indent). *)
let rec parse_block lines indent : Stmt.t list * line list =
  match lines with
  | [] -> ([], [])
  | l :: _ when l.indent < indent -> ([], lines)
  | l :: rest ->
      let stmt, rest = parse_stmt l rest in
      let stmts, rest = parse_block rest indent in
      (stmt @ stmts, rest)

and parse_stmt (l : line) rest : Stmt.t list * line list =
  let st = { toks = tokenize l.num l.text; lnum = l.num } in
  match next st with
  | Tid "skip" -> ([], rest)
  | Tid "node" ->
      let name = ident st in
      expect st Teq "=";
      let expr = parse_expr st in
      let info = parse_info st in
      ([ Stmt.Node { name; expr; info } ], rest)
  | Tid "wire" ->
      let name = ident st in
      expect st Tcolon ":";
      let ty = parse_ty st in
      let info = parse_info st in
      ([ Stmt.Wire { name; ty; info } ], rest)
  | Tid "reg" ->
      let name = ident st in
      expect st Tcolon ":";
      let ty = parse_ty st in
      let reset =
        match peek st with
        | Some Tcomma ->
            ignore (next st);
            (match ident st with
            | "reset" -> ()
            | _ -> fail l.num "expected reset clause");
            expect st Tarrow "=>";
            expect st Tlparen "(";
            let rst = parse_expr st in
            expect st Tcomma ",";
            let init = parse_expr st in
            expect st Trparen ")";
            Some (rst, init)
        | _ -> None
      in
      let info = parse_info st in
      ([ Stmt.Reg { name; ty; reset; info } ], rest)
  | Tid "mem" ->
      let name = ident st in
      expect st Tcolon ":";
      let info = parse_info st in
      (* fields on following, deeper-indented lines *)
      let field_indent =
        match rest with
        | f :: _ when f.indent > l.indent -> f.indent
        | _ -> fail l.num "mem %s has no fields" name
      in
      let rec fields lines (data, depth, lat, readers, writers, inits) =
        match lines with
        | f :: more when f.indent = field_indent -> (
            let fst_ = { toks = tokenize f.num f.text; lnum = f.num } in
            match ident fst_ with
            | "data-type" ->
                expect fst_ Tarrow "=>";
                fields more (Some (parse_ty fst_), depth, lat, readers, writers, inits)
            | "depth" ->
                expect fst_ Tarrow "=>";
                fields more (data, integer fst_, lat, readers, writers, inits)
            | "read-latency" ->
                expect fst_ Tarrow "=>";
                fields more (data, depth, integer fst_, readers, writers, inits)
            | "reader" ->
                expect fst_ Tarrow "=>";
                fields more (data, depth, lat, ident fst_ :: readers, writers, inits)
            | "writer" ->
                expect fst_ Tarrow "=>";
                fields more (data, depth, lat, readers, ident fst_ :: writers, inits)
            | "init" ->
                expect fst_ Tarrow "=>";
                let idx = integer fst_ in
                let word =
                  match ident fst_ with
                  | w when String.length w > 1 && w.[0] = 'h' ->
                      String.sub w 1 (String.length w - 1)
                  | _ -> fail f.num "expected hex word (h...) in mem init"
                in
                fields more (data, depth, lat, readers, writers, (f.num, idx, word) :: inits)
            | other -> fail f.num "unknown mem field %s" other)
        | lines -> ((data, depth, lat, readers, writers, inits), lines)
      in
      let (data, depth, lat, readers, writers, inits), rest =
        fields rest (None, 0, 0, [], [], [])
      in
      let mem_data = match data with Some t -> t | None -> fail l.num "mem %s missing data-type" name in
      let mem_init =
        match inits with
        | [] -> None
        | inits ->
            let w = Ty.width mem_data in
            let arr = Array.make depth (Sic_bv.Bv.zero w) in
            List.iter
              (fun (lnum, idx, word) ->
                if idx < 0 || idx >= depth then
                  fail lnum "mem init index %d out of range for depth %d" idx depth;
                match Sic_bv.Bv.of_hex_string ~width:w word with
                | v -> arr.(idx) <- v
                | exception _ -> fail lnum "bad hex word h%s in mem init" word)
              inits;
            Some arr
      in
      let mem =
        {
          Stmt.mem_name = name;
          mem_data;
          mem_depth = depth;
          mem_read_latency = lat;
          mem_readers = List.rev_map (fun rp_name -> { Stmt.rp_name }) readers;
          mem_writers = List.rev_map (fun wp_name -> { Stmt.wp_name }) writers;
          mem_init;
        }
      in
      ([ Stmt.Mem { mem; info } ], rest)
  | Tid "inst" ->
      let name = ident st in
      (match ident st with "of" -> () | _ -> fail l.num "expected 'of'");
      let module_name = ident st in
      let info = parse_info st in
      ([ Stmt.Inst { name; module_name; info } ], rest)
  | Tid "connect" ->
      let loc = ident st in
      expect st Tcomma ",";
      let expr = parse_expr st in
      let info = parse_info st in
      ([ Stmt.Connect { loc; expr; info } ], rest)
  | Tid "when" ->
      let cond = parse_expr st in
      expect st Tcolon ":";
      let info = parse_info st in
      let then_, rest =
        match rest with
        | f :: _ when f.indent > l.indent -> parse_block rest f.indent
        | _ -> ([], rest)
      in
      let else_, rest =
        match rest with
        | e :: more when e.indent = l.indent && e.text = "else :" -> (
            match more with
            | f :: _ when f.indent > l.indent -> parse_block more f.indent
            | _ -> ([], more))
        | _ -> ([], rest)
      in
      ([ Stmt.When { cond; then_; else_; info } ], rest)
  | Tid "cover" ->
      let name = ident st in
      expect st Tcomma ",";
      let pred = parse_expr st in
      let info = parse_info st in
      ([ Stmt.Cover { name; pred; info } ], rest)
  | Tid "cover-values" ->
      let name = ident st in
      expect st Tcomma ",";
      let signal = parse_expr st in
      expect st Tcomma ",";
      let en = parse_expr st in
      let info = parse_info st in
      ([ Stmt.CoverValues { name; signal; en; info } ], rest)
  | Tid "stop" ->
      let name = ident st in
      expect st Tcomma ",";
      let cond = parse_expr st in
      expect st Tcomma ",";
      let exit_code = integer st in
      let info = parse_info st in
      ([ Stmt.Stop { name; cond; exit_code; info } ], rest)
  | Tid "printf" ->
      let cond = parse_expr st in
      expect st Tcomma ",";
      let message =
        match next st with Tstring s -> s | _ -> fail l.num "expected format string"
      in
      let rec args acc =
        match peek st with
        | Some Tcomma ->
            ignore (next st);
            args (parse_expr st :: acc)
        | _ -> List.rev acc
      in
      let args = args [] in
      let info = parse_info st in
      ([ Stmt.Print { cond; message; args; info } ], rest)
  | Tid other -> fail l.num "unknown statement %s" other
  | _ -> fail l.num "expected statement"

(* ------------------------------------------------------------------ *)
(* Modules and circuits                                                *)
(* ------------------------------------------------------------------ *)

let parse_port (l : line) : Circuit.port option =
  let st = { toks = tokenize l.num l.text; lnum = l.num } in
  match peek st with
  | Some (Tid ("input" | "output")) ->
      let dir = if ident st = "input" then Circuit.Input else Circuit.Output in
      let port_name = ident st in
      expect st Tcolon ":";
      let port_ty = parse_ty st in
      let port_info = parse_info st in
      Some { Circuit.port_name; dir; port_ty; port_info }
  | _ -> None

let parse_module (l : line) rest : Circuit.modul * line list =
  let st = { toks = tokenize l.num l.text; lnum = l.num } in
  (match ident st with "module" -> () | _ -> fail l.num "expected module");
  let module_name = ident st in
  expect st Tcolon ":";
  let body_indent =
    match rest with
    | f :: _ when f.indent > l.indent -> f.indent
    | _ -> l.indent + 2
  in
  let rec ports lines acc =
    match lines with
    | f :: more when f.indent >= body_indent -> (
        match parse_port f with
        | Some p -> ports more (p :: acc)
        | None -> (List.rev acc, lines))
    | lines -> (List.rev acc, lines)
  in
  let ports_, rest = ports rest [] in
  let body, rest =
    match rest with
    | f :: _ when f.indent >= body_indent -> parse_block rest f.indent
    | _ -> ([], rest)
  in
  ({ Circuit.module_name; ports = ports_; body }, rest)

let parse_circuit src : Circuit.t =
  let lines = split_lines src in
  match lines with
  | [] -> fail 0 "empty input"
  | l :: rest ->
      let st = { toks = tokenize l.num l.text; lnum = l.num } in
      (match ident st with "circuit" -> () | _ -> fail l.num "expected circuit");
      let circuit_name = ident st in
      expect st Tcolon ":";
      let rec modules lines acc =
        match lines with
        | [] -> List.rev acc
        | m :: _ when m.indent > l.indent ->
            let md, rest = parse_module m (List.tl lines) in
            modules rest (md :: acc)
        | m :: _ -> fail m.num "unexpected top-level line"
      in
      { Circuit.circuit_name; modules = modules rest []; annotations = [] }
