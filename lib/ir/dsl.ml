type loc = string * int * int * int

type signal = { expr : Expr.t; ty : Ty.t }

type circuit_builder = {
  cb_name : string;
  mutable cb_modules : Circuit.modul list;  (* reverse order *)
  mutable cb_annos : Annotation.t list;
  mutable cb_enums : (string * Annotation.enum_def) list;
}

type m = {
  parent : circuit_builder;
  m_name : string;
  mutable m_ports : Circuit.port list;  (* reverse order *)
  mutable blocks : Stmt.t list ref list;  (* stack; head = current block, reversed *)
  ns : Namespace.t;
  env : (string, Ty.t) Hashtbl.t;
  mutable instances : (string * string) list;  (* inst name -> module name *)
}

type enum = { e_def : Annotation.enum_def; e_ty : Ty.t; e_cb : circuit_builder }

type decoupled = { ready : signal; valid : signal; bits : signal }

type mem_handle = { h_m : m; h_mem : Stmt.mem }

exception Dsl_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Dsl_error s)) fmt

let info_of = function None -> Info.unknown | Some l -> Info.of_pos l

(* ------------------------------------------------------------------ *)
(* Circuit / module structure                                          *)
(* ------------------------------------------------------------------ *)

let create_circuit name =
  { cb_name = name; cb_modules = []; cb_annos = []; cb_enums = [] }

let emit (m : m) (s : Stmt.t) =
  match m.blocks with
  | [] -> error "no open block in module %s" m.m_name
  | b :: _ -> b := s :: !b

let declare (m : m) name ty =
  if Namespace.mem m.ns name then error "duplicate name %s in module %s" name m.m_name;
  Namespace.reserve m.ns name;
  Hashtbl.replace m.env name ty

let clock (m : m) = ignore m; { expr = Expr.Ref "clock"; ty = Ty.Clock }
let reset (m : m) = ignore m; { expr = Expr.Ref "reset"; ty = Ty.UInt 1 }

let module_ cb name f =
  if List.exists (fun md -> String.equal md.Circuit.module_name name) cb.cb_modules then
    error "module %s defined twice" name;
  let m =
    {
      parent = cb;
      m_name = name;
      m_ports = [];
      blocks = [ ref [] ];
      ns = Namespace.create ();
      env = Hashtbl.create 64;
      instances = [];
    }
  in
  (* implicit clock and reset, like Chisel *)
  declare m "clock" Ty.Clock;
  declare m "reset" (Ty.UInt 1);
  m.m_ports <-
    [
      { Circuit.port_name = "reset"; dir = Circuit.Input; port_ty = Ty.UInt 1; port_info = Info.unknown };
      { Circuit.port_name = "clock"; dir = Circuit.Input; port_ty = Ty.Clock; port_info = Info.unknown };
    ];
  f m;
  (match m.blocks with
  | [ b ] ->
      cb.cb_modules <-
        { Circuit.module_name = name; ports = List.rev m.m_ports; body = List.rev !b }
        :: cb.cb_modules
  | _ -> error "unbalanced when blocks in module %s" name)

let finalize cb =
  let modules = List.rev cb.cb_modules in
  if not (List.exists (fun md -> String.equal md.Circuit.module_name cb.cb_name) modules)
  then Circuit.error "top module %s was never defined" cb.cb_name;
  { Circuit.circuit_name = cb.cb_name; modules; annotations = List.rev cb.cb_annos }

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let port ?loc (m : m) name ty dir =
  declare m name ty;
  m.m_ports <-
    { Circuit.port_name = name; dir; port_ty = ty; port_info = info_of loc } :: m.m_ports;
  { expr = Expr.Ref name; ty }

let input ?loc m name ty = port ?loc m name ty Circuit.Input
let output ?loc m name ty = port ?loc m name ty Circuit.Output

let wire ?loc m name ty =
  declare m name ty;
  emit m (Stmt.Wire { name; ty; info = info_of loc });
  { expr = Expr.Ref name; ty }

let reg_ ?loc m name ty =
  declare m name ty;
  emit m (Stmt.Reg { name; ty; reset = None; info = info_of loc });
  { expr = Expr.Ref name; ty }

let reg_init ?loc m name init =
  declare m name init.ty;
  emit m
    (Stmt.Reg
       { name; ty = init.ty; reset = Some (Expr.Ref "reset", init.expr); info = info_of loc });
  { expr = Expr.Ref name; ty = init.ty }

let node ?loc m name s =
  let name = Namespace.fresh m.ns name in
  Hashtbl.replace m.env name s.ty;
  emit m (Stmt.Node { name; expr = s.expr; info = info_of loc });
  { expr = Expr.Ref name; ty = s.ty }

(* ------------------------------------------------------------------ *)
(* Literals and operators                                              *)
(* ------------------------------------------------------------------ *)

let lit width value = { expr = Expr.u_lit ~width value; ty = Ty.UInt width }
let slit width value = { expr = Expr.s_lit ~width value; ty = Ty.SInt width }
let of_bv v = { expr = Expr.UIntLit v; ty = Ty.UInt (Sic_bv.Bv.width v) }
let true_ = lit 1 1
let false_ = lit 1 0

let unop op a = { expr = Expr.Unop (op, a.expr); ty = Expr.unop_ty op a.ty }
let binop op a b =
  { expr = Expr.Binop (op, a.expr, b.expr); ty = Expr.binop_ty op a.ty b.ty }

let ( +: ) a b = binop Expr.Add a b
let ( -: ) a b = binop Expr.Sub a b
let ( *: ) a b = binop Expr.Mul a b
let ( /: ) a b = binop Expr.Div a b
let ( %: ) a b = binop Expr.Rem a b
let ( ==: ) a b = binop Expr.Eq a b
let ( <>: ) a b = binop Expr.Neq a b
let ( <: ) a b = binop Expr.Lt a b
let ( <=: ) a b = binop Expr.Leq a b
let ( >: ) a b = binop Expr.Gt a b
let ( >=: ) a b = binop Expr.Geq a b
let ( &: ) a b = binop Expr.And a b
let ( |: ) a b = binop Expr.Or a b
let ( ^: ) a b = binop Expr.Xor a b
let not_s a = unop Expr.Not a
let andr_s a = unop Expr.Andr a
let orr_s a = unop Expr.Orr a
let xorr_s a = unop Expr.Xorr a
let cat_s a b = binop Expr.Cat a b
let dshl_s a b = binop Expr.Dshl a b
let dshr_s a b = binop Expr.Dshr a b
let as_uint a = unop Expr.AsUInt a
let as_sint a = unop Expr.AsSInt a

let bits_s a ~hi ~lo =
  { expr = Expr.Bits (a.expr, hi, lo); ty = Expr.bits_ty hi lo a.ty }

let bit_s a i = bits_s a ~hi:i ~lo:i

let intop op n a = { expr = Expr.Intop (op, n, a.expr); ty = Expr.intop_ty op n a.ty }

let pad_s a n = intop Expr.Pad n a
let shl_s a n = intop Expr.Shl n a
let shr_s a n = intop Expr.Shr n a

(** Pad or truncate to an exact width, keeping the signedness. *)
let resize a w =
  let cur = Ty.width a.ty in
  if cur = w then a
  else if cur < w then pad_s a w
  else
    match a.ty with
    | Ty.UInt _ -> bits_s a ~hi:(w - 1) ~lo:0
    | Ty.SInt _ -> as_sint (bits_s a ~hi:(w - 1) ~lo:0)
    | Ty.Clock -> error "resize on Clock"

let mux_s sel a b =
  let w = max (Ty.width a.ty) (Ty.width b.ty) in
  let a = resize a w and b = resize b w in
  { expr = Expr.Mux (sel.expr, a.expr, b.expr); ty = Expr.mux_ty sel.ty a.ty b.ty }

(* ------------------------------------------------------------------ *)
(* Connects and control flow                                           *)
(* ------------------------------------------------------------------ *)

let connect ?loc (m : m) dst src =
  match dst.expr with
  | Expr.Ref name ->
      let src = resize src (Ty.width dst.ty) in
      let src =
        (* allow connecting UInt to SInt and vice versa via reinterpret,
           like Chisel's asTypeOf idiom; widths already match *)
        match (dst.ty, src.ty) with
        | Ty.UInt _, Ty.SInt _ -> as_uint src
        | Ty.SInt _, Ty.UInt _ -> as_sint src
        | _ -> src
      in
      emit m (Stmt.Connect { loc = name; expr = src.expr; info = info_of loc })
  | _ -> error "connect destination must be a reference in module %s" m.m_name

let run_block (m : m) f =
  m.blocks <- ref [] :: m.blocks;
  f ();
  match m.blocks with
  | b :: rest ->
      m.blocks <- rest;
      List.rev !b
  | [] -> assert false

let when_else ?loc (m : m) cond then_f else_f =
  if not (Ty.equal cond.ty (Ty.UInt 1)) then
    error "when condition must be UInt<1> in module %s" m.m_name;
  let then_ = run_block m then_f in
  let else_ = run_block m else_f in
  emit m (Stmt.When { cond = cond.expr; then_; else_; info = info_of loc })

let when_ ?loc m cond then_f = when_else ?loc m cond then_f (fun () -> ())

let switch ?loc ?default (m : m) scrutinee cases =
  (* Build the nested when-chain bottom-up so it reads like Chisel's
     switch/is while lowering to ordinary branches. *)
  let rec build cases =
    match cases with
    | [] -> ( match default with Some f -> f () | None -> ())
    | (v, f) :: rest ->
        when_else ?loc m (scrutinee ==: v) f (fun () -> build rest)
  in
  build cases

(* ------------------------------------------------------------------ *)
(* Enums                                                               *)
(* ------------------------------------------------------------------ *)

let enum cb name variant_names =
  if variant_names = [] then error "enum %s has no variants" name;
  if List.mem_assoc name cb.cb_enums then error "enum %s defined twice" name;
  let variants = List.mapi (fun i v -> (v, i)) variant_names in
  let def = { Annotation.enum_name = name; variants } in
  cb.cb_enums <- (name, def) :: cb.cb_enums;
  cb.cb_annos <- Annotation.Enum_def def :: cb.cb_annos;
  { e_def = def; e_ty = Ty.UInt (Ty.clog2 (List.length variants)); e_cb = cb }

let enum_ty e = e.e_ty

let enum_value e variant =
  match List.assoc_opt variant e.e_def.Annotation.variants with
  | Some code -> { expr = Expr.u_lit ~width:(Ty.width e.e_ty) code; ty = e.e_ty }
  | None -> error "enum %s has no variant %s" e.e_def.Annotation.enum_name variant

let reg_enum ?loc (m : m) name e init_variant =
  let init = enum_value e init_variant in
  let s = reg_init ?loc m name init in
  m.parent.cb_annos <-
    Annotation.Enum_reg
      { module_name = m.m_name; reg = name; enum = e.e_def.Annotation.enum_name }
    :: m.parent.cb_annos;
  s

let is e variant state = state ==: enum_value e variant

(* ------------------------------------------------------------------ *)
(* Decoupled bundles                                                   *)
(* ------------------------------------------------------------------ *)

let decoupled ?loc (m : m) prefix data_ty ~sink =
  let in_, out_ = if sink then (input ?loc, output ?loc) else (output ?loc, input ?loc) in
  let valid = in_ m (prefix ^ "_valid") (Ty.UInt 1) in
  let bits = in_ m (prefix ^ "_bits") data_ty in
  let ready = out_ m (prefix ^ "_ready") (Ty.UInt 1) in
  m.parent.cb_annos <-
    Annotation.Decoupled { module_name = m.m_name; prefix; sink } :: m.parent.cb_annos;
  { ready; valid; bits }

let decoupled_input ?loc m prefix data_ty = decoupled ?loc m prefix data_ty ~sink:true
let decoupled_output ?loc m prefix data_ty = decoupled ?loc m prefix data_ty ~sink:false

let fire (d : decoupled) = d.ready &: d.valid

(* ------------------------------------------------------------------ *)
(* Memories                                                            *)
(* ------------------------------------------------------------------ *)

let mem ?loc ?(sync_read = false) (m : m) name data_ty ~depth ~readers ~writers =
  let mem =
    {
      Stmt.mem_name = name;
      mem_data = data_ty;
      mem_depth = depth;
      mem_read_latency = (if sync_read then 1 else 0);
      mem_readers = List.map (fun rp_name -> { Stmt.rp_name }) readers;
      mem_writers = List.map (fun wp_name -> { Stmt.wp_name }) writers;
      mem_init = None;
    }
  in
  if Namespace.mem m.ns name then error "duplicate name %s in module %s" name m.m_name;
  Namespace.reserve m.ns name;
  let addr_ty = Ty.UInt (Ty.clog2 depth) in
  let info = info_of loc in
  emit m (Stmt.Mem { mem; info });
  (* register port names in the environment and default-drive them *)
  List.iter
    (fun r ->
      Hashtbl.replace m.env (name ^ "." ^ r ^ ".addr") addr_ty;
      Hashtbl.replace m.env (name ^ "." ^ r ^ ".data") data_ty;
      emit m
        (Stmt.Connect { loc = name ^ "." ^ r ^ ".addr"; expr = Expr.u_lit ~width:(Ty.width addr_ty) 0; info }))
    readers;
  List.iter
    (fun w ->
      Hashtbl.replace m.env (name ^ "." ^ w ^ ".addr") addr_ty;
      Hashtbl.replace m.env (name ^ "." ^ w ^ ".data") data_ty;
      Hashtbl.replace m.env (name ^ "." ^ w ^ ".en") (Ty.UInt 1);
      emit m (Stmt.Connect { loc = name ^ "." ^ w ^ ".en"; expr = Expr.false_; info });
      emit m
        (Stmt.Connect { loc = name ^ "." ^ w ^ ".addr"; expr = Expr.u_lit ~width:(Ty.width addr_ty) 0; info });
      emit m
        (Stmt.Connect { loc = name ^ "." ^ w ^ ".data"; expr = Expr.u_lit ~width:(Ty.width data_ty) 0; info }))
    writers;
  { h_m = m; h_mem = mem }

let mem_port_sig (h : mem_handle) port field =
  let full = h.h_mem.Stmt.mem_name ^ "." ^ port ^ "." ^ field in
  match Hashtbl.find_opt h.h_m.env full with
  | Some ty -> { expr = Expr.Ref full; ty }
  | None -> error "memory %s has no port %s" h.h_mem.Stmt.mem_name port

let mem_read (h : mem_handle) port addr =
  connect h.h_m (mem_port_sig h port "addr") addr;
  mem_port_sig h port "data"

let mem_write ?mask_en (h : mem_handle) port ~addr ~data =
  connect h.h_m (mem_port_sig h port "addr") addr;
  connect h.h_m (mem_port_sig h port "data") data;
  let en = match mask_en with Some e -> e | None -> true_ in
  connect h.h_m (mem_port_sig h port "en") en

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)
(* ------------------------------------------------------------------ *)

let instance ?loc (m : m) inst_name module_name port_name =
  let child =
    match
      List.find_opt
        (fun md -> String.equal md.Circuit.module_name module_name)
        m.parent.cb_modules
    with
    | Some c -> c
    | None -> error "instance of undefined module %s (define children first)" module_name
  in
  (match List.assoc_opt inst_name m.instances with
  | Some existing when String.equal existing module_name -> ()
  | Some existing ->
      error "instance %s already bound to module %s" inst_name existing
  | None ->
      declare m inst_name (Ty.UInt 0);
      m.instances <- (inst_name, module_name) :: m.instances;
      emit m (Stmt.Inst { name = inst_name; module_name; info = info_of loc });
      List.iter
        (fun p ->
          Hashtbl.replace m.env (inst_name ^ "." ^ p.Circuit.port_name) p.Circuit.port_ty)
        child.Circuit.ports;
      (* implicit clock/reset wiring *)
      emit m (Stmt.Connect { loc = inst_name ^ ".clock"; expr = Expr.Ref "clock"; info = info_of loc });
      emit m (Stmt.Connect { loc = inst_name ^ ".reset"; expr = Expr.Ref "reset"; info = info_of loc }));
  let full = inst_name ^ "." ^ port_name in
  match Hashtbl.find_opt m.env full with
  | Some ty -> { expr = Expr.Ref full; ty }
  | None -> error "module %s has no port %s" module_name port_name

(* ------------------------------------------------------------------ *)
(* Raw statements                                                      *)
(* ------------------------------------------------------------------ *)

let cover ?loc (m : m) name pred =
  emit m (Stmt.Cover { name; pred = pred.expr; info = info_of loc })

let cover_values ?loc (m : m) name signal =
  emit m
    (Stmt.CoverValues { name; signal = signal.expr; en = Expr.true_; info = info_of loc })

let stop ?loc (m : m) name cond exit_code =
  emit m (Stmt.Stop { name; cond = cond.expr; exit_code; info = info_of loc })

let printf_ ?loc (m : m) cond message args =
  emit m
    (Stmt.Print
       { cond = cond.expr; message; args = List.map (fun s -> s.expr) args; info = info_of loc })
