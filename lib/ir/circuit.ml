(** Modules and circuits. *)

type direction = Input | Output

type port = { port_name : string; dir : direction; port_ty : Ty.t; port_info : Info.t }

type modul = {
  module_name : string;
  ports : port list;
  body : Stmt.t list;
}

type t = {
  circuit_name : string;  (** the main (top) module's name *)
  modules : modul list;
  annotations : Annotation.t list;
}

exception Elaboration_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Elaboration_error s)) fmt

let find_module c name =
  match List.find_opt (fun m -> String.equal m.module_name name) c.modules with
  | Some m -> m
  | None -> error "no module named %s in circuit %s" name c.circuit_name

let main c = find_module c c.circuit_name

let map_main c f =
  {
    c with
    modules =
      List.map
        (fun m -> if String.equal m.module_name c.circuit_name then f m else m)
        c.modules;
  }

(** Environment mapping every referenceable name of a module to its type.
    Includes ports, nodes, wires, registers, memory ports and, for
    instances, the child's ports as [inst.port]. [resolve_inst] supplies
    the child module for [Inst] statements (pass [None] when the circuit is
    already flat). *)
let build_env ?(resolve_inst : (string -> modul) option) (m : modul) :
    (string, Ty.t) Hashtbl.t =
  let env = Hashtbl.create 64 in
  let add name ty =
    if Hashtbl.mem env name then error "duplicate name %s in module %s" name m.module_name;
    Hashtbl.replace env name ty
  in
  List.iter (fun p -> add p.port_name p.port_ty) m.ports;
  let lookup_later = ref [] in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Wire { name; ty; _ } | Stmt.Reg { name; ty; _ } -> add name ty
      | Stmt.Node { name; _ } -> lookup_later := (name, s) :: !lookup_later
      | Stmt.Mem { mem; _ } ->
          let addr_ty = Ty.UInt (Ty.clog2 mem.Stmt.mem_depth) in
          List.iter
            (fun { Stmt.rp_name } ->
              add (mem.Stmt.mem_name ^ "." ^ rp_name ^ ".addr") addr_ty;
              add (mem.Stmt.mem_name ^ "." ^ rp_name ^ ".data") mem.Stmt.mem_data)
            mem.Stmt.mem_readers;
          List.iter
            (fun { Stmt.wp_name } ->
              add (mem.Stmt.mem_name ^ "." ^ wp_name ^ ".addr") addr_ty;
              add (mem.Stmt.mem_name ^ "." ^ wp_name ^ ".data") mem.Stmt.mem_data;
              add (mem.Stmt.mem_name ^ "." ^ wp_name ^ ".en") (Ty.UInt 1))
            mem.Stmt.mem_writers
      | Stmt.Inst { name; module_name; _ } -> (
          match resolve_inst with
          | None -> error "instance %s of %s in a flat-only context" name module_name
          | Some resolve ->
              let child = resolve module_name in
              List.iter (fun p -> add (name ^ "." ^ p.port_name) p.port_ty) child.ports)
      | Stmt.Connect _ | Stmt.When _ | Stmt.Cover _ | Stmt.CoverValues _
      | Stmt.Stop _ | Stmt.Print _ -> ())
    m.body;
  (* Nodes typed in a second phase, in order, so they may reference anything
     declared anywhere plus earlier nodes. *)
  let lookup n =
    match Hashtbl.find_opt env n with
    | Some t -> t
    | None -> error "unresolved reference %s in module %s" n m.module_name
  in
  List.iter
    (fun (name, s) ->
      match s with
      | Stmt.Node { expr; _ } -> add name (Expr.type_of lookup expr)
      | _ -> assert false)
    (List.rev !lookup_later);
  env

(** Type lookup function over a module environment. *)
let lookup_of env name =
  match Hashtbl.find_opt env name with
  | Some t -> t
  | None -> error "unresolved reference %s" name

(** All cover statement names in a module, in declaration order. *)
let covers_of (m : modul) =
  let out = ref [] in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Cover { name; _ } -> out := name :: !out
      | _ -> ())
    m.body;
  List.rev !out
