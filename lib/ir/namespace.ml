(** Fresh-name generation that never collides with existing module names.
    Mirrors firrtl's Namespace utility. *)

type t = { taken : (string, unit) Hashtbl.t; counters : (string, int) Hashtbl.t }

let create () = { taken = Hashtbl.create 64; counters = Hashtbl.create 16 }

let of_module (m : Circuit.modul) =
  let ns = create () in
  List.iter (fun p -> Hashtbl.replace ns.taken p.Circuit.port_name ()) m.Circuit.ports;
  List.iter (fun n -> Hashtbl.replace ns.taken n ()) (Stmt.declared_names m.Circuit.body);
  (* cover names share the namespace so instrumentation passes can't collide *)
  List.iter (fun n -> Hashtbl.replace ns.taken n ()) (Circuit.covers_of m);
  ns

let reserve t name = Hashtbl.replace t.taken name ()

let mem t name = Hashtbl.mem t.taken name

(** [fresh t base] returns [base] if free, otherwise [base_0], [base_1], …
    The returned name is reserved. *)
let fresh t base =
  if not (Hashtbl.mem t.taken base) then begin
    Hashtbl.replace t.taken base ();
    base
  end
  else begin
    let i = Option.value ~default:0 (Hashtbl.find_opt t.counters base) in
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem t.taken cand then go (i + 1)
      else begin
        Hashtbl.replace t.counters base (i + 1);
        Hashtbl.replace t.taken cand ();
        cand
      end
    in
    go i
  end
