(** Ground types of the IR (aggregates are already lowered, as after
    FIRRTL's LowerTypes). *)

type t =
  | UInt of int  (** unsigned, [width >= 0] *)
  | SInt of int  (** two's-complement signed *)
  | Clock

val width : t -> int
val is_signed : t -> bool
val same_kind : t -> t -> bool
val with_width : t -> int -> t
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val clog2 : int -> int
(** Bits needed to address [0 .. n-1]; at least 1. *)
