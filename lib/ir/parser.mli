(** Recursive-descent, indentation-sensitive parser for the FIRRTL-style
    concrete syntax emitted by {!Printer}. [;] starts a line comment;
    [@[file line:col]] suffixes become {!Info.t} locators. *)

exception Parse_error of { line : int; message : string }

val parse_circuit : string -> Circuit.t
(** Annotations are not part of the text format; the result carries
    none. *)
