(** Annotations attach frontend knowledge to circuit elements, mirroring
    FIRRTL's annotation system: enum definitions and enum-typed registers
    (consumed by FSM coverage, §4.3), decoupled bundles (ready/valid
    coverage, §4.4), and DCE protection. *)

type enum_def = {
  enum_name : string;
  variants : (string * int) list;  (** variant name, encoding *)
}

type t =
  | Enum_def of enum_def
  | Enum_reg of { module_name : string; reg : string; enum : string }
  | Decoupled of { module_name : string; prefix : string; sink : bool }
  | Dont_touch of { module_name : string; name : string }

val enum_defs : t list -> enum_def list
val enum_regs_of : module_name:string -> t list -> (string * string) list
val decoupled_of : module_name:string -> t list -> (string * bool) list
val dont_touch_of : module_name:string -> t list -> string list
val find_enum : t list -> string -> enum_def option

val rename : module_name:string -> f:(string -> string) -> t -> t
(** Rename an annotation's local target (used by the inliner). *)

val retarget : from_module:string -> to_module:string -> t -> t
(** Move an annotation between modules (inlining child into parent). *)
