(** Modules and circuits. *)

type direction = Input | Output

type port = { port_name : string; dir : direction; port_ty : Ty.t; port_info : Info.t }

type modul = {
  module_name : string;
  ports : port list;
  body : Stmt.t list;
}

type t = {
  circuit_name : string;  (** the main (top) module's name *)
  modules : modul list;
  annotations : Annotation.t list;
}

exception Elaboration_error of string

val error : ('a, unit, string, 'b) format4 -> 'a
val find_module : t -> string -> modul
val main : t -> modul
val map_main : t -> (modul -> modul) -> t

val build_env : ?resolve_inst:(string -> modul) -> modul -> (string, Ty.t) Hashtbl.t
(** Types of every referenceable name: ports, nodes, wires, registers,
    memory port fields and (given [resolve_inst]) instance ports. *)

val lookup_of : (string, Ty.t) Hashtbl.t -> string -> Ty.t
(** Raises {!Elaboration_error} on unknown names. *)

val covers_of : modul -> string list
(** Cover statement names, in declaration order. *)
