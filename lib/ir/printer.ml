(** Emit circuits in a FIRRTL-style concrete syntax. {!Parser} reads the
    same syntax back; [parse ∘ print] is the identity on well-formed
    circuits (round-trip property tested in the suite). *)

open Format

let rec pp_expr fmt (e : Expr.t) =
  match e with
  | Expr.Ref n -> pp_print_string fmt n
  | Expr.UIntLit v ->
      fprintf fmt "UInt<%d>(\"h%s\")" (Sic_bv.Bv.width v) (Sic_bv.Bv.to_hex_string v)
  | Expr.SIntLit v ->
      fprintf fmt "SInt<%d>(\"h%s\")" (Sic_bv.Bv.width v) (Sic_bv.Bv.to_hex_string v)
  | Expr.Mux (s, a, b) -> fprintf fmt "mux(%a, %a, %a)" pp_expr s pp_expr a pp_expr b
  | Expr.Unop (op, a) -> fprintf fmt "%s(%a)" (Expr.unop_name op) pp_expr a
  | Expr.Binop (op, a, b) ->
      fprintf fmt "%s(%a, %a)" (Expr.binop_name op) pp_expr a pp_expr b
  | Expr.Intop (op, n, a) -> fprintf fmt "%s(%a, %d)" (Expr.intop_name op) pp_expr a n
  | Expr.Bits (a, hi, lo) -> fprintf fmt "bits(%a, %d, %d)" pp_expr a hi lo

let expr_to_string e = Format.asprintf "%a" pp_expr e

let pp_info fmt (i : Info.t) =
  match i with Info.Unknown -> () | _ -> fprintf fmt " %s" (Info.to_string i)

let rec pp_stmt indent fmt (s : Stmt.t) =
  let pad = String.make indent ' ' in
  match s with
  | Stmt.Node { name; expr; info } ->
      fprintf fmt "%snode %s = %a%a@," pad name pp_expr expr pp_info info
  | Stmt.Wire { name; ty; info } ->
      fprintf fmt "%swire %s : %s%a@," pad name (Ty.to_string ty) pp_info info
  | Stmt.Reg { name; ty; reset = None; info } ->
      fprintf fmt "%sreg %s : %s%a@," pad name (Ty.to_string ty) pp_info info
  | Stmt.Reg { name; ty; reset = Some (rst, init); info } ->
      fprintf fmt "%sreg %s : %s, reset => (%a, %a)%a@," pad name (Ty.to_string ty)
        pp_expr rst pp_expr init pp_info info
  | Stmt.Mem { mem; info } ->
      fprintf fmt "%smem %s :%a@," pad mem.Stmt.mem_name pp_info info;
      let p2 = pad ^ "  " in
      fprintf fmt "%sdata-type => %s@," p2 (Ty.to_string mem.Stmt.mem_data);
      fprintf fmt "%sdepth => %d@," p2 mem.Stmt.mem_depth;
      fprintf fmt "%sread-latency => %d@," p2 mem.Stmt.mem_read_latency;
      List.iter (fun { Stmt.rp_name } -> fprintf fmt "%sreader => %s@," p2 rp_name) mem.Stmt.mem_readers;
      List.iter (fun { Stmt.wp_name } -> fprintf fmt "%swriter => %s@," p2 wp_name) mem.Stmt.mem_writers;
      (match mem.Stmt.mem_init with
      | None -> ()
      | Some init ->
          (* sparse canonical form: only non-zero words, in index order *)
          Array.iteri
            (fun i v ->
              if not (Sic_bv.Bv.is_zero v) then
                fprintf fmt "%sinit => %d h%s@," p2 i (Sic_bv.Bv.to_hex_string v))
            init)
  | Stmt.Inst { name; module_name; info } ->
      fprintf fmt "%sinst %s of %s%a@," pad name module_name pp_info info
  | Stmt.Connect { loc; expr; info } ->
      fprintf fmt "%sconnect %s, %a%a@," pad loc pp_expr expr pp_info info
  | Stmt.When { cond; then_; else_; info } ->
      fprintf fmt "%swhen %a :%a@," pad pp_expr cond pp_info info;
      List.iter (pp_stmt (indent + 2) fmt) then_;
      if then_ = [] then fprintf fmt "%s  skip@," pad;
      if else_ <> [] then begin
        fprintf fmt "%selse :@," pad;
        List.iter (pp_stmt (indent + 2) fmt) else_
      end
  | Stmt.Cover { name; pred; info } ->
      fprintf fmt "%scover %s, %a%a@," pad name pp_expr pred pp_info info
  | Stmt.CoverValues { name; signal; en; info } ->
      fprintf fmt "%scover-values %s, %a, %a%a@," pad name pp_expr signal pp_expr en
        pp_info info
  | Stmt.Stop { name; cond; exit_code; info } ->
      fprintf fmt "%sstop %s, %a, %d%a@," pad name pp_expr cond exit_code pp_info info
  | Stmt.Print { cond; message; args; info } ->
      fprintf fmt "%sprintf %a, \"%s\"%s%a@," pad pp_expr cond (String.escaped message)
        (String.concat "" (List.map (fun a -> ", " ^ expr_to_string a) args))
        pp_info info

let pp_port fmt (p : Circuit.port) =
  let dir = match p.Circuit.dir with Circuit.Input -> "input" | Circuit.Output -> "output" in
  fprintf fmt "    %s %s : %s%a@," dir p.Circuit.port_name (Ty.to_string p.Circuit.port_ty)
    pp_info p.Circuit.port_info

let pp_module fmt (m : Circuit.modul) =
  fprintf fmt "  module %s :@," m.Circuit.module_name;
  List.iter (pp_port fmt) m.Circuit.ports;
  fprintf fmt "@,";
  List.iter (pp_stmt 4 fmt) m.Circuit.body

let pp_circuit fmt (c : Circuit.t) =
  fprintf fmt "@[<v>circuit %s :@," c.Circuit.circuit_name;
  List.iter (fun m -> pp_module fmt m; fprintf fmt "@,") c.Circuit.modules;
  fprintf fmt "@]"

let circuit_to_string c = Format.asprintf "%a" pp_circuit c
