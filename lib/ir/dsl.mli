(** A Chisel-like hardware construction DSL embedded in OCaml.

    Circuits are built imperatively: [module_] opens a module, declaration
    functions add ports and statements, and combinational operators build
    typed expressions. Every module implicitly receives [clock] and [reset]
    ports (like Chisel). Branches ([when_]/[switch]) use a block stack, so
    connects performed inside the callback land in the branch — exactly the
    pattern the line-coverage pass instruments.

    Pass [~loc:__POS__] to declaration and branch functions to give
    statements source locators; the line-coverage report resolves them back
    to the OCaml design sources. *)

type circuit_builder
type m
(** A module under construction. *)

type signal = { expr : Expr.t; ty : Ty.t }

type enum
(** A ChiselEnum-style enumeration (registered as an annotation). *)

type decoupled = { ready : signal; valid : signal; bits : signal }
(** A DecoupledIO-style ready/valid bundle. *)

type mem_handle

type loc = string * int * int * int
(** The type of [__POS__]. *)

exception Dsl_error of string
(** Raised on construction mistakes: duplicate names, connecting a
    non-reference, instantiating an undefined module, … *)

(** {1 Circuits and modules} *)

val create_circuit : string -> circuit_builder
(** [create_circuit main] starts a circuit whose top module is [main]. *)

val module_ : circuit_builder -> string -> (m -> unit) -> unit
(** Define a module by running the body callback. Submodules must be
    defined before any module that instantiates them. *)

val finalize : circuit_builder -> Circuit.t
(** Close the builder and return the immutable circuit. Raises
    [Circuit.Elaboration_error] if the top module was never defined. *)

val clock : m -> signal
val reset : m -> signal

(** {1 Ports, wires, registers, nodes} *)

val input : ?loc:loc -> m -> string -> Ty.t -> signal
val output : ?loc:loc -> m -> string -> Ty.t -> signal
val wire : ?loc:loc -> m -> string -> Ty.t -> signal
val reg_ : ?loc:loc -> m -> string -> Ty.t -> signal
(** Register without reset. *)

val reg_init : ?loc:loc -> m -> string -> signal -> signal
(** [reg_init m name init] — register reset (synchronously, by the module's
    implicit [reset]) to [init]; its type is [init]'s type. *)

val node : ?loc:loc -> m -> string -> signal -> signal
(** Name an intermediate expression ([node n = e]). *)

val connect : ?loc:loc -> m -> signal -> signal -> unit
(** [connect m dst src]. [dst] must be a connectable reference (port, wire,
    register, memory port field). The source is automatically padded or
    truncated to the destination width, like Chisel's [:=]. *)

(** {1 Literals} *)

val lit : int -> int -> signal
(** [lit width value] — an unsigned literal. *)

val slit : int -> int -> signal
(** Signed literal. *)

val of_bv : Sic_bv.Bv.t -> signal
val true_ : signal
val false_ : signal

(** {1 Combinational operators} *)

val ( +: ) : signal -> signal -> signal
val ( -: ) : signal -> signal -> signal
val ( *: ) : signal -> signal -> signal
val ( /: ) : signal -> signal -> signal
val ( %: ) : signal -> signal -> signal
val ( ==: ) : signal -> signal -> signal
val ( <>: ) : signal -> signal -> signal
val ( <: ) : signal -> signal -> signal
val ( <=: ) : signal -> signal -> signal
val ( >: ) : signal -> signal -> signal
val ( >=: ) : signal -> signal -> signal
val ( &: ) : signal -> signal -> signal
val ( |: ) : signal -> signal -> signal
val ( ^: ) : signal -> signal -> signal
val not_s : signal -> signal
(** Bitwise complement. *)

val andr_s : signal -> signal
val orr_s : signal -> signal
val xorr_s : signal -> signal
val cat_s : signal -> signal -> signal
val bits_s : signal -> hi:int -> lo:int -> signal
val bit_s : signal -> int -> signal
val pad_s : signal -> int -> signal
val shl_s : signal -> int -> signal
val shr_s : signal -> int -> signal
val dshl_s : signal -> signal -> signal
val dshr_s : signal -> signal -> signal
val mux_s : signal -> signal -> signal -> signal
(** [mux_s sel tru fls]; arms are padded to a common width. *)

val as_uint : signal -> signal
val as_sint : signal -> signal
val resize : signal -> int -> signal
(** Pad or truncate to an exact width, keeping the signedness. *)

(** {1 Control flow} *)

val when_ : ?loc:loc -> m -> signal -> (unit -> unit) -> unit
val when_else : ?loc:loc -> m -> signal -> (unit -> unit) -> (unit -> unit) -> unit
(** [when_else m cond then_ else_]. *)

val switch :
  ?loc:loc -> ?default:(unit -> unit) -> m -> signal -> (signal * (unit -> unit)) list -> unit
(** [switch m scrutinee cases] — nested [when eq(scrutinee, v)] branches,
    mirroring Chisel's [switch]/[is]. *)

(** {1 Enums (ChiselEnum)} *)

val enum : circuit_builder -> string -> string list -> enum
(** [enum cb "S" ["A"; "B"; "C"]] defines an enum type and registers an
    [Enum_def] annotation. Encodings are 0, 1, 2, … *)

val enum_value : enum -> string -> signal
val enum_ty : enum -> Ty.t
val reg_enum : ?loc:loc -> m -> string -> enum -> string -> signal
(** [reg_enum m name e init_variant] — a state register carrying values of
    [e], reset to [init_variant]; registers an [Enum_reg] annotation (the
    hook the FSM-coverage pass keys on). *)

val is : enum -> string -> signal -> signal
(** [is e "A" state] is [state ==: enum_value e "A"]. *)

(** {1 Decoupled (ready/valid) bundles} *)

val decoupled_input : ?loc:loc -> m -> string -> Ty.t -> decoupled
(** Consumer side: [valid]/[bits] are input ports, [ready] is an output. *)

val decoupled_output : ?loc:loc -> m -> string -> Ty.t -> decoupled
(** Producer side: [valid]/[bits] are outputs, [ready] an input. *)

val fire : decoupled -> signal
(** [ready &&& valid]. *)

(** {1 Memories} *)

val mem :
  ?loc:loc ->
  ?sync_read:bool ->
  m ->
  string ->
  Ty.t ->
  depth:int ->
  readers:string list ->
  writers:string list ->
  mem_handle
(** Declare a memory; write-port enables default to 0. *)

val mem_read : mem_handle -> string -> signal -> signal
(** [mem_read h "r0" addr] drives the read address (in the current block)
    and returns the read data. *)

val mem_write : ?mask_en:signal -> mem_handle -> string -> addr:signal -> data:signal -> unit
(** Drive a write port in the current block; the enable is asserted here
    and conjoined with enclosing [when] predicates by lowering. *)

(** {1 Instances} *)

val instance : ?loc:loc -> m -> string -> string -> string -> signal
(** [instance m inst_name module_name port] returns the signal for
    [inst_name.port]. The first call for a given instance declares it and
    wires its implicit clock/reset. The child module must already be
    defined in the same builder. *)

(** {1 Raw statement escape hatches (used by tests)} *)

val cover : ?loc:loc -> m -> string -> signal -> unit
val cover_values : ?loc:loc -> m -> string -> signal -> unit

(** [printf_ m cond "pc=%x cnt=%d" [pc; cnt]] — printed at clock edges
    where [cond] (conjoined with the enclosing when-path) holds.
    Placeholders: [%d] decimal, [%x] hex, [%b] binary, [%%]. *)
val printf_ : ?loc:loc -> m -> signal -> string -> signal list -> unit
val stop : ?loc:loc -> m -> string -> signal -> int -> unit
