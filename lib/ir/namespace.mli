(** Fresh-name generation that never collides with a module's existing
    names (ports, declarations, cover names) — firrtl's Namespace. *)

type t

val create : unit -> t
val of_module : Circuit.modul -> t
val reserve : t -> string -> unit
val mem : t -> string -> bool

val fresh : t -> string -> string
(** [fresh t base] is [base] if free, else [base_0], [base_1], …; the
    result is reserved. *)
