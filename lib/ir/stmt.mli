(** Statements. The IR keeps FIRRTL's high-level [when] blocks (the
    line-coverage pass instruments them) until
    {!Sic_passes.Lower_whens} removes them. Memory and instance ports use
    dotted names ([mem.r0.addr], [inst.io_out]). *)

type mem_read_port = { rp_name : string }
type mem_write_port = { wp_name : string }

type mem = {
  mem_name : string;
  mem_data : Ty.t;
  mem_depth : int;
  mem_readers : mem_read_port list;
  mem_writers : mem_write_port list;
  mem_read_latency : int;  (** 0 = combinational, 1 = synchronous *)
  mem_init : Sic_bv.Bv.t array option;
      (** power-on contents ([$readmemh]); [None] means all zero *)
}

type t =
  | Node of { name : string; expr : Expr.t; info : Info.t }
  | Wire of { name : string; ty : Ty.t; info : Info.t }
  | Reg of {
      name : string;
      ty : Ty.t;
      reset : (Expr.t * Expr.t) option;  (** (reset signal, init value) *)
      info : Info.t;
    }
  | Mem of { mem : mem; info : Info.t }
  | Inst of { name : string; module_name : string; info : Info.t }
  | Connect of { loc : string; expr : Expr.t; info : Info.t }
  | When of { cond : Expr.t; then_ : t list; else_ : t list; info : Info.t }
  | Cover of { name : string; pred : Expr.t; info : Info.t }
      (** The paper's one new primitive (§3). *)
  | CoverValues of { name : string; signal : Expr.t; en : Expr.t; info : Info.t }
      (** The §6 extension: one counter per value of [signal]. *)
  | Stop of { name : string; cond : Expr.t; exit_code : int; info : Info.t }
  | Print of { cond : Expr.t; message : string; args : Expr.t list; info : Info.t }

val info : t -> Info.t

val def_name : t -> string option
(** The name a statement defines or drives ([Connect]'s target, a
    [Node]/[Reg]/[Cover]/... name) — unique in the flat low form, so it
    serves as the stable statement id for tape↔statement provenance.
    [None] for [Mem]/[When]/[Print]. *)

val iter : (t -> unit) -> t list -> unit
(** Descends into [when] blocks. *)

val map_concat : (t -> t list) -> t list -> t list
(** Bottom-up rebuild: [f] sees each statement with already-transformed
    children and returns its replacement list. *)

val declared_names : t list -> string list
(** All declared names, including memory port fields and instance
    names. *)
