(** Reference evaluation semantics for expressions: FIRRTL primop
    semantics on {!Sic_bv.Bv} values. Every backend (interpreter, compiled
    simulators, constant folder, FSM analysis, formal bit-blaster) is
    defined by or tested against these functions. Each result's width
    equals the width {!Expr.type_of} assigns. *)

module Bv = Sic_bv.Bv

val extend : Ty.t -> Bv.t -> int -> Bv.t
(** Zero- or sign-extend according to the type's signedness. *)

val unop : Expr.unop -> ta:Ty.t -> Bv.t -> Bv.t
val binop : Expr.binop -> ta:Ty.t -> tb:Ty.t -> Bv.t -> Bv.t -> Bv.t
val intop : Expr.intop -> int -> ta:Ty.t -> Bv.t -> Bv.t
val bits : hi:int -> lo:int -> Bv.t -> Bv.t

val eval : ty_of:(string -> Ty.t) -> value_of:(string -> Bv.t) -> Expr.t -> Bv.t
(** Full evaluation; [ty_of] resolves reference types (for signedness),
    [value_of] resolves reference values. *)
