(** Reference evaluation semantics for expressions: FIRRTL primop
    semantics on {!Sic_bv.Bv} values. Every backend (interpreter, compiled
    simulators, constant folder, FSM analysis, formal bit-blaster) is
    defined by or tested against these functions. Each result's width
    equals the width {!Expr.type_of} assigns. *)

module Bv = Sic_bv.Bv

val extend : Ty.t -> Bv.t -> int -> Bv.t
(** Zero- or sign-extend according to the type's signedness. *)

val unop : Expr.unop -> ta:Ty.t -> Bv.t -> Bv.t
val binop : Expr.binop -> ta:Ty.t -> tb:Ty.t -> Bv.t -> Bv.t -> Bv.t
val intop : Expr.intop -> int -> ta:Ty.t -> Bv.t -> Bv.t
val bits : hi:int -> lo:int -> Bv.t -> Bv.t

(** Word-level (native-int) primop semantics mirroring the functions above
    for narrow signals. A value is the signal's bit pattern masked to its
    type's width, stored in a non-negative OCaml int; signed operands are
    re-read by sign extension. Applicable when every operand width and the
    result width are at most {!Int.max_width} (62) — the word-level
    simulation engine's allocation-free fast path. Each function agrees
    with its [Bv] counterpart under [Bv.to_int_trunc] / {!Bv.of_int62}
    (pinned by the qcheck suite). *)
module Int : sig
  val max_width : int
  (** 62 — the widest pattern that round-trips through [to_int_trunc]. *)

  val fits : int -> bool
  (** [fits w] is [w <= max_width]. *)

  val mask : int -> int
  (** All-ones pattern of the given width ([max_int] at width 62). *)

  val sext : int -> int -> int
  (** [sext w v] reinterprets the masked [w]-bit pattern [v] as a signed
      OCaml int ([w <= 62]). *)

  val read : Ty.t -> int -> int
  (** Read a pattern at its type's signedness. *)

  val of_bool : bool -> int

  val unop : Expr.unop -> ta:Ty.t -> int -> int
  val binop : Expr.binop -> ta:Ty.t -> tb:Ty.t -> int -> int -> int
  val intop : Expr.intop -> int -> ta:Ty.t -> int -> int
  val bits : hi:int -> lo:int -> int -> int
end

val eval : ty_of:(string -> Ty.t) -> value_of:(string -> Bv.t) -> Expr.t -> Bv.t
(** Full evaluation; [ty_of] resolves reference types (for signedness),
    [value_of] resolves reference values. *)
