(** The coverage service: a dependency-free HTTP/1.1 server over a
    {!Sic_db.Db} database, plus the matching client.

    The paper's common counts format makes coverage mergeable across any
    set of producers (§5.3); this server closes the distribution gap.
    Remote producers [POST /runs] their counts files (the v1 interchange
    text — the wire format {e is} the on-disk format) and everyone reads
    one merged [GET /report]. Hand-rolled over [Unix] sockets in the
    repo's no-dependency style: bounded accept queue, fixed worker-thread
    pool, keep-alive with explicit [Content-Length] (never chunked), hard
    parser limits, ETag/[If-None-Match] caching keyed on the database's
    {!Sic_db.Db.manifest_stamp}, and graceful drain on SIGINT/SIGTERM.

    Endpoints: [POST /runs], [POST /heartbeat], [GET /report],
    [GET /report.html], [GET /runs], [GET /rank], [GET /timelines],
    [GET /diff?a=&b=], [GET /watch] (server-sent events),
    [GET /dashboard], [GET /metrics] (JSON, or Prometheus text
    exposition under [Accept: text/plain]), [GET /metrics.prom],
    [GET /healthz], [GET /]. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide, turning writes to a vanished peer into
    [Unix_error (EPIPE, _, _)] — a per-connection (or, in the fleet, a
    per-worker) error instead of process death. {!start} calls this;
    [sic] also calls it once at startup. *)

(** The HTTP/1.1 subset we speak, exposed for the parser unit tests. *)
module Http : sig
  exception Bad_request of string  (** maps to [400] *)

  exception Too_large of string
  (** Request line or headers over the limits; maps to [431]. *)

  exception Payload_too_large of string
  (** Body over {!max_body}; maps to [413]. *)

  val max_request_line : int
  val max_header_line : int
  val max_headers : int
  val max_body : int

  type request = {
    meth : string;
    target : string;  (** raw request target, e.g. ["/diff?a=r0001&b=r0002"] *)
    path : string;  (** decoded path component *)
    query : (string * string) list;  (** decoded query parameters *)
    version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
    headers : (string * string) list;  (** names lowercased *)
    body : string;
  }

  (** A buffered reader over any [read]-like source, so the parser runs
      identically over a socket and over a string in tests. *)
  module Reader : sig
    type t

    val of_fd : Unix.file_descr -> t
    val of_string : string -> t
  end

  val parse_request : Reader.t -> request option
  (** One request off the reader. [None] on clean EOF before the first
      byte (a peer closing an idle keep-alive connection); raises
      {!Bad_request} / {!Too_large} / {!Payload_too_large} otherwise. *)

  val header : request -> string -> string option
  (** Case-insensitive header lookup. *)

  val response :
    status:int ->
    ?content_type:string ->
    ?extra:(string * string) list ->
    ?keep_alive:bool ->
    string ->
    string
  (** Serialize one response with explicit [Content-Length] ([304]: no
      body, no length, per RFC 9110). *)

  val percent_decode : string -> string
  val percent_encode : string -> string
end

(** The SSE wire subset [GET /watch] speaks: [event:]/[data:] frames
    terminated by a blank line, [:] comment lines as keep-alive
    heartbeats. Exposed for the client, [sic watch] and the tests. *)
module Sse : sig
  val frame : ?event:string -> string -> string
  (** [frame ?event data] is one complete SSE frame. Newlines in the
      event name are flattened to spaces; each line of [data] becomes
      its own [data:] line (CRs are dropped), and the frame ends with
      the blank separator line. *)

  val comment : string -> string
  (** A [:]-prefixed comment frame (flattened to one line) — invisible
      to [EventSource] consumers, keeps the connection alive. *)

  val heartbeat : int -> string
  (** [heartbeat n] is [comment ("hb " ^ n)]. *)

  (** Reassemble events from a line-split SSE stream (line terminators
      already stripped). *)
  module Decoder : sig
    type t

    val create : unit -> t

    val line : t -> string -> (string * string) option
    (** Feed one line. [Some (event, data)] when the line completes an
        event (the event name defaults to ["message"]); [None] while
        accumulating, on comments, and on fields we don't speak. Events
        without any [data:] line are dropped, per the SSE spec. *)
  end
end

type t
(** A running server: listening socket, acceptor thread, worker pool. *)

val start :
  ?host:string ->
  ?port:int ->
  ?threads:int ->
  ?queue_limit:int ->
  ?sse_heartbeat_s:float ->
  db_dir:string ->
  unit ->
  t
(** Bind, listen and spin up the pool; returns once the server is
    accepting. Defaults: host ["127.0.0.1"], port [0] (ephemeral — read
    it back with {!port}), [4] worker threads, accept-queue limit [64]
    (beyond it new connections are answered [503] and closed),
    [sse_heartbeat_s] [15.] (idle gap before a [/watch] subscriber gets
    a keep-alive comment; clamped to at least [0.5]). Validates [db_dir]
    up front (raises {!Sic_db.Db.Db_error} if it is not a database).
    Writes to the database go through {!Sic_db.Db.Lock}, so the server
    coexists with concurrent [sic db add] / campaigns on the same
    directory. [/watch] subscribers are served by dedicated streaming
    threads, so they never occupy the request worker pool. *)

val port : t -> int
(** The actually-bound port (useful with [?port:0]). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, drain queued connections, join
    every worker, close the hub so every [/watch] subscriber is sent a
    goodbye and hung up, close the sockets. Idempotent-ish: safe to
    call once per {!start}. *)

val flush_cache : t -> unit
(** Drop the rendered-response cache (bench harness: measures the
    uncached path without restarting the server). *)

val run :
  ?host:string ->
  ?port:int ->
  ?threads:int ->
  ?queue_limit:int ->
  db_dir:string ->
  unit ->
  unit
(** The [sic serve] entry point: {!start}, print the listening banner,
    install SIGINT/SIGTERM handlers that trigger a graceful drain, and
    block until shutdown completes. *)

(** The matching HTTP client (same parser), used by
    [sic campaign --push URL], the end-to-end tests and the serve
    benchmark. *)
module Client : sig
  exception Error of string
  (** Malformed URL, unresolvable host, or a protocol violation by the
      server. Connection-level failures surface as [Unix.Unix_error]. *)

  type response = {
    status : int;
    reason : string;
    headers : (string * string) list;  (** names lowercased *)
    body : string;
  }

  val header : response -> string -> string option

  val parse_url : string -> string * int * string
  (** [parse_url "http://host:port/path?q"] is [(host, port, target)];
      port defaults to 80, target to ["/"]. Only [http://]. *)

  (** {2 Keep-alive connections} *)

  type conn

  val connect : host:string -> port:int -> conn
  val close : conn -> unit

  val request :
    conn ->
    ?headers:(string * string) list ->
    ?body:string ->
    meth:string ->
    target:string ->
    unit ->
    response
  (** One request/response round trip on the open connection. *)

  (** {2 One-shot helpers (connection per call)} *)

  val call :
    ?headers:(string * string) list -> ?body:string -> meth:string -> string -> response

  val get : ?headers:(string * string) list -> string -> response
  val post : ?headers:(string * string) list -> body:string -> string -> response

  val push_run :
    ?worker:string ->
    url:string ->
    design:string ->
    backend:string ->
    workload:string ->
    seed:int ->
    cycles:int ->
    Sic_coverage.Counts.t ->
    response
  (** POST one run's counts to [url ^ "/runs"] with the metadata as query
      parameters — what [sic campaign --push URL] does for each run the
      campaign records. A [201] response carries the server-assigned run
      record as JSON. [worker] tags the run with a producer id so the
      live dashboard can attribute it. *)

  val watch : on_event:(event:string -> data:string -> bool) -> string -> unit
  (** Subscribe to the server root's [GET /watch] SSE stream and feed
      each decoded event to [on_event] until it returns [false] or the
      server closes the stream (its graceful drain). Keep-alive comments
      are consumed silently. Blocks the calling thread. *)
end
