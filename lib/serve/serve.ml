(** The coverage service: a dependency-free HTTP/1.1 server over a
    {!Sic_db.Db} database directory, plus the matching in-process client.

    The paper's common counts format means every producer — any simulator,
    the fuzzer, the BMC engine, an FPGA host, on any machine — reports the
    same [cover point -> count] map, and merging is trivial (§5.3). This
    module closes the distribution gap: remote producers [POST /runs]
    their counts files to one server, and everyone reads one merged
    [GET /report]. The wire format {e is} the on-disk format (the counts
    v1 interchange text), so a push is literally an upload of the file a
    local run would have written.

    Design constraints, in the repo's no-dependency style:

    - hand-rolled HTTP/1.1 over [Unix] sockets: request parser with
      hard limits on request line, header and body sizes, keep-alive
      responses with explicit [Content-Length] (never chunked);
    - a bounded accept queue feeding a fixed pool of worker threads —
      when the queue is full the server answers [503] immediately instead
      of accumulating unbounded connections;
    - responses that read the database ([/report], [/rank], ...) are
      cached and tagged with an ETag keyed on {!Db.manifest_stamp}, so
      hot report traffic on an unchanged database re-reads no counts
      files and conditional requests ([If-None-Match]) are answered
      [304] without a body;
    - writes go through {!Db.Lock}, so the server coexists with
      concurrent [sic db add] / [sic campaign] writers on the same
      directory;
    - [SIGPIPE] is ignored process-wide and [EPIPE]/[ECONNRESET] are
      per-connection errors: a client vanishing mid-request never kills
      the server;
    - graceful shutdown: SIGINT/SIGTERM (or {!stop}) stop the accept
      loop, drain queued connections, and join every worker. *)

module Counts = Sic_coverage.Counts
module Db = Sic_db.Db
module Json = Sic_obs.Json
module Obs = Sic_obs.Obs

(** Ignore SIGPIPE for the whole process so a write to a vanished peer
    (socket or pipe) raises [Unix_error (EPIPE, _, _)] — a per-connection
    condition the caller handles — instead of killing the process. Called
    by {!start}; [sic] also calls it at startup for the fleet pipes. *)
let ignore_sigpipe () =
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* HTTP/1.1, the small subset we speak                                  *)
(* ------------------------------------------------------------------ *)

module Http = struct
  exception Bad_request of string
  exception Too_large of string (* request line or headers: 431 *)
  exception Payload_too_large of string (* body: 413 *)

  let max_request_line = 8192
  let max_header_line = 8192
  let max_headers = 100
  let max_body = 16 * 1024 * 1024

  type request = {
    meth : string;
    target : string;  (** raw request target, e.g. ["/diff?a=r0001&b=r0002"] *)
    path : string;  (** decoded path component *)
    query : (string * string) list;  (** decoded query parameters *)
    version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
    headers : (string * string) list;  (** names lowercased *)
    body : string;
  }

  (** A buffered byte reader over any [read]-like function, so the parser
      is testable on strings and runs unchanged over sockets. *)
  module Reader = struct
    type t = {
      fill : bytes -> int -> int -> int;
      buf : Bytes.t;
      mutable pos : int;
      mutable len : int;
    }

    let create fill = { fill; buf = Bytes.create 8192; pos = 0; len = 0 }
    let of_fd fd = create (fun b off len -> Unix.read fd b off len)

    let of_string s =
      let consumed = ref 0 in
      create (fun b off len ->
          let n = min len (String.length s - !consumed) in
          Bytes.blit_string s !consumed b off n;
          consumed := !consumed + n;
          n)

    let buffered r = r.len - r.pos

    (* false at EOF *)
    let refill r =
      if r.pos < r.len then true
      else begin
        r.pos <- 0;
        r.len <- r.fill r.buf 0 (Bytes.length r.buf);
        r.len > 0
      end

    let byte r =
      if refill r then begin
        let c = Bytes.get r.buf r.pos in
        r.pos <- r.pos + 1;
        Some c
      end
      else None
  end

  (* one CRLF- (or bare-LF-) terminated line, without the terminator.
     [None] only on EOF before the first byte — a peer that closed
     between requests; EOF mid-line is a malformed request. *)
  let read_line ?(limit = max_header_line) (r : Reader.t) : string option =
    let b = Buffer.create 128 in
    let rec go () =
      match Reader.byte r with
      | None ->
          if Buffer.length b = 0 then None
          else raise (Bad_request "unexpected end of input inside a line")
      | Some '\n' ->
          let s = Buffer.contents b in
          let n = String.length s in
          Some (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
      | Some c ->
          if Buffer.length b >= limit then raise (Too_large "line too long");
          Buffer.add_char b c;
          go ()
    in
    go ()

  let read_exact (r : Reader.t) n : string =
    let out = Bytes.create n in
    let got = ref 0 in
    while !got < n do
      if not (Reader.refill r) then
        raise
          (Bad_request (Printf.sprintf "truncated body (%d of %d bytes)" !got n));
      let take = min (r.Reader.len - r.Reader.pos) (n - !got) in
      Bytes.blit r.Reader.buf r.Reader.pos out !got take;
      r.Reader.pos <- r.Reader.pos + take;
      got := !got + take
    done;
    Bytes.to_string out

  let hex_val c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None

  let percent_decode s =
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | '%' when !i + 2 < n -> (
          match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
          | Some h, Some l ->
              Buffer.add_char b (Char.chr ((h * 16) + l));
              i := !i + 2
          | _ -> Buffer.add_char b '%')
      | '+' -> Buffer.add_char b ' '
      | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b

  let percent_encode s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
            Buffer.add_char b c
        | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents b

  let parse_target target =
    match String.index_opt target '?' with
    | None -> (percent_decode target, [])
    | Some i ->
        let path = String.sub target 0 i in
        let q = String.sub target (i + 1) (String.length target - i - 1) in
        let params =
          String.split_on_char '&' q
          |> List.filter (fun kv -> kv <> "")
          |> List.map (fun kv ->
                 match String.index_opt kv '=' with
                 | None -> (percent_decode kv, "")
                 | Some j ->
                     ( percent_decode (String.sub kv 0 j),
                       percent_decode (String.sub kv (j + 1) (String.length kv - j - 1)) ))
        in
        (percent_decode path, params)

  let is_token s =
    s <> ""
    && String.for_all
         (function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' -> true | _ -> false)
         s

  let read_headers (r : Reader.t) : (string * string) list =
    let rec go acc n =
      if n > max_headers then raise (Too_large "too many headers");
      match read_line r with
      | None -> raise (Bad_request "unexpected end of input inside headers")
      | Some "" -> List.rev acc
      | Some line -> (
          match String.index_opt line ':' with
          | None | Some 0 -> raise (Bad_request ("malformed header line: " ^ line))
          | Some i ->
              let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
              let value =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              go ((name, value) :: acc) (n + 1))
    in
    go [] 0

  (** Parse one request off the reader. [None] on a clean EOF before the
      first byte (the peer closed an idle connection); raises
      {!Bad_request} / {!Too_large} / {!Payload_too_large} otherwise. *)
  let parse_request (r : Reader.t) : request option =
    match read_line ~limit:max_request_line r with
    | None -> None
    | Some line -> (
        match String.split_on_char ' ' line with
        | [ meth; target; version ]
          when is_token meth
               && target <> ""
               && (version = "HTTP/1.1" || version = "HTTP/1.0") ->
            let headers = read_headers r in
            let body =
              match List.assoc_opt "content-length" headers with
              | None -> ""
              | Some v -> (
                  match int_of_string_opt (String.trim v) with
                  | None -> raise (Bad_request ("bad content-length: " ^ v))
                  | Some n when n < 0 -> raise (Bad_request ("bad content-length: " ^ v))
                  | Some n when n > max_body ->
                      raise
                        (Payload_too_large
                           (Printf.sprintf "body of %d bytes exceeds the %d-byte limit" n
                              max_body))
                  | Some n -> read_exact r n)
            in
            let path, query = parse_target target in
            Some { meth; target; path; query; version; headers; body }
        | _ -> raise (Bad_request ("malformed request line: " ^ line)))

  let header (req : request) name = List.assoc_opt (String.lowercase_ascii name) req.headers

  let status_text = function
    | 200 -> "OK"
    | 201 -> "Created"
    | 304 -> "Not Modified"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | 413 -> "Content Too Large"
    | 431 -> "Request Header Fields Too Large"
    | 500 -> "Internal Server Error"
    | 503 -> "Service Unavailable"
    | _ -> "Status"

  (** Serialize one response. [304] carries headers but no body (and no
      [Content-Length]), per RFC 9110; everything else gets an explicit
      [Content-Length] so keep-alive needs no chunking. *)
  let response ~status ?(content_type = "text/plain; charset=utf-8") ?(extra = [])
      ?(keep_alive = true) (body : string) : string =
    let b = Buffer.create (String.length body + 256) in
    Buffer.add_string b (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
    Buffer.add_string b
      (if keep_alive then "connection: keep-alive\r\n" else "connection: close\r\n");
    List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) extra;
    if status <> 304 then begin
      Buffer.add_string b (Printf.sprintf "content-type: %s\r\n" content_type);
      Buffer.add_string b (Printf.sprintf "content-length: %d\r\n" (String.length body))
    end;
    Buffer.add_string b "\r\n";
    if status <> 304 then Buffer.add_string b body;
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Server-sent events                                                   *)
(* ------------------------------------------------------------------ *)

(** The SSE wire subset [GET /watch] speaks: [event:]/[data:] frames
    terminated by a blank line, plus [:]-prefixed comment lines used as
    keep-alive heartbeats. The encoder is total — newlines in event
    names and comments are flattened, multi-line data becomes multiple
    [data:] lines — and the matching line-fed {!Decoder} drives
    {!Client.watch}, [sic watch], the bench fan-out and the tests. *)
module Sse = struct
  (* event names and comments are single-line by construction *)
  let flatten s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

  let frame ?event (data : string) : string =
    let b = Buffer.create (String.length data + 32) in
    (match event with
    | Some name -> Buffer.add_string b ("event: " ^ flatten name ^ "\n")
    | None -> ());
    let data = String.concat "" (String.split_on_char '\r' data) in
    List.iter
      (fun line -> Buffer.add_string b ("data: " ^ line ^ "\n"))
      (String.split_on_char '\n' data);
    Buffer.add_char b '\n';
    Buffer.contents b

  let comment s = ": " ^ flatten s ^ "\n\n"
  let heartbeat n = comment (Printf.sprintf "hb %d" n)

  (** Reassemble events from a line-split stream (line terminators
      already stripped, as {!Http.read_line} yields them). *)
  module Decoder = struct
    type t = { mutable ev : string; data : Buffer.t; mutable have_data : bool }

    let create () = { ev = ""; data = Buffer.create 256; have_data = false }

    let reset d =
      d.ev <- "";
      Buffer.clear d.data;
      d.have_data <- false

    (* [Some (event, data)] when [s] is the blank line completing an
       event; comments and fields we don't speak are skipped. An event
       with no [data:] line is dropped, per the SSE dispatch rules. *)
    let line d (s : string) : (string * string) option =
      let s =
        let n = String.length s in
        if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
      in
      if s = "" then
        if d.have_data then begin
          let ev = if d.ev = "" then "message" else d.ev in
          let data = Buffer.contents d.data in
          reset d;
          Some (ev, data)
        end
        else begin
          reset d;
          None
        end
      else if s.[0] = ':' then None
      else begin
        let field, value =
          match String.index_opt s ':' with
          | None -> (s, "")
          | Some i ->
              let v = String.sub s (i + 1) (String.length s - i - 1) in
              let v =
                if String.length v > 0 && v.[0] = ' ' then
                  String.sub v 1 (String.length v - 1)
                else v
              in
              (String.sub s 0 i, v)
        in
        (match field with
        | "event" -> d.ev <- value
        | "data" ->
            if d.have_data then Buffer.add_char d.data '\n';
            Buffer.add_string d.data value;
            d.have_data <- true
        | _ -> ());
        None
      end
  end
end

(* ------------------------------------------------------------------ *)
(* The /watch hub                                                       *)
(* ------------------------------------------------------------------ *)

type sse_event = { seq : int; ev_name : string; ev_data : string }

(** Fan-out point between ingest and the SSE subscriber threads: a
    publish appends to a bounded backlog and broadcasts; each subscriber
    drains whatever is newer than its own cursor. Publishing never
    blocks on a slow subscriber — a laggard that falls more than
    [backlog_limit] events behind just misses the overwritten ones. *)
type hub = {
  hm : Mutex.t;
  hc : Condition.t;
  mutable seq : int;
  mutable backlog : sse_event list;  (** newest first, at most [backlog_limit] *)
  mutable hub_closed : bool;
  mutable subscribers : int;
  mutable sse_threads : Thread.t list;
}

let backlog_limit = 256

let hub_create () =
  {
    hm = Mutex.create ();
    hc = Condition.create ();
    seq = 0;
    backlog = [];
    hub_closed = false;
    subscribers = 0;
    sse_threads = [];
  }

let rec take n l =
  match l with [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let hub_publish h ~event ~data =
  Mutex.protect h.hm (fun () ->
      h.seq <- h.seq + 1;
      h.backlog <-
        { seq = h.seq; ev_name = event; ev_data = data } :: take (backlog_limit - 1) h.backlog;
      Condition.broadcast h.hc)

(* no more events will ever be published; subscribers say goodbye and
   hang up (the graceful-drain path) *)
let hub_close h =
  Mutex.protect h.hm (fun () ->
      h.hub_closed <- true;
      Condition.broadcast h.hc)

(* ------------------------------------------------------------------ *)
(* Server state                                                         *)
(* ------------------------------------------------------------------ *)

type metrics = {
  mm : Mutex.t;
  requests : (string, int) Hashtbl.t;  (** route label ("GET /report") -> count *)
  statuses : (int, int) Hashtbl.t;
  latency : (string, Obs.Histogram.t) Hashtbl.t;
      (** route label -> per-request wall time, microseconds *)
  mutable connections : int;
  mutable ingested : int;  (** runs accepted by POST /runs *)
  mutable epipe : int;  (** peers that vanished mid-response *)
  mutable dropped_busy : int;  (** connections refused with 503 *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable sse_events : int;  (** events published to /watch subscribers *)
  mutable sse_dropped : int;  (** /watch subscribers that vanished mid-stream *)
}

(** What the server knows about one producer, keyed by the worker id it
    attaches to [POST /heartbeat] and [POST /runs?worker=]. Guarded by
    [metrics.mm]. *)
type wstate = {
  mutable last_seen : float;  (** [Unix.gettimeofday] of the last signal *)
  mutable w_job : int;
  mutable w_design : string;
  mutable w_backend : string;
  mutable w_cycles : int;
  mutable w_covered : int;
  mutable w_runs : int;  (** runs ingested carrying this worker id *)
}

(** A worker counts as live while its last heartbeat or push is at most
    this old — campaign heartbeats arrive every ~0.5 s when forwarding. *)
let worker_active_s = 10.0

type t = {
  db_dir : string;
  host : string;
  port : int;
  listen_fd : Unix.file_descr;
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  queue : Unix.file_descr Queue.t;
  queue_limit : int;
  qm : Mutex.t;
  qc : Condition.t;
  mutable stopping : bool;
  mutable workers : Thread.t list;
  mutable acceptor : Thread.t option;
  db_m : Mutex.t;  (** serializes DB access and the response cache *)
  mutable db : Db.t;
  cache : (string, string * string * string) Hashtbl.t;
      (** request target -> (etag, content type, body) *)
  metrics : metrics;
  hub : hub;  (** ingest -> /watch fan-out *)
  producers : (string, wstate) Hashtbl.t;  (** worker id -> state, under [metrics.mm] *)
  sse_heartbeat_s : float;  (** idle gap before a keep-alive comment on /watch *)
  mutable ticker : Thread.t option;  (** periodic hub broadcast (heartbeat clock) *)
}

let port t = t.port

let flush_cache t =
  Mutex.protect t.db_m (fun () -> Hashtbl.reset t.cache)

(* a single recorder lock: Obs's internal lists are not thread-safe *)
let obs_m = Mutex.create ()

let write_all fd (s : string) =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let publish t ~event ~data =
  Mutex.protect t.metrics.mm (fun () -> t.metrics.sse_events <- t.metrics.sse_events + 1);
  hub_publish t.hub ~event ~data

(* record a signal (heartbeat or tagged push) from [worker] and update
   its table row; the empty id means an anonymous producer *)
let touch_producer t worker (f : wstate -> unit) =
  if worker <> "" then
    Mutex.protect t.metrics.mm (fun () ->
        let w =
          match Hashtbl.find_opt t.producers worker with
          | Some w -> w
          | None ->
              let w =
                {
                  last_seen = 0.;
                  w_job = -1;
                  w_design = "";
                  w_backend = "";
                  w_cycles = 0;
                  w_covered = 0;
                  w_runs = 0;
                }
              in
              Hashtbl.add t.producers worker w;
              w
        in
        w.last_seen <- Unix.gettimeofday ();
        f w)

let active_producers t =
  let now = Unix.gettimeofday () in
  Mutex.protect t.metrics.mm (fun () ->
      Hashtbl.fold
        (fun _ w acc -> if now -. w.last_seen <= worker_active_s then acc + 1 else acc)
        t.producers 0)

(* Per-kind coverage split for delta events and the dashboard tiles.
   The instrumentation passes encode the kind in the point name: [l_*]
   line, [t_*] toggle, [fsm_*] FSM states/arcs, [rv_*] ready-valid, and
   the mux toggles end in [_T]/[_F]. *)
let kind_of_point name =
  let pre p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  let suf s =
    let n = String.length name and k = String.length s in
    n >= k && String.sub name (n - k) k = s
  in
  if pre "l_" then "line"
  else if pre "t_" then "toggle"
  else if pre "fsm_" then "fsm"
  else if pre "rv_" then "ready_valid"
  else if suf "_T" || suf "_F" then "mux"
  else "other"

let kinds_json (agg : Counts.t) : Json.t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, c) ->
      let k = kind_of_point name in
      let cov, tot = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k ((if c > 0 then cov + 1 else cov), tot + 1))
    (Counts.to_sorted_list agg);
  Json.Obj
    (Hashtbl.fold
       (fun k (c, tot) acc ->
         (k, Json.Obj [ ("covered", Json.Int c); ("total", Json.Int tot) ]) :: acc)
       tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* ------------------------------------------------------------------ *)
(* Handlers                                                             *)
(* ------------------------------------------------------------------ *)

type reply = {
  status : int;
  content_type : string;
  extra : (string * string) list;
  body : string;
}

let text ?(extra = []) status body =
  { status; content_type = "text/plain; charset=utf-8"; extra; body }

let json ?(extra = []) status (j : Json.t) =
  { status; content_type = "application/json"; extra; body = Json.to_string j ^ "\n" }

let json_of_string_list l = Json.List (List.map (fun s -> Json.String s) l)

let report_json (db : Db.t) : string =
  let union = Db.union_counts db in
  let ok = List.length (Db.ok_runs db) and all = List.length (Db.runs db) in
  (* formally excluded points are off the books, as in the text report:
     totals range over non-excluded points only (identical to before when
     the database has no exclusion artifact) *)
  let excluded = Db.excluded_names db in
  let live =
    List.filter (fun n -> not (List.mem n excluded)) (Counts.names union)
  in
  Json.to_string
    (Json.Obj
       [
         ("runs", Json.Int all);
         ("ok", Json.Int ok);
         ("failed", Json.Int (all - ok));
         ("points_total", Json.Int (List.length live));
         ( "points_covered",
           Json.Int (List.length (List.filter (fun n -> Counts.get union n > 0) live)) );
         ("points_excluded", Json.Int (List.length excluded));
         ("excluded", json_of_string_list excluded);
         ( "counts",
           Json.Obj (List.map (fun (n, c) -> (n, Json.Int c)) (Counts.to_sorted_list union))
         );
       ])
  ^ "\n"

let report_html (db : Db.t) : string =
  let timelines =
    List.filter_map
      (fun (r : Db.run) ->
        Option.map
          (fun tl -> (Printf.sprintf "%s %s/%s" r.Db.id r.Db.design r.Db.backend, tl))
          (Db.load_timeline db r))
      (Db.ok_runs db)
  in
  Sic_coverage.Html_report.render
    ~title:("coverage database " ^ Db.dir db)
    ~timelines
    ~excluded:(Db.excluded_names db)
    (Db.union_counts db)

let runs_json (db : Db.t) : string =
  Json.to_string (Json.List (List.map Db.json_of_run (Db.runs db))) ^ "\n"

let diff_json (req : Http.request) (db : Db.t) : string =
  let param k =
    match List.assoc_opt k req.Http.query with
    | Some v when v <> "" -> v
    | _ ->
        raise
          (Http.Bad_request
             (Printf.sprintf "missing query parameter %s (GET /diff?a=RUN&b=RUN)" k))
  in
  let a = param "a" and b = param "b" in
  let d = Db.diff db ~before:a ~after:b in
  Json.to_string
    (Json.Obj
       [
         ("before", Json.String a);
         ("after", Json.String b);
         ("newly_covered", json_of_string_list d.Counts.newly_covered);
         ("lost", json_of_string_list d.Counts.lost);
         ("only_before", json_of_string_list d.Counts.only_before);
         ("only_after", json_of_string_list d.Counts.only_after);
       ])
  ^ "\n"

let index_body =
  String.concat "\n"
    [
      "sic serve: simulator-independent coverage over HTTP";
      "";
      "  POST /runs?design=&backend=&workload=&seed=&cycles=&worker=   ingest one counts file (v1 text)";
      "  POST /heartbeat?worker=&job=&design=&backend=&cycles=&covered=   producer liveness ping";
      "  GET  /report        merged coverage (union-max over runs) as JSON";
      "  GET  /report.html   merged coverage as a self-contained HTML page";
      "  GET  /runs          every recorded run, as JSON";
      "  GET  /rank          greedy set-cover run ranking (text)";
      "  GET  /timelines     per-run convergence sparklines (text)";
      "  GET  /diff?a=&b=    coverage diff between two runs, as JSON";
      "  GET  /watch         live aggregate deltas as server-sent events";
      "  GET  /dashboard     self-contained live dashboard over /watch";
      "  GET  /metrics       request counters and per-endpoint latency, as JSON";
      "  GET  /metrics.prom  the same as Prometheus text exposition";
      "  GET  /healthz       liveness probe";
      "";
      "GET responses that read the database carry an ETag; send If-None-Match";
      "to get 304 while the database is unchanged.";
      "";
    ]

(* The live dashboard: one self-contained page (no external assets, same
   house style as Html_report) whose inline script subscribes to /watch
   and redraws the coverage curve, worker table and ingest sparkline on
   every event. *)
let dashboard_html =
  {dash|<!doctype html>
<meta charset="utf-8">
<title>sic live dashboard</title>
<style>
body { font-family: ui-monospace, monospace; margin: 2em; background: #fafafa; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
.tiles { display: flex; gap: 1em; flex-wrap: wrap; }
.tile { background: #fff; border: 1px solid #ddd; border-radius: 6px; padding: 0.8em 1.2em; }
.tile b { display: block; font-size: 1.4em; }
table { border-collapse: collapse; background: #fff; }
td, th { border: 1px solid #ddd; padding: 0.2em 0.6em; text-align: left; }
svg { background: #fff; border: 1px solid #ddd; }
#status { color: #555; }
td.stale { color: #b00; }
.dot { display: inline-block; width: 0.6em; height: 0.6em; border-radius: 50%; background: #2a2; }
.dot.off { background: #ccc; }
</style>
<h1>sic live dashboard</h1>
<p id="status">connecting to /watch &#8230;</p>
<div class="tiles">
  <div class="tile"><b id="t_cov">&#8211;</b>points covered</div>
  <div class="tile"><b id="t_runs">&#8211;</b>runs</div>
  <div class="tile"><b id="t_workers">&#8211;</b>active workers</div>
  <div class="tile"><b id="t_rate">&#8211;</b>runs/min</div>
</div>
<h2>total coverage</h2>
<svg id="curve" width="640" height="160" viewBox="0 0 640 160"></svg>
<h2>ingest rate (last 5 min, 5 s buckets)</h2>
<svg id="rate" width="640" height="60" viewBox="0 0 640 60"></svg>
<h2>workers</h2>
<table>
<thead><tr><th></th><th>worker</th><th>job</th><th>design</th><th>backend</th><th>cycles</th><th>covered</th><th>last seen</th></tr></thead>
<tbody id="workers"></tbody>
</table>
<script>
'use strict';
var curve = [];
var total = 0, covered = 0, runs = 0, failed = 0, workers = 0;
var ingests = [];
var workerRows = {};
function $(id) { return document.getElementById(id); }
function now() { return Date.now() / 1000; }
function fmt(n) { return n.toLocaleString(); }
function esc(s) { return String(s).replace(/&/g, '&amp;').replace(/</g, '&lt;'); }
function setTiles() {
  var pct = total > 0 ? (100 * covered / total).toFixed(1) + '%' : '';
  $('t_cov').textContent = fmt(covered) + '/' + fmt(total) + (pct ? ' (' + pct + ')' : '');
  $('t_runs').textContent = fmt(runs) + (failed > 0 ? ' (' + failed + ' failed)' : '');
  $('t_workers').textContent = workers;
  var cutoff = now() - 60;
  $('t_rate').textContent = ingests.filter(function (t) { return t >= cutoff; }).length;
}
function drawCurve() {
  var svg = $('curve'), w = 640, h = 160, pad = 4;
  if (curve.length === 0) { svg.innerHTML = ''; return; }
  var t0 = curve[0].t, t1 = curve[curve.length - 1].t;
  var span = Math.max(t1 - t0, 1);
  var max = Math.max(total, 1);
  var pts = curve.map(function (p) {
    var x = pad + (w - 2 * pad) * (p.t - t0) / span;
    var y = h - pad - (h - 2 * pad) * p.covered / max;
    return x.toFixed(1) + ',' + y.toFixed(1);
  }).join(' ');
  svg.innerHTML = '<polyline fill="none" stroke="#2a7" stroke-width="2" points="' + pts + '"/>';
}
function drawRate() {
  var svg = $('rate'), w = 640, h = 60, buckets = 60, bucketS = 5;
  var t = now(), counts = new Array(buckets).fill(0);
  ingests.forEach(function (ts) {
    var i = Math.floor((t - ts) / bucketS);
    if (i >= 0 && i < buckets) counts[buckets - 1 - i]++;
  });
  var max = Math.max.apply(null, counts.concat([1]));
  var bw = w / buckets, bars = '';
  counts.forEach(function (c, i) {
    var bh = (h - 2) * c / max;
    bars += '<rect x="' + (i * bw + 1).toFixed(1) + '" y="' + (h - bh).toFixed(1) +
      '" width="' + (bw - 2).toFixed(1) + '" height="' + bh.toFixed(1) + '" fill="#27a"/>';
  });
  svg.innerHTML = bars;
}
function drawWorkers() {
  var t = now(), rows = '';
  Object.keys(workerRows).sort().forEach(function (id) {
    var w = workerRows[id], age = t - w.last, stale = age > 10;
    rows += '<tr><td><span class="dot' + (stale ? ' off' : '') + '"></span></td><td>' + esc(id) +
      '</td><td>' + (w.job >= 0 ? w.job : '') + '</td><td>' + esc(w.design) +
      '</td><td>' + esc(w.backend) + '</td><td>' + fmt(w.cycles) +
      '</td><td>' + fmt(w.covered) +
      '</td><td' + (stale ? ' class="stale"' : '') + '>' + age.toFixed(0) + 's ago</td></tr>';
  });
  $('workers').innerHTML = rows;
}
function repaint() { setTiles(); drawCurve(); drawRate(); drawWorkers(); }
var es = new EventSource('/watch');
es.onopen = function () { $('status').textContent = 'live: streaming /watch'; };
es.onerror = function () { $('status').textContent = 'disconnected, retrying'; };
es.addEventListener('hello', function (e) {
  var d = JSON.parse(e.data);
  covered = d.covered; total = d.total; runs = d.runs; failed = d.failed; workers = d.workers;
  curve.push({ t: now(), covered: covered });
  repaint();
});
es.addEventListener('delta', function (e) {
  var d = JSON.parse(e.data);
  covered = d.covered; total = d.total; runs = d.runs; failed = d.failed; workers = d.workers;
  ingests.push(now());
  curve.push({ t: now(), covered: covered });
  if (d.worker) {
    var w = workerRows[d.worker] || { job: -1, design: '', backend: '', cycles: 0, covered: 0, last: 0 };
    w.design = d.design; w.backend = d.backend; w.last = now();
    workerRows[d.worker] = w;
  }
  repaint();
});
es.addEventListener('heartbeat', function (e) {
  var d = JSON.parse(e.data);
  workers = d.workers;
  workerRows[d.worker] = { job: d.job, design: d.design, backend: d.backend,
    cycles: d.cycles, covered: d.covered, last: now() };
  repaint();
});
setInterval(repaint, 1000);
</script>
|dash}

(** Serve a database-reading GET through the cache. The ETag is the
    manifest stamp, re-checked against the disk on {e every} request, so
    external writers ([sic db add], another campaign) invalidate us
    automatically; a hit serves bytes from memory without touching any
    counts file. *)
let cached t (req : Http.request) ~content_type (render : Db.t -> string) : reply =
  let etag = Printf.sprintf "\"m%d\"" (Db.manifest_stamp t.db) in
  let if_none_match =
    match Http.header req "if-none-match" with
    | Some v -> List.exists (fun e -> String.trim e = etag || String.trim e = "*")
                  (String.split_on_char ',' v)
    | None -> false
  in
  if if_none_match then { status = 304; content_type; extra = [ ("etag", etag) ]; body = "" }
  else
    let body =
      Mutex.protect t.db_m (fun () ->
          match Hashtbl.find_opt t.cache req.Http.target with
          | Some (e, ct, body) when e = etag && ct = content_type ->
              t.metrics.cache_hits <- t.metrics.cache_hits + 1;
              body
          | _ ->
              t.metrics.cache_misses <- t.metrics.cache_misses + 1;
              let db = Db.load t.db_dir in
              t.db <- db;
              let body = render db in
              Hashtbl.replace t.cache req.Http.target (etag, content_type, body);
              body)
    in
    { status = 200; content_type; extra = [ ("etag", etag) ]; body }

(** The [hello] event greeting a new /watch subscriber: where the
    database stands right now, so a dashboard renders before the first
    delta arrives. *)
let overview_json t : Json.t =
  let db =
    Mutex.protect t.db_m (fun () ->
        let db = Db.load t.db_dir in
        t.db <- db;
        db)
  in
  let union = Db.union_counts db in
  let all = Db.runs db in
  let ok = Db.ok_runs db in
  let units = List.fold_left (fun acc (r : Db.run) -> acc + r.Db.cycles) 0 ok in
  Json.Obj
    [
      ("runs", Json.Int (List.length all));
      ("ok", Json.Int (List.length ok));
      ("failed", Json.Int (List.length all - List.length ok));
      ("covered", Json.Int (Counts.covered_points union));
      ("total", Json.Int (Counts.total_points union));
      ("units", Json.Int units);
      ("stamp", Json.Int (Db.manifest_stamp db));
      ("workers", Json.Int (active_producers t));
      ("kinds", kinds_json union);
    ]

let post_run t (req : Http.request) : reply =
  let str k default = Option.value ~default (List.assoc_opt k req.Http.query) in
  let int k default =
    match List.assoc_opt k req.Http.query with
    | None -> default
    | Some s -> (
        match int_of_string_opt s with
        | Some n -> n
        | None -> raise (Http.Bad_request (Printf.sprintf "query parameter %s is not an integer: %s" k s)))
  in
  let counts =
    try Counts.of_string req.Http.body
    with Counts.Bad_format m -> raise (Http.Bad_request ("bad counts payload: " ^ m))
  in
  let worker = str "worker" "" in
  let run, newly, agg, nruns, nok, units =
    Mutex.protect t.db_m (fun () ->
        Db.Lock.with_lock t.db_dir (fun () ->
            (* reload under the lock: another process may have appended
               runs since we last looked, and ids are assigned in order *)
            let db = Db.load t.db_dir in
            (* the aggregate *before* this run decides which of its >0
               points are news to the whole campaign *)
            let before = Db.aggregate db in
            let run =
              Db.add db ~design:(str "design" "unknown")
                ~backend:(str "backend" "external")
                ~workload:(str "workload" "external")
                ~seed:(int "seed" 0) ~cycles:(int "cycles" 0) (Ok counts)
            in
            t.db <- db;
            Hashtbl.reset t.cache;
            let newly =
              List.fold_left
                (fun acc (name, c) ->
                  if c > 0 && Counts.get before name = 0 then acc + 1 else acc)
                0 (Counts.to_sorted_list counts)
            in
            let ok = Db.ok_runs db in
            (* cumulative simulated units over every successful run, so a
               delta subscriber can render an absolute aggregate
               cycles/sec figure (waves x jobs x lanes) without replaying
               the stream *)
            let units = List.fold_left (fun acc (r : Db.run) -> acc + r.Db.cycles) 0 ok in
            ( run,
              newly,
              Db.aggregate db,
              List.length (Db.runs db),
              List.length ok,
              units )))
  in
  touch_producer t worker (fun w ->
      w.w_runs <- w.w_runs + 1;
      w.w_design <- run.Db.design;
      w.w_backend <- run.Db.backend);
  Mutex.protect t.metrics.mm (fun () -> t.metrics.ingested <- t.metrics.ingested + 1);
  publish t ~event:"delta"
    ~data:
      (Json.to_string
         (Json.Obj
            [
              ("run", Json.String run.Db.id);
              ("design", Json.String run.Db.design);
              ("backend", Json.String run.Db.backend);
              ("worker", Json.String worker);
              ("seed", Json.Int run.Db.seed);
              ("cycles", Json.Int run.Db.cycles);
              ("newly_covered", Json.Int newly);
              ("units", Json.Int units);
              ("covered", Json.Int (Counts.covered_points agg));
              ("total", Json.Int (Counts.total_points agg));
              ("runs", Json.Int nruns);
              ("ok", Json.Int nok);
              ("failed", Json.Int (nruns - nok));
              ("stamp", Json.Int (Db.manifest_stamp t.db));
              ("workers", Json.Int (active_producers t));
              ("kinds", kinds_json agg);
            ]));
  json 201 (Db.json_of_run run)

let post_heartbeat t (req : Http.request) : reply =
  let str k default = Option.value ~default (List.assoc_opt k req.Http.query) in
  let int k default =
    match List.assoc_opt k req.Http.query with
    | None -> default
    | Some s -> (
        match int_of_string_opt s with
        | Some n -> n
        | None -> raise (Http.Bad_request (Printf.sprintf "query parameter %s is not an integer: %s" k s)))
  in
  let worker = str "worker" "" in
  if worker = "" then
    raise (Http.Bad_request "missing query parameter worker (POST /heartbeat?worker=ID)");
  let job = int "job" (-1) in
  let design = str "design" "" and backend = str "backend" "" in
  let cycles = int "cycles" 0 and covered = int "covered" 0 in
  touch_producer t worker (fun w ->
      w.w_job <- job;
      if design <> "" then w.w_design <- design;
      if backend <> "" then w.w_backend <- backend;
      w.w_cycles <- cycles;
      w.w_covered <- covered);
  publish t ~event:"heartbeat"
    ~data:
      (Json.to_string
         (Json.Obj
            [
              ("worker", Json.String worker);
              ("job", Json.Int job);
              ("design", Json.String design);
              ("backend", Json.String backend);
              ("cycles", Json.Int cycles);
              ("covered", Json.Int covered);
              ("workers", Json.Int (active_producers t));
            ]));
  json 200 (Json.Obj [ ("ok", Json.Bool true) ])

let metrics_json t : reply =
  let m = t.metrics in
  let subscribers = Mutex.protect t.hub.hm (fun () -> t.hub.subscribers) in
  let workers_active = active_producers t in
  Mutex.protect m.mm (fun () ->
      let table to_key tbl =
        Hashtbl.fold (fun k v acc -> (to_key k, Json.Int v) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let summary h =
        Json.Obj
          [
            ("count", Json.Int (Obs.Histogram.count h));
            ("mean_us", Json.Float (Obs.Histogram.mean h));
            ("p50_us", Json.Float (Obs.Histogram.percentile h 50.));
            ("p90_us", Json.Float (Obs.Histogram.percentile h 90.));
            ("p99_us", Json.Float (Obs.Histogram.percentile h 99.));
            ("max_us", Json.Float (Obs.Histogram.max_value h));
          ]
      in
      let latency =
        Json.Obj
          (Hashtbl.fold (fun k h acc -> (k, summary h) :: acc) m.latency []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b))
      in
      json 200
        (Json.Obj
           [
             ("requests", Json.Obj (table Fun.id m.requests));
             ("statuses", Json.Obj (table string_of_int m.statuses));
             ("latency", latency);
             ("connections", Json.Int m.connections);
             ("ingested_runs", Json.Int m.ingested);
             ("epipe", Json.Int m.epipe);
             ("dropped_busy", Json.Int m.dropped_busy);
             ("cache_hits", Json.Int m.cache_hits);
             ("cache_misses", Json.Int m.cache_misses);
             ( "sse",
               Json.Obj
                 [
                   ("subscribers", Json.Int subscribers);
                   ("events", Json.Int m.sse_events);
                   ("dropped", Json.Int m.sse_dropped);
                 ] );
             ("workers_active", Json.Int workers_active);
             ("db_stamp", Json.Int (Db.manifest_stamp t.db));
           ]))

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (format 0.0.4)                            *)
(* ------------------------------------------------------------------ *)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let metrics_prom t : reply =
  let subscribers = Mutex.protect t.hub.hm (fun () -> t.hub.subscribers) in
  let workers_active = active_producers t in
  let m = t.metrics in
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  Mutex.protect m.mm (fun () ->
      line "# HELP sic_requests_total HTTP requests served, by route.\n";
      line "# TYPE sic_requests_total counter\n";
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.requests []
      |> List.sort compare
      |> List.iter (fun (k, v) ->
             line "sic_requests_total{endpoint=\"%s\"} %d\n" (prom_escape k) v);
      line "# HELP sic_responses_total HTTP responses, by status code.\n";
      line "# TYPE sic_responses_total counter\n";
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.statuses []
      |> List.sort compare
      |> List.iter (fun (k, v) -> line "sic_responses_total{code=\"%d\"} %d\n" k v);
      line "# HELP sic_request_duration_microseconds Request wall time, by route.\n";
      line "# TYPE sic_request_duration_microseconds summary\n";
      Hashtbl.fold (fun k h acc -> (k, h) :: acc) m.latency []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (k, h) ->
             let e = prom_escape k in
             List.iter
               (fun (q, label) ->
                 line "sic_request_duration_microseconds{endpoint=\"%s\",quantile=\"%s\"} %.1f\n"
                   e label
                   (Obs.Histogram.percentile h q))
               [ (50., "0.5"); (90., "0.9"); (99., "0.99") ];
             line "sic_request_duration_microseconds_sum{endpoint=\"%s\"} %.1f\n" e
               (Obs.Histogram.mean h *. float_of_int (Obs.Histogram.count h));
             line "sic_request_duration_microseconds_count{endpoint=\"%s\"} %d\n" e
               (Obs.Histogram.count h));
      let counter name help v =
        line "# HELP %s %s\n" name help;
        line "# TYPE %s counter\n" name;
        line "%s %d\n" name v
      in
      let gauge name help v =
        line "# HELP %s %s\n" name help;
        line "# TYPE %s gauge\n" name;
        line "%s %d\n" name v
      in
      counter "sic_connections_total" "TCP connections accepted." m.connections;
      counter "sic_ingested_runs_total" "Runs accepted by POST /runs." m.ingested;
      counter "sic_epipe_total" "Peers that vanished mid-response." m.epipe;
      counter "sic_dropped_busy_total" "Connections refused with 503 (accept queue full)."
        m.dropped_busy;
      counter "sic_cache_hits_total" "Rendered-response cache hits." m.cache_hits;
      counter "sic_cache_misses_total" "Rendered-response cache misses." m.cache_misses;
      counter "sic_sse_events_total" "Events published to /watch subscribers." m.sse_events;
      counter "sic_sse_dropped_subscribers_total"
        "/watch subscribers that vanished mid-stream." m.sse_dropped;
      gauge "sic_sse_subscribers" "Currently connected /watch subscribers." subscribers;
      gauge "sic_workers_active" "Producers heard from within the liveness window."
        workers_active;
      gauge "sic_db_manifest_stamp" "Database manifest stamp (manifest size in bytes)."
        (Db.manifest_stamp t.db));
  {
    status = 200;
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    extra = [];
    body = Buffer.contents b;
  }

let contains_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* content negotiation for /metrics: Prometheus scrapers send
   Accept: text/plain (with a version parameter); everyone else gets
   the JSON. /metrics.prom forces the exposition format. *)
let wants_prom (req : Http.request) =
  match Http.header req "accept" with
  | Some a -> contains_sub a "text/plain"
  | None -> false

let handle t (req : Http.request) : reply =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" -> text 200 "ok\n"
  | "GET", "/" -> text 200 index_body
  | "GET", "/dashboard" ->
      {
        status = 200;
        content_type = "text/html; charset=utf-8";
        extra = [];
        body = dashboard_html;
      }
  | "GET", "/metrics" when wants_prom req -> metrics_prom t
  | "GET", "/metrics" -> metrics_json t
  | "GET", "/metrics.prom" -> metrics_prom t
  | "POST", "/heartbeat" -> post_heartbeat t req
  | "POST", "/runs" -> post_run t req
  | "GET", "/runs" -> cached t req ~content_type:"application/json" runs_json
  | "GET", "/report" -> cached t req ~content_type:"application/json" report_json
  | "GET", "/report.html" -> cached t req ~content_type:"text/html; charset=utf-8" report_html
  | "GET", "/rank" ->
      cached t req ~content_type:"text/plain; charset=utf-8" (fun db -> Db.render_rank db)
  | "GET", "/timelines" ->
      cached t req ~content_type:"text/plain; charset=utf-8" Db.render_timelines
  | "GET", "/diff" -> (
      try cached t req ~content_type:"application/json" (diff_json req)
      with Db.Db_error m -> text 404 (m ^ "\n"))
  | ("GET" | "POST"), path -> text 404 (Printf.sprintf "no such endpoint: %s\n" path)
  | meth, _ -> text 405 (Printf.sprintf "method %s not supported\n" meth)

(** [handle] plus the 4xx/5xx mapping: parser and payload errors are the
    client's fault, lock timeouts mean "retry later", anything else that
    escapes is a 500 — never a dead worker. *)
let safe_handle t (req : Http.request) : reply =
  try handle t req with
  | Http.Bad_request m -> text 400 (m ^ "\n")
  | Http.Payload_too_large m -> text 413 (m ^ "\n")
  | Db.Db_error m when String.length m >= 9 && String.sub m 0 9 = "timed out" ->
      text 503 (m ^ "\n")
  | Db.Db_error m -> text 500 ("database error: " ^ m ^ "\n")
  | Counts.Bad_format m -> text 400 ("bad counts payload: " ^ m ^ "\n")
  | e -> text 500 ("internal error: " ^ Printexc.to_string e ^ "\n")

(* ------------------------------------------------------------------ *)
(* Connection handling                                                  *)
(* ------------------------------------------------------------------ *)

(* /metrics must not grow without bound when scanners probe random
   paths: count only the routes we actually serve and bucket everything
   else (404 noise) under "other" *)
let known_routes =
  [
    "GET /";
    "GET /healthz";
    "GET /dashboard";
    "GET /watch";
    "GET /metrics";
    "GET /metrics.prom";
    "GET /report";
    "GET /report.html";
    "GET /runs";
    "POST /runs";
    "POST /heartbeat";
    "GET /rank";
    "GET /timelines";
    "GET /diff";
  ]

let route_label (req : Http.request) =
  let key = req.Http.meth ^ " " ^ req.Http.path in
  if List.mem key known_routes then key else "other"

let record_request t (req : Http.request) ~status ~start_us =
  let dur_us = Obs.now_us () -. start_us in
  let m = t.metrics in
  Mutex.protect m.mm (fun () ->
      let key = route_label req in
      Hashtbl.replace m.requests key
        (1 + Option.value ~default:0 (Hashtbl.find_opt m.requests key));
      Hashtbl.replace m.statuses status
        (1 + Option.value ~default:0 (Hashtbl.find_opt m.statuses status));
      let h =
        match Hashtbl.find_opt m.latency key with
        | Some h -> h
        | None ->
            let h = Obs.Histogram.create () in
            Hashtbl.add m.latency key h;
            h
      in
      Obs.Histogram.add h dur_us);
  if Obs.on () then
    Mutex.protect obs_m (fun () ->
        Obs.record_span ~name:"serve.request" ~start_us ~dur_us
          [
            ("method", Obs.Str req.Http.meth);
            ("path", Obs.Str req.Http.path);
            ("status", Obs.Int status);
          ];
        Obs.count "serve.requests")

(* Wait until the connection has bytes to read. False = give up (peer
   idle too long, or the server is stopping), true = the reader either
   has buffered bytes or the socket is readable. *)
let wait_readable t fd (r : Http.Reader.t) : bool =
  let idle_limit = 10.0 in
  let waited = ref 0.0 in
  let result = ref None in
  while !result = None do
    if Http.Reader.buffered r > 0 then result := Some true
    else if t.stopping then result := Some false
    else if !waited >= idle_limit then result := Some false
    else begin
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> waited := !waited +. 0.25
      | _ :: _, _, _ -> result := Some true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  Option.get !result

(* One /watch subscriber: a dedicated thread that owns the socket. The
   HTTP worker that parsed the request hands the fd over and returns to
   the pool immediately, so streaming clients never starve the fixed
   worker pool. The thread greets with a [hello] snapshot, then drains
   the hub — writing keep-alive comments across idle gaps — until the
   peer vanishes (EPIPE) or the hub closes (graceful drain). *)
let sse_loop t fd =
  let h = t.hub in
  let m = t.metrics in
  Mutex.protect h.hm (fun () -> h.subscribers <- h.subscribers + 1);
  let alive = ref true in
  let send s =
    try write_all fd s
    with Unix.Unix_error _ ->
      Mutex.protect m.mm (fun () -> m.sse_dropped <- m.sse_dropped + 1);
      alive := false
  in
  send
    "HTTP/1.1 200 OK\r\n\
     connection: close\r\n\
     content-type: text/event-stream\r\n\
     cache-control: no-cache\r\n\
     \r\n";
  if !alive then send (Sse.frame ~event:"hello" (Json.to_string (overview_json t)));
  let last_seq = ref (Mutex.protect h.hm (fun () -> h.seq)) in
  let last_write = ref (Unix.gettimeofday ()) in
  let hb_n = ref 0 in
  while !alive do
    let fresh, closed =
      Mutex.protect h.hm (fun () ->
          if h.seq = !last_seq && not h.hub_closed then Condition.wait h.hc h.hm;
          let fresh =
            List.filter (fun (e : sse_event) -> e.seq > !last_seq) h.backlog |> List.rev
          in
          List.iter (fun (e : sse_event) -> last_seq := max !last_seq e.seq) fresh;
          (fresh, h.hub_closed))
    in
    List.iter
      (fun e ->
        if !alive then begin
          send (Sse.frame ~event:e.ev_name e.ev_data);
          last_write := Unix.gettimeofday ()
        end)
      fresh;
    if closed then begin
      if !alive then send (Sse.comment "bye");
      alive := false
    end
    else if !alive && Unix.gettimeofday () -. !last_write >= t.sse_heartbeat_s then begin
      incr hb_n;
      send (Sse.heartbeat !hb_n);
      last_write := Unix.gettimeofday ()
    end
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.protect h.hm (fun () -> h.subscribers <- h.subscribers - 1)

(* Condition has no timed wait: a low-rate broadcast wakes idle
   subscriber threads so they can emit keep-alive heartbeats and notice
   shutdown promptly. Exits once the hub closes. *)
let ticker_loop t =
  let h = t.hub in
  let stop = ref false in
  while not !stop do
    Thread.delay 0.25;
    Mutex.protect h.hm (fun () ->
        if h.hub_closed then stop := true;
        Condition.broadcast h.hc)
  done

let serve_connection t fd : [ `Close | `Detached ] =
  t.metrics.connections <- t.metrics.connections + 1;
  let r = Http.Reader.of_fd fd in
  let closing = ref false in
  let detached = ref false in
  (* a worker must not hang forever on a half-sent request *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0 with Unix.Unix_error _ -> ());
  while not !closing do
    if not (wait_readable t fd r) then closing := true
    else begin
      let send s =
        try write_all fd s
        with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          t.metrics.epipe <- t.metrics.epipe + 1;
          closing := true
      in
      match Http.parse_request r with
      | None -> closing := true
      | exception Http.Bad_request m ->
          send (Http.response ~status:400 ~keep_alive:false (m ^ "\n"));
          closing := true
      | exception Http.Too_large m ->
          send (Http.response ~status:431 ~keep_alive:false (m ^ "\n"));
          closing := true
      | exception Http.Payload_too_large m ->
          send (Http.response ~status:413 ~keep_alive:false (m ^ "\n"));
          closing := true
      | exception Unix.Unix_error _ ->
          (* peer reset / receive timeout mid-request *)
          t.metrics.epipe <- t.metrics.epipe + 1;
          closing := true
      | Some req when req.Http.meth = "GET" && req.Http.path = "/watch" ->
          (* detach: the streaming thread owns the socket from here on *)
          let start_us = Obs.now_us () in
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.0 with Unix.Unix_error _ -> ());
          let th = Thread.create (fun () -> sse_loop t fd) () in
          Mutex.protect t.hub.hm (fun () ->
              t.hub.sse_threads <- th :: t.hub.sse_threads);
          record_request t req ~status:200 ~start_us;
          detached := true;
          closing := true
      | Some req ->
          let start_us = Obs.now_us () in
          let reply = safe_handle t req in
          let keep_alive =
            (not t.stopping)
            && (match Http.header req "connection" with
               | Some v -> String.lowercase_ascii v <> "close"
               | None -> req.Http.version = "HTTP/1.1")
          in
          send
            (Http.response ~status:reply.status ~content_type:reply.content_type
               ~extra:reply.extra ~keep_alive reply.body);
          record_request t req ~status:reply.status ~start_us;
          if not keep_alive then closing := true
    end
  done;
  if !detached then `Detached else `Close

(* ------------------------------------------------------------------ *)
(* The accept loop and the worker pool                                  *)
(* ------------------------------------------------------------------ *)

let worker t =
  let rec loop () =
    Mutex.lock t.qm;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.qc t.qm
    done;
    let item = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.qm;
    match item with
    | None -> ()
    | Some fd ->
        (match serve_connection t fd with
        | `Detached -> () (* a /watch streaming thread owns the fd now *)
        | `Close -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | exception _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()));
        loop ()
  in
  loop ()

let accept_loop t =
  let rec loop () =
    match Unix.select [ t.listen_fd; t.stop_rd ] [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
        if List.mem t.stop_rd readable then () (* shutdown requested *)
        else begin
          (if List.mem t.listen_fd readable then
             match Unix.accept t.listen_fd with
             | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
             | fd, _ ->
                 Mutex.lock t.qm;
                 if Queue.length t.queue >= t.queue_limit then begin
                   Mutex.unlock t.qm;
                   t.metrics.dropped_busy <- t.metrics.dropped_busy + 1;
                   (try
                      write_all fd
                        (Http.response ~status:503 ~keep_alive:false "server busy\n")
                    with Unix.Unix_error _ -> ());
                   try Unix.close fd with Unix.Unix_error _ -> ()
                 end
                 else begin
                   Queue.add fd t.queue;
                   Condition.signal t.qc;
                   Mutex.unlock t.qm
                 end);
          loop ()
        end
  in
  loop ();
  (* wake every worker: drain what was already accepted, then exit *)
  Mutex.lock t.qm;
  t.stopping <- true;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> raise (Db.Db_error ("cannot resolve host " ^ host)))

let start ?(host = "127.0.0.1") ?(port = 0) ?(threads = 4) ?(queue_limit = 64)
    ?(sse_heartbeat_s = 15.0) ~db_dir () : t =
  ignore_sigpipe ();
  let db = Db.load db_dir in
  (* fails loudly on a non-database before any socket exists *)
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd (Unix.ADDR_INET (resolve host, port));
      Unix.listen listen_fd 128;
      let port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let stop_rd, stop_wr = Unix.pipe () in
      Unix.set_nonblock stop_wr;
      {
        db_dir;
        host;
        port;
        listen_fd;
        stop_rd;
        stop_wr;
        queue = Queue.create ();
        queue_limit = max 1 queue_limit;
        qm = Mutex.create ();
        qc = Condition.create ();
        stopping = false;
        workers = [];
        acceptor = None;
        db_m = Mutex.create ();
        db;
        cache = Hashtbl.create 8;
        metrics =
          {
            mm = Mutex.create ();
            requests = Hashtbl.create 16;
            statuses = Hashtbl.create 8;
            latency = Hashtbl.create 16;
            connections = 0;
            ingested = 0;
            epipe = 0;
            dropped_busy = 0;
            cache_hits = 0;
            cache_misses = 0;
            sse_events = 0;
            sse_dropped = 0;
          };
        hub = hub_create ();
        producers = Hashtbl.create 8;
        sse_heartbeat_s = max 0.5 sse_heartbeat_s;
        ticker = None;
      }
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  t.workers <- List.init (max 1 threads) (fun _ -> Thread.create worker t);
  t.acceptor <- Some (Thread.create accept_loop t);
  t.ticker <- Some (Thread.create ticker_loop t);
  t

(** Async-signal-safe shutdown request: one byte down the self-pipe. The
    accept loop notices, stops accepting, and flips the pool into drain
    mode. Safe to call from a signal handler or any thread, repeatedly. *)
let request_stop t =
  try ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1)
  with Unix.Unix_error _ -> ()

let join_and_cleanup t =
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  List.iter Thread.join t.workers;
  (* the workers are gone, so no new /watch subscriber can appear: close
     the hub and wait for every streaming thread to say goodbye *)
  hub_close t.hub;
  (match t.ticker with Some th -> Thread.join th | None -> ());
  List.iter Thread.join (Mutex.protect t.hub.hm (fun () -> t.hub.sse_threads));
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.listen_fd; t.stop_rd; t.stop_wr ]

let stop t =
  request_stop t;
  join_and_cleanup t

let run ?host ?port ?threads ?queue_limit ~db_dir () =
  let t = start ?host ?port ?threads ?queue_limit ~db_dir () in
  let on_signal _ = request_stop t in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  Printf.printf "sic serve: listening on http://%s:%d/ (db %s, %d threads)\n%!" t.host t.port
    db_dir (List.length t.workers);
  join_and_cleanup t;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  let m = t.metrics in
  Printf.printf "sic serve: %d connections, %d requests, %d runs ingested\n%!" m.connections
    (Hashtbl.fold (fun _ v acc -> acc + v) m.requests 0)
    m.ingested

(* ------------------------------------------------------------------ *)
(* The client                                                           *)
(* ------------------------------------------------------------------ *)

(** The matching HTTP client, over the same parser. One short-lived
    connection per {!call} (or an explicit keep-alive {!connect} /
    {!request} pair for hot paths); used by [sic campaign --push], the
    end-to-end tests, and the serve benchmark. *)
module Client = struct
  exception Error of string

  type response = {
    status : int;
    reason : string;
    headers : (string * string) list;
    body : string;
  }

  let header (r : response) name = List.assoc_opt (String.lowercase_ascii name) r.headers

  (** [parse_url "http://host:port/path?q"] -> (host, port, target). *)
  let parse_url url =
    let prefix = "http://" in
    let plen = String.length prefix in
    if String.length url < plen || String.sub url 0 plen <> prefix then
      raise (Error ("only http:// URLs are supported: " ^ url));
    let rest = String.sub url plen (String.length url - plen) in
    let hostport, target =
      match String.index_opt rest '/' with
      | None -> (rest, "/")
      | Some i -> (String.sub rest 0 i, String.sub rest i (String.length rest - i))
    in
    let host, port =
      match String.index_opt hostport ':' with
      | None -> (hostport, 80)
      | Some i -> (
          let h = String.sub hostport 0 i in
          let p = String.sub hostport (i + 1) (String.length hostport - i - 1) in
          match int_of_string_opt p with
          | Some p -> (h, p)
          | None -> raise (Error ("bad port in URL: " ^ url)))
    in
    if host = "" then raise (Error ("missing host in URL: " ^ url));
    (host, port, target)

  type conn = { fd : Unix.file_descr; rd : Http.Reader.t; chost : string; cport : int }

  let connect ~host ~port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
       Unix.connect fd (Unix.ADDR_INET (resolve host, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; rd = Http.Reader.of_fd fd; chost = host; cport = port }

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let read_response (c : conn) ~(meth : string) : response =
    match Http.read_line ~limit:Http.max_request_line c.rd with
    | None -> raise (Error "server closed the connection before responding")
    | Some line ->
        let status, reason =
          match String.split_on_char ' ' line with
          | version :: code :: rest
            when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
              match int_of_string_opt code with
              | Some s -> (s, String.concat " " rest)
              | None -> raise (Error ("bad status line: " ^ line)))
          | _ -> raise (Error ("bad status line: " ^ line))
        in
        let headers = Http.read_headers c.rd in
        let body =
          if status = 304 || status = 204 || meth = "HEAD" then ""
          else
            match List.assoc_opt "content-length" headers with
            | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n -> Http.read_exact c.rd n
                | None -> raise (Error ("bad content-length: " ^ v)))
            | None ->
                (* identity framing: read until the server closes *)
                let b = Buffer.create 4096 in
                let rec go () =
                  match Http.Reader.byte c.rd with
                  | Some ch ->
                      Buffer.add_char b ch;
                      go ()
                  | None -> Buffer.contents b
                in
                go ()
        in
        { status; reason; headers; body }

  let request (c : conn) ?(headers = []) ?(body = "") ~meth ~target () : response =
    let b = Buffer.create (String.length body + 256) in
    Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
    Buffer.add_string b (Printf.sprintf "host: %s:%d\r\n" c.chost c.cport);
    List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
    if body <> "" || meth = "POST" || meth = "PUT" then
      Buffer.add_string b (Printf.sprintf "content-length: %d\r\n" (String.length body));
    Buffer.add_string b "\r\n";
    Buffer.add_string b body;
    write_all c.fd (Buffer.contents b);
    read_response c ~meth

  let call ?(headers = []) ?(body = "") ~meth url : response =
    let host, port, target = parse_url url in
    let c = connect ~host ~port in
    Fun.protect
      ~finally:(fun () -> close c)
      (fun () -> request c ~headers ~body ~meth ~target ())

  let get ?(headers = []) url = call ~headers ~meth:"GET" url
  let post ?(headers = []) ~body url = call ~headers ~body ~meth:"POST" url

  (** Push one run's counts to a server's [/runs] — what
      [sic campaign --push URL] does for every run the campaign added.
      [url] is the server root (e.g. [http://host:8080]); metadata
      travels as query parameters, the body is the counts v1 text.
      [worker] tags the run with a producer id for the live dashboard. *)
  let push_run ?(worker = "") ~url ~design ~backend ~workload ~seed ~cycles
      (counts : Counts.t) : response =
    let url = if String.length url > 0 && url.[String.length url - 1] = '/'
      then String.sub url 0 (String.length url - 1) else url in
    let target =
      Printf.sprintf "%s/runs?design=%s&backend=%s&workload=%s&seed=%d&cycles=%d%s" url
        (Http.percent_encode design) (Http.percent_encode backend)
        (Http.percent_encode workload) seed cycles
        (if worker = "" then "" else "&worker=" ^ Http.percent_encode worker)
    in
    post ~body:(Counts.to_string counts) target

  (** Subscribe to the server's [GET /watch] SSE stream and feed every
      decoded event to [on_event] until it returns [false] or the server
      closes the stream (its graceful drain). Keep-alive comments are
      consumed silently; [url] is the server root. *)
  let watch ~(on_event : event:string -> data:string -> bool) url : unit =
    let host, port, _ = parse_url url in
    let c = connect ~host ~port in
    Fun.protect
      ~finally:(fun () -> close c)
      (fun () ->
        write_all c.fd
          (Printf.sprintf
             "GET /watch HTTP/1.1\r\nhost: %s:%d\r\naccept: text/event-stream\r\n\r\n" host
             port);
        (match Http.read_line ~limit:Http.max_request_line c.rd with
        | None -> raise (Error "server closed the connection before responding")
        | Some line -> (
            match String.split_on_char ' ' line with
            | _ :: "200" :: _ -> ()
            | _ -> raise (Error ("watch: unexpected response: " ^ line))));
        let _headers = Http.read_headers c.rd in
        let d = Sse.Decoder.create () in
        let continue_ = ref true in
        while !continue_ do
          match Http.read_line c.rd with
          | None -> continue_ := false
          | Some line -> (
              match Sse.Decoder.line d line with
              | Some (event, data) -> if not (on_event ~event ~data) then continue_ := false
              | None -> ())
          | exception Http.Bad_request _ -> continue_ := false
          | exception Unix.Unix_error _ -> continue_ := false
        done)
end
