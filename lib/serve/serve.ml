(** The coverage service: a dependency-free HTTP/1.1 server over a
    {!Sic_db.Db} database directory, plus the matching in-process client.

    The paper's common counts format means every producer — any simulator,
    the fuzzer, the BMC engine, an FPGA host, on any machine — reports the
    same [cover point -> count] map, and merging is trivial (§5.3). This
    module closes the distribution gap: remote producers [POST /runs]
    their counts files to one server, and everyone reads one merged
    [GET /report]. The wire format {e is} the on-disk format (the counts
    v1 interchange text), so a push is literally an upload of the file a
    local run would have written.

    Design constraints, in the repo's no-dependency style:

    - hand-rolled HTTP/1.1 over [Unix] sockets: request parser with
      hard limits on request line, header and body sizes, keep-alive
      responses with explicit [Content-Length] (never chunked);
    - a bounded accept queue feeding a fixed pool of worker threads —
      when the queue is full the server answers [503] immediately instead
      of accumulating unbounded connections;
    - responses that read the database ([/report], [/rank], ...) are
      cached and tagged with an ETag keyed on {!Db.manifest_stamp}, so
      hot report traffic on an unchanged database re-reads no counts
      files and conditional requests ([If-None-Match]) are answered
      [304] without a body;
    - writes go through {!Db.Lock}, so the server coexists with
      concurrent [sic db add] / [sic campaign] writers on the same
      directory;
    - [SIGPIPE] is ignored process-wide and [EPIPE]/[ECONNRESET] are
      per-connection errors: a client vanishing mid-request never kills
      the server;
    - graceful shutdown: SIGINT/SIGTERM (or {!stop}) stop the accept
      loop, drain queued connections, and join every worker. *)

module Counts = Sic_coverage.Counts
module Db = Sic_db.Db
module Json = Sic_obs.Json
module Obs = Sic_obs.Obs

(** Ignore SIGPIPE for the whole process so a write to a vanished peer
    (socket or pipe) raises [Unix_error (EPIPE, _, _)] — a per-connection
    condition the caller handles — instead of killing the process. Called
    by {!start}; [sic] also calls it at startup for the fleet pipes. *)
let ignore_sigpipe () =
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* HTTP/1.1, the small subset we speak                                  *)
(* ------------------------------------------------------------------ *)

module Http = struct
  exception Bad_request of string
  exception Too_large of string (* request line or headers: 431 *)
  exception Payload_too_large of string (* body: 413 *)

  let max_request_line = 8192
  let max_header_line = 8192
  let max_headers = 100
  let max_body = 16 * 1024 * 1024

  type request = {
    meth : string;
    target : string;  (** raw request target, e.g. ["/diff?a=r0001&b=r0002"] *)
    path : string;  (** decoded path component *)
    query : (string * string) list;  (** decoded query parameters *)
    version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
    headers : (string * string) list;  (** names lowercased *)
    body : string;
  }

  (** A buffered byte reader over any [read]-like function, so the parser
      is testable on strings and runs unchanged over sockets. *)
  module Reader = struct
    type t = {
      fill : bytes -> int -> int -> int;
      buf : Bytes.t;
      mutable pos : int;
      mutable len : int;
    }

    let create fill = { fill; buf = Bytes.create 8192; pos = 0; len = 0 }
    let of_fd fd = create (fun b off len -> Unix.read fd b off len)

    let of_string s =
      let consumed = ref 0 in
      create (fun b off len ->
          let n = min len (String.length s - !consumed) in
          Bytes.blit_string s !consumed b off n;
          consumed := !consumed + n;
          n)

    let buffered r = r.len - r.pos

    (* false at EOF *)
    let refill r =
      if r.pos < r.len then true
      else begin
        r.pos <- 0;
        r.len <- r.fill r.buf 0 (Bytes.length r.buf);
        r.len > 0
      end

    let byte r =
      if refill r then begin
        let c = Bytes.get r.buf r.pos in
        r.pos <- r.pos + 1;
        Some c
      end
      else None
  end

  (* one CRLF- (or bare-LF-) terminated line, without the terminator.
     [None] only on EOF before the first byte — a peer that closed
     between requests; EOF mid-line is a malformed request. *)
  let read_line ?(limit = max_header_line) (r : Reader.t) : string option =
    let b = Buffer.create 128 in
    let rec go () =
      match Reader.byte r with
      | None ->
          if Buffer.length b = 0 then None
          else raise (Bad_request "unexpected end of input inside a line")
      | Some '\n' ->
          let s = Buffer.contents b in
          let n = String.length s in
          Some (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
      | Some c ->
          if Buffer.length b >= limit then raise (Too_large "line too long");
          Buffer.add_char b c;
          go ()
    in
    go ()

  let read_exact (r : Reader.t) n : string =
    let out = Bytes.create n in
    let got = ref 0 in
    while !got < n do
      if not (Reader.refill r) then
        raise
          (Bad_request (Printf.sprintf "truncated body (%d of %d bytes)" !got n));
      let take = min (r.Reader.len - r.Reader.pos) (n - !got) in
      Bytes.blit r.Reader.buf r.Reader.pos out !got take;
      r.Reader.pos <- r.Reader.pos + take;
      got := !got + take
    done;
    Bytes.to_string out

  let hex_val c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None

  let percent_decode s =
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | '%' when !i + 2 < n -> (
          match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
          | Some h, Some l ->
              Buffer.add_char b (Char.chr ((h * 16) + l));
              i := !i + 2
          | _ -> Buffer.add_char b '%')
      | '+' -> Buffer.add_char b ' '
      | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b

  let percent_encode s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
            Buffer.add_char b c
        | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents b

  let parse_target target =
    match String.index_opt target '?' with
    | None -> (percent_decode target, [])
    | Some i ->
        let path = String.sub target 0 i in
        let q = String.sub target (i + 1) (String.length target - i - 1) in
        let params =
          String.split_on_char '&' q
          |> List.filter (fun kv -> kv <> "")
          |> List.map (fun kv ->
                 match String.index_opt kv '=' with
                 | None -> (percent_decode kv, "")
                 | Some j ->
                     ( percent_decode (String.sub kv 0 j),
                       percent_decode (String.sub kv (j + 1) (String.length kv - j - 1)) ))
        in
        (percent_decode path, params)

  let is_token s =
    s <> ""
    && String.for_all
         (function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' -> true | _ -> false)
         s

  let read_headers (r : Reader.t) : (string * string) list =
    let rec go acc n =
      if n > max_headers then raise (Too_large "too many headers");
      match read_line r with
      | None -> raise (Bad_request "unexpected end of input inside headers")
      | Some "" -> List.rev acc
      | Some line -> (
          match String.index_opt line ':' with
          | None | Some 0 -> raise (Bad_request ("malformed header line: " ^ line))
          | Some i ->
              let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
              let value =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              go ((name, value) :: acc) (n + 1))
    in
    go [] 0

  (** Parse one request off the reader. [None] on a clean EOF before the
      first byte (the peer closed an idle connection); raises
      {!Bad_request} / {!Too_large} / {!Payload_too_large} otherwise. *)
  let parse_request (r : Reader.t) : request option =
    match read_line ~limit:max_request_line r with
    | None -> None
    | Some line -> (
        match String.split_on_char ' ' line with
        | [ meth; target; version ]
          when is_token meth
               && target <> ""
               && (version = "HTTP/1.1" || version = "HTTP/1.0") ->
            let headers = read_headers r in
            let body =
              match List.assoc_opt "content-length" headers with
              | None -> ""
              | Some v -> (
                  match int_of_string_opt (String.trim v) with
                  | None -> raise (Bad_request ("bad content-length: " ^ v))
                  | Some n when n < 0 -> raise (Bad_request ("bad content-length: " ^ v))
                  | Some n when n > max_body ->
                      raise
                        (Payload_too_large
                           (Printf.sprintf "body of %d bytes exceeds the %d-byte limit" n
                              max_body))
                  | Some n -> read_exact r n)
            in
            let path, query = parse_target target in
            Some { meth; target; path; query; version; headers; body }
        | _ -> raise (Bad_request ("malformed request line: " ^ line)))

  let header (req : request) name = List.assoc_opt (String.lowercase_ascii name) req.headers

  let status_text = function
    | 200 -> "OK"
    | 201 -> "Created"
    | 304 -> "Not Modified"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | 413 -> "Content Too Large"
    | 431 -> "Request Header Fields Too Large"
    | 500 -> "Internal Server Error"
    | 503 -> "Service Unavailable"
    | _ -> "Status"

  (** Serialize one response. [304] carries headers but no body (and no
      [Content-Length]), per RFC 9110; everything else gets an explicit
      [Content-Length] so keep-alive needs no chunking. *)
  let response ~status ?(content_type = "text/plain; charset=utf-8") ?(extra = [])
      ?(keep_alive = true) (body : string) : string =
    let b = Buffer.create (String.length body + 256) in
    Buffer.add_string b (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
    Buffer.add_string b
      (if keep_alive then "connection: keep-alive\r\n" else "connection: close\r\n");
    List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) extra;
    if status <> 304 then begin
      Buffer.add_string b (Printf.sprintf "content-type: %s\r\n" content_type);
      Buffer.add_string b (Printf.sprintf "content-length: %d\r\n" (String.length body))
    end;
    Buffer.add_string b "\r\n";
    if status <> 304 then Buffer.add_string b body;
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Server state                                                         *)
(* ------------------------------------------------------------------ *)

type metrics = {
  mm : Mutex.t;
  requests : (string, int) Hashtbl.t;  (** "GET /report" -> count *)
  statuses : (int, int) Hashtbl.t;
  latency : Obs.Histogram.t;  (** per-request wall time, microseconds *)
  mutable connections : int;
  mutable ingested : int;  (** runs accepted by POST /runs *)
  mutable epipe : int;  (** peers that vanished mid-response *)
  mutable dropped_busy : int;  (** connections refused with 503 *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

type t = {
  db_dir : string;
  host : string;
  port : int;
  listen_fd : Unix.file_descr;
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  queue : Unix.file_descr Queue.t;
  queue_limit : int;
  qm : Mutex.t;
  qc : Condition.t;
  mutable stopping : bool;
  mutable workers : Thread.t list;
  mutable acceptor : Thread.t option;
  db_m : Mutex.t;  (** serializes DB access and the response cache *)
  mutable db : Db.t;
  cache : (string, string * string * string) Hashtbl.t;
      (** request target -> (etag, content type, body) *)
  metrics : metrics;
}

let port t = t.port

let flush_cache t =
  Mutex.protect t.db_m (fun () -> Hashtbl.reset t.cache)

(* a single recorder lock: Obs's internal lists are not thread-safe *)
let obs_m = Mutex.create ()

let write_all fd (s : string) =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Handlers                                                             *)
(* ------------------------------------------------------------------ *)

type reply = {
  status : int;
  content_type : string;
  extra : (string * string) list;
  body : string;
}

let text ?(extra = []) status body =
  { status; content_type = "text/plain; charset=utf-8"; extra; body }

let json ?(extra = []) status (j : Json.t) =
  { status; content_type = "application/json"; extra; body = Json.to_string j ^ "\n" }

let json_of_string_list l = Json.List (List.map (fun s -> Json.String s) l)

let report_json (db : Db.t) : string =
  let union = Db.union_counts db in
  let ok = List.length (Db.ok_runs db) and all = List.length (Db.runs db) in
  Json.to_string
    (Json.Obj
       [
         ("runs", Json.Int all);
         ("ok", Json.Int ok);
         ("failed", Json.Int (all - ok));
         ("points_total", Json.Int (Counts.total_points union));
         ("points_covered", Json.Int (Counts.covered_points union));
         ( "counts",
           Json.Obj (List.map (fun (n, c) -> (n, Json.Int c)) (Counts.to_sorted_list union))
         );
       ])
  ^ "\n"

let report_html (db : Db.t) : string =
  let timelines =
    List.filter_map
      (fun (r : Db.run) ->
        Option.map
          (fun tl -> (Printf.sprintf "%s %s/%s" r.Db.id r.Db.design r.Db.backend, tl))
          (Db.load_timeline db r))
      (Db.ok_runs db)
  in
  Sic_coverage.Html_report.render
    ~title:("coverage database " ^ Db.dir db)
    ~timelines (Db.union_counts db)

let runs_json (db : Db.t) : string =
  Json.to_string (Json.List (List.map Db.json_of_run (Db.runs db))) ^ "\n"

let diff_json (req : Http.request) (db : Db.t) : string =
  let param k =
    match List.assoc_opt k req.Http.query with
    | Some v when v <> "" -> v
    | _ ->
        raise
          (Http.Bad_request
             (Printf.sprintf "missing query parameter %s (GET /diff?a=RUN&b=RUN)" k))
  in
  let a = param "a" and b = param "b" in
  let d = Db.diff db ~before:a ~after:b in
  Json.to_string
    (Json.Obj
       [
         ("before", Json.String a);
         ("after", Json.String b);
         ("newly_covered", json_of_string_list d.Counts.newly_covered);
         ("lost", json_of_string_list d.Counts.lost);
         ("only_before", json_of_string_list d.Counts.only_before);
         ("only_after", json_of_string_list d.Counts.only_after);
       ])
  ^ "\n"

let index_body =
  String.concat "\n"
    [
      "sic serve: simulator-independent coverage over HTTP";
      "";
      "  POST /runs?design=&backend=&workload=&seed=&cycles=   ingest one counts file (v1 text)";
      "  GET  /report        merged coverage (union-max over runs) as JSON";
      "  GET  /report.html   merged coverage as a self-contained HTML page";
      "  GET  /runs          every recorded run, as JSON";
      "  GET  /rank          greedy set-cover run ranking (text)";
      "  GET  /timelines     per-run convergence sparklines (text)";
      "  GET  /diff?a=&b=    coverage diff between two runs, as JSON";
      "  GET  /metrics       server request counters and latency, as JSON";
      "  GET  /healthz       liveness probe";
      "";
      "GET responses that read the database carry an ETag; send If-None-Match";
      "to get 304 while the database is unchanged.";
      "";
    ]

(** Serve a database-reading GET through the cache. The ETag is the
    manifest stamp, re-checked against the disk on {e every} request, so
    external writers ([sic db add], another campaign) invalidate us
    automatically; a hit serves bytes from memory without touching any
    counts file. *)
let cached t (req : Http.request) ~content_type (render : Db.t -> string) : reply =
  let etag = Printf.sprintf "\"m%d\"" (Db.manifest_stamp t.db) in
  let if_none_match =
    match Http.header req "if-none-match" with
    | Some v -> List.exists (fun e -> String.trim e = etag || String.trim e = "*")
                  (String.split_on_char ',' v)
    | None -> false
  in
  if if_none_match then { status = 304; content_type; extra = [ ("etag", etag) ]; body = "" }
  else
    let body =
      Mutex.protect t.db_m (fun () ->
          match Hashtbl.find_opt t.cache req.Http.target with
          | Some (e, ct, body) when e = etag && ct = content_type ->
              t.metrics.cache_hits <- t.metrics.cache_hits + 1;
              body
          | _ ->
              t.metrics.cache_misses <- t.metrics.cache_misses + 1;
              let db = Db.load t.db_dir in
              t.db <- db;
              let body = render db in
              Hashtbl.replace t.cache req.Http.target (etag, content_type, body);
              body)
    in
    { status = 200; content_type; extra = [ ("etag", etag) ]; body }

let post_run t (req : Http.request) : reply =
  let str k default = Option.value ~default (List.assoc_opt k req.Http.query) in
  let int k default =
    match List.assoc_opt k req.Http.query with
    | None -> default
    | Some s -> (
        match int_of_string_opt s with
        | Some n -> n
        | None -> raise (Http.Bad_request (Printf.sprintf "query parameter %s is not an integer: %s" k s)))
  in
  let counts =
    try Counts.of_string req.Http.body
    with Counts.Bad_format m -> raise (Http.Bad_request ("bad counts payload: " ^ m))
  in
  let run =
    Mutex.protect t.db_m (fun () ->
        Db.Lock.with_lock t.db_dir (fun () ->
            (* reload under the lock: another process may have appended
               runs since we last looked, and ids are assigned in order *)
            let db = Db.load t.db_dir in
            let run =
              Db.add db ~design:(str "design" "unknown")
                ~backend:(str "backend" "external")
                ~workload:(str "workload" "external")
                ~seed:(int "seed" 0) ~cycles:(int "cycles" 0) (Ok counts)
            in
            t.db <- db;
            Hashtbl.reset t.cache;
            run))
  in
  t.metrics.ingested <- t.metrics.ingested + 1;
  json 201 (Db.json_of_run run)

let metrics_json t : reply =
  let m = t.metrics in
  Mutex.protect m.mm (fun () ->
      let table to_key tbl =
        Hashtbl.fold (fun k v acc -> (to_key k, Json.Int v) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let latency =
        if Obs.Histogram.count m.latency = 0 then Json.Null
        else
          Json.Obj
            [
              ("count", Json.Int (Obs.Histogram.count m.latency));
              ("mean_us", Json.Float (Obs.Histogram.mean m.latency));
              ("p50_us", Json.Float (Obs.Histogram.percentile m.latency 50.));
              ("p90_us", Json.Float (Obs.Histogram.percentile m.latency 90.));
              ("p99_us", Json.Float (Obs.Histogram.percentile m.latency 99.));
              ("max_us", Json.Float (Obs.Histogram.max_value m.latency));
            ]
      in
      json 200
        (Json.Obj
           [
             ("requests", Json.Obj (table Fun.id m.requests));
             ("statuses", Json.Obj (table string_of_int m.statuses));
             ("latency", latency);
             ("connections", Json.Int m.connections);
             ("ingested_runs", Json.Int m.ingested);
             ("epipe", Json.Int m.epipe);
             ("dropped_busy", Json.Int m.dropped_busy);
             ("cache_hits", Json.Int m.cache_hits);
             ("cache_misses", Json.Int m.cache_misses);
             ("db_stamp", Json.Int (Db.manifest_stamp t.db));
           ]))

let handle t (req : Http.request) : reply =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" -> text 200 "ok\n"
  | "GET", "/" -> text 200 index_body
  | "GET", "/metrics" -> metrics_json t
  | "POST", "/runs" -> post_run t req
  | "GET", "/runs" -> cached t req ~content_type:"application/json" runs_json
  | "GET", "/report" -> cached t req ~content_type:"application/json" report_json
  | "GET", "/report.html" -> cached t req ~content_type:"text/html; charset=utf-8" report_html
  | "GET", "/rank" ->
      cached t req ~content_type:"text/plain; charset=utf-8" (fun db -> Db.render_rank db)
  | "GET", "/timelines" ->
      cached t req ~content_type:"text/plain; charset=utf-8" Db.render_timelines
  | "GET", "/diff" -> (
      try cached t req ~content_type:"application/json" (diff_json req)
      with Db.Db_error m -> text 404 (m ^ "\n"))
  | ("GET" | "POST"), path -> text 404 (Printf.sprintf "no such endpoint: %s\n" path)
  | meth, _ -> text 405 (Printf.sprintf "method %s not supported\n" meth)

(** [handle] plus the 4xx/5xx mapping: parser and payload errors are the
    client's fault, lock timeouts mean "retry later", anything else that
    escapes is a 500 — never a dead worker. *)
let safe_handle t (req : Http.request) : reply =
  try handle t req with
  | Http.Bad_request m -> text 400 (m ^ "\n")
  | Http.Payload_too_large m -> text 413 (m ^ "\n")
  | Db.Db_error m when String.length m >= 9 && String.sub m 0 9 = "timed out" ->
      text 503 (m ^ "\n")
  | Db.Db_error m -> text 500 ("database error: " ^ m ^ "\n")
  | Counts.Bad_format m -> text 400 ("bad counts payload: " ^ m ^ "\n")
  | e -> text 500 ("internal error: " ^ Printexc.to_string e ^ "\n")

(* ------------------------------------------------------------------ *)
(* Connection handling                                                  *)
(* ------------------------------------------------------------------ *)

let record_request t (req : Http.request) ~status ~start_us =
  let dur_us = Obs.now_us () -. start_us in
  let m = t.metrics in
  Mutex.protect m.mm (fun () ->
      let key = req.Http.meth ^ " " ^ req.Http.path in
      Hashtbl.replace m.requests key
        (1 + Option.value ~default:0 (Hashtbl.find_opt m.requests key));
      Hashtbl.replace m.statuses status
        (1 + Option.value ~default:0 (Hashtbl.find_opt m.statuses status));
      Obs.Histogram.add m.latency dur_us);
  if Obs.on () then
    Mutex.protect obs_m (fun () ->
        Obs.record_span ~name:"serve.request" ~start_us ~dur_us
          [
            ("method", Obs.Str req.Http.meth);
            ("path", Obs.Str req.Http.path);
            ("status", Obs.Int status);
          ];
        Obs.count "serve.requests")

(* Wait until the connection has bytes to read. False = give up (peer
   idle too long, or the server is stopping), true = the reader either
   has buffered bytes or the socket is readable. *)
let wait_readable t fd (r : Http.Reader.t) : bool =
  let idle_limit = 10.0 in
  let waited = ref 0.0 in
  let result = ref None in
  while !result = None do
    if Http.Reader.buffered r > 0 then result := Some true
    else if t.stopping then result := Some false
    else if !waited >= idle_limit then result := Some false
    else begin
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> waited := !waited +. 0.25
      | _ :: _, _, _ -> result := Some true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  Option.get !result

let serve_connection t fd =
  t.metrics.connections <- t.metrics.connections + 1;
  let r = Http.Reader.of_fd fd in
  let closing = ref false in
  (* a worker must not hang forever on a half-sent request *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0 with Unix.Unix_error _ -> ());
  while not !closing do
    if not (wait_readable t fd r) then closing := true
    else begin
      let send s =
        try write_all fd s
        with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          t.metrics.epipe <- t.metrics.epipe + 1;
          closing := true
      in
      match Http.parse_request r with
      | None -> closing := true
      | exception Http.Bad_request m ->
          send (Http.response ~status:400 ~keep_alive:false (m ^ "\n"));
          closing := true
      | exception Http.Too_large m ->
          send (Http.response ~status:431 ~keep_alive:false (m ^ "\n"));
          closing := true
      | exception Http.Payload_too_large m ->
          send (Http.response ~status:413 ~keep_alive:false (m ^ "\n"));
          closing := true
      | exception Unix.Unix_error _ ->
          (* peer reset / receive timeout mid-request *)
          t.metrics.epipe <- t.metrics.epipe + 1;
          closing := true
      | Some req ->
          let start_us = Obs.now_us () in
          let reply = safe_handle t req in
          let keep_alive =
            (not t.stopping)
            && (match Http.header req "connection" with
               | Some v -> String.lowercase_ascii v <> "close"
               | None -> req.Http.version = "HTTP/1.1")
          in
          send
            (Http.response ~status:reply.status ~content_type:reply.content_type
               ~extra:reply.extra ~keep_alive reply.body);
          record_request t req ~status:reply.status ~start_us;
          if not keep_alive then closing := true
    end
  done

(* ------------------------------------------------------------------ *)
(* The accept loop and the worker pool                                  *)
(* ------------------------------------------------------------------ *)

let worker t =
  let rec loop () =
    Mutex.lock t.qm;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.qc t.qm
    done;
    let item = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.qm;
    match item with
    | None -> ()
    | Some fd ->
        (try serve_connection t fd with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        loop ()
  in
  loop ()

let accept_loop t =
  let rec loop () =
    match Unix.select [ t.listen_fd; t.stop_rd ] [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
        if List.mem t.stop_rd readable then () (* shutdown requested *)
        else begin
          (if List.mem t.listen_fd readable then
             match Unix.accept t.listen_fd with
             | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
             | fd, _ ->
                 Mutex.lock t.qm;
                 if Queue.length t.queue >= t.queue_limit then begin
                   Mutex.unlock t.qm;
                   t.metrics.dropped_busy <- t.metrics.dropped_busy + 1;
                   (try
                      write_all fd
                        (Http.response ~status:503 ~keep_alive:false "server busy\n")
                    with Unix.Unix_error _ -> ());
                   try Unix.close fd with Unix.Unix_error _ -> ()
                 end
                 else begin
                   Queue.add fd t.queue;
                   Condition.signal t.qc;
                   Mutex.unlock t.qm
                 end);
          loop ()
        end
  in
  loop ();
  (* wake every worker: drain what was already accepted, then exit *)
  Mutex.lock t.qm;
  t.stopping <- true;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> raise (Db.Db_error ("cannot resolve host " ^ host)))

let start ?(host = "127.0.0.1") ?(port = 0) ?(threads = 4) ?(queue_limit = 64) ~db_dir () : t
    =
  ignore_sigpipe ();
  let db = Db.load db_dir in
  (* fails loudly on a non-database before any socket exists *)
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd (Unix.ADDR_INET (resolve host, port));
      Unix.listen listen_fd 128;
      let port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let stop_rd, stop_wr = Unix.pipe () in
      Unix.set_nonblock stop_wr;
      {
        db_dir;
        host;
        port;
        listen_fd;
        stop_rd;
        stop_wr;
        queue = Queue.create ();
        queue_limit = max 1 queue_limit;
        qm = Mutex.create ();
        qc = Condition.create ();
        stopping = false;
        workers = [];
        acceptor = None;
        db_m = Mutex.create ();
        db;
        cache = Hashtbl.create 8;
        metrics =
          {
            mm = Mutex.create ();
            requests = Hashtbl.create 16;
            statuses = Hashtbl.create 8;
            latency = Obs.Histogram.create ();
            connections = 0;
            ingested = 0;
            epipe = 0;
            dropped_busy = 0;
            cache_hits = 0;
            cache_misses = 0;
          };
      }
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  t.workers <- List.init (max 1 threads) (fun _ -> Thread.create worker t);
  t.acceptor <- Some (Thread.create accept_loop t);
  t

(** Async-signal-safe shutdown request: one byte down the self-pipe. The
    accept loop notices, stops accepting, and flips the pool into drain
    mode. Safe to call from a signal handler or any thread, repeatedly. *)
let request_stop t =
  try ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1)
  with Unix.Unix_error _ -> ()

let join_and_cleanup t =
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  List.iter Thread.join t.workers;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.listen_fd; t.stop_rd; t.stop_wr ]

let stop t =
  request_stop t;
  join_and_cleanup t

let run ?host ?port ?threads ?queue_limit ~db_dir () =
  let t = start ?host ?port ?threads ?queue_limit ~db_dir () in
  let on_signal _ = request_stop t in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  Printf.printf "sic serve: listening on http://%s:%d/ (db %s, %d threads)\n%!" t.host t.port
    db_dir (List.length t.workers);
  join_and_cleanup t;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  let m = t.metrics in
  Printf.printf "sic serve: %d connections, %d requests, %d runs ingested\n%!" m.connections
    (Hashtbl.fold (fun _ v acc -> acc + v) m.requests 0)
    m.ingested

(* ------------------------------------------------------------------ *)
(* The client                                                           *)
(* ------------------------------------------------------------------ *)

(** The matching HTTP client, over the same parser. One short-lived
    connection per {!call} (or an explicit keep-alive {!connect} /
    {!request} pair for hot paths); used by [sic campaign --push], the
    end-to-end tests, and the serve benchmark. *)
module Client = struct
  exception Error of string

  type response = {
    status : int;
    reason : string;
    headers : (string * string) list;
    body : string;
  }

  let header (r : response) name = List.assoc_opt (String.lowercase_ascii name) r.headers

  (** [parse_url "http://host:port/path?q"] -> (host, port, target). *)
  let parse_url url =
    let prefix = "http://" in
    let plen = String.length prefix in
    if String.length url < plen || String.sub url 0 plen <> prefix then
      raise (Error ("only http:// URLs are supported: " ^ url));
    let rest = String.sub url plen (String.length url - plen) in
    let hostport, target =
      match String.index_opt rest '/' with
      | None -> (rest, "/")
      | Some i -> (String.sub rest 0 i, String.sub rest i (String.length rest - i))
    in
    let host, port =
      match String.index_opt hostport ':' with
      | None -> (hostport, 80)
      | Some i -> (
          let h = String.sub hostport 0 i in
          let p = String.sub hostport (i + 1) (String.length hostport - i - 1) in
          match int_of_string_opt p with
          | Some p -> (h, p)
          | None -> raise (Error ("bad port in URL: " ^ url)))
    in
    if host = "" then raise (Error ("missing host in URL: " ^ url));
    (host, port, target)

  type conn = { fd : Unix.file_descr; rd : Http.Reader.t; chost : string; cport : int }

  let connect ~host ~port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
       Unix.connect fd (Unix.ADDR_INET (resolve host, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; rd = Http.Reader.of_fd fd; chost = host; cport = port }

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let read_response (c : conn) ~(meth : string) : response =
    match Http.read_line ~limit:Http.max_request_line c.rd with
    | None -> raise (Error "server closed the connection before responding")
    | Some line ->
        let status, reason =
          match String.split_on_char ' ' line with
          | version :: code :: rest
            when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
              match int_of_string_opt code with
              | Some s -> (s, String.concat " " rest)
              | None -> raise (Error ("bad status line: " ^ line)))
          | _ -> raise (Error ("bad status line: " ^ line))
        in
        let headers = Http.read_headers c.rd in
        let body =
          if status = 304 || status = 204 || meth = "HEAD" then ""
          else
            match List.assoc_opt "content-length" headers with
            | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n -> Http.read_exact c.rd n
                | None -> raise (Error ("bad content-length: " ^ v)))
            | None ->
                (* identity framing: read until the server closes *)
                let b = Buffer.create 4096 in
                let rec go () =
                  match Http.Reader.byte c.rd with
                  | Some ch ->
                      Buffer.add_char b ch;
                      go ()
                  | None -> Buffer.contents b
                in
                go ()
        in
        { status; reason; headers; body }

  let request (c : conn) ?(headers = []) ?(body = "") ~meth ~target () : response =
    let b = Buffer.create (String.length body + 256) in
    Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
    Buffer.add_string b (Printf.sprintf "host: %s:%d\r\n" c.chost c.cport);
    List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
    if body <> "" || meth = "POST" || meth = "PUT" then
      Buffer.add_string b (Printf.sprintf "content-length: %d\r\n" (String.length body));
    Buffer.add_string b "\r\n";
    Buffer.add_string b body;
    write_all c.fd (Buffer.contents b);
    read_response c ~meth

  let call ?(headers = []) ?(body = "") ~meth url : response =
    let host, port, target = parse_url url in
    let c = connect ~host ~port in
    Fun.protect
      ~finally:(fun () -> close c)
      (fun () -> request c ~headers ~body ~meth ~target ())

  let get ?(headers = []) url = call ~headers ~meth:"GET" url
  let post ?(headers = []) ~body url = call ~headers ~body ~meth:"POST" url

  (** Push one run's counts to a server's [/runs] — what
      [sic campaign --push URL] does for every run the campaign added.
      [url] is the server root (e.g. [http://host:8080]); metadata
      travels as query parameters, the body is the counts v1 text. *)
  let push_run ~url ~design ~backend ~workload ~seed ~cycles (counts : Counts.t) : response
      =
    let url = if String.length url > 0 && url.[String.length url - 1] = '/'
      then String.sub url 0 (String.length url - 1) else url in
    let target =
      Printf.sprintf "%s/runs?design=%s&backend=%s&workload=%s&seed=%d&cycles=%d" url
        (Http.percent_encode design) (Http.percent_encode backend)
        (Http.percent_encode workload) seed cycles
    in
    post ~body:(Counts.to_string counts) target
end
