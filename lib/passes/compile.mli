(** Canonical pass pipelines. Coverage instrumentation hooks at two
    points, as in the paper: line coverage before when-lowering (§4.1);
    toggle/FSM/ready-valid/mux on the optimized low form (§4.2-4.4). *)

open Sic_ir

val frontend : Pass.t list
val to_low_form : Pass.t list

val lower : Circuit.t -> Circuit.t
(** check → lower-whens → inline → const-prop → dce. *)

val lower_with : ?high:Pass.t list -> ?low:Pass.t list -> Circuit.t -> Circuit.t
(** Interleave instrumentation passes with the standard pipeline. *)

val is_low_form : Circuit.t -> bool
(** Single module, no whens, no instances — what backends consume. *)
