(** Dead code elimination on flat, lowered modules. Roots are output-port
    connects, cover / cover-values / stop / printf statements and
    [Dont_touch]-annotated signals; everything not transitively reachable
    from a root is removed. Memories are kept whole if any read port's
    data is live (their write ports then stay live too). *)

open Sic_ir

let pass_name = "dce"

(* Memory port fields are [<mem>.<port>.<field>] with field in
   {addr, data, en}; the mem name itself may contain dots after inlining
   ("core.icache.mem"), so strip the last two segments. *)
let mem_of_port name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i -> (
      let prefix = String.sub name 0 i in
      match String.rindex_opt prefix '.' with
      | None -> None
      | Some j -> Some (String.sub prefix 0 j))

let optimize_module (annos : Annotation.t list) (m : Circuit.modul) : Circuit.modul =
  let dont_touch = Annotation.dont_touch_of ~module_name:m.Circuit.module_name annos in
  (* index the single driving connect of every sink, node exprs, reg info *)
  let driver : (string, Expr.t) Hashtbl.t = Hashtbl.create 64 in
  let node_expr : (string, Expr.t) Hashtbl.t = Hashtbl.create 64 in
  let regs : (string, (Expr.t * Expr.t) option) Hashtbl.t = Hashtbl.create 16 in
  let mems : (string, Stmt.mem) Hashtbl.t = Hashtbl.create 8 in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Connect { loc; expr; _ } -> Hashtbl.replace driver loc expr
      | Stmt.Node { name; expr; _ } -> Hashtbl.replace node_expr name expr
      | Stmt.Reg { name; reset; _ } -> Hashtbl.replace regs name reset
      | Stmt.Mem { mem; _ } -> Hashtbl.replace mems mem.Stmt.mem_name mem
      | Stmt.Wire _ | Stmt.Inst _ | Stmt.When _ | Stmt.Cover _ | Stmt.CoverValues _
      | Stmt.Stop _ | Stmt.Print _ -> ())
    m.Circuit.body;
  let live : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let mark n =
    if not (Hashtbl.mem live n) then begin
      Hashtbl.replace live n ();
      Queue.add n queue
    end
  in
  let mark_expr e = List.iter mark (Expr.references e) in
  (* roots *)
  List.iter
    (fun (p : Circuit.port) ->
      match p.Circuit.dir with
      | Circuit.Output -> mark p.Circuit.port_name
      | Circuit.Input -> ())
    m.Circuit.ports;
  List.iter mark dont_touch;
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Cover { pred; _ } -> mark_expr pred
      | Stmt.CoverValues { signal; en; _ } ->
          mark_expr signal;
          mark_expr en
      | Stmt.Stop { cond; _ } -> mark_expr cond
      | Stmt.Print { cond; args; _ } ->
          mark_expr cond;
          List.iter mark_expr args
      | Stmt.Node _ | Stmt.Wire _ | Stmt.Reg _ | Stmt.Mem _ | Stmt.Inst _
      | Stmt.Connect _ | Stmt.When _ -> ())
    m.Circuit.body;
  (* propagate *)
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    (match Hashtbl.find_opt driver n with Some e -> mark_expr e | None -> ());
    (match Hashtbl.find_opt node_expr n with Some e -> mark_expr e | None -> ());
    (match Hashtbl.find_opt regs n with
    | Some (Some (r, i)) ->
        mark_expr r;
        mark_expr i
    | Some None | None -> ());
    (* a live memory read-port datum keeps its address and, transitively,
       every write port of that memory alive *)
    match mem_of_port n with
    | Some mname -> (
        match Hashtbl.find_opt mems mname with
        | Some mem ->
            if Filename.check_suffix n ".data" then begin
              let port = Filename.chop_suffix n ".data" in
              mark (port ^ ".addr");
              List.iter
                (fun { Stmt.wp_name } ->
                  mark (mname ^ "." ^ wp_name ^ ".addr");
                  mark (mname ^ "." ^ wp_name ^ ".data");
                  mark (mname ^ "." ^ wp_name ^ ".en"))
                mem.Stmt.mem_writers
            end
        | None -> ())
    | None -> ()
  done;
  let live_name n = Hashtbl.mem live n in
  let body =
    List.filter
      (fun (s : Stmt.t) ->
        match s with
        | Stmt.Node { name; _ } | Stmt.Wire { name; _ } | Stmt.Reg { name; _ } ->
            live_name name
        | Stmt.Connect { loc; _ } -> live_name loc
        | Stmt.Mem { mem; _ } ->
            List.exists
              (fun { Stmt.rp_name } -> live_name (mem.Stmt.mem_name ^ "." ^ rp_name ^ ".data"))
              mem.Stmt.mem_readers
        | Stmt.Inst _ | Stmt.When _ | Stmt.Cover _ | Stmt.CoverValues _ | Stmt.Stop _
        | Stmt.Print _ -> true)
      m.Circuit.body
  in
  { m with Circuit.body }

let run (c : Circuit.t) =
  { c with Circuit.modules = List.map (optimize_module c.Circuit.annotations) c.Circuit.modules }

let pass = Pass.make pass_name run
