(** Global alias analysis (§4.2): groups of signals guaranteed to always
    carry the same value. On a flat, lowered circuit two signals alias when
    one is driven by a plain reference to the other (node aliases, wire
    connects, and — via inlining — cross-module port connections such as a
    global reset fanned out to every submodule). The toggle-coverage pass
    instruments one representative per group. *)

open Sic_ir

let _pass_name = "alias-analysis"

module Uf = struct
  (* union-find over names *)
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find (t : t) x =
    match Hashtbl.find_opt t x with
    | None -> x
    | Some p ->
        let r = find t p in
        if r <> p then Hashtbl.replace t x r;
        r

  let union (t : t) a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t rb ra
end

type groups = (string * string list) list
(** representative, members (including the representative) *)

(** Compute alias groups for the main module of a flat, lowered circuit.
    The representative is the lexicographically smallest, then shortest,
    member — stable across runs. *)
let analyze (c : Circuit.t) : groups =
  let m = Circuit.main c in
  let uf = Uf.create () in
  (* [Connect reg, Ref x] means reg takes x's value *next* cycle — never an
     alias. Collect register names first so those unions are skipped. *)
  let regs = Hashtbl.create 16 in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Reg { name; _ } -> Hashtbl.replace regs name ()
      | _ -> ())
    m.Circuit.body;
  let members : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let note n = Hashtbl.replace members n () in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Node { name; expr = Expr.Ref other; _ } ->
          note name;
          note other;
          Uf.union uf name other
      | Stmt.Connect { loc = name; expr = Expr.Ref other; _ }
        when not (Hashtbl.mem regs name) ->
          note name;
          note other;
          Uf.union uf name other
      | Stmt.Node _ | Stmt.Wire _ | Stmt.Reg _ | Stmt.Mem _ | Stmt.Inst _
      | Stmt.Connect _ | Stmt.When _ | Stmt.Cover _ | Stmt.CoverValues _
      | Stmt.Stop _ | Stmt.Print _ -> ())
    m.Circuit.body;
  let buckets : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun n () ->
      let r = Uf.find uf n in
      let cur = Option.value ~default:[] (Hashtbl.find_opt buckets r) in
      Hashtbl.replace buckets r (n :: cur))
    members;
  Hashtbl.fold
    (fun _ group acc ->
      match group with
      | [] | [ _ ] -> acc (* singletons are not interesting *)
      | _ ->
          let sorted =
            List.sort
              (fun a b ->
                match compare (String.length a) (String.length b) with
                | 0 -> String.compare a b
                | c -> c)
              group
          in
          (List.hd sorted, sorted) :: acc)
    buckets []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** [representative groups name] is the signal that stands in for [name]'s
    group ([name] itself when un-aliased). *)
let representative (groups : groups) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (rep, ms) -> List.iter (fun m -> Hashtbl.replace tbl m rep) ms)
    groups;
  fun name -> Option.value ~default:name (Hashtbl.find_opt tbl name)
