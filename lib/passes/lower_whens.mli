(** Expand [when] blocks into multiplexed final connects (firrtl's
    ExpandWhens) — the lowering of Figure 2 that turns branch conditions
    into explicit enables, which is why line coverage instruments *before*
    this pass. After it, each driven sink has exactly one connect and
    side-effect statements carry their path predicate. *)

val pass_name : string
val lower_module : Sic_ir.Circuit.modul -> Sic_ir.Circuit.modul
val run : Sic_ir.Circuit.t -> Sic_ir.Circuit.t
val pass : Pass.t
