(** Well-formedness checking: resolves every reference, type-checks every
    expression, verifies connect compatibility and the uniqueness of cover
    names within each module. Run first in every pipeline so later passes
    may assume a sane circuit. *)

open Sic_ir

let pass_name = "check"

let error fmt = Pass.error ~pass:pass_name fmt

let check_module (c : Circuit.t) (m : Circuit.modul) =
  let env = Circuit.build_env ~resolve_inst:(Circuit.find_module c) m in
  let lookup = Circuit.lookup_of env in
  let covers = Hashtbl.create 16 in
  let sinks = Hashtbl.create 16 in
  (* a name may be connected if it is an output port, wire, reg, mem port
     field, or an instance's input port *)
  List.iter
    (fun p ->
      match p.Circuit.dir with
      | Circuit.Output -> Hashtbl.replace sinks p.Circuit.port_name ()
      | Circuit.Input -> ())
    m.Circuit.ports;
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Wire { name; _ } | Stmt.Reg { name; _ } -> Hashtbl.replace sinks name ()
      | Stmt.Mem { mem; _ } ->
          List.iter
            (fun { Stmt.rp_name } ->
              Hashtbl.replace sinks (mem.Stmt.mem_name ^ "." ^ rp_name ^ ".addr") ())
            mem.Stmt.mem_readers;
          List.iter
            (fun { Stmt.wp_name } ->
              List.iter
                (fun f -> Hashtbl.replace sinks (mem.Stmt.mem_name ^ "." ^ wp_name ^ "." ^ f) ())
                [ "addr"; "data"; "en" ])
            mem.Stmt.mem_writers
      | Stmt.Inst { name; module_name; _ } ->
          let child = Circuit.find_module c module_name in
          List.iter
            (fun p ->
              match p.Circuit.dir with
              | Circuit.Input -> Hashtbl.replace sinks (name ^ "." ^ p.Circuit.port_name) ()
              | Circuit.Output -> ())
            child.Circuit.ports
      | Stmt.Node _ | Stmt.Connect _ | Stmt.When _ | Stmt.Cover _
      | Stmt.CoverValues _ | Stmt.Stop _ | Stmt.Print _ -> ())
    m.Circuit.body;
  let check_bool ctx e =
    match Expr.type_of lookup e with
    | Ty.UInt 1 -> ()
    | t ->
        error "in %s.%s: expected UInt<1>, got %s" m.Circuit.module_name ctx
          (Ty.to_string t)
  in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Node { expr; _ } -> ignore (Expr.type_of lookup expr)
      | Stmt.Connect { loc; expr; info } ->
          if not (Hashtbl.mem sinks loc) then
            error "in %s%s: %s is not connectable" m.Circuit.module_name
              (Info.to_string info) loc;
          let tl = lookup loc and te = Expr.type_of lookup expr in
          if not (Ty.equal tl te) && tl <> Ty.Clock then
            error "in %s%s: connect %s : %s from %s" m.Circuit.module_name
              (Info.to_string info) loc (Ty.to_string tl) (Ty.to_string te)
      | Stmt.When { cond; _ } -> check_bool "when condition" cond
      | Stmt.Cover { name; pred; _ } ->
          if Hashtbl.mem covers name then
            error "duplicate cover name %s in module %s" name m.Circuit.module_name;
          Hashtbl.replace covers name ();
          check_bool (Printf.sprintf "cover %s" name) pred
      | Stmt.CoverValues { name; signal; _ } ->
          if Hashtbl.mem covers name then
            error "duplicate cover name %s in module %s" name m.Circuit.module_name;
          Hashtbl.replace covers name ();
          ignore (Expr.type_of lookup signal)
      | Stmt.Stop { cond; _ } -> check_bool "stop condition" cond
      | Stmt.Print { cond; args; _ } ->
          check_bool "printf condition" cond;
          List.iter (fun a -> ignore (Expr.type_of lookup a)) args
      | Stmt.Reg { reset = Some (rst, init); name; ty; _ } ->
          check_bool (Printf.sprintf "reset of %s" name) rst;
          let ti = Expr.type_of lookup init in
          if not (Ty.equal ti ty) then
            error "register %s : %s has init of type %s" name (Ty.to_string ty)
              (Ty.to_string ti)
      | Stmt.Reg { reset = None; _ } | Stmt.Wire _ | Stmt.Mem _ | Stmt.Inst _ -> ())
    m.Circuit.body

let run (c : Circuit.t) =
  try
    ignore (Circuit.main c);
    List.iter (check_module c) c.Circuit.modules;
    c
  with
  | Circuit.Elaboration_error m -> error "%s" m
  | Expr.Type_error m -> error "type error: %s" m

let pass = Pass.make pass_name run
