(** The pass framework: a pass is a named circuit transformation; pipelines
    compose them, mirroring firrtl's [Transform] sequences. *)

open Sic_ir

type t = { name : string; run : Circuit.t -> Circuit.t }

exception Pass_error of { pass : string; message : string }

let error ~pass fmt =
  Printf.ksprintf (fun message -> raise (Pass_error { pass; message })) fmt

let make name run = { name; run }

let src = Logs.Src.create "sic.passes" ~doc:"SIC compiler passes"

module Log = (val Logs.src_log src : Logs.LOG)

let run_one (p : t) (c : Circuit.t) =
  Log.debug (fun f -> f "running pass %s" p.name);
  try p.run c with
  | Pass_error _ as e -> raise e
  | Circuit.Elaboration_error m -> error ~pass:p.name "%s" m
  | Expr.Type_error m -> error ~pass:p.name "type error: %s" m

let run_pipeline (passes : t list) (c : Circuit.t) =
  List.fold_left (fun c p -> run_one p c) c passes
