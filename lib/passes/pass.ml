(** The pass framework: a pass is a named circuit transformation; pipelines
    compose them, mirroring firrtl's [Transform] sequences. *)

open Sic_ir
module Obs = Sic_obs.Obs

type t = { name : string; run : Circuit.t -> Circuit.t }

exception Pass_error of { pass : string; message : string }

let error ~pass fmt =
  Printf.ksprintf (fun message -> raise (Pass_error { pass; message })) fmt

let make name run = { name; run }

let src = Logs.Src.create "sic.passes" ~doc:"SIC compiler passes"

module Log = (val Logs.src_log src : Logs.LOG)

(* the IR-delta attributes attached to each pass span: how the circuit
   changed (nodes, ops, covers added, ...) — §5's compile-time story *)
let delta_args (before : Stats.t) (after : Stats.t) =
  [
    ("modules_before", Obs.Int before.Stats.modules);
    ("modules_after", Obs.Int after.Stats.modules);
    ("nodes_before", Obs.Int before.Stats.nodes);
    ("nodes_after", Obs.Int after.Stats.nodes);
    ("ops_before", Obs.Int before.Stats.ops);
    ("ops_after", Obs.Int after.Stats.ops);
    ("connects_before", Obs.Int before.Stats.connects);
    ("connects_after", Obs.Int after.Stats.connects);
    ("covers_before", Obs.Int before.Stats.covers);
    ("covers_after", Obs.Int after.Stats.covers);
  ]

let run_one (p : t) (c : Circuit.t) =
  Log.debug (fun f -> f "running pass %s" p.name);
  let run () =
    try p.run c with
    | Pass_error _ as e -> raise e
    | Circuit.Elaboration_error m -> error ~pass:p.name "%s" m
    | Expr.Type_error m -> error ~pass:p.name "type error: %s" m
  in
  if not (Obs.on ()) then run ()
  else begin
    let before = Stats.of_circuit c in
    let ctx = Obs.span_open () in
    match run () with
    | out ->
        Obs.span_close ctx ~name:("pass:" ^ p.name) (delta_args before (Stats.of_circuit out));
        out
    | exception e ->
        Obs.span_close ctx ~name:("pass:" ^ p.name) [ ("error", Obs.Bool true) ];
        raise e
  end

let run_pipeline (passes : t list) (c : Circuit.t) =
  Obs.span "pipeline"
    ~args:[ ("passes", Obs.Int (List.length passes)) ]
    (fun () -> List.fold_left (fun c p -> run_one p c) c passes)
