(** Canonical pass pipelines.

    Coverage instrumentation hooks at two points, exactly as in the paper:
    line coverage runs on the high-form IR (before when-lowering, §4.1);
    toggle / FSM / ready-valid / mux coverage run on the optimized low-form
    IR (§4.2-4.4). The stages are exposed so instrumentation passes can be
    inserted from the coverage library without a dependency cycle. *)

open Sic_ir

(** High-form checks only. *)
let frontend : Pass.t list = [ Check.pass ]

(** Lower to the flat, when-free, optimized form every backend consumes. *)
let to_low_form : Pass.t list =
  [ Check.pass; Lower_whens.pass; Inline.pass; Const_prop.pass; Dce.pass ]

(** [lower c] runs the full standard pipeline. *)
let lower (c : Circuit.t) : Circuit.t = Pass.run_pipeline to_low_form c

(** [lower_with ~high ~low c] interleaves instrumentation passes: [high]
    passes run on the checked high-form IR, [low] passes run after
    optimization (and are followed by a final check). *)
let lower_with ?(high : Pass.t list = []) ?(low : Pass.t list = []) (c : Circuit.t) :
    Circuit.t =
  let pipeline = (Check.pass :: high) @ [ Lower_whens.pass; Inline.pass; Const_prop.pass; Dce.pass ] @ low @ [ Check.pass ] in
  Pass.run_pipeline pipeline c

(** True when a circuit is in low form: a single module, no whens, no
    instances. Backends assert this on load. *)
let is_low_form (c : Circuit.t) : bool =
  match c.Circuit.modules with
  | [ m ] ->
      let ok = ref true in
      Stmt.iter
        (fun s ->
          match s with
          | Stmt.When _ | Stmt.Inst _ -> ok := false
          | _ -> ())
        m.Circuit.body;
      !ok
  | _ -> false
