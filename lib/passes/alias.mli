(** Global alias analysis (§4.2): groups of signals guaranteed to always
    carry the same value (plain-reference nodes and wire connects, hence —
    after inlining — cross-module port connections such as a fanned-out
    global reset). Toggle coverage instruments one representative per
    group. *)

open Sic_ir

type groups = (string * string list) list
(** (representative, members including the representative); singleton
    groups are omitted. *)

val analyze : Circuit.t -> groups
(** Requires a flat, lowered circuit. Register assignments are
    time-shifted and never alias. *)

val representative : groups -> string -> string
(** Identity for un-aliased names. *)
