(** Constant propagation and folding on lowered (when-free) modules.

    Tracks which nodes and wires are bound to literals or are pure aliases
    of other signals, folds primops with literal operands, and simplifies
    muxes with constant selectors or identical arms. The toggle-coverage
    pass runs after this (and DCE), as in the paper ("on the structural RTL
    after optimizations"). Signals marked [Dont_touch] are never folded
    away. *)

open Sic_ir
module Bv = Sic_bv.Bv

let pass_name = "const-prop"

(** One folding step given already-simplified children. Exposed for reuse by
    the FSM next-state analysis (§4.3), which needs exactly this
    simplification after substituting the current state. *)
let rec simplify (ty_of : string -> Ty.t) (e : Expr.t) : Expr.t =
  match e with
  | Expr.Ref _ | Expr.UIntLit _ | Expr.SIntLit _ -> e
  | Expr.Mux (s, a, b) -> (
      let s = simplify ty_of s and a = simplify ty_of a and b = simplify ty_of b in
      match s with
      | Expr.UIntLit v -> if Bv.to_bool v then a else b
      | _ -> if Expr.equal a b then a else Expr.Mux (s, a, b))
  | Expr.Unop (op, a) -> (
      let a = simplify ty_of a in
      match a with
      | Expr.UIntLit _ | Expr.SIntLit _ ->
          lit_of (Expr.unop_ty op (Expr.type_of ty_of a))
            (Eval.unop op ~ta:(Expr.type_of ty_of a) (value_of_lit a))
      | _ -> Expr.Unop (op, a))
  | Expr.Binop (op, a, b) -> (
      let a = simplify ty_of a and b = simplify ty_of b in
      let ta () = Expr.type_of ty_of a and tb () = Expr.type_of ty_of b in
      match (a, b) with
      | (Expr.UIntLit _ | Expr.SIntLit _), (Expr.UIntLit _ | Expr.SIntLit _) ->
          lit_of
            (Expr.binop_ty op (ta ()) (tb ()))
            (Eval.binop op ~ta:(ta ()) ~tb:(tb ()) (value_of_lit a) (value_of_lit b))
      | _ -> fold_identities ty_of op a b)
  | Expr.Intop (op, n, a) -> (
      let a = simplify ty_of a in
      match a with
      | Expr.UIntLit _ | Expr.SIntLit _ ->
          lit_of
            (Expr.intop_ty op n (Expr.type_of ty_of a))
            (Eval.intop op n ~ta:(Expr.type_of ty_of a) (value_of_lit a))
      | _ -> Expr.Intop (op, n, a))
  | Expr.Bits (a, hi, lo) -> (
      let a = simplify ty_of a in
      match a with
      | Expr.UIntLit _ | Expr.SIntLit _ -> Expr.UIntLit (Eval.bits ~hi ~lo (value_of_lit a))
      | _ ->
          if lo = 0 && hi = Ty.width (Expr.type_of ty_of a) - 1
             && not (Ty.is_signed (Expr.type_of ty_of a))
          then a
          else Expr.Bits (a, hi, lo))

and value_of_lit = function
  | Expr.UIntLit v | Expr.SIntLit v -> v
  | _ -> assert false

and lit_of ty v =
  match ty with
  | Ty.UInt _ | Ty.Clock -> Expr.UIntLit v
  | Ty.SInt _ -> Expr.SIntLit v

(* Boolean / bitwise identities with one literal operand. *)
and fold_identities ty_of op a b =
  let is_zero = function Expr.UIntLit v -> Bv.is_zero v | _ -> false in
  let is_all_ones e =
    match e with Expr.UIntLit v -> Bv.is_ones v | _ -> false
  in
  let w e = Ty.width (Expr.type_of ty_of e) in
  match op with
  | Expr.And when is_zero a || is_zero b ->
      Expr.UIntLit (Bv.zero (max (w a) (w b)))
  | Expr.And when is_all_ones a && w a >= w b && not (Ty.is_signed (Expr.type_of ty_of b)) ->
      simplify ty_of (Expr.Intop (Expr.Pad, w a, b))
  | Expr.And when is_all_ones b && w b >= w a && not (Ty.is_signed (Expr.type_of ty_of a)) ->
      simplify ty_of (Expr.Intop (Expr.Pad, w b, a))
  | Expr.Or when is_zero a && not (Ty.is_signed (Expr.type_of ty_of b)) ->
      simplify ty_of (Expr.Intop (Expr.Pad, w a, b))
  | Expr.Or when is_zero b && not (Ty.is_signed (Expr.type_of ty_of a)) ->
      simplify ty_of (Expr.Intop (Expr.Pad, w b, a))
  | _ -> Expr.Binop (op, a, b)

(* A binding is propagatable when it is a literal, or an alias (plain Ref)
   of a signal that is not a register or memory port (those change over
   time but the alias is still sound combinationally — registers are safe
   to alias too since we substitute the *name*, not the value; what we must
   not do is alias across a register boundary, which a plain Ref never
   does). *)
let propagatable (e : Expr.t) =
  match e with Expr.UIntLit _ | Expr.SIntLit _ -> true | _ -> false

let optimize_module (c : Circuit.t) (m : Circuit.modul) : Circuit.modul =
  let annos = c.Circuit.annotations in
  let dont_touch = Annotation.dont_touch_of ~module_name:m.Circuit.module_name annos in
  let env = Circuit.build_env ~resolve_inst:(Circuit.find_module c) m in
  let ty_of = Circuit.lookup_of env in
  (* constants bound to node/wire names discovered so far *)
  let consts : (string, Expr.t) Hashtbl.t = Hashtbl.create 64 in
  let subst e =
    Expr.subst
      (fun n -> if List.mem n dont_touch then None else Hashtbl.find_opt consts n)
      e
  in
  (* wires driven by a single unconditional literal connect can be folded;
     find them first (after lower-whens each sink has exactly one connect) *)
  let wire_names = Hashtbl.create 32 in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Wire { name; _ } -> Hashtbl.replace wire_names name ()
      | _ -> ())
    m.Circuit.body;
  (* first rewrite pass: fold node expressions in order, learning constants *)
  let body =
    List.map
      (fun (s : Stmt.t) ->
        match s with
        | Stmt.Node { name; expr; info } ->
            let expr = simplify ty_of (subst expr) in
            if propagatable expr && not (List.mem name dont_touch) then
              Hashtbl.replace consts name expr;
            Stmt.Node { name; expr; info }
        | Stmt.Connect { loc; expr; info } ->
            let expr = simplify ty_of (subst expr) in
            if
              Hashtbl.mem wire_names loc && propagatable expr
              && not (List.mem loc dont_touch)
            then Hashtbl.replace consts loc expr;
            Stmt.Connect { loc; expr; info }
        | Stmt.Cover { name; pred; info } ->
            Stmt.Cover { name; pred = simplify ty_of (subst pred); info }
        | Stmt.CoverValues { name; signal; en; info } ->
            Stmt.CoverValues
              { name; signal = simplify ty_of (subst signal); en = simplify ty_of (subst en); info }
        | Stmt.Stop { name; cond; exit_code; info } ->
            Stmt.Stop { name; cond = simplify ty_of (subst cond); exit_code; info }
        | Stmt.Print { cond; message; args; info } ->
            Stmt.Print
              {
                cond = simplify ty_of (subst cond);
                message;
                args = List.map (fun a -> simplify ty_of (subst a)) args;
              info }
        | Stmt.Reg { name; ty; reset; info } ->
            Stmt.Reg
              {
                name;
                ty;
                reset = Option.map (fun (r, i) -> (simplify ty_of (subst r), simplify ty_of (subst i))) reset;
                info;
              }
        | Stmt.Wire _ | Stmt.Mem _ | Stmt.Inst _ | Stmt.When _ -> s)
      m.Circuit.body
  in
  (* second pass: constants learned late (wire driven after use) propagate
     into earlier expressions *)
  let body =
    if Hashtbl.length consts = 0 then body
    else
      List.map
        (fun (s : Stmt.t) ->
          match s with
          | Stmt.Node { name; expr; info } ->
              Stmt.Node { name; expr = simplify ty_of (subst expr); info }
          | Stmt.Connect { loc; expr; info } ->
              Stmt.Connect { loc; expr = simplify ty_of (subst expr); info }
          | Stmt.Cover { name; pred; info } ->
              Stmt.Cover { name; pred = simplify ty_of (subst pred); info }
          | s -> s)
        body
  in
  { m with Circuit.body }

let run (c : Circuit.t) =
  { c with Circuit.modules = List.map (optimize_module c) c.Circuit.modules }

let pass = Pass.make pass_name run
