(** Dead code elimination on flat, lowered modules. Roots: output
    connects, cover / cover-values / stop / printf statements, and
    [Dont_touch] signals. Live memory reads keep their address cones and
    all write ports of the memory alive. *)

val pass_name : string
val run : Sic_ir.Circuit.t -> Sic_ir.Circuit.t
val pass : Pass.t
