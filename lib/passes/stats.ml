(** Circuit statistics: sizes and construct counts, per module and total.
    Used by the [sic stats] command and handy when sizing experiments
    (e.g. picking SoC configurations for a target cover count). *)

open Sic_ir

type t = {
  modules : int;
  ports : int;
  nodes : int;
  wires : int;
  regs : int;
  reg_bits : int;
  mems : int;
  mem_bits : int;
  instances : int;
  whens : int;
  connects : int;
  covers : int;
  cover_values : int;
  ops : int;  (** primop applications in all expressions *)
}

let zero =
  {
    modules = 0;
    ports = 0;
    nodes = 0;
    wires = 0;
    regs = 0;
    reg_bits = 0;
    mems = 0;
    mem_bits = 0;
    instances = 0;
    whens = 0;
    connects = 0;
    covers = 0;
    cover_values = 0;
    ops = 0;
  }

let rec expr_ops (e : Expr.t) =
  match e with
  | Expr.Ref _ | Expr.UIntLit _ | Expr.SIntLit _ -> 0
  | Expr.Mux (a, b, c) -> 1 + expr_ops a + expr_ops b + expr_ops c
  | Expr.Unop (_, a) | Expr.Intop (_, _, a) | Expr.Bits (a, _, _) -> 1 + expr_ops a
  | Expr.Binop (_, a, b) -> 1 + expr_ops a + expr_ops b

let of_module (m : Circuit.modul) : t =
  let s = ref { zero with modules = 1; ports = List.length m.Circuit.ports } in
  Stmt.iter
    (fun st ->
      let t = !s in
      s :=
        (match st with
        | Stmt.Node { expr; _ } -> { t with nodes = t.nodes + 1; ops = t.ops + expr_ops expr }
        | Stmt.Wire _ -> { t with wires = t.wires + 1 }
        | Stmt.Reg { ty; reset; _ } ->
            let extra =
              match reset with
              | Some (r, i) -> expr_ops r + expr_ops i
              | None -> 0
            in
            { t with regs = t.regs + 1; reg_bits = t.reg_bits + Ty.width ty; ops = t.ops + extra }
        | Stmt.Mem { mem; _ } ->
            {
              t with
              mems = t.mems + 1;
              mem_bits = t.mem_bits + (mem.Stmt.mem_depth * Ty.width mem.Stmt.mem_data);
            }
        | Stmt.Inst _ -> { t with instances = t.instances + 1 }
        | Stmt.When { cond; _ } -> { t with whens = t.whens + 1; ops = t.ops + expr_ops cond }
        | Stmt.Connect { expr; _ } ->
            { t with connects = t.connects + 1; ops = t.ops + expr_ops expr }
        | Stmt.Cover { pred; _ } -> { t with covers = t.covers + 1; ops = t.ops + expr_ops pred }
        | Stmt.CoverValues { signal; en; _ } ->
            { t with cover_values = t.cover_values + 1; ops = t.ops + expr_ops signal + expr_ops en }
        | Stmt.Stop { cond; _ } -> { t with ops = t.ops + expr_ops cond }
        | Stmt.Print { cond; args; _ } ->
            { t with ops = t.ops + expr_ops cond + List.fold_left (fun a e -> a + expr_ops e) 0 args }))
    m.Circuit.body;
  !s

let add a b =
  {
    modules = a.modules + b.modules;
    ports = a.ports + b.ports;
    nodes = a.nodes + b.nodes;
    wires = a.wires + b.wires;
    regs = a.regs + b.regs;
    reg_bits = a.reg_bits + b.reg_bits;
    mems = a.mems + b.mems;
    mem_bits = a.mem_bits + b.mem_bits;
    instances = a.instances + b.instances;
    whens = a.whens + b.whens;
    connects = a.connects + b.connects;
    covers = a.covers + b.covers;
    cover_values = a.cover_values + b.cover_values;
    ops = a.ops + b.ops;
  }

let of_circuit (c : Circuit.t) : t =
  List.fold_left (fun acc m -> add acc (of_module m)) zero c.Circuit.modules

let render (c : Circuit.t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-20s %6s %6s %6s %6s %8s %6s %8s %6s %6s %6s %6s %6s %6s\n" "module"
       "ports" "nodes" "wires" "regs" "reg bits" "mems" "mem bits" "insts" "whens" "conns"
       "covers" "cvals" "ops");
  let row name (s : t) =
    Buffer.add_string buf
      (Printf.sprintf "%-20s %6d %6d %6d %6d %8d %6d %8d %6d %6d %6d %6d %6d %6d\n" name
         s.ports s.nodes s.wires s.regs s.reg_bits s.mems s.mem_bits s.instances s.whens
         s.connects s.covers s.cover_values s.ops)
  in
  List.iter (fun m -> row m.Circuit.module_name (of_module m)) c.Circuit.modules;
  row "(total)" (of_circuit c);
  Buffer.contents buf
