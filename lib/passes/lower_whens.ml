(** Expand [when] blocks into multiplexed final connects (firrtl's
    ExpandWhens). This is the lowering step the paper's Figure 2 refers to:
    the dominating branch condition of each statement becomes an explicit
    enable/select expression, which is precisely why line coverage must be
    instrumented *before* this pass runs.

    After this pass every module body consists of declarations, nodes,
    exactly one connect per driven sink, and side-effect statements
    (cover / cover-values / stop / printf) whose conditions carry their
    original path predicate. *)

open Sic_ir
module SMap = Map.Make (String)

let pass_name = "lower-whens"

let error fmt = Pass.error ~pass:pass_name fmt

type ctx = {
  out : Stmt.t list ref;  (* reversed *)
  mutable env : Expr.t SMap.t;  (* sink -> current driving expression *)
  mutable order : string list;  (* sinks in first-assignment order, reversed *)
  seen : (string, unit) Hashtbl.t;  (* sinks already in [order] *)
  sink_info : (string, Info.t) Hashtbl.t;
      (* source position of the sink's first connect, carried onto the
         final merged connect so lowering keeps statement provenance *)
  regs : (string, unit) Hashtbl.t;
  scoped_wires : (string, Ty.t) Hashtbl.t;
      (* wires declared inside a when: their value outside the declaring
         branch is unobservable (FIRRTL scoping), so they may fall back to
         zero instead of requiring a global default *)
  ns : Namespace.t;
  module_name : string;
}

let emit ctx s = ctx.out := s :: !(ctx.out)

let assign ctx sink e =
  if not (Hashtbl.mem ctx.seen sink) then begin
    Hashtbl.replace ctx.seen sink ();
    ctx.order <- sink :: ctx.order
  end;
  ctx.env <- SMap.add sink e ctx.env

(* Value a conditionally-driven sink falls back to when a branch does not
   drive it: registers hold their value; anything else must have been given
   a default beforehand. *)
let fallback ctx info sink =
  match SMap.find_opt sink ctx.env with
  | Some e -> e
  | None -> (
      if Hashtbl.mem ctx.regs sink then Expr.Ref sink
      else
        match Hashtbl.find_opt ctx.scoped_wires sink with
        | Some ty ->
            let w = Ty.width ty in
            if Ty.is_signed ty then Expr.SIntLit (Sic_bv.Bv.zero w)
            else Expr.UIntLit (Sic_bv.Bv.zero w)
        | None ->
            error "in %s%s: %s is driven conditionally but has no default"
              ctx.module_name (Info.to_string info) sink)

let rec process ctx (pred : Expr.t) (stmts : Stmt.t list) =
  List.iter
    (fun (s : Stmt.t) ->
      match s with
      | Stmt.Wire { name; ty; _ } ->
          if not (Expr.equal pred Expr.true_) then Hashtbl.replace ctx.scoped_wires name ty;
          emit ctx s
      | Stmt.Node _ | Stmt.Mem _ | Stmt.Inst _ -> emit ctx s
      | Stmt.Reg { name; _ } ->
          Hashtbl.replace ctx.regs name ();
          emit ctx s
      | Stmt.Connect { loc; expr; info } ->
          if info <> Info.unknown && not (Hashtbl.mem ctx.sink_info loc) then
            Hashtbl.replace ctx.sink_info loc info;
          assign ctx loc expr
      | Stmt.Cover { name; pred = p; info } ->
          emit ctx (Stmt.Cover { name; pred = Expr.and_ pred p; info })
      | Stmt.CoverValues { name; signal; en; info } ->
          emit ctx (Stmt.CoverValues { name; signal; en = Expr.and_ pred en; info })
      | Stmt.Stop { name; cond; exit_code; info } ->
          emit ctx (Stmt.Stop { name; cond = Expr.and_ pred cond; exit_code; info })
      | Stmt.Print { cond; message; args; info } ->
          emit ctx (Stmt.Print { cond = Expr.and_ pred cond; message; args; info })
      | Stmt.When { cond; then_; else_; info } ->
          (* name the condition once so the generated mux trees share it *)
          let cond_ref =
            match cond with
            | Expr.Ref _ | Expr.UIntLit _ -> cond
            | _ ->
                let n = Namespace.fresh ctx.ns "_WHEN" in
                emit ctx (Stmt.Node { name = n; expr = cond; info });
                Expr.Ref n
          in
          let before = ctx.env in
          process ctx (Expr.and_ pred cond_ref) then_;
          let then_env = ctx.env in
          ctx.env <- before;
          process ctx (Expr.and_ pred (Expr.Unop (Expr.Not, cond_ref))) else_;
          let else_env = ctx.env in
          ctx.env <- before;
          (* merge: any sink whose binding changed in either branch becomes
             a mux between the two branch values *)
          let changed sink env' =
            match (SMap.find_opt sink before, SMap.find_opt sink env') with
            | Some a, Some b -> not (a == b)
            | None, Some _ -> true
            | _, None -> false
          in
          let touched =
            SMap.fold (fun k _ acc -> if changed k then_env then k :: acc else acc) then_env []
            @ SMap.fold
                (fun k _ acc ->
                  if changed k else_env && not (changed k then_env) then k :: acc else acc)
                else_env []
          in
          (* keep deterministic order: first-assignment order within the when *)
          let touched = List.rev touched in
          List.iter
            (fun sink ->
              let tv =
                match SMap.find_opt sink then_env with
                | Some e -> e
                | None -> fallback ctx info sink
              in
              let ev =
                match SMap.find_opt sink else_env with
                | Some e -> e
                | None -> fallback ctx info sink
              in
              let merged = if Expr.equal tv ev then tv else Expr.Mux (cond_ref, tv, ev) in
              assign ctx sink merged)
            touched)
    stmts

let lower_module (m : Circuit.modul) : Circuit.modul =
  let ctx =
    {
      out = ref [];
      env = SMap.empty;
      order = [];
      seen = Hashtbl.create 16;
      sink_info = Hashtbl.create 16;
      regs = Hashtbl.create 16;
      scoped_wires = Hashtbl.create 16;
      ns = Namespace.of_module m;
      module_name = m.Circuit.module_name;
    }
  in
  process ctx Expr.true_ m.Circuit.body;
  let final_connects =
    List.rev_map
      (fun sink ->
        let info =
          Option.value ~default:Info.unknown (Hashtbl.find_opt ctx.sink_info sink)
        in
        Stmt.Connect { loc = sink; expr = SMap.find sink ctx.env; info })
      ctx.order
  in
  { m with Circuit.body = List.rev !(ctx.out) @ final_connects }

let run (c : Circuit.t) = { c with Circuit.modules = List.map lower_module c.Circuit.modules }

let pass = Pass.make pass_name run
