(** Flatten the instance hierarchy into the main module. Child
    declarations (and cover names — giving the hierarchical names of §3)
    are prefixed with the instance path; annotations are retargeted, one
    copy per instance. *)

val pass_name : string
val run : Sic_ir.Circuit.t -> Sic_ir.Circuit.t
val pass : Pass.t
