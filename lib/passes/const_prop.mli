(** Constant propagation and folding on lowered modules. Toggle coverage
    runs after this (and DCE), per §4.2 ("on the structural RTL after
    optimizations"). [Dont_touch] signals are never folded away. *)

val pass_name : string

val simplify : (string -> Sic_ir.Ty.t) -> Sic_ir.Expr.t -> Sic_ir.Expr.t
(** One bottom-up folding of an expression — also the engine of the FSM
    next-state analysis (§4.3). *)

val run : Sic_ir.Circuit.t -> Sic_ir.Circuit.t
val pass : Pass.t
