(** Well-formedness checking: reference resolution, expression typing,
    connect compatibility, cover-name uniqueness and predicate types. Runs
    first (and last) in every pipeline. *)

val pass_name : string
val run : Sic_ir.Circuit.t -> Sic_ir.Circuit.t
val pass : Pass.t
