(** The pass framework: named circuit transformations and pipelines,
    mirroring firrtl's Transform sequences. *)

open Sic_ir

type t = { name : string; run : Circuit.t -> Circuit.t }

exception Pass_error of { pass : string; message : string }

val error : pass:string -> ('a, unit, string, 'b) format4 -> 'a
val make : string -> (Circuit.t -> Circuit.t) -> t

val run_one : t -> Circuit.t -> Circuit.t
(** Wraps elaboration/type errors into {!Pass_error}. When telemetry is on
    ({!Sic_obs.Obs.on}), records a [pass:<name>] span carrying the IR delta
    (node/op/connect/cover counts before and after). *)

val run_pipeline : t list -> Circuit.t -> Circuit.t
(** Runs the passes in order; recorded as a [pipeline] span with each pass
    span nested inside when telemetry is on. *)
