(** Flatten the instance hierarchy into the main module. Child declarations
    are prefixed with the instance path ([core.alu.x]); child ports become
    wires carrying the same dotted names the parent already uses, so parent
    connects need no rewriting. Cover statements acquire their instance
    path, giving the hierarchical cover names the paper's interface
    reports. Annotations on child modules are retargeted (one copy per
    instance). *)

open Sic_ir

let pass_name = "inline"

let prefix_name p n = p ^ "." ^ n

(* Rename all declared names and references in a statement list. [rename]
   must be total on names that need renaming and identity elsewhere. *)
let rec rename_stmts rename stmts =
  List.map
    (fun (s : Stmt.t) ->
      let re e = Expr.subst (fun n -> Some (Expr.Ref (rename n))) e in
      match s with
      | Stmt.Node { name; expr; info } -> Stmt.Node { name = rename name; expr = re expr; info }
      | Stmt.Wire { name; ty; info } -> Stmt.Wire { name = rename name; ty; info }
      | Stmt.Reg { name; ty; reset; info } ->
          Stmt.Reg
            {
              name = rename name;
              ty;
              reset = Option.map (fun (r, i) -> (re r, re i)) reset;
              info;
            }
      | Stmt.Mem { mem; info } ->
          Stmt.Mem { mem = { mem with Stmt.mem_name = rename mem.Stmt.mem_name }; info }
      | Stmt.Inst { name; module_name; info } ->
          Stmt.Inst { name = rename name; module_name; info }
      | Stmt.Connect { loc; expr; info } ->
          Stmt.Connect { loc = rename loc; expr = re expr; info }
      | Stmt.When { cond; then_; else_; info } ->
          Stmt.When
            {
              cond = re cond;
              then_ = rename_stmts rename then_;
              else_ = rename_stmts rename else_;
              info;
            }
      | Stmt.Cover { name; pred; info } ->
          Stmt.Cover { name = rename name; pred = re pred; info }
      | Stmt.CoverValues { name; signal; en; info } ->
          Stmt.CoverValues { name = rename name; signal = re signal; en = re en; info }
      | Stmt.Stop { name; cond; exit_code; info } ->
          Stmt.Stop { name = rename name; cond = re cond; exit_code; info }
      | Stmt.Print { cond; message; args; info } ->
          Stmt.Print { cond = re cond; message; args = List.map re args; info })
    stmts

(* Inline one level: replace each Inst in [body] with the (recursively
   flattened) child body. Returns new statements plus annotations created
   for this instance subtree. *)
let rec flatten_body (c : Circuit.t) (parent_module : string) (body : Stmt.t list) :
    Stmt.t list * Annotation.t list =
  let annos = ref [] in
  let stmts =
    List.concat_map
      (fun (s : Stmt.t) ->
        match s with
        | Stmt.When { cond; then_; else_; info } ->
            let t, a1 = flatten_body c parent_module then_ in
            let e, a2 = flatten_body c parent_module else_ in
            annos := a2 @ a1 @ !annos;
            [ Stmt.When { cond; then_ = t; else_ = e; info } ]
        | Stmt.Inst { name = inst; module_name; info } ->
            let child = Circuit.find_module c module_name in
            let child_body, child_annos = flatten_body c module_name child.Circuit.body in
            let rename n = prefix_name inst n in
            (* child ports become wires named inst.port *)
            let port_wires =
              List.map
                (fun (p : Circuit.port) ->
                  Stmt.Wire
                    { name = prefix_name inst p.Circuit.port_name; ty = p.Circuit.port_ty; info })
                child.Circuit.ports
            in
            let renamed = rename_stmts rename child_body in
            (* bring the child's annotations into the parent, renamed *)
            let retargeted =
              List.map
                (fun a ->
                  Annotation.retarget ~from_module:module_name ~to_module:parent_module
                    (Annotation.rename ~module_name ~f:rename a))
                (child_annos
                @ List.filter
                    (fun a ->
                      match a with
                      | Annotation.Enum_reg { module_name = m; _ }
                      | Annotation.Decoupled { module_name = m; _ }
                      | Annotation.Dont_touch { module_name = m; _ } ->
                          String.equal m module_name
                      | Annotation.Enum_def _ -> false)
                    c.Circuit.annotations)
            in
            annos := retargeted @ !annos;
            port_wires @ renamed
        | Stmt.Node _ | Stmt.Wire _ | Stmt.Reg _ | Stmt.Mem _ | Stmt.Connect _
        | Stmt.Cover _ | Stmt.CoverValues _ | Stmt.Stop _ | Stmt.Print _ -> [ s ])
      body
  in
  (stmts, List.rev !annos)

let run (c : Circuit.t) : Circuit.t =
  let main = Circuit.main c in
  let body, new_annos = flatten_body c main.Circuit.module_name main.Circuit.body in
  let keep_anno a =
    match a with
    | Annotation.Enum_def _ -> true
    | Annotation.Enum_reg { module_name; _ }
    | Annotation.Decoupled { module_name; _ }
    | Annotation.Dont_touch { module_name; _ } ->
        String.equal module_name main.Circuit.module_name
  in
  {
    Circuit.circuit_name = c.Circuit.circuit_name;
    modules = [ { main with Circuit.body } ];
    annotations = List.filter keep_anno c.Circuit.annotations @ new_annos;
  }

let pass = Pass.make pass_name run
