(* Arbitrary-width bitvectors over 31-bit limbs, little-endian limb order.
   Invariant: [Array.length data = limbs_for width] and all bits of the top
   limb above [width mod 31] are zero. *)

let limb_bits = 31
let limb_mask = (1 lsl limb_bits) - 1

type t = { width : int; data : int array }

let limbs_for w = if w = 0 then 0 else ((w - 1) / limb_bits) + 1

let top_mask w =
  let r = w mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

(* Mask the top limb in place so the invariant holds. *)
let normalize v =
  let n = Array.length v.data in
  if n > 0 then v.data.(n - 1) <- v.data.(n - 1) land top_mask v.width;
  v

let zero w = { width = w; data = Array.make (limbs_for w) 0 }

let width v = v.width

let of_int ~width:w n =
  if n < 0 then invalid_arg "Bv.of_int: negative";
  let v = zero w in
  let rec fill i n = if n <> 0 && i < Array.length v.data then begin
      v.data.(i) <- n land limb_mask;
      fill (i + 1) (n lsr limb_bits)
    end in
  fill 0 n;
  normalize v

let one w = of_int ~width:w 1

let ones w =
  let v = zero w in
  Array.fill v.data 0 (Array.length v.data) limb_mask;
  normalize v

let is_zero v = Array.for_all (fun x -> x = 0) v.data

let bit v i =
  if i < 0 || i >= v.width then false
  else (v.data.(i / limb_bits) lsr (i mod limb_bits)) land 1 = 1

let msb v = v.width > 0 && bit v (v.width - 1)

let is_ones v =
  let n = Array.length v.data in
  n > 0
  && (let rec go i = i >= n - 1 || (v.data.(i) = limb_mask && go (i + 1)) in
      go 0)
  && v.data.(n - 1) = top_mask v.width

(* Constant-time per-limb population count (SWAR). Limbs are 31-bit so the
   32-bit masks suffice and every intermediate fits a native int. *)
let popcount_limb x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0f0f0f0f in
  (* unlike a uint32 multiply, the 63-bit product keeps bits above 32, so
     mask the byte-sum out explicitly *)
  (x * 0x01010101) lsr 24 land 0xff

let popcount v = Array.fold_left (fun acc x -> acc + popcount_limb x) 0 v.data

let popcount_int n =
  if n < 0 then invalid_arg "Bv.popcount_int: negative";
  popcount_limb (n land limb_mask) + popcount_limb (n lsr limb_bits)

let ctz_int n =
  if n <= 0 then invalid_arg "Bv.ctz_int: non-positive";
  popcount_int ((n land -n) - 1)

let to_int v =
  (* Fits iff all bits above 62 are zero. *)
  let rec value i acc shift =
    if i >= Array.length v.data then Some acc
    else if v.data.(i) = 0 then value (i + 1) acc (shift + limb_bits)
    else if shift >= 62 then None
    else
      let contrib = v.data.(i) lsl shift in
      (* detect overflow: shifting must be reversible *)
      if shift > 0 && contrib asr shift <> v.data.(i) then None
      else if contrib < 0 then None
      else value (i + 1) (acc lor contrib) (shift + limb_bits)
  in
  value 0 0 0

let to_int_trunc v =
  let n = Array.length v.data in
  let l0 = if n > 0 then v.data.(0) else 0 in
  let l1 = if n > 1 then v.data.(1) else 0 in
  (l0 lor (l1 lsl limb_bits)) land max_int

(* Cheap bridge for the word-level simulation engine: rebuild a vector of
   width <= 62 from its masked native-int pattern without the generic fill
   loop. [to_int_trunc] is the exact inverse at these widths. *)
let of_int62 ~width:w n =
  if w > 62 then invalid_arg "Bv.of_int62: width > 62";
  let v = zero w in
  (match Array.length v.data with
  | 0 -> ()
  | 1 -> v.data.(0) <- n land limb_mask
  | _ ->
      v.data.(0) <- n land limb_mask;
      v.data.(1) <- (n lsr limb_bits) land limb_mask);
  normalize v

(* Allocation-free bit-field read for the word-level simulation engine:
   bits [lo, lo+width) of [v] as a masked native-int pattern, width <= 62.
   Bits past [v]'s width read as zero. *)
let extract_int v ~lo ~width =
  if width < 0 || width > 62 then invalid_arg "Bv.extract_int: bad width";
  if width = 0 then 0
  else begin
    let nd = Array.length v.data in
    let li = lo / limb_bits and off = lo mod limb_bits in
    let limb i = if i < nd then Array.unsafe_get v.data i else 0 in
    let acc = ref (limb li lsr off) in
    let got = ref (limb_bits - off) in
    let i = ref (li + 1) in
    while !got < width do
      acc := !acc lor (limb !i lsl !got);
      got := !got + limb_bits;
      incr i
    done;
    !acc land ((1 lsl width) - 1)
  end

let copy v = { width = v.width; data = Array.copy v.data }

(* In-place operations for the word-level simulation engine's wide slots.
   Each treats its [dst] as a mutable buffer of fixed width; operand widths
   need not match [dst] (missing limbs read as zero, excess bits are
   truncated). None of these allocate. *)

let fill_zero v = Array.fill v.data 0 (Array.length v.data) 0

(* [dst] and [src] must have equal widths. *)
let blit_into ~dst src = Array.blit src.data 0 dst.data 0 (Array.length dst.data)

(* OR the masked pattern [n] (>= 0, < 2^62) into [dst] at bit offset [lo]. *)
let or_int_into ~dst ~lo n =
  let nd = Array.length dst.data in
  let i = ref (lo / limb_bits) in
  let off = lo mod limb_bits in
  if !i < nd then dst.data.(!i) <- dst.data.(!i) lor ((n lsl off) land limb_mask);
  let rest = ref (n lsr (limb_bits - off)) in
  incr i;
  while !rest <> 0 && !i < nd do
    dst.data.(!i) <- dst.data.(!i) lor (!rest land limb_mask);
    rest := !rest lsr limb_bits;
    incr i
  done;
  ignore (normalize dst)

(* OR all of [src]'s bits into [dst] at bit offset [lo]. *)
let or_bits_into ~dst ~lo src =
  let nd = Array.length dst.data in
  let ns = Array.length src.data in
  let li = lo / limb_bits and off = lo mod limb_bits in
  if off = 0 then
    for j = 0 to ns - 1 do
      let i = li + j in
      if i < nd then dst.data.(i) <- dst.data.(i) lor src.data.(j)
    done
  else begin
    let carry = ref 0 in
    for j = 0 to ns - 1 do
      let x = src.data.(j) in
      let i = li + j in
      if i < nd then
        dst.data.(i) <- dst.data.(i) lor (((x lsl off) land limb_mask) lor !carry);
      carry := x lsr (limb_bits - off)
    done;
    let i = li + ns in
    if i < nd then dst.data.(i) <- dst.data.(i) lor !carry
  end;
  ignore (normalize dst)

(* Logical right shift of [src] by [n] into [dst]. *)
let shr_into ~dst src n =
  let nd = Array.length dst.data in
  let ns = Array.length src.data in
  let ls = n / limb_bits and off = n mod limb_bits in
  let limb j = if j >= 0 && j < ns then Array.unsafe_get src.data j else 0 in
  if off = 0 then
    for i = 0 to nd - 1 do
      dst.data.(i) <- limb (i + ls)
    done
  else
    for i = 0 to nd - 1 do
      dst.data.(i) <-
        (limb (i + ls) lsr off) lor (limb (i + ls + 1) lsl (limb_bits - off)) land limb_mask
    done;
  ignore (normalize dst)

let logor_into ~dst a b =
  let la = a.data and lb = b.data in
  let na = Array.length la and nb = Array.length lb in
  for i = 0 to Array.length dst.data - 1 do
    let x = if i < na then Array.unsafe_get la i else 0 in
    let y = if i < nb then Array.unsafe_get lb i else 0 in
    dst.data.(i) <- x lor y
  done;
  ignore (normalize dst)

let logand_into ~dst a b =
  let la = a.data and lb = b.data in
  let na = Array.length la and nb = Array.length lb in
  for i = 0 to Array.length dst.data - 1 do
    let x = if i < na then Array.unsafe_get la i else 0 in
    let y = if i < nb then Array.unsafe_get lb i else 0 in
    dst.data.(i) <- x land y
  done;
  ignore (normalize dst)

let logxor_into ~dst a b =
  let la = a.data and lb = b.data in
  let na = Array.length la and nb = Array.length lb in
  for i = 0 to Array.length dst.data - 1 do
    let x = if i < na then Array.unsafe_get la i else 0 in
    let y = if i < nb then Array.unsafe_get lb i else 0 in
    dst.data.(i) <- x lxor y
  done;
  ignore (normalize dst)

(* Fused change-detecting variants of the in-place kernels, for the
   engine profiler's exact hit counts: same single pass as the base op,
   accumulating a limb-difference word while storing, so detecting a
   change costs almost nothing over just computing the value. Each
   returns whether [dst]'s value changed. [dst] must hold a normalized
   value on entry (the engine's slots always do). *)

(* [dst] and [src] must have equal widths. *)
let blit_into_changed ~dst src =
  let n = Array.length dst.data in
  let diff = ref 0 in
  for i = 0 to n - 1 do
    let v = Array.unsafe_get src.data i in
    diff := !diff lor (v lxor Array.unsafe_get dst.data i);
    Array.unsafe_set dst.data i v
  done;
  !diff <> 0

let shr_into_changed ~dst src n =
  let nd = Array.length dst.data in
  let ns = Array.length src.data in
  let ls = n / limb_bits and off = n mod limb_bits in
  let limb j = if j >= 0 && j < ns then Array.unsafe_get src.data j else 0 in
  let v_at i =
    if off = 0 then limb (i + ls)
    else
      (limb (i + ls) lsr off) lor (limb (i + ls + 1) lsl (limb_bits - off))
      land limb_mask
  in
  let diff = ref 0 in
  for i = 0 to nd - 2 do
    let v = v_at i in
    diff := !diff lor (v lxor Array.unsafe_get dst.data i);
    Array.unsafe_set dst.data i v
  done;
  if nd > 0 then begin
    let v = v_at (nd - 1) land top_mask dst.width in
    diff := !diff lor (v lxor Array.unsafe_get dst.data (nd - 1));
    Array.unsafe_set dst.data (nd - 1) v
  end;
  !diff <> 0

(* Shared skeleton of the fused logical kernels: one pass, top limb
   masked outside the loop. *)
let logop_into_changed op ~(dst : t) (a : t) (b : t) =
  let la = a.data and lb = b.data in
  let na = Array.length la and nb = Array.length lb in
  let nd = Array.length dst.data in
  let v_at i =
    let x = if i < na then Array.unsafe_get la i else 0 in
    let y = if i < nb then Array.unsafe_get lb i else 0 in
    op x y
  in
  let diff = ref 0 in
  for i = 0 to nd - 2 do
    let v = v_at i in
    diff := !diff lor (v lxor Array.unsafe_get dst.data i);
    Array.unsafe_set dst.data i v
  done;
  if nd > 0 then begin
    let v = v_at (nd - 1) land top_mask dst.width in
    diff := !diff lor (v lxor Array.unsafe_get dst.data (nd - 1));
    Array.unsafe_set dst.data (nd - 1) v
  end;
  !diff <> 0

let logor_into_changed ~dst a b = logop_into_changed ( lor ) ~dst a b
let logand_into_changed ~dst a b = logop_into_changed ( land ) ~dst a b
let logxor_into_changed ~dst a b = logop_into_changed ( lxor ) ~dst a b

let equal a b = a.width = b.width && a.data = b.data

let equal_value a b =
  let na = Array.length a.data and nb = Array.length b.data in
  let n = max na nb in
  let get d i = if i < Array.length d then d.(i) else 0 in
  let rec go i = i >= n || (get a.data i = get b.data i && go (i + 1)) in
  go 0

let compare_u a b =
  let na = Array.length a.data and nb = Array.length b.data in
  let n = max na nb in
  let get d i = if i < Array.length d then d.(i) else 0 in
  let rec go i =
    if i < 0 then 0
    else
      let x = get a.data i and y = get b.data i in
      if x <> y then compare x y else go (i - 1)
  in
  go (n - 1)

let hash v = Hashtbl.hash (v.width, v.data)

let extend_u v w =
  if w = v.width then v
  else begin
    let r = zero w in
    let n = min (Array.length v.data) (Array.length r.data) in
    Array.blit v.data 0 r.data 0 n;
    normalize r
  end

let extend_s v w =
  if w <= v.width then extend_u v w
  else if not (msb v) then extend_u v w
  else begin
    let r = ones w in
    (* copy low limbs, then restore the original top limb's low bits *)
    let n = Array.length v.data in
    Array.blit v.data 0 r.data 0 n;
    if n > 0 then begin
      (* set sign-extension bits within the top source limb *)
      let hi_bits = v.width mod limb_bits in
      if hi_bits <> 0 then
        r.data.(n - 1) <- v.data.(n - 1) lor (limb_mask land lnot ((1 lsl hi_bits) - 1))
    end;
    normalize r
  end

let of_signed_int ~width:w n =
  if n >= 0 then of_int ~width:w n
  else begin
    let v = zero w in
    let rec fill i n =
      if i < Array.length v.data then begin
        v.data.(i) <- n land limb_mask;
        fill (i + 1) (n asr limb_bits)
      end
    in
    fill 0 n;
    normalize v
  end

let to_signed_int v =
  if not (msb v) then to_int v
  else
    (* value - 2^width must fit *)
    let ext = extend_s v 63 in
    (* now interpret the 63-bit pattern as a signed int *)
    let n = Array.length ext.data in
    let rec value i acc shift =
      if i >= n || shift >= 63 then acc
      else value (i + 1) (acc lor (ext.data.(i) lsl shift)) (shift + limb_bits)
    in
    let raw = value 0 0 0 in
    (* sign bit of the 63-bit pattern is bit 62 *)
    let signed = if (raw lsr 62) land 1 = 1 then raw lor (min_int lor (1 lsl 62)) else raw in
    (* confirm round trip at the original width *)
    let check = of_signed_int ~width:v.width signed in
    if equal check v then Some signed else None

let add ~width:w a b =
  let r = zero w in
  let n = Array.length r.data in
  let get d i = if i < Array.length d then d.(i) else 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = get a.data i + get b.data i + !carry in
    r.data.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub ~width:w a b =
  let r = zero w in
  let n = Array.length r.data in
  let get d i = if i < Array.length d then d.(i) else 0 in
  let borrow = ref 0 in
  for i = 0 to n - 1 do
    let s = get a.data i - get b.data i - !borrow in
    if s < 0 then begin
      r.data.(i) <- s + (1 lsl limb_bits);
      borrow := 1
    end else begin
      r.data.(i) <- s;
      borrow := 0
    end
  done;
  normalize r

let neg ~width:w a = sub ~width:w (zero w) a

let mul ~width:w a b =
  let r = zero w in
  let n = Array.length r.data in
  let na = min (Array.length a.data) n and nb = min (Array.length b.data) n in
  for i = 0 to na - 1 do
    if a.data.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to nb - 1 do
        if i + j < n then begin
          let p = (a.data.(i) * b.data.(j)) + r.data.(i + j) + !carry in
          r.data.(i + j) <- p land limb_mask;
          carry := p lsr limb_bits
        end
      done;
      (* propagate remaining carry *)
      let k = ref (i + nb) in
      while !carry <> 0 && !k < n do
        let s = r.data.(!k) + !carry in
        r.data.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    end
  done;
  normalize r

let shift_left ~width:w v n =
  if n < 0 then invalid_arg "Bv.shift_left";
  let r = zero w in
  let limb_shift = n / limb_bits and bit_shift = n mod limb_bits in
  let nr = Array.length r.data and nv = Array.length v.data in
  for i = 0 to nv - 1 do
    let lo_dst = i + limb_shift in
    let x = v.data.(i) in
    if x <> 0 then begin
      if lo_dst < nr then r.data.(lo_dst) <- r.data.(lo_dst) lor ((x lsl bit_shift) land limb_mask);
      if bit_shift > 0 && lo_dst + 1 < nr then
        r.data.(lo_dst + 1) <- r.data.(lo_dst + 1) lor (x lsr (limb_bits - bit_shift))
    end
  done;
  normalize r

let shift_right_logical v n =
  if n < 0 then invalid_arg "Bv.shift_right_logical";
  let w = max 1 (v.width - n) in
  let r = zero w in
  let limb_shift = n / limb_bits and bit_shift = n mod limb_bits in
  let nr = Array.length r.data and nv = Array.length v.data in
  for i = 0 to nr - 1 do
    let src = i + limb_shift in
    let lo = if src < nv then v.data.(src) lsr bit_shift else 0 in
    let hi =
      if bit_shift > 0 && src + 1 < nv then (v.data.(src + 1) lsl (limb_bits - bit_shift)) land limb_mask
      else 0
    in
    r.data.(i) <- lo lor hi
  done;
  normalize r

(* Arithmetic shift right at constant width: the vacated top bits are
   filled with copies of the sign bit. (FIRRTL's static [shr] on SInt
   instead *narrows* to width w-n, which is exactly
   [shift_right_logical] — the retained top bit is the original sign.) *)
let shift_right_arith v n =
  let n = max n 0 in
  if n = 0 || v.width = 0 then v
  else begin
    let sign = msb v in
    let r = zero v.width in
    for i = 0 to v.width - 1 do
      let b = if i + n < v.width then bit v (i + n) else sign in
      if b then r.data.(i / limb_bits) <- r.data.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    normalize r
  end

let concat hi lo =
  let w = hi.width + lo.width in
  let r = zero w in
  Array.blit lo.data 0 r.data 0 (Array.length lo.data);
  let shifted = shift_left ~width:w hi lo.width in
  for i = 0 to Array.length r.data - 1 do
    r.data.(i) <- r.data.(i) lor shifted.data.(i)
  done;
  normalize r

let extract ~hi ~lo v =
  if hi < lo || lo < 0 then invalid_arg "Bv.extract";
  let shifted = if lo = 0 then v else shift_right_logical v lo in
  extend_u shifted (hi - lo + 1)

let head v n =
  if n < 0 || n > v.width then invalid_arg "Bv.head";
  if n = 0 then zero 0 else extract ~hi:(v.width - 1) ~lo:(v.width - n) v

let tail v n =
  if n < 0 || n > v.width then invalid_arg "Bv.tail";
  if n = v.width then zero 0 else extract ~hi:(v.width - n - 1) ~lo:0 v

let select_bit v i = if bit v i then one 1 else zero 1

let logand ~width:w a b =
  let r = zero w in
  let get d i = if i < Array.length d then d.(i) else 0 in
  for i = 0 to Array.length r.data - 1 do
    r.data.(i) <- get a.data i land get b.data i
  done;
  normalize r

let logor ~width:w a b =
  let r = zero w in
  let get d i = if i < Array.length d then d.(i) else 0 in
  for i = 0 to Array.length r.data - 1 do
    r.data.(i) <- get a.data i lor get b.data i
  done;
  normalize r

let logxor ~width:w a b =
  let r = zero w in
  let get d i = if i < Array.length d then d.(i) else 0 in
  for i = 0 to Array.length r.data - 1 do
    r.data.(i) <- get a.data i lxor get b.data i
  done;
  normalize r

let lognot ~width:w a =
  let r = zero w in
  let get d i = if i < Array.length d then d.(i) else 0 in
  for i = 0 to Array.length r.data - 1 do
    r.data.(i) <- lnot (get a.data i) land limb_mask
  done;
  normalize r

let andr v = v.width > 0 && is_ones v
let orr v = not (is_zero v)
let xorr v = popcount v land 1 = 1

let of_bool b = if b then one 1 else zero 1
let to_bool v = not (is_zero v)

let eq a b = of_bool (equal_value a b)
let neq a b = of_bool (not (equal_value a b))
let lt_u a b = of_bool (compare_u a b < 0)
let leq_u a b = of_bool (compare_u a b <= 0)
let gt_u a b = of_bool (compare_u a b > 0)
let geq_u a b = of_bool (compare_u a b >= 0)

let compare_s a b =
  match (msb a, msb b) with
  | true, false -> -1
  | false, true -> 1
  | false, false -> compare_u a b
  | true, true ->
      (* both negative: compare magnitudes via sign extension to a common
         width, then unsigned compare still orders correctly because two's
         complement is monotone on equal widths. *)
      let w = max a.width b.width in
      compare_u (extend_s a w) (extend_s b w)

let lt_s a b = of_bool (compare_s a b < 0)
let leq_s a b = of_bool (compare_s a b <= 0)
let gt_s a b = of_bool (compare_s a b > 0)
let geq_s a b = of_bool (compare_s a b >= 0)

let mux sel a b =
  if a.width <> b.width then invalid_arg "Bv.mux: width mismatch";
  if to_bool sel then a else b

(* Unsigned long division: restoring, bit at a time, with an int fast path. *)
let divmod_u a b =
  let w = max a.width b.width in
  if is_zero b then (zero w, extend_u a w)
  else
    match (to_int a, to_int b) with
    | Some x, Some y -> (of_int ~width:w (x / y), of_int ~width:w (x mod y))
    | _ ->
        let q = zero w and r = ref (zero w) in
        let b' = extend_u b w in
        for i = w - 1 downto 0 do
          r := shift_left ~width:w !r 1;
          if bit a i then r := logor ~width:w !r (one w);
          if compare_u !r b' >= 0 then begin
            r := sub ~width:w !r b';
            q.data.(i / limb_bits) <- q.data.(i / limb_bits) lor (1 lsl (i mod limb_bits))
          end
        done;
        (normalize q, !r)

let div_u ~width:w a b = extend_u (fst (divmod_u a b)) w
let rem_u ~width:w a b = extend_u (snd (divmod_u a b)) w

let abs_value v =
  (* magnitude of the signed interpretation, at width v.width + 1 so that
     the most negative value does not overflow *)
  let w = v.width + 1 in
  if msb v then neg ~width:w (extend_s v w) else extend_u v w

let div_s ~width:w a b =
  if is_zero b then zero w
  else begin
    let qa = abs_value a and qb = abs_value b in
    let q, _ = divmod_u qa qb in
    let negative = msb a <> msb b in
    if negative then neg ~width:w (extend_u q w) else extend_u q w
  end

let rem_s ~width:w a b =
  if is_zero b then extend_s a w
  else begin
    let qa = abs_value a and qb = abs_value b in
    let _, r = divmod_u qa qb in
    if msb a then neg ~width:w (extend_u r w) else extend_u r w
  end

let dshl ~width:w a b =
  match to_int b with
  | Some n when n < w -> shift_left ~width:w a n
  | Some _ | None -> zero w

let dshr a b =
  match to_int b with
  | Some n when n < a.width -> extend_u (shift_right_logical a n) a.width
  | Some _ | None -> zero a.width

let succ_saturating v = if is_ones v then v else add ~width:v.width v (one v.width)

(* String conversions *)

let of_binary_string s =
  let w = String.length s in
  if w = 0 then zero 0
  else begin
    let v = zero w in
    String.iteri
      (fun i c ->
        let b = w - 1 - i in
        match c with
        | '0' -> ()
        | '1' -> v.data.(b / limb_bits) <- v.data.(b / limb_bits) lor (1 lsl (b mod limb_bits))
        | _ -> invalid_arg "Bv.of_binary_string")
      s;
    normalize v
  end

let to_binary_string v =
  if v.width = 0 then ""
  else String.init v.width (fun i -> if bit v (v.width - 1 - i) then '1' else '0')

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bv.of_hex_string"

let of_hex_string ~width:w s =
  let full = String.length s * 4 in
  let v = zero (max w full) in
  String.iteri
    (fun i c ->
      let d = hex_digit c in
      let lo = (String.length s - 1 - i) * 4 in
      for b = 0 to 3 do
        if (d lsr b) land 1 = 1 then begin
          let pos = lo + b in
          if pos < v.width then
            v.data.(pos / limb_bits) <- v.data.(pos / limb_bits) lor (1 lsl (pos mod limb_bits))
        end
      done)
    s;
  extend_u (normalize v) w

let to_hex_string v =
  if v.width = 0 then "0"
  else begin
    let digits = ((v.width - 1) / 4) + 1 in
    let buf = Buffer.create digits in
    for i = digits - 1 downto 0 do
      let d =
        (if bit v ((i * 4) + 3) then 8 else 0)
        lor (if bit v ((i * 4) + 2) then 4 else 0)
        lor (if bit v ((i * 4) + 1) then 2 else 0)
        lor if bit v (i * 4) then 1 else 0
      in
      Buffer.add_char buf "0123456789abcdef".[d]
    done;
    Buffer.contents buf
  end

let of_decimal_string ~width:w s =
  let v = ref (zero (max w (String.length s * 4))) in
  let wv = (!v).width in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          let d = Char.code c - Char.code '0' in
          v := add ~width:wv (mul ~width:wv !v (of_int ~width:wv 10)) (of_int ~width:wv d)
      | _ -> invalid_arg "Bv.of_decimal_string")
    s;
  extend_u !v w

let to_decimal_string v =
  match to_int v with
  | Some n -> string_of_int n
  | None ->
      (* repeated division by 10^9 *)
      let base = 1_000_000_000 in
      let bbase = of_int ~width:v.width base in
      let rec go v acc =
        match to_int v with
        | Some n -> string_of_int n :: acc
        | None ->
            let q, r = divmod_u v bbase in
            let rs = to_int_trunc r in
            go (extend_u q v.width) (Printf.sprintf "%09d" rs :: acc)
      in
      String.concat "" (go v [])

let pp fmt v = Format.fprintf fmt "%d'h%s" v.width (to_hex_string v)

let random ~width:w rng =
  let v = zero w in
  for i = 0 to Array.length v.data - 1 do
    v.data.(i) <- rng () land limb_mask
  done;
  normalize v
