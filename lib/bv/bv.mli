(** Arbitrary-width bitvectors.

    Values are unsigned two's-complement bit patterns of a fixed [width]
    (>= 1 except for the special zero-width vector used by empty
    concatenations). All operations take an explicit result width where the
    FIRRTL width rules require one; results are truncated modulo [2^width].

    The representation uses 31-bit limbs so that limb products fit in a
    native OCaml [int]. *)

type t

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. *)

val one : int -> t
(** [one w] is the value 1 at width [w]. Requires [w >= 1]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] is [n] truncated to [width] bits. [n] must be
    non-negative. *)

val of_signed_int : width:int -> int -> t
(** [of_signed_int ~width n] is the two's-complement encoding of [n]. *)

val of_binary_string : string -> t
(** [of_binary_string "1010"] has width 4. Raises [Invalid_argument] on
    characters other than ['0']/['1']. *)

val of_hex_string : width:int -> string -> t
(** Parse a hexadecimal string (no prefix) and truncate to [width]. *)

val of_decimal_string : width:int -> string -> t
(** Parse a decimal string and truncate to [width]. *)

val random : width:int -> (unit -> int) -> t
(** [random ~width rng] builds a vector from a source of random
    non-negative ints ([rng ()] must return at least 30 fresh bits). *)

val of_int62 : width:int -> int -> t
(** [of_int62 ~width n] rebuilds a vector of [width <= 62] from its masked
    native-int pattern [n] (as produced by {!to_int_trunc}); cheaper than
    {!of_int}. Raises [Invalid_argument] when [width > 62]. *)

(** {1 Observation} *)

val width : t -> int

val to_int : t -> int option
(** [to_int v] is [Some n] if the value fits in a non-negative OCaml int. *)

val to_int_trunc : t -> int
(** Low 62 bits of the value as a non-negative int (truncating). *)

val to_signed_int : t -> int option
(** Two's-complement interpretation if it fits in an OCaml int. *)

val extract_int : t -> lo:int -> width:int -> int
(** [extract_int v ~lo ~width] is bits [lo, lo + width)] of [v] as a masked
    native-int pattern, without allocating. Bits beyond [v]'s width read as
    zero. Raises [Invalid_argument] when [width > 62]. *)

val to_binary_string : t -> string
val to_hex_string : t -> string
val to_decimal_string : t -> string
val pp : Format.formatter -> t -> unit

val bit : t -> int -> bool
(** [bit v i] is bit [i] (LSB = 0). Out-of-range bits read as [false]. *)

val is_zero : t -> bool
val is_ones : t -> bool
val msb : t -> bool

val popcount : t -> int
(** Number of set bits (constant time per limb). *)

val popcount_int : int -> int
(** Number of set bits of a non-negative native int (constant time).
    Raises [Invalid_argument] on negative input. *)

val ctz_int : int -> int
(** Index of the lowest set bit of a positive native int (constant time) —
    the lane-extraction primitive of the bit-parallel engine. Raises
    [Invalid_argument] on non-positive input. *)

(** {1 In-place operations}

    Mutable-buffer primitives for the word-level simulation engine's wide
    slots. Each writes every limb of [dst] and allocates nothing; operand
    widths need not match [dst] (missing bits read as zero, excess bits
    are truncated). A value used as [dst] must be privately owned — these
    break the immutability every other operation preserves. *)

val copy : t -> t
(** Fresh, independently-owned copy (same width and value). *)

val fill_zero : t -> unit

val blit_into : dst:t -> t -> unit
(** Overwrite [dst] with the value of a same-width source. *)

val or_int_into : dst:t -> lo:int -> int -> unit
(** OR a masked native-int pattern (>= 0) into [dst] at bit offset [lo]. *)

val or_bits_into : dst:t -> lo:int -> t -> unit
(** OR all of a source vector's bits into [dst] at bit offset [lo]. *)

val shr_into : dst:t -> t -> int -> unit
(** Logical right shift of the source by [n] bits into [dst]. *)

val logor_into : dst:t -> t -> t -> unit
val logand_into : dst:t -> t -> t -> unit
val logxor_into : dst:t -> t -> t -> unit

(** Fused change-detecting variants for the engine profiler's exact hit
    counts: the same single pass as the base operation, additionally
    reporting whether [dst]'s value changed. [dst] must be normalized on
    entry. *)

val blit_into_changed : dst:t -> t -> bool
val shr_into_changed : dst:t -> t -> int -> bool
val logor_into_changed : dst:t -> t -> t -> bool
val logand_into_changed : dst:t -> t -> t -> bool
val logxor_into_changed : dst:t -> t -> t -> bool

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Width and value equality. *)

val equal_value : t -> t -> bool
(** Value equality ignoring width (zero-extended comparison). *)

val compare_u : t -> t -> int
(** Unsigned comparison (widths may differ). *)

val compare_s : t -> t -> int
(** Signed (two's-complement at each vector's own width) comparison. *)

val hash : t -> int

(** {1 Width adjustment} *)

val extend_u : t -> int -> t
(** [extend_u v w] zero-extends or truncates to width [w]. *)

val extend_s : t -> int -> t
(** [extend_s v w] sign-extends (from [v]'s own width) or truncates. *)

(** {1 Arithmetic} *)

val add : width:int -> t -> t -> t
val sub : width:int -> t -> t -> t
val mul : width:int -> t -> t -> t
val div_u : width:int -> t -> t -> t
(** Unsigned division; division by zero yields zero (FIRRTL leaves it
    undefined; we pick a total definition shared by all backends). *)

val rem_u : width:int -> t -> t -> t
(** Unsigned remainder; remainder by zero yields the dividend. *)

val div_s : width:int -> t -> t -> t
(** Signed division truncating toward zero, operands read at their own
    widths. *)

val rem_s : width:int -> t -> t -> t
val neg : width:int -> t -> t

(** {1 Bitwise} *)

val logand : width:int -> t -> t -> t
val logor : width:int -> t -> t -> t
val logxor : width:int -> t -> t -> t
val lognot : width:int -> t -> t

val andr : t -> bool
val orr : t -> bool
val xorr : t -> bool

(** {1 Shifts, slices, concatenation} *)

val shift_left : width:int -> t -> int -> t
val shift_right_logical : t -> int -> t
(** Result width is [max 1 (width - n)] per the FIRRTL [shr] rule. *)

val shift_right_arith : t -> int -> t
val dshl : width:int -> t -> t -> t
(** Dynamic shift left; the shift amount is read as unsigned. *)

val dshr : t -> t -> t
(** Dynamic logical shift right at the operand's width. *)

val concat : t -> t -> t
(** [concat hi lo]: [hi] occupies the most-significant bits. *)

val extract : hi:int -> lo:int -> t -> t
(** [extract ~hi ~lo v] is bits [hi..lo] inclusive; width [hi - lo + 1]. *)

val head : t -> int -> t
(** [head v n] is the [n] most significant bits. *)

val tail : t -> int -> t
(** [tail v n] removes the [n] most significant bits. *)

val select_bit : t -> int -> t
(** 1-bit vector holding bit [i]. *)

(** {1 Predicates as 1-bit vectors} *)

val eq : t -> t -> t
val neq : t -> t -> t
val lt_u : t -> t -> t
val leq_u : t -> t -> t
val gt_u : t -> t -> t
val geq_u : t -> t -> t
val lt_s : t -> t -> t
val leq_s : t -> t -> t
val gt_s : t -> t -> t
val geq_s : t -> t -> t

val of_bool : bool -> t
val to_bool : t -> bool
(** [to_bool v] is [true] iff [v] is non-zero. *)

(** {1 Mux} *)

val mux : t -> t -> t -> t
(** [mux sel a b] is [a] when [sel] is non-zero else [b]. Operands must
    have equal widths. *)

(** {1 Saturating counter support (cover primitive)} *)

val succ_saturating : t -> t
(** Increment, holding at all-ones. *)
