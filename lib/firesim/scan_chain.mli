(** Coverage scan-chain insertion for FPGA-accelerated simulation (§3.3,
    Figure 4): each cover becomes a saturating counter of user-selected
    width; all counters form a scan chain controlled by
    [cover_scan_en]/[cover_scan_in]/[cover_scan_out]. The pass also
    implements FireSim's pause semantics: while scanning, every target
    register and memory write is frozen. *)

type chain = {
  counter_width : int;
  order : string list;
      (** cover names in chain order (scan-in side first); the bit
          closest to [cover_scan_out] is the MSB of the last counter *)
}

val scan_en_port : string
val scan_in_port : string
val scan_out_port : string

val insert : width:int -> Sic_ir.Circuit.t -> Sic_ir.Circuit.t * chain
(** Requires a flat, lowered circuit with plain covers only
    ([cover-values] must be expanded first). *)
