(** The host-side driver for FPGA-accelerated coverage (§3.3).

    In FireSim the scan chain is controlled by an FPGA-hosted simulation
    module and a C++ driver that can pause the simulation, freeze all
    coverage counts and clock them out. Here the "FPGA" is any software
    backend running the scan-chain-transformed circuit, and this module is
    the driver: it pauses (stops poking workload inputs), asserts
    [cover_scan_en], shifts the chain out bit by bit, and reassembles the
    counts map using the chain-order metadata — producing the exact same
    map a native software backend reports, which the test suite verifies
    point by point. *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts

type scan_result = {
  counts : Counts.t;
  scan_cycles : int;  (** chain length x counter width *)
}

(** Clock out the whole chain. Destructive (like a real scan-out at the
    end of simulation): counter state is consumed. *)
let scan_out (b : Sic_sim.Backend.t) (chain : Scan_chain.chain) : scan_result =
  let n = List.length chain.Scan_chain.order in
  let w = chain.Scan_chain.counter_width in
  let total = n * w in
  b.Sic_sim.Backend.poke Scan_chain.scan_en_port (Bv.one 1);
  b.Sic_sim.Backend.poke Scan_chain.scan_in_port (Bv.zero 1);
  let bits = Array.make total false in
  for i = 0 to total - 1 do
    bits.(i) <- Bv.to_bool (b.Sic_sim.Backend.peek Scan_chain.scan_out_port);
    b.Sic_sim.Backend.step 1
  done;
  b.Sic_sim.Backend.poke Scan_chain.scan_en_port (Bv.zero 1);
  (* The first bit out is the MSB of the *last* counter in chain order;
     each counter appears MSB-first. *)
  let counts = Counts.create () in
  let rev_order = List.rev chain.Scan_chain.order in
  List.iteri
    (fun k name ->
      let value = ref 0 in
      for j = 0 to w - 1 do
        value := (!value lsl 1) lor if bits.((k * w) + j) then 1 else 0
      done;
      Counts.set counts name !value)
    rev_order;
  { counts; scan_cycles = total }

(** End-to-end convenience: run [workload] on the scan-chain circuit, then
    scan the counts out. Returns the counts and the scan-out cost in
    cycles (§5.2 reports 8060 counters scanning out in 12 ms at 65 MHz —
    i.e. [scan_cycles / fmax]). *)
let run_and_scan (b : Sic_sim.Backend.t) (chain : Scan_chain.chain)
    ~(workload : Sic_sim.Backend.t -> unit) : scan_result =
  b.Sic_sim.Backend.poke Scan_chain.scan_en_port (Bv.zero 1);
  b.Sic_sim.Backend.poke Scan_chain.scan_in_port (Bv.zero 1);
  workload b;
  scan_out b chain

(** One cycle of random workload that leaves the scan-chain control ports
    alone. {!Sic_sim.Backend.random_stimulus} pokes {e every} data input —
    on a scan-chain circuit that includes [cover_scan_en]/[cover_scan_in],
    randomly freezing the target and scrambling the chain mid-run. A real
    FireSim driver owns those pins exclusively; so does this one. *)
let drive_random ~(bits : unit -> int) (b : Sic_sim.Backend.t) : unit -> unit =
  let inputs =
    List.filter
      (fun (n, _) -> n <> Scan_chain.scan_en_port && n <> Scan_chain.scan_in_port)
      (Sic_sim.Backend.data_inputs b)
  in
  fun () ->
    List.iter
      (fun (n, ty) ->
        b.Sic_sim.Backend.poke n (Bv.random ~width:(Sic_ir.Ty.width ty) bits))
      inputs;
    b.Sic_sim.Backend.step 1

module Timeline = Sic_coverage.Timeline

(** The modelled-FPGA campaign job: reset, run a random workload for
    [cycles] on the scan-chain circuit, then scan the counts out. [bits]
    supplies seeded randomness. With [timeline_every > 0] the chain is
    scanned out every that many target cycles instead of once at the end —
    the §5.2 periodic-sampling mode — accumulating exact totals host-side
    and recording a coverage-convergence {!Sic_coverage.Timeline} (one
    sample per scan, [on_sample] fired alongside for live progress). *)
let run_random ~(bits : unit -> int) ~cycles ?(timeline_every = 0) ?on_sample
    (b : Sic_sim.Backend.t) (chain : Scan_chain.chain) : scan_result * Timeline.t option
    =
  let drive = drive_random ~bits b in
  b.Sic_sim.Backend.poke Scan_chain.scan_en_port (Bv.zero 1);
  b.Sic_sim.Backend.poke Scan_chain.scan_in_port (Bv.zero 1);
  Sic_sim.Backend.reset_sequence b;
  if timeline_every <= 0 then begin
    for _ = 1 to cycles do
      drive ()
    done;
    (scan_out b chain, None)
  end
  else begin
    let tlb = Timeline.builder () in
    let accumulated = ref (Counts.create ()) in
    let scan_cycles = ref 0 in
    let cycle = ref 0 in
    while !cycle < cycles do
      let chunk = min timeline_every (cycles - !cycle) in
      for _ = 1 to chunk do
        drive ()
      done;
      cycle := !cycle + chunk;
      (* a scan restarts the hardware counters, so merging per-period
         results reconstructs the exact totals (see run_with_periodic_scan) *)
      let r = scan_out b chain in
      scan_cycles := !scan_cycles + r.scan_cycles;
      accumulated := Counts.merge [ !accumulated; r.counts ];
      let covered = Counts.covered_points !accumulated in
      Timeline.record tlb ~at:!cycle ~covered;
      match on_sample with Some f -> f ~cycles:!cycle ~covered | None -> ()
    done;
    ( { counts = !accumulated; scan_cycles = !scan_cycles },
      Some (Timeline.build ~total:(List.length chain.Scan_chain.order) tlb) )
  end

(** Scan-out wall-clock estimate at a given simulator frequency, in
    milliseconds. *)
let scan_millis ~scan_cycles ~mhz = float_of_int scan_cycles /. (mhz *. 1000.0)

(** Periodic sampling — the trade-off sketched at the end of §5.2: use
    *small* on-FPGA counters (cheap in LUTs) and scan them out every
    [period] target cycles, accumulating exact totals host-side. A full
    scan shifts zeros back into every counter, so each scan restarts the
    hardware counts; as long as no cover can fire more than [2^width - 1]
    times per period, the accumulated counts equal what arbitrarily wide
    counters would have recorded (tested against the direct counts).

    Returns the accumulated counts and the total overhead in scan
    cycles. *)
let run_with_periodic_scan (b : Sic_sim.Backend.t) (chain : Scan_chain.chain) ~period
    ~total_cycles ~(drive : Sic_sim.Backend.t -> int -> unit) : scan_result =
  b.Sic_sim.Backend.poke Scan_chain.scan_en_port (Bv.zero 1);
  b.Sic_sim.Backend.poke Scan_chain.scan_in_port (Bv.zero 1);
  let accumulated = ref (Counts.create ()) in
  let scan_cycles = ref 0 in
  let cycle = ref 0 in
  while !cycle < total_cycles do
    let chunk = min period (total_cycles - !cycle) in
    for i = 0 to chunk - 1 do
      drive b (!cycle + i);
      b.Sic_sim.Backend.step 1
    done;
    cycle := !cycle + chunk;
    let r = scan_out b chain in
    scan_cycles := !scan_cycles + r.scan_cycles;
    accumulated := Counts.merge [ !accumulated; r.counts ]
  done;
  { counts = !accumulated; scan_cycles = !scan_cycles }
