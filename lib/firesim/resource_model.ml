(** FPGA resource and timing model for the FireSim experiments.

    We cannot place-and-route onto a VU9P here, so Figures 9 and 10 are
    reproduced against an analytical model with the same first-order
    structure as the paper's measurements:

    - Baseline LUTs/FFs are proportional to the size of the simulated
      design (estimated from the lowered IR).
    - Each w-bit coverage counter costs ~w FFs (the counter register) and
      ~w LUTs (increment carry chain + saturation detect + scan mux),
      linear in w exactly as the measured curves are.
    - F_max starts at the design's base frequency and degrades as
      utilization grows, with a deterministic placement-noise term so that
      small counter widths stay "within the noise of differing placements"
      (the paper's observation for <=8-bit Rocket and <=2-bit BOOM).

    The absolute numbers are calibrated to the paper's reported points
    (Rocket SoC at 65 MHz, BOOM at 40 MHz with 16-bit counters); the claim
    being reproduced is the *shape*: linear LUT growth dominated by the
    coverage hardware at large widths, and a noise-floor plateau at small
    widths. *)

open Sic_ir

type utilization = {
  luts : int;
  ffs : int;
  brams : int;
  counter_luts : int;  (** portion attributable to coverage hardware *)
  counter_ffs : int;
}

(* VU9P-scale capacity, for utilization ratios *)
let device_luts = 1_182_000
let device_ffs = 2_364_000

(* per-operation LUT cost estimates for the baseline design *)
let rec expr_cost ty_of (e : Expr.t) =
  let width_of x = Ty.width (Expr.type_of ty_of x) in
  match e with
  | Expr.Ref _ | Expr.UIntLit _ | Expr.SIntLit _ -> 0
  | Expr.Mux (s, a, b) -> expr_cost ty_of s + expr_cost ty_of a + expr_cost ty_of b + width_of a
  | Expr.Unop (_, a) -> expr_cost ty_of a + width_of a
  | Expr.Binop (op, a, b) -> (
      let base = expr_cost ty_of a + expr_cost ty_of b in
      let w = max (width_of a) (width_of b) in
      match op with
      | Expr.Mul -> base + (w * w / 2)
      | Expr.Div | Expr.Rem -> base + (w * w)
      | Expr.Add | Expr.Sub -> base + w
      | Expr.Dshl | Expr.Dshr -> base + (w * 3)
      | _ -> base + w)
  | Expr.Intop (_, _, a) -> expr_cost ty_of a
  | Expr.Bits (a, _, _) -> expr_cost ty_of a

(** Estimate the baseline (uninstrumented) resource usage of a lowered
    circuit. *)
let baseline (c : Circuit.t) : utilization =
  let m = Circuit.main c in
  let env = Circuit.build_env m in
  let ty_of = Circuit.lookup_of env in
  let luts = ref 0 and ffs = ref 0 and brams = ref 0 in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Node { expr; _ } | Stmt.Connect { expr; _ } -> luts := !luts + expr_cost ty_of expr
      | Stmt.Reg { ty; _ } -> ffs := !ffs + Ty.width ty
      | Stmt.Mem { mem; _ } ->
          let bits = mem.Stmt.mem_depth * Ty.width mem.Stmt.mem_data in
          if bits > 2048 then brams := !brams + ((bits + 36863) / 36864)
          else ffs := !ffs + bits
      | _ -> ())
    m.Circuit.body;
  { luts = !luts; ffs = !ffs; brams = !brams; counter_luts = 0; counter_ffs = 0 }

(** Resource usage with [n_covers] scan-chained counters of [width] bits.
    [width = 0] means no coverage instrumentation (the baseline). *)
let with_coverage (base : utilization) ~n_covers ~width : utilization =
  if width = 0 then base
  else begin
    (* counter register + increment/saturate logic + scan mux: measured
       FireSim numbers are close to 1 LUT and 1 FF per counter bit plus a
       small fixed cost per counter *)
    let counter_ffs = n_covers * width in
    let counter_luts = (n_covers * width) + (n_covers * 2) in
    {
      base with
      luts = base.luts + counter_luts;
      ffs = base.ffs + counter_ffs;
      counter_luts;
      counter_ffs;
    }
  end

(* deterministic pseudo-noise in [-1.0, 1.0], stable per (seed, width) *)
let placement_noise ~seed ~width =
  let h = Hashtbl.hash (seed, width, "placement") land 0xFFFF in
  (float_of_int h /. 32767.5) -. 1.0

(** Post-place-and-route F_max estimate in MHz. [base_mhz] is the
    uninstrumented design's frequency (65 for the Rocket-class SoC, 40 for
    the BOOM-class one, §5.2). Congestion is driven by the share of the
    fabric occupied by coverage hardware relative to the design itself:
    below a noise floor, runs differ only by placement noise (the paper's
    observation for <=8-bit Rocket / <=2-bit BOOM counters); beyond it,
    longer routes cost frequency roughly linearly. *)
let fmax ~base_mhz ~(u : utilization) ~seed ~width : float =
  let coverage_share =
    float_of_int u.counter_luts /. float_of_int (max 1 (u.luts - u.counter_luts))
  in
  let congestion = max 0.0 (coverage_share -. 0.35) in
  let degradation = base_mhz *. congestion *. 0.18 in
  let noise = placement_noise ~seed ~width *. base_mhz *. 0.025 in
  max (base_mhz *. 0.3) (base_mhz -. degradation +. noise)

let pp_utilization fmt (u : utilization) =
  Format.fprintf fmt "LUT %7d (cov %7d)  FF %7d (cov %7d)  BRAM %4d" u.luts
    u.counter_luts u.ffs u.counter_ffs u.brams
