(** Coverage scan-chain insertion for FPGA-accelerated simulation (§3.3,
    Figure 4).

    Cover statements cannot be mapped onto an FPGA directly, so each one is
    replaced by a saturating counter of user-selected width, and all
    counters are stitched into a scan chain controlled by the host: when
    [cover_scan_en] is high the counters stop counting and shift one bit
    per cycle from [cover_scan_in] towards [cover_scan_out]. The pass
    emits the chain order metadata the driver needs to re-associate bits
    with cover names — after scan-out the counts are *exactly* the map any
    software backend would have produced. *)

open Sic_ir
module Pass = Sic_passes.Pass

let pass_name = "coverage-scan-chain"

type chain = {
  counter_width : int;
  order : string list;
      (** cover names, scan-in side first; the bit closest to [scan_out]
          is the MSB of the *last* counter in this list *)
}

let scan_en_port = "cover_scan_en"
let scan_in_port = "cover_scan_in"
let scan_out_port = "cover_scan_out"

(** Replace covers by scan-chained saturating counters of [width] bits. *)
let insert ~width (c : Circuit.t) : Circuit.t * chain =
  if width < 1 then Pass.error ~pass:pass_name "counter width must be >= 1";
  if not (Sic_passes.Compile.is_low_form c) then
    Pass.error ~pass:pass_name "scan-chain insertion requires a flat, lowered circuit";
  let m = Circuit.main c in
  let ns = Namespace.of_module m in
  let order = ref [] in
  let counters = ref [] in
  (* strip covers, remembering name/pred in declaration order *)
  let body =
    Stmt.map_concat
      (fun s ->
        match s with
        | Stmt.Cover { name; pred; info } ->
            order := name :: !order;
            counters := (name, pred, info) :: !counters;
            []
        | Stmt.CoverValues { name; _ } ->
            Pass.error ~pass:pass_name
              "cover-values %s must be expanded before scan-chain insertion" name
        | s -> [ s ])
      m.Circuit.body
  in
  let order = List.rev !order in
  let counters = List.rev !counters in
  let scan_en = Expr.Ref scan_en_port in
  (* FireSim's host decoupling: while the host scans, target time is
     frozen. Gate every register update and memory write with !scan_en so
     "pause the simulation, freezing all coverage counts" (§3.3) holds for
     the whole target, not just the counters. *)
  let regs = Hashtbl.create 32 in
  Stmt.iter
    (fun s -> match s with Stmt.Reg { name; _ } -> Hashtbl.replace regs name () | _ -> ())
    body;
  let not_scanning = Expr.Unop (Expr.Not, scan_en) in
  let body =
    Stmt.map_concat
      (fun s ->
        match s with
        | Stmt.Connect { loc; expr; info } when Hashtbl.mem regs loc ->
            [ Stmt.Connect { loc; expr = Expr.Mux (scan_en, Expr.Ref loc, expr); info } ]
        | Stmt.Connect { loc; expr; info } when Filename.check_suffix loc ".en" ->
            [ Stmt.Connect { loc; expr = Expr.and_ not_scanning expr; info } ]
        | Stmt.Stop { name; cond; exit_code; info } ->
            [ Stmt.Stop { name; cond = Expr.and_ not_scanning cond; exit_code; info } ]
        | s -> [ s ])
      body
  in
  let stmts = ref [] in
  let emit s = stmts := s :: !stmts in
  (* chain: counter k shifts in the scan-out (MSB) of counter k-1 *)
  let last_bit =
    List.fold_left
      (fun chain_in (name, pred, info) ->
        let reg = Namespace.fresh ns ("_cov_cnt_" ^ name) in
        emit (Stmt.Reg { name = reg; ty = Ty.UInt width; reset = None; info });
        let ones = Expr.UIntLit (Sic_bv.Bv.ones width) in
        let saturated = Expr.eq_ (Expr.Ref reg) ones in
        let incremented =
          (* tail drops the carry bit of the (width+1)-wide add *)
          Expr.Intop (Expr.Tail, 1, Expr.Binop (Expr.Add, Expr.Ref reg, Expr.u_lit ~width:1 1))
        in
        let counting =
          Expr.Mux (Expr.and_ pred (Expr.Unop (Expr.Not, saturated)), incremented, Expr.Ref reg)
        in
        let shifted =
          if width = 1 then chain_in
          else Expr.Binop (Expr.Cat, Expr.Bits (Expr.Ref reg, width - 2, 0), chain_in)
        in
        emit
          (Stmt.Connect
             { loc = reg; expr = Expr.Mux (scan_en, shifted, counting); info });
        (* this counter's scan-out is its MSB *)
        Expr.Bits (Expr.Ref reg, width - 1, width - 1))
      (Expr.Ref scan_in_port) counters
  in
  emit (Stmt.Connect { loc = scan_out_port; expr = last_bit; info = Info.unknown });
  let ports =
    m.Circuit.ports
    @ [
        { Circuit.port_name = scan_en_port; dir = Circuit.Input; port_ty = Ty.UInt 1; port_info = Info.unknown };
        { Circuit.port_name = scan_in_port; dir = Circuit.Input; port_ty = Ty.UInt 1; port_info = Info.unknown };
        { Circuit.port_name = scan_out_port; dir = Circuit.Output; port_ty = Ty.UInt 1; port_info = Info.unknown };
      ]
  in
  let m' = { m with Circuit.ports; body = body @ List.rev !stmts } in
  ({ c with Circuit.modules = [ m' ] }, { counter_width = width; order })
