(** The host-side driver for FPGA-accelerated coverage (§3.3): pauses the
    simulated target, shifts the scan chain out bit by bit, and
    reassembles the same counts map a software backend would report. *)

module Counts = Sic_coverage.Counts

type scan_result = {
  counts : Counts.t;
  scan_cycles : int;  (** chain length x counter width *)
}

val scan_out : Sic_sim.Backend.t -> Scan_chain.chain -> scan_result
(** Clock the whole chain out. Destructive: counters end up zeroed. *)

val run_and_scan :
  Sic_sim.Backend.t ->
  Scan_chain.chain ->
  workload:(Sic_sim.Backend.t -> unit) ->
  scan_result
(** Run [workload] with counting enabled, then scan out. *)

val run_random :
  bits:(unit -> int) ->
  cycles:int ->
  ?timeline_every:int ->
  ?on_sample:(cycles:int -> covered:int -> unit) ->
  Sic_sim.Backend.t ->
  Scan_chain.chain ->
  scan_result * Sic_coverage.Timeline.t option
(** Reset, drive a random workload for [cycles] (leaving the scan-chain
    control ports alone), then scan out — the modelled-FPGA job the
    campaign orchestrator schedules. [timeline_every > 0] switches to
    periodic scans every that many cycles (exact totals accumulated
    host-side), recording a coverage-convergence timeline and firing
    [on_sample] at each scan; [0] (the default) scans once at the end and
    returns no timeline. *)

val scan_millis : scan_cycles:int -> mhz:float -> float
(** Wall-clock cost of a scan at a target frequency, in ms (§5.2). *)

val run_with_periodic_scan :
  Sic_sim.Backend.t ->
  Scan_chain.chain ->
  period:int ->
  total_cycles:int ->
  drive:(Sic_sim.Backend.t -> int -> unit) ->
  scan_result
(** The §5.2 "smaller counters sampled more frequently" trade-off: scan
    every [period] cycles and accumulate exact totals host-side. Sound
    as long as no cover fires more than [2^width - 1] times per
    period. *)
