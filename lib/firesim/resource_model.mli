(** Analytical FPGA resource and timing model for the Figure 9/10
    experiments (the substitution for place-and-route on a VU9P; see
    DESIGN.md). Calibrated so the paper's reported operating points hold;
    the reproduced claims are the shapes: linear LUT/FF growth in counter
    width, coverage hardware dominating at large widths, and a
    placement-noise plateau at small widths. *)

type utilization = {
  luts : int;
  ffs : int;
  brams : int;
  counter_luts : int;  (** attributable to coverage counters *)
  counter_ffs : int;
}

val device_luts : int
val device_ffs : int

val baseline : Sic_ir.Circuit.t -> utilization
(** Estimate the uninstrumented design from the lowered IR. *)

val with_coverage : utilization -> n_covers:int -> width:int -> utilization
(** Add [n_covers] scan-chained counters of [width] bits ([width = 0]
    means no instrumentation). *)

val fmax : base_mhz:float -> u:utilization -> seed:int -> width:int -> float
(** Post-P&R frequency estimate with deterministic placement noise. *)

val pp_utilization : Format.formatter -> utilization -> unit
