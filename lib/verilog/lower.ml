(** IR builder: elaborates a validated Verilog design into a multi-module
    {!Sic_ir.Circuit.t}. The existing pass pipeline (check, lower-whens,
    inline, const-prop, dce), the coverage instrumentation and every
    backend then work unchanged.

    Lowering rules (documented in DESIGN.md):
    - the posedge signal becomes the canonical [clock : Clock] input port;
      every module also gets a [reset : UInt<1>] input (reusing a 1-bit
      [reset] input when the design declares one);
    - [reg r = k;] lowers to a register with [reset => (reset, k)]:
      registers power on to zero and load their initializer during the
      harness reset pulse;
    - nonblocking assignments under [if]/[case] become [when] trees; a
      register not assigned on some path holds its value (ExpandWhens);
    - every Verilog operator result is truncated/padded back to its
      Verilog-determined width ([Bits]/[pad]) on top of the growing
      FIRRTL width rules;
    - each syntactic memory read becomes a combinational read port, each
      write site a write port (enable carries the branch predicate);
      [$readmemh] becomes the memory's power-on [init] image;
    - an [output reg] port is backed by an internal register ([<name>_r])
      connected to the port. *)

module Bv = Sic_bv.Bv
module Ir = Sic_ir
module V = Validator
open Ast

(* ------------------------------------------------------------------ *)
(* $readmemh image loader                                               *)
(* ------------------------------------------------------------------ *)

(* Blank out [//] and [/* */] comments, preserving newlines so line
   numbers in diagnostics stay right. *)
let strip_comments (s : string) : string =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && Bytes.get b !i = '/' && Bytes.get b (!i + 1) = '/' then
      while !i < n && Bytes.get b !i <> '\n' do
        Bytes.set b !i ' ';
        incr i
      done
    else if !i + 1 < n && Bytes.get b !i = '/' && Bytes.get b (!i + 1) = '*' then begin
      let closed = ref false in
      while (not !closed) && !i < n do
        if !i + 1 < n && Bytes.get b !i = '*' && Bytes.get b (!i + 1) = '/' then begin
          Bytes.set b !i ' ';
          Bytes.set b (!i + 1) ' ';
          i := !i + 2;
          closed := true
        end
        else begin
          if Bytes.get b !i <> '\n' then Bytes.set b !i ' ';
          incr i
        end
      done
    end
    else incr i
  done;
  Bytes.to_string b

let load_hex ~(pos : pos) ~path ~width ~depth : Bv.t array =
  let text =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error _ -> error pos "$readmemh: cannot read '%s'" path
  in
  let text = strip_comments text in
  let arr = Array.make depth (Bv.zero width) in
  let addr = ref 0 and line = ref 1 in
  let word = Buffer.create 16 in
  let fail fmt =
    Printf.ksprintf (fun m -> error pos "$readmemh %s:%d: %s" path !line m) fmt
  in
  let flush_word () =
    if Buffer.length word > 0 then begin
      let w = Buffer.contents word in
      Buffer.clear word;
      if w.[0] = '@' then begin
        let a = String.sub w 1 (String.length w - 1) in
        match int_of_string_opt ("0x" ^ a) with
        | Some a when a >= 0 && a < depth -> addr := a
        | Some a -> fail "address @%x out of range for depth %d" a depth
        | None -> fail "bad address '%s'" w
      end
      else begin
        if !addr >= depth then fail "more than %d words" depth;
        (match Bv.of_hex_string ~width:(4 * String.length w) w with
        | v -> arr.(!addr) <- if Bv.width v >= width then Bv.extract ~hi:(width - 1) ~lo:0 v else Bv.extend_u v width
        | exception _ -> fail "bad word '%s'" w);
        incr addr
      end
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\r' -> flush_word ()
      | '\n' -> flush_word (); incr line
      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' | '@' -> Buffer.add_char word c
      | '_' -> ()
      | c -> fail "unexpected character '%s'" (Char.escaped c))
    text;
  flush_word ();
  arr

(* ------------------------------------------------------------------ *)
(* Per-module lowering context                                          *)
(* ------------------------------------------------------------------ *)

type mem_acc = {
  ma_depth : int;
  ma_width : int;
  ma_pos : pos;
  mutable ma_readers : (string * Ir.Expr.t) list;  (** reversed: port, address *)
  mutable ma_writers : string list;  (** reversed *)
  mutable ma_init : Bv.t array option;
}

type mctx = {
  de : V.denv;
  me : V.menv;
  dir : string;
  used : (string, unit) Hashtbl.t;
  mems : (string, mem_acc) Hashtbl.t;
  out_regs : (string, string) Hashtbl.t;  (** output-reg port -> backing register *)
}

let fresh ctx base =
  let rec go i =
    let n = Printf.sprintf "%s_%d" base i in
    if Hashtbl.mem ctx.used n then go (i + 1) else n
  in
  let n = if Hashtbl.mem ctx.used base then go 1 else base in
  Hashtbl.replace ctx.used n ();
  n

(* the name an expression reads / an assignment drives in the IR *)
let ref_name ctx n =
  match Hashtbl.find_opt ctx.out_regs n with Some r -> r | None -> n

let signal ctx p n = V.find_signal ctx.me p n

let clog2 = Ir.Ty.clog2

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                  *)
(* ------------------------------------------------------------------ *)

let resize (e : Ir.Expr.t) (w : int) (target : int) : Ir.Expr.t =
  if w = target then e
  else if w > target then Ir.Expr.Bits (e, target - 1, 0)
  else Ir.Expr.Intop (Ir.Expr.Pad, target, e)

let bool_of (e : Ir.Expr.t) (w : int) : Ir.Expr.t =
  if w = 1 then e else Ir.Expr.Unop (Ir.Expr.Orr, e)

let alloc_reader ctx mem addr =
  let ma = Hashtbl.find ctx.mems mem in
  let port = Printf.sprintf "r%d" (List.length ma.ma_readers) in
  ma.ma_readers <- (port, addr) :: ma.ma_readers;
  port

let alloc_writer ctx mem =
  let ma = Hashtbl.find ctx.mems mem in
  let port = Printf.sprintf "w%d" (List.length ma.ma_writers) in
  ma.ma_writers <- port :: ma.ma_writers;
  port

let rec lx ctx (e : expr) : Ir.Expr.t * int =
  match e with
  | Literal { value; _ } -> (Ir.Expr.UIntLit value, Bv.width value)
  | Ident (n, p) -> (
      let s = signal ctx p n in
      match s.V.sg_kind with
      | V.K_param (v, sized) ->
          let w = if sized then Bv.width v else max 32 (Bv.width v) in
          (Ir.Expr.UIntLit (Bv.extend_u v w), w)
      | _ -> (Ir.Expr.Ref (ref_name ctx n), s.V.sg_width))
  | Unop (op, a, _) -> (
      let ea, wa = lx ctx a in
      match op with
      | Lnot -> (Ir.Expr.not_ (bool_of ea wa), 1)
      | Bnot -> (Ir.Expr.Unop (Ir.Expr.Not, ea), wa)
      | Rand -> (Ir.Expr.Unop (Ir.Expr.Andr, ea), 1)
      | Ror -> (Ir.Expr.Unop (Ir.Expr.Orr, ea), 1)
      | Rxor -> (Ir.Expr.Unop (Ir.Expr.Xorr, ea), 1)
      | Uminus ->
          (* two's complement at the operand width *)
          (Ir.Expr.Bits (Ir.Expr.Unop (Ir.Expr.AsUInt, Ir.Expr.Unop (Ir.Expr.Neg, ea)), wa - 1, 0), wa))
  | Binop (op, a, b, _) -> (
      let ea, wa = lx ctx a in
      let eb, wb = lx ctx b in
      match op with
      | Eq | Neq | Lt | Le | Gt | Ge ->
          let w = max wa wb in
          let ea = resize ea wa w and eb = resize eb wb w in
          let ir_op =
            match op with
            | Eq -> Ir.Expr.Eq
            | Neq -> Ir.Expr.Neq
            | Lt -> Ir.Expr.Lt
            | Le -> Ir.Expr.Leq
            | Gt -> Ir.Expr.Gt
            | Ge -> Ir.Expr.Geq
            | _ -> Ir.Expr.Eq
          in
          (Ir.Expr.Binop (ir_op, ea, eb), 1)
      | Land -> (Ir.Expr.and_ (bool_of ea wa) (bool_of eb wb), 1)
      | Lor -> (Ir.Expr.or_ (bool_of ea wa) (bool_of eb wb), 1)
      | Shl -> (
          match eb with
          | Ir.Expr.UIntLit v ->
              let n = Bv.to_int_trunc v in
              if n >= wa then (Ir.Expr.UIntLit (Bv.zero wa), wa)
              else (Ir.Expr.Bits (Ir.Expr.Intop (Ir.Expr.Shl, n, ea), wa - 1, 0), wa)
          | _ ->
              (* dynamic shift: keep the amount narrow so the FIRRTL result
                 width stays bounded; guard amounts >= wa (result is 0) *)
              let need = clog2 (wa + 1) in
              if wb <= need && wb <= 13 then
                (Ir.Expr.Bits (Ir.Expr.Binop (Ir.Expr.Dshl, ea, eb), wa - 1, 0), wa)
              else
                let nb = min 13 need in
                let amt = resize eb wb nb in
                let too_big =
                  Ir.Expr.Binop (Ir.Expr.Geq, eb, Ir.Expr.u_lit ~width:wb wa)
                in
                let shifted = Ir.Expr.Bits (Ir.Expr.Binop (Ir.Expr.Dshl, ea, amt), wa - 1, 0) in
                (Ir.Expr.Mux (too_big, Ir.Expr.UIntLit (Bv.zero wa), shifted), wa))
      | Shr -> (Ir.Expr.Binop (Ir.Expr.Dshr, ea, eb), wa)
      | Add | Sub | Mul | Div | Mod | Band | Bor | Bxor ->
          let w = V.width_of ctx.me e in
          let ea = resize ea wa w and eb = resize eb wb w in
          let trunc x = Ir.Expr.Bits (x, w - 1, 0) in
          let r =
            match op with
            | Add -> trunc (Ir.Expr.Binop (Ir.Expr.Add, ea, eb))
            | Sub -> trunc (Ir.Expr.Binop (Ir.Expr.Sub, ea, eb))
            | Mul -> trunc (Ir.Expr.Binop (Ir.Expr.Mul, ea, eb))
            | Div -> Ir.Expr.Binop (Ir.Expr.Div, ea, eb)
            | Mod -> Ir.Expr.Binop (Ir.Expr.Rem, ea, eb)
            | Band -> Ir.Expr.Binop (Ir.Expr.And, ea, eb)
            | Bor -> Ir.Expr.Binop (Ir.Expr.Or, ea, eb)
            | Bxor -> Ir.Expr.Binop (Ir.Expr.Xor, ea, eb)
            | _ -> trunc ea
          in
          (r, w))
  | Ternary (c, a, b, _) ->
      let ec, wc = lx ctx c in
      let ea, wa = lx ctx a in
      let eb, wb = lx ctx b in
      let w = V.width_of ctx.me e in
      (Ir.Expr.Mux (bool_of ec wc, resize ea wa w, resize eb wb w), w)
  | Concat (parts, _) ->
      let lowered = List.map (lx ctx) parts in
      let e, w =
        match lowered with
        | [] -> (Ir.Expr.UIntLit (Bv.zero 1), 1)
        | first :: rest ->
            List.fold_left
              (fun (acc, aw) (e, w) -> (Ir.Expr.Binop (Ir.Expr.Cat, acc, e), aw + w))
              first rest
      in
      (e, w)
  | Repl (n, a, _) ->
      let ea, wa = lx ctx a in
      let rec go i acc aw =
        if i = 0 then (acc, aw)
        else go (i - 1) (Ir.Expr.Binop (Ir.Expr.Cat, acc, ea)) (aw + wa)
      in
      go (n - 1) ea wa
  | Index (base, idx, p) -> (
      let s = signal ctx p base in
      match s.V.sg_kind with
      | V.K_mem depth ->
          let ei, wi = lx ctx idx in
          let aw = clog2 depth in
          let port = alloc_reader ctx base (resize ei wi aw) in
          (Ir.Expr.Ref (base ^ "." ^ port ^ ".data"), s.V.sg_width)
      | _ -> (
          let b = Ir.Expr.Ref (ref_name ctx base) in
          match V.const_value ctx.me idx with
          | Some v ->
              let i = Bv.to_int_trunc v in
              (Ir.Expr.Bits (b, i, i), 1)
          | None ->
              let ei, _ = lx ctx idx in
              (Ir.Expr.Bits (Ir.Expr.Binop (Ir.Expr.Dshr, b, ei), 0, 0), 1)))
  | Part (base, hi, lo, _) -> (Ir.Expr.Bits (Ir.Expr.Ref (ref_name ctx base), hi, lo), hi - lo + 1)

(* lower and fit to a target width *)
let lx_to ctx e target =
  let ir, w = lx ctx e in
  resize ir w target

(* ------------------------------------------------------------------ *)
(* Statement lowering (always bodies)                                   *)
(* ------------------------------------------------------------------ *)

(* read-modify-write for part-selects on the left: the untouched bits come
   from the register's previous value *)
let rmw ctx sink width hi lo rhs info =
  let parts =
    (if hi < width - 1 then [ Ir.Expr.Bits (Ir.Expr.Ref sink, width - 1, hi + 1) ] else [])
    @ [ rhs ]
    @ (if lo > 0 then [ Ir.Expr.Bits (Ir.Expr.Ref sink, lo - 1, 0) ] else [])
  in
  let expr =
    match parts with
    | [] -> rhs
    | first :: rest ->
        List.fold_left (fun acc e -> Ir.Expr.Binop (Ir.Expr.Cat, acc, e)) first rest
  in
  ignore ctx;
  Ir.Stmt.Connect { loc = sink; expr; info }

let rec lstmt ctx (s : stmt) : Ir.Stmt.t list =
  match s with
  | Assign (lv, e, p) -> (
      let info = info_of p in
      match lv with
      | LvId (n, lp) ->
          let s = signal ctx lp n in
          [ Ir.Stmt.Connect { loc = ref_name ctx n; expr = lx_to ctx e s.V.sg_width; info } ]
      | LvIndex (n, idx, lp) -> (
          let s = signal ctx lp n in
          match s.V.sg_kind with
          | V.K_mem depth ->
              let port = alloc_writer ctx n in
              let aw = clog2 depth in
              let f field = n ^ "." ^ port ^ "." ^ field in
              [
                Ir.Stmt.Connect { loc = f "en"; expr = Ir.Expr.true_; info };
                Ir.Stmt.Connect { loc = f "addr"; expr = lx_to ctx idx aw; info };
                Ir.Stmt.Connect { loc = f "data"; expr = lx_to ctx e s.V.sg_width; info };
              ]
          | _ ->
              (* validator guarantees a constant bit index here *)
              let i =
                match V.const_value ctx.me idx with
                | Some v -> Bv.to_int_trunc v
                | None -> error lp "dynamic bit-select on the left of an assignment"
              in
              let sink = ref_name ctx n in
              [ rmw ctx sink s.V.sg_width i i (lx_to ctx e 1) info ])
      | LvPart (n, hi, lo, lp) ->
          let s = signal ctx lp n in
          let sink = ref_name ctx n in
          [ rmw ctx sink s.V.sg_width hi lo (lx_to ctx e (hi - lo + 1)) info ])
  | If (c, t, f, p) ->
      let ec, wc = lx ctx c in
      [
        Ir.Stmt.When
          {
            cond = bool_of ec wc;
            then_ = List.concat_map (lstmt ctx) t;
            else_ = List.concat_map (lstmt ctx) f;
            info = info_of p;
          };
      ]
  | Case { scrutinee; arms; default; case_pos } ->
      let es, ws = lx ctx scrutinee in
      let info = info_of case_pos in
      let arm_cond items =
        let conds =
          List.map
            (fun item ->
              let ei, wi = lx ctx item in
              let w = max ws wi in
              Ir.Expr.eq_ (resize es ws w) (resize ei wi w))
            items
        in
        match conds with
        | [] -> Ir.Expr.false_
        | first :: rest -> List.fold_left Ir.Expr.or_ first rest
      in
      let else_base = List.concat_map (lstmt ctx) default in
      List.fold_right
        (fun (items, body) acc ->
          [
            Ir.Stmt.When
              {
                cond = arm_cond items;
                then_ = List.concat_map (lstmt ctx) body;
                else_ = acc;
                info;
              };
          ])
        arms else_base

(* ------------------------------------------------------------------ *)
(* FSM inference                                                        *)
(* ------------------------------------------------------------------ *)

(* A register is a state machine candidate when every assignment to it is
   a constant and it scrutinizes a case statement. Localparam names give
   the states their names (the idiomatic Verilog FSM encoding). *)
let infer_fsms ctx : Ir.Annotation.t list =
  let m = ctx.me.V.me_module in
  let assigns : (string, Bv.t option list) Hashtbl.t = Hashtbl.create 8 in
  let scrutinees : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let record n v =
    Hashtbl.replace assigns n (v :: Option.value ~default:[] (Hashtbl.find_opt assigns n))
  in
  let rec walk (s : stmt) =
    match s with
    | Assign (LvId (n, _), e, _) -> record n (V.const_value ctx.me e)
    | Assign (lv, _, _) -> record (lvalue_base lv) None
    | If (_, t, f, _) ->
        List.iter walk t;
        List.iter walk f
    | Case { scrutinee; arms; default; _ } ->
        (match scrutinee with
        | Ident (n, _) -> Hashtbl.replace scrutinees n ()
        | _ -> ());
        List.iter (fun (_, body) -> List.iter walk body) arms;
        List.iter walk default
  in
  List.iter
    (fun (item : item) -> match item with Always { body; _ } -> List.iter walk body | _ -> ())
    m.mod_items;
  let params =
    Hashtbl.fold
      (fun _ (s : V.signal) acc ->
        match s.V.sg_kind with
        | V.K_param (v, _) -> (Bv.to_int_trunc v, s.V.sg_name) :: acc
        | _ -> acc)
      ctx.me.V.me_signals []
  in
  Hashtbl.fold
    (fun n values acc ->
      match Hashtbl.find_opt ctx.me.V.me_signals n with
      | Some ({ V.sg_kind = V.K_reg | V.K_output; sg_is_storage = true; sg_width; _ } as s)
        when Hashtbl.mem scrutinees n && sg_width <= 8 ->
          if List.exists (fun v -> v = None) values then acc
          else
            let consts = List.filter_map (fun v -> v) values in
            let codes =
              List.sort_uniq compare
                (List.map Bv.to_int_trunc consts
                @ match s.V.sg_init with Some v -> [ Bv.to_int_trunc v ] | None -> [])
            in
            if List.length codes < 2 || List.length codes > 64 then acc
            else begin
              let variants =
                List.map
                  (fun code ->
                    match List.assoc_opt code params with
                    | Some pname -> (pname, code)
                    | None -> (Printf.sprintf "S%d" code, code))
                  codes
              in
              let enum_name = Printf.sprintf "%s_%s_states" m.mod_name n in
              let reg = ref_name ctx n in
              Ir.Annotation.Enum_def { enum_name; variants }
              :: Ir.Annotation.Enum_reg { module_name = m.mod_name; reg; enum = enum_name }
              :: acc
            end
      | _ -> acc)
    assigns []

(* ------------------------------------------------------------------ *)
(* Module lowering                                                      *)
(* ------------------------------------------------------------------ *)

(* IR port list: verilog name, IR name, direction, type. The clock port is
   canonicalized to "clock"; a synthetic 1-bit "reset" input is appended
   unless the design already declares one. *)
let ir_ports (me : V.menv) :
    (string * string * Ir.Circuit.direction * Ir.Ty.t * Ir.Info.t) list =
  let ports =
    List.map
      (fun n ->
        let s = Hashtbl.find me.V.me_signals n in
        let dir =
          match s.V.sg_kind with K_input -> Ir.Circuit.Input | _ -> Ir.Circuit.Output
        in
        let info = info_of s.V.sg_pos in
        if me.V.me_clock = Some n then (n, "clock", Ir.Circuit.Input, Ir.Ty.Clock, info)
        else (n, n, dir, Ir.Ty.UInt s.V.sg_width, info))
      me.V.me_port_order
  in
  if List.exists (fun (n, _, _, _, _) -> n = "reset") ports then ports
  else
    (* the synthetic reset has no source line of its own *)
    ports @ [ ("reset", "reset", Ir.Circuit.Input, Ir.Ty.UInt 1, Ir.Info.unknown) ]

let lower_module (de : V.denv) ~dir (me : V.menv) : Ir.Circuit.modul * Ir.Annotation.t list =
  let m = me.V.me_module in
  let ctx =
    {
      de;
      me;
      dir;
      used = Hashtbl.create 32;
      mems = Hashtbl.create 4;
      out_regs = Hashtbl.create 4;
    }
  in
  Hashtbl.iter (fun n _ -> Hashtbl.replace ctx.used n ()) me.V.me_signals;
  Hashtbl.replace ctx.used "clock" ();
  Hashtbl.replace ctx.used "reset" ();
  List.iter
    (fun (item : item) ->
      match item with
      | Instance { inst_name; _ } -> Hashtbl.replace ctx.used inst_name ()
      | _ -> ())
    m.mod_items;
  (* backing registers for output-reg ports; memory accumulators *)
  Hashtbl.iter
    (fun n (s : V.signal) ->
      match s.V.sg_kind with
      | V.K_output when s.V.sg_is_storage ->
          Hashtbl.replace ctx.out_regs n (fresh ctx (n ^ "_r"))
      | V.K_mem depth ->
          Hashtbl.replace ctx.mems n
            {
              ma_depth = depth;
              ma_width = s.V.sg_width;
              ma_pos = s.V.sg_pos;
              ma_readers = [];
              ma_writers = [];
              ma_init = None;
            }
      | _ -> ())
    me.V.me_signals;
  let reset_ref = Ir.Expr.Ref "reset" in
  (* declarations in source order *)
  let decls = ref [] in
  let emit_decl s = decls := s :: !decls in
  List.iter
    (fun (item : item) ->
      match item with
      | Port { name; pos; _ } -> (
          match Hashtbl.find_opt ctx.out_regs name with
          | Some r ->
              let s = Hashtbl.find me.V.me_signals name in
              let reset =
                match s.V.sg_init with
                | Some v -> Some (reset_ref, Ir.Expr.UIntLit (Bv.extend_u v s.V.sg_width))
                | None -> None
              in
              emit_decl
                (Ir.Stmt.Reg { name = r; ty = Ir.Ty.UInt s.V.sg_width; reset; info = info_of pos })
          | None -> ())
      | Net { kind; name; array = None; pos; _ } -> (
          let s = Hashtbl.find me.V.me_signals name in
          match s.V.sg_kind with
          | V.K_input | V.K_output when not s.V.sg_is_storage -> ()
          | V.K_output -> (
              (* output reg declared in the body *)
              match Hashtbl.find_opt ctx.out_regs name with
              | Some r ->
                  let reset =
                    match s.V.sg_init with
                    | Some v -> Some (reset_ref, Ir.Expr.UIntLit (Bv.extend_u v s.V.sg_width))
                    | None -> None
                  in
                  emit_decl
                    (Ir.Stmt.Reg
                       { name = r; ty = Ir.Ty.UInt s.V.sg_width; reset; info = info_of pos })
              | None -> ())
          | V.K_reg ->
              let reset =
                match s.V.sg_init with
                | Some v -> Some (reset_ref, Ir.Expr.UIntLit (Bv.extend_u v s.V.sg_width))
                | None -> None
              in
              emit_decl
                (Ir.Stmt.Reg { name; ty = Ir.Ty.UInt s.V.sg_width; reset; info = info_of pos })
          | V.K_wire when kind = Kwire ->
              emit_decl (Ir.Stmt.Wire { name; ty = Ir.Ty.UInt s.V.sg_width; info = info_of pos })
          | _ -> ())
      | Net { array = Some _; _ } -> ()  (* memories are declared after port discovery *)
      | _ -> ())
    m.mod_items;
  (* body *)
  let body = ref [] in
  let emit s = body := s :: !body in
  List.iter
    (fun (item : item) ->
      match item with
      | Port _ | Localparam _ -> ()
      | Net { kind = Kwire; init = Some e; name; pos; _ } ->
          let s = Hashtbl.find me.V.me_signals name in
          emit
            (Ir.Stmt.Connect
               { loc = name; expr = lx_to ctx e s.V.sg_width; info = info_of pos })
      | Net _ -> ()
      | ContAssign (lv, e, p) -> (
          match lv with
          | LvId (n, lp) ->
              let s = signal ctx lp n in
              emit
                (Ir.Stmt.Connect
                   { loc = ref_name ctx n; expr = lx_to ctx e s.V.sg_width; info = info_of p })
          | LvIndex (n, _, lp) | LvPart (n, _, _, lp) ->
              error lp "select on the left of a continuous assign to '%s'" n)
      | Always { body = stmts; _ } -> List.iter (fun s -> List.iter emit (lstmt ctx s)) stmts
      | Readmemh { path; mem; pos } ->
          let ma = Hashtbl.find ctx.mems mem in
          let full =
            if Filename.is_relative path then Filename.concat ctx.dir path else path
          in
          ma.ma_init <-
            Some
              (load_hex ~pos ~path:full ~width:ma.ma_width ~depth:ma.ma_depth)
      | Instance { module_name; inst_name; conns; pos } ->
          let child = Hashtbl.find de.V.de_modules module_name in
          let info = info_of pos in
          emit (Ir.Stmt.Inst { name = inst_name; module_name; info });
          let connected = Hashtbl.create 8 in
          let bind port (e : expr option) =
            Hashtbl.replace connected port ();
            match e with
            | None -> ()
            | Some e -> (
                let cs = Hashtbl.find child.V.me_signals port in
                if child.V.me_clock = Some port then
                  (* validated: e is this module's clock *)
                  emit
                    (Ir.Stmt.Connect
                       { loc = inst_name ^ ".clock"; expr = Ir.Expr.Ref "clock"; info })
                else
                  match cs.V.sg_kind with
                  | V.K_input ->
                      emit
                        (Ir.Stmt.Connect
                           {
                             loc = inst_name ^ "." ^ port;
                             expr = lx_to ctx e cs.V.sg_width;
                             info;
                           })
                  | _ -> (
                      (* instance output into a local net *)
                      match e with
                      | Ident (n, lp) ->
                          let s = signal ctx lp n in
                          emit
                            (Ir.Stmt.Connect
                               {
                                 loc = ref_name ctx n;
                                 expr =
                                   resize
                                     (Ir.Expr.Ref (inst_name ^ "." ^ port))
                                     cs.V.sg_width s.V.sg_width;
                                 info;
                               })
                      | _ -> error (expr_pos e) "instance output must drive a plain net"))
          in
          let positional =
            List.filter_map (function Positional e -> Some e | Named _ -> None) conns
          in
          if positional <> [] then
            List.iteri
              (fun i e -> bind (List.nth child.V.me_port_order i) (Some e))
              positional
          else
            List.iter
              (function Named (port, e, _) -> bind port e | Positional _ -> ())
              conns;
          (* propagate clock and reset when not explicitly wired *)
          (match child.V.me_clock with
          | Some cport when (not (Hashtbl.mem connected cport)) && me.V.me_clock <> None ->
              emit
                (Ir.Stmt.Connect
                   { loc = inst_name ^ ".clock"; expr = Ir.Expr.Ref "clock"; info })
          | _ -> ());
          if not (Hashtbl.mem connected "reset") then
            emit
              (Ir.Stmt.Connect { loc = inst_name ^ ".reset"; expr = reset_ref; info }))
    m.mod_items;
  (* memory declarations, defaults and read-address hookups *)
  let mem_stmts = ref [] in
  Hashtbl.iter
    (fun name ma ->
      let info = info_of ma.ma_pos in
      let readers = List.rev ma.ma_readers in
      let writers = List.rev ma.ma_writers in
      let aw = clog2 ma.ma_depth in
      let init =
        match ma.ma_init with
        | Some arr when Array.exists (fun v -> not (Bv.is_zero v)) arr -> Some arr
        | _ -> None
      in
      mem_stmts :=
        Ir.Stmt.Mem
          {
            mem =
              {
                Ir.Stmt.mem_name = name;
                mem_data = Ir.Ty.UInt ma.ma_width;
                mem_depth = ma.ma_depth;
                mem_readers = List.map (fun (rp_name, _) -> { Ir.Stmt.rp_name }) readers;
                mem_writers = List.map (fun wp_name -> { Ir.Stmt.wp_name }) writers;
                mem_read_latency = 0;
                mem_init = init;
              };
            info;
          }
        :: !mem_stmts;
      List.iter
        (fun (rp, addr) ->
          mem_stmts :=
            Ir.Stmt.Connect { loc = name ^ "." ^ rp ^ ".addr"; expr = addr; info }
            :: !mem_stmts)
        readers;
      List.iter
        (fun wp ->
          let f field = name ^ "." ^ wp ^ "." ^ field in
          mem_stmts :=
            Ir.Stmt.Connect { loc = f "data"; expr = Ir.Expr.u_lit ~width:ma.ma_width 0; info }
            :: Ir.Stmt.Connect { loc = f "addr"; expr = Ir.Expr.u_lit ~width:aw 0; info }
            :: Ir.Stmt.Connect { loc = f "en"; expr = Ir.Expr.false_; info }
            :: !mem_stmts)
        writers)
    ctx.mems;
  (* output-reg ports read their backing register; attribute the connect
     to the port's declaration line *)
  let out_conns =
    Hashtbl.fold
      (fun port r acc ->
        let info =
          match Hashtbl.find_opt me.V.me_signals port with
          | Some s -> info_of s.V.sg_pos
          | None -> Ir.Info.unknown
        in
        Ir.Stmt.Connect { loc = port; expr = Ir.Expr.Ref r; info } :: acc)
      ctx.out_regs []
  in
  let ports =
    List.map
      (fun (_, ir, dir, ty, info) ->
        { Ir.Circuit.port_name = ir; dir; port_ty = ty; port_info = info })
      (ir_ports me)
  in
  let annos = infer_fsms ctx in
  ( {
      Ir.Circuit.module_name = m.mod_name;
      ports;
      body = List.rev !decls @ List.rev !mem_stmts @ List.rev !body @ out_conns;
    },
    annos )

(* ------------------------------------------------------------------ *)
(* Design lowering                                                      *)
(* ------------------------------------------------------------------ *)

let lower ~dir (de : V.denv) (d : design) : Ir.Circuit.t =
  let lowered =
    List.map (fun (m : module_) -> lower_module de ~dir (Hashtbl.find de.V.de_modules m.mod_name)) d.modules
  in
  {
    Ir.Circuit.circuit_name = de.V.de_top;
    modules = List.map fst lowered;
    annotations = List.concat_map snd lowered;
  }
