(** Abstract syntax for the synthesizable Verilog subset (see DESIGN.md,
    "The Verilog frontend"). Every node carries a source position so that
    the validator and the IR builder can report located diagnostics and so
    that line coverage keys on real [.v] lines.

    All frontend stages (lexer, parser, validator, lower) raise the single
    typed exception {!Error} — malformed input must never escape as
    [Assert_failure], [Stack_overflow] or a hang. *)

type pos = { file : string; line : int; col : int }

exception Error of { pos : pos; message : string }

let error pos fmt = Printf.ksprintf (fun message -> raise (Error { pos; message })) fmt

let info_of (p : pos) = Sic_ir.Info.pos ~file:p.file ~line:p.line ~col:p.col

type unop =
  | Lnot  (** [!] logical negation *)
  | Bnot  (** [~] bitwise complement *)
  | Rand  (** [&] reduction and *)
  | Ror  (** [|] reduction or *)
  | Rxor  (** [^] reduction xor *)
  | Uminus  (** [-] two's-complement negation *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** [&&] *)
  | Lor  (** [||] *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type expr =
  | Ident of string * pos
  | Literal of { width : int option; value : Sic_bv.Bv.t; pos : pos }
      (** [width = None] for unsized decimal literals (context-determined) *)
  | Unop of unop * expr * pos
  | Binop of binop * expr * expr * pos
  | Ternary of expr * expr * expr * pos
  | Concat of expr list * pos
  | Repl of int * expr * pos
  | Index of string * expr * pos  (** [x\[e\]] — bit-select or memory read *)
  | Part of string * int * int * pos  (** [x\[hi:lo\]], constant bounds *)

let expr_pos = function
  | Ident (_, p)
  | Literal { pos = p; _ }
  | Unop (_, _, p)
  | Binop (_, _, _, p)
  | Ternary (_, _, _, p)
  | Concat (_, p)
  | Repl (_, _, p)
  | Index (_, _, p)
  | Part (_, _, _, p) -> p

type lvalue =
  | LvId of string * pos
  | LvIndex of string * expr * pos  (** memory word (or constant bit) *)
  | LvPart of string * int * int * pos

let lvalue_pos = function LvId (_, p) | LvIndex (_, _, p) | LvPart (_, _, _, p) -> p
let lvalue_base = function LvId (n, _) | LvIndex (n, _, _) | LvPart (n, _, _, _) -> n

type stmt =
  | Assign of lvalue * expr * pos  (** nonblocking [<=] inside always *)
  | If of expr * stmt list * stmt list * pos
  | Case of {
      scrutinee : expr;
      arms : (expr list * stmt list) list;
      default : stmt list;
      case_pos : pos;
    }

type range = { msb : int; lsb : int }

let range_width r = r.msb - r.lsb + 1

type port_dir = Dir_input | Dir_output

type net_kind = Kwire | Kreg

type item =
  | Port of { dir : port_dir; is_reg : bool; range : range option; name : string; pos : pos }
  | Net of {
      kind : net_kind;
      range : range option;
      name : string;
      array : (int * int) option;  (** memory: \[first:last\] *)
      init : expr option;  (** [reg r = e;] power-on value / [wire w = e;] alias *)
      pos : pos;
    }
  | Localparam of { name : string; value : expr; pos : pos }
  | ContAssign of lvalue * expr * pos
  | Always of { clock : string; clock_pos : pos; body : stmt list; pos : pos }
  | Readmemh of { path : string; mem : string; pos : pos }
  | Instance of { module_name : string; inst_name : string; conns : conn list; pos : pos }

and conn =
  | Named of string * expr option * pos  (** [.port(expr)]; [None] = unconnected *)
  | Positional of expr

type module_ = {
  mod_name : string;
  mod_ports : string list;  (** header order *)
  mod_items : item list;
  mod_pos : pos;
}

type design = { modules : module_ list; design_file : string }
