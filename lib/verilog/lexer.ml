(** Tokenizer for the Verilog subset. Follows the house recursive-descent
    style of [lib/ir/parser.ml]: no lexer generator, one pass over the
    source, every token tagged with its line and column. Handles [//] and
    [/* */] comments (an unterminated block comment is a located error, not
    a silent EOF) and sized literals like [3'b111] / [12'h0f0]. *)

module Bv = Sic_bv.Bv

type token =
  | Id of string  (** identifiers, keywords and [$system] names *)
  | Number of { width : int option; value : Bv.t }
  | Str of string
  | Sym of string  (** operators / punctuation, canonical spelling *)
  | Eof

type t = { tok : token; pos : Ast.pos }

let describe = function
  | Id s -> Printf.sprintf "identifier '%s'" s
  | Number _ -> "number"
  | Str _ -> "string"
  | Sym s -> Printf.sprintf "'%s'" s
  | Eof -> "end of file"

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* A sized literal's digits, validated against the base, underscores
   dropped. *)
let base_digits pos base s =
  let ok c =
    match base with
    | 'b' -> c = '0' || c = '1'
    | 'o' -> c >= '0' && c <= '7'
    | 'd' -> is_digit c
    | 'h' -> is_hex_digit c
    | _ -> false
  in
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '_' then ()
      else if ok c then Buffer.add_char buf (Char.lowercase_ascii c)
      else Ast.error pos "bad sized literal: digit '%c' is not valid in base '%c'" c base)
    s;
  if Buffer.length buf = 0 then Ast.error pos "bad sized literal: no digits after base '%c'" base;
  if Buffer.length buf > 2048 then Ast.error pos "bad sized literal: too many digits";
  Buffer.contents buf

(* Octal via binary: each digit is three bits. *)
let octal_to_binary s =
  let buf = Buffer.create (3 * String.length s) in
  String.iter
    (fun c ->
      let n = Char.code c - Char.code '0' in
      Buffer.add_char buf (if n land 4 <> 0 then '1' else '0');
      Buffer.add_char buf (if n land 2 <> 0 then '1' else '0');
      Buffer.add_char buf (if n land 1 <> 0 then '1' else '0'))
    s;
  Buffer.contents buf

let fit_width pos v width =
  if width <= 0 then Ast.error pos "bad sized literal: width must be positive";
  if Bv.width v >= width then Bv.extract ~hi:(width - 1) ~lo:0 v else Bv.extend_u v width

let sized_value pos ~width base digits =
  let v =
    try
      match base with
      | 'b' -> Bv.of_binary_string digits
      | 'o' -> Bv.of_binary_string (octal_to_binary digits)
      | 'h' -> Bv.of_hex_string ~width:(4 * String.length digits) digits
      | 'd' ->
          (* wide enough for any decimal the subset needs *)
          Bv.of_decimal_string ~width:(max width 62) digits
      | _ -> Ast.error pos "bad sized literal: unknown base '%c'" base
    with Invalid_argument _ | Failure _ ->
      Ast.error pos "bad sized literal: value does not fit"
  in
  fit_width pos v width

let min_width_of_int n =
  let rec go w v = if v = 0 then max w 1 else go (w + 1) (v lsr 1) in
  go 0 n

let tokenize ~file (src : string) : t array =
  let len = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let pos_at off = { Ast.file; line = !line; col = off - !bol + 1 } in
  let newline off = line := !line + 1; bol := off + 1 in
  let push tok pos = toks := { tok; pos } :: !toks in
  while !i < len do
    let c = src.[!i] in
    let start = !i in
    let pos = pos_at start in
    if c = '\n' then begin newline !i; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < len && src.[!i + 1] = '/' then begin
      while !i < len && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < len && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while not !closed do
        if !i + 1 >= len then Ast.error pos "unterminated block comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then begin i := !i + 2; closed := true end
        else begin
          if src.[!i] = '\n' then newline !i;
          incr i
        end
      done
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= len || src.[!i] = '\n' then Ast.error pos "unterminated string literal"
        else if src.[!i] = '"' then begin incr i; closed := true end
        else begin Buffer.add_char buf src.[!i]; incr i end
      done;
      push (Str (Buffer.contents buf)) pos
    end
    else if is_digit c || c = '\'' then begin
      (* optional size digits, then 'b/'o/'d/'h, or a plain decimal *)
      let num_start = !i in
      while !i < len && (is_digit src.[!i] || src.[!i] = '_') do incr i done;
      let size_str = String.sub src num_start (!i - num_start) in
      if !i < len && src.[!i] = '\'' then begin
        incr i;
        (* optional signed marker 's' is not part of the subset *)
        if !i < len && (src.[!i] = 's' || src.[!i] = 'S') then
          Ast.error pos "bad sized literal: signed literals ('s) are not supported";
        if !i >= len then Ast.error pos "bad sized literal: missing base after '";
        let base = Char.lowercase_ascii src.[!i] in
        if not (base = 'b' || base = 'o' || base = 'd' || base = 'h') then
          Ast.error pos "bad sized literal: unknown base '%c' (expected b, o, d or h)" src.[!i];
        incr i;
        let dig_start = !i in
        while !i < len && (is_hex_digit src.[!i] || src.[!i] = '_') do incr i done;
        let raw = String.sub src dig_start (!i - dig_start) in
        let digits = base_digits pos base raw in
        let width =
          let s = String.concat "" (String.split_on_char '_' size_str) in
          if s = "" then Ast.error pos "bad sized literal: missing size before '";
          match int_of_string_opt s with
          | Some w when w >= 1 && w <= 4096 -> w
          | Some _ -> Ast.error pos "bad sized literal: size %s out of range (1..4096)" s
          | None -> Ast.error pos "bad sized literal: size %s" s
        in
        push (Number { width = Some width; value = sized_value pos ~width base digits }) pos
      end
      else begin
        if size_str = "" then Ast.error pos "expected a number";
        let s = String.concat "" (String.split_on_char '_' size_str) in
        match int_of_string_opt s with
        | Some n when n >= 0 ->
            let w = max 32 (min_width_of_int n) in
            push (Number { width = None; value = Bv.of_int ~width:w n }) pos
        | _ -> Ast.error pos "decimal literal %s is too large" s
      end
    end
    else if is_id_start c then begin
      incr i;
      while !i < len && is_id_char src.[!i] do incr i done;
      push (Id (String.sub src start (!i - start))) pos
    end
    else begin
      let two =
        if !i + 1 < len then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("<=" | ">=" | "==" | "!=" | "&&" | "||" | "<<" | ">>") as s) ->
          i := !i + 2;
          push (Sym s) pos
      | _ -> (
          match c with
          | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '~' | '&' | '|' | '^' | '='
          | '(' | ')' | '[' | ']' | '{' | '}' | ':' | ';' | ',' | '.' | '?' | '@' ->
              incr i;
              push (Sym (String.make 1 c)) pos
          | _ -> Ast.error pos "unexpected character '%s'" (Char.escaped c))
    end
  done;
  push Eof (pos_at !i);
  Array.of_list (List.rev !toks)
