(** Semantic checks over the Verilog AST: undeclared / duplicate names,
    width inference with mismatch diagnostics, multi-driver and
    combinational-loop detection, clock discipline and instance wiring.
    Everything reports through {!Ast.Error} with a source position.

    The validator also computes the per-module environment ({!menv}) the IR
    builder consumes: signal table, resolved clock, instantiation order. *)

module Bv = Sic_bv.Bv
open Ast

type kind =
  | K_input
  | K_output
  | K_wire
  | K_reg
  | K_mem of int  (** depth *)
  | K_param of Bv.t * bool  (** value, [true] when the literal was sized *)

type signal = {
  sg_name : string;
  sg_width : int;
  sg_kind : kind;
  mutable sg_is_storage : bool;  (** lowers to an IR register *)
  mutable sg_init : Bv.t option;  (** constant power-on value *)
  sg_pos : pos;
}

type menv = {
  me_module : Ast.module_;
  me_signals : (string, signal) Hashtbl.t;
  me_port_order : string list;  (** header order *)
  mutable me_clock : string option;  (** the posedge signal, if any *)
}

type denv = {
  de_modules : (string, menv) Hashtbl.t;
  de_order : string list;  (** children before parents *)
  de_top : string;
}

let find_signal (me : menv) pos n =
  match Hashtbl.find_opt me.me_signals n with
  | Some s -> s
  | None -> error pos "undeclared identifier '%s' in module %s" n me.me_module.mod_name

let is_clock (me : menv) n = me.me_clock = Some n

(* ------------------------------------------------------------------ *)
(* Constant evaluation (localparams, reg initializers, FSM states)      *)
(* ------------------------------------------------------------------ *)

let rec const_value (me : menv) (e : expr) : Bv.t option =
  match e with
  | Literal { value; _ } -> Some value
  | Ident (n, _) -> (
      match Hashtbl.find_opt me.me_signals n with
      | Some { sg_kind = K_param (v, _); _ } -> Some v
      | _ -> None)
  | Binop (op, a, b, _) -> (
      match (const_value me a, const_value me b) with
      | Some va, Some vb -> (
          let ia = Bv.to_int_trunc va and ib = Bv.to_int_trunc vb in
          let w = max (Bv.width va) (Bv.width vb) in
          let wrap n = Some (Bv.of_int ~width:(max w (min_bits n)) n) in
          match op with
          | Add -> wrap (ia + ib)
          | Sub when ia >= ib -> wrap (ia - ib)
          | Mul when ia < 1 lsl 20 && ib < 1 lsl 20 -> wrap (ia * ib)
          | Shl when ib < 40 -> wrap (ia lsl ib)
          | Shr -> wrap (ia lsr ib)
          | _ -> None)
      | _ -> None)
  | _ -> None

and min_bits n =
  let rec go w v = if v = 0 then max w 1 else go (w + 1) (v lsr 1) in
  go 0 n

(* ------------------------------------------------------------------ *)
(* Width inference                                                      *)
(* ------------------------------------------------------------------ *)

(* Verilog-style context rules, simplified and documented in DESIGN.md:
   binary arithmetic/bitwise yields the max operand width; an unsized
   literal (or unsized localparam) is flexible and adopts the width of the
   other operand; comparisons, logical ops and reductions are 1 bit;
   concatenation sums fixed widths; shifts keep the left operand width. *)
let rec infer (me : menv) (e : expr) : int * bool =
  match e with
  | Literal { width = Some w; _ } -> (w, false)
  | Literal { width = None; value; _ } -> (max 32 (Bv.width value), true)
  | Ident (n, p) -> (
      if is_clock me n then error p "clock '%s' cannot be used in an expression" n;
      let s = find_signal me p n in
      match s.sg_kind with
      | K_mem _ -> error p "memory '%s' must be indexed (%s[addr])" n n
      | K_param (v, sized) -> if sized then (Bv.width v, false) else (max 32 (Bv.width v), true)
      | _ -> (s.sg_width, false))
  | Unop ((Lnot | Rand | Ror | Rxor), a, _) ->
      ignore (infer me a);
      (1, false)
  | Unop ((Bnot | Uminus), a, _) -> infer me a
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge | Land | Lor), a, b, _) ->
      ignore (infer me a);
      ignore (infer me b);
      (1, false)
  | Binop ((Shl | Shr), a, b, _) ->
      ignore (infer me b);
      infer me a
  | Binop ((Add | Sub | Mul | Div | Mod | Band | Bor | Bxor), a, b, _) -> (
      let wa, fa = infer me a and wb, fb = infer me b in
      match (fa, fb) with
      | false, false -> (max wa wb, false)
      | true, false -> (wb, false)
      | false, true -> (wa, false)
      | true, true -> (max wa wb, true))
  | Ternary (c, a, b, _) -> (
      ignore (infer me c);
      let wa, fa = infer me a and wb, fb = infer me b in
      match (fa, fb) with
      | false, false -> (max wa wb, false)
      | true, false -> (wb, false)
      | false, true -> (wa, false)
      | true, true -> (max wa wb, true))
  | Concat (parts, p) ->
      let total =
        List.fold_left
          (fun acc part ->
            match infer me part with
            | _, true -> error p "unsized literal in concatenation"
            | w, false -> acc + w)
          0 parts
      in
      if total > 4096 then error p "concatenation is too wide (%d bits)" total;
      (total, false)
  | Repl (n, a, p) -> (
      match infer me a with
      | _, true -> error p "unsized literal in replication"
      | w, false ->
          if n * w > 4096 then error p "replication is too wide (%d bits)" (n * w);
          (n * w, false))
  | Index (base, idx, p) -> (
      ignore (infer me idx);
      let s = find_signal me p base in
      if is_clock me base then error p "clock '%s' cannot be used in an expression" base;
      match s.sg_kind with
      | K_mem _ -> (s.sg_width, false)
      | K_param _ -> error p "'%s' is a constant and cannot be indexed" base
      | _ ->
          (match idx with
          | Literal { value; _ } ->
              let i = Bv.to_int_trunc value in
              if i >= s.sg_width then
                error p "bit %d out of range for %d-bit '%s'" i s.sg_width base
          | _ -> ());
          (1, false))
  | Part (base, hi, lo, p) ->
      let s = find_signal me p base in
      if is_clock me base then error p "clock '%s' cannot be used in an expression" base;
      (match s.sg_kind with
      | K_mem _ -> error p "unsupported: part-select on memory '%s'" base
      | K_param _ -> error p "'%s' is a constant and cannot be part-selected" base
      | _ -> ());
      if hi < lo then error p "part-select [%d:%d] is reversed" hi lo;
      if hi >= s.sg_width then
        error p "part-select [%d:%d] out of range for %d-bit '%s'" hi lo s.sg_width base;
      (hi - lo + 1, false)

let width_of me e = fst (infer me e)

(* Check an assignment of [e] into [lw] bits at [p], naming [what]. *)
let check_assign_width (me : menv) p what lw (e : expr) =
  let w, flexible = infer me e in
  if flexible then begin
    (* a bare unsized literal must still fit the sink *)
    match e with
    | Literal { value; _ } ->
        let need = min_bits (Bv.to_int_trunc value) in
        if (not (Bv.is_zero value)) && need > lw then
          error p "width mismatch: literal needs %d bits but %s is %d bits wide" need what lw
    | _ -> ()
  end
  else if w > lw then
    error p "width mismatch: %d-bit expression assigned to %d-bit %s" w lw what

(* ------------------------------------------------------------------ *)
(* Declaration collection                                               *)
(* ------------------------------------------------------------------ *)

let reserved = [ "clock"; "reset" ]

let range_w = function Some r -> range_width r | None -> 1

let collect_signals (m : Ast.module_) : menv =
  let signals = Hashtbl.create 32 in
  let me = { me_module = m; me_signals = signals; me_port_order = m.mod_ports; me_clock = None } in
  let header = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace header n ()) m.mod_ports;
  let declare (s : signal) =
    (match Hashtbl.find_opt signals s.sg_name with
    | Some prev ->
        error s.sg_pos "duplicate declaration of '%s' (first declared at line %d)" s.sg_name
          prev.sg_pos.line
    | None -> ());
    Hashtbl.replace signals s.sg_name s
  in
  List.iter
    (fun (item : item) ->
      match item with
      | Port { dir; is_reg; range; name; pos } ->
          if not (Hashtbl.mem header name) then
            error pos "port '%s' is not listed in the module header" name;
          if name = "clock" && dir <> Dir_input then
            error pos "the name 'clock' is reserved for the clock input";
          if name = "reset" && (dir <> Dir_input || range <> None) then
            error pos "the name 'reset' is reserved for a 1-bit reset input";
          declare
            {
              sg_name = name;
              sg_width = range_w range;
              sg_kind = (if dir = Dir_input then K_input else K_output);
              sg_is_storage = (dir = Dir_output && is_reg);
              sg_init = None;
              sg_pos = pos;
            }
      | Net { kind; range; name; array; init; pos } -> (
          if List.mem name reserved then
            error pos "the name '%s' is reserved for the implicit %s port (rename the signal)"
              name name;
          (* [wire w = e;] is sugar for an assign — any expression; a reg
             initializer is a power-on value and must be constant *)
          let init_value =
            match (kind, init) with
            | _, None | Kwire, Some _ -> None
            | Kreg, Some e -> (
                match const_value me e with
                | Some v -> Some v
                | None -> error (expr_pos e) "initializer of reg '%s' must be a constant" name)
          in
          match Hashtbl.find_opt signals name with
          | Some prev ->
              (* [output leds; reg leds;] / [input clk; wire clk;] — a net
                 redeclaration of a port refines it in place *)
              if prev.sg_kind = K_output && kind = Kreg && array = None then begin
                if range_w range <> prev.sg_width then
                  error pos "redeclaration of '%s' changes its width (%d vs %d)" name
                    (range_w range) prev.sg_width;
                if prev.sg_is_storage then error pos "duplicate declaration of '%s'" name;
                prev.sg_is_storage <- true;
                prev.sg_init <- init_value
              end
              else if (prev.sg_kind = K_input || prev.sg_kind = K_output) && kind = Kwire
                      && array = None && init = None then begin
                if range_w range <> prev.sg_width then
                  error pos "redeclaration of '%s' changes its width (%d vs %d)" name
                    (range_w range) prev.sg_width
              end
              else error pos "duplicate declaration of '%s'" name
          | None ->
              let kind' =
                match (kind, array) with
                | Kreg, Some (_, last) -> K_mem (last + 1)
                | Kreg, None -> K_reg
                | Kwire, _ -> K_wire
              in
              declare
                {
                  sg_name = name;
                  sg_width = range_w range;
                  sg_kind = kind';
                  sg_is_storage = (kind = Kreg && array = None);
                  sg_init = init_value;
                  sg_pos = pos;
                })
      | Localparam { name; value; pos } -> (
          if List.mem name reserved then error pos "the name '%s' is reserved" name;
          match const_value me value with
          | Some v ->
              let sized = match value with Literal { width = Some _; _ } -> true | _ -> false in
              declare
                {
                  sg_name = name;
                  sg_width = Bv.width v;
                  sg_kind = K_param (v, sized);
                  sg_is_storage = false;
                  sg_init = None;
                  sg_pos = pos;
                }
          | None -> error pos "localparam %s must be a constant expression" name)
      | ContAssign _ | Always _ | Readmemh _ | Instance _ -> ())
    m.mod_items;
  (* every header port must end up declared *)
  List.iter
    (fun n ->
      match Hashtbl.find_opt signals n with
      | Some { sg_kind = K_input | K_output; _ } -> ()
      | Some { sg_pos; _ } -> error sg_pos "'%s' is listed as a port but declared as a net" n
      | None -> error m.mod_pos "port '%s' has no input/output declaration" n)
    m.mod_ports;
  me

(* ------------------------------------------------------------------ *)
(* Per-module checks                                                    *)
(* ------------------------------------------------------------------ *)

let walk_expr (me : menv) (e : expr) = ignore (infer me e)

let rec walk_stmts (me : menv) (stmts : stmt list) ~(on_assign : lvalue -> expr -> pos -> unit) =
  List.iter
    (fun (s : stmt) ->
      match s with
      | Assign (lv, e, p) -> on_assign lv e p
      | If (c, t, f, _) ->
          walk_expr me c;
          walk_stmts me t ~on_assign;
          walk_stmts me f ~on_assign
      | Case { scrutinee; arms; default; _ } ->
          walk_expr me scrutinee;
          List.iter
            (fun (items, body) ->
              List.iter (walk_expr me) items;
              walk_stmts me body ~on_assign)
            arms;
          walk_stmts me default ~on_assign)
    stmts

type driver_site = D_assign of pos | D_always of int * pos | D_inst of pos

let site_pos = function D_assign p | D_always (_, p) | D_inst p -> p

let check_module (de : denv) (me : menv) =
  let m = me.me_module in
  let drivers : (string, driver_site list) Hashtbl.t = Hashtbl.create 32 in
  let mem_writes : (string, int * pos) Hashtbl.t = Hashtbl.create 4 in
  let add_driver n site =
    Hashtbl.replace drivers n (site :: Option.value ~default:[] (Hashtbl.find_opt drivers n))
  in
  (* clock: all always blocks must share one posedge signal, a 1-bit input *)
  List.iter
    (fun (item : item) ->
      match item with
      | Always { clock; clock_pos; _ } -> (
          match me.me_clock with
          | None ->
              let s = find_signal me clock_pos clock in
              (match s.sg_kind with
              | K_input -> ()
              | _ ->
                  error clock_pos
                    "unsupported: derived clock — '%s' must be a module input" clock);
              if s.sg_width <> 1 then error clock_pos "clock '%s' must be 1 bit wide" clock;
              me.me_clock <- Some clock
          | Some c when c = clock -> ()
          | Some c ->
              error clock_pos "unsupported: multiple clocks ('%s' and '%s') in module %s" c
                clock m.mod_name)
      | _ -> ())
    m.mod_items;
  (* statement-level checks *)
  let always_idx = ref (-1) in
  List.iter
    (fun (item : item) ->
      match item with
      | Net { kind = Kwire; init = Some e; name; pos; _ } ->
          (* wire alias: behaves exactly like [assign name = e] *)
          walk_expr me e;
          let s = find_signal me pos name in
          check_assign_width me pos (Printf.sprintf "'%s'" name) s.sg_width e;
          add_driver name (D_assign pos)
      | Port _ | Net _ | Localparam _ -> ()
      | ContAssign (lv, e, p) -> (
          walk_expr me e;
          match lv with
          | LvId (n, lp) -> (
              let s = find_signal me lp n in
              (match s.sg_kind with
              | K_wire | K_output when not s.sg_is_storage -> ()
              | K_output | K_reg ->
                  error lp "'%s' is a reg; drive it from an always block, not assign" n
              | K_input -> error lp "cannot assign to input port '%s'" n
              | K_mem _ -> error lp "memory '%s' can only be written inside an always block" n
              | K_param _ -> error lp "cannot assign to constant '%s'" n
              | K_wire -> ());
              check_assign_width me p (Printf.sprintf "'%s'" n) s.sg_width e;
              add_driver n (D_assign p))
          | LvIndex (n, _, lp) | LvPart (n, _, _, lp) ->
              error lp
                "unsupported: select on the left of a continuous assign (drive all of '%s')" n)
      | Always { body; _ } ->
          incr always_idx;
          let idx = !always_idx in
          walk_stmts me body ~on_assign:(fun lv e p ->
              walk_expr me e;
              let n = lvalue_base lv in
              let lp = lvalue_pos lv in
              let s = find_signal me lp n in
              if is_clock me n then error lp "cannot assign to clock '%s'" n;
              match (lv, s.sg_kind) with
              | _, K_input -> error lp "cannot assign to input port '%s'" n
              | _, K_param _ -> error lp "cannot assign to constant '%s'" n
              | LvId _, K_mem _ -> error lp "memory '%s' must be written one word at a time" n
              | LvIndex _, K_mem depth ->
                  ignore depth;
                  check_assign_width me p (Printf.sprintf "a word of '%s'" n) s.sg_width e;
                  (match Hashtbl.find_opt mem_writes n with
                  | Some (prev, _) when prev <> idx ->
                      error lp "memory '%s' is written from multiple always blocks" n
                  | _ -> Hashtbl.replace mem_writes n (idx, lp))
              | LvPart _, K_mem _ ->
                  error lp "unsupported: part-select on memory '%s'" n
              | _, (K_wire | K_output) when not s.sg_is_storage ->
                  error lp "'%s' must be declared reg to be assigned in an always block" n
              | LvId _, _ ->
                  check_assign_width me p (Printf.sprintf "'%s'" n) s.sg_width e;
                  add_driver n (D_always (idx, p))
              | LvPart (_, hi, lo, pp), _ ->
                  if hi < lo then error pp "part-select [%d:%d] is reversed" hi lo;
                  if hi >= s.sg_width then
                    error pp "part-select [%d:%d] out of range for %d-bit '%s'" hi lo
                      s.sg_width n;
                  check_assign_width me p
                    (Printf.sprintf "'%s[%d:%d]'" n hi lo)
                    (hi - lo + 1) e;
                  add_driver n (D_always (idx, p))
              | LvIndex (_, ie, pp), _ -> (
                  (* constant bit write is a 1-bit part select *)
                  match const_value me ie with
                  | Some v ->
                      let i = Bv.to_int_trunc v in
                      if i >= s.sg_width then
                        error pp "bit %d out of range for %d-bit '%s'" i s.sg_width n;
                      check_assign_width me p (Printf.sprintf "'%s[%d]'" n i) 1 e;
                      add_driver n (D_always (idx, p))
                  | None ->
                      error pp "unsupported: dynamic bit-select on the left of an assignment"))
      | Readmemh { mem; pos; _ } -> (
          let s = find_signal me pos mem in
          match s.sg_kind with
          | K_mem _ -> ()
          | _ -> error pos "$readmemh target '%s' is not a memory" mem)
      | Instance { module_name; inst_name; conns; pos } -> (
          if Hashtbl.mem me.me_signals inst_name then
            error pos "instance name '%s' clashes with a signal" inst_name;
          match Hashtbl.find_opt de.de_modules module_name with
          | None ->
              error pos "unsupported primitive '%s' (no module with that name in this file)"
                module_name
          | Some child ->
              let child_ports = child.me_port_order in
              let n_pos = List.length (List.filter (function Positional _ -> true | _ -> false) conns) in
              let n_named = List.length conns - n_pos in
              if n_pos > 0 && n_named > 0 then
                error pos "mixing positional and named connections in instance '%s'" inst_name;
              if n_pos > List.length child_ports then
                error pos "instance '%s' has %d connections but %s has only %d ports" inst_name
                  n_pos module_name (List.length child_ports);
              let seen = Hashtbl.create 8 in
              let bind port (e : expr option) cp =
                (match Hashtbl.find_opt seen port with
                | Some () -> error cp "port '%s' connected twice on instance '%s'" port inst_name
                | None -> Hashtbl.replace seen port ());
                let cs =
                  match Hashtbl.find_opt child.me_signals port with
                  | Some cs -> cs
                  | None -> error cp "module %s has no port '%s'" module_name port
                in
                match e with
                | None -> ()
                | Some e -> (
                    let is_child_clock = child.me_clock = Some port in
                    if is_child_clock then begin
                      (* the child's clock must be fed by this module's clock
                         (or by a 1-bit input that becomes this module's clock) *)
                      match e with
                      | Ident (n, np) -> (
                          let s = find_signal me np n in
                          match (me.me_clock, s.sg_kind) with
                          | Some c, _ when c = n -> ()
                          | None, K_input when s.sg_width = 1 -> me.me_clock <- Some n
                          | _ ->
                              error np
                                "unsupported: derived clock — instance '%s' clock port '%s' \
                                 must be driven by this module's clock input"
                                inst_name port)
                      | _ ->
                          error (expr_pos e)
                            "unsupported: derived clock expression on clock port '%s'" port
                    end
                    else
                      match cs.sg_kind with
                      | K_output -> (
                          (* instance output drives a net in this module *)
                          match e with
                          | Ident (n, np) -> (
                              let s = find_signal me np n in
                              (match s.sg_kind with
                              | K_wire | K_output when not s.sg_is_storage -> ()
                              | K_input -> error np "instance output cannot drive input '%s'" n
                              | _ ->
                                  error np
                                    "instance output must drive a wire, not reg '%s'" n);
                              if cs.sg_width > s.sg_width then
                                error np
                                  "width mismatch: port '%s' is %d bits but '%s' is %d bits"
                                  port cs.sg_width n s.sg_width;
                              add_driver n (D_inst cp))
                          | _ ->
                              error (expr_pos e)
                                "instance output '%s' must be connected to a plain net" port)
                      | K_input ->
                          walk_expr me e;
                          check_assign_width me (expr_pos e)
                            (Printf.sprintf "port '%s' of %s" port module_name)
                            cs.sg_width e
                      | _ -> error cp "'%s' is not a port of module %s" port module_name)
              in
              if n_pos > 0 then
                List.iteri
                  (fun i conn ->
                    match conn with
                    | Positional e -> bind (List.nth child_ports i) (Some e) (expr_pos e)
                    | Named _ -> ())
                  conns
              else
                List.iter
                  (function
                    | Named (port, e, cp) -> bind port e cp
                    | Positional _ -> ())
                  conns)
        )
    m.mod_items;
  (* multi-driver checks *)
  Hashtbl.iter
    (fun n sites ->
      let combs = List.filter (function D_assign _ | D_inst _ -> true | _ -> false) sites in
      let always_ids =
        List.sort_uniq compare
          (List.filter_map (function D_always (i, _) -> Some i | _ -> None) sites)
      in
      let p = site_pos (List.hd sites) in
      if List.length combs > 1 then
        error p "multiple drivers for '%s' (%d continuous drivers)" n (List.length combs)
      else if combs <> [] && always_ids <> [] then
        error p "multiple drivers for '%s' (driven by both assign and always)" n
      else if List.length always_ids > 1 then
        error p "multiple drivers for '%s' (assigned in %d always blocks)" n
          (List.length always_ids))
    drivers;
  (* combinational loop detection over assign-driven nets *)
  let comb_expr : (string, expr * pos) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (item : item) ->
      match item with
      | ContAssign (LvId (n, _), e, p) -> Hashtbl.replace comb_expr n (e, p)
      | Net { kind = Kwire; init = Some e; name; pos; _ } ->
          Hashtbl.replace comb_expr name (e, pos)
      | _ -> ())
    m.mod_items;
  let rec expr_refs (e : expr) acc =
    match e with
    | Ident (n, _) -> n :: acc
    | Literal _ -> acc
    | Unop (_, a, _) | Repl (_, a, _) -> expr_refs a acc
    | Binop (_, a, b, _) -> expr_refs a (expr_refs b acc)
    | Ternary (a, b, c, _) -> expr_refs a (expr_refs b (expr_refs c acc))
    | Concat (parts, _) -> List.fold_left (fun acc a -> expr_refs a acc) acc parts
    | Index (_, i, _) -> expr_refs i acc  (* memory data arrives from a port, not combinationally *)
    | Part (n, _, _, _) -> n :: acc
  in
  let state : (string, [ `Visiting | `Done ]) Hashtbl.t = Hashtbl.create 16 in
  let rec dfs path n =
    match Hashtbl.find_opt state n with
    | Some `Done -> ()
    | Some `Visiting ->
        let e, p = Hashtbl.find comb_expr n in
        ignore e;
        error p "combinational loop through '%s' (%s)" n
          (String.concat " -> " (List.rev (n :: path)))
    | None -> (
        match Hashtbl.find_opt comb_expr n with
        | None -> Hashtbl.replace state n `Done
        | Some (e, _) ->
            Hashtbl.replace state n `Visiting;
            List.iter (dfs (n :: path)) (expr_refs e []);
            Hashtbl.replace state n `Done)
  in
  Hashtbl.iter (fun n _ -> dfs [] n) comb_expr

(* ------------------------------------------------------------------ *)
(* Design-level: module table, instantiation order, top detection       *)
(* ------------------------------------------------------------------ *)

let validate (d : design) : denv =
  if d.modules = [] then
    error { file = d.design_file; line = 1; col = 1 } "no modules in design";
  let table = Hashtbl.create 8 in
  List.iter
    (fun (m : module_) ->
      if Hashtbl.mem table m.mod_name then
        error m.mod_pos "duplicate module '%s'" m.mod_name;
      Hashtbl.replace table m.mod_name (collect_signals m))
    d.modules;
  (* instantiation graph: order children before parents, reject recursion *)
  let children (m : module_) =
    List.filter_map
      (function
        | Instance { module_name; pos; _ } when Hashtbl.mem table module_name ->
            Some (module_name, pos)
        | _ -> None)
      m.mod_items
  in
  let order = ref [] in
  let state = Hashtbl.create 8 in
  let rec visit (m : module_) =
    match Hashtbl.find_opt state m.mod_name with
    | Some `Done -> ()
    | Some `Visiting -> error m.mod_pos "recursive instantiation of module '%s'" m.mod_name
    | None ->
        Hashtbl.replace state m.mod_name `Visiting;
        List.iter
          (fun (child, _) -> visit (Hashtbl.find table child).me_module)
          (children m);
        Hashtbl.replace state m.mod_name `Done;
        order := m.mod_name :: !order
  in
  List.iter visit d.modules;
  let order = List.rev !order in
  (* top: a module nobody instantiates; prefer the last-defined candidate *)
  let instantiated = Hashtbl.create 8 in
  List.iter
    (fun (m : module_) ->
      List.iter (fun (c, _) -> Hashtbl.replace instantiated c ()) (children m))
    d.modules;
  let tops = List.filter (fun (m : module_) -> not (Hashtbl.mem instantiated m.mod_name)) d.modules in
  let top =
    match List.rev tops with
    | t :: _ -> t.mod_name
    | [] -> (List.hd (List.rev d.modules)).mod_name
  in
  let de = { de_modules = table; de_order = order; de_top = top } in
  (* check children before parents so child clocks are known at instance sites *)
  List.iter (fun n -> check_module de (Hashtbl.find table n)) order;
  de
