(** Facade for the Verilog frontend: tokenize → parse → validate → lower.

    [load_file] is the one-call entry point used by the CLI: it reads a
    [.v] file and returns a {!Sic_ir.Circuit.t} ready for the existing
    pass pipeline, instrumentation and backends. All stages raise the
    single typed exception {!Error} with a source position. *)

type pos = Ast.pos = { file : string; line : int; col : int }

exception Error = Ast.Error

let is_verilog_path path = Filename.check_suffix path ".v"

let parse_string ?(file = "<string>") src = Parser.parse_string ~file src

(** Lower source text to a circuit. [dir] resolves relative [$readmemh]
    paths. *)
let load_string ?(file = "<string>") ?(dir = ".") src =
  let d = parse_string ~file src in
  let de = Validator.validate d in
  Lower.lower ~dir de d

let load_file path =
  let src =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Ast.error { file = path; line = 1; col = 1 } "cannot read file: %s" msg
  in
  load_string ~file:path ~dir:(Filename.dirname path) src
