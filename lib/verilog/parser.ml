(** Recursive-descent parser for the Verilog subset, in the house style of
    [lib/ir/parser.ml]: a flat token array, one-symbol lookahead, explicit
    [expect] helpers. Grammar (see DESIGN.md for the full subset):

    {v
    design   := { module }
    module   := "module" id [ "(" ports ")" ] ";" { item } "endmodule"
    item     := port-decl | net-decl | localparam | assign | always
              | initial | instance
    stmt     := lvalue "<=" expr ";" | if | case | "begin" { stmt } "end"
    v}

    Constructs outside the subset (negedge, blocking assigns in always,
    generate, functions, parameters, delays, ...) are rejected with a
    located "unsupported" diagnostic — never a crash. An expression
    nesting limit guards against stack overflow on adversarial input. *)

module Bv = Sic_bv.Bv
open Ast

type st = { toks : Lexer.t array; mutable i : int; mutable depth : int }

let peek st = st.toks.(st.i)

let next st =
  let t = peek st in
  (match t.Lexer.tok with Lexer.Eof -> () | _ -> st.i <- st.i + 1);
  t

let pos_of st = (peek st).Lexer.pos

let fail_here st fmt = error (pos_of st) fmt

let expect st s =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Sym s' when s' = s -> t.Lexer.pos
  | other -> error t.Lexer.pos "expected '%s' but found %s" s (Lexer.describe other)

let at_sym st s = match (peek st).Lexer.tok with Lexer.Sym s' -> s' = s | _ -> false
let at_id st name = match (peek st).Lexer.tok with Lexer.Id s -> s = name | _ -> false

let eat_sym st s = if at_sym st s then (ignore (next st); true) else false

let ident st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Id s when String.length s > 0 && s.[0] = '$' ->
      error t.Lexer.pos "unsupported system task/function %s" s
  | Lexer.Id s -> (s, t.Lexer.pos)
  | other -> error t.Lexer.pos "expected identifier but found %s" (Lexer.describe other)

let keywords =
  [ "module"; "endmodule"; "input"; "output"; "inout"; "wire"; "reg"; "assign"; "always";
    "posedge"; "negedge"; "if"; "else"; "begin"; "end"; "case"; "casez"; "casex"; "endcase";
    "default"; "initial"; "localparam"; "parameter"; "function"; "endfunction"; "task";
    "endtask"; "generate"; "endgenerate"; "for"; "while"; "repeat"; "forever"; "integer";
    "genvar"; "signed" ]

let is_keyword s = List.mem s keywords

let name st =
  let n, p = ident st in
  if is_keyword n then error p "expected a name but found keyword '%s'" n;
  (n, p)

let integer st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Number { value; _ } -> (Bv.to_int_trunc value, t.Lexer.pos)
  | other -> error t.Lexer.pos "expected integer but found %s" (Lexer.describe other)

(* --------------------------------------------------------------------- *)
(* Expressions                                                            *)
(* --------------------------------------------------------------------- *)

let max_depth = 200

let enter st p =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then error p "expression nests too deeply"

let leave st = st.depth <- st.depth - 1

(* precedence climbing; level 0 is the ternary *)
let binop_levels : (string * binop) list list =
  [
    [ ("||", Lor) ];
    [ ("&&", Land) ];
    [ ("|", Bor) ];
    [ ("^", Bxor) ];
    [ ("&", Band) ];
    [ ("==", Eq); ("!=", Neq) ];
    [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ];
    [ ("<<", Shl); (">>", Shr) ];
    [ ("+", Add); ("-", Sub) ];
    [ ("*", Mul); ("/", Div); ("%", Mod) ];
  ]

let rec parse_expr st : expr =
  let p = pos_of st in
  enter st p;
  let cond = parse_binary st 0 in
  let e =
    if eat_sym st "?" then begin
      let a = parse_expr st in
      ignore (expect st ":");
      let b = parse_expr st in
      Ternary (cond, a, b, p)
    end
    else cond
  in
  leave st;
  e

and parse_binary st level : expr =
  if level >= List.length binop_levels then parse_unary st
  else begin
    let ops = List.nth binop_levels level in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue_ = ref true in
    while !continue_ do
      match (peek st).Lexer.tok with
      | Lexer.Sym s when List.mem_assoc s ops ->
          let p = (next st).Lexer.pos in
          let rhs = parse_binary st (level + 1) in
          lhs := Binop (List.assoc s ops, !lhs, rhs, p)
      | _ -> continue_ := false
    done;
    !lhs
  end

and parse_unary st : expr =
  let t = peek st in
  let p = t.Lexer.pos in
  match t.Lexer.tok with
  | Lexer.Sym "!" -> ignore (next st); enter st p; let e = Unop (Lnot, parse_unary st, p) in leave st; e
  | Lexer.Sym "~" -> ignore (next st); enter st p; let e = Unop (Bnot, parse_unary st, p) in leave st; e
  | Lexer.Sym "&" -> ignore (next st); enter st p; let e = Unop (Rand, parse_unary st, p) in leave st; e
  | Lexer.Sym "|" -> ignore (next st); enter st p; let e = Unop (Ror, parse_unary st, p) in leave st; e
  | Lexer.Sym "^" -> ignore (next st); enter st p; let e = Unop (Rxor, parse_unary st, p) in leave st; e
  | Lexer.Sym "-" -> ignore (next st); enter st p; let e = Unop (Uminus, parse_unary st, p) in leave st; e
  | _ -> parse_primary st

and parse_primary st : expr =
  let t = next st in
  let p = t.Lexer.pos in
  match t.Lexer.tok with
  | Lexer.Number { width; value } -> Literal { width; value; pos = p }
  | Lexer.Id s when String.length s > 0 && s.[0] = '$' ->
      error p "unsupported system task/function %s in expression" s
  | Lexer.Id s ->
      if is_keyword s then error p "unexpected keyword '%s' in expression" s;
      parse_select st s p
  | Lexer.Sym "(" ->
      enter st p;
      let e = parse_expr st in
      ignore (expect st ")");
      leave st;
      e
  | Lexer.Sym "{" ->
      enter st p;
      let first = parse_expr st in
      let e =
        if at_sym st "{" then begin
          (* replication {N{expr}} *)
          let n =
            match first with
            | Literal { value; _ } -> Bv.to_int_trunc value
            | _ -> error p "replication count must be a literal"
          in
          if n < 1 || n > 4096 then error p "replication count %d out of range" n;
          ignore (expect st "{");
          let inner = parse_expr st in
          ignore (expect st "}");
          ignore (expect st "}");
          Repl (n, inner, p)
        end
        else begin
          let parts = ref [ first ] in
          while eat_sym st "," do
            parts := parse_expr st :: !parts
          done;
          ignore (expect st "}");
          Concat (List.rev !parts, p)
        end
      in
      leave st;
      e
  | other -> error p "expected expression but found %s" (Lexer.describe other)

(* [base] already consumed; parse optional [expr] / [hi:lo] suffix *)
and parse_select st base p : expr =
  if at_sym st "[" then begin
    let bp = (next st).Lexer.pos in
    enter st bp;
    let first = parse_expr st in
    let e =
      if eat_sym st ":" then begin
        let hi =
          match first with
          | Literal { value; _ } -> Bv.to_int_trunc value
          | _ -> error bp "part-select bounds must be literals"
        in
        let lo, _ = integer st in
        ignore (expect st "]");
        Part (base, hi, lo, p)
      end
      else begin
        ignore (expect st "]");
        Index (base, first, p)
      end
    in
    leave st;
    (match (peek st).Lexer.tok with
    | Lexer.Sym "[" -> error (pos_of st) "unsupported: multiple select suffixes on %s" base
    | _ -> ());
    e
  end
  else Ident (base, p)

(* --------------------------------------------------------------------- *)
(* Statements (inside always blocks)                                      *)
(* --------------------------------------------------------------------- *)

let parse_lvalue st : lvalue =
  let base, p = name st in
  match (peek st).Lexer.tok with
  | Lexer.Sym "[" -> (
      ignore (next st);
      let first = parse_expr st in
      if eat_sym st ":" then begin
        let hi =
          match first with
          | Literal { value; _ } -> Bv.to_int_trunc value
          | _ -> error p "part-select bounds must be literals"
        in
        let lo, _ = integer st in
        ignore (expect st "]");
        LvPart (base, hi, lo, p)
      end
      else begin
        ignore (expect st "]");
        LvIndex (base, first, p)
      end)
  | _ -> LvId (base, p)

let rec parse_stmt st : stmt list =
  let t = peek st in
  let p = t.Lexer.pos in
  enter st p;
  let out =
    match t.Lexer.tok with
    | Lexer.Id "begin" ->
        ignore (next st);
        let out = ref [] in
        while not (at_id st "end") do
          (match (peek st).Lexer.tok with
          | Lexer.Eof -> fail_here st "unexpected end of file: missing 'end'"
          | _ -> ());
          out := List.rev_append (parse_stmt st) !out
        done;
        ignore (next st);
        List.rev !out
    | Lexer.Id "if" ->
        ignore (next st);
        ignore (expect st "(");
        let cond = parse_expr st in
        ignore (expect st ")");
        let then_ = parse_stmt st in
        let else_ = if at_id st "else" then (ignore (next st); parse_stmt st) else [] in
        [ If (cond, then_, else_, p) ]
    | Lexer.Id "case" ->
        ignore (next st);
        ignore (expect st "(");
        let scrutinee = parse_expr st in
        ignore (expect st ")");
        let arms = ref [] and default = ref None in
        while not (at_id st "endcase") do
          (match (peek st).Lexer.tok with
          | Lexer.Eof -> fail_here st "unexpected end of file: missing 'endcase'"
          | _ -> ());
          if at_id st "default" then begin
            let dp = (next st).Lexer.pos in
            ignore (eat_sym st ":");
            if !default <> None then error dp "duplicate default arm in case";
            default := Some (parse_stmt st)
          end
          else begin
            let items = ref [ parse_expr st ] in
            while eat_sym st "," do
              items := parse_expr st :: !items
            done;
            ignore (expect st ":");
            let body = parse_stmt st in
            arms := (List.rev !items, body) :: !arms
          end
        done;
        ignore (next st);
        [ Case { scrutinee; arms = List.rev !arms; default = Option.value ~default:[] !default;
                 case_pos = p } ]
    | Lexer.Id ("casez" | "casex") -> error p "unsupported: casez/casex (use case)"
    | Lexer.Id ("for" | "while" | "repeat" | "forever") ->
        error p "unsupported: loops are outside the synthesizable subset"
    | Lexer.Id s when String.length s > 0 && s.[0] = '$' ->
        error p "unsupported system task %s in always block" s
    | Lexer.Sym ";" ->
        ignore (next st);
        []
    | _ ->
        let lv = parse_lvalue st in
        let t = next st in
        (match t.Lexer.tok with
        | Lexer.Sym "<=" -> ()
        | Lexer.Sym "=" ->
            error t.Lexer.pos
              "unsupported: blocking assignment (=) in always block; use nonblocking (<=)"
        | other -> error t.Lexer.pos "expected '<=' but found %s" (Lexer.describe other));
        let e = parse_expr st in
        ignore (expect st ";");
        [ Assign (lv, e, p) ]
  in
  leave st;
  out

(* --------------------------------------------------------------------- *)
(* Module items                                                           *)
(* --------------------------------------------------------------------- *)

let parse_range st : range option =
  if at_sym st "[" then begin
    let p = (next st).Lexer.pos in
    let msb, _ = integer st in
    ignore (expect st ":");
    let lsb, _ = integer st in
    ignore (expect st "]");
    if lsb <> 0 then error p "unsupported: range [%d:%d] must end at 0" msb lsb;
    if msb < lsb then error p "range [%d:%d] is reversed" msb lsb;
    if msb - lsb + 1 > 4096 then error p "range [%d:%d] is too wide" msb lsb;
    Some { msb; lsb }
  end
  else None

(* "input" / "output" consumed by the caller *)
let parse_port_decl st dir dp : item list =
  let is_reg = if at_id st "reg" then (ignore (next st); true) else false in
  if at_id st "signed" then fail_here st "unsupported: signed ports";
  let range = parse_range st in
  let out = ref [] in
  let one () =
    let n, p = name st in
    out := Port { dir; is_reg; range; name = n; pos = p } :: !out
  in
  one ();
  while eat_sym st "," do one () done;
  ignore dp;
  !out

let parse_net_decl st kind : item list =
  if at_id st "signed" then fail_here st "unsupported: signed nets";
  let range = parse_range st in
  let out = ref [] in
  let one () =
    let n, p = name st in
    let array =
      if at_sym st "[" then begin
        let bp = (next st).Lexer.pos in
        if kind <> Kreg then error bp "only reg can be declared as a memory array";
        let first, _ = integer st in
        ignore (expect st ":");
        let last, _ = integer st in
        ignore (expect st "]");
        if first <> 0 then error bp "unsupported: memory index must start at 0";
        if last < first then error bp "memory range [%d:%d] is reversed" first last;
        if last - first + 1 > (1 lsl 20) then error bp "memory is too deep (%d words)" (last + 1);
        Some (first, last)
      end
      else None
    in
    let init = if eat_sym st "=" then Some (parse_expr st) else None in
    (match (array, init) with
    | Some _, Some _ -> error p "a memory cannot have an inline initializer (use $readmemh)"
    | _ -> ());
    out := Net { kind; range; name = n; array; init; pos = p } :: !out
  in
  one ();
  while eat_sym st "," do one () done;
  List.rev !out

let parse_initial st ip : item list =
  (* only $readmemh calls, optionally wrapped in begin/end *)
  let out = ref [] in
  let one () =
    let t = next st in
    match t.Lexer.tok with
    | Lexer.Id "$readmemh" ->
        ignore (expect st "(");
        let path =
          let t = next st in
          match t.Lexer.tok with
          | Lexer.Str s -> s
          | other -> error t.Lexer.pos "expected file name string but found %s" (Lexer.describe other)
        in
        ignore (expect st ",");
        let mem, _ = name st in
        ignore (expect st ")");
        ignore (expect st ";");
        out := Readmemh { path; mem; pos = t.Lexer.pos } :: !out
    | other ->
        error t.Lexer.pos "unsupported: only $readmemh is allowed in initial blocks (found %s)"
          (Lexer.describe other)
  in
  if at_id st "begin" then begin
    ignore (next st);
    while not (at_id st "end") do
      (match (peek st).Lexer.tok with
      | Lexer.Eof -> error ip "unexpected end of file: missing 'end' of initial block"
      | _ -> ());
      one ()
    done;
    ignore (next st)
  end
  else one ();
  List.rev !out

let parse_always st p : item =
  ignore (expect st "@");
  ignore (expect st "(");
  let t = next st in
  (match t.Lexer.tok with
  | Lexer.Id "posedge" -> ()
  | Lexer.Id "negedge" -> error t.Lexer.pos "unsupported: negedge-triggered always block"
  | Lexer.Sym "*" -> error t.Lexer.pos "unsupported: always @* (use assign for combinational logic)"
  | other ->
      error t.Lexer.pos "unsupported sensitivity list: expected 'posedge' but found %s"
        (Lexer.describe other));
  let clock, clock_pos = name st in
  (match (peek st).Lexer.tok with
  | Lexer.Id "or" | Lexer.Sym "," ->
      error (pos_of st) "unsupported: multiple events in sensitivity list (single posedge clock only)"
  | _ -> ());
  ignore (expect st ")");
  let body = parse_stmt st in
  Always { clock; clock_pos; body; pos = p }

let parse_instance st module_name mp : item =
  let inst_name, _ = name st in
  ignore (expect st "(");
  let conns = ref [] in
  if not (at_sym st ")") then begin
    let one () =
      if at_sym st "." then begin
        let p = (next st).Lexer.pos in
        let port, _ = name st in
        ignore (expect st "(");
        let e = if at_sym st ")" then None else Some (parse_expr st) in
        ignore (expect st ")");
        conns := Named (port, e, p) :: !conns
      end
      else conns := Positional (parse_expr st) :: !conns
    in
    one ();
    while eat_sym st "," do one () done
  end;
  ignore (expect st ")");
  ignore (expect st ";");
  Instance { module_name; inst_name; conns = List.rev !conns; pos = mp }

let parse_item st : item list =
  let t = next st in
  let p = t.Lexer.pos in
  match t.Lexer.tok with
  | Lexer.Id "input" ->
      let items = parse_port_decl st Dir_input p in
      ignore (expect st ";");
      items
  | Lexer.Id "output" ->
      let items = parse_port_decl st Dir_output p in
      ignore (expect st ";");
      items
  | Lexer.Id "inout" -> error p "unsupported: inout ports"
  | Lexer.Id "wire" ->
      let items = parse_net_decl st Kwire in
      ignore (expect st ";");
      items
  | Lexer.Id "reg" ->
      let items = parse_net_decl st Kreg in
      ignore (expect st ";");
      items
  | Lexer.Id ("integer" | "genvar" | "real" | "time") ->
      error p "unsupported: variable declarations outside the synthesizable subset"
  | Lexer.Id "localparam" ->
      let out = ref [] in
      let one () =
        let n, np = name st in
        ignore (expect st "=");
        let v = parse_expr st in
        out := Localparam { name = n; value = v; pos = np } :: !out
      in
      one ();
      while eat_sym st "," do one () done;
      ignore (expect st ";");
      List.rev !out
  | Lexer.Id "parameter" ->
      error p "unsupported: module parameters (use localparam for named constants)"
  | Lexer.Id "assign" ->
      let lv = parse_lvalue st in
      ignore (expect st "=");
      let e = parse_expr st in
      ignore (expect st ";");
      [ ContAssign (lv, e, p) ]
  | Lexer.Id "always" -> [ parse_always st p ]
  | Lexer.Id "initial" -> parse_initial st p
  | Lexer.Id (("function" | "task" | "generate" | "specify") as s) ->
      error p "unsupported: %s blocks" s
  | Lexer.Id s when String.length s > 0 && s.[0] = '$' ->
      error p "unsupported system task %s at module level" s
  | Lexer.Id s when not (is_keyword s) -> (
      (* instantiation: <module> <inst> ( ... ); *)
      match (peek st).Lexer.tok with
      | Lexer.Id _ -> [ parse_instance st s p ]
      | other ->
          error p "expected instance name after '%s' but found %s" s (Lexer.describe other))
  | other -> error p "expected a module item but found %s" (Lexer.describe other)

(* --------------------------------------------------------------------- *)
(* Modules and designs                                                    *)
(* --------------------------------------------------------------------- *)

let parse_module st : module_ =
  let t = next st in
  let mod_pos = t.Lexer.pos in
  (match t.Lexer.tok with
  | Lexer.Id "module" -> ()
  | other -> error mod_pos "expected 'module' but found %s" (Lexer.describe other));
  let mod_name, _ = name st in
  let header_items = ref [] and mod_ports = ref [] in
  if eat_sym st "(" then begin
    if not (at_sym st ")") then begin
      (* in ANSI headers the last direction/range distributes over
         following bare names: [module m(input clk, rst, output [7:0] q)] *)
      let last = ref None in
      let one () =
        match (peek st).Lexer.tok with
        | Lexer.Id (("input" | "output") as d) ->
            ignore (next st);
            let dir = if d = "input" then Dir_input else Dir_output in
            let is_reg = if at_id st "reg" then (ignore (next st); true) else false in
            let range = parse_range st in
            let n, p = name st in
            last := Some (dir, is_reg, range);
            mod_ports := n :: !mod_ports;
            header_items := Port { dir; is_reg; range; name = n; pos = p } :: !header_items
        | Lexer.Id "inout" -> fail_here st "unsupported: inout ports"
        | _ -> (
            let n, p = name st in
            mod_ports := n :: !mod_ports;
            match !last with
            | Some (dir, is_reg, range) ->
                header_items := Port { dir; is_reg; range; name = n; pos = p } :: !header_items
            | None -> ())
      in
      one ();
      while eat_sym st "," do one () done
    end;
    ignore (expect st ")")
  end;
  ignore (expect st ";");
  let items = ref (List.rev !header_items) in
  while not (at_id st "endmodule") do
    (match (peek st).Lexer.tok with
    | Lexer.Eof -> fail_here st "unexpected end of file: missing 'endmodule'"
    | _ -> ());
    items := !items @ parse_item st
  done;
  ignore (next st);
  { mod_name; mod_ports = List.rev !mod_ports; mod_items = !items; mod_pos }

let parse ~file (toks : Lexer.t array) : design =
  let st = { toks; i = 0; depth = 0 } in
  let modules = ref [] in
  (match (peek st).Lexer.tok with
  | Lexer.Eof -> fail_here st "empty source: expected a module"
  | _ -> ());
  while (peek st).Lexer.tok <> Lexer.Eof do
    modules := parse_module st :: !modules
  done;
  { modules = List.rev !modules; design_file = file }

let parse_string ~file (src : string) : design = parse ~file (Lexer.tokenize ~file src)
