(** Automatic coverage closure: iterate formal ⇄ fuzz ⇄ rank to a fixpoint.

    [sic close] drives this loop: per wave, every still-uncovered point of
    the design gets a single-point bounded model check through the fleet
    ([Bmc_witness] jobs, in parallel). SAT witnesses are replay-confirmed
    and harvested into the coverage database as ordinary runs and recycled
    as fuzzer corpus seeds for a witness-seeded fuzz wave; UNSAT-within-
    bound points are recorded in the database's versioned exclusion
    artifact and drop out of every subsequent coverage view. The loop
    stops at the fixpoint — a wave in which no point changed state — or
    when nothing is open.

    Database bytes and the exclusion artifact are independent of the
    parallelism level: deterministic seeds, job-order commits, zero'd wall
    times. *)

type config = {
  design : string;  (** database design label *)
  circuit : Sic_ir.Circuit.t;  (** instrumented, lowered *)
  bound : int;  (** BMC unrolling depth; UNSAT within it means excluded *)
  execs : int;  (** budget of each witness-seeded fuzz wave; 0 disables *)
  jobs : int;  (** parallel fleet workers *)
  timeout_s : float option;  (** per-job timeout *)
  retries : int;  (** per-job retry budget *)
  max_waves : int;  (** safety valve; the loop normally stops at fixpoint *)
  master_seed : int;
  threshold : int;  (** aggregate count below this = point still open *)
}

val default_config : design:string -> circuit:Sic_ir.Circuit.t -> config
(** bound 10, execs 300, [-j 1], 1 retry, 8 waves max, threshold 1. *)

type wave_stats = {
  wave : int;
  uncovered_before : int;  (** open points entering the wave *)
  witnessed : int;  (** points confirmed reachable and harvested *)
  excluded : int;  (** points proven UNSAT within the bound this wave *)
  bmc_failed : int;  (** BMC jobs that failed (points stay open) *)
  fuzz_new : int;  (** open points first covered by the fuzz phase *)
  open_after : int;
}

type outcome = {
  waves : wave_stats list;  (** in wave order *)
  points_total : int;
  points_covered : int;
  points_excluded : int;
  points_open : int;  (** neither covered nor excluded at stop *)
  fixpoint : bool;
      (** stopped because a wave changed nothing (or nothing was open),
          not because [max_waves] ran out *)
  corpus : bytes list;
      (** every witness-derived fuzz seed, ready for
          {!Sic_fuzz.Fuzzer.save_corpus} *)
  elapsed_s : float;
}

val all_points : Sic_ir.Circuit.t -> string list
(** Every cover point of the circuit (sorted), via a fresh compiled
    backend's all-points-at-zero counts enumeration. *)

val close :
  ?log:(string -> unit) ->
  ?on_event:(Sic_fleet.Fleet.job_event -> unit) ->
  db:Sic_db.Db.t ->
  config ->
  outcome
(** Run the closure loop into [db]. [log] receives one line per completed
    wave (the live timeline); [on_event] observes the underlying fleet
    schedule. *)

val render_outcome : outcome -> string
