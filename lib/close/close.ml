(** Automatic coverage closure: the formal ⇄ fuzz ⇄ rank loop.

    The paper's §5.3 machinery says {e what} is still uncovered, BMC can
    synthesize a witness reaching a specific cover point, and the fuzzer
    accepts corpus seeds — this module turns that crank automatically
    until a fixpoint. One {e wave}:

    + query the database aggregate for uncovered points (the rank view,
      minus already-excluded points);
    + dispatch one single-point BMC query per uncovered point in parallel
      through the fleet ([Bmc_witness] jobs: bounded depth, per-job
      timeout/retry, crash isolation). Each SAT witness is replayed
      through the compiled backend {e in the worker} — confirming the
      point actually fires and harvesting the trace's full coverage,
      which lands in the database as an ordinary run;
    + mark points proven UNSAT within the bound as excluded in the
      database's versioned exclusion artifact (honoured by
      report/rank/HTML from then on);
    + convert the confirmed witness traces to fuzzer inputs and run one
      corpus-seeded fuzz wave, so mutation explores {e around} the
      hard-to-reach states the witnesses park the design in.

    Waves repeat until no point changed state (covered, excluded, or
    newly fuzzed) — the fixpoint. On a cooperative design every point
    ends either covered or formally excluded; BMC failures (timeouts,
    crashed workers) leave their points open for the next wave, so the
    loop degrades gracefully instead of wedging.

    Determinism: jobs are enumerated in sorted-point order, seeds derive
    from (master seed, wave, index), results commit to the database in
    job order, and every run is recorded with [wall_us = 0] — so the
    final database bytes and the exclusion artifact are independent of
    [-j]. *)

module Counts = Sic_coverage.Counts
module Db = Sic_db.Db
module Fleet = Sic_fleet.Fleet
module Fuzzer = Sic_fuzz.Fuzzer
module Rng = Sic_fuzz.Rng
module Obs = Sic_obs.Obs
open Sic_sim

type config = {
  design : string;
  circuit : Sic_ir.Circuit.t;  (** instrumented, lowered *)
  bound : int;  (** BMC unrolling depth; UNSAT here means excluded *)
  execs : int;  (** budget of each witness-seeded fuzz wave; 0 disables *)
  jobs : int;  (** fleet [-j] *)
  timeout_s : float option;
  retries : int;
  max_waves : int;  (** safety valve; the loop normally stops at fixpoint *)
  master_seed : int;
  threshold : int;  (** a point with aggregate count below this is open *)
}

let default_config ~design ~circuit =
  {
    design;
    circuit;
    bound = 10;
    execs = 300;
    jobs = 1;
    timeout_s = None;
    retries = 1;
    max_waves = 8;
    master_seed = 0;
    threshold = 1;
  }

type wave_stats = {
  wave : int;
  uncovered_before : int;  (** open points entering the wave *)
  witnessed : int;  (** points confirmed reachable, harvested into the DB *)
  excluded : int;  (** points proven UNSAT within the bound this wave *)
  bmc_failed : int;  (** BMC jobs that failed (still open next wave) *)
  fuzz_new : int;  (** points first covered by the witness-seeded fuzz wave *)
  open_after : int;
}

type outcome = {
  waves : wave_stats list;  (** in wave order *)
  points_total : int;  (** every cover point of the circuit *)
  points_covered : int;
  points_excluded : int;
  points_open : int;  (** neither covered nor excluded when the loop stopped *)
  fixpoint : bool;
      (** the loop stopped because nothing changed state (or nothing was
          open), not because [max_waves] ran out *)
  corpus : bytes list;  (** witness-derived fuzz seeds, accumulation order *)
  elapsed_s : float;
}

(* run seeds: deterministic in (master seed, wave, slot), like the fleet's
   campaign seeds — never in scheduling *)
let seed_of ~master ~wave ~slot =
  let rng = Rng.split (Rng.create master) ((wave * 1_000_003) + slot) in
  Int64.to_int (Int64.logand (Rng.next64 rng) 0x3FFFFFFFL)

(** Every cover point of the circuit, from a fresh compiled backend's
    all-points-at-zero counts enumeration. Sorted. *)
let all_points (circuit : Sic_ir.Circuit.t) : string list =
  let b = Compiled.create circuit in
  Counts.names (b.Backend.counts ())

let mk_job ~config ~index ~wave ~backend ~seed ~budget ~covers ~corpus =
  {
    Fleet.index;
    design = config.design;
    circuit = config.circuit;
    circuit_hash = "-";
    backend;
    seed;
    lane_seeds = [||];
    budget;
    wave;
    scan_width = 16;
    sample_every = 0;
    profile = false;
    covers;
    corpus;
  }

(** Run the closure loop into [db]. [log] receives one human-readable
    line per wave (the live timeline); [on_event] observes the underlying
    fleet schedule (heartbeats, retries) for richer displays. *)
let close ?(log = fun (_ : string) -> ()) ?on_event ~(db : Db.t) (config : config) :
    outcome =
  let t0 = Unix.gettimeofday () in
  let points = all_points config.circuit in
  let harness = Fuzzer.make_harness config.circuit in
  let corpus = ref [] in  (* witness seeds, oldest first *)
  let waves = ref [] in
  let job_counter = ref 0 in
  let fixpoint = ref false in
  let next_index () =
    let i = !job_counter in
    incr job_counter;
    i
  in
  let open_points () =
    let agg = if Db.runs db = [] then Counts.create () else Db.aggregate db in
    let excluded = Db.excluded_names db in
    List.filter
      (fun p -> Counts.get agg p < config.threshold && not (List.mem p excluded))
      points
  in
  let run_fleet jobs =
    Fleet.run_jobs ~jobs:config.jobs ?timeout_s:config.timeout_s ~retries:config.retries
      ?on_event jobs
  in
  let wave = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let uncovered = open_points () in
    if uncovered = [] then begin
      fixpoint := true;
      continue_ := false
    end
    else if !wave >= config.max_waves then continue_ := false
    else begin
      Obs.span "close.wave" ~args:[ ("wave", Obs.Int !wave) ] @@ fun () ->
      (* --- formal phase: one single-point BMC job per open point --- *)
      let bmc_jobs =
        List.mapi
          (fun slot p ->
            mk_job ~config ~index:(next_index ()) ~wave:!wave ~backend:Fleet.Bmc_witness
              ~seed:(seed_of ~master:config.master_seed ~wave:!wave ~slot)
              ~budget:config.bound ~covers:[ p ] ~corpus:[])
          uncovered
      in
      let results = run_fleet bmc_jobs in
      let witnessed = ref 0 and bmc_failed = ref 0 in
      let pending_exclusions = ref [] in
      (* commit in job order: ids, manifest and artifact are -j independent *)
      List.iter2
        (fun point (job, outcome) ->
          match outcome with
          | Ok (r : Fleet.job_result) when r.Fleet.witnesses <> [] ->
              incr witnessed;
              ignore
                (Db.add db ~design:config.design ~backend:(Fleet.backend_name job.Fleet.backend)
                   ~workload:(Fleet.workload_name job.Fleet.backend) ~seed:job.Fleet.seed
                   ~cycles:config.bound ~wave:!wave ~wall_us:0. (Ok r.Fleet.counts));
              List.iter
                (fun (_, trace) -> corpus := !corpus @ [ Fuzzer.input_of_trace harness trace ])
                r.Fleet.witnesses
          | Ok _ ->
              (* UNSAT within the bound: formally excluded *)
              pending_exclusions :=
                {
                  Db.ex_name = point;
                  ex_reason = Printf.sprintf "unreachable within bound %d" config.bound;
                  ex_design = config.design;
                  ex_wave = !wave;
                }
                :: !pending_exclusions
          | Error why ->
              incr bmc_failed;
              ignore
                (Db.add db ~design:config.design ~backend:(Fleet.backend_name job.Fleet.backend)
                   ~workload:(Fleet.workload_name job.Fleet.backend) ~seed:job.Fleet.seed
                   ~cycles:config.bound ~wave:!wave ~wall_us:0. (Error why)))
        uncovered results;
      let exclusions = List.rev !pending_exclusions in
      Db.add_exclusions db exclusions;
      (* --- fuzz phase: one wave seeded with every witness so far --- *)
      let before_fuzz = if Db.runs db = [] then Counts.create () else Db.aggregate db in
      let fuzz_new = ref 0 in
      if config.execs > 0 then begin
        let job =
          mk_job ~config ~index:(next_index ()) ~wave:!wave ~backend:Fleet.Fuzz
            ~seed:(seed_of ~master:config.master_seed ~wave:!wave ~slot:999_983)
            ~budget:config.execs ~covers:[] ~corpus:!corpus
        in
        match run_fleet [ job ] with
        | [ (job, Ok r) ] ->
            ignore
              (Db.add db ~design:config.design ~backend:(Fleet.backend_name job.Fleet.backend)
                 ~workload:(Fleet.workload_name job.Fleet.backend) ~seed:job.Fleet.seed
                 ~cycles:config.execs ~wave:!wave ~wall_us:0. (Ok r.Fleet.counts));
            fuzz_new :=
              List.length
                (List.filter
                   (fun p ->
                     Counts.get before_fuzz p < config.threshold
                     && Counts.get r.Fleet.counts p >= config.threshold)
                   uncovered)
        | [ (job, Error why) ] ->
            ignore
              (Db.add db ~design:config.design ~backend:(Fleet.backend_name job.Fleet.backend)
                 ~workload:(Fleet.workload_name job.Fleet.backend) ~seed:job.Fleet.seed
                 ~cycles:config.execs ~wave:!wave ~wall_us:0. (Error why))
        | _ -> ()
      end;
      let open_after = List.length (open_points ()) in
      let stats =
        {
          wave = !wave;
          uncovered_before = List.length uncovered;
          witnessed = !witnessed;
          excluded = List.length exclusions;
          bmc_failed = !bmc_failed;
          fuzz_new = !fuzz_new;
          open_after;
        }
      in
      waves := stats :: !waves;
      log
        (Printf.sprintf
           "wave %d: %d uncovered | bmc: %d witnessed, %d excluded, %d failed | fuzz: +%d \
            points | %d open"
           stats.wave stats.uncovered_before stats.witnessed stats.excluded stats.bmc_failed
           stats.fuzz_new stats.open_after);
      (* fixpoint: the wave moved nothing — rerunning it would only repeat
         the same verdicts *)
      if stats.witnessed = 0 && stats.excluded = 0 && stats.fuzz_new = 0 then begin
        fixpoint := true;
        continue_ := false
      end;
      incr wave
    end
  done;
  let agg = if Db.runs db = [] then Counts.create () else Db.aggregate db in
  let excluded = Db.excluded_names db in
  let covered =
    List.filter
      (fun p -> Counts.get agg p >= config.threshold && not (List.mem p excluded))
      points
  in
  {
    waves = List.rev !waves;
    points_total = List.length points;
    points_covered = List.length covered;
    points_excluded = List.length excluded;
    points_open = List.length points - List.length covered - List.length excluded;
    fixpoint = !fixpoint;
    corpus = !corpus;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

let render_outcome (o : outcome) : string =
  Printf.sprintf
    "closure: %s after %d wave%s in %.1fs\n\
     points : %d covered, %d excluded, %d open (of %d)\n\
     corpus : %d witness seed%s\n"
    (if o.points_open = 0 then "closed"
     else if o.fixpoint then "fixpoint with open points"
     else "wave budget exhausted")
    (List.length o.waves)
    (if List.length o.waves = 1 then "" else "s")
    o.elapsed_s o.points_covered o.points_excluded o.points_open o.points_total
    (List.length o.corpus)
    (if List.length o.corpus = 1 then "" else "s")
