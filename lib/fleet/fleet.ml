(** The campaign orchestrator: many workloads x seeds x backends, in
    parallel, into one coverage database.

    The paper's common counts format makes every backend's result
    mergeable (§5.3); this module supplies the missing operational half:
    shard a deterministic job list across [-j N] forked worker processes,
    collect each worker's counts over a pipe, survive crashes and
    timeouts (a dead worker records a {e failed run}, never kills the
    campaign), and between {e waves} fold everything into the database
    and strip already-covered points from the next, more expensive
    instrumentation — the §5.3 removal loop generalized from
    "software then FPGA" to an arbitrary cost ladder (simulators, then
    fuzzing, then modelled FPGA, then BMC).

    Determinism: each job's RNG seed derives from the campaign master
    seed and the job's global index ({!Sic_fuzz.Rng.split}), never from
    scheduling; results are committed to the database in job order at
    each wave barrier; and the aggregate is a commutative, associative
    merge — so the database contents are byte-for-byte identical at any
    [-j]. *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Timeline = Sic_coverage.Timeline
module Removal = Sic_coverage.Removal
module Db = Sic_db.Db
module Json = Sic_obs.Json
module Obs = Sic_obs.Obs
module Rng = Sic_fuzz.Rng
open Sic_sim

(* ------------------------------------------------------------------ *)
(* Jobs                                                                 *)
(* ------------------------------------------------------------------ *)

type backend = Interp | Compiled | Essent | Fpga | Fuzz | Bmc | Bmc_witness | Lanes

let backend_name = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Essent -> "essent"
  | Fpga -> "fpga"
  | Fuzz -> "fuzz"
  | Bmc -> "bmc"
  | Bmc_witness -> "bmc-witness"
  | Lanes -> "lanes"

let backend_of_string = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | "essent" -> Some Essent
  | "fpga" -> Some Fpga
  | "fuzz" -> Some Fuzz
  | "bmc" -> Some Bmc
  | "bmc-witness" -> Some Bmc_witness
  | "lanes" -> Some Lanes
  | _ -> None

(** What a backend runs as a workload, for the run record. *)
let workload_name = function
  | Interp | Compiled | Essent | Fpga | Lanes -> "random"
  | Fuzz -> "fuzz"
  | Bmc | Bmc_witness -> "bmc"

type job = {
  index : int;  (** global position in the campaign's job list *)
  design : string;
  circuit : Sic_ir.Circuit.t;  (** instrumented, lowered, removal applied *)
  circuit_hash : string;
  backend : backend;
  seed : int;  (** derived deterministically from (master seed, run index) *)
  lane_seeds : int array;
      (** the additional runs a [Lanes] job advances bit-parallel to the
          [seed] run (lanes 1..): each entry is a full run with its own
          stimulus stream and its own database record. [[||]] for every
          other backend. Seeds derive from the campaign's global {e run}
          counter, not the job counter, so packing runs into lane jobs
          never changes which seeds exist *)
  budget : int;  (** cycles (sims/FPGA), execs (fuzz) or bound (BMC) *)
  wave : int;
  scan_width : int;  (** FPGA counter width *)
  sample_every : int;  (** timeline sampling period in budget units; 0 = off *)
  profile : bool;
      (** ship an engine hotspot profile with the result; honoured by the
          compiled-engine simulation backends ([Compiled], [Essent]) and
          ignored by the rest *)
  covers : string list;
      (** restrict the BMC backends to these cover points; [[]] = all.
          The closure loop dispatches one single-point job per uncovered
          point this way. Other backends ignore it *)
  corpus : bytes list;
      (** extra initial fuzz seeds (witness-derived inputs); inherited by
          the forked worker through the job record, so nothing crosses
          the pipe. [[]] for every backend but [Fuzz] *)
}

type job_result = {
  counts : Counts.t;
  lane_extra : Counts.t list;
      (** a [Lanes] job's per-lane counts beyond lane 0 (which is
          [counts]), in lane order — one future database record each.
          [[]] for every other backend *)
  sim_cycles : int;  (** total simulated budget units: [budget x lanes] *)
  wall_us : float;
  timeline : Timeline.t option;  (** recorded when [sample_every > 0] *)
  prof : Profile.design_profile option;
      (** counts-only engine profile, when [job.profile] asked for one *)
  witnesses : (string * Replay.trace) list;
      (** a [Bmc_witness] job's replay-confirmed witness traces, one per
          reachable targeted cover; [[]] for every other backend *)
}

(** Execute one job in the current process. Pure function of the job
    (every source of randomness is seeded from [job.seed]); [progress]
    fires at every [sample_every] boundary — the worker's heartbeat hook,
    deliberately outside the determinism contract. *)
let run_job ?progress (job : job) : job_result =
  let t0 = Unix.gettimeofday () in
  let finish ?timeline ?prof ?(lane_extra = []) ?(witnesses = []) ~sim_cycles counts =
    {
      counts;
      lane_extra;
      sim_cycles;
      wall_us = (Unix.gettimeofday () -. t0) *. 1e6;
      timeline;
      prof;
      witnesses;
    }
  in
  let notify ~cycles ~covered =
    match progress with Some f -> f ~cycles ~covered | None -> ()
  in
  let rng = Rng.create job.seed in
  match job.backend with
  | Interp | Compiled | Essent ->
      (* under [job.profile] the compiled-engine backends build in
         counts-only profiling mode and keep the sim handle to read the
         profile back; counts-only because fleet profiles must merge
         byte-deterministically across workers, which sampled timings by
         design do not *)
      let profiled = ref None in
      let b =
        match job.backend with
        | Interp -> Interp.create job.circuit
        | (Compiled | Essent) when job.profile ->
            let sim = Compiled.build ~profile:Compiled.Counts_only job.circuit in
            profiled := Some sim;
            Compiled.to_backend ~name:(backend_name job.backend) sim
        | Essent -> Essent.create job.circuit
        | _ -> Compiled.create job.circuit
      in
      let tlb = Timeline.builder () in
      let b =
        Backend.with_sampler ~every:job.sample_every
          (fun ~cycles ~covered ->
            Timeline.record tlb ~at:cycles ~covered;
            notify ~cycles ~covered)
          b
      in
      Backend.reset_sequence b;
      Backend.random_stimulus ~bits:(Rng.bits30 rng) ~cycles:job.budget b;
      let counts = b.Backend.counts () in
      let timeline =
        if job.sample_every <= 0 then None
        else begin
          Timeline.record tlb ~at:(b.Backend.cycles ())
            ~covered:(Counts.covered_points counts);
          Some (Timeline.build ~total:(Counts.total_points counts) tlb)
        end
      in
      let prof = Option.bind !profiled Compiled.profile in
      finish ?timeline ?prof ~sim_cycles:(b.Backend.cycles ()) counts
  | Fpga ->
      let chained, chain = Sic_firesim.Scan_chain.insert ~width:job.scan_width job.circuit in
      let b = Compiled.create chained in
      let r, timeline =
        Sic_firesim.Driver.run_random ~bits:(Rng.bits30 rng) ~cycles:job.budget
          ~timeline_every:job.sample_every
          ~on_sample:(fun ~cycles ~covered -> notify ~cycles ~covered)
          b chain
      in
      finish ?timeline ~sim_cycles:(b.Backend.cycles ()) r.Sic_firesim.Driver.counts
  | Fuzz ->
      let h = Sic_fuzz.Fuzzer.make_harness job.circuit in
      let r =
        Sic_fuzz.Fuzzer.run ~seed:job.seed ~execs:job.budget ~seed_cycles:32 ~max_cycles:128
          ~corpus:job.corpus
          ?snapshot_every:(if job.sample_every > 0 then Some job.sample_every else None)
          ~on_snapshot:(fun ~execs ~covered -> notify ~cycles:execs ~covered)
          h
      in
      let timeline =
        if job.sample_every > 0 then Some r.Sic_fuzz.Fuzzer.timeline else None
      in
      finish ?timeline ~sim_cycles:r.Sic_fuzz.Fuzzer.final.Sic_fuzz.Fuzzer.execs
        r.Sic_fuzz.Fuzzer.final.Sic_fuzz.Fuzzer.cumulative
  | Lanes ->
      (* one tape pass advances every packed run at once; each lane's
         stimulus stream is the same [Rng.bits30 (Rng.create seed)] a solo
         job would draw, so each lane's counts are byte-identical to the
         solo run's — packing is a scheduling decision, not a semantic
         one. No timeline (there is no single convergence curve for k
         interleaved runs) and no heartbeats (the pass is one call). *)
      let seeds = Array.append [| job.seed |] job.lane_seeds in
      let k = Array.length seeds in
      let lt = Lanes.build ~lanes:k job.circuit in
      Backend.reset_sequence (Lanes.to_backend ~name:"lanes" lt);
      let streams = Array.map (fun s -> Rng.bits30 (Rng.create s)) seeds in
      Lanes.run_random lt ~streams ~cycles:job.budget;
      let per_lane = List.init k (Lanes.lane_counts lt) in
      notify ~cycles:(job.budget * k)
        ~covered:(Counts.covered_points (List.hd per_lane));
      finish ~lane_extra:(List.tl per_lane) ~sim_cycles:(job.budget * k)
        (List.hd per_lane)
  | Bmc ->
      let covers = match job.covers with [] -> None | l -> Some l in
      let report = Sic_formal.Bmc.check_covers ~bound:job.budget ?covers job.circuit in
      (* a reachable cover counts once (the witness trace reaches it); an
         unreachable-within-bound cover is reported at zero so the
         aggregate still knows the point exists *)
      let counts = Counts.create () in
      List.iter
        (fun (name, verdict) ->
          match verdict with
          | Sic_formal.Bmc.Reachable _ -> Counts.set counts name 1
          | Sic_formal.Bmc.Unreachable_within_bound -> Counts.set counts name 0)
        report.Sic_formal.Bmc.results;
      finish ~sim_cycles:job.budget counts
  | Bmc_witness ->
      (* the closure loop's job kind: prove reachability, then {e replay}
         each witness through the fast compiled backend in-worker — the
         replay both confirms the witness actually fires its target
         (differential check of BMC against the simulator, for free) and
         harvests the trace's full coverage, which is far richer than the
         1-hit BMC verdict. Unreachable-within-bound targets report 0 so
         the orchestrator can tell "proven absent" from "not targeted". *)
      let covers = match job.covers with [] -> None | l -> Some l in
      let report = Sic_formal.Bmc.check_covers ~bound:job.budget ?covers job.circuit in
      let counts = ref (Counts.create ()) in
      let witnesses = ref [] in
      List.iter
        (fun (name, verdict) ->
          match verdict with
          | Sic_formal.Bmc.Unreachable_within_bound -> Counts.set !counts name 0
          | Sic_formal.Bmc.Reachable trace ->
              let b = Compiled.create job.circuit in
              Replay.replay b trace;
              let harvest = b.Backend.counts () in
              if Counts.get harvest name > 0 then begin
                witnesses := (name, trace) :: !witnesses;
                counts := Counts.merge [ !counts; harvest ]
              end
              else
                (* a witness the simulator disagrees with is a real bug
                   somewhere; surface it as a failed job, not silence *)
                failwith
                  (Printf.sprintf "witness for %s does not fire under replay" name))
        report.Sic_formal.Bmc.results;
      finish ~witnesses:(List.rev !witnesses) ~sim_cycles:job.budget !counts

(* ------------------------------------------------------------------ *)
(* The worker pool                                                      *)
(* ------------------------------------------------------------------ *)

(* Worker -> parent protocol, version 2 (documented in DESIGN.md): while
   running, the worker writes heartbeat lines
   [{"type":"hb","job":i,"cycles":c,"covered":p}]; then exactly one result
   header line whose [counts_bytes]/[timeline_bytes]/[telemetry_bytes]/
   [profile_bytes] fields frame the sections that follow verbatim — the
   counts map, timeline and engine profile in their own interchange
   formats, and the worker's telemetry as an {!Obs.export_events} payload.
   Reusing the existing text formats means no new parser and
   human-debuggable pipes; the explicit protocol version means a
   mixed-version parent/worker pair fails loudly instead of misparsing.
   The profile section rode in on a length field rather than a version
   bump: absent fields decode as zero-length sections, so a parent that
   predates it skips the extra trailing bytes and one that postdates an
   old worker sees no profile. A lane job's extra per-lane counts ride in
   the same way: [lane_counts_bytes] is a JSON array of section lengths,
   one ordinary counts section per lane beyond lane 0, appended after the
   profile — absent means a single-run job, and each section is the same
   v1 counts text a solo worker would have shipped. A [Bmc_witness] job's
   confirmed traces ride in once more by the same trick: [witness_bytes]
   frames one section per witness after the lane sections, each a cover
   name line followed by the trace in the {!Replay.to_string} text. *)

let proto_version = 2

let encode_ok (r : job_result) : string =
  let counts = Counts.to_string r.counts in
  let timeline =
    match r.timeline with Some tl -> Timeline.to_string tl | None -> ""
  in
  let telemetry = if Obs.on () then Obs.export_events () else "" in
  let profile = match r.prof with Some d -> Profile.to_string [ d ] | None -> "" in
  let lane_sections = List.map Counts.to_string r.lane_extra in
  let lane_field =
    match lane_sections with
    | [] -> []
    | ss ->
        [
          ( "lane_counts_bytes",
            Json.List (List.map (fun s -> Json.Int (String.length s)) ss) );
        ]
  in
  let witness_sections =
    List.map (fun (name, tr) -> name ^ "\n" ^ Replay.to_string tr) r.witnesses
  in
  let witness_field =
    match witness_sections with
    | [] -> []
    | ss ->
        [
          ( "witness_bytes",
            Json.List (List.map (fun s -> Json.Int (String.length s)) ss) );
        ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("type", Json.String "result");
          ("proto", Json.Int proto_version);
          ("status", Json.String "ok");
          ("sim_cycles", Json.Int r.sim_cycles);
          ("wall_us", Json.Float r.wall_us);
          ("counts_bytes", Json.Int (String.length counts));
          ("timeline_bytes", Json.Int (String.length timeline));
          ("telemetry_bytes", Json.Int (String.length telemetry));
          ("profile_bytes", Json.Int (String.length profile));
        ]
       @ lane_field @ witness_field))
  ^ "\n" ^ counts ^ timeline ^ telemetry ^ profile
  ^ String.concat "" lane_sections
  ^ String.concat "" witness_sections

let encode_failed (why : string) : string =
  let telemetry = if Obs.on () then Obs.export_events () else "" in
  Json.to_string
    (Json.Obj
       [
         ("type", Json.String "result");
         ("proto", Json.Int proto_version);
         ("status", Json.String "failed");
         ("error", Json.String why);
         ("telemetry_bytes", Json.Int (String.length telemetry));
       ])
  ^ "\n" ^ telemetry

type decoded = {
  outcome : (job_result, string) result;
      (** the job's verdict: [Error] is a {e worker-reported} failure *)
  telemetry : string;  (** {!Obs.import_events} payload; [""] when off *)
}

let decode (payload : string) : (decoded, string) result =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt payload '\n' with
  | None -> Error "truncated worker result"
  | Some i -> (
      let header = String.sub payload 0 i in
      let body = String.sub payload (i + 1) (String.length payload - i - 1) in
      match Json.parse header with
      | exception Json.Parse_error m -> fail "bad worker header: %s" m
      | h -> (
          match Json.int_member "proto" h with
          | Some v when v <> proto_version ->
              fail "worker speaks protocol %d, this orchestrator speaks %d" v proto_version
          | None -> fail "worker header lacks a protocol version"
          | Some _ -> (
              let len k = Option.value ~default:0 (Json.int_member k h) in
              let counts_len = len "counts_bytes" in
              let timeline_len = len "timeline_bytes" in
              let telemetry_len = len "telemetry_bytes" in
              let profile_len = len "profile_bytes" in
              let lane_lens =
                match Json.member "lane_counts_bytes" h with
                | Some (Json.List l) ->
                    List.map (function Json.Int n -> n | _ -> 0) l
                | _ -> []
              in
              let witness_lens =
                match Json.member "witness_bytes" h with
                | Some (Json.List l) ->
                    List.map (function Json.Int n -> n | _ -> 0) l
                | _ -> []
              in
              let want =
                counts_len + timeline_len + telemetry_len + profile_len
                + List.fold_left ( + ) 0 lane_lens
                + List.fold_left ( + ) 0 witness_lens
              in
              if String.length body < want then
                fail "truncated worker body (%d of %d bytes)" (String.length body) want
              else
                let counts_s = String.sub body 0 counts_len in
                let timeline_s = String.sub body counts_len timeline_len in
                let telemetry = String.sub body (counts_len + timeline_len) telemetry_len in
                let profile_s =
                  String.sub body (counts_len + timeline_len + telemetry_len) profile_len
                in
                let off = ref (counts_len + timeline_len + telemetry_len + profile_len) in
                let take n =
                  let s = String.sub body !off n in
                  off := !off + n;
                  s
                in
                let lane_sections = List.map take lane_lens in
                let witness_sections = List.map take witness_lens in
                let witness_of_section s =
                  match String.index_opt s '\n' with
                  | None -> raise (Replay.Bad_format "witness section lacks a name line")
                  | Some i ->
                      ( String.sub s 0 i,
                        Replay.of_string (String.sub s (i + 1) (String.length s - i - 1)) )
                in
                match Json.string_member "status" h with
                | Some "ok" -> (
                    match
                      ( Counts.of_string counts_s,
                        (if timeline_len = 0 then None
                         else Some (Timeline.of_string timeline_s)),
                        (if profile_len = 0 then None
                         else
                           match Profile.of_string profile_s with
                           | [ d ] -> Some d
                           | _ -> None),
                        List.map Counts.of_string lane_sections,
                        List.map witness_of_section witness_sections )
                    with
                    | counts, timeline, prof, lane_extra, witnesses ->
                        Ok
                          {
                            outcome =
                              Ok
                                {
                                  counts;
                                  lane_extra;
                                  timeline;
                                  prof;
                                  witnesses;
                                  sim_cycles =
                                    Option.value ~default:0 (Json.int_member "sim_cycles" h);
                                  wall_us =
                                    Option.value ~default:0. (Json.float_member "wall_us" h);
                                };
                            telemetry;
                          }
                    | exception Counts.Bad_format m -> fail "bad worker counts: %s" m
                    | exception Timeline.Bad_format m -> fail "bad worker timeline: %s" m
                    | exception Profile.Bad_format m -> fail "bad worker profile: %s" m
                    | exception Replay.Bad_format m -> fail "bad worker witness: %s" m)
                | Some "failed" ->
                    Ok
                      {
                        outcome =
                          Error
                            (Option.value ~default:"unknown" (Json.string_member "error" h));
                        telemetry;
                      }
                | Some s -> fail "unknown worker status %s" s
                | None -> fail "worker header lacks a status")))

(* sic ignores SIGPIPE process-wide (bin/sic.ml), so a write after the
   parent closed the result pipe raises Unix_error (EPIPE) here rather
   than killing the worker; child_main's catch-all absorbs it and the
   parent records the job from whatever arrived (usually a retry). *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(** How often (seconds) a worker is willing to write a heartbeat; the
    sampling hooks can fire far more often than the parent cares. *)
let heartbeat_interval_s = 0.05

(** What the forked child does. [crash] simulates a hard worker death
    (SIGKILL to itself) — the failure-isolation test hook. Exits via
    [Unix._exit] so the parent's buffered channels and [at_exit] hooks
    never run twice. *)
let child_main ~crash (job : job) (wfd : Unix.file_descr) : 'a =
  (* runtime prints from the simulated design belong to the job, not to
     the campaign's terminal *)
  Obs.sink := ignore;
  (* the fork inherits the parent's recorded events; this worker's
     exported lane must contain only its own (t0 is inherited too, so
     timestamps stay on the campaign clock) *)
  if Obs.on () then Obs.reset ();
  if crash then Unix.kill (Unix.getpid ()) Sys.sigkill;
  (try
     let last_hb = ref 0. in
     let progress ~cycles ~covered =
       let now = Unix.gettimeofday () in
       if now -. !last_hb >= heartbeat_interval_s then begin
         last_hb := now;
         write_all wfd
           (Json.to_string
              (Json.Obj
                 [
                   ("type", Json.String "hb");
                   ("job", Json.Int job.index);
                   ("cycles", Json.Int cycles);
                   ("covered", Json.Int covered);
                 ])
           ^ "\n")
       end
     in
     let payload =
       try
         encode_ok
           (Obs.span "fleet.job"
              ~args:
                [
                  ("job", Obs.Int job.index);
                  ("design", Obs.Str job.design);
                  ("backend", Obs.Str (backend_name job.backend));
                  ("seed", Obs.Int job.seed);
                ]
              (fun () -> run_job ~progress job))
       with e -> encode_failed (Printexc.to_string e)
     in
     write_all wfd payload
   with _ -> ());
  (try Unix.close wfd with _ -> ());
  Unix._exit 0

(** What the orchestrator reports as a campaign unfolds — the feed behind
    [sic campaign --progress] (and any future TUI). *)
type job_event =
  | Job_started of { job : job; attempt : int }
  | Job_heartbeat of { job : job; hb_cycles : int; hb_covered : int }
  | Job_retried of { job : job; attempt : int; why : string }
  | Job_finished of { job : job; result : (job_result, string) result }

type worker = {
  pid : int;
  w_job : job;
  attempt : int;  (** 0-based *)
  rfd : Unix.file_descr;
  buf : Buffer.t;
  started : float;
  w_start_us : float;  (** on the telemetry clock, for the attempt span *)
  mutable timed_out : bool;
  mutable result_seen : bool;
      (** leading heartbeat lines already drained; [buf] starts at the
          result header *)
}

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let select_retry rfds timeout =
  match Unix.select rfds [] [] timeout with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

(** Run every job, at most [jobs] concurrently, each in its own forked
    worker. Per-job [timeout_s] and [retries] (extra attempts after a
    crash, a timeout or a job-level exception); a job that still fails is
    returned as [Error reason] — the campaign never dies with its
    workers. Results come back in input order regardless of completion
    order. [inject_crash] marks jobs whose workers kill themselves hard
    (testing); [on_event] observes starts, heartbeats, retries and
    finishes as they happen. *)
let run_jobs ?(jobs = 1) ?timeout_s ?(retries = 1) ?(inject_crash = fun _ -> false)
    ?on_event (work : job list) : (job * (job_result, string) result) list =
  let jobs = max 1 jobs in
  let emit ev = match on_event with Some f -> f ev | None -> () in
  let results : (int, (job_result, string) result) Hashtbl.t = Hashtbl.create 64 in
  let pending = Queue.create () in
  List.iter (fun j -> Queue.add (j, 0) pending) work;
  let running : worker list ref = ref [] in
  let gauge_in_flight () =
    Obs.gauge "fleet.jobs_in_flight" (float_of_int (List.length !running))
  in
  let spawn (job, attempt) =
    (* decide crash injection in the parent: the hook may be stateful
       (e.g. "crash only on the first attempt"), and child-side mutations
       would be lost with the fork *)
    let crash = inject_crash job in
    let rfd, wfd = Unix.pipe () in
    (* the parent's pending buffered output must not be replayed by the
       child's libc on its own descriptors *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try Unix.close rfd with _ -> ());
        child_main ~crash job wfd
    | pid ->
        Unix.close wfd;
        running :=
          {
            pid;
            w_job = job;
            attempt;
            rfd;
            buf = Buffer.create 4096;
            started = Unix.gettimeofday ();
            w_start_us = Obs.now_us ();
            timed_out = false;
            result_seen = false;
          }
          :: !running;
        gauge_in_flight ();
        emit (Job_started { job; attempt })
  in
  (* pop complete heartbeat lines off the front of the buffer as they
     arrive; the first line that is not a heartbeat is the result header
     and stays put for [decode] *)
  let drain_heartbeats (w : worker) =
    let continue_ = ref (not w.result_seen) in
    while !continue_ do
      let s = Buffer.contents w.buf in
      match String.index_opt s '\n' with
      | None -> continue_ := false
      | Some i -> (
          match Json.parse (String.sub s 0 i) with
          | exception Json.Parse_error _ ->
              w.result_seen <- true;
              continue_ := false
          | j when Json.string_member "type" j = Some "hb" ->
              Buffer.clear w.buf;
              Buffer.add_substring w.buf s (i + 1) (String.length s - i - 1);
              emit
                (Job_heartbeat
                   {
                     job = w.w_job;
                     hb_cycles = Option.value ~default:0 (Json.int_member "cycles" j);
                     hb_covered = Option.value ~default:0 (Json.int_member "covered" j);
                   })
          | _ ->
              w.result_seen <- true;
              continue_ := false)
    done
  in
  (* merge a finished worker's telemetry as one lane of the campaign trace *)
  let import_telemetry (w : worker) telemetry =
    if telemetry <> "" && Obs.on () then begin
      let label =
        Printf.sprintf "job %d %s/%s seed=%d%s" w.w_job.index w.w_job.design
          (backend_name w.w_job.backend)
          w.w_job.seed
          (if w.attempt > 0 then Printf.sprintf " attempt %d" (w.attempt + 1) else "")
      in
      try Obs.import_events ~label telemetry
      with Json.Parse_error m ->
        Obs.instant "fleet.telemetry_dropped"
          ~args:[ ("job", Obs.Int w.w_job.index); ("why", Obs.Str m) ]
    end
  in
  let finish (w : worker) =
    (try Unix.close w.rfd with _ -> ());
    let _, wstatus = waitpid_retry w.pid in
    running := List.filter (fun x -> x.pid <> w.pid) !running;
    gauge_in_flight ();
    let outcome =
      if w.timed_out then
        Error
          (Printf.sprintf "timeout after %.1fs" (Option.value ~default:0. timeout_s))
      else
        (* OCaml signal numbers are negative internals; name the common ones *)
        let signal_name s =
          if s = Sys.sigkill then "SIGKILL"
          else if s = Sys.sigsegv then "SIGSEGV"
          else if s = Sys.sigterm then "SIGTERM"
          else if s = Sys.sigint then "SIGINT"
          else if s = Sys.sigabrt then "SIGABRT"
          else string_of_int s
        in
        match wstatus with
        | Unix.WEXITED 0 -> (
            match decode (Buffer.contents w.buf) with
            | Ok d ->
                import_telemetry w d.telemetry;
                d.outcome
            | Error m -> Error m)
        | Unix.WEXITED n -> Error (Printf.sprintf "worker exited with status %d" n)
        | Unix.WSIGNALED s -> Error (Printf.sprintf "worker killed by signal %s" (signal_name s))
        | Unix.WSTOPPED s -> Error (Printf.sprintf "worker stopped by signal %s" (signal_name s))
    in
    (* one parent-side span per attempt: even a worker that died without
       shipping telemetry still shows up in the merged schedule *)
    if Obs.on () then
      Obs.record_span ~name:"fleet.attempt" ~start_us:w.w_start_us
        ~dur_us:(Obs.now_us () -. w.w_start_us)
        [
          ("job", Obs.Int w.w_job.index);
          ("design", Obs.Str w.w_job.design);
          ("backend", Obs.Str (backend_name w.w_job.backend));
          ("attempt", Obs.Int (w.attempt + 1));
          ("ok", Obs.Bool (match outcome with Ok _ -> true | Error _ -> false));
        ];
    match outcome with
    | Ok r ->
        Hashtbl.replace results w.w_job.index (Ok r);
        emit (Job_finished { job = w.w_job; result = Ok r })
    | Error why when w.attempt < retries ->
        Obs.instant "fleet.retry"
          ~args:
            [
              ("job", Obs.Int w.w_job.index);
              ("attempt", Obs.Int (w.attempt + 1));
              ("why", Obs.Str why);
            ];
        emit (Job_retried { job = w.w_job; attempt = w.attempt + 1; why });
        Queue.add (w.w_job, w.attempt + 1) pending
    | Error why ->
        Obs.count "fleet.failed_jobs";
        Hashtbl.replace results w.w_job.index (Error why);
        emit (Job_finished { job = w.w_job; result = Error why })
  in
  let chunk = Bytes.create 65536 in
  while (not (Queue.is_empty pending)) || !running <> [] do
    while List.length !running < jobs && not (Queue.is_empty pending) do
      spawn (Queue.pop pending)
    done;
    let readable = select_retry (List.map (fun w -> w.rfd) !running) 0.05 in
    List.iter
      (fun fd ->
        match List.find_opt (fun w -> w.rfd = fd) !running with
        | None -> ()
        | Some w -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> finish w
            | n ->
                Buffer.add_subbytes w.buf chunk 0 n;
                drain_heartbeats w
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                finish w))
      readable;
    (match timeout_s with
    | None -> ()
    | Some limit ->
        let now = Unix.gettimeofday () in
        List.iter
          (fun w ->
            if (not w.timed_out) && now -. w.started > limit then begin
              w.timed_out <- true;
              Obs.instant "fleet.timeout"
                ~args:
                  [ ("job", Obs.Int w.w_job.index); ("attempt", Obs.Int (w.attempt + 1)) ];
              try Unix.kill w.pid Sys.sigkill with _ -> ()
            end)
          !running)
  done;
  List.map
    (fun j ->
      match Hashtbl.find_opt results j.index with
      | Some r -> (j, r)
      | None -> (j, Error "job lost by the orchestrator"))
    work

(* ------------------------------------------------------------------ *)
(* Campaigns: waves of jobs over a database                             *)
(* ------------------------------------------------------------------ *)

type spec = {
  designs : (string * Sic_ir.Circuit.t) list;
      (** instrumented and lowered; the orchestrator only applies removal *)
  waves : backend list list;  (** one entry per wave, cheap to expensive *)
  seeds : int;  (** runs per (design, backend) within a wave *)
  lanes : int;
      (** runs packed bit-parallel into each [Lanes] job (clamped to
          [1, 62]); other backends ignore it. Pure scheduling: the runs
          recorded — seeds, counts, database bytes — are identical at any
          value, only the jobs-per-run ratio (and the wall clock) moves *)
  cycles : int;  (** budget of the simulation and FPGA backends *)
  execs : int;  (** budget of the fuzzing backend *)
  bound : int;  (** budget of the BMC backend *)
  scan_width : int;
  master_seed : int;
  jobs : int;
  timeout_s : float option;
  retries : int;
  threshold : int;  (** §5.3 removal threshold applied between waves *)
  timeline_every : int;
      (** convergence-timeline sampling period (budget units); 0 = off *)
  profile : bool;
      (** have compiled-engine workers ship per-instruction hit profiles;
          merged into {!summary.profile} *)
}

let default_spec =
  {
    designs = [];
    waves = [ [ Compiled ] ];
    seeds = 1;
    lanes = 1;
    cycles = 1000;
    execs = 300;
    bound = 10;
    scan_width = 16;
    master_seed = 0;
    jobs = 1;
    timeout_s = None;
    retries = 1;
    threshold = 1;
    timeline_every = 100;
    profile = false;
  }

let lanes_per_job (spec : spec) = max 1 (min 62 spec.lanes)

(** How many jobs the spec will enumerate, before any of them run — what a
    progress display sizes itself against. A [Lanes] entry packs
    [spec.lanes] of its [spec.seeds] runs into each job. *)
let spec_total_jobs (spec : spec) =
  let jobs_of = function
    | Lanes ->
        let l = lanes_per_job spec in
        (spec.seeds + l - 1) / l
    | _ -> spec.seeds
  in
  List.length spec.designs
  * List.fold_left
      (fun acc wave -> acc + List.fold_left (fun a b -> a + jobs_of b) 0 wave)
      0 spec.waves

type summary = {
  total_jobs : int;
  ok : int;
  failed : int;
  waves_run : int;
  removed_points : int;  (** cover points stripped by inter-wave removal *)
  points_total : int;
  points_covered : int;
  sim_cycles : int;
      (** total simulated budget units over successful jobs — a lane job
          contributes [budget x lanes], so this is the waves x jobs x
          lanes aggregate behind the summary's cycles/sec figure *)
  elapsed_s : float;  (** campaign wall time *)
  profile : Profile.t;
      (** the campaign's merged engine profile ([[]] unless
          [spec.profile]); one section per distinct instrumented circuit,
          so a multi-wave campaign whose removal pass rewrote a design
          keeps that wave's tape separate instead of corrupting the sum *)
}

(* ------------------------------------------------------------------ *)
(* Live progress                                                        *)
(* ------------------------------------------------------------------ *)

(** The single-line status renderer behind [sic campaign --progress]: a
    {!job_event} consumer that keeps done/failed/running counts, a
    union-max estimate of points covered so far, throughput over finished
    and in-flight work, and an ETA. Renders with [\r] to one channel at
    most ~10x a second; purely cosmetic, so it uses wall-clock time
    directly rather than the telemetry clock. *)
module Progress = struct
  type t = {
    out : out_channel;
    label : string;  (** line prefix: "campaign", or "watch" for [sic watch] *)
    total : int;
    started : float;
    mutable done_ : int;  (** finished jobs, failed included *)
    mutable failed : int;
    mutable running : int;
    mutable units_finished : int;  (** budget units from finished jobs *)
    hb : (int, int) Hashtbl.t;  (** job index -> latest heartbeat cycles *)
    mutable covered : Counts.t;  (** union-max over finished Ok runs *)
    mutable ext : (int * int * int) option;
        (** externally-fed (covered, total points, units): {!update}
            replaces the locally-accumulated counters with a server's *)
    mutable last_render : float;
    mutable last_len : int;
  }

  let create ?(out = stderr) ?(label = "campaign") ~total () =
    {
      out;
      label;
      total;
      started = Unix.gettimeofday ();
      done_ = 0;
      failed = 0;
      running = 0;
      units_finished = 0;
      hb = Hashtbl.create 16;
      covered = Counts.create ();
      ext = None;
      last_render = 0.;
      last_len = 0;
    }

  let line t =
    let elapsed = Unix.gettimeofday () -. t.started in
    let covered_pts, total_pts, units =
      match t.ext with
      | Some (c, tot, u) -> (c, tot, u)
      | None ->
          let in_flight = Hashtbl.fold (fun _ c acc -> acc + c) t.hb 0 in
          ( Counts.covered_points t.covered,
            Counts.total_points t.covered,
            t.units_finished + in_flight )
    in
    let throughput =
      if elapsed > 0. then float_of_int units /. elapsed else 0.
    in
    let eta =
      if t.total > 0 && t.done_ > 0 && t.done_ < t.total then
        Printf.sprintf " | ETA %.0fs"
          (elapsed /. float_of_int t.done_ *. float_of_int (t.total - t.done_))
      else ""
    in
    let progress =
      (* total = 0: an open-ended stream (sic watch), no denominator *)
      if t.total > 0 then Printf.sprintf "%d/%d done" t.done_ t.total
      else Printf.sprintf "%d done" t.done_
    in
    Printf.sprintf "%s %s%s, %d running | %d/%d pts | %.0f cyc/s%s" t.label progress
      (if t.failed > 0 then Printf.sprintf " (%d failed)" t.failed else "")
      t.running covered_pts total_pts throughput eta

  let render ?(force = false) t =
    let now = Unix.gettimeofday () in
    if force || now -. t.last_render >= 0.1 then begin
      t.last_render <- now;
      let s = line t in
      (* pad over the previous, possibly longer, line *)
      let pad = max 0 (t.last_len - String.length s) in
      Printf.fprintf t.out "\r%s%s%!" s (String.make pad ' ');
      t.last_len <- String.length s
    end

  let on_event t (ev : job_event) =
    (match ev with
    | Job_started _ -> t.running <- t.running + 1
    | Job_heartbeat { job; hb_cycles; hb_covered = _ } ->
        Hashtbl.replace t.hb job.index hb_cycles
    | Job_retried { job; _ } ->
        t.running <- t.running - 1;
        Hashtbl.remove t.hb job.index
    | Job_finished { job; result } ->
        t.running <- t.running - 1;
        t.done_ <- t.done_ + 1;
        Hashtbl.remove t.hb job.index;
        (match result with
        | Ok r ->
            t.units_finished <- t.units_finished + r.sim_cycles;
            t.covered <- Counts.union_max [ t.covered; r.counts ]
        | Error _ -> t.failed <- t.failed + 1));
    render t

  (** Drive the renderer from an external aggregate — the [sic watch]
      client, which learns absolute counters from a server's SSE events
      rather than from local job events. *)
  let update t ~done_ ~failed ~running ~covered ~points ~units =
    t.done_ <- done_;
    t.failed <- failed;
    t.running <- running;
    t.ext <- Some (covered, points, units);
    render t

  let finish t =
    render ~force:true t;
    output_string t.out "\n";
    flush t.out
end

let budget_of spec = function
  | Interp | Compiled | Essent | Fpga | Lanes -> spec.cycles
  | Fuzz -> spec.execs
  | Bmc | Bmc_witness -> spec.bound

(** Run a whole campaign into [db]. Jobs are enumerated wave by wave,
    design-major then backend then seed index, so the job list — and with
    it every derived seed and the database contents — is independent of
    [-j]. [inject_crash] receives the global job index (testing hook);
    [on_event] feeds a progress display. *)
let run_campaign ?(inject_crash = fun _ -> false) ?on_event ~(db : Db.t) (spec : spec) :
    summary =
  let t0 = Unix.gettimeofday () in
  let master = Rng.create spec.master_seed in
  (* two counters: runs get seeds, jobs get pipe-scheduling indices. For
     every backend but [Lanes] they advance in lockstep (one run per job,
     seeds unchanged from before lane packing existed); a [Lanes] job
     consumes [spec.lanes] run indices at once, so the set of seeds — and
     with it the database — is invariant under the packing factor *)
  let job_counter = ref 0 in
  let run_counter = ref 0 in
  let next_seed () =
    let run_index = !run_counter in
    incr run_counter;
    Int64.to_int (Int64.logand (Rng.next64 (Rng.split master run_index)) 0x3FFFFFFFL)
  in
  let ok = ref 0 and failed = ref 0 and removed_total = ref 0 in
  let sim_cycles_total = ref 0 in
  (* per-circuit-hash profile accumulator, in job (hence deterministic)
     order: profiles merge positionally, so only runs of the identical
     instrumented circuit may fold together — the same design re-lowered
     by a later wave's removal pass is a different tape *)
  let prof_order : string list ref = ref [] in
  let profs : (string, Profile.design_profile) Hashtbl.t = Hashtbl.create 8 in
  let add_profile circuit_hash (d : Profile.design_profile) =
    match Hashtbl.find_opt profs circuit_hash with
    | None ->
        prof_order := circuit_hash :: !prof_order;
        Hashtbl.replace profs circuit_hash d
    | Some prev -> (
        match Profile.merge [ [ prev ]; [ d ] ] with
        | [ m ] -> Hashtbl.replace profs circuit_hash m
        (* a malformed worker profile must not kill the campaign *)
        | _ -> Obs.count "fleet.profile_dropped"
        | exception Profile.Bad_format _ -> Obs.count "fleet.profile_dropped")
  in
  let hash c = Digest.to_hex (Digest.string (Sic_ir.Printer.circuit_to_string c)) in
  List.iteri
    (fun wave_idx backends ->
      Obs.span "fleet.wave" ~args:[ ("wave", Obs.Int wave_idx) ] @@ fun () ->
      (* §5.3: strip points the database already covers before this wave *)
      let covered_so_far =
        if Db.runs db = [] then Counts.create () else Db.removal_counts db
      in
      let wave_designs =
        List.map
          (fun (name, circuit) ->
            let r = Removal.remove_covered ~threshold:spec.threshold covered_so_far circuit in
            removed_total := !removed_total + List.length r.Removal.removed;
            (name, r.Removal.circuit, hash r.Removal.circuit))
          spec.designs
      in
      let wave_jobs =
        List.concat_map
          (fun (design, circuit, circuit_hash) ->
            List.concat_map
              (fun backend ->
                let mk ~seed ~lane_seeds =
                  let index = !job_counter in
                  incr job_counter;
                  {
                    index;
                    design;
                    circuit;
                    circuit_hash;
                    backend;
                    seed;
                    lane_seeds;
                    budget = budget_of spec backend;
                    wave = wave_idx;
                    scan_width = spec.scan_width;
                    sample_every = spec.timeline_every;
                    profile = spec.profile;
                    covers = [];
                    corpus = [];
                  }
                in
                match backend with
                | Lanes ->
                    (* pack this (design, backend)'s seeds runs into
                       ceil(seeds/lanes) bit-parallel jobs *)
                    let l = lanes_per_job spec in
                    let rec pack remaining acc =
                      if remaining = 0 then List.rev acc
                      else begin
                        let k = min l remaining in
                        let seeds = Array.make k 0 in
                        for i = 0 to k - 1 do
                          seeds.(i) <- next_seed ()
                        done;
                        pack (remaining - k)
                          (mk ~seed:seeds.(0) ~lane_seeds:(Array.sub seeds 1 (k - 1))
                          :: acc)
                      end
                    in
                    pack spec.seeds []
                | _ ->
                    List.init spec.seeds (fun _s ->
                        mk ~seed:(next_seed ()) ~lane_seeds:[||]))
              backends)
          wave_designs
      in
      let results =
        run_jobs ~jobs:spec.jobs ?timeout_s:spec.timeout_s ~retries:spec.retries
          ~inject_crash:(fun j -> inject_crash j.index)
          ?on_event wave_jobs
      in
      (* wave barrier: commit in (job, lane) order, so the manifest is as
         deterministic as the aggregate — a lane job lands one run record
         per lane, exactly the records its runs would have landed solo *)
      Obs.span "fleet.merge" ~args:[ ("wave", Obs.Int wave_idx) ] (fun () ->
          List.iter
            (fun (job, outcome) ->
              let seeds = Array.append [| job.seed |] job.lane_seeds in
              let commits =
                match outcome with
                | Ok (r : job_result) ->
                    incr ok;
                    sim_cycles_total := !sim_cycles_total + r.sim_cycles;
                    Option.iter (add_profile job.circuit_hash) r.prof;
                    let share = r.wall_us /. float_of_int (Array.length seeds) in
                    List.mapi
                      (fun l c ->
                        (seeds.(l), Ok c, share, if l = 0 then r.timeline else None))
                      (r.counts :: r.lane_extra)
                | Error why ->
                    incr failed;
                    Array.to_list
                      (Array.map (fun s -> (s, Error why, 0., None)) seeds)
              in
              List.iter
                (fun (seed, outcome, wall_us, timeline) ->
                  ignore
                    (Db.add db ~design:job.design ~circuit_hash:job.circuit_hash
                       ~backend:(backend_name job.backend)
                       ~workload:(workload_name job.backend) ~seed ~cycles:job.budget
                       ~wave:job.wave ~wall_us ?timeline outcome))
                commits)
            results);
      let agg = Db.aggregate db in
      Obs.gauge "fleet.points_remaining"
        (float_of_int (Counts.total_points agg - Counts.covered_points agg)))
    spec.waves;
  let agg = Db.aggregate db in
  {
    total_jobs = !job_counter;
    ok = !ok;
    failed = !failed;
    waves_run = List.length spec.waves;
    removed_points = !removed_total;
    points_total = Counts.total_points agg;
    points_covered = Counts.covered_points agg;
    sim_cycles = !sim_cycles_total;
    elapsed_s = Unix.gettimeofday () -. t0;
    profile = List.rev_map (Hashtbl.find profs) !prof_order;
  }

let render_summary (s : summary) : string =
  Printf.sprintf
    "campaign: %d jobs in %d waves (%d ok, %d failed), %d points removed pre-instrumentation\n\
     coverage: %d/%d points (%.1f%%)\n\
     throughput: %d simulated units in %.1fs (%.0f units/s aggregate over waves x jobs x \
     lanes)\n"
    s.total_jobs s.waves_run s.ok s.failed s.removed_points s.points_covered s.points_total
    (if s.points_total = 0 then 100.
     else 100. *. float_of_int s.points_covered /. float_of_int s.points_total)
    s.sim_cycles s.elapsed_s
    (if s.elapsed_s > 0. then float_of_int s.sim_cycles /. s.elapsed_s else 0.)
