(** The campaign orchestrator: many workloads x seeds x backends, in
    parallel, into one coverage database.

    The paper's common counts format makes every backend's result
    mergeable (§5.3); this module supplies the missing operational half:
    shard a deterministic job list across [-j N] forked worker processes,
    collect each worker's counts over a pipe, survive crashes and
    timeouts (a dead worker records a {e failed run}, never kills the
    campaign), and between {e waves} fold everything into the database
    and strip already-covered points from the next, more expensive
    instrumentation — the §5.3 removal loop generalized from
    "software then FPGA" to an arbitrary cost ladder (simulators, then
    fuzzing, then modelled FPGA, then BMC).

    Determinism: each job's RNG seed derives from the campaign master
    seed and the job's global index ({!Sic_fuzz.Rng.split}), never from
    scheduling; results are committed to the database in job order at
    each wave barrier; and the aggregate is a commutative, associative
    merge — so the database contents are byte-for-byte identical at any
    [-j]. *)

module Bv = Sic_bv.Bv
module Counts = Sic_coverage.Counts
module Removal = Sic_coverage.Removal
module Db = Sic_db.Db
module Json = Sic_obs.Json
module Obs = Sic_obs.Obs
module Rng = Sic_fuzz.Rng
open Sic_sim

(* ------------------------------------------------------------------ *)
(* Jobs                                                                 *)
(* ------------------------------------------------------------------ *)

type backend = Interp | Compiled | Essent | Fpga | Fuzz | Bmc

let backend_name = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Essent -> "essent"
  | Fpga -> "fpga"
  | Fuzz -> "fuzz"
  | Bmc -> "bmc"

let backend_of_string = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | "essent" -> Some Essent
  | "fpga" -> Some Fpga
  | "fuzz" -> Some Fuzz
  | "bmc" -> Some Bmc
  | _ -> None

(** What a backend runs as a workload, for the run record. *)
let workload_name = function
  | Interp | Compiled | Essent | Fpga -> "random"
  | Fuzz -> "fuzz"
  | Bmc -> "bmc"

type job = {
  index : int;  (** global position in the campaign's job list *)
  design : string;
  circuit : Sic_ir.Circuit.t;  (** instrumented, lowered, removal applied *)
  circuit_hash : string;
  backend : backend;
  seed : int;  (** derived deterministically from (master seed, index) *)
  budget : int;  (** cycles (sims/FPGA), execs (fuzz) or bound (BMC) *)
  wave : int;
  scan_width : int;  (** FPGA counter width *)
}

type job_result = { counts : Counts.t; sim_cycles : int; wall_us : float }

(** Execute one job in the current process. Pure function of the job
    (every source of randomness is seeded from [job.seed]). *)
let run_job (job : job) : job_result =
  let t0 = Unix.gettimeofday () in
  let finish ~sim_cycles counts =
    { counts; sim_cycles; wall_us = (Unix.gettimeofday () -. t0) *. 1e6 }
  in
  let rng = Rng.create job.seed in
  match job.backend with
  | Interp | Compiled | Essent ->
      let create =
        match job.backend with
        | Interp -> Interp.create
        | Essent -> Essent.create
        | _ -> fun c -> Compiled.create c
      in
      let b = create job.circuit in
      Backend.reset_sequence b;
      Backend.random_stimulus ~bits:(Rng.bits30 rng) ~cycles:job.budget b;
      finish ~sim_cycles:(b.Backend.cycles ()) (b.Backend.counts ())
  | Fpga ->
      let chained, chain = Sic_firesim.Scan_chain.insert ~width:job.scan_width job.circuit in
      let b = Compiled.create chained in
      let r = Sic_firesim.Driver.run_random ~bits:(Rng.bits30 rng) ~cycles:job.budget b chain in
      finish ~sim_cycles:(b.Backend.cycles ()) r.Sic_firesim.Driver.counts
  | Fuzz ->
      let h = Sic_fuzz.Fuzzer.make_harness job.circuit in
      let r =
        Sic_fuzz.Fuzzer.run ~seed:job.seed ~execs:job.budget ~seed_cycles:32 ~max_cycles:128 h
      in
      finish ~sim_cycles:r.Sic_fuzz.Fuzzer.final.Sic_fuzz.Fuzzer.execs
        r.Sic_fuzz.Fuzzer.final.Sic_fuzz.Fuzzer.cumulative
  | Bmc ->
      let report = Sic_formal.Bmc.check_covers ~bound:job.budget job.circuit in
      (* a reachable cover counts once (the witness trace reaches it); an
         unreachable-within-bound cover is reported at zero so the
         aggregate still knows the point exists *)
      let counts = Counts.create () in
      List.iter
        (fun (name, verdict) ->
          match verdict with
          | Sic_formal.Bmc.Reachable _ -> Counts.set counts name 1
          | Sic_formal.Bmc.Unreachable_within_bound -> Counts.set counts name 0)
        report.Sic_formal.Bmc.results;
      finish ~sim_cycles:job.budget counts

(* ------------------------------------------------------------------ *)
(* The worker pool                                                      *)
(* ------------------------------------------------------------------ *)

(* Worker -> parent payload: one JSON header line, then (on success) the
   counts map in its own interchange format. Reusing the two existing
   text formats means no new parser and human-debuggable pipes. *)

let encode_ok (r : job_result) : string =
  Json.to_string
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("sim_cycles", Json.Int r.sim_cycles);
         ("wall_us", Json.Float r.wall_us);
       ])
  ^ "\n" ^ Counts.to_string r.counts

let encode_failed (why : string) : string =
  Json.to_string (Json.Obj [ ("status", Json.String "failed"); ("error", Json.String why) ])
  ^ "\n"

let decode (payload : string) : (job_result, string) result =
  match String.index_opt payload '\n' with
  | None -> Error "truncated worker result"
  | Some i -> (
      let header = String.sub payload 0 i in
      let rest = String.sub payload (i + 1) (String.length payload - i - 1) in
      match Json.parse header with
      | exception Json.Parse_error m -> Error ("bad worker header: " ^ m)
      | h -> (
          match Json.string_member "status" h with
          | Some "ok" -> (
              match Counts.of_string rest with
              | counts ->
                  Ok
                    {
                      counts;
                      sim_cycles = Option.value ~default:0 (Json.int_member "sim_cycles" h);
                      wall_us = Option.value ~default:0. (Json.float_member "wall_us" h);
                    }
              | exception Counts.Bad_format m -> Error ("bad worker counts: " ^ m))
          | Some "failed" ->
              Error (Option.value ~default:"unknown" (Json.string_member "error" h))
          | Some s -> Error ("unknown worker status " ^ s)
          | None -> Error "worker header lacks a status"))

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(** What the forked child does. [crash] simulates a hard worker death
    (SIGKILL to itself) — the failure-isolation test hook. Exits via
    [Unix._exit] so the parent's buffered channels and [at_exit] hooks
    never run twice. *)
let child_main ~crash (job : job) (wfd : Unix.file_descr) : 'a =
  (* runtime prints from the simulated design belong to the job, not to
     the campaign's terminal *)
  Obs.sink := ignore;
  if crash then Unix.kill (Unix.getpid ()) Sys.sigkill;
  (try
     let payload = try encode_ok (run_job job) with e -> encode_failed (Printexc.to_string e) in
     write_all wfd payload
   with _ -> ());
  (try Unix.close wfd with _ -> ());
  Unix._exit 0

type worker = {
  pid : int;
  w_job : job;
  attempt : int;  (** 0-based *)
  rfd : Unix.file_descr;
  buf : Buffer.t;
  started : float;
  mutable timed_out : bool;
}

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let select_retry rfds timeout =
  match Unix.select rfds [] [] timeout with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

(** Run every job, at most [jobs] concurrently, each in its own forked
    worker. Per-job [timeout_s] and [retries] (extra attempts after a
    crash, a timeout or a job-level exception); a job that still fails is
    returned as [Error reason] — the campaign never dies with its
    workers. Results come back in input order regardless of completion
    order. [inject_crash] marks jobs whose workers kill themselves hard
    (testing). *)
let run_jobs ?(jobs = 1) ?timeout_s ?(retries = 1) ?(inject_crash = fun _ -> false)
    (work : job list) : (job * (job_result, string) result) list =
  let jobs = max 1 jobs in
  let results : (int, (job_result, string) result) Hashtbl.t = Hashtbl.create 64 in
  let pending = Queue.create () in
  List.iter (fun j -> Queue.add (j, 0) pending) work;
  let running : worker list ref = ref [] in
  let gauge_in_flight () =
    Obs.gauge "fleet.jobs_in_flight" (float_of_int (List.length !running))
  in
  let spawn (job, attempt) =
    (* decide crash injection in the parent: the hook may be stateful
       (e.g. "crash only on the first attempt"), and child-side mutations
       would be lost with the fork *)
    let crash = inject_crash job in
    let rfd, wfd = Unix.pipe () in
    (* the parent's pending buffered output must not be replayed by the
       child's libc on its own descriptors *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try Unix.close rfd with _ -> ());
        child_main ~crash job wfd
    | pid ->
        Unix.close wfd;
        running :=
          {
            pid;
            w_job = job;
            attempt;
            rfd;
            buf = Buffer.create 4096;
            started = Unix.gettimeofday ();
            timed_out = false;
          }
          :: !running;
        gauge_in_flight ()
  in
  let finish (w : worker) =
    (try Unix.close w.rfd with _ -> ());
    let _, wstatus = waitpid_retry w.pid in
    running := List.filter (fun x -> x.pid <> w.pid) !running;
    gauge_in_flight ();
    let outcome =
      if w.timed_out then
        Error
          (Printf.sprintf "timeout after %.1fs" (Option.value ~default:0. timeout_s))
      else
        (* OCaml signal numbers are negative internals; name the common ones *)
        let signal_name s =
          if s = Sys.sigkill then "SIGKILL"
          else if s = Sys.sigsegv then "SIGSEGV"
          else if s = Sys.sigterm then "SIGTERM"
          else if s = Sys.sigint then "SIGINT"
          else if s = Sys.sigabrt then "SIGABRT"
          else string_of_int s
        in
        match wstatus with
        | Unix.WEXITED 0 -> decode (Buffer.contents w.buf)
        | Unix.WEXITED n -> Error (Printf.sprintf "worker exited with status %d" n)
        | Unix.WSIGNALED s -> Error (Printf.sprintf "worker killed by signal %s" (signal_name s))
        | Unix.WSTOPPED s -> Error (Printf.sprintf "worker stopped by signal %s" (signal_name s))
    in
    match outcome with
    | Ok r -> Hashtbl.replace results w.w_job.index (Ok r)
    | Error why when w.attempt < retries ->
        Obs.instant "fleet.retry"
          ~args:
            [
              ("job", Obs.Int w.w_job.index);
              ("attempt", Obs.Int (w.attempt + 1));
              ("why", Obs.Str why);
            ];
        Queue.add (w.w_job, w.attempt + 1) pending
    | Error why ->
        Obs.count "fleet.failed_jobs";
        Hashtbl.replace results w.w_job.index (Error why)
  in
  let chunk = Bytes.create 65536 in
  while (not (Queue.is_empty pending)) || !running <> [] do
    while List.length !running < jobs && not (Queue.is_empty pending) do
      spawn (Queue.pop pending)
    done;
    let readable = select_retry (List.map (fun w -> w.rfd) !running) 0.05 in
    List.iter
      (fun fd ->
        match List.find_opt (fun w -> w.rfd = fd) !running with
        | None -> ()
        | Some w -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> finish w
            | n -> Buffer.add_subbytes w.buf chunk 0 n
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                finish w))
      readable;
    (match timeout_s with
    | None -> ()
    | Some limit ->
        let now = Unix.gettimeofday () in
        List.iter
          (fun w ->
            if (not w.timed_out) && now -. w.started > limit then begin
              w.timed_out <- true;
              try Unix.kill w.pid Sys.sigkill with _ -> ()
            end)
          !running)
  done;
  List.map
    (fun j ->
      match Hashtbl.find_opt results j.index with
      | Some r -> (j, r)
      | None -> (j, Error "job lost by the orchestrator"))
    work

(* ------------------------------------------------------------------ *)
(* Campaigns: waves of jobs over a database                             *)
(* ------------------------------------------------------------------ *)

type spec = {
  designs : (string * Sic_ir.Circuit.t) list;
      (** instrumented and lowered; the orchestrator only applies removal *)
  waves : backend list list;  (** one entry per wave, cheap to expensive *)
  seeds : int;  (** runs per (design, backend) within a wave *)
  cycles : int;  (** budget of the simulation and FPGA backends *)
  execs : int;  (** budget of the fuzzing backend *)
  bound : int;  (** budget of the BMC backend *)
  scan_width : int;
  master_seed : int;
  jobs : int;
  timeout_s : float option;
  retries : int;
  threshold : int;  (** §5.3 removal threshold applied between waves *)
}

let default_spec =
  {
    designs = [];
    waves = [ [ Compiled ] ];
    seeds = 1;
    cycles = 1000;
    execs = 300;
    bound = 10;
    scan_width = 16;
    master_seed = 0;
    jobs = 1;
    timeout_s = None;
    retries = 1;
    threshold = 1;
  }

type summary = {
  total_jobs : int;
  ok : int;
  failed : int;
  waves_run : int;
  removed_points : int;  (** cover points stripped by inter-wave removal *)
  points_total : int;
  points_covered : int;
}

let budget_of spec = function
  | Interp | Compiled | Essent | Fpga -> spec.cycles
  | Fuzz -> spec.execs
  | Bmc -> spec.bound

(** Run a whole campaign into [db]. Jobs are enumerated wave by wave,
    design-major then backend then seed index, so the job list — and with
    it every derived seed and the database contents — is independent of
    [-j]. [inject_crash] receives the global job index (testing hook). *)
let run_campaign ?(inject_crash = fun _ -> false) ~(db : Db.t) (spec : spec) : summary =
  let master = Rng.create spec.master_seed in
  let job_counter = ref 0 in
  let ok = ref 0 and failed = ref 0 and removed_total = ref 0 in
  let hash c = Digest.to_hex (Digest.string (Sic_ir.Printer.circuit_to_string c)) in
  List.iteri
    (fun wave_idx backends ->
      Obs.span "fleet.wave" ~args:[ ("wave", Obs.Int wave_idx) ] @@ fun () ->
      (* §5.3: strip points the database already covers before this wave *)
      let covered_so_far =
        if Db.runs db = [] then Counts.create () else Db.removal_counts db
      in
      let wave_designs =
        List.map
          (fun (name, circuit) ->
            let r = Removal.remove_covered ~threshold:spec.threshold covered_so_far circuit in
            removed_total := !removed_total + List.length r.Removal.removed;
            (name, r.Removal.circuit, hash r.Removal.circuit))
          spec.designs
      in
      let wave_jobs =
        List.concat_map
          (fun (design, circuit, circuit_hash) ->
            List.concat_map
              (fun backend ->
                List.init spec.seeds (fun _s ->
                    let index = !job_counter in
                    incr job_counter;
                    let seed =
                      Int64.to_int
                        (Int64.logand (Rng.next64 (Rng.split master index)) 0x3FFFFFFFL)
                    in
                    {
                      index;
                      design;
                      circuit;
                      circuit_hash;
                      backend;
                      seed;
                      budget = budget_of spec backend;
                      wave = wave_idx;
                      scan_width = spec.scan_width;
                    }))
              backends)
          wave_designs
      in
      let results =
        run_jobs ~jobs:spec.jobs ?timeout_s:spec.timeout_s ~retries:spec.retries
          ~inject_crash:(fun j -> inject_crash j.index)
          wave_jobs
      in
      (* wave barrier: commit in job order, so the manifest is as
         deterministic as the aggregate *)
      Obs.span "fleet.merge" ~args:[ ("wave", Obs.Int wave_idx) ] (fun () ->
          List.iter
            (fun (job, outcome) ->
              let outcome, wall_us =
                match outcome with
                | Ok (r : job_result) ->
                    incr ok;
                    (Ok r.counts, r.wall_us)
                | Error why ->
                    incr failed;
                    (Error why, 0.)
              in
              ignore
                (Db.add db ~design:job.design ~circuit_hash:job.circuit_hash
                   ~backend:(backend_name job.backend)
                   ~workload:(workload_name job.backend) ~seed:job.seed ~cycles:job.budget
                   ~wave:job.wave ~wall_us outcome))
            results);
      let agg = Db.aggregate db in
      Obs.gauge "fleet.points_remaining"
        (float_of_int (Counts.total_points agg - Counts.covered_points agg)))
    spec.waves;
  let agg = Db.aggregate db in
  {
    total_jobs = !job_counter;
    ok = !ok;
    failed = !failed;
    waves_run = List.length spec.waves;
    removed_points = !removed_total;
    points_total = Counts.total_points agg;
    points_covered = Counts.covered_points agg;
  }

let render_summary (s : summary) : string =
  Printf.sprintf
    "campaign: %d jobs in %d waves (%d ok, %d failed), %d points removed pre-instrumentation\n\
     coverage: %d/%d points (%.1f%%)\n"
    s.total_jobs s.waves_run s.ok s.failed s.removed_points s.points_covered s.points_total
    (if s.points_total = 0 then 100.
     else 100. *. float_of_int s.points_covered /. float_of_int s.points_total)
