(** Parallel multi-backend campaign orchestrator.

    Shards a deterministic job list (designs x backends x seeds, grouped
    into waves) across [-j N] forked worker processes, collects each
    worker's counts map over a pipe, and folds everything into a
    {!Sic_db.Db} coverage database. Failure-isolated: a crashed,
    timed-out or raising worker is retried and, if it keeps failing,
    recorded as a failed run — the campaign always completes. Between
    waves the §5.3 removal pass strips points the database already
    covers, so each successive (more expensive) wave instruments less.

    The database contents are byte-for-byte independent of [-j] {e and}
    of lane packing: run seeds derive from (master seed, global run
    index) via {!Sic_fuzz.Rng.split}, results are committed in (job,
    lane) order at each wave barrier, and the aggregate merge is
    commutative and associative. The [Lanes] backend packs up to 62 runs
    into one bit-parallel job ({!Sic_sim.Lanes}), multiplying [-j]
    process parallelism by per-process lane parallelism without moving a
    byte of the database. *)

module Counts = Sic_coverage.Counts

(** {1 Jobs} *)

type backend = Interp | Compiled | Essent | Fpga | Fuzz | Bmc | Bmc_witness | Lanes
(** [Fpga] is the modelled FireSim path: scan-chain insertion plus the
    host driver ({!Sic_firesim.Driver.run_random}); [Bmc] reports each
    targeted cover at 1 (reachable, witness found) or 0 (unreachable
    within the bound); [Bmc_witness] is the closure loop's job kind —
    like [Bmc] but each witness trace is replayed through the compiled
    backend in-worker to confirm it fires and harvest its full coverage,
    and the confirmed traces ship back in {!job_result.witnesses};
    [Lanes] is the bit-parallel engine ({!Sic_sim.Lanes}) advancing up
    to 62 independent stimulus seeds per tape pass — one job, one run
    record {e per lane}. *)

val backend_name : backend -> string
val backend_of_string : string -> backend option
val workload_name : backend -> string

type job = {
  index : int;  (** global position in the campaign's job list *)
  design : string;
  circuit : Sic_ir.Circuit.t;  (** instrumented, lowered, removal applied *)
  circuit_hash : string;
  backend : backend;
  seed : int;
  lane_seeds : int array;
      (** a [Lanes] job's additional packed runs (lanes 1..), each a full
          run with its own stimulus stream and database record; [[||]]
          for every other backend *)
  budget : int;  (** cycles (sims/FPGA), execs (fuzz) or bound (BMC) *)
  wave : int;
  scan_width : int;
  sample_every : int;
      (** coverage-timeline sampling period in budget units; 0 disables
          sampling entirely (no wrapper on the hot path) *)
  profile : bool;
      (** ship an engine hotspot profile with the result; honoured by the
          compiled-engine simulation backends ([Compiled], [Essent]) and
          ignored by the rest *)
  covers : string list;
      (** restrict the BMC backends to these cover points ([[]] = all);
          the closure loop dispatches one single-point job per uncovered
          point. Ignored elsewhere *)
  corpus : bytes list;
      (** extra initial fuzz seeds (e.g. witness-derived inputs); the
          forked worker inherits them with the job record, so nothing
          crosses the pipe. Ignored outside [Fuzz] *)
}

type job_result = {
  counts : Counts.t;  (** lane 0's counts; the whole result outside [Lanes] *)
  lane_extra : Counts.t list;
      (** per-lane counts beyond lane 0, in lane order — each
          {!Counts.equal} to what a solo run over the same seed reports;
          [[]] outside [Lanes] *)
  sim_cycles : int;  (** total simulated budget units: [budget x lanes] *)
  wall_us : float;
  timeline : Sic_coverage.Timeline.t option;
      (** the run's convergence curve, when [sample_every > 0] (BMC jobs
          never record one) *)
  prof : Sic_sim.Profile.design_profile option;
      (** counts-only engine profile, when [job.profile] asked for one —
          counts-only so the bytes merge deterministically across workers
          (sampled timings never would) *)
  witnesses : (string * Sic_sim.Replay.trace) list;
      (** a [Bmc_witness] job's replay-confirmed traces, one per reachable
          targeted cover; [[]] for every other backend *)
}

val run_job : ?progress:(cycles:int -> covered:int -> unit) -> job -> job_result
(** Execute one job in the current process; deterministic in [job.seed].
    [progress] fires at each [sample_every] boundary with cumulative work
    done and points covered — the heartbeat hook, free to be wall-clock
    throttled since it never influences the result. *)

(** {1 Worker protocol}

    Workers talk to the orchestrator over a pipe in protocol version 2:
    heartbeat lines while running, then one result header line that
    byte-length-frames the counts, timeline, telemetry and engine-profile
    sections following it (see DESIGN.md, "Worker protocol"). [decode]
    rejects payloads from a different protocol version; a missing
    [profile_bytes] field decodes as an empty section, so the profile
    extension needed no version bump — and neither did the lane
    extension: [lane_counts_bytes] (a JSON array of section lengths)
    frames one ordinary counts section per extra lane after the profile,
    and its absence decodes as a single-run job. Witness traces ride in
    the same way: [witness_bytes] frames one section per confirmed
    witness after the lane sections (a cover-name line, then the trace in
    the {!Sic_sim.Replay.to_string} text). *)

val proto_version : int
val encode_ok : job_result -> string
val encode_failed : string -> string

type decoded = {
  outcome : (job_result, string) result;
      (** the job's verdict: [Error] is a {e worker-reported} failure *)
  telemetry : string;
      (** {!Sic_obs.Obs.import_events} payload; [""] when telemetry off *)
}

val decode : string -> (decoded, string) result
(** Parse a worker payload starting at its result header ([Error] on
    malformed, truncated or wrong-protocol payloads). *)

(** {1 Job events} *)

(** What the orchestrator reports as a campaign unfolds — consumed by
    {!Progress} for [sic campaign --progress]. *)
type job_event =
  | Job_started of { job : job; attempt : int }
  | Job_heartbeat of { job : job; hb_cycles : int; hb_covered : int }
  | Job_retried of { job : job; attempt : int; why : string }
  | Job_finished of { job : job; result : (job_result, string) result }

val run_jobs :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?inject_crash:(job -> bool) ->
  ?on_event:(job_event -> unit) ->
  job list ->
  (job * (job_result, string) result) list
(** Fork up to [jobs] workers at a time; retry crashes/timeouts/raises up
    to [retries] extra attempts; never raises on worker death. Results
    are in input order. [inject_crash] makes matching jobs' workers
    SIGKILL themselves (the failure-isolation test hook); [on_event]
    observes the live schedule. *)

(** {1 Campaigns} *)

type spec = {
  designs : (string * Sic_ir.Circuit.t) list;
      (** instrumented and lowered; the orchestrator only applies removal *)
  waves : backend list list;  (** one entry per wave, cheap to expensive *)
  seeds : int;  (** runs per (design, backend) within a wave *)
  lanes : int;
      (** runs packed bit-parallel into each [Lanes] job, clamped to
          [1, 62]; pure scheduling — database bytes are identical at any
          value. Other backends ignore it *)
  cycles : int;
  execs : int;
  bound : int;
  scan_width : int;
  master_seed : int;
  jobs : int;
  timeout_s : float option;
  retries : int;
  threshold : int;  (** §5.3 removal threshold applied between waves *)
  timeline_every : int;
      (** convergence-timeline sampling period (budget units); 0 = off *)
  profile : bool;
      (** have compiled-engine workers ship per-instruction hit profiles;
          merged (deterministically, in job order per instrumented
          circuit) into {!summary.profile} *)
}

val default_spec : spec
(** One [Compiled] wave, 1 seed, 1000 cycles, [-j 1], threshold 1,
    timelines sampled every 100 budget units, profiling off. *)

val lanes_per_job : spec -> int
(** [spec.lanes] clamped to the engine's [1, 62] range. *)

val spec_total_jobs : spec -> int
(** How many jobs the spec will enumerate, before running any — a [Lanes]
    wave entry contributes ceil(seeds/lanes) jobs. *)

type summary = {
  total_jobs : int;
  ok : int;
  failed : int;
  waves_run : int;
  removed_points : int;
  points_total : int;
  points_covered : int;
  sim_cycles : int;
      (** total simulated budget units over successful jobs (a lane job
          counts [budget x lanes]) — the waves x jobs x lanes aggregate *)
  elapsed_s : float;  (** campaign wall time *)
  profile : Sic_sim.Profile.t;
      (** the campaign's merged engine profile ([[]] unless
          [spec.profile]); one section per distinct instrumented circuit,
          byte-for-byte independent of [-j] *)
}

(** {1 Live progress}

    A {!job_event} consumer rendering the single-line campaign status
    ([sic campaign --progress]): done/failed/running jobs, covered points
    (union-max estimate), throughput and ETA. *)
module Progress : sig
  type t

  val create : ?out:out_channel -> ?label:string -> total:int -> unit -> t
  (** [total] is the expected job count ({!spec_total_jobs}); output goes
      to [out] (default [stderr]) as a [\r]-refreshed line. [label]
      prefixes the line (default ["campaign"]); [total = 0] renders a
      plain done-count with no ETA — an open-ended stream. *)

  val on_event : t -> job_event -> unit

  val update :
    t ->
    done_:int ->
    failed:int ->
    running:int ->
    covered:int ->
    points:int ->
    units:int ->
    unit
  (** External-feed path ([sic watch]): replace the locally-accumulated
      counters with absolute values learned from a server and re-render.
      [running] shows as the running-worker count, [units] drives the
      throughput figure. *)

  val finish : t -> unit
  (** Force a final render and terminate the line. *)
end

val run_campaign :
  ?inject_crash:(int -> bool) ->
  ?on_event:(job_event -> unit) ->
  db:Sic_db.Db.t ->
  spec ->
  summary
(** Enumerate and run every wave into [db]. [inject_crash] receives the
    global job index; [on_event] feeds a progress display. Per-run
    timelines are persisted alongside the counts when
    [spec.timeline_every > 0]. *)

val render_summary : summary -> string
