(** Parallel multi-backend campaign orchestrator.

    Shards a deterministic job list (designs x backends x seeds, grouped
    into waves) across [-j N] forked worker processes, collects each
    worker's counts map over a pipe, and folds everything into a
    {!Sic_db.Db} coverage database. Failure-isolated: a crashed,
    timed-out or raising worker is retried and, if it keeps failing,
    recorded as a failed run — the campaign always completes. Between
    waves the §5.3 removal pass strips points the database already
    covers, so each successive (more expensive) wave instruments less.

    The database contents are byte-for-byte independent of [-j]: job
    seeds derive from (master seed, global job index) via
    {!Sic_fuzz.Rng.split}, results are committed in job order at each
    wave barrier, and the aggregate merge is commutative and
    associative. *)

module Counts = Sic_coverage.Counts

(** {1 Jobs} *)

type backend = Interp | Compiled | Essent | Fpga | Fuzz | Bmc
(** [Fpga] is the modelled FireSim path: scan-chain insertion plus the
    host driver ({!Sic_firesim.Driver.run_random}); [Bmc] reports each
    targeted cover at 1 (reachable, witness found) or 0 (unreachable
    within the bound). *)

val backend_name : backend -> string
val backend_of_string : string -> backend option
val workload_name : backend -> string

type job = {
  index : int;  (** global position in the campaign's job list *)
  design : string;
  circuit : Sic_ir.Circuit.t;  (** instrumented, lowered, removal applied *)
  circuit_hash : string;
  backend : backend;
  seed : int;
  budget : int;  (** cycles (sims/FPGA), execs (fuzz) or bound (BMC) *)
  wave : int;
  scan_width : int;
}

type job_result = { counts : Counts.t; sim_cycles : int; wall_us : float }

val run_job : job -> job_result
(** Execute one job in the current process; deterministic in [job.seed]. *)

val run_jobs :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?inject_crash:(job -> bool) ->
  job list ->
  (job * (job_result, string) result) list
(** Fork up to [jobs] workers at a time; retry crashes/timeouts/raises up
    to [retries] extra attempts; never raises on worker death. Results
    are in input order. [inject_crash] makes matching jobs' workers
    SIGKILL themselves (the failure-isolation test hook). *)

(** {1 Campaigns} *)

type spec = {
  designs : (string * Sic_ir.Circuit.t) list;
      (** instrumented and lowered; the orchestrator only applies removal *)
  waves : backend list list;  (** one entry per wave, cheap to expensive *)
  seeds : int;  (** runs per (design, backend) within a wave *)
  cycles : int;
  execs : int;
  bound : int;
  scan_width : int;
  master_seed : int;
  jobs : int;
  timeout_s : float option;
  retries : int;
  threshold : int;  (** §5.3 removal threshold applied between waves *)
}

val default_spec : spec
(** One [Compiled] wave, 1 seed, 1000 cycles, [-j 1], threshold 1. *)

type summary = {
  total_jobs : int;
  ok : int;
  failed : int;
  waves_run : int;
  removed_points : int;
  points_total : int;
  points_covered : int;
}

val run_campaign : ?inject_crash:(int -> bool) -> db:Sic_db.Db.t -> spec -> summary
(** Enumerate and run every wave into [db]. [inject_crash] receives the
    global job index. *)

val render_summary : summary -> string
