(** Tseitin encoding of word-level operations into CNF.

    A {!bits} value is an array of SAT literals, LSB first. The word-level
    operators mirror {!Sic_ir.Eval} exactly (same width rules, same
    signedness handling); the test suite checks the two against each other
    on random expressions and inputs. *)

module Bv = Sic_bv.Bv

exception Unsupported of string
(** An operation the encoding does not support (e.g. very wide
    multiplication); {!Sic_formal.Bmc} reports it per cover point. *)

type ctx = { solver : Sat.t; tt : int }
(** An encoding context: the solver plus a literal constrained true
    (concrete because {!Unroll}/{!Bmc} reach into [solver] directly). *)

type bits = int array
(** A word as SAT literals, LSB first. *)

val create : Sat.t -> ctx

(** {1 Literal-level primitives} *)

val tt : ctx -> int
(** The always-true literal. *)

val ff : ctx -> int
(** The always-false literal. *)

val fresh : ctx -> int
val clause : ctx -> int list -> unit
val and2 : ctx -> int -> int -> int
val or2 : ctx -> int -> int -> int
val xor2 : ctx -> int -> int -> int

val ite : ctx -> int -> int -> int -> int
(** [ite ctx s a b] is [s ? a : b]. *)

val and_list : ctx -> int list -> int
val or_list : ctx -> int list -> int
val eq2 : ctx -> int -> int -> int

(** {1 Words} *)

val const_bits : ctx -> Bv.t -> bits
val fresh_bits : ctx -> int -> bits
val zero_bits : ctx -> int -> bits

val extend : ctx -> Sic_ir.Ty.t -> bits -> int -> bits
(** Zero- or sign-extend (per the type) to the given width. *)

val mux_bits : ctx -> int -> bits -> bits -> bits
val eq_bits : ctx -> bits -> bits -> int
val adder : ctx -> ?carry_in:int -> bits -> bits -> int -> bits
val negate : ctx -> bits -> int -> bits

val lt_u : ctx -> bits -> bits -> int
(** Unsigned [a < b]. *)

val lt_s : ctx -> bits -> bits -> int
(** Signed [a < b]; operands must arrive sign-extended to equal widths. *)

val shift_const : bits -> int -> int -> fill:int -> bits
(** [shift_const a n w ~fill] left-shifts by [n] at width [w], shifting
    in the [fill] literal. *)

val mul : ctx -> bits -> bits -> int -> bits
(** Shift-and-add multiplier. Raises {!Unsupported} beyond 256 bits. *)

(** {1 Word-level operator dispatch (mirrors {!Sic_ir.Eval})} *)

val unop : ctx -> Sic_ir.Expr.unop -> ta:Sic_ir.Ty.t -> bits -> bits
val binop : ctx -> Sic_ir.Expr.binop -> ta:Sic_ir.Ty.t -> tb:Sic_ir.Ty.t -> bits -> bits -> bits
val intop : ctx -> Sic_ir.Expr.intop -> int -> ta:Sic_ir.Ty.t -> bits -> bits
val bits_op : bits -> hi:int -> lo:int -> bits

val model_value : ctx -> bits -> Bv.t
(** Read a word back from a satisfying assignment as a bitvector. *)
