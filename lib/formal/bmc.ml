(** Bounded model checking for cover-trace generation — the SymbiYosys
    analogue (§3.4, §5.5).

    Given an instrumented circuit, [check_covers] searches, per cover
    point, for an input sequence (within the bound) that makes the cover
    predicate true; or reports that none exists within the bound. The
    paper uses exactly this to (a) generate inputs maximizing any
    automated coverage metric and (b) find dead cover points — e.g. the
    unreachable write path of riscv-mini's read-only instruction cache,
    and over-approximated FSM transitions. *)

open Sic_ir
module Bv = Sic_bv.Bv
module Obs = Sic_obs.Obs

type verdict =
  | Reachable of Sic_sim.Replay.trace  (** witness trace, replayable on any backend *)
  | Unreachable_within_bound

type report = {
  bound : int;
  results : (string * verdict) list;
  solver_stats : string;
}

let trace_of_model (u : Unroll.t) ~(upto : int) : Sic_sim.Replay.trace =
  let input_names =
    "reset"
    :: (List.map fst u.Unroll.input_bits
       |> List.filter (fun n -> n <> "reset" && n <> "clock")
       |> List.sort String.compare)
  in
  let frames =
    Array.init upto (fun t ->
        Array.of_list
          (List.map
             (fun n -> Gate.model_value u.Unroll.ctx (List.assoc n u.Unroll.input_bits).(t))
             input_names))
  in
  { Sic_sim.Replay.input_names; frames }

(** Check reachability of each cover statement within [bound] cycles.
    [covers] restricts the search to a subset of cover names (default:
    all). *)
let check_covers ?(bound = 40) ?covers ?(reset_cycles = 1) (circuit : Circuit.t) : report =
  let u =
    Obs.span "bmc.unroll"
      ~args:[ ("depth", Obs.Int bound) ]
      (fun () -> Unroll.unroll ~reset_cycles circuit ~bound)
  in
  let selected =
    match covers with
    | None -> List.map fst u.Unroll.cover_lits
    | Some names -> names
  in
  let results =
    List.map
      (fun name ->
        match List.assoc_opt name u.Unroll.cover_lits with
        | None -> (name, Unreachable_within_bound)
        | Some lits ->
            (* one activation literal per cover: g -> OR of per-cycle preds *)
            let g = Gate.fresh u.Unroll.ctx in
            Gate.clause u.Unroll.ctx (-g :: Array.to_list lits);
            let span = Obs.span_open () in
            let verdict =
              match Sat.solve ~assumptions:[ g ] u.Unroll.ctx.Gate.solver with
              | Sat.Sat ->
                  (* find the earliest satisfied cycle to truncate the trace *)
                  let upto = ref bound in
                  Array.iteri
                    (fun t l ->
                      if !upto = bound then begin
                        let v = Sat.value u.Unroll.ctx.Gate.solver (abs l) in
                        let v = if l > 0 then v else not v in
                        if v then upto := t + 1
                      end)
                    lits;
                  Reachable (trace_of_model u ~upto:!upto)
              | Sat.Unsat -> Unreachable_within_bound
            in
            Obs.span_close span ~name:"bmc.solve"
              [
                ("cover", Obs.Str name);
                ("depth", Obs.Int bound);
                ( "result",
                  Obs.Str
                    (match verdict with
                    | Reachable _ -> "sat"
                    | Unreachable_within_bound -> "unsat") );
              ];
            (name, verdict))
      selected
  in
  { bound; results; solver_stats = Sat.stats u.Unroll.ctx.Gate.solver }

let unreachable (r : report) =
  List.filter_map
    (fun (n, v) ->
      match v with Unreachable_within_bound -> Some n | Reachable _ -> None)
    r.results

let reachable (r : report) =
  List.filter_map
    (fun (n, v) -> match v with Reachable t -> Some (n, t) | Unreachable_within_bound -> None)
    r.results

(** {1 k-induction}

    BMC only ever says "unreachable {i within the bound}". Temporal
    induction strengthens that to "unreachable, period": if (base case)
    the predicate cannot fire within [k] cycles of the initial state, and
    (inductive step) no [k+1]-cycle path from an {i arbitrary} state with
    the predicate false for its first [k] cycles can make it fire on the
    last, then no reachable state ever fires it. A natural extension the
    paper leaves to the formal tool; here it is built on the same
    unrolling. *)

type induction_verdict =
  | Dead_forever  (** proved unreachable at every cycle *)
  | Cex_within_bound of Sic_sim.Replay.trace  (** base case fails: reachable *)
  | Unknown  (** induction failed at this depth; try a larger [k] *)

let prove_unreachable ?(k = 4) ?covers ?(reset_cycles = 1) (circuit : Circuit.t) :
    (string * induction_verdict) list =
  (* base case: plain BMC from the power-on state *)
  let base = check_covers ~bound:(k + 1) ?covers ~reset_cycles circuit in
  (* inductive step: arbitrary start state, reset held low throughout *)
  let ind = Unroll.unroll ~reset_cycles:0 ~free_init:true circuit ~bound:(k + 1) in
  List.map
    (fun (name, verdict) ->
      match verdict with
      | Reachable trace -> (name, Cex_within_bound trace)
      | Unreachable_within_bound -> (
          match List.assoc_opt name ind.Unroll.cover_lits with
          | None -> (name, Unknown)
          | Some lits ->
              (* assume !pred for cycles 0..k-1, check pred at cycle k *)
              let assumptions =
                lits.(k) :: List.init k (fun t -> -lits.(t))
              in
              (match
                 Obs.span "bmc.induction_solve"
                   ~args:[ ("cover", Obs.Str name); ("depth", Obs.Int k) ]
                   (fun () -> Sat.solve ~assumptions ind.Unroll.ctx.Gate.solver)
               with
              | Sat.Unsat -> (name, Dead_forever)
              | Sat.Sat -> (name, Unknown))))
    base.results

let render_induction (results : (string * induction_verdict) list) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "=== k-induction on cover points ===\n";
  List.iter
    (fun (n, v) ->
      match v with
      | Dead_forever -> Buffer.add_string buf (Printf.sprintf "  %-48s DEAD (proved by induction)\n" n)
      | Cex_within_bound t ->
          Buffer.add_string buf
            (Printf.sprintf "  %-48s reachable in %d cycles\n" n (Sic_sim.Replay.cycles t))
      | Unknown -> Buffer.add_string buf (Printf.sprintf "  %-48s unknown at this depth\n" n))
    results;
  Buffer.contents buf

let render (r : report) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "=== formal cover trace generation (bound %d) ===\n" r.bound);
  List.iter
    (fun (n, v) ->
      match v with
      | Reachable t ->
          Buffer.add_string buf
            (Printf.sprintf "  %-48s reachable in %d cycles\n" n
               (Sic_sim.Replay.cycles t))
      | Unreachable_within_bound ->
          Buffer.add_string buf (Printf.sprintf "  %-48s UNREACHABLE within bound\n" n))
    r.results;
  Buffer.add_string buf (Printf.sprintf "solver: %s\n" r.solver_stats);
  Buffer.contents buf
