(** Tseitin encoding of word-level operations into CNF.

    A [bits] value is an array of SAT literals, LSB first. The word-level
    operators mirror {!Sic_ir.Eval} exactly (same width rules, same
    signedness handling); the test suite checks the two against each other
    on random expressions and inputs. *)

module Bv = Sic_bv.Bv
open Sic_ir

exception Unsupported of string

type ctx = { solver : Sat.t; tt : int (* literal that is constant true *) }

type bits = int array

let create solver =
  let v = Sat.new_var solver in
  Sat.add_clause solver [ v ];
  { solver; tt = v }

let tt ctx = ctx.tt
let ff ctx = -ctx.tt

let fresh ctx = Sat.new_var ctx.solver

let clause ctx lits = Sat.add_clause ctx.solver lits

(* --- single-bit gates ---------------------------------------------- *)

let and2 ctx a b =
  if a = ff ctx || b = ff ctx then ff ctx
  else if a = tt ctx then b
  else if b = tt ctx then a
  else if a = b then a
  else if a = -b then ff ctx
  else begin
    let g = fresh ctx in
    clause ctx [ -g; a ];
    clause ctx [ -g; b ];
    clause ctx [ g; -a; -b ];
    g
  end

let or2 ctx a b = -and2 ctx (-a) (-b)

let xor2 ctx a b =
  if a = ff ctx then b
  else if b = ff ctx then a
  else if a = tt ctx then -b
  else if b = tt ctx then -a
  else if a = b then ff ctx
  else if a = -b then tt ctx
  else begin
    let g = fresh ctx in
    clause ctx [ -g; a; b ];
    clause ctx [ -g; -a; -b ];
    clause ctx [ g; -a; b ];
    clause ctx [ g; a; -b ];
    g
  end

let ite ctx s a b =
  if s = tt ctx then a
  else if s = ff ctx then b
  else if a = b then a
  else begin
    let g = fresh ctx in
    clause ctx [ -g; -s; a ];
    clause ctx [ -g; s; b ];
    clause ctx [ g; -s; -a ];
    clause ctx [ g; s; -b ];
    g
  end

let and_list ctx = List.fold_left (and2 ctx) (tt ctx)
let or_list ctx = List.fold_left (or2 ctx) (ff ctx)

let eq2 ctx a b = -xor2 ctx a b

(* --- vectors ------------------------------------------------------- *)

let const_bits ctx (v : Bv.t) : bits =
  Array.init (Bv.width v) (fun i -> if Bv.bit v i then tt ctx else ff ctx)

let fresh_bits ctx w : bits = Array.init w (fun _ -> fresh ctx)

let zero_bits ctx w : bits = Array.make w (ff ctx)

(* extend a vector to width [w] per the signedness of [ty] *)
let extend ctx (ty : Ty.t) (a : bits) (w : int) : bits =
  let n = Array.length a in
  if w <= n then Array.sub a 0 w
  else
    let fill = if Ty.is_signed ty && n > 0 then a.(n - 1) else ff ctx in
    Array.init w (fun i -> if i < n then a.(i) else fill)

let mux_bits ctx s (a : bits) (b : bits) : bits =
  Array.init (Array.length a) (fun i -> ite ctx s a.(i) b.(i))

let eq_bits ctx (a : bits) (b : bits) =
  let w = max (Array.length a) (Array.length b) in
  let get x i = if i < Array.length x then x.(i) else ff ctx in
  and_list ctx (List.init w (fun i -> eq2 ctx (get a i) (get b i)))

(* ripple-carry adder; returns [w] sum bits (carry-out discarded) *)
let adder ctx ?(carry_in : int option) (a : bits) (b : bits) w : bits =
  let cin = Option.value ~default:(ff ctx) carry_in in
  let sum = Array.make w (ff ctx) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let ai = if i < Array.length a then a.(i) else ff ctx in
    let bi = if i < Array.length b then b.(i) else ff ctx in
    let axb = xor2 ctx ai bi in
    sum.(i) <- xor2 ctx axb !carry;
    carry := or2 ctx (and2 ctx ai bi) (and2 ctx axb !carry)
  done;
  sum

let negate ctx (a : bits) w : bits =
  let inverted = Array.init w (fun i -> if i < Array.length a then -a.(i) else tt ctx) in
  adder ctx ~carry_in:(tt ctx) inverted (zero_bits ctx w) w

(* unsigned a < b *)
let lt_u ctx (a : bits) (b : bits) =
  let w = max (Array.length a) (Array.length b) in
  let get x i = if i < Array.length x then x.(i) else ff ctx in
  let rec go i acc =
    if i >= w then acc
    else
      let ai = get a i and bi = get b i in
      let here = and2 ctx (-ai) bi in
      let same = eq2 ctx ai bi in
      go (i + 1) (or2 ctx here (and2 ctx same acc))
  in
  go 0 (ff ctx)

(* signed compare: flip the sign bits (both at their own widths after a
   common sign extension) and compare unsigned *)
let lt_s ctx (a : bits) (b : bits) =
  let w = max (Array.length a) (Array.length b) in
  if w = 0 then ff ctx
  else begin
    let ext x =
      (* operands arrive already sign-extended to equal widths by callers *)
      let v = Array.copy (extend ctx (Ty.SInt (Array.length x)) x w) in
      v.(w - 1) <- -v.(w - 1);
      v
    in
    lt_u ctx (ext a) (ext b)
  end

let shift_const (a : bits) n w ~fill : bits =
  (* left shift by n at width w *)
  Array.init w (fun i -> if i - n >= 0 && i - n < Array.length a then a.(i - n) else fill)

let mul ctx (a : bits) (b : bits) w : bits =
  if w > 256 then raise (Unsupported "multiplication wider than 256 bits in formal backend");
  let acc = ref (zero_bits ctx w) in
  for i = 0 to min (Array.length b - 1) (w - 1) do
    let partial = shift_const a i w ~fill:(ff ctx) in
    let gated = Array.map (fun l -> and2 ctx l b.(i)) partial in
    acc := adder ctx !acc gated w
  done;
  !acc

(* --- word-level operator dispatch, mirroring Eval ------------------- *)

let unop ctx (op : Expr.unop) ~(ta : Ty.t) (a : bits) : bits =
  let w = Ty.width ta in
  match op with
  | Expr.Not -> Array.map (fun l -> -l) a
  | Expr.Andr -> [| and_list ctx (Array.to_list a) |]
  | Expr.Orr -> [| or_list ctx (Array.to_list a) |]
  | Expr.Xorr -> [| Array.fold_left (xor2 ctx) (ff ctx) a |]
  | Expr.Neg -> negate ctx (extend ctx ta a (w + 1)) (w + 1)
  | Expr.Cvt -> (
      match ta with
      | Ty.UInt _ -> extend ctx (Ty.UInt w) a (w + 1)
      | Ty.SInt _ | Ty.Clock -> a)
  | Expr.AsUInt | Expr.AsSInt -> a

let binop ctx (op : Expr.binop) ~(ta : Ty.t) ~(tb : Ty.t) (a : bits) (b : bits) : bits =
  let wr = Ty.width (Expr.binop_ty op ta tb) in
  let ea = extend ctx ta a and eb = extend ctx tb b in
  match op with
  | Expr.Add -> adder ctx (ea wr) (eb wr) wr
  | Expr.Sub ->
      let nb = Array.map (fun l -> -l) (eb wr) in
      adder ctx ~carry_in:(tt ctx) (ea wr) nb wr
  | Expr.Mul -> mul ctx (ea wr) (eb wr) wr
  | Expr.Div | Expr.Rem -> raise (Unsupported "div/rem in formal backend")
  | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq ->
      let w = max (Array.length a) (Array.length b) + 1 in
      let xa = ea w and xb = eb w in
      let lt = if Ty.is_signed ta then lt_s ctx xa xb else lt_u ctx xa xb in
      let gt = if Ty.is_signed ta then lt_s ctx xb xa else lt_u ctx xb xa in
      [|
        (match op with
        | Expr.Lt -> lt
        | Expr.Gt -> gt
        | Expr.Leq -> -gt
        | Expr.Geq -> -lt
        | _ -> assert false);
      |]
  | Expr.Eq ->
      let w = max (Array.length a) (Array.length b) + 1 in
      [| eq_bits ctx (ea w) (eb w) |]
  | Expr.Neq ->
      let w = max (Array.length a) (Array.length b) + 1 in
      [| -eq_bits ctx (ea w) (eb w) |]
  | Expr.And ->
      let xa = ea wr and xb = eb wr in
      Array.init wr (fun i -> and2 ctx xa.(i) xb.(i))
  | Expr.Or ->
      let xa = ea wr and xb = eb wr in
      Array.init wr (fun i -> or2 ctx xa.(i) xb.(i))
  | Expr.Xor ->
      let xa = ea wr and xb = eb wr in
      Array.init wr (fun i -> xor2 ctx xa.(i) xb.(i))
  | Expr.Cat -> Array.append b a
  | Expr.Dshl ->
      let base = ea wr in
      let result = ref base in
      Array.iteri
        (fun i bi ->
          let shifted = shift_const !result (1 lsl i) wr ~fill:(ff ctx) in
          result := mux_bits ctx bi shifted !result)
        b;
      !result
  | Expr.Dshr ->
      let w = Array.length a in
      let fill = if Ty.is_signed ta && w > 0 then a.(w - 1) else ff ctx in
      let result = ref a in
      Array.iteri
        (fun i bi ->
          let n = 1 lsl i in
          let shifted =
            Array.init w (fun j -> if j + n < w then !result.(j + n) else fill)
          in
          result := mux_bits ctx bi shifted !result)
        b;
      !result

let intop ctx (op : Expr.intop) (n : int) ~(ta : Ty.t) (a : bits) : bits =
  let w = Ty.width ta in
  match op with
  | Expr.Pad -> extend ctx ta a (max w n)
  | Expr.Shl -> shift_const a n (w + n) ~fill:(ff ctx)
  | Expr.Shr ->
      let n = if Ty.is_signed ta then min n (w - 1) else n in
      let wr = max 1 (w - n) in
      Array.init wr (fun i -> if i + n < Array.length a then a.(i + n) else ff ctx)
  | Expr.Head -> Array.sub a (w - n) n
  | Expr.Tail -> Array.sub a 0 (w - n)

let bits_op (a : bits) ~hi ~lo : bits = Array.sub a lo (hi - lo + 1)

(** Read a model value back as a bitvector. *)
let model_value (ctx : ctx) (a : bits) : Bv.t =
  let s = Bv.zero (Array.length a) in
  Array.to_list a
  |> List.mapi (fun i l ->
         let v = Sat.value ctx.solver (abs l) in
         let v = if l > 0 then v else not v in
         (i, v))
  |> List.fold_left
       (fun acc (i, v) ->
         if v then Bv.logor ~width:(Bv.width s) acc (Bv.shift_left ~width:(Bv.width s) (Bv.one (Bv.width s)) i)
         else acc)
       s
