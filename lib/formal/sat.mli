(** A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
    learning, VSIDS-style branching with phase saving, and Luby restarts.
    Built from scratch as the engine under the SymbiYosys-analogue BMC
    backend. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; variables are positive integers. *)

val nb_vars : t -> int

(** A literal is [+v] (variable true) or [-v] (variable false). *)

val add_clause : t -> int list -> unit
(** Add a clause. Adding the empty clause makes the instance trivially
    unsatisfiable. Clauses may be added between [solve] calls. *)

type result = Sat | Unsat

val solve : ?assumptions:int list -> t -> result
(** Solve under optional assumption literals (assumed at decision level
    for this call only). *)

val value : t -> int -> bool
(** Model value of a variable after [Sat]. Unconstrained variables report
    their saved phase. *)

val stats : t -> string
(** One-line human-readable statistics (conflicts, decisions,
    propagations). *)

(** {1 DIMACS interchange} *)

exception Dimacs_error of string

val to_dimacs : t -> string
(** Export the user clauses in DIMACS CNF, for external solvers. *)

val of_dimacs : string -> t
(** Parse a DIMACS instance into a fresh solver. *)
