(** Bounded model checking for cover-trace generation — the SymbiYosys
    analogue (§3.4, §5.5): per cover point, find an input sequence that
    reaches it within the bound, or prove none exists. Witness traces
    replay cycle-exactly on the software backends. *)

type verdict =
  | Reachable of Sic_sim.Replay.trace
  | Unreachable_within_bound

type report = {
  bound : int;
  results : (string * verdict) list;
  solver_stats : string;
}

val check_covers :
  ?bound:int -> ?covers:string list -> ?reset_cycles:int -> Sic_ir.Circuit.t -> report
(** Default bound 40 (the paper's riscv-mini experiment); [covers]
    restricts the targets; reset is constrained high for the first
    [reset_cycles] (default 1) and low after, matching the test-bench
    convention. *)

val unreachable : report -> string list
val reachable : report -> (string * Sic_sim.Replay.trace) list
val render : report -> string

(** {1 k-induction}

    Strengthens "unreachable within the bound" to "unreachable, period":
    base case (BMC from the initial state) plus an inductive step from an
    arbitrary state. *)

type induction_verdict =
  | Dead_forever  (** proved unreachable at every cycle *)
  | Cex_within_bound of Sic_sim.Replay.trace
  | Unknown  (** try a larger [k] *)

val prove_unreachable :
  ?k:int -> ?covers:string list -> ?reset_cycles:int -> Sic_ir.Circuit.t ->
  (string * induction_verdict) list

val render_induction : (string * induction_verdict) list -> string
