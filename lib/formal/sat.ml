(* A compact CDCL solver in the Minisat lineage. Literals are nonzero ints
   (+v / -v); internally a literal [l] is indexed as [2v] (positive) or
   [2v+1] (negative) for the watch lists. *)

type clause = { lits : int array; mutable lbd : int }

type t = {
  mutable nvars : int;
  mutable assign : int array;  (* var -> 0 unassigned / +1 true / -1 false *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable phase : bool array;
  mutable heap : int array;  (* binary max-heap of vars by activity *)
  mutable heap_pos : int array;  (* var -> index in heap, -1 if absent *)
  mutable heap_size : int;
  mutable watches : clause list array;  (* lit index -> watching clauses *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int list;  (* decision-level boundaries, most recent first *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;  (* false once the empty clause was derived *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable root_units : int list;  (* unit clauses to (re)apply at level 0 *)
  mutable original : int list list;  (* user clauses as added, for export *)
}

let create () =
  {
    nvars = 0;
    assign = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 None;
    activity = Array.make 16 0.0;
    phase = Array.make 16 false;
    heap = Array.make 16 0;
    heap_pos = Array.make 16 (-1);
    heap_size = 0;
    watches = Array.make 32 [];
    trail = Array.make 16 0;
    trail_size = 0;
    trail_lim = [];
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    root_units = [];
    original = [];
  }

let nb_vars s = s.nvars

let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1

let grow_array a n default =
  let len = Array.length a in
  if n <= len then a
  else begin
    let a' = Array.make (max n (2 * len)) default in
    Array.blit a 0 a' 0 len;
    a'
  end

(* --- activity heap ------------------------------------------------- *)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vj) <- i;
  s.heap_pos.(vi) <- j

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(parent)) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best)) then best := l;
  if r < s.heap_size && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best)) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) = -1 then begin
    s.heap <- grow_array s.heap (s.heap_size + 1) 0;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  s.heap_pos.(v) <- -1;
  v

(* --- variables ----------------------------------------------------- *)

let new_var s =
  s.nvars <- s.nvars + 1;
  let v = s.nvars in
  s.assign <- grow_array s.assign (v + 1) 0;
  s.level <- grow_array s.level (v + 1) 0;
  s.reason <- grow_array s.reason (v + 1) None;
  s.activity <- grow_array s.activity (v + 1) 0.0;
  s.phase <- grow_array s.phase (v + 1) false;
  s.heap_pos <- grow_array s.heap_pos (v + 1) (-1);
  s.watches <- grow_array s.watches ((2 * v) + 2) [];
  s.trail <- grow_array s.trail (v + 1) 0;
  heap_insert s v;
  v

let lit_value s l =
  let a = s.assign.(abs l) in
  if a = 0 then 0 else if (l > 0) = (a > 0) then 1 else -1

let decision_level s = List.length s.trail_lim

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* --- assignment ---------------------------------------------------- *)

let enqueue s l reason =
  let v = abs l in
  s.assign.(v) <- (if l > 0 then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.phase.(v) <- l > 0;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let backtrack s lvl =
  let bound =
    let rec nth lim n = match (lim, n) with
      | l :: _, 0 -> l
      | _ :: rest, n -> nth rest (n - 1)
      | [], _ -> 0
    in
    if lvl >= decision_level s then s.trail_size
    else nth s.trail_lim (decision_level s - lvl - 1)
  in
  for i = bound to s.trail_size - 1 do
    let v = abs s.trail.(i) in
    s.assign.(v) <- 0;
    s.reason.(v) <- None;
    heap_insert s v
  done;
  s.trail_size <- bound;
  s.qhead <- min s.qhead bound;
  let rec drop lim n = if n = 0 then lim else match lim with [] -> [] | _ :: r -> drop r (n - 1) in
  s.trail_lim <- drop s.trail_lim (decision_level s - lvl)

(* --- propagation --------------------------------------------------- *)

exception Conflict of clause

let propagate s : clause option =
  try
    while s.qhead < s.trail_size do
      let l = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      let falsified = -l in
      let idx = lit_index falsified in
      let watching = s.watches.(idx) in
      s.watches.(idx) <- [];
      let rekeep = ref [] in
      let rec process = function
        | [] -> ()
        | c :: rest -> (
            (* ensure falsified literal is at position 1 *)
            if c.lits.(0) = falsified then begin
              c.lits.(0) <- c.lits.(1);
              c.lits.(1) <- falsified
            end;
            if lit_value s c.lits.(0) = 1 then begin
              (* already satisfied: keep watching *)
              rekeep := c :: !rekeep;
              process rest
            end
            else
              (* find a new literal to watch *)
              let n = Array.length c.lits in
              let rec find i =
                if i >= n then None
                else if lit_value s c.lits.(i) <> -1 then Some i
                else find (i + 1)
              in
              match find 2 with
              | Some i ->
                  let w = c.lits.(i) in
                  c.lits.(i) <- falsified;
                  c.lits.(1) <- w;
                  s.watches.(lit_index w) <- c :: s.watches.(lit_index w);
                  process rest
              | None ->
                  rekeep := c :: !rekeep;
                  if lit_value s c.lits.(0) = -1 then begin
                    (* conflict: restore remaining watchers *)
                    List.iter (fun c' -> rekeep := c' :: !rekeep) rest;
                    s.watches.(idx) <- !rekeep @ s.watches.(idx);
                    s.qhead <- s.trail_size;
                    raise (Conflict c)
                  end
                  else begin
                    enqueue s c.lits.(0) (Some c);
                    process rest
                  end)
      in
      process watching;
      s.watches.(idx) <- !rekeep @ s.watches.(idx)
    done;
    None
  with Conflict c -> Some c

(* --- clauses ------------------------------------------------------- *)

let attach s c =
  s.watches.(lit_index c.lits.(0)) <- c :: s.watches.(lit_index c.lits.(0));
  s.watches.(lit_index c.lits.(1)) <- c :: s.watches.(lit_index c.lits.(1))

let add_clause s lits =
  if s.ok then begin
    s.original <- lits :: s.original;
    (* simplify: drop duplicates and false-at-root literals, detect taut *)
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.mem (-l) lits) lits in
    if not taut then begin
      let lits =
        List.filter
          (fun l -> not (lit_value s l = -1 && s.level.(abs l) = 0))
          lits
      in
      let sat_at_root =
        List.exists (fun l -> lit_value s l = 1 && s.level.(abs l) = 0) lits
      in
      if not sat_at_root then
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
            s.root_units <- l :: s.root_units;
            if decision_level s = 0 then begin
              match lit_value s l with
              | 0 ->
                  enqueue s l None;
                  if propagate s <> None then s.ok <- false
              | -1 -> s.ok <- false
              | _ -> ()
            end
        | l0 :: l1 :: _ ->
            ignore l0;
            ignore l1;
            let c = { lits = Array.of_list lits; lbd = 0 } in
            attach s c
    end
  end

(* --- conflict analysis (first UIP) --------------------------------- *)

let analyze s (confl : clause) : int list * int =
  let seen = Hashtbl.create 64 in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  (* 0 = "take all of confl" *)
  let confl = ref (Some confl) in
  let trail_i = ref (s.trail_size - 1) in
  let dl = decision_level s in
  let continue_ = ref true in
  while !continue_ do
    (match !confl with
    | Some c ->
        Array.iter
          (fun q ->
            let v = abs q in
            if q <> !p && not (Hashtbl.mem seen v) && s.level.(v) > 0 then begin
              Hashtbl.replace seen v ();
              bump s v;
              if s.level.(v) >= dl then incr counter
              else learnt := q :: !learnt
            end)
          c.lits
    | None -> ());
    (* pick next literal from the trail *)
    while not (Hashtbl.mem seen (abs s.trail.(!trail_i))) do
      decr trail_i
    done;
    let q = s.trail.(!trail_i) in
    let v = abs q in
    Hashtbl.remove seen v;
    decr trail_i;
    decr counter;
    p := q;
    confl := s.reason.(v);
    if !counter <= 0 then continue_ := false
  done;
  let learnt = -(!p) :: !learnt in
  (* backjump level = second-highest level in learnt clause *)
  let blevel =
    List.fold_left
      (fun acc l ->
        let v = abs l in
        if l <> List.hd learnt && s.level.(v) > acc then s.level.(v) else acc)
      0 (List.tl learnt)
  in
  (learnt, blevel)

(* --- search -------------------------------------------------------- *)

type result = Sat | Unsat

(* The Luby restart sequence (Minisat's computation, base 2). *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  float_of_int (1 lsl !seq)

let pick_branch s =
  let rec go () =
    if s.heap_size = 0 then None
    else
      let v = heap_pop s in
      if s.assign.(v) = 0 then Some v else go ()
  in
  go ()

let solve ?(assumptions = []) s =
  if not s.ok then Unsat
  else begin
    backtrack s 0;
    (* re-propagate root units (e.g. added while not at level 0) *)
    let ok =
      List.for_all
        (fun l ->
          match lit_value s l with
          | 1 -> true
          | -1 -> false
          | _ ->
              enqueue s l None;
              true)
        s.root_units
    in
    if (not ok) || propagate s <> None then begin
      s.ok <- false;
      Unsat
    end
    else begin
      let restart_ceiling = ref (32.0 *. luby 0) in
      let restart_count = ref 0 in
      let conflicts_since_restart = ref 0 in
      let result = ref None in
      (* place assumptions, each at its own decision level *)
      let rec place = function
        | [] -> true
        | a :: rest -> (
            match lit_value s a with
            | 1 -> place rest
            | -1 -> false
            | _ ->
                s.trail_lim <- s.trail_size :: s.trail_lim;
                enqueue s a None;
                if propagate s <> None then false else place rest)
      in
      if not (place assumptions) then Unsat
      else begin
        let assumption_levels = decision_level s in
        while !result = None do
          match propagate s with
          | Some confl ->
              s.conflicts <- s.conflicts + 1;
              incr conflicts_since_restart;
              if decision_level s <= assumption_levels then result := Some Unsat
              else begin
                let learnt, blevel = analyze s confl in
                let blevel = max blevel assumption_levels in
                backtrack s blevel;
                (match learnt with
                | [ l ] when assumption_levels = 0 ->
                    s.root_units <- l :: s.root_units;
                    if lit_value s l = 0 then enqueue s l None
                    else if lit_value s l = -1 then result := Some Unsat
                | l :: _ ->
                    let c = { lits = Array.of_list learnt; lbd = 0 } in
                    if Array.length c.lits >= 2 then begin
                      (* watch the asserting literal and a highest-level one *)
                      let best = ref 1 in
                      Array.iteri
                        (fun i q ->
                          if i >= 1 && s.level.(abs q) > s.level.(abs c.lits.(!best)) then
                            best := i)
                        c.lits;
                      let tmp = c.lits.(1) in
                      c.lits.(1) <- c.lits.(!best);
                      c.lits.(!best) <- tmp;
                      attach s c;
                      enqueue s l (Some c)
                    end
                    else enqueue s l None
                | [] -> result := Some Unsat);
                s.var_inc <- s.var_inc /. 0.95
              end
          | None ->
              if float_of_int !conflicts_since_restart > !restart_ceiling then begin
                conflicts_since_restart := 0;
                incr restart_count;
                restart_ceiling := 32.0 *. luby !restart_count;
                backtrack s assumption_levels
              end
              else begin
                match pick_branch s with
                | None -> result := Some Sat
                | Some v ->
                    s.decisions <- s.decisions + 1;
                    s.trail_lim <- s.trail_size :: s.trail_lim;
                    enqueue s (if s.phase.(v) then v else -v) None
              end
        done;
        (match !result with
        | Some Sat -> ()
        | _ -> backtrack s 0);
        Option.get !result
      end
    end
  end

let value s v = if s.assign.(v) = 0 then s.phase.(v) else s.assign.(v) > 0

let stats s =
  Printf.sprintf "conflicts=%d decisions=%d propagations=%d vars=%d" s.conflicts
    s.decisions s.propagations s.nvars

(* DIMACS CNF export of the user clauses (not learnt ones), so instances
   can be handed to external SAT solvers. *)
let to_dimacs s =
  let buf = Buffer.create 4096 in
  let clauses = List.rev s.original in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" s.nvars (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

exception Dimacs_error of string

(* parse a DIMACS instance into a fresh solver (testing aid / external
   interchange) *)
let of_dimacs text =
  let s = create () in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
        | [ "p"; "cnf"; nv; _nc ] -> (
            match int_of_string_opt nv with
            | Some n ->
                for _ = 1 to n do
                  ignore (new_var s)
                done
            | None -> raise (Dimacs_error line))
        | _ -> raise (Dimacs_error line)
      end
      else begin
        let lits =
          String.split_on_char ' ' line
          |> List.filter (fun w -> w <> "")
          |> List.map (fun w ->
                 match int_of_string_opt w with
                 | Some v -> v
                 | None -> raise (Dimacs_error line))
        in
        match List.rev lits with
        | 0 :: rest -> add_clause s (List.rev rest)
        | _ -> raise (Dimacs_error ("clause not 0-terminated: " ^ line))
      end)
    lines;
  s
